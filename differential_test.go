package mobisink_test

// Differential suite for the paper's Theorem 2: on small random
// instances where exact branch-and-bound completes, Offline_Appro with
// a (1−ε)-approximate FPTAS knapsack (β = 1+ε) must collect at least
// 1/(2+ε) of the true optimum. Both allocations are additionally
// re-validated against the problem constraints: at most one sensor per
// slot (structural in SlotOwner, re-checked by Validate's window/rate
// pass) and per-sensor energy budgets.

import (
	"fmt"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/exact"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

// diffCase is one seeded instance family of the differential sweep.
type diffCase struct {
	n          int
	pathLen    float64
	maxOffset  float64
	speed      float64
	tau        float64
	budget     float64 // Joules per tour
	fixedPower float64 // 0 = multi-rate table
	eps        float64 // FPTAS accuracy → ratio bound 1/(2+eps)
}

func buildDiffInstance(t *testing.T, c diffCase, seed int64) *core.Instance {
	t.Helper()
	dep, err := network.Generate(network.Params{
		N: c.n, PathLength: c.pathLen, MaxOffset: c.maxOffset, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.SetUniformBudgets(c.budget); err != nil {
		t.Fatal(err)
	}
	var model radio.Model = radio.Paper2013()
	if c.fixedPower > 0 {
		model, err = radio.NewFixedPower(radio.Paper2013(), c.fixedPower)
		if err != nil {
			t.Fatal(err)
		}
	}
	inst, err := core.BuildInstance(dep, model, c.speed, c.tau)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestDifferentialApproVsExact sweeps ≥ 50 seeded instances across
// network sizes, kinematics, budgets, and both radio models.
func TestDifferentialApproVsExact(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not -short")
	}
	// The branch-and-bound is exponential in the slot count, so every
	// case keeps T = pathLen/(speed·tau) at ~10–16 slots (the sizes
	// internal/exact's own tests certify as solvable to optimality).
	cases := []diffCase{
		{n: 3, pathLen: 300, maxOffset: 60, speed: 30, tau: 1, budget: 0.4, eps: 0.25},
		{n: 4, pathLen: 300, maxOffset: 80, speed: 30, tau: 1, budget: 0.6, eps: 0.25},
		{n: 5, pathLen: 300, maxOffset: 100, speed: 20, tau: 1, budget: 0.8, eps: 0.1},
		{n: 6, pathLen: 400, maxOffset: 120, speed: 30, tau: 1, budget: 1.0, eps: 0.5},
		// Fixed-power instances flood the branch-and-bound with equal-profit
		// ties, so they stay extra small to finish within the node budget.
		{n: 4, pathLen: 200, maxOffset: 60, speed: 20, tau: 1, budget: 0.65, fixedPower: 0.3, eps: 0.25},
		{n: 5, pathLen: 300, maxOffset: 100, speed: 20, tau: 1, budget: 0.65, fixedPower: 0.3, eps: 0.1},
		// Tight budgets: only a handful of slots affordable.
		{n: 5, pathLen: 240, maxOffset: 60, speed: 15, tau: 1, budget: 0.2, eps: 0.25},
		// Generous budgets: window size is the binding constraint.
		{n: 3, pathLen: 300, maxOffset: 60, speed: 30, tau: 1, budget: 50, eps: 0.25},
	}
	const seedsPerCase = 7 // 8 × 7 = 56 instances ≥ 50
	instances := 0
	for ci, c := range cases {
		for s := 0; s < seedsPerCase; s++ {
			seed := int64(ci*1000 + s + 1)
			name := fmt.Sprintf("case%d/n%d/seed%d", ci, c.n, seed)
			t.Run(name, func(t *testing.T) {
				inst := buildDiffInstance(t, c, seed)

				appro, err := core.OfflineAppro(inst, core.Options{Eps: c.eps, ForceFPTAS: true})
				if err != nil {
					t.Fatal(err)
				}
				// Per-slot exclusivity and per-sensor energy budgets.
				approData, err := inst.Validate(appro)
				if err != nil {
					t.Fatalf("Offline_Appro infeasible: %v", err)
				}

				res, err := exact.Solve(inst, exact.Options{MaxNodes: 30_000_000, Incumbent: appro})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Optimal {
					t.Fatalf("exact solver hit the node budget (%d nodes); shrink the case", res.Nodes)
				}
				optData, err := inst.Validate(res.Alloc)
				if err != nil {
					t.Fatalf("exact allocation infeasible: %v", err)
				}

				if approData > optData+1e-6 {
					t.Fatalf("approximation %v exceeds claimed optimum %v", approData, optData)
				}
				bound := optData / (2 + c.eps)
				if approData+1e-6 < bound {
					t.Errorf("Offline_Appro collected %.1f bits < 1/(2+%.2f) of optimum %.1f (bound %.1f)",
						approData, c.eps, optData, bound)
				}
			})
			instances++
		}
	}
	if instances < 50 {
		t.Fatalf("only %d instances exercised, want ≥ 50", instances)
	}
}
