package mobisink_test

// Cross-module integration tests: the full pipeline from topology
// generation through energy accounting, instance building, every algorithm
// family, the online protocol, and reporting — the flows a downstream user
// strings together.

import (
	"math"
	"math/rand"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/exact"
	"mobisink/internal/fair"
	"mobisink/internal/lagrange"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/phy"
	"mobisink/internal/radio"
	"mobisink/internal/tour"
	"mobisink/internal/traffic"
)

// TestFullPipeline is the canonical end-to-end flow on one mid-size
// topology: every algorithm must produce a feasible allocation, and the
// quality ordering exact ≥ approximations ≥ baselines must hold within
// tolerance.
func TestFullPipeline(t *testing.T) {
	dep, err := network.Generate(network.PaperParams(150, 1234))
	if err != nil {
		t.Fatal(err)
	}
	sun := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(1234))
	if err := dep.AssignSteadyStateBudgets(sun, 3*2000, 0.5, rng); err != nil {
		t.Fatal(err)
	}
	fixed, err := radio.NewFixedPower(radio.Paper2013(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.BuildInstance(dep, fixed, 5, 1)
	if err != nil {
		t.Fatal(err)
	}

	results := map[string]float64{}
	record := func(name string, a *core.Allocation, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := inst.Validate(a); err != nil {
			t.Fatalf("%s: infeasible: %v", name, err)
		}
		results[name] = a.Data
	}

	mm, err := core.OfflineMaxMatch(inst)
	record("offline_maxmatch", mm, err)
	ap, err := core.OfflineAppro(inst, core.Options{})
	record("offline_appro", ap, err)
	sq, err := core.OfflineSequential(inst, core.Options{})
	record("offline_sequential", sq, err)
	gr, err := core.OfflineGreedy(inst)
	record("offline_greedy", gr, err)
	wf, err := fair.WaterFill(inst)
	record("waterfill", wf, err)
	for name, sched := range map[string]online.Scheduler{
		"online_appro":    &online.Appro{},
		"online_maxmatch": &online.MaxMatch{},
		"online_greedy":   &online.Greedy{},
		"online_seq":      &online.Sequential{},
	} {
		res, err := online.Run(inst, sched)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		record(name, res.Alloc, nil)
	}

	opt := results["offline_maxmatch"]
	for name, v := range results {
		if v > opt+1e-6 {
			t.Errorf("%s (%v) above the exact optimum (%v)", name, v, opt)
		}
		if v <= 0 {
			t.Errorf("%s collected nothing", name)
		}
	}
	if results["offline_appro"] < opt/2 {
		t.Errorf("offline_appro below its guarantee")
	}

	// The Lagrangian dual certifies the optimum from above.
	lag, err := lagrange.UpperBound(inst, lagrange.Options{Iterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	if lag.Bound < opt-1e-6 {
		t.Errorf("dual bound %v below the optimum %v", lag.Bound, opt)
	}
	if lag.Bound > inst.UpperBound()*1.001 {
		t.Logf("note: dual bound %v looser than naive %v", lag.Bound, inst.UpperBound())
	}
}

// TestExactAgreesAtSmallScale cross-checks the independent exact solvers:
// branch-and-bound vs matching on a downsized special-case instance.
func TestExactAgreesAtSmallScale(t *testing.T) {
	dep, err := network.Generate(network.Params{N: 6, PathLength: 400, MaxOffset: 80, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_ = dep.SetUniformBudgets(0.9)
	fixed, _ := radio.NewFixedPower(radio.Paper2013(), 0.3)
	inst, err := core.BuildInstance(dep, fixed, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := core.OfflineMaxMatch(inst)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := exact.Solve(inst, exact.Options{Incumbent: mm})
	if err != nil {
		t.Fatal(err)
	}
	if !bb.Optimal {
		t.Skip("node budget hit")
	}
	if math.Abs(bb.Alloc.Data-mm.Data) > 1e-6 {
		t.Fatalf("independent exact solvers disagree: %v vs %v", bb.Alloc.Data, mm.Data)
	}
}

// TestWorkloadDrivenCampaign runs the full applied stack: traffic loads →
// data caps → capped online scheduling → multi-tour energy accounting.
func TestWorkloadDrivenCampaign(t *testing.T) {
	dep, err := network.Generate(network.Params{N: 60, PathLength: 3000, MaxOffset: 120, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	accounts, err := tour.UniformAccounts(dep, energy.PaperBatteryCapacityJ, 4,
		func(i int) energy.Harvester { return energy.PaperSolar(energy.Sunny) })
	if err != nil {
		t.Fatal(err)
	}
	tp := traffic.Params{
		ArrivalRate: 0.05, MeanSpeed: 25, SpeedStdDev: 4,
		DetectRange: 150, BitsPerDetection: 20e3, Seed: 77,
	}
	const period = 1800.0
	total := 0.0
	for tr := 0; tr < 4; tr++ {
		for i := range dep.Sensors {
			dep.Sensors[i].Budget = accounts[i].Budget()
		}
		inst, err := core.BuildInstance(dep, radio.Paper2013(), 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		caps, err := traffic.Load(dep, tp, float64(tr)*period, float64(tr+1)*period)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.SetDataCaps(caps); err != nil {
			t.Fatal(err)
		}
		res, err := online.Run(inst, &online.Sequential{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Validate(res.Alloc); err != nil {
			t.Fatal(err)
		}
		used := inst.EnergyUsed(res.Alloc)
		for i := range accounts {
			if err := accounts[i].EndTour(period, used[i]); err != nil {
				t.Fatalf("tour %d sensor %d: %v", tr, i, err)
			}
		}
		total += res.Data
	}
	if total <= 0 {
		t.Fatal("campaign collected nothing")
	}
}

// TestPhysicsDrivenRadio swaps the paper's rate table for the PHY-derived
// model and runs the standard pipeline.
func TestPhysicsDrivenRadio(t *testing.T) {
	model, err := phy.NewModel([]phy.Params{phy.CC2420(-7), phy.CC2420(0)}, 0.9, 250)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := network.Generate(network.Params{N: 50, PathLength: 2000, MaxOffset: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_ = dep.SetUniformBudgets(2)
	inst, err := core.BuildInstance(dep, model, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	off, err := core.OfflineAppro(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := online.Run(inst, &online.Appro{})
	if err != nil {
		t.Fatal(err)
	}
	if on.Data > off.Data*1.01 || off.Data <= 0 {
		t.Errorf("physics pipeline inconsistent: offline %v online %v", off.Data, on.Data)
	}
}
