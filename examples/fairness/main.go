// Fairness: throughput-optimal scheduling starves far-off sensors. The
// related work the paper builds on (its refs. [14][16]) optimizes
// lexicographic max-min fairness instead; this example runs both objectives
// on the same instances and prints the trade-off: total throughput, Jain's
// fairness index, sensors served, and the worst-off sensor's share.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/fair"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func main() {
	const (
		speed = 5.0
		tau   = 1.0
	)
	sun := energy.PaperSolar(energy.Sunny)
	fmt.Println("   n  objective        total(Mb)   Jain  served/eligible   min-share(kb)")
	for _, n := range []int{100, 300, 600} {
		seed := int64(n)
		dep, err := network.Generate(network.PaperParams(n, seed))
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		if err := dep.AssignSteadyStateBudgets(sun, 3*10000/speed, 0.5, rng); err != nil {
			log.Fatal(err)
		}
		inst, err := core.BuildInstance(dep, radio.Paper2013(), speed, tau)
		if err != nil {
			log.Fatal(err)
		}

		thr, err := core.OfflineAppro(inst, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		wf, err := fair.WaterFill(inst)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range []struct {
			name  string
			alloc *core.Allocation
		}{
			{"throughput", thr},
			{"max-min fair", wf},
		} {
			if _, err := inst.Validate(c.alloc); err != nil {
				log.Fatalf("%s: %v", c.name, err)
			}
			st := fair.Coverage(inst, c.alloc)
			fmt.Printf("%4d  %-14s %10.2f  %5.3f  %7d/%-8d %14.1f\n",
				n, c.name, core.ThroughputMb(c.alloc.Data), st.Jain,
				st.Served, st.Eligible, fair.MinData(inst, c.alloc)/1e3)
		}
	}
	fmt.Println("\nthe fairness objective roughly doubles Jain's index and serves far more")
	fmt.Println("sensors, at a substantial cost in total collected data — the tension the")
	fmt.Println("paper resolves in favor of total volume for surveillance workloads.")
}
