// Curvedroad: the paper assumes a straight pre-defined path "for the sake
// of discussion" and notes the extension to real road shapes is easy. This
// example runs the same algorithms on an L-shaped mountain road described
// by waypoints and shows the one genuinely new effect: near a bend, a
// sensor can hear the sink on *both* legs, so its visibility window (the
// hull of the in-range arc lengths) stretches far beyond the straight-road
// 2R/(r_s·τ) width.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/geom"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
)

func main() {
	const (
		n     = 150
		speed = 5.0
		tau   = 1.0
		seed  = 21
	)
	// A switchback road: two 4 km legs joined by a hairpin.
	waypoints := []geom.Point{
		{X: 0, Y: 0}, {X: 4000, Y: 0}, {X: 4200, Y: 150}, {X: 200, Y: 300},
	}
	curved, err := network.GenerateAlong(waypoints, n, 150, seed)
	if err != nil {
		log.Fatal(err)
	}
	straight, err := network.Generate(network.Params{
		N: n, PathLength: curved.PathLength, MaxOffset: 150, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	sun := energy.PaperSolar(energy.Sunny)
	for _, dep := range []*network.Deployment{curved, straight} {
		rng := rand.New(rand.NewSource(seed))
		if err := dep.AssignSteadyStateBudgets(sun, 3*dep.PathLength/speed, 0.5, rng); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("road      sensors  T(slots)  max|A(v)|  offline(Mb)  online(Mb)")
	for _, c := range []struct {
		name string
		dep  *network.Deployment
	}{
		{"switchback", curved},
		{"straight", straight},
	} {
		inst, err := core.BuildInstance(c.dep, radio.Paper2013(), speed, tau)
		if err != nil {
			log.Fatal(err)
		}
		maxWin := 0
		for i := range inst.Sensors {
			if w := inst.Sensors[i].WindowSize(); w > maxWin {
				maxWin = w
			}
		}
		off, err := core.OfflineAppro(inst, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		on, err := online.Run(inst, &online.Appro{})
		if err != nil {
			log.Fatal(err)
		}
		if err := on.CheckLemma1(); err != nil {
			// On a hairpin the sink can re-enter a sensor's range in
			// non-consecutive intervals — Lemma 1's straight-road proof
			// doesn't apply. Report rather than fail.
			fmt.Printf("  note: %v (expected on hairpin roads)\n", err)
		}
		fmt.Printf("%-10s %7d %9d %10d %12.2f %11.2f\n",
			c.name, n, inst.T, maxWin, core.ThroughputMb(off.Data), core.ThroughputMb(on.Data))
	}
	fmt.Println("\non the switchback, hairpin-adjacent sensors see the sink on both legs:")
	fmt.Println("their windows (hull of in-range arc) far exceed the straight-road width,")
	fmt.Println("and Lemma 1's two-consecutive-intervals property no longer holds — the")
	fmt.Println("framework still runs, it just probes such sensors more than twice.")
}
