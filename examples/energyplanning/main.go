// Energyplanning: choose the sink's operating point. Paper §VII.B concludes
// that higher sink speeds demand shorter time slots and that both high
// speed and long slots cost throughput, while a faster sink delivers data
// sooner (lower latency). This example sweeps (speed, τ) for one deployment
// and prints the throughput/latency frontier a network operator would use
// to pick a patrol speed.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/traffic"
)

func main() {
	const n = 200
	speeds := []float64{2, 5, 10, 20, 30}
	taus := []float64{1, 2, 4, 8}

	sun := energy.PaperSolar(energy.Sunny)
	model := radio.Paper2013()
	tp := traffic.Params{
		ArrivalRate: 0.05, MeanSpeed: 25, SpeedStdDev: 4,
		DetectRange: 150, BitsPerDetection: 20e3, Seed: 11,
	}

	fmt.Println("speed(m/s)  tau(s)  tour(min)  throughput(Mb/tour)  rate(Mb/hour)  mean delivery delay(min)")
	type row struct {
		speed, tau, latency, mb, rate float64
	}
	var best row
	for _, speed := range speeds {
		for _, tau := range taus {
			// Same topology for every operating point; budgets scale with
			// tour duration (perpetual operation with 3-tour carryover).
			dep, err := network.Generate(network.PaperParams(n, 11))
			if err != nil {
				log.Fatal(err)
			}
			tour := 10000 / speed
			rng := rand.New(rand.NewSource(11))
			if err := dep.AssignSteadyStateBudgets(sun, 3*tour, 0.5, rng); err != nil {
				log.Fatal(err)
			}
			inst, err := core.BuildInstance(dep, model, speed, tau)
			if err != nil {
				log.Fatal(err)
			}
			res, err := online.Run(inst, &online.Appro{})
			if err != nil {
				log.Fatal(err)
			}
			mb := core.ThroughputMb(res.Data)
			r := row{
				speed:   speed,
				tau:     tau,
				latency: tour / 60,
				mb:      mb,
				rate:    mb / (tour / 3600),
			}
			// Measured delivery latency of the surveillance workload
			// (data sensed in the hour before the tour and during it).
			lat, err := traffic.DeliveryLatency(dep, tp, inst, res.Alloc, -3600, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.0f %7.0f %10.1f %20.2f %14.2f %20.1f\n",
				r.speed, r.tau, r.latency, r.mb, r.rate, lat.MeanDelay/60)
			if r.rate > best.rate {
				best = r
			}
		}
	}
	fmt.Printf("\nbest sustained collection rate: %.2f Mb/hour at speed %.0f m/s, tau %.0f s\n",
		best.rate, best.speed, best.tau)
	fmt.Println("observations (paper §VII.B): per-tour throughput falls as speed or tau")
	fmt.Println("grow; a fast sink trades per-tour volume for lower data latency, so the")
	fmt.Println("operator should pick the shortest workable slot at the chosen speed.")
}
