// Trafficload: the paper assumes every sensor "has stored enough sensing
// data" — an unbounded data queue. This example generates the actual
// surveillance workload (vehicles detected on the highway, with rush-hour
// peaks) and compares collection with and without the finite-data
// extension across a day of hourly patrols: at night there is little to
// report and the unbounded model wildly overstates the collectable volume.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/traffic"
)

func main() {
	const (
		n     = 200
		speed = 5.0
		tau   = 1.0
		seed  = 31
	)
	dep, err := network.Generate(network.PaperParams(n, seed))
	if err != nil {
		log.Fatal(err)
	}
	sun := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(seed))
	if err := dep.AssignSteadyStateBudgets(sun, 3*10000/speed, 0.5, rng); err != nil {
		log.Fatal(err)
	}

	tp := traffic.Params{
		ArrivalRate:      0.15, // ≈ 540 veh/h at peak
		MeanSpeed:        27,
		SpeedStdDev:      5,
		DetectRange:      120,
		BitsPerDetection: 6e3, // detection record + thumbnail
		RateProfile:      traffic.RushHour(),
		Seed:             seed,
	}

	fmt.Println("hour  vehicles  available(Mb)  collected(Mb)  unbounded-model(Mb)")
	// Both runs use the same Sequential scheduler; only the data caps differ.
	var dayCapped, dayFree float64
	for hour := 0; hour < 24; hour++ {
		t0 := float64(hour) * 3600
		caps, err := traffic.Load(dep, tp, t0, t0+3600)
		if err != nil {
			log.Fatal(err)
		}
		vehicles, err := traffic.Stream(tp, t0, t0+3600)
		if err != nil {
			log.Fatal(err)
		}
		avail := 0.0
		for _, c := range caps {
			avail += c
		}

		inst, err := core.BuildInstance(dep, radio.Paper2013(), speed, tau)
		if err != nil {
			log.Fatal(err)
		}
		free, err := online.Run(inst, &online.Sequential{})
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.SetDataCaps(caps); err != nil {
			log.Fatal(err)
		}
		capped, err := online.Run(inst, &online.Sequential{})
		if err != nil {
			log.Fatal(err)
		}
		dayCapped += capped.Data
		dayFree += free.Data
		fmt.Printf("%4d  %8d  %13.2f  %13.2f  %19.2f\n",
			hour, len(vehicles), core.ThroughputMb(avail),
			core.ThroughputMb(capped.Data), core.ThroughputMb(free.Data))
	}
	fmt.Printf("\nday total: %.1f Mb with real workloads vs %.1f Mb under the paper's\n",
		core.ThroughputMb(dayCapped), core.ThroughputMb(dayFree))
	fmt.Println("unbounded-data model. Two effects are visible: collection now follows the")
	fmt.Println("traffic intensity (rush-hour peaks, quiet nights), and the finite queues")
	fmt.Println("even *help* the sequential scheduler by throttling greedy early sensors —")
	fmt.Println("slots they would otherwise hog flow to later sensors with fresh data.")
}
