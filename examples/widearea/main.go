// Widearea: the paper's design is strictly one-hop — sensors farther than
// the 200 m radio range never deliver anything. This example deploys a
// wide monitoring field (offsets up to 500 m), gives every sensor a day of
// queued surveillance data, and compares the paper's one-hop collection
// with the subsink relay architecture of the related work (Gao et al.):
// out-of-range sensors forward their backlog to the nearest in-range
// sensor, paying per-bit relay energy on both ends.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/relay"
)

func main() {
	const (
		n     = 200
		speed = 5.0
		seed  = 17
	)
	dep, err := network.Generate(network.Params{
		N: n, PathLength: 5000, MaxOffset: 500, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	sun := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(seed))
	if err := dep.AssignSteadyStateBudgets(sun, 3*5000/speed, 0.5, rng); err != nil {
		log.Fatal(err)
	}
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 500e3 // 0.5 Mb of queued observations each
	}

	// The paper's one-hop system.
	inst, err := core.BuildInstance(dep, radio.Paper2013(), speed, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.SetDataCaps(caps); err != nil {
		log.Fatal(err)
	}
	oneHop, err := online.Run(inst, &online.Sequential{})
	if err != nil {
		log.Fatal(err)
	}
	reach := 0
	for i := range inst.Sensors {
		if inst.Sensors[i].Start >= 0 {
			reach++
		}
	}

	// Relay-enabled collection.
	p := relay.DefaultParams()
	asg, err := relay.Assign(dep, radio.Paper2013(), p)
	if err != nil {
		log.Fatal(err)
	}
	relayDep, relayCaps, err := relay.Apply(dep, asg, caps, p)
	if err != nil {
		log.Fatal(err)
	}
	instR, err := core.BuildInstance(relayDep, radio.Paper2013(), speed, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := instR.SetDataCaps(relayCaps); err != nil {
		log.Fatal(err)
	}
	relayed, err := online.Run(instR, &online.Sequential{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("field: %d sensors over 5 km × ±500 m, radio range 200 m\n\n", n)
	fmt.Printf("%-22s %18s %14s\n", "architecture", "sensors reachable", "collected(Mb)")
	fmt.Printf("%-22s %11d/%d %17.2f\n", "one-hop (paper)", reach, n, core.ThroughputMb(oneHop.Data))
	fmt.Printf("%-22s %11d/%d %17.2f\n", "subsink relay [Gao]", asg.Covered, n, core.ThroughputMb(relayed.Data))
	fmt.Printf("\n%d sensors have no subsink within %g m and stay dark either way.\n",
		asg.Unreachable, p.Range)
	fmt.Println("relaying raises *coverage* ~1.5x, but total volume stays flat: the road's")
	fmt.Println("slot capacity — not data availability — binds, and subsinks burn receive")
	fmt.Println("energy on top. Relaying buys whose data is heard, not more of it — the")
	fmt.Println("bandwidth/energy bottleneck the paper's intro cites when arguing for")
	fmt.Println("mobile sinks over fixed-sink multi-hop collection.")
}
