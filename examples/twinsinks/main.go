// Twinsinks: the fleet refactor lets one deployment be toured by K mobile
// sinks concurrently. This example takes a long highway, splits it into
// two per-sink segments, and compares a lone sink touring the whole road
// against the twin-sink fleet on the joint instance — same sensors, same
// budgets, same wall-clock tour window. The joint schedule honors the
// cross-sink constraint (a sensor talks to at most one sink per absolute
// slot), so the gain over K=1 is pure scheduling headroom: each sink
// lingers in range of its half of the field twice as long per metre of
// progress, and the two half-tours run in parallel.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/fair"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func main() {
	const (
		n     = 250
		speed = 5.0
		seed  = 23
	)
	dep, err := network.Generate(network.Params{
		N: n, PathLength: 8000, MaxOffset: 160, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	sun := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(seed))
	// Budgets sized for the lone sink's full tour, reused verbatim at K=2:
	// the fleet halves the tour wall-clock, budgets stay fixed.
	if err := dep.AssignSteadyStateBudgets(sun, 3*8000/speed, 0.5, rng); err != nil {
		log.Fatal(err)
	}

	report := func(label string, k int, d *network.Deployment) {
		inst, err := core.BuildFleetInstance(d, radio.Paper2013(), speed, 1)
		if err != nil {
			log.Fatal(err)
		}
		appro, err := core.OfflineAppro(inst, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := inst.Validate(appro); err != nil {
			log.Fatalf("%s: invalid schedule: %v", label, err)
		}
		fill, err := fair.WaterFill(inst)
		if err != nil {
			log.Fatal(err)
		}
		served := 0
		for _, d := range fair.PerSensorData(inst, appro) {
			if d > 0 {
				served++
			}
		}
		// Wall clock: the sinks tour their segments concurrently, so the
		// tour lasts as long as the longest per-sink slot count.
		wall := inst.T
		if inst.NumSinks() > 1 {
			wall = 0
			for _, s := range inst.Sinks {
				if s.T > wall {
					wall = s.T
				}
			}
		}
		fmt.Printf("%-18s %2d %9.1f %12.2f %12.2f %10d/%d\n",
			label, k, float64(wall)/60, core.ThroughputMb(appro.Data),
			core.ThroughputMb(fill.Data), served, n)
	}

	fmt.Printf("highway: %d sensors over 8 km, budgets fixed at the lone-sink tour\n\n", n)
	fmt.Printf("%-18s %2s %9s %12s %12s %12s\n",
		"fleet", "K", "tour(min)", "Appro(Mb)", "Fill(Mb)", "served")
	report("lone sink", 1, dep)

	twin := *dep
	if err := twin.SplitSinks(2, nil); err != nil {
		log.Fatal(err)
	}
	report("twin sinks", 2, &twin)

	fmt.Println("\nThe twin fleet finishes its tour in half the wall-clock time and still")
	fmt.Println("collects comparable data: per-sink segments double the dwell per metre,")
	fmt.Println("offsetting the shorter joint slot space. The cross-sink exclusivity")
	fmt.Println("constraint is enforced by Validate on every schedule above.")
}
