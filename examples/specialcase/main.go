// Specialcase: the fixed-transmission-power problem of paper §VI, where an
// exact polynomial solution exists. Compares the exact matching algorithms
// with the GAP approximation on the same instances and reports each
// algorithm's fraction of the true optimum — possible here precisely
// because Offline_MaxMatch *is* the optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
)

func main() {
	const (
		speed = 5.0
		tau   = 1.0
		pFix  = 0.3 // the paper's 300 mW
	)
	fixed, err := radio.NewFixedPower(radio.Paper2013(), pFix)
	if err != nil {
		log.Fatal(err)
	}
	sun := energy.PaperSolar(energy.Sunny)

	fmt.Println("   n   Offline_MaxMatch  Online_MaxMatch  Offline_Appro  Online_Appro   (Mb, mean of 5 topologies)")
	for _, n := range []int{100, 300, 600} {
		sums := make(map[string]float64)
		const trials = 5
		for trial := 0; trial < trials; trial++ {
			seed := int64(n*1000 + trial)
			dep, err := network.Generate(network.PaperParams(n, seed))
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			if err := dep.AssignSteadyStateBudgets(sun, 3*10000/speed, 0.5, rng); err != nil {
				log.Fatal(err)
			}
			inst, err := core.BuildInstance(dep, fixed, speed, tau)
			if err != nil {
				log.Fatal(err)
			}

			exact, err := core.OfflineMaxMatch(inst)
			if err != nil {
				log.Fatal(err)
			}
			sums["offmm"] += exact.Data

			onmm, err := online.Run(inst, &online.MaxMatch{})
			if err != nil {
				log.Fatal(err)
			}
			sums["onmm"] += onmm.Data

			offap, err := core.OfflineAppro(inst, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			sums["offap"] += offap.Data

			onap, err := online.Run(inst, &online.Appro{})
			if err != nil {
				log.Fatal(err)
			}
			sums["onap"] += onap.Data
		}
		opt := sums["offmm"]
		fmt.Printf("%4d %11.2f Mb %11.2f Mb %11.2f Mb %10.2f Mb\n", n,
			mb(sums["offmm"]/trials), mb(sums["onmm"]/trials),
			mb(sums["offap"]/trials), mb(sums["onap"]/trials))
		fmt.Printf("     %11s    %10.1f%%    %10.1f%%   %9.1f%%   (fraction of optimum)\n",
			"optimum", 100*sums["onmm"]/opt, 100*sums["offap"]/opt, 100*sums["onap"]/opt)
	}
	fmt.Println("\nOffline_MaxMatch is exact (max-weight matching); the GAP local-ratio")
	fmt.Println("approximation carries a 1/2 worst-case guarantee but stays within a few")
	fmt.Println("percent of optimal on these geometric instances.")
}

func mb(bits float64) float64 { return core.ThroughputMb(bits) }
