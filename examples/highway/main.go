// Highway: the paper's motivating scenario run end to end over a full day.
//
// A patrol vehicle (the mobile sink) drives a 10 km highway once per hour.
// Each roadside sensor harvests solar energy through a noisy diurnal
// profile, banks it in a 10 kJ battery, and spends it uploading
// surveillance data when the vehicle passes. Budgets therefore follow the
// paper's recurrence P_j(v) = min(P_{j-1}(v) + Q_{j-1}(v) − O_{j-1}(v), B):
// night tours run on stored energy, midday tours on fresh harvest.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/tour"
)

const (
	nSensors   = 250
	seed       = 7
	sinkSpeed  = 5.0    // m/s
	slotLen    = 1.0    // s
	tourPeriod = 3600.0 // one patrol per hour
	nTours     = 24     // a full day
)

func main() {
	dep, err := network.Generate(network.PaperParams(nSensors, seed))
	if err != nil {
		log.Fatal(err)
	}

	// Per-sensor energy accounts: a noisy solar harvester with random
	// panel orientation/shading efficiency, plus a modest initial charge.
	rng := rand.New(rand.NewSource(seed))
	accounts, err := tour.UniformAccounts(dep, energy.PaperBatteryCapacityJ, 5.0,
		func(i int) energy.Harvester {
			eff := 0.7 + 0.3*rng.Float64()
			sun, err := energy.NewSolar(energy.PaperPanelAreaMM2, energy.Sunny, eff)
			if err != nil {
				log.Fatal(err)
			}
			noisy, err := energy.NewNoisy(sun, 0.5, 900, seed+int64(i))
			if err != nil {
				log.Fatal(err)
			}
			return noisy
		})
	if err != nil {
		log.Fatal(err)
	}

	res, err := tour.Run(tour.Plan{
		Deployment: dep,
		Model:      radio.Paper2013(),
		Speed:      sinkSpeed,
		SlotLen:    slotLen,
		Period:     tourPeriod,
		Allocate:   tour.OnlineAllocator(&online.Appro{}),
	}, accounts, nTours)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hour  throughput(Mb)  mean budget(J)  active sensors  energy used(J)")
	for _, ts := range res.Tours {
		fmt.Printf("%4d  %14.2f  %14.2f  %14d  %14.1f\n",
			ts.Tour, core.ThroughputMb(ts.DataBits), ts.MeanBudget, ts.Active, ts.EnergyUsed)
	}
	fmt.Printf("\nday total: %.1f Mb collected over %d tours\n",
		core.ThroughputMb(res.TotalBits), nTours)
}
