// Quickstart: build a small energy-harvesting sensor network along a
// highway, run the paper's four data-collection algorithms on one tour of
// the mobile sink, and compare the collected data volumes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/viz"
)

func main() {
	// 1. Deploy 200 sensors along a 10 km highway (≤180 m off the road).
	dep, err := network.Generate(network.PaperParams(200, 42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Give each sensor a per-tour energy budget from the calibrated
	//    solar model (10×10 mm panel, sunny day), with ±50% heterogeneity
	//    and a 3-tour stored-energy carryover.
	sun := energy.PaperSolar(energy.Sunny)
	const speed, tau = 5.0, 1.0 // sink speed (m/s) and slot length (s)
	tour := 10000 / speed       // seconds per tour
	rng := rand.New(rand.NewSource(42))
	if err := dep.AssignSteadyStateBudgets(sun, 3*tour, 0.5, rng); err != nil {
		log.Fatal(err)
	}

	// 3. Build the slot-allocation instance with the paper's multi-rate
	//    radio (250 kbps @ ≤20 m ... 4.8 kbps @ ≤200 m).
	inst, err := core.BuildInstance(dep, radio.Paper2013(), speed, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tour: %d slots of %.0f s, Γ = %d slots/interval, upper bound %.2f Mb\n\n",
		inst.T, inst.Tau, inst.Gamma, core.ThroughputMb(inst.UpperBound()))

	// 4. Offline (global knowledge) algorithms.
	offline, err := core.OfflineAppro(inst, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("Offline_Appro (local-ratio GAP)", inst, offline.Data)

	greedy, err := core.OfflineGreedy(inst)
	if err != nil {
		log.Fatal(err)
	}
	report("Offline_Greedy (baseline)", inst, greedy.Data)

	// 5. Online distributed algorithm: the sink probes ahead one interval
	//    at a time and schedules only registered sensors.
	res, err := online.Run(inst, &online.Appro{})
	if err != nil {
		log.Fatal(err)
	}
	report("Online_Appro  (distributed)", inst, res.Data)
	fmt.Printf("\nonline protocol: %d intervals, %d msgs (%d probes, %d acks, %d schedules, %d finishes)\n",
		res.Intervals, res.Messages.Total(), res.Messages.Probes, res.Messages.Acks,
		res.Messages.Schedules, res.Messages.Finishes)
	if err := res.CheckLemma1(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Lemma 1 verified: every sensor registered in ≤2 consecutive intervals")

	fmt.Println()
	if err := viz.Timeline(os.Stdout, inst, res.Alloc, 76); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := viz.EnergyBars(os.Stdout, inst, res.Alloc, 6); err != nil {
		log.Fatal(err)
	}

	// 6. The fixed-power special case is solvable exactly.
	fixed, err := radio.NewFixedPower(radio.Paper2013(), 0.3)
	if err != nil {
		log.Fatal(err)
	}
	instFixed, err := core.BuildInstance(dep, fixed, speed, tau)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := core.OfflineMaxMatch(instFixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspecial case (fixed 300 mW): exact optimum %.2f Mb (Offline_MaxMatch)\n",
		core.ThroughputMb(exact.Data))
}

func report(name string, inst *core.Instance, bits float64) {
	frac := bits / inst.UpperBound()
	fmt.Printf("%-32s %8.2f Mb  (%.1f%% of upper bound)\n",
		name, core.ThroughputMb(bits), 100*frac)
}
