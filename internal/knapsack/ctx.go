package knapsack

import (
	"context"
	"math"
	"sync"
)

// SolverCtx is a context-aware Solver: implementations poll ctx at coarse
// checkpoints (per DP item layer, every few thousand search nodes) and
// return ctx.Err() as soon as it is non-nil, so a canceled job stops
// burning its worker mid-solve instead of running to completion.
type SolverCtx func(ctx context.Context, items []Item, capacity float64) (Solution, error)

// Ctx adapts a plain Solver into a SolverCtx: the context is checked once
// up front (the plain solver cannot be interrupted mid-run).
func (s Solver) Ctx() SolverCtx {
	return func(ctx context.Context, items []Item, capacity float64) (Solution, error) {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		return s(items, capacity), nil
	}
}

// nodeCheckInterval is how many branch-and-bound nodes are expanded
// between context polls; DP solvers poll once per item layer instead.
const nodeCheckInterval = 4096

// arenaPool recycles flat-kernel arenas across the []Item entry points so
// the serving path does not reallocate DP tables per request. Callers that
// hold their own Arena (the compiled GAP sweep) bypass the pool entirely.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

func getArena() *Arena { return arenaPool.Get().(*Arena) }

func putArena(a *Arena) {
	a.Trim()
	arenaPool.Put(a)
}

// itemArrays splits items into the arena's parallel profit/weight buffers
// so the flat kernels can run over them; candidate positions then coincide
// with item indices.
func (a *Arena) itemArrays(items []Item) (prof, wt []float64) {
	n := len(items)
	if cap(a.wprof) < n {
		a.wprof = make([]float64, n)
	}
	if cap(a.wwt) < n {
		a.wwt = make([]float64, n)
	}
	prof, wt = a.wprof[:n], a.wwt[:n]
	for i, it := range items {
		prof[i] = it.Profit
		wt[i] = it.Weight
	}
	return prof, wt
}

// solutionOf materializes a kernel's ascending picks as a Solution,
// summing profit and weight in ascending-index order (the historical
// `finish` order, so totals stay bit-identical). remap, when non-nil,
// translates candidate positions back to item indices.
func solutionOf(items []Item, picks []int32, remap []int32) Solution {
	if len(picks) == 0 {
		return Solution{}
	}
	s := Solution{Picked: make([]int, len(picks))}
	for j, p := range picks {
		i := int(p)
		if remap != nil {
			i = int(remap[p])
		}
		s.Picked[j] = i
		s.Profit += items[i].Profit
		s.Weight += items[i].Weight
	}
	return s
}

// DPCtx is DP with cancellation: the context is polled once per item layer
// and ctx.Err() is returned on expiry. The DP runs on the flat kernel over
// a pooled arena.
func DPCtx(ctx context.Context, items []Item, capacity float64, quantum float64) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	if quantum <= 0 {
		quantum = 1e-6
	}
	capU := int(math.Floor(capacity / quantum))
	if capU < 0 {
		return Solution{}, nil
	}
	a := getArena()
	defer putArena(a)
	// Prefilter on the float feasibility rule and quantize; the kernel
	// receives only viable candidates, in input order, so its ascending
	// picks map back through wmap to ascending item indices.
	prof := a.wprof[:0]
	wq := a.wq[:0]
	remap := a.wmap[:0]
	for i, it := range items {
		if !usable(it, capacity) {
			continue
		}
		w := int(math.Ceil(it.Weight/quantum - 1e-9))
		if w > capU {
			continue
		}
		prof = append(prof, it.Profit)
		wq = append(wq, int32(w))
		remap = append(remap, int32(i))
	}
	a.wprof, a.wq, a.wmap = prof, wq, remap
	picks, _, err := a.DPFlat(ctx, prof, wq, capU)
	if err != nil {
		return Solution{}, err
	}
	return solutionOf(items, picks, remap), nil
}

// BranchAndBoundCtx is BranchAndBound with cancellation: the context is
// polled every nodeCheckInterval search nodes. Runs on the flat kernel
// over a pooled arena.
func BranchAndBoundCtx(ctx context.Context, items []Item, capacity float64) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	a := getArena()
	defer putArena(a)
	prof, wt := a.itemArrays(items)
	picks, _, err := a.BranchAndBoundFlat(ctx, prof, wt, capacity)
	if err != nil {
		return Solution{}, err
	}
	return solutionOf(items, picks, nil), nil
}

// FPTASCtx returns a SolverCtx with the same (1−ε)·OPT guarantee as FPTAS,
// polling the context once per item layer of the profit-scaling DP. Runs
// on the flat kernel over a pooled arena.
func FPTASCtx(eps float64) SolverCtx {
	if eps <= 0 || eps >= 1 {
		panic("knapsack: FPTAS epsilon must be in (0,1)")
	}
	return func(ctx context.Context, items []Item, capacity float64) (Solution, error) {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		a := getArena()
		defer putArena(a)
		prof, wt := a.itemArrays(items)
		picks, _, err := a.FPTASFlat(ctx, eps, prof, wt, capacity)
		if err != nil {
			return Solution{}, err
		}
		return solutionOf(items, picks, nil), nil
	}
}

// MaxProfitUnderCtx is MaxProfitUnder with cancellation, polled once per
// item layer of the minimum-weight DP. Runs on the flat kernel over a
// pooled arena.
func MaxProfitUnderCtx(ctx context.Context, items []Item, capacity, profitCap, profitQuantum float64) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	a := getArena()
	defer putArena(a)
	prof, wt := a.itemArrays(items)
	picks, _, err := a.MaxProfitUnderFlat(ctx, prof, wt, capacity, profitCap, profitQuantum)
	if err != nil {
		return Solution{}, err
	}
	return solutionOf(items, picks, nil), nil
}
