package knapsack

import (
	"context"
	"math"
	"sort"
	"sync"
)

// SolverCtx is a context-aware Solver: implementations poll ctx at coarse
// checkpoints (per DP item layer, every few thousand search nodes) and
// return ctx.Err() as soon as it is non-nil, so a canceled job stops
// burning its worker mid-solve instead of running to completion.
type SolverCtx func(ctx context.Context, items []Item, capacity float64) (Solution, error)

// Ctx adapts a plain Solver into a SolverCtx: the context is checked once
// up front (the plain solver cannot be interrupted mid-run).
func (s Solver) Ctx() SolverCtx {
	return func(ctx context.Context, items []Item, capacity float64) (Solution, error) {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		return s(items, capacity), nil
	}
}

// nodeCheckInterval is how many branch-and-bound nodes are expanded
// between context polls; DP solvers poll once per item layer instead.
const nodeCheckInterval = 4096

// scratch is a reusable arena for DP tables: one float64 row and one flat
// bool choice matrix. Pooled via scratchPool so the serving path does not
// reallocate per request.
type scratch struct {
	f []float64
	b []bool
}

// scratchMax bounds how large a buffer is returned to the pool; oversized
// tables from a one-off huge instance are dropped instead of pinned.
const scratchMax = 1 << 22

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(s *scratch) {
	if cap(s.f) > scratchMax {
		s.f = nil
	}
	if cap(s.b) > scratchMax {
		s.b = nil
	}
	scratchPool.Put(s)
}

// floats returns a zeroed float64 slice of length n backed by the arena.
func (s *scratch) floats(n int) []float64 {
	if cap(s.f) < n {
		s.f = make([]float64, n)
	}
	f := s.f[:n]
	for i := range f {
		f[i] = 0
	}
	return f
}

// bools returns a cleared bool slice of length n backed by the arena.
func (s *scratch) bools(n int) []bool {
	if cap(s.b) < n {
		s.b = make([]bool, n)
	}
	b := s.b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// DPCtx is DP with cancellation: the context is polled once per item layer
// and ctx.Err() is returned on expiry. The DP table and choice matrix come
// from a shared sync.Pool arena.
func DPCtx(ctx context.Context, items []Item, capacity float64, quantum float64) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	if quantum <= 0 {
		quantum = 1e-6
	}
	capQ := int(math.Floor(capacity / quantum))
	if capQ < 0 {
		return Solution{}, nil
	}
	type qItem struct {
		idx int
		w   int
		p   float64
	}
	var qItems []qItem
	var free []int // zero-weight items are always packed
	sumQ := 0
	for i, it := range items {
		if !usable(it, capacity) {
			continue
		}
		w := int(math.Ceil(it.Weight/quantum - 1e-9))
		if w == 0 {
			free = append(free, i)
			continue
		}
		if w > capQ {
			continue
		}
		qItems = append(qItems, qItem{i, w, it.Profit})
		sumQ += w
	}
	// The DP table never needs more capacity than all usable items weigh
	// in quantized units — this keeps the table small when the stored
	// energy budget far exceeds what a visibility window can spend.
	if capQ > sumQ {
		capQ = sumQ
	}
	sc := getScratch()
	defer putScratch(sc)
	width := capQ + 1
	dp := sc.floats(width)
	pick := sc.bools(len(qItems) * width) // row k is pick[k*width : (k+1)*width]
	for k, qi := range qItems {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		row := pick[k*width : (k+1)*width]
		for w := capQ; w >= qi.w; w-- {
			if cand := dp[w-qi.w] + qi.p; cand > dp[w] {
				dp[w] = cand
				row[w] = true
			}
		}
	}
	// Trace back.
	w := capQ
	var picked []int
	for k := len(qItems) - 1; k >= 0; k-- {
		if pick[k*width+w] {
			picked = append(picked, qItems[k].idx)
			w -= qItems[k].w
		}
	}
	picked = append(picked, free...)
	return finish(items, picked), nil
}

// BranchAndBoundCtx is BranchAndBound with cancellation: the context is
// polled every nodeCheckInterval search nodes.
func BranchAndBoundCtx(ctx context.Context, items []Item, capacity float64) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	order := make([]int, 0, len(items))
	for i, it := range items {
		if usable(it, capacity) {
			order = append(order, i)
		}
	}
	if len(order) == 0 {
		return Solution{}, nil
	}
	sortByDensity(items, order)

	// fracBound returns the LP relaxation value of packing order[k:] into
	// the remaining capacity.
	fracBound := func(k int, left float64) float64 {
		bound := 0.0
		for _, oi := range order[k:] {
			it := items[oi]
			if it.Weight <= left {
				bound += it.Profit
				left -= it.Weight
			} else {
				if it.Weight > 0 {
					bound += it.Profit * left / it.Weight
				}
				break
			}
		}
		return bound
	}

	bestProfit := -1.0
	var bestSet []int
	cur := make([]int, 0, len(order))
	nodes := 0
	canceled := false

	var dfs func(k int, left, profit float64)
	dfs = func(k int, left, profit float64) {
		if canceled {
			return
		}
		nodes++
		if nodes%nodeCheckInterval == 0 && ctx.Err() != nil {
			canceled = true
			return
		}
		if profit > bestProfit {
			bestProfit = profit
			bestSet = append(bestSet[:0], cur...)
		}
		if k == len(order) {
			return
		}
		if profit+fracBound(k, left)+1e-12 <= bestProfit {
			return // cannot beat the incumbent
		}
		it := items[order[k]]
		if it.Weight <= left {
			cur = append(cur, order[k])
			dfs(k+1, left-it.Weight, profit+it.Profit)
			cur = cur[:len(cur)-1]
		}
		dfs(k+1, left, profit)
	}
	dfs(0, capacity, 0)
	if canceled {
		return Solution{}, context.Cause(ctx)
	}
	return finish(items, append([]int(nil), bestSet...)), nil
}

// sortByDensity orders item indices by decreasing profit/weight density
// with index tie-breaks (shared by BranchAndBound and its ctx variant).
func sortByDensity(items []Item, order []int) {
	sort.Slice(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		da, db := math.Inf(1), math.Inf(1)
		if ia.Weight > 0 {
			da = ia.Profit / ia.Weight
		}
		if ib.Weight > 0 {
			db = ib.Profit / ib.Weight
		}
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
}

// FPTASCtx returns a SolverCtx with the same (1−ε)·OPT guarantee as FPTAS,
// polling the context once per item layer of the profit-scaling DP and
// drawing its tables from the shared scratch pool.
func FPTASCtx(eps float64) SolverCtx {
	if eps <= 0 || eps >= 1 {
		panic("knapsack: FPTAS epsilon must be in (0,1)")
	}
	return func(ctx context.Context, items []Item, capacity float64) (Solution, error) {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		idxs := make([]int, 0, len(items))
		pmax := 0.0
		for i, it := range items {
			if usable(it, capacity) {
				idxs = append(idxs, i)
				if it.Profit > pmax {
					pmax = it.Profit
				}
			}
		}
		if len(idxs) == 0 {
			return Solution{}, nil
		}
		n := len(idxs)
		k := eps * pmax / float64(n)
		// Scaled profits; each ≤ n/ε.
		scaled := make([]int, n)
		maxTotal := 0
		for j, i := range idxs {
			scaled[j] = int(math.Floor(items[i].Profit / k))
			maxTotal += scaled[j]
		}
		const inf = math.MaxFloat64
		sc := getScratch()
		defer putScratch(sc)
		width := maxTotal + 1
		// minW[q] = minimal weight achieving scaled profit exactly q.
		minW := sc.floats(width)
		choice := sc.bools(n * width) // row j is choice[j*width : (j+1)*width]
		for q := 1; q <= maxTotal; q++ {
			minW[q] = inf
		}
		for j, i := range idxs {
			if err := ctx.Err(); err != nil {
				return Solution{}, err
			}
			row := choice[j*width : (j+1)*width]
			w := items[i].Weight
			for q := maxTotal; q >= scaled[j]; q-- {
				if minW[q-scaled[j]] < inf {
					if cand := minW[q-scaled[j]] + w; cand < minW[q] {
						minW[q] = cand
						row[q] = true
					}
				}
			}
		}
		bestQ := 0
		for q := maxTotal; q > 0; q-- {
			if minW[q] <= capacity {
				bestQ = q
				break
			}
		}
		var picked []int
		q := bestQ
		for j := n - 1; j >= 0 && q > 0; j-- {
			if choice[j*width+q] {
				picked = append(picked, idxs[j])
				q -= scaled[j]
			}
		}
		return finish(items, picked), nil
	}
}

// MaxProfitUnderCtx is MaxProfitUnder with cancellation, polled once per
// item layer of the minimum-weight DP.
func MaxProfitUnderCtx(ctx context.Context, items []Item, capacity, profitCap, profitQuantum float64) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	if profitCap <= 0 {
		return Solution{}, nil
	}
	if profitQuantum <= 0 {
		profitQuantum = 1
	}
	idxs := make([]int, 0, len(items))
	for i, it := range items {
		if usable(it, capacity) && it.Profit >= profitQuantum {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return Solution{}, nil
	}
	sumQ := 0
	scaled := make([]int, len(idxs))
	for k, i := range idxs {
		scaled[k] = int(math.Ceil(items[i].Profit/profitQuantum - 1e-9))
		sumQ += scaled[k]
	}
	// Quantize the cap without overflowing int for huge/infinite caps.
	capQ := sumQ
	if ratio := profitCap / profitQuantum; ratio < float64(sumQ) {
		capQ = int(math.Floor(ratio + 1e-9))
	}
	if capQ <= 0 {
		return Solution{}, nil
	}
	const inf = math.MaxFloat64
	sc := getScratch()
	defer putScratch(sc)
	width := capQ + 1
	// minW[q] = minimum weight achieving quantized profit exactly q.
	minW := sc.floats(width)
	rows := sc.bools(len(idxs) * width)
	for q := 1; q <= capQ; q++ {
		minW[q] = inf
	}
	for k, i := range idxs {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		row := rows[k*width : (k+1)*width]
		w := items[i].Weight
		for q := capQ; q >= scaled[k]; q-- {
			if prev := minW[q-scaled[k]]; prev < inf {
				if cand := prev + w; cand < minW[q] {
					minW[q] = cand
					row[q] = true
				}
			}
		}
	}
	bestQ := 0
	for q := capQ; q > 0; q-- {
		if minW[q] <= capacity {
			bestQ = q
			break
		}
	}
	var picked []int
	q := bestQ
	for k := len(idxs) - 1; k >= 0 && q > 0; k-- {
		if rows[k*width+q] {
			picked = append(picked, idxs[k])
			q -= scaled[k]
		}
	}
	return finish(items, picked), nil
}
