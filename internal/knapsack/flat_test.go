package knapsack

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// bruteFlat exhaustively maximizes profit over subsets with quantized
// weight ≤ capU (free items included automatically via wq = 0).
func bruteFlat(profit []float64, wq []int32, capU int) float64 {
	n := len(profit)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		p, w := 0.0, 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				if profit[i] <= 0 {
					p = math.Inf(-1) // never optimal to force a useless item
					break
				}
				p += profit[i]
				w += int(wq[i])
			}
		}
		if w <= capU && p > best {
			best = p
		}
	}
	return best
}

// bruteFlatCapped maximizes profit under weight ≤ capacity and profit ≤ cap.
func bruteFlatCapped(profit, weight []float64, capacity, profitCap float64) float64 {
	n := len(profit)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		p, w := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p += profit[i]
				w += weight[i]
			}
		}
		if w <= capacity && p <= profitCap+1e-9 && p > best {
			best = p
		}
	}
	return best
}

func checkPicks(t *testing.T, picks []int32, profit []float64, wq []int32, capU int, total float64) {
	t.Helper()
	sumP, sumW := 0.0, 0
	for i, p := range picks {
		if i > 0 && picks[i-1] >= p {
			t.Fatalf("picks not strictly ascending: %v", picks)
		}
		sumP += profit[p]
		sumW += int(wq[p])
	}
	if sumW > capU {
		t.Fatalf("picks weigh %d > capU %d", sumW, capU)
	}
	if math.Abs(sumP-total) > 1e-9 {
		t.Fatalf("reported profit %v != sum of picks %v", total, sumP)
	}
}

func TestDPFlatMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewArena()
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		profit := make([]float64, n)
		wq := make([]int32, n)
		for i := range profit {
			profit[i] = math.Round(rng.Float64()*100) / 10 // some exact ties
			if rng.Intn(8) == 0 {
				profit[i] = -profit[i] // dead candidate
			}
			wq[i] = int32(rng.Intn(9)) // includes zero-weight freebies
		}
		capU := rng.Intn(20)
		picks, total, err := a.DPFlat(context.Background(), profit, wq, capU)
		if err != nil {
			t.Fatal(err)
		}
		checkPicks(t, picks, profit, wq, capU, total)
		if want := bruteFlat(profit, wq, capU); math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: DPFlat %v != brute %v (profit=%v wq=%v capU=%d)",
				trial, total, want, profit, wq, capU)
		}
	}
}

func TestDPFlatTakeAllWhenRoomy(t *testing.T) {
	// Capacity at least the total weight: the suffix clamp collapses every
	// row to a single cell and the traceback must still take everything.
	a := NewArena()
	profit := []float64{1, 2, 3, 4, 5}
	wq := []int32{3, 1, 4, 1, 5}
	picks, total, err := a.DPFlat(context.Background(), profit, wq, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 5 || total != 15 {
		t.Fatalf("want all 5 items (profit 15), got picks=%v total=%v", picks, total)
	}
}

func TestDPFlatEdgeCases(t *testing.T) {
	a := NewArena()
	ctx := context.Background()
	if picks, total, _ := a.DPFlat(ctx, nil, nil, 10); len(picks) != 0 || total != 0 {
		t.Fatalf("empty input: got %v/%v", picks, total)
	}
	// Everything too heavy.
	if picks, _, _ := a.DPFlat(ctx, []float64{5, 5}, []int32{9, 9}, 4); len(picks) != 0 {
		t.Fatalf("over-capacity items picked: %v", picks)
	}
	// capU = 0 still packs zero-weight items.
	picks, total, _ := a.DPFlat(ctx, []float64{5, 7, 3}, []int32{0, 2, 0}, 0)
	if len(picks) != 2 || picks[0] != 0 || picks[1] != 2 || total != 8 {
		t.Fatalf("free items under capU=0: picks=%v total=%v", picks, total)
	}
	// Negative capacity is an empty solve, not a panic.
	if picks, _, _ := a.DPFlat(ctx, []float64{5}, []int32{1}, -1); len(picks) != 0 {
		t.Fatalf("capU<0 picked %v", picks)
	}
}

func TestFPTASFlatGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewArena()
	const eps = 0.2
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		profit := make([]float64, n)
		weight := make([]float64, n)
		wq := make([]int32, n)
		for i := range profit {
			profit[i] = 0.5 + rng.Float64()*10
			wq[i] = int32(1 + rng.Intn(8))
			weight[i] = float64(wq[i])
		}
		capacity := float64(rng.Intn(20))
		picks, total, err := a.FPTASFlat(context.Background(), eps, profit, weight, capacity)
		if err != nil {
			t.Fatal(err)
		}
		checkPicks(t, picks, profit, wq, int(capacity), total)
		opt := bruteFlat(profit, wq, int(capacity))
		if total < (1-eps)*opt-1e-9 {
			t.Fatalf("trial %d: FPTAS %v < (1-eps)*OPT %v", trial, total, (1-eps)*opt)
		}
	}
}

func TestMaxProfitUnderFlatMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewArena()
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		profit := make([]float64, n)
		weight := make([]float64, n)
		for i := range profit {
			profit[i] = float64(1 + rng.Intn(10)) // integral: quantum 1 is exact
			weight[i] = float64(rng.Intn(8))
		}
		capacity := float64(rng.Intn(18))
		profitCap := float64(1 + rng.Intn(25))
		_, total, err := a.MaxProfitUnderFlat(context.Background(), profit, weight, capacity, profitCap, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteFlatCapped(profit, weight, capacity, profitCap); math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: MaxProfitUnderFlat %v != brute %v", trial, total, want)
		}
	}
}

func TestBranchAndBoundFlatMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := NewArena()
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		profit := make([]float64, n)
		weight := make([]float64, n)
		wq := make([]int32, n)
		for i := range profit {
			profit[i] = 0.25 + rng.Float64()*8
			wq[i] = int32(rng.Intn(7))
			weight[i] = float64(wq[i])
		}
		capacity := float64(rng.Intn(16))
		picks, total, err := a.BranchAndBoundFlat(context.Background(), profit, weight, capacity)
		if err != nil {
			t.Fatal(err)
		}
		checkPicks(t, picks, profit, wq, int(capacity), total)
		if want := bruteFlat(profit, wq, int(capacity)); math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: B&B %v != brute %v", trial, total, want)
		}
	}
}

// kernelFixture is a mid-size instance used by the allocation gates below:
// big enough that a lazily grown buffer would show up, small enough to run
// thousands of times.
func kernelFixture(n int, seed int64) (profit, weight []float64, wq []int32) {
	rng := rand.New(rand.NewSource(seed))
	profit = make([]float64, n)
	weight = make([]float64, n)
	wq = make([]int32, n)
	for i := range profit {
		profit[i] = 0.1 + rng.Float64()*5
		wq[i] = int32(rng.Intn(12))
		weight[i] = float64(wq[i])
	}
	return
}

func TestNoAllocsDPFlat(t *testing.T) {
	a := NewArena()
	profit, _, wq := kernelFixture(64, 1)
	run := func() {
		if _, _, err := a.DPFlat(context.Background(), profit, wq, 100); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("DPFlat allocates %v per run after warmup", n)
	}
}

func TestNoAllocsFPTASFlat(t *testing.T) {
	a := NewArena()
	profit, weight, _ := kernelFixture(48, 2)
	run := func() {
		if _, _, err := a.FPTASFlat(context.Background(), 0.3, profit, weight, 80); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("FPTASFlat allocates %v per run after warmup", n)
	}
}

func TestNoAllocsMaxProfitUnderFlat(t *testing.T) {
	a := NewArena()
	profit, weight, _ := kernelFixture(48, 3)
	run := func() {
		if _, _, err := a.MaxProfitUnderFlat(context.Background(), profit, weight, 80, 40, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("MaxProfitUnderFlat allocates %v per run after warmup", n)
	}
}

func TestNoAllocsBranchAndBoundFlat(t *testing.T) {
	a := NewArena()
	profit, weight, _ := kernelFixture(20, 4)
	run := func() {
		if _, _, err := a.BranchAndBoundFlat(context.Background(), profit, weight, 30); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("BranchAndBoundFlat allocates %v per run after warmup", n)
	}
}

// TestArenaKernelInterleaving reuses one arena across kernels of different
// shapes and sizes — stale buffer contents from one call must never leak
// into the next.
func TestArenaKernelInterleaving(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := NewArena()
	fresh := NewArena()
	ctx := context.Background()
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(14)
		profit, weight, wq := kernelFixture(n, rng.Int63())
		capU := rng.Intn(24)
		var got, want float64
		switch trial % 3 {
		case 0:
			_, got, _ = a.DPFlat(ctx, profit, wq, capU)
			_, want, _ = fresh.DPFlat(ctx, profit, wq, capU)
		case 1:
			_, got, _ = a.FPTASFlat(ctx, 0.25, profit, weight, float64(capU))
			_, want, _ = fresh.FPTASFlat(ctx, 0.25, profit, weight, float64(capU))
		default:
			_, got, _ = a.BranchAndBoundFlat(ctx, profit, weight, float64(capU))
			_, want, _ = fresh.BranchAndBoundFlat(ctx, profit, weight, float64(capU))
		}
		if got != want {
			t.Fatalf("trial %d: interleaved arena %v != fresh arena %v", trial, got, want)
		}
	}
}

func TestFlatKernelsCancel(t *testing.T) {
	a := NewArena()
	profit, weight, wq := kernelFixture(32, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := a.DPFlat(ctx, profit, wq, 50); err == nil {
		t.Error("DPFlat ignored canceled context")
	}
	if _, _, err := a.FPTASFlat(ctx, 0.2, profit, weight, 50); err == nil {
		t.Error("FPTASFlat ignored canceled context")
	}
	if _, _, err := a.MaxProfitUnderFlat(ctx, profit, weight, 50, 20, 1); err == nil {
		t.Error("MaxProfitUnderFlat ignored canceled context")
	}
	if _, _, err := a.BranchAndBoundFlat(ctx, profit, weight, 50); err == nil {
		t.Error("BranchAndBoundFlat ignored canceled context")
	}
}
