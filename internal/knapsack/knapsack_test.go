package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce enumerates all subsets — ground truth for small instances.
func bruteForce(items []Item, capacity float64) Solution {
	n := len(items)
	best := Solution{}
	for mask := 0; mask < 1<<n; mask++ {
		var w, p float64
		var picked []int
		ok := true
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			if items[i].Profit <= 0 || items[i].Weight < 0 {
				ok = false
				break
			}
			w += items[i].Weight
			p += items[i].Profit
			picked = append(picked, i)
		}
		if ok && w <= capacity && p > best.Profit {
			best = Solution{Picked: picked, Profit: p, Weight: w}
		}
	}
	return best
}

func randItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Profit: math.Floor(rng.Float64()*1000) / 10,
			Weight: math.Floor(rng.Float64()*500) / 10,
		}
	}
	return items
}

func checkFeasible(t *testing.T, name string, items []Item, capacity float64, s Solution) {
	t.Helper()
	var w, p float64
	seen := map[int]bool{}
	for _, i := range s.Picked {
		if i < 0 || i >= len(items) {
			t.Fatalf("%s: index %d out of range", name, i)
		}
		if seen[i] {
			t.Fatalf("%s: duplicate index %d", name, i)
		}
		seen[i] = true
		w += items[i].Weight
		p += items[i].Profit
	}
	if w > capacity+1e-9 {
		t.Fatalf("%s: infeasible weight %v > %v", name, w, capacity)
	}
	if math.Abs(w-s.Weight) > 1e-9 || math.Abs(p-s.Profit) > 1e-9 {
		t.Fatalf("%s: reported (p=%v,w=%v) != actual (p=%v,w=%v)", name, s.Profit, s.Weight, p, w)
	}
}

func TestSolversOnKnownInstance(t *testing.T) {
	items := []Item{
		{Profit: 60, Weight: 10},
		{Profit: 100, Weight: 20},
		{Profit: 120, Weight: 30},
	}
	const capacity = 50
	want := 220.0 // items 1+2
	for name, solve := range map[string]Solver{
		"bb":    BranchAndBound,
		"dp":    func(it []Item, c float64) Solution { return DP(it, c, 0.5) },
		"fptas": FPTAS(0.01),
	} {
		s := solve(items, capacity)
		checkFeasible(t, name, items, capacity, s)
		if s.Profit != want {
			t.Errorf("%s: profit = %v, want %v", name, s.Profit, want)
		}
	}
	g := Greedy(items, capacity)
	checkFeasible(t, "greedy", items, capacity, g)
	if g.Profit < want/2 {
		t.Errorf("greedy profit %v below half of optimum %v", g.Profit, want)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	for name, solve := range map[string]Solver{
		"greedy": Greedy,
		"bb":     BranchAndBound,
		"dp":     func(it []Item, c float64) Solution { return DP(it, c, 1e-3) },
		"fptas":  FPTAS(0.3),
	} {
		if s := solve(nil, 10); len(s.Picked) != 0 || s.Profit != 0 {
			t.Errorf("%s: nil items must give empty solution, got %+v", name, s)
		}
		// All items unusable: zero/negative profit, or too heavy.
		items := []Item{{Profit: 0, Weight: 1}, {Profit: -5, Weight: 1}, {Profit: 10, Weight: 99}}
		if s := solve(items, 50); len(s.Picked) != 0 {
			t.Errorf("%s: unusable items must not be picked, got %+v", name, s)
		}
		// Zero-weight positive-profit item must always be packed by exact
		// solvers; greedy also picks it (infinite density).
		items2 := []Item{{Profit: 5, Weight: 0}, {Profit: 10, Weight: 10}}
		s := solve(items2, 10)
		checkFeasible(t, name, items2, 10, s)
		if name != "fptas" && s.Profit != 15 {
			t.Errorf("%s: profit = %v, want 15", name, s.Profit)
		}
		if name == "fptas" && s.Profit < 15*0.7 {
			t.Errorf("fptas: profit = %v, want >= %v", s.Profit, 15*0.7)
		}
		// Zero capacity: only zero-weight items fit.
		s = solve(items2, 0)
		checkFeasible(t, name, items2, 0, s)
	}
}

func TestExactSolversMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		items := randItems(rng, n)
		capacity := rng.Float64() * 150
		want := bruteForce(items, capacity)
		bb := BranchAndBound(items, capacity)
		checkFeasible(t, "bb", items, capacity, bb)
		if math.Abs(bb.Profit-want.Profit) > 1e-9 {
			t.Fatalf("trial %d: bb profit %v != optimum %v (items=%v cap=%v)",
				trial, bb.Profit, want.Profit, items, capacity)
		}
		dp := DP(items, capacity, 0.1) // weights are multiples of 0.1
		checkFeasible(t, "dp", items, capacity, dp)
		if math.Abs(dp.Profit-want.Profit) > 1e-9 {
			t.Fatalf("trial %d: dp profit %v != optimum %v (items=%v cap=%v)",
				trial, dp.Profit, want.Profit, items, capacity)
		}
	}
}

func TestGreedyHalfApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		items := randItems(rng, n)
		capacity := rng.Float64() * 150
		opt := BranchAndBound(items, capacity)
		g := Greedy(items, capacity)
		checkFeasible(t, "greedy", items, capacity, g)
		if g.Profit < opt.Profit/2-1e-9 {
			t.Fatalf("trial %d: greedy %v < OPT/2 = %v", trial, g.Profit, opt.Profit/2)
		}
	}
}

func TestFPTASGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, eps := range []float64{0.1, 0.3, 0.5} {
		solve := FPTAS(eps)
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(12)
			items := randItems(rng, n)
			capacity := rng.Float64() * 150
			opt := BranchAndBound(items, capacity)
			s := solve(items, capacity)
			checkFeasible(t, "fptas", items, capacity, s)
			if s.Profit < (1-eps)*opt.Profit-1e-9 {
				t.Fatalf("eps=%v trial %d: fptas %v < (1-eps)*OPT = %v",
					eps, trial, s.Profit, (1-eps)*opt.Profit)
			}
		}
	}
}

func TestFPTASPanicsOnBadEps(t *testing.T) {
	for _, eps := range []float64{0, -0.5, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FPTAS(%v) must panic", eps)
				}
			}()
			FPTAS(eps)
		}()
	}
}

func TestDPQuantizationIsConservative(t *testing.T) {
	// Coarse quantum must still give a feasible (if suboptimal) packing.
	items := []Item{{Profit: 10, Weight: 3.3}, {Profit: 10, Weight: 3.3}, {Profit: 10, Weight: 3.3}}
	s := DP(items, 10, 1.0) // weights round up to 4, cap 10 → 2 items
	checkFeasible(t, "dp-coarse", items, 10, s)
	if len(s.Picked) != 2 {
		t.Errorf("coarse DP picked %d items, want 2 (conservative rounding)", len(s.Picked))
	}
	s = DP(items, 10, 0.1) // exact: 3 items fit (9.9 <= 10)
	if len(s.Picked) != 3 {
		t.Errorf("fine DP picked %d items, want 3", len(s.Picked))
	}
	// Non-positive quantum falls back to a tiny default.
	s = DP(items, 10, 0)
	checkFeasible(t, "dp-defaultq", items, 10, s)
	if len(s.Picked) != 3 {
		t.Errorf("default-quantum DP picked %d, want 3", len(s.Picked))
	}
}

func TestLargeUniformWeights(t *testing.T) {
	// Mirrors the fixed-power special case: all weights equal, solver must
	// pick the k most profitable items.
	items := make([]Item, 40)
	for i := range items {
		items[i] = Item{Profit: float64(i + 1), Weight: 2}
	}
	capacity := 10.0 // exactly 5 items
	for name, solve := range map[string]Solver{
		"bb": BranchAndBound, "greedy": Greedy,
		"dp":    func(it []Item, c float64) Solution { return DP(it, c, 1) },
		"fptas": FPTAS(0.05),
	} {
		s := solve(items, capacity)
		checkFeasible(t, name, items, capacity, s)
		want := 40.0 + 39 + 38 + 37 + 36
		if name == "fptas" {
			if s.Profit < 0.95*want {
				t.Errorf("%s profit %v < 0.95·%v", name, s.Profit, want)
			}
		} else if s.Profit != want {
			t.Errorf("%s profit = %v, want %v", name, s.Profit, want)
		}
	}
}

func BenchmarkBranchAndBound80(b *testing.B) { benchSolver(b, BranchAndBound, 80) }
func BenchmarkGreedy80(b *testing.B)         { benchSolver(b, Greedy, 80) }
func BenchmarkFPTAS80(b *testing.B)          { benchSolver(b, FPTAS(0.2), 80) }
func BenchmarkDP80(b *testing.B) {
	benchSolver(b, func(it []Item, c float64) Solution { return DP(it, c, 0.01) }, 80)
}

// benchSolver mimics a per-sensor instance: |A(v)| = 2Γ = 80 slots, 4 power
// tiers, tight energy budget.
func benchSolver(b *testing.B, solve Solver, n int) {
	rng := rand.New(rand.NewSource(1))
	items := make([]Item, n)
	weights := []float64{0.17, 0.22, 0.30, 0.33}
	rates := []float64{250e3, 19.2e3, 9.6e3, 4.8e3}
	for i := range items {
		k := rng.Intn(4)
		items[i] = Item{Profit: rates[k], Weight: weights[k]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solve(items, 2.0)
	}
}
