package knapsack

// Flat kernels: the zero-steady-state-allocation core of every solver in
// this package. Each kernel operates on parallel candidate arrays
// (structure-of-arrays instead of []Item), draws every table from a
// caller-held Arena, and appends its picks to an arena-backed buffer —
// after the arena has warmed up, a kernel call performs no heap
// allocation at all (gated by TestNoAllocs* in flat_test.go).
//
// The DP kernels additionally clamp each row to the prefix weight sum of
// the items processed so far and skip the per-call clearing of the choice
// matrix: rows are written unconditionally inside the reachable range and
// the traceback re-derives the (provably constant) choice outside it, so
// the kernels return bit-identical picks to the classic full-range
// formulation while touching a fraction of the memory.

import (
	"context"
	"math"
	"slices"
)

// Arena is the reusable scratch shared by the flat kernels. The zero
// value is ready to use; buffers grow on demand and are retained across
// calls. An Arena must not be used concurrently; pooled callers hold one
// arena per goroutine (see arenaPool).
type Arena struct {
	dp    []float64 // DP value / minimum-weight row
	rows  []bool    // flat choice matrix, never cleared
	pre   []int     // prefix sums of quantized weights / scaled profits
	sq    []int32   // scaled profits (FPTAS / profit-capped DP)
	idx   []int32   // active candidate positions
	free  []int32   // zero-weight always-picked candidates
	picks []int32   // traceback output, reused across calls
	ord   []int32   // branch-and-bound density order
	cur   []int32   // branch-and-bound current set
	best  []int32   // branch-and-bound incumbent set
	mark  []bool    // branch-and-bound pick marks

	// wrapper-level buffers for the []Item entry points
	wprof []float64
	wwt   []float64
	wq    []int32
	wmap  []int32
}

// NewArena returns an empty arena (equivalent to new(Arena); provided for
// discoverability).
func NewArena() *Arena { return new(Arena) }

// arenaFloats returns a length-n slice backed by the arena without
// clearing it; callers overwrite every element they read.
func (a *Arena) floats(n int) []float64 {
	if cap(a.dp) < n {
		a.dp = make([]float64, n)
	}
	return a.dp[:n]
}

func (a *Arena) bools(n int) []bool {
	if cap(a.rows) < n {
		a.rows = make([]bool, n)
	}
	return a.rows[:n]
}

func (a *Arena) ints(n int) []int {
	if cap(a.pre) < n {
		a.pre = make([]int, n)
	}
	return a.pre[:n]
}

func (a *Arena) int32s(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	return (*buf)[:n]
}

// arenaMax bounds how large a retained buffer may grow; a one-off huge
// instance does not pin its tables forever.
const arenaMax = 1 << 22

// Trim drops oversized buffers so pooled arenas do not pin memory from a
// one-off huge instance.
func (a *Arena) Trim() {
	if cap(a.dp) > arenaMax {
		a.dp = nil
	}
	if cap(a.rows) > arenaMax {
		a.rows = nil
	}
	if cap(a.pre) > arenaMax {
		a.pre = nil
	}
	if cap(a.wprof) > arenaMax {
		a.wprof, a.wwt, a.wq, a.wmap = nil, nil, nil, nil
	}
}

// mergeFree merges the ascending free-item positions into the ascending
// picks, keeping the combined sequence ascending, and returns the summed
// profit of the free items.
func (a *Arena) mergeFree(profit []float64) float64 {
	if len(a.free) == 0 {
		return 0
	}
	total := 0.0
	for _, i := range a.free {
		total += profit[i]
	}
	merged := append(a.picks, a.free...) // may grow; reuse backing next call
	// Both runs are ascending; a single backward merge keeps it in place.
	i, j := len(a.picks)-1, len(a.free)-1
	for k := len(merged) - 1; j >= 0; k-- {
		if i >= 0 && a.picks[i] > a.free[j] {
			merged[k] = a.picks[i]
			i--
		} else {
			merged[k] = a.free[j]
			j--
		}
	}
	a.picks = merged
	return total
}

// DPFlat solves the 0/1 knapsack exactly over quantized weights: candidate
// i has profit[i] and integral weight wq[i], the capacity is capU quanta.
// Candidates with non-positive profit or wq > capU are skipped; zero-weight
// positive-profit candidates are always packed. It returns the picked
// candidate positions in ascending order (backed by the arena — valid only
// until its next kernel call) and their summed profit. The context is
// polled once per item layer.
//
// The picks are bit-identical to the textbook full-range DP with strict
// improvement ('>') and a descending traceback.
func (a *Arena) DPFlat(ctx context.Context, profit []float64, wq []int32, capU int) ([]int32, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	a.idx = a.idx[:0]
	a.free = a.free[:0]
	a.picks = a.picks[:0]
	if capU < 0 {
		return a.picks, 0, nil
	}
	sumQ := 0
	for i := range profit {
		if profit[i] <= 0 {
			continue
		}
		w := int(wq[i])
		if w == 0 {
			a.free = append(a.free, int32(i))
			continue
		}
		if w > capU {
			continue
		}
		a.idx = append(a.idx, int32(i))
		sumQ += w
	}
	m := len(a.idx)
	if m == 0 {
		total := a.mergeFree(profit)
		return a.picks, total, nil
	}
	capQ := capU
	if capQ > sumQ {
		capQ = sumQ
	}
	width := capQ + 1
	dp := a.floats(width)
	for i := range dp {
		dp[i] = 0
	}
	rows := a.bools(m * width) // never cleared: see traceback guards
	pre := a.ints(m)
	run := 0
	slack := sumQ - capQ // ≥ 0 after the clamp above
	prevHi := capQ       // dp starts zeroed, i.e. valid over the whole range
	for k := 0; k < m; k++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		i := a.idx[k]
		wk := int(wq[i])
		p := profit[i]
		run += wk
		pre[k] = run
		hi := capQ
		if run < hi {
			hi = run
		}
		// Row k is only ever read for weights in [lo, hi]. Above the
		// prefix weight sum the full DP is a flat value region where
		// "take" always wins, so the traceback re-derives that constant
		// choice instead of storing it; below capQ − suffixWeight(k+1..)
		// = run − slack no traceback state can land (the remaining items
		// cannot make up the difference to capQ), so those rows are dead.
		// Before touching the new band (prevHi, hi] extend the flat tail
		// value so stale cells match what the full DP holds there —
		// O(capQ) total across all layers.
		if hi > prevHi {
			flat := dp[prevHi]
			for x := prevHi + 1; x <= hi; x++ {
				dp[x] = flat
			}
		}
		prevHi = hi
		lo := run - slack
		if lo < wk {
			lo = wk
		}
		dst := dp[lo : hi+1]
		src := dp[lo-wk : hi+1-wk]
		rw := rows[k*width+lo : k*width+hi+1]
		src = src[:len(dst)]
		rw = rw[:len(dst)]
		for x := len(dst) - 1; x >= 0; x-- {
			cand := src[x] + p
			if cand > dst[x] {
				dst[x] = cand
				rw[x] = true
			} else {
				rw[x] = false
			}
		}
	}
	// Traceback, picks emitted in descending k then reversed to ascending.
	w := capQ
	total := 0.0
	for k := m - 1; k >= 0; k-- {
		i := a.idx[k]
		wk := int(wq[i])
		if w > pre[k] {
			// w exceeds what the first k+1 items can weigh together, so
			// the full DP is in its flat value region where adding item k
			// (positive profit) always improves: the row is "take" without
			// having been stored.
			a.picks = append(a.picks, i)
			total += profit[i]
			w -= wk
			continue
		}
		if w >= wk && rows[k*width+w] {
			a.picks = append(a.picks, i)
			total += profit[i]
			w -= wk
		}
	}
	slices.Reverse(a.picks)
	total += a.mergeFree(profit)
	return a.picks, total, nil
}

// minWeightDP is the shared min-weight-per-scaled-profit dynamic program
// behind FPTASFlat and MaxProfitUnderFlat: a.idx holds the active
// candidate positions, a.sq their positive scaled profits, capS the
// scaled-profit table bound. It fills a.picks (ascending) and returns the
// summed real profit of the picks.
func (a *Arena) minWeightDP(ctx context.Context, profit, weight []float64, capacity float64, capS int) (float64, error) {
	m := len(a.idx)
	width := capS + 1
	minW := a.floats(width)
	const inf = math.MaxFloat64
	minW[0] = 0
	for q := 1; q < width; q++ {
		minW[q] = inf
	}
	rows := a.bools(m * width) // never cleared: see traceback guards
	pre := a.ints(m)
	run := 0
	for k := 0; k < m; k++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		i := a.idx[k]
		s := int(a.sq[k])
		w := weight[i]
		run += s
		pre[k] = run
		hi := capS
		if run < hi {
			hi = run
		}
		if s > hi {
			// The item's scaled profit alone exceeds the table bound; the
			// full DP's update loop is empty here.
			continue
		}
		dst := minW[s : hi+1]
		src := minW[:hi+1-s]
		rw := rows[k*width+s : k*width+hi+1]
		src = src[:len(dst)]
		rw = rw[:len(dst)]
		for x := len(dst) - 1; x >= 0; x-- {
			cand := src[x] + w // inf stays inf: unreachable sources never win
			d := dst[x]
			rw[x] = cand < d
			dst[x] = min(d, cand)
		}
	}
	bestQ := 0
	for q := capS; q > 0; q-- {
		if minW[q] <= capacity {
			bestQ = q
			break
		}
	}
	a.picks = a.picks[:0]
	total := 0.0
	q := bestQ
	for k := m - 1; k >= 0 && q > 0; k-- {
		s := int(a.sq[k])
		if q > pre[k] {
			// Beyond the prefix sum every source is unreachable (inf), so
			// the full DP never marks "take" here.
			continue
		}
		if q >= s && rows[k*width+q] {
			i := a.idx[k]
			a.picks = append(a.picks, i)
			total += profit[i]
			q -= s
		}
	}
	slices.Reverse(a.picks)
	return total, nil
}

// FPTASFlat is the Lawler profit-scaling FPTAS over candidate arrays:
// profit ≥ (1−eps)·OPT, picks ascending and arena-backed, zero
// steady-state allocation. Candidates must already satisfy the float
// feasibility filter the caller owns (weight ≥ 0); non-positive profits
// and weights exceeding the capacity are skipped here.
func (a *Arena) FPTASFlat(ctx context.Context, eps float64, profit, weight []float64, capacity float64) ([]int32, float64, error) {
	if eps <= 0 || eps >= 1 {
		panic("knapsack: FPTAS epsilon must be in (0,1)")
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	a.idx = a.idx[:0]
	a.picks = a.picks[:0]
	pmax := 0.0
	for i := range profit {
		if profit[i] > 0 && weight[i] >= 0 && weight[i] <= capacity {
			a.idx = append(a.idx, int32(i))
			if profit[i] > pmax {
				pmax = profit[i]
			}
		}
	}
	m := len(a.idx)
	if m == 0 {
		return a.picks, 0, nil
	}
	k := eps * pmax / float64(m)
	sq := a.int32s(&a.sq, m)
	capS := 0
	for j, i := range a.idx {
		sq[j] = int32(math.Floor(profit[i] / k))
		capS += int(sq[j])
	}
	total, err := a.minWeightDP(ctx, profit, weight, capacity, capS)
	if err != nil {
		return nil, 0, err
	}
	return a.picks, total, nil
}

// MaxProfitUnderFlat maximizes profit subject to both the weight capacity
// and a profit ceiling (quantized by profitQuantum), the kernel behind
// MaxProfitUnderCtx. Picks ascending, arena-backed.
func (a *Arena) MaxProfitUnderFlat(ctx context.Context, profit, weight []float64, capacity, profitCap, profitQuantum float64) ([]int32, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	a.idx = a.idx[:0]
	a.picks = a.picks[:0]
	if profitCap <= 0 {
		return a.picks, 0, nil
	}
	if profitQuantum <= 0 {
		profitQuantum = 1
	}
	for i := range profit {
		if profit[i] >= profitQuantum && weight[i] >= 0 && weight[i] <= capacity {
			a.idx = append(a.idx, int32(i))
		}
	}
	m := len(a.idx)
	if m == 0 {
		return a.picks, 0, nil
	}
	sq := a.int32s(&a.sq, m)
	sumS := 0
	for j, i := range a.idx {
		sq[j] = int32(math.Ceil(profit[i]/profitQuantum - 1e-9))
		sumS += int(sq[j])
	}
	capS := sumS
	if ratio := profitCap / profitQuantum; ratio < float64(sumS) {
		capS = int(math.Floor(ratio + 1e-9))
	}
	if capS <= 0 {
		return a.picks, 0, nil
	}
	total, err := a.minWeightDP(ctx, profit, weight, capacity, capS)
	if err != nil {
		return nil, 0, err
	}
	return a.picks, total, nil
}

// bbState carries the branch-and-bound search state so the recursion
// needs no closure (closures allocate; a stack-resident state struct does
// not).
type bbState struct {
	ctx        context.Context
	profit     []float64
	weight     []float64
	ord        []int32
	cur        []int32
	best       []int32
	bestProfit float64
	nodes      int
	canceled   bool
}

func (st *bbState) dfs(k int, left, profit float64) {
	if st.canceled {
		return
	}
	st.nodes++
	if st.nodes%nodeCheckInterval == 0 && st.ctx.Err() != nil {
		st.canceled = true
		return
	}
	if profit > st.bestProfit {
		st.bestProfit = profit
		st.best = append(st.best[:0], st.cur...)
	}
	if k == len(st.ord) {
		return
	}
	// Fractional (LP relaxation) bound on the remaining items.
	bound := 0.0
	rem := left
	for _, oi := range st.ord[k:] {
		w := st.weight[oi]
		if w <= rem {
			bound += st.profit[oi]
			rem -= w
		} else {
			if w > 0 {
				bound += st.profit[oi] * rem / w
			}
			break
		}
	}
	if profit+bound+1e-12 <= st.bestProfit {
		return
	}
	it := st.ord[k]
	if w := st.weight[it]; w <= left {
		st.cur = append(st.cur, it)
		st.dfs(k+1, left-w, profit+st.profit[it])
		st.cur = st.cur[:len(st.cur)-1]
	}
	st.dfs(k+1, left, profit)
}

// BranchAndBoundFlat solves the knapsack exactly over candidate arrays
// with the density-ordered depth-first search and fractional bound of
// BranchAndBoundCtx, all state arena-backed. Picks ascending.
func (a *Arena) BranchAndBoundFlat(ctx context.Context, profit, weight []float64, capacity float64) ([]int32, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	a.picks = a.picks[:0]
	ord := a.int32s(&a.ord, 0)[:0]
	for i := range profit {
		if profit[i] > 0 && weight[i] >= 0 && weight[i] <= capacity {
			ord = append(ord, int32(i))
		}
	}
	a.ord = ord
	if len(ord) == 0 {
		return a.picks, 0, nil
	}
	slices.SortFunc(ord, func(x, y int32) int {
		dx, dy := math.Inf(1), math.Inf(1)
		if weight[x] > 0 {
			dx = profit[x] / weight[x]
		}
		if weight[y] > 0 {
			dy = profit[y] / weight[y]
		}
		if dx != dy {
			if dx > dy {
				return -1
			}
			return 1
		}
		if x != y {
			if x < y {
				return -1
			}
			return 1
		}
		return 0
	})
	if cap(a.cur) < len(ord) {
		a.cur = make([]int32, 0, len(ord))
		a.best = make([]int32, 0, len(ord))
	}
	st := bbState{
		ctx: ctx, profit: profit, weight: weight,
		ord: ord, cur: a.cur[:0], best: a.best[:0],
		bestProfit: -1,
	}
	st.dfs(0, capacity, 0)
	a.cur, a.best = st.cur[:0], st.best // retain grown backing arrays
	if st.canceled {
		return nil, 0, context.Cause(ctx)
	}
	// Emit the incumbent ascending without sorting: mark and scan.
	marks := a.mark
	if cap(marks) < len(profit) {
		marks = make([]bool, len(profit))
		a.mark = marks
	}
	marks = marks[:len(profit)]
	for _, i := range st.best {
		marks[i] = true
	}
	total := 0.0
	for i := range marks {
		if marks[i] {
			a.picks = append(a.picks, int32(i))
			total += profit[i]
			marks[i] = false
		}
	}
	return a.picks, total, nil
}
