package knapsack

import "context"

// MaxProfitUnder solves the doubly-constrained 0/1 knapsack: maximize total
// profit subject to total weight ≤ capacity AND total profit ≤ profitCap.
// It is the per-sensor subproblem when sensors hold a finite amount of
// sensed data (the paper assumes unbounded data; this lifts that
// assumption): profit is exactly the data uploaded, so the data queue is a
// cap on total profit.
//
// Profits are quantized to multiples of profitQuantum (each item's profit
// rounds UP, the cap rounds DOWN), so the returned packing is always
// feasible for the true cap and its true profit is within
// len(items)·profitQuantum of the constrained optimum; with a quantum that
// exactly divides every profit (the discrete rate table), the result is
// exact. The weight dimension is handled exactly via minimum-weight DP per
// quantized profit.
func MaxProfitUnder(items []Item, capacity, profitCap, profitQuantum float64) Solution {
	s, _ := MaxProfitUnderCtx(context.Background(), items, capacity, profitCap, profitQuantum)
	return s
}

// CappedSolver returns a Solver-compatible closure over fixed profit cap
// and quantum, for plugging the doubly-constrained knapsack into code that
// expects a plain Solver.
func CappedSolver(profitCap, profitQuantum float64) Solver {
	return func(items []Item, capacity float64) Solution {
		return MaxProfitUnder(items, capacity, profitCap, profitQuantum)
	}
}
