package knapsack

import "math"

// MaxProfitUnder solves the doubly-constrained 0/1 knapsack: maximize total
// profit subject to total weight ≤ capacity AND total profit ≤ profitCap.
// It is the per-sensor subproblem when sensors hold a finite amount of
// sensed data (the paper assumes unbounded data; this lifts that
// assumption): profit is exactly the data uploaded, so the data queue is a
// cap on total profit.
//
// Profits are quantized to multiples of profitQuantum (each item's profit
// rounds UP, the cap rounds DOWN), so the returned packing is always
// feasible for the true cap and its true profit is within
// len(items)·profitQuantum of the constrained optimum; with a quantum that
// exactly divides every profit (the discrete rate table), the result is
// exact. The weight dimension is handled exactly via minimum-weight DP per
// quantized profit.
func MaxProfitUnder(items []Item, capacity, profitCap, profitQuantum float64) Solution {
	if profitCap <= 0 {
		return Solution{}
	}
	if profitQuantum <= 0 {
		profitQuantum = 1
	}
	idxs := make([]int, 0, len(items))
	for i, it := range items {
		if usable(it, capacity) && it.Profit >= profitQuantum {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return Solution{}
	}
	sumQ := 0
	scaled := make([]int, len(idxs))
	for k, i := range idxs {
		scaled[k] = int(math.Ceil(items[i].Profit/profitQuantum - 1e-9))
		sumQ += scaled[k]
	}
	// Quantize the cap without overflowing int for huge/infinite caps.
	capQ := sumQ
	if ratio := profitCap / profitQuantum; ratio < float64(sumQ) {
		capQ = int(math.Floor(ratio + 1e-9))
	}
	if capQ <= 0 {
		return Solution{}
	}
	const inf = math.MaxFloat64
	// minW[q] = minimum weight achieving quantized profit exactly q.
	minW := make([]float64, capQ+1)
	for q := 1; q <= capQ; q++ {
		minW[q] = inf
	}
	rows := make([][]bool, len(idxs))
	for k, i := range idxs {
		row := make([]bool, capQ+1)
		w := items[i].Weight
		for q := capQ; q >= scaled[k]; q-- {
			if prev := minW[q-scaled[k]]; prev < inf {
				if cand := prev + w; cand < minW[q] {
					minW[q] = cand
					row[q] = true
				}
			}
		}
		rows[k] = row
	}
	bestQ := 0
	for q := capQ; q > 0; q-- {
		if minW[q] <= capacity {
			bestQ = q
			break
		}
	}
	var picked []int
	q := bestQ
	for k := len(idxs) - 1; k >= 0 && q > 0; k-- {
		if rows[k][q] {
			picked = append(picked, idxs[k])
			q -= scaled[k]
		}
	}
	return finish(items, picked)
}

// CappedSolver returns a Solver-compatible closure over fixed profit cap
// and quantum, for plugging the doubly-constrained knapsack into code that
// expects a plain Solver.
func CappedSolver(profitCap, profitQuantum float64) Solver {
	return func(items []Item, capacity float64) Solution {
		return MaxProfitUnder(items, capacity, profitCap, profitQuantum)
	}
}
