package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

// bruteCapped enumerates all subsets under both constraints.
func bruteCapped(items []Item, capacity, profitCap float64) float64 {
	best := 0.0
	n := len(items)
	for mask := 0; mask < 1<<n; mask++ {
		var w, p float64
		ok := true
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			if items[i].Profit <= 0 || items[i].Weight < 0 {
				ok = false
				break
			}
			w += items[i].Weight
			p += items[i].Profit
		}
		if ok && w <= capacity+1e-12 && p <= profitCap+1e-12 && p > best {
			best = p
		}
	}
	return best
}

func TestMaxProfitUnderKnown(t *testing.T) {
	items := []Item{
		{Profit: 400, Weight: 1},
		{Profit: 800, Weight: 1},
		{Profit: 1200, Weight: 1},
	}
	// Without the cap the best under weight 2 is 2000; cap 1500 forces
	// 1200 (+400 would exceed 1500? 1200+400=1600 > 1500 → 1200 alone or
	// 800+400=1200 ≤ 1500 — best is 1200... wait 1200 alone = 1200,
	// 800+400 = 1200 too; both fine). Cap 1300 → 1200.
	s := MaxProfitUnder(items, 2, 1500, 400)
	checkFeasible(t, "capped", items, 2, s)
	if s.Profit != 1200 {
		t.Errorf("profit = %v, want 1200", s.Profit)
	}
	// Generous cap: behaves like a plain exact knapsack.
	s = MaxProfitUnder(items, 2, 1e9, 400)
	if s.Profit != 2000 {
		t.Errorf("uncapped profit = %v, want 2000", s.Profit)
	}
	// Zero cap: nothing.
	if s := MaxProfitUnder(items, 2, 0, 400); len(s.Picked) != 0 {
		t.Error("zero cap must pick nothing")
	}
}

func TestMaxProfitUnderMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		items := make([]Item, n)
		for i := range items {
			// Profits as exact multiples of the quantum 10.
			items[i] = Item{
				Profit: float64(10 * (1 + rng.Intn(50))),
				Weight: math.Floor(rng.Float64()*50) / 10,
			}
		}
		capacity := rng.Float64() * 15
		profitCap := float64(10 * rng.Intn(200))
		want := bruteCapped(items, capacity, profitCap)
		got := MaxProfitUnder(items, capacity, profitCap, 10)
		checkFeasible(t, "capped", items, capacity, got)
		if got.Profit > profitCap+1e-9 {
			t.Fatalf("trial %d: profit %v exceeds cap %v", trial, got.Profit, profitCap)
		}
		if math.Abs(got.Profit-want) > 1e-9 {
			t.Fatalf("trial %d: got %v, want %v (cap %v, capacity %v, items %v)",
				trial, got.Profit, want, profitCap, capacity, items)
		}
	}
}

func TestMaxProfitUnderQuantumSafety(t *testing.T) {
	// Coarse quantum: still feasible, profit within n·quantum of optimum.
	items := []Item{{Profit: 105, Weight: 1}, {Profit: 95, Weight: 1}}
	s := MaxProfitUnder(items, 2, 150, 50)
	checkFeasible(t, "coarse", items, 2, s)
	if s.Profit > 150+1e-9 {
		t.Errorf("cap violated: %v", s.Profit)
	}
	// Non-positive quantum falls back to 1.
	s = MaxProfitUnder(items, 2, 150, 0)
	if s.Profit > 150 {
		t.Errorf("default-quantum cap violated: %v", s.Profit)
	}
}

func TestCappedSolver(t *testing.T) {
	solve := CappedSolver(1000, 10)
	items := []Item{{Profit: 600, Weight: 1}, {Profit: 600, Weight: 1}}
	s := solve(items, 5)
	if s.Profit != 600 {
		t.Errorf("profit = %v, want 600 (cap prevents both)", s.Profit)
	}
}
