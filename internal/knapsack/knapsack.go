// Package knapsack provides 0/1 knapsack solvers used as the inner oracle of
// the local-ratio GAP algorithm (paper §IV): any β-approximation for
// knapsack yields a 1/(1+β)-approximation for the data collection
// maximization problem. The package offers
//
//   - Greedy: density greedy + best-single-item, a 2-approximation
//     (β = 2), O(n log n);
//   - BranchAndBound: exact (β = 1) depth-first search with a fractional
//     relaxation bound, fast on the small per-sensor instances that arise
//     here (|A(v)| ≤ 2Γ items);
//   - DP: exact dynamic program over quantized weights;
//   - FPTAS: Lawler-style profit-scaling dynamic program with
//     profit ≥ (1−ε)·OPT, i.e. β = 1/(1−ε) ≈ 1+ε, matching the paper's
//     analysis (Thm 2 uses β = 1+ε ⇒ overall ratio 1/(2+ε)).
//
// Items with non-positive profit or weight exceeding the capacity are never
// selected; zero-weight positive-profit items are always selected.
package knapsack

import (
	"context"
	"math"
	"slices"
)

// Item is one knapsack item.
type Item struct {
	Profit float64 // objective contribution if packed (> 0 to be useful)
	Weight float64 // capacity consumed if packed (≥ 0)
}

// Solution is a feasible packing.
type Solution struct {
	Picked []int   // indices into the input item slice, ascending
	Profit float64 // total profit of Picked
	Weight float64 // total weight of Picked
}

// Solver is any algorithm producing a feasible packing for items under the
// given capacity.
type Solver func(items []Item, capacity float64) Solution

// usable reports whether item i can ever be packed profitably.
func usable(it Item, capacity float64) bool {
	return it.Profit > 0 && it.Weight >= 0 && it.Weight <= capacity
}

// Greedy packs items in decreasing profit/weight density and returns the
// better of the greedy packing and the single best item — the classic
// 1/2-approximation. Picks are emitted already ordered (a mark array scan
// instead of a post-hoc sort) with running profit/weight totals.
func Greedy(items []Item, capacity float64) Solution {
	type cand struct {
		idx     int
		density float64
	}
	cands := make([]cand, 0, len(items))
	best := -1
	for i, it := range items {
		if !usable(it, capacity) {
			continue
		}
		d := math.Inf(1)
		if it.Weight > 0 {
			d = it.Profit / it.Weight
		}
		cands = append(cands, cand{i, d})
		if best < 0 || it.Profit > items[best].Profit {
			best = i
		}
	}
	if best < 0 {
		return Solution{}
	}
	slices.SortFunc(cands, func(a, b cand) int {
		if a.density != b.density {
			if a.density > b.density {
				return -1
			}
			return 1
		}
		return a.idx - b.idx
	})
	taken := make([]bool, len(items))
	left := capacity
	total := 0.0
	count := 0
	for _, c := range cands {
		if items[c.idx].Weight <= left {
			taken[c.idx] = true
			left -= items[c.idx].Weight
			total += items[c.idx].Profit
			count++
		}
	}
	if total < items[best].Profit {
		return Solution{
			Picked: []int{best},
			Profit: items[best].Profit,
			Weight: items[best].Weight,
		}
	}
	s := Solution{Picked: make([]int, 0, count)}
	for i, t := range taken {
		if t {
			s.Picked = append(s.Picked, i)
			s.Profit += items[i].Profit
			s.Weight += items[i].Weight
		}
	}
	return s
}

// BranchAndBound solves the knapsack exactly by depth-first search over
// density-sorted items with a fractional (LP relaxation) upper bound.
func BranchAndBound(items []Item, capacity float64) Solution {
	s, _ := BranchAndBoundCtx(context.Background(), items, capacity)
	return s
}

// DP solves the knapsack exactly after quantizing weights to multiples of
// quantum: item weights are rounded up (keeping every packing feasible) and
// the capacity is rounded down. With quantum small relative to the item
// weights the result is exact; it is always feasible. Memory is
// O(capacity/quantum) integers.
func DP(items []Item, capacity float64, quantum float64) Solution {
	s, _ := DPCtx(context.Background(), items, capacity, quantum)
	return s
}

// FPTAS returns a solver with profit guarantee ≥ (1−ε)·OPT using Lawler's
// profit-scaling dynamic program: profits are scaled by K = ε·pmax/n and the
// DP minimizes weight per scaled-profit total. Runtime O(n²·⌈n/ε⌉) in the
// worst case, tiny for the per-sensor instances here.
func FPTAS(eps float64) Solver {
	ctxSolve := FPTASCtx(eps)
	return func(items []Item, capacity float64) Solution {
		s, _ := ctxSolve(context.Background(), items, capacity)
		return s
	}
}
