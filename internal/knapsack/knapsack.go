// Package knapsack provides 0/1 knapsack solvers used as the inner oracle of
// the local-ratio GAP algorithm (paper §IV): any β-approximation for
// knapsack yields a 1/(1+β)-approximation for the data collection
// maximization problem. The package offers
//
//   - Greedy: density greedy + best-single-item, a 2-approximation
//     (β = 2), O(n log n);
//   - BranchAndBound: exact (β = 1) depth-first search with a fractional
//     relaxation bound, fast on the small per-sensor instances that arise
//     here (|A(v)| ≤ 2Γ items);
//   - DP: exact dynamic program over quantized weights;
//   - FPTAS: Lawler-style profit-scaling dynamic program with
//     profit ≥ (1−ε)·OPT, i.e. β = 1/(1−ε) ≈ 1+ε, matching the paper's
//     analysis (Thm 2 uses β = 1+ε ⇒ overall ratio 1/(2+ε)).
//
// Items with non-positive profit or weight exceeding the capacity are never
// selected; zero-weight positive-profit items are always selected.
package knapsack

import (
	"math"
	"sort"
)

// Item is one knapsack item.
type Item struct {
	Profit float64 // objective contribution if packed (> 0 to be useful)
	Weight float64 // capacity consumed if packed (≥ 0)
}

// Solution is a feasible packing.
type Solution struct {
	Picked []int   // indices into the input item slice, ascending
	Profit float64 // total profit of Picked
	Weight float64 // total weight of Picked
}

// Solver is any algorithm producing a feasible packing for items under the
// given capacity.
type Solver func(items []Item, capacity float64) Solution

// usable reports whether item i can ever be packed profitably.
func usable(it Item, capacity float64) bool {
	return it.Profit > 0 && it.Weight >= 0 && it.Weight <= capacity
}

func finish(items []Item, picked []int) Solution {
	sort.Ints(picked)
	s := Solution{Picked: picked}
	for _, i := range picked {
		s.Profit += items[i].Profit
		s.Weight += items[i].Weight
	}
	return s
}

// Greedy packs items in decreasing profit/weight density and returns the
// better of the greedy packing and the single best item — the classic
// 1/2-approximation.
func Greedy(items []Item, capacity float64) Solution {
	type cand struct {
		idx     int
		density float64
	}
	cands := make([]cand, 0, len(items))
	best := -1
	for i, it := range items {
		if !usable(it, capacity) {
			continue
		}
		d := math.Inf(1)
		if it.Weight > 0 {
			d = it.Profit / it.Weight
		}
		cands = append(cands, cand{i, d})
		if best < 0 || it.Profit > items[best].Profit {
			best = i
		}
	}
	if best < 0 {
		return Solution{}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].density != cands[b].density {
			return cands[a].density > cands[b].density
		}
		return cands[a].idx < cands[b].idx
	})
	var picked []int
	left := capacity
	total := 0.0
	for _, c := range cands {
		if items[c.idx].Weight <= left {
			picked = append(picked, c.idx)
			left -= items[c.idx].Weight
			total += items[c.idx].Profit
		}
	}
	if total >= items[best].Profit {
		return finish(items, picked)
	}
	return finish(items, []int{best})
}

// BranchAndBound solves the knapsack exactly by depth-first search over
// density-sorted items with a fractional (LP relaxation) upper bound.
func BranchAndBound(items []Item, capacity float64) Solution {
	order := make([]int, 0, len(items))
	for i, it := range items {
		if usable(it, capacity) {
			order = append(order, i)
		}
	}
	if len(order) == 0 {
		return Solution{}
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		da, db := math.Inf(1), math.Inf(1)
		if ia.Weight > 0 {
			da = ia.Profit / ia.Weight
		}
		if ib.Weight > 0 {
			db = ib.Profit / ib.Weight
		}
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})

	// fracBound returns the LP relaxation value of packing order[k:] into
	// the remaining capacity.
	fracBound := func(k int, left float64) float64 {
		bound := 0.0
		for _, oi := range order[k:] {
			it := items[oi]
			if it.Weight <= left {
				bound += it.Profit
				left -= it.Weight
			} else {
				if it.Weight > 0 {
					bound += it.Profit * left / it.Weight
				}
				break
			}
		}
		return bound
	}

	bestProfit := -1.0
	var bestSet []int
	cur := make([]int, 0, len(order))

	var dfs func(k int, left, profit float64)
	dfs = func(k int, left, profit float64) {
		if profit > bestProfit {
			bestProfit = profit
			bestSet = append(bestSet[:0], cur...)
		}
		if k == len(order) {
			return
		}
		if profit+fracBound(k, left)+1e-12 <= bestProfit {
			return // cannot beat the incumbent
		}
		it := items[order[k]]
		if it.Weight <= left {
			cur = append(cur, order[k])
			dfs(k+1, left-it.Weight, profit+it.Profit)
			cur = cur[:len(cur)-1]
		}
		dfs(k+1, left, profit)
	}
	dfs(0, capacity, 0)
	return finish(items, append([]int(nil), bestSet...))
}

// DP solves the knapsack exactly after quantizing weights to multiples of
// quantum: item weights are rounded up (keeping every packing feasible) and
// the capacity is rounded down. With quantum small relative to the item
// weights the result is exact; it is always feasible. Memory is
// O(capacity/quantum) integers.
func DP(items []Item, capacity float64, quantum float64) Solution {
	if quantum <= 0 {
		quantum = 1e-6
	}
	capQ := int(math.Floor(capacity / quantum))
	if capQ < 0 {
		return Solution{}
	}
	type qItem struct {
		idx int
		w   int
		p   float64
	}
	var qItems []qItem
	var free []int // zero-weight items are always packed
	sumQ := 0
	for i, it := range items {
		if !usable(it, capacity) {
			continue
		}
		w := int(math.Ceil(it.Weight/quantum - 1e-9))
		if w == 0 {
			free = append(free, i)
			continue
		}
		if w > capQ {
			continue
		}
		qItems = append(qItems, qItem{i, w, it.Profit})
		sumQ += w
	}
	// The DP table never needs more capacity than all usable items weigh
	// in quantized units — this keeps the table small when the stored
	// energy budget far exceeds what a visibility window can spend.
	if capQ > sumQ {
		capQ = sumQ
	}
	// dp[w] = best profit using weight exactly ≤ w; choice tracking via
	// parent bitset per item layer would cost O(n·W) memory, so store the
	// picked-set via a compact predecessor table.
	dp := make([]float64, capQ+1)
	pick := make([][]bool, len(qItems))
	for k, qi := range qItems {
		row := make([]bool, capQ+1)
		for w := capQ; w >= qi.w; w-- {
			if cand := dp[w-qi.w] + qi.p; cand > dp[w] {
				dp[w] = cand
				row[w] = true
			}
		}
		pick[k] = row
	}
	// Trace back.
	w := capQ
	var picked []int
	for k := len(qItems) - 1; k >= 0; k-- {
		if pick[k][w] {
			picked = append(picked, qItems[k].idx)
			w -= qItems[k].w
		}
	}
	picked = append(picked, free...)
	return finish(items, picked)
}

// FPTAS returns a solver with profit guarantee ≥ (1−ε)·OPT using Lawler's
// profit-scaling dynamic program: profits are scaled by K = ε·pmax/n and the
// DP minimizes weight per scaled-profit total. Runtime O(n²·⌈n/ε⌉) in the
// worst case, tiny for the per-sensor instances here.
func FPTAS(eps float64) Solver {
	if eps <= 0 || eps >= 1 {
		panic("knapsack: FPTAS epsilon must be in (0,1)")
	}
	return func(items []Item, capacity float64) Solution {
		idxs := make([]int, 0, len(items))
		pmax := 0.0
		for i, it := range items {
			if usable(it, capacity) {
				idxs = append(idxs, i)
				if it.Profit > pmax {
					pmax = it.Profit
				}
			}
		}
		if len(idxs) == 0 {
			return Solution{}
		}
		n := len(idxs)
		k := eps * pmax / float64(n)
		// Scaled profits; each ≤ n/ε.
		scaled := make([]int, n)
		maxTotal := 0
		for j, i := range idxs {
			scaled[j] = int(math.Floor(items[i].Profit / k))
			maxTotal += scaled[j]
		}
		const inf = math.MaxFloat64
		// minW[q] = minimal weight achieving scaled profit exactly q.
		minW := make([]float64, maxTotal+1)
		choice := make([][]bool, n)
		for q := 1; q <= maxTotal; q++ {
			minW[q] = inf
		}
		for j, i := range idxs {
			row := make([]bool, maxTotal+1)
			w := items[i].Weight
			for q := maxTotal; q >= scaled[j]; q-- {
				if minW[q-scaled[j]] < inf {
					if cand := minW[q-scaled[j]] + w; cand < minW[q] {
						minW[q] = cand
						row[q] = true
					}
				}
			}
			choice[j] = row
		}
		bestQ := 0
		for q := maxTotal; q > 0; q-- {
			if minW[q] <= capacity {
				bestQ = q
				break
			}
		}
		var picked []int
		q := bestQ
		for j := n - 1; j >= 0 && q > 0; j-- {
			if choice[j][q] {
				picked = append(picked, idxs[j])
				q -= scaled[j]
			}
		}
		return finish(items, picked)
	}
}
