package knapsack_test

import (
	"fmt"

	"mobisink/internal/knapsack"
)

// A sensor choosing transmission slots: profits are the data volumes per
// slot (bits), weights the energy costs (Joules), the capacity its budget.
func ExampleBranchAndBound() {
	items := []knapsack.Item{
		{Profit: 250000, Weight: 0.17}, // close to the sink: fast & cheap
		{Profit: 19200, Weight: 0.22},
		{Profit: 9600, Weight: 0.30},
		{Profit: 4800, Weight: 0.33}, // far: slow & expensive
	}
	sol := knapsack.BranchAndBound(items, 0.40)
	fmt.Printf("picked %v, %.0f bits for %.2f J\n", sol.Picked, sol.Profit, sol.Weight)
	// Output: picked [0 1], 269200 bits for 0.39 J
}

func ExampleFPTAS() {
	solve := knapsack.FPTAS(0.1) // profit ≥ 90% of optimal
	items := []knapsack.Item{
		{Profit: 60, Weight: 10},
		{Profit: 100, Weight: 20},
		{Profit: 120, Weight: 30},
	}
	sol := solve(items, 50)
	fmt.Printf("%.0f\n", sol.Profit)
	// Output: 220
}

// A sensor with only 300 kb of sensed data left cannot usefully occupy
// more slots, no matter its energy budget.
func ExampleMaxProfitUnder() {
	items := []knapsack.Item{
		{Profit: 250000, Weight: 0.17},
		{Profit: 250000, Weight: 0.17},
		{Profit: 250000, Weight: 0.17},
	}
	sol := knapsack.MaxProfitUnder(items, 10 /* J */, 300000 /* bits queued */, 400)
	fmt.Printf("%d slot(s), %.0f bits\n", len(sol.Picked), sol.Profit)
	// Output: 1 slot(s), 250000 bits
}
