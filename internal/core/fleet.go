package core

import (
	"errors"
	"fmt"

	"mobisink/internal/geom"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

// BuildFleetInstance derives the joint slot-allocation problem for one
// concurrent tour of the deployment's sink fleet: sink k tours its own
// path at its own speed, and the instance's global slot space lays the
// per-sink tours out sink-major — global slot Sinks[k].Offset+a is sink
// k's slot during absolute time slot a. Each sensor gets one visibility
// window per sink it can hear; a sensor may serve at most one sink per
// absolute slot (the cross-sink constraint the solvers enforce via
// conflict groups).
//
// Sinks with a zero Speed use defaultSpeed. Legacy single-sink
// deployments build a K=1 instance whose solve results are bit-identical
// to BuildInstance on the same inputs (see TestFleetK1BitParity); the
// instances differ only in the Sinks metadata being populated.
func BuildFleetInstance(dep *network.Deployment, model radio.Model, defaultSpeed, slotLen float64) (*Instance, error) {
	if dep == nil {
		return nil, errors.New("core: nil deployment")
	}
	if err := dep.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, errors.New("core: nil radio model")
	}
	specs := dep.SinkSpecs()
	r := model.Range()
	trajs := make([]*geom.Trajectory, len(specs))
	sinks := make([]SinkInfo, len(specs))
	total := 0
	for k, sp := range specs {
		path, err := dep.SinkPath(k)
		if err != nil {
			return nil, err
		}
		speed := sp.Speed
		if speed == 0 {
			speed = defaultSpeed
		}
		tr, err := geom.NewTrajectory(path, speed, slotLen)
		if err != nil {
			return nil, fmt.Errorf("core: sink %d: %w", k, err)
		}
		trajs[k] = tr
		sinks[k] = SinkInfo{Offset: total, T: tr.SlotCount, Traj: tr}
		total += tr.SlotCount
	}
	inst := &Instance{
		T:     total,
		Tau:   slotLen,
		Gamma: trajs[0].Gamma(r),
		Range: r,
		Traj:  trajs[0],
		Sinks: sinks,
	}
	inst.Sensors = make([]SensorSlots, len(dep.Sensors))
	for i, s := range dep.Sensors {
		ss := SensorSlots{ID: i, Pos: s.Pos, Budget: s.Budget, Start: -1, End: -1}
		for k, tr := range trajs {
			j0, j1, ok := tr.SlotWindow(s.Pos, r)
			if !ok {
				continue
			}
			rates := make([]float64, j1-j0+1)
			powers := make([]float64, j1-j0+1)
			for j := j0; j <= j1; j++ {
				d := tr.PosAtSlotMid(j).Dist(s.Pos)
				l, lok := model.LinkAt(d)
				if !lok {
					// Midpoint drifted out of range despite the window —
					// treat as a dead slot (same rule as BuildInstance).
					continue
				}
				rates[j-j0] = l.Rate
				powers[j-j0] = l.Power
			}
			off := sinks[k].Offset
			if ss.Start < 0 {
				ss.Sink = k
				ss.Start, ss.End = off+j0, off+j1
				ss.Rates, ss.Powers = rates, powers
			} else {
				ss.More = append(ss.More, Window{
					Sink:   k,
					Start:  off + j0,
					End:    off + j1,
					Rates:  rates,
					Powers: powers,
				})
			}
		}
		inst.Sensors[i] = ss
	}
	return inst, nil
}
