package core

import (
	"math"
	"testing"

	"mobisink/internal/radio"
)

func TestSetDataCapsValidation(t *testing.T) {
	d := tinyDeployment(t, 3, 40, 1)
	inst, _ := BuildInstance(d, radio.Paper2013(), 30, 1)
	if err := inst.SetDataCaps([]float64{1}); err == nil {
		t.Error("expected length error")
	}
	if err := inst.SetDataCaps([]float64{1, -2, 3}); err == nil {
		t.Error("expected negative error")
	}
	if err := inst.SetDataCaps([]float64{1, math.NaN(), 3}); err == nil {
		t.Error("expected NaN error")
	}
	caps := []float64{1e6, 2e6, 3e6}
	if err := inst.SetDataCaps(caps); err != nil {
		t.Fatal(err)
	}
	// The instance must own a copy.
	caps[0] = 0
	if inst.DataCapOf(0) != 1e6 {
		t.Error("caps not copied")
	}
	if err := inst.SetDataCaps(nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inst.DataCapOf(0), 1) {
		t.Error("nil caps must mean unbounded")
	}
}

func TestRateQuantumBits(t *testing.T) {
	d := tinyDeployment(t, 3, 41, 1)
	inst, _ := BuildInstance(d, radio.Paper2013(), 30, 1)
	// gcd(250000, 19200, 9600, 4800) · τ=1 → 400 bits (whichever tiers
	// appear, the quantum divides them all).
	q := inst.RateQuantumBits()
	if q <= 0 {
		t.Fatalf("quantum = %v", q)
	}
	for i := range inst.Sensors {
		for _, r := range inst.Sensors[i].Rates {
			if r <= 0 {
				continue
			}
			k := r * inst.Tau / q
			if math.Abs(k-math.Round(k)) > 1e-9 {
				t.Fatalf("quantum %v does not divide %v", q, r*inst.Tau)
			}
		}
	}
}

func TestOfflineSequentialUncapped(t *testing.T) {
	for seed := int64(50); seed < 56; seed++ {
		d := tinyDeployment(t, 3, seed, 0.7)
		inst, _ := BuildInstance(d, radio.Paper2013(), 30, 1)
		a, err := OfflineSequential(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Validate(a); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Sequential with an exact oracle is a 1/2-approximation for
		// separable assignment; verify against the exhaustive optimum.
		opt := optimum(t, inst)
		if a.Data < opt/2-1e-9 {
			t.Fatalf("seed %d: sequential %v below OPT/2 = %v", seed, a.Data, opt/2)
		}
	}
	if _, err := OfflineSequential(nil, Options{}); err == nil {
		t.Error("expected nil error")
	}
}

func TestOfflineSequentialCapped(t *testing.T) {
	d := tinyDeployment(t, 3, 60, 5)
	inst, _ := BuildInstance(d, radio.Paper2013(), 30, 1)
	free, err := OfflineSequential(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cap every sensor to roughly half of what it uploaded uncapped.
	per := make([]float64, len(inst.Sensors))
	for j, i := range free.SlotOwner {
		if i >= 0 {
			per[i] += inst.Sensors[i].RateAt(j) * inst.Tau
		}
	}
	caps := make([]float64, len(per))
	for i, v := range per {
		caps[i] = v / 2
	}
	if err := inst.SetDataCaps(caps); err != nil {
		t.Fatal(err)
	}
	capped, err := OfflineSequential(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(capped); err != nil {
		t.Fatalf("capped allocation violates caps: %v", err)
	}
	if capped.Data > free.Data+1e-6 {
		t.Errorf("caps increased total: %v vs %v", capped.Data, free.Data)
	}
	// validateDataCaps must reject the uncapped allocation under the caps
	// whenever some sensor actually exceeds its cap.
	anyExceeds := false
	for i, v := range per {
		if v > caps[i]+1e-6 {
			anyExceeds = true
		}
	}
	if anyExceeds {
		if _, err := inst.Validate(free); err == nil {
			t.Error("expected data-cap violation for the uncapped allocation")
		}
	}
}

func TestWindowSizeEmpty(t *testing.T) {
	s := SensorSlots{Start: -1, End: -1}
	if s.WindowSize() != 0 {
		t.Error("empty window size")
	}
}
