package core

import (
	"context"
	"reflect"
	"testing"

	"mobisink/internal/radio"
)

// TestFlatMatchesLegacy is the differential gate for the compiled flat
// engine: across a seeded sweep of 8 deployment configurations × 7 seeds
// (56 instances), the flat path must reproduce the legacy pointer-chasing
// sweep bit-for-bit — identical SlotOwner vectors and bitwise-equal Data —
// in both oracle modes (exact quantized DP and forced FPTAS).
func TestFlatMatchesLegacy(t *testing.T) {
	configs := []struct {
		n      int
		budget float64
	}{
		{2, 0.5}, {2, 0.9},
		{3, 0.5}, {3, 0.9},
		{4, 0.5}, {4, 0.9},
		{6, 0.5}, {6, 0.9},
	}
	modes := []struct {
		name string
		opts Options
	}{
		{"dp", Options{}},
		{"fptas", Options{ForceFPTAS: true, Eps: 0.2}},
	}
	for _, cfg := range configs {
		for seed := int64(0); seed < 7; seed++ {
			d := tinyDeployment(t, cfg.n, seed, cfg.budget)
			inst, err := BuildInstance(d, radio.Paper2013(), 30, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range modes {
				legacy, err := offlineApproLegacyCtx(context.Background(), inst, mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				c, err := CompileAppro(inst, mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				flat, err := c.Solve(context.Background(), mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(flat.SlotOwner, legacy.SlotOwner) {
					t.Fatalf("n=%d budget=%v seed=%d %s: flat SlotOwner %v != legacy %v",
						cfg.n, cfg.budget, seed, mode.name, flat.SlotOwner, legacy.SlotOwner)
				}
				if flat.Data != legacy.Data {
					t.Fatalf("n=%d budget=%v seed=%d %s: flat Data %v != legacy %v (must be bit-identical)",
						cfg.n, cfg.budget, seed, mode.name, flat.Data, legacy.Data)
				}
				// The public entry point must route to the same flat result.
				pub, err := OfflineApproCtx(context.Background(), inst, mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				if pub.Data != flat.Data || !reflect.DeepEqual(pub.SlotOwner, flat.SlotOwner) {
					t.Fatalf("n=%d budget=%v seed=%d %s: OfflineApproCtx diverges from compiled solve",
						cfg.n, cfg.budget, seed, mode.name)
				}
			}
		}
	}
}

// TestCompiledSolveReuse solves one compiled instance repeatedly (the
// serving/benchmark pattern) and with parallel options, checking results
// never drift from the first solve.
func TestCompiledSolveReuse(t *testing.T) {
	d := tinyDeployment(t, 5, 3, 0.8)
	inst, err := BuildInstance(d, radio.Paper2013(), 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileAppro(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		opts := Options{}
		if i%2 == 1 {
			opts = Options{Parallel: true, Workers: 3, MinParallelEntries: -1}
		}
		again, err := c.Solve(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if again.Data != first.Data || !reflect.DeepEqual(again.SlotOwner, first.SlotOwner) {
			t.Fatalf("solve %d drifted: Data %v vs %v", i, again.Data, first.Data)
		}
	}
	if c.NumComponents() < 1 {
		t.Fatalf("NumComponents = %d, want ≥ 1", c.NumComponents())
	}
}
