package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

// fleetCfg is one configuration of the K=1 parity sweep.
type fleetCfg struct {
	name       string
	n          int
	fixedPower bool
	speed, tau float64
	explicit   bool // declare the single sink explicitly instead of legacy-implicitly
}

var parityCfgs = []fleetCfg{
	{"small-paper", 25, false, 5, 1, false},
	{"small-paper-explicit", 25, false, 5, 1, true},
	{"small-fixed", 25, true, 5, 1, false},
	{"small-fixed-fast", 25, true, 10, 1, false},
	{"mid-paper", 60, false, 5, 1, false},
	{"mid-paper-coarse", 60, false, 5, 2, false},
	{"mid-fixed-explicit", 60, true, 8, 1, true},
	{"large-paper", 120, false, 5, 1, false},
}

func parityModel(tb testing.TB, fixed bool) radio.Model {
	tb.Helper()
	if !fixed {
		return radio.Paper2013()
	}
	m, err := radio.NewFixedPower(radio.Paper2013(), 0.3)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func parityDeployment(tb testing.TB, cfg fleetCfg, seed int64) *network.Deployment {
	tb.Helper()
	d, err := network.Generate(network.PaperParams(cfg.n, seed))
	if err != nil {
		tb.Fatal(err)
	}
	h := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(seed))
	if err := d.AssignSteadyStateBudgets(h, d.PathLength/cfg.speed, 0.2, rng); err != nil {
		tb.Fatal(err)
	}
	if cfg.explicit {
		d.Sinks = []network.SinkSpec{{Speed: cfg.speed, PathLength: d.PathLength}}
	}
	return d
}

// sameAlloc demands bit-equality: identical slot owners and identical
// collected-data float bits.
func sameAlloc(t *testing.T, what string, legacy, fleet *Allocation) {
	t.Helper()
	if !reflect.DeepEqual(legacy.SlotOwner, fleet.SlotOwner) {
		t.Fatalf("%s: fleet SlotOwner differs from legacy", what)
	}
	if math.Float64bits(legacy.Data) != math.Float64bits(fleet.Data) {
		t.Fatalf("%s: fleet Data %v (bits %x) != legacy %v (bits %x)",
			what, fleet.Data, math.Float64bits(fleet.Data), legacy.Data, math.Float64bits(legacy.Data))
	}
}

// TestFleetK1BitParity: a K=1 fleet build — legacy-implicit or with one
// explicit sink spec — must be structurally identical to BuildInstance
// and bit-identical through every offline solver (8 configurations × 7
// seeds). This is the refactor's non-negotiable spine: the fleet slot
// space degenerates to the legacy one at K=1.
func TestFleetK1BitParity(t *testing.T) {
	for _, cfg := range parityCfgs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			model := parityModel(t, cfg.fixedPower)
			for seed := int64(0); seed < 7; seed++ {
				d := parityDeployment(t, cfg, seed)
				legacyDep := *d
				legacyDep.Sinks = nil
				legacy, err := BuildInstance(&legacyDep, model, cfg.speed, cfg.tau)
				if err != nil {
					t.Fatal(err)
				}
				fleet, err := BuildFleetInstance(d, model, cfg.speed, cfg.tau)
				if err != nil {
					t.Fatal(err)
				}
				if fleet.NumSinks() != 1 {
					t.Fatalf("seed %d: K=1 build reports %d sinks", seed, fleet.NumSinks())
				}
				if fleet.T != legacy.T || fleet.Gamma != legacy.Gamma {
					t.Fatalf("seed %d: fleet T=%d Γ=%d, legacy T=%d Γ=%d",
						seed, fleet.T, fleet.Gamma, legacy.T, legacy.Gamma)
				}
				for i := range legacy.Sensors {
					ls, fs := &legacy.Sensors[i], &fleet.Sensors[i]
					if len(fs.More) != 0 || fs.Sink != 0 {
						t.Fatalf("seed %d sensor %d: K=1 build has extra windows", seed, i)
					}
					if ls.Start != fs.Start || ls.End != fs.End ||
						!reflect.DeepEqual(ls.Rates, fs.Rates) ||
						!reflect.DeepEqual(ls.Powers, fs.Powers) {
						t.Fatalf("seed %d sensor %d: fleet window differs from legacy", seed, i)
					}
				}

				ctx := context.Background()
				la, err := OfflineApproCtx(ctx, legacy, Options{})
				if err != nil {
					t.Fatal(err)
				}
				fa, err := OfflineApproCtx(ctx, fleet, Options{})
				if err != nil {
					t.Fatal(err)
				}
				sameAlloc(t, "Offline_Appro", la, fa)

				lg, err := OfflineGreedyCtx(ctx, legacy)
				if err != nil {
					t.Fatal(err)
				}
				fg, err := OfflineGreedyCtx(ctx, fleet)
				if err != nil {
					t.Fatal(err)
				}
				sameAlloc(t, "Offline_Greedy", lg, fg)

				lq, err := OfflineSequentialCtx(ctx, legacy, Options{})
				if err != nil {
					t.Fatal(err)
				}
				fq, err := OfflineSequentialCtx(ctx, fleet, Options{})
				if err != nil {
					t.Fatal(err)
				}
				sameAlloc(t, "Offline_Sequential", lq, fq)

				if cfg.fixedPower {
					lm, err := OfflineMaxMatchCtx(ctx, legacy)
					if err != nil {
						t.Fatal(err)
					}
					fm, err := OfflineMaxMatchCtx(ctx, fleet)
					if err != nil {
						t.Fatal(err)
					}
					sameAlloc(t, "Offline_MaxMatch", lm, fm)
				}

				if math.Float64bits(legacy.UpperBound()) != math.Float64bits(fleet.UpperBound()) {
					t.Fatalf("seed %d: upper bounds diverge", seed)
				}
			}
		})
	}
}

// fleetDeployment builds a small fixed-power-friendly topology split
// across k sinks.
func fleetDeployment(tb testing.TB, n int, seed int64, k int, speed float64) *network.Deployment {
	tb.Helper()
	d, err := network.Generate(network.Params{N: n, PathLength: 2000, MaxOffset: 120, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	h := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(seed))
	if err := d.AssignSteadyStateBudgets(h, d.PathLength/speed, 0.2, rng); err != nil {
		tb.Fatal(err)
	}
	if err := d.SplitSinks(k, nil); err != nil {
		tb.Fatal(err)
	}
	return d
}

// TestFleetApproRatioK2K4: on fixed-power fleet instances Offline_MaxMatch
// is the exact group-constrained optimum, so the local-ratio fleet solve
// must stay within its 1/(2+ε) guarantee — checked over 50 seeded
// instances split across K ∈ {2, 4} — and both allocations must be
// conflict-free (Validate enforces the cross-sink constraint).
func TestFleetApproRatioK2K4(t *testing.T) {
	model := parityModel(t, true)
	const eps = 0.1
	floor := 1.0 / (2 + eps)
	checked := 0
	for _, k := range []int{2, 4} {
		for seed := int64(0); seed < 25; seed++ {
			d := fleetDeployment(t, 20, seed, k, 5)
			inst, err := BuildFleetInstance(d, model, 5, 1)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := OfflineMaxMatch(inst)
			if err != nil {
				t.Fatal(err)
			}
			appro, err := OfflineAppro(inst, Options{Eps: eps})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := inst.Validate(exact); err != nil {
				t.Fatalf("K=%d seed %d: MaxMatch allocation infeasible: %v", k, seed, err)
			}
			if _, err := inst.Validate(appro); err != nil {
				t.Fatalf("K=%d seed %d: Appro allocation infeasible: %v", k, seed, err)
			}
			if exact.Data <= 0 {
				continue // degenerate topology; nothing to ratio against
			}
			if ratio := appro.Data / exact.Data; ratio < floor-1e-9 {
				t.Fatalf("K=%d seed %d: Appro/MaxMatch = %v below 1/(2+ε) = %v", k, seed, ratio, floor)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d non-degenerate instances checked, want at least 50", checked)
	}
}

// TestFleetMaxMatchConflictGroups: at K>1 a sensor rich enough to win
// multiple slots must never be matched to two sinks in the same absolute
// slot, and the matching's collected data must dominate every single-sink
// restriction of the same deployment.
func TestFleetMaxMatchBeatsSingleSink(t *testing.T) {
	model := parityModel(t, true)
	better := 0
	for seed := int64(0); seed < 10; seed++ {
		d := fleetDeployment(t, 20, seed, 2, 5)
		inst, err := BuildFleetInstance(d, model, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		fleetAlloc, err := OfflineMaxMatch(inst)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Validate(fleetAlloc); err != nil {
			t.Fatal(err)
		}
		single := *d
		single.Sinks = nil
		sInst, err := BuildInstance(&single, model, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		sAlloc, err := OfflineMaxMatch(sInst)
		if err != nil {
			t.Fatal(err)
		}
		// Two half-tours collect at least as much as... not guaranteed in
		// general (different trajectories), so demand it only in aggregate.
		if fleetAlloc.Data >= sAlloc.Data {
			better++
		}
	}
	if better < 5 {
		t.Fatalf("two-sink fleet beat the single sink on only %d/10 seeds", better)
	}
}

// FuzzFleetBuild checks build invariants over fuzzed topology/fleet
// parameters: every window sits inside its sink's slot segment, slices
// are consistent, budgets stay non-negative, and the per-slot lookups
// agree with the window arrays.
func FuzzFleetBuild(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(2), 5.0, 1.0)
	f.Add(int64(2), uint8(30), uint8(1), 8.0, 2.0)
	f.Add(int64(3), uint8(5), uint8(4), 3.0, 0.5)
	f.Fuzz(func(t *testing.T, seed int64, n, k uint8, speed, tau float64) {
		nSensors := int(n%40) + 3
		nSinks := int(k%4) + 1
		if math.IsNaN(speed) || math.IsInf(speed, 0) || speed <= 0.1 || speed > 50 {
			speed = 5
		}
		if math.IsNaN(tau) || math.IsInf(tau, 0) || tau <= 0.1 || tau > 10 {
			tau = 1
		}
		d, err := network.Generate(network.Params{N: nSensors, PathLength: 3000, MaxOffset: 150, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		h := energy.PaperSolar(energy.Sunny)
		rng := rand.New(rand.NewSource(seed))
		if err := d.AssignSteadyStateBudgets(h, d.PathLength/speed, 0.3, rng); err != nil {
			t.Fatal(err)
		}
		if err := d.SplitSinks(nSinks, nil); err != nil {
			t.Fatal(err)
		}
		inst, err := BuildFleetInstance(d, radio.Paper2013(), speed, tau)
		if err != nil {
			t.Fatal(err)
		}
		if inst.NumSinks() != nSinks {
			t.Fatalf("built %d sinks, want %d", inst.NumSinks(), nSinks)
		}
		total := 0
		for kk, si := range inst.Sinks {
			if si.Offset != total {
				t.Fatalf("sink %d offset %d, want %d", kk, si.Offset, total)
			}
			if si.T <= 0 {
				t.Fatalf("sink %d has empty tour", kk)
			}
			total += si.T
		}
		if total != inst.T {
			t.Fatalf("sink segments sum to %d slots, instance has %d", total, inst.T)
		}
		checkWindow := func(i, sink, start, end int, rates, powers []float64) {
			seg := inst.Sinks[sink]
			if start < seg.Offset || end >= seg.Offset+seg.T || start > end {
				t.Fatalf("sensor %d window [%d,%d] outside sink %d segment [%d,%d)",
					i, start, end, sink, seg.Offset, seg.Offset+seg.T)
			}
			if len(rates) != end-start+1 || len(powers) != end-start+1 {
				t.Fatalf("sensor %d window [%d,%d]: %d rates / %d powers",
					i, start, end, len(rates), len(powers))
			}
			for j := start; j <= end; j++ {
				if rates[j-start] < 0 || powers[j-start] < 0 {
					t.Fatalf("sensor %d slot %d: negative rate or power", i, j)
				}
				if inst.SinkOfSlot(j) != sink {
					t.Fatalf("slot %d attributed to sink %d, window says %d", j, inst.SinkOfSlot(j), sink)
				}
				a := inst.AbsSlot(j)
				if a < 0 || a >= seg.T {
					t.Fatalf("slot %d: absolute slot %d outside [0,%d)", j, a, seg.T)
				}
			}
		}
		for i := range inst.Sensors {
			s := &inst.Sensors[i]
			if s.Budget < 0 {
				t.Fatalf("sensor %d has negative budget %v", i, s.Budget)
			}
			if s.Start < 0 {
				if len(s.More) != 0 {
					t.Fatalf("deaf sensor %d has extra windows", i)
				}
				continue
			}
			checkWindow(i, s.Sink, s.Start, s.End, s.Rates, s.Powers)
			prevSink := s.Sink
			for wi := range s.More {
				w := &s.More[wi]
				if w.Sink <= prevSink {
					t.Fatalf("sensor %d windows out of sink order", i)
				}
				prevSink = w.Sink
				checkWindow(i, w.Sink, w.Start, w.End, w.Rates, w.Powers)
			}
		}
	})
}
