package core

import (
	"context"
	"errors"
	"sync"

	"mobisink/internal/gap"
)

// Compiled is the reusable fast-path form of OfflineAppro for one
// instance: the sensor order, the GAP reduction, and the per-entry
// quantized-weight tables are computed once, so repeated solves (batch
// jobs, benchmarks, cached serving) skip the per-call instance validation
// and reduction rebuild entirely. A Compiled is safe for concurrent
// solves; it assumes the underlying Instance's sensors, horizon, and
// budgets are not mutated after compilation (DataCaps may change — the
// Appro reduction does not read them).
type Compiled struct {
	inst  *Instance
	order []int
	g     *gap.Compiled
}

// CompileAppro builds the flat solving form of the paper's Offline_Appro
// for inst under opts. It errors when opts carries a custom Knapsack
// oracle — an opaque callback cannot be compiled; callers keep the legacy
// path for that case.
func CompileAppro(inst *Instance, opts Options) (*Compiled, error) {
	if inst == nil {
		return nil, errors.New("core: nil instance")
	}
	if opts.Knapsack != nil {
		return nil, errors.New("core: custom knapsack oracle is not compilable")
	}
	eps := opts.Eps
	if eps <= 0 {
		eps = 0.1
	}
	quantum := 0.0
	if !opts.ForceFPTAS {
		if q, ok := inst.weightQuantum(); ok {
			quantum = q
		}
	}
	order := sensorOrder(inst)
	g, err := gap.Compile(buildGAP(inst, order), quantum, eps)
	if err != nil {
		return nil, err
	}
	return &Compiled{inst: inst, order: order, g: g}, nil
}

// NumComponents reports how many window components the GAP reduction
// decomposes into (1 means Parallel cannot help).
func (c *Compiled) NumComponents() int { return c.g.NumComponents() }

// itemBinPool recycles the per-solve slot→bin arrays.
var itemBinPool = sync.Pool{New: func() any { return new([]int32) }}

// Solve runs the local-ratio sweep on the compiled form. The allocation is
// bit-identical to OfflineApproCtx on the original instance; Parallel,
// Workers, and MinParallelEntries are honored (Knapsack, Eps, and
// ForceFPTAS were fixed at compile time and are ignored here).
func (c *Compiled) Solve(ctx context.Context, opts Options) (*Allocation, error) {
	bp := itemBinPool.Get().(*[]int32)
	defer itemBinPool.Put(bp)
	if cap(*bp) < c.inst.T {
		*bp = make([]int32, c.inst.T)
	}
	itemBin := (*bp)[:c.inst.T]
	_, err := c.g.SolveInto(ctx, nil, itemBin, gap.SolveOptions{
		Parallel:           opts.Parallel,
		Workers:            opts.Workers,
		MinParallelEntries: opts.MinParallelEntries,
	})
	if err != nil {
		return nil, err
	}
	alloc := c.inst.NewAllocation()
	for j, b := range itemBin {
		if b >= 0 {
			alloc.SlotOwner[j] = c.order[b]
		}
	}
	c.inst.RecomputeData(alloc)
	return alloc, nil
}
