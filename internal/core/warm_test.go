package core

import (
	"context"
	"math"
	"testing"

	"mobisink/internal/radio"
)

// fullVisibility builds the patch set describing the instance's compile
// state: every reachable sensor at full budget with its whole window.
func fullVisibility(inst *Instance) []SensorPatch {
	var ps []SensorPatch
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		if s.Start < 0 {
			continue
		}
		ps = append(ps, SensorPatch{
			Sensor: i, Budget: s.Budget, DataCap: math.Inf(1),
			Lo: s.Start, Hi: s.End,
		})
	}
	return ps
}

// TestWarmSolverFullVisibilityMatchesOffline: patching the compile state
// itself must reproduce Offline_Appro's slot owners exactly, and a
// repeat of the same patches must take the cached no-op path.
func TestWarmSolverFullVisibilityMatchesOffline(t *testing.T) {
	d := tinyDeployment(t, 30, 7, 2)
	inst, err := BuildInstance(d, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var w WarmSolver
	w.SelfCheck = true
	res, err := w.Apply(ctx, inst, fullVisibility(inst))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recompiled || !res.Stats.ColdStart {
		t.Fatalf("first Apply: %+v, want recompile + cold start", res.Stats)
	}
	alloc, err := OfflineApproCtx(ctx, inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j, owner := range alloc.SlotOwner {
		if int(res.SlotSensor[j]) != owner {
			t.Fatalf("slot %d: warm owner %d, offline owner %d", j, res.SlotSensor[j], owner)
		}
	}
	gen := w.Generation()
	if gen == 0 {
		t.Fatal("generation still 0 after a successful Apply")
	}
	res2, err := w.Apply(ctx, inst, fullVisibility(inst))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Recompiled || !res2.Stats.NoOp {
		t.Fatalf("identical patches: %+v, want the cached no-op path", res2.Stats)
	}
	if w.Generation() != gen+1 {
		t.Fatalf("generation %d, want %d", w.Generation(), gen+1)
	}
}

// TestWarmSolverIncrementalDebits drives a debit/clip sequence with the
// bit-exactness self-check armed and verifies the counters move.
func TestWarmSolverIncrementalDebits(t *testing.T) {
	d := tinyDeployment(t, 30, 11, 2)
	inst, err := BuildInstance(d, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var w WarmSolver
	w.SelfCheck = true
	base := fullVisibility(inst)
	if _, err := w.Apply(ctx, inst, base); err != nil {
		t.Fatal(err)
	}
	resolvedBefore := deltaComponentsResolved.Value()
	fullBefore := deltaFullFallbacks.Value()
	incremental := 0
	for step := 1; step <= 6; step++ {
		ps := append([]SensorPatch(nil), base...)
		k := step % len(ps)
		ps[k].Budget *= 0.5
		if ps[k].Lo < ps[k].Hi {
			ps[k].Hi--
		}
		res, err := w.Apply(ctx, inst, ps)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if res.Stats.ColdStart {
			t.Fatalf("step %d unexpectedly cold-started", step)
		}
		if res.Stats.ComponentsResolved > 0 {
			incremental++
		}
		base = ps
	}
	resolved := deltaComponentsResolved.Value() - resolvedBefore
	fulls := deltaFullFallbacks.Value() - fullBefore
	if incremental > 0 && resolved <= 0 {
		t.Fatalf("solve_delta_components_resolved did not advance (got +%v)", resolved)
	}
	if float64(incremental)+fulls < 6 {
		t.Fatalf("stats drop intervals: %d incremental + %v full < 6 applies", incremental, fulls)
	}
}

// TestWarmSolverRebindsOnNewInstance: a different instance pointer
// recompiles; the old instance's patch state is discarded.
func TestWarmSolverRebindsOnNewInstance(t *testing.T) {
	ctx := context.Background()
	var w WarmSolver
	for seed := int64(0); seed < 2; seed++ {
		d := tinyDeployment(t, 20, 20+seed, 2)
		inst, err := BuildInstance(d, radio.Paper2013(), 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Apply(ctx, inst, fullVisibility(inst))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Recompiled {
			t.Fatalf("seed %d: expected recompile on new instance pointer", seed)
		}
	}
}

func TestWarmSolverRejectsUnknownSensor(t *testing.T) {
	d := tinyDeployment(t, 10, 3, 2)
	inst, err := BuildInstance(d, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var w WarmSolver
	if _, err := w.Apply(context.Background(), inst, []SensorPatch{{Sensor: 999, Budget: 1, Lo: 0, Hi: 0}}); err == nil {
		t.Fatal("expected error for out-of-range sensor index")
	}
	if _, err := w.Apply(context.Background(), nil, nil); err == nil {
		t.Fatal("expected error for nil instance")
	}
}
