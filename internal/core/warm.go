package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"mobisink/internal/gap"
	"mobisink/internal/metrics"
)

var (
	deltaComponentsResolved = metrics.Default().Counter(
		"solve_delta_components_resolved",
		"Window components re-solved incrementally by warm-started delta applies.")
	deltaFullFallbacks = metrics.Default().Counter(
		"solve_delta_full_fallbacks",
		"Warm delta applies that took a full re-solve (cold starts and dirty-fraction fallbacks).")
)

// SensorPatch is one sensor's absolute visible state for a warm solve:
// its current residual budget and data cap, and the window of slots it
// may serve (Lo > Hi means invisible). The slice passed to
// WarmSolver.Apply is the COMPLETE visible set — any sensor patched
// previously but absent now is disabled.
type SensorPatch struct {
	Sensor  int
	Budget  float64
	DataCap float64
	Lo, Hi  int
}

// WarmResult is one warm solve's outcome. SlotSensor aliases the
// solver's internal buffer — valid until the next Apply.
type WarmResult struct {
	SlotSensor []int32 // slot → sensor index, -1 unassigned
	Profit     float64
	Stats      gap.ApplyStats
	Recompiled bool // the instance pointer changed and Apply recompiled
}

// WarmSolver drives gap.Compiled.Apply across a sequence of solves of
// the same instance under drifting sensor state — the online protocol's
// per-interval loop. It compiles the tour-wide Appro reduction once per
// instance (keyed by pointer; gap.Compiled.Generation orders the patch
// states), then expresses each solve as a delta against the previous
// one, so only the window components whose sensors changed are
// re-solved. The zero value is ready to use. Not safe for concurrent
// use; results are bit-identical to cold-compiling the patched state,
// which SelfCheck enforces per Apply.
type WarmSolver struct {
	// Opts configures the compile exactly like CompileAppro (a custom
	// Knapsack oracle is rejected there; Parallel is ignored — the warm
	// path is sequential by construction).
	Opts Options
	// SelfCheck re-solves every Apply cold and verifies bit-equality
	// (math.Float64bits on profit, exact slot owners). For tests and
	// paranoid deployments; it erases the warm speedup.
	SelfCheck bool

	inst       *Instance
	c          *Compiled
	binOf      []int // sensor index → gap bin, -1 when not compiled
	visible    []bool
	want       []bool
	delta      gap.Delta
	out        []int32
	slotSensor []int32
}

// Apply solves the instance under the given complete visible-sensor
// state, warm-starting from the previous Apply when the instance pointer
// is unchanged. Patches for sensors the reduction dropped (never in
// range) are inert; unknown sensor indices error.
func (w *WarmSolver) Apply(ctx context.Context, inst *Instance, patches []SensorPatch) (WarmResult, error) {
	var res WarmResult
	if inst == nil {
		return res, errors.New("core: nil instance")
	}
	if inst != w.inst {
		c, err := CompileAppro(inst, w.Opts)
		if err != nil {
			return res, err
		}
		w.inst, w.c = inst, c
		w.binOf = make([]int, len(inst.Sensors))
		for i := range w.binOf {
			w.binOf[i] = -1
		}
		for b, si := range c.order {
			w.binOf[si] = b
		}
		nb := len(c.order)
		w.visible = make([]bool, nb)
		for b := range w.visible {
			w.visible[b] = true // compile state: every bin fully enabled
		}
		w.want = make([]bool, nb)
		w.out = make([]int32, inst.T)
		w.slotSensor = make([]int32, inst.T)
		res.Recompiled = true
	}
	w.delta.Reset()
	for b := range w.want {
		w.want[b] = false
	}
	for _, p := range patches {
		if p.Sensor < 0 || p.Sensor >= len(w.binOf) {
			return res, fmt.Errorf("core: patch names sensor %d outside the instance", p.Sensor)
		}
		b := w.binOf[p.Sensor]
		if b < 0 {
			continue // dropped by the reduction: nothing to patch
		}
		w.want[b] = true
		w.delta.SetCap(b, p.Budget)
		w.delta.SetDataCap(b, p.DataCap)
		w.delta.ShiftWindow(b, p.Lo, p.Hi)
	}
	for b, vis := range w.visible {
		if vis && !w.want[b] {
			w.delta.ShiftWindow(b, 0, -1) // departed sensor: hide the bin
		}
		w.visible[b] = w.want[b]
	}
	profit, stats, err := w.c.g.Apply(ctx, &w.delta, w.out)
	if err != nil {
		return res, err
	}
	deltaComponentsResolved.Add(float64(stats.ComponentsResolved))
	if stats.Full || stats.ColdStart {
		deltaFullFallbacks.Inc()
	}
	for j, b := range w.out {
		if b >= 0 {
			w.slotSensor[j] = int32(w.c.order[b])
		} else {
			w.slotSensor[j] = -1
		}
	}
	res.SlotSensor = w.slotSensor
	res.Profit = profit
	res.Stats = stats
	if w.SelfCheck {
		if err := w.selfCheck(ctx, profit); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Generation exposes the underlying patch-state counter (0 before the
// first Apply).
func (w *WarmSolver) Generation() uint64 {
	if w.c == nil {
		return 0
	}
	return w.c.g.Generation()
}

// selfCheck cold-compiles the current patched state and demands
// bit-equality with the warm solve.
func (w *WarmSolver) selfCheck(ctx context.Context, profit float64) error {
	g := w.c.g
	ref, err := gap.Compile(g.Remake(), g.Quantum, g.Eps)
	if err != nil {
		return fmt.Errorf("core: warm self-check recompile: %w", err)
	}
	refOut := make([]int32, g.NumItems)
	refProfit, err := ref.SolveInto(ctx, nil, refOut, gap.SolveOptions{})
	if err != nil {
		return fmt.Errorf("core: warm self-check cold solve: %w", err)
	}
	if math.Float64bits(refProfit) != math.Float64bits(profit) {
		return fmt.Errorf("core: warm profit %v != cold profit %v", profit, refProfit)
	}
	for j := range refOut {
		if refOut[j] != w.out[j] {
			return fmt.Errorf("core: warm slot %d owned by bin %d, cold by %d", j, w.out[j], refOut[j])
		}
	}
	return nil
}
