package core

import (
	"math"
	"math/rand"
	"testing"

	"mobisink/internal/energy"
	"mobisink/internal/gap"
	"mobisink/internal/knapsack"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

// tinyDeployment builds a short-path deployment for exhaustive ground truth.
func tinyDeployment(t *testing.T, n int, seed int64, budget float64) *network.Deployment {
	t.Helper()
	d, err := network.Generate(network.Params{N: n, PathLength: 300, MaxOffset: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetUniformBudgets(budget); err != nil {
		t.Fatal(err)
	}
	return d
}

// gapOf mirrors OfflineAppro's reduction so tests can compute the exhaustive
// optimum of the same combinatorial problem.
func gapOf(inst *Instance) *gap.Instance {
	g := &gap.Instance{NumItems: inst.T}
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		bin := gap.Bin{Capacity: s.Budget}
		for j := s.Start; s.Start >= 0 && j <= s.End; j++ {
			if s.RateAt(j) > 0 && s.PowerAt(j) > 0 {
				bin.Entries = append(bin.Entries, gap.Entry{
					Item: j, Profit: s.RateAt(j) * inst.Tau, Weight: s.PowerAt(j) * inst.Tau,
				})
			}
		}
		g.Bins = append(g.Bins, bin)
	}
	return g
}

func optimum(t *testing.T, inst *Instance) float64 {
	t.Helper()
	opt, err := gap.Exhaustive(gapOf(inst), 1<<28)
	if err != nil {
		t.Skipf("instance too large for exhaustive: %v", err)
	}
	return opt.Profit
}

func TestBuildInstanceValidation(t *testing.T) {
	d := tinyDeployment(t, 3, 1, 1)
	if _, err := BuildInstance(nil, radio.Paper2013(), 5, 1); err == nil {
		t.Error("expected nil-deployment error")
	}
	if _, err := BuildInstance(d, nil, 5, 1); err == nil {
		t.Error("expected nil-model error")
	}
	if _, err := BuildInstance(d, radio.Paper2013(), 0, 1); err == nil {
		t.Error("expected speed error")
	}
	bad := *d
	bad.PathLength = -1
	if _, err := BuildInstance(&bad, radio.Paper2013(), 5, 1); err == nil {
		t.Error("expected deployment validation error")
	}
}

func TestBuildInstancePaperScale(t *testing.T) {
	d, _ := network.Generate(network.PaperParams(200, 5))
	_ = d.SetUniformBudgets(2)
	inst, err := BuildInstance(d, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.T != 2000 {
		t.Fatalf("T = %d, want 2000", inst.T)
	}
	if inst.Gamma != 40 {
		t.Fatalf("Gamma = %d, want 40", inst.Gamma)
	}
	if inst.Range != 200 {
		t.Fatalf("Range = %v", inst.Range)
	}
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		if s.Start < 0 {
			continue
		}
		if s.WindowSize() > 2*inst.Gamma+2 {
			t.Fatalf("sensor %d window %d exceeds 2Γ+2", i, s.WindowSize())
		}
		for j := s.Start; j <= s.End; j++ {
			if s.RateAt(j) < 0 || s.PowerAt(j) < 0 {
				t.Fatal("negative link parameters")
			}
		}
		// Outside the window: zeros.
		if s.RateAt(s.Start-1) != 0 || s.PowerAt(s.End+1) != 0 {
			t.Fatal("out-of-window lookups must be zero")
		}
	}
}

func TestValidateAllocation(t *testing.T) {
	d := tinyDeployment(t, 3, 2, 1)
	inst, err := BuildInstance(d, radio.Paper2013(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := inst.NewAllocation()
	if v, err := inst.Validate(a); err != nil || v != 0 {
		t.Fatalf("empty allocation: %v %v", v, err)
	}
	// Assign a real slot.
	si := -1
	for i := range inst.Sensors {
		if inst.Sensors[i].Start >= 0 && inst.Sensors[i].RateAt(inst.Sensors[i].Start) > 0 {
			si = i
			break
		}
	}
	if si == -1 {
		t.Skip("no covered sensor in tiny topology")
	}
	s := &inst.Sensors[si]
	a.SlotOwner[s.Start] = si
	v, err := inst.Validate(a)
	if err != nil {
		t.Fatal(err)
	}
	want := s.RateAt(s.Start) * inst.Tau
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("data = %v, want %v", v, want)
	}
	// Slot outside window.
	bad := inst.NewAllocation()
	out := s.End + 1
	if out < inst.T {
		bad.SlotOwner[out] = si
		if _, err := inst.Validate(bad); err == nil {
			t.Error("expected out-of-window error")
		}
	}
	// Invalid sensor index.
	bad2 := inst.NewAllocation()
	bad2.SlotOwner[0] = 99
	if _, err := inst.Validate(bad2); err == nil {
		t.Error("expected invalid-sensor error")
	}
	// Wrong length.
	if _, err := inst.Validate(&Allocation{SlotOwner: make([]int, 3)}); err == nil {
		t.Error("expected length error")
	}
	if _, err := inst.Validate(nil); err == nil {
		t.Error("expected nil error")
	}
	// Budget violation: pack every window slot of a sensor with a tiny budget.
	d2 := tinyDeployment(t, 1, 3, 0.2) // 0.2 J ≈ one slot at most
	inst2, _ := BuildInstance(d2, radio.Paper2013(), 10, 1)
	s2 := &inst2.Sensors[0]
	if s2.Start >= 0 && s2.WindowSize() >= 3 {
		over := inst2.NewAllocation()
		for j := s2.Start; j <= s2.End; j++ {
			if s2.RateAt(j) > 0 {
				over.SlotOwner[j] = 0
			}
		}
		if _, err := inst2.Validate(over); err == nil {
			t.Error("expected budget violation")
		}
	}
}

func TestOfflineApproFeasibleAndHalfOptimal(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		d := tinyDeployment(t, 3, seed, 0.7)
		inst, err := BuildInstance(d, radio.Paper2013(), 30, 1) // T = 10
		if err != nil {
			t.Fatal(err)
		}
		a, err := OfflineAppro(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		v, err := inst.Validate(a)
		if err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
		if math.Abs(v-a.Data) > 1e-9 {
			t.Fatalf("seed %d: data mismatch %v vs %v", seed, a.Data, v)
		}
		opt := optimum(t, inst)
		if a.Data < opt/2-1e-9 {
			t.Fatalf("seed %d: appro %v < OPT/2 = %v", seed, a.Data, opt/2)
		}
		if ub := inst.UpperBound(); a.Data > ub+1e-9 {
			t.Fatalf("seed %d: appro %v exceeds upper bound %v", seed, a.Data, ub)
		}
	}
}

func TestOfflineApproForceFPTAS(t *testing.T) {
	d := tinyDeployment(t, 3, 11, 0.7)
	inst, _ := BuildInstance(d, radio.Paper2013(), 30, 1)
	a, err := OfflineAppro(inst, Options{ForceFPTAS: true, Eps: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(a); err != nil {
		t.Fatal(err)
	}
	opt := optimum(t, inst)
	if a.Data < opt/(2+0.2)-1e-9 {
		t.Fatalf("fptas appro %v < OPT/(2+eps) = %v", a.Data, opt/2.2)
	}
}

func TestOfflineApproCustomSolver(t *testing.T) {
	d := tinyDeployment(t, 2, 13, 0.7)
	inst, _ := BuildInstance(d, radio.Paper2013(), 30, 1)
	a, err := OfflineAppro(inst, Options{Knapsack: knapsack.Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := OfflineAppro(nil, Options{}); err == nil {
		t.Error("expected nil-instance error")
	}
}

func TestFixedTxPowerDetection(t *testing.T) {
	d := tinyDeployment(t, 3, 17, 1)
	multi, _ := BuildInstance(d, radio.Paper2013(), 10, 1)
	if _, ok := multi.FixedTxPower(); ok {
		t.Error("multi-rate table misdetected as fixed power")
	}
	fp, _ := radio.NewFixedPower(radio.Paper2013(), 0.3)
	fixed, _ := BuildInstance(d, fp, 10, 1)
	p, ok := fixed.FixedTxPower()
	if !ok || p != 0.3 {
		t.Errorf("fixed power = %v ok=%v, want 0.3 true", p, ok)
	}
}

func TestOfflineMaxMatchExactOnSpecialCase(t *testing.T) {
	fp, _ := radio.NewFixedPower(radio.Paper2013(), 0.3)
	for seed := int64(20); seed < 26; seed++ {
		d := tinyDeployment(t, 3, seed, 0.95)
		inst, err := BuildInstance(d, fp, 30, 1)
		if err != nil {
			t.Fatal(err)
		}
		a, err := OfflineMaxMatch(inst)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Validate(a); err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
		opt := optimum(t, inst)
		if math.Abs(a.Data-opt) > 1e-6 {
			t.Fatalf("seed %d: maxmatch %v != optimum %v", seed, a.Data, opt)
		}
	}
}

func TestOfflineMaxMatchRejectsMultiRate(t *testing.T) {
	d := tinyDeployment(t, 3, 30, 1)
	inst, _ := BuildInstance(d, radio.Paper2013(), 10, 1)
	if _, err := OfflineMaxMatch(inst); err == nil {
		t.Error("expected fixed-power error")
	}
	if _, err := OfflineMaxMatch(nil); err == nil {
		t.Error("expected nil error")
	}
}

// Paper Fig. 3 ordering on the special case: the exact matching dominates
// the GAP approximation.
func TestMaxMatchDominatesApproOnSpecialCase(t *testing.T) {
	fp, _ := radio.NewFixedPower(radio.Paper2013(), 0.3)
	d, _ := network.Generate(network.PaperParams(150, 99))
	h := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(99))
	if err := d.AssignSteadyStateBudgets(h, 2000, 0.2, rng); err != nil {
		t.Fatal(err)
	}
	inst, err := BuildInstance(d, fp, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := OfflineMaxMatch(inst)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := OfflineAppro(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(mm); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(ap); err != nil {
		t.Fatal(err)
	}
	if mm.Data < ap.Data-1e-6 {
		t.Errorf("exact matching %v below approximation %v", mm.Data, ap.Data)
	}
	if ub := inst.UpperBound(); mm.Data > ub+1e-6 {
		t.Errorf("matching %v exceeds upper bound %v", mm.Data, ub)
	}
}

func TestOfflineGreedy(t *testing.T) {
	d := tinyDeployment(t, 3, 33, 0.7)
	inst, _ := BuildInstance(d, radio.Paper2013(), 30, 1)
	a, err := OfflineGreedy(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := OfflineGreedy(nil); err == nil {
		t.Error("expected nil error")
	}
}

func TestEnergyUsed(t *testing.T) {
	d := tinyDeployment(t, 3, 44, 1)
	inst, _ := BuildInstance(d, radio.Paper2013(), 10, 1)
	a, err := OfflineAppro(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	used := inst.EnergyUsed(a)
	for i, e := range used {
		if e > inst.Sensors[i].Budget+1e-9 {
			t.Errorf("sensor %d over budget: %v > %v", i, e, inst.Sensors[i].Budget)
		}
	}
}

func TestUpperBoundSanity(t *testing.T) {
	d := tinyDeployment(t, 4, 55, 0.5)
	inst, _ := BuildInstance(d, radio.Paper2013(), 30, 1)
	ub := inst.UpperBound()
	opt := optimum(t, inst)
	if ub < opt-1e-9 {
		t.Fatalf("upper bound %v below optimum %v", ub, opt)
	}
	// Huge budgets: the slot bound should bind (energy bound explodes).
	_ = d.SetUniformBudgets(1e6)
	rich, _ := BuildInstance(d, radio.Paper2013(), 30, 1)
	if rich.UpperBound() != rich.slotBound() {
		t.Error("with infinite energy the slot bound must bind")
	}
}

func TestThroughputMb(t *testing.T) {
	if ThroughputMb(2.5e6) != 2.5 {
		t.Error("unit conversion wrong")
	}
}

func TestWeightQuantumDetection(t *testing.T) {
	d := tinyDeployment(t, 3, 66, 1)
	inst, _ := BuildInstance(d, radio.Paper2013(), 10, 1)
	q, ok := inst.weightQuantum()
	if !ok {
		t.Fatal("paper power table must yield a quantum")
	}
	// Powers 0.17/0.22/0.30/0.33 × τ=1 → gcd 0.01 J.
	if math.Abs(q-0.01) > 1e-9 {
		t.Errorf("quantum = %v, want 0.01", q)
	}
	// Continuous power model: no usable quantum.
	plm, _ := radio.NewPathLoss(250e3, 20, 2.5, 0.17, 0.33, 200)
	cont, _ := BuildInstance(d, plm, 10, 1)
	if _, ok := cont.weightQuantum(); ok {
		t.Error("continuous powers must not yield a small quantum")
	}
}
