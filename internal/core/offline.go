package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"mobisink/internal/gap"
	"mobisink/internal/knapsack"
	"mobisink/internal/matching"
)

// Options tunes the offline approximation algorithm.
type Options struct {
	// Knapsack overrides the inner single-bin solver. Nil selects
	// automatically: an exact quantized DP when the instance's power levels
	// share a coarse quantum (the paper's discrete power table does), and
	// the (1−ε)-FPTAS otherwise.
	Knapsack knapsack.Solver
	// Eps is the FPTAS accuracy when the automatic choice falls back to it
	// (or when ForceFPTAS is set). Zero means 0.1.
	Eps float64
	// ForceFPTAS always uses the FPTAS inner solver, matching the paper's
	// stated construction (β = 1+ε ⇒ ratio 1/(2+ε)).
	ForceFPTAS bool
	// Parallel decomposes the GAP bin sequence into connected components
	// of overlapping visibility windows and solves the components
	// concurrently. The merged allocation is identical to the sequential
	// one (components share no slots; see gap.LocalRatioParallelCtx).
	Parallel bool
	// Workers bounds component parallelism when Parallel is set;
	// ≤ 0 means GOMAXPROCS.
	Workers int
	// MinParallelEntries is the window-component size (in GAP entries)
	// below which Parallel falls back to the sequential sweep — fanning
	// goroutines out over tiny components costs more than it saves. Zero
	// selects gap.DefaultMinParallelEntries; negative disables the
	// fallback. Only the compiled fast path honors it.
	MinParallelEntries int
}

func (o Options) Solver(inst *Instance) knapsack.Solver {
	if o.Knapsack != nil {
		return o.Knapsack
	}
	eps := o.Eps
	if eps <= 0 {
		eps = 0.1
	}
	if o.ForceFPTAS {
		return knapsack.FPTAS(eps)
	}
	if q, ok := inst.weightQuantum(); ok {
		return func(items []knapsack.Item, c float64) knapsack.Solution {
			return knapsack.DP(items, c, q)
		}
	}
	return knapsack.FPTAS(eps)
}

// SolverCtx is Solver with cancellation support: the automatic DP/FPTAS
// choices poll the context inside their inner loops, while an explicit
// Knapsack override is checked once per bin.
func (o Options) SolverCtx(inst *Instance) knapsack.SolverCtx {
	if o.Knapsack != nil {
		return o.Knapsack.Ctx()
	}
	eps := o.Eps
	if eps <= 0 {
		eps = 0.1
	}
	if o.ForceFPTAS {
		return knapsack.FPTASCtx(eps)
	}
	if q, ok := inst.weightQuantum(); ok {
		return func(ctx context.Context, items []knapsack.Item, c float64) (knapsack.Solution, error) {
			return knapsack.DPCtx(ctx, items, c, q)
		}
	}
	return knapsack.FPTASCtx(eps)
}

// weightQuantum finds a common quantum dividing every per-slot energy cost
// P_{i,j}·τ, if the costs are discrete enough for an exact DP of reasonable
// size. It returns ok=false for effectively continuous power models.
func (inst *Instance) weightQuantum() (float64, bool) {
	const unit = 1e-6 // resolve weights in micro-Joules
	g := int64(0)
	maxQ := int64(0)
	ok := true
	accum := func(p float64) {
		if p <= 0 || !ok {
			return
		}
		w := int64(math.Round(p * inst.Tau / unit))
		if w == 0 {
			ok = false
			return
		}
		g = gcd64(g, w)
		if w > maxQ {
			maxQ = w
		}
	}
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		for _, p := range s.Powers {
			accum(p)
		}
		for wi := range s.More {
			for _, p := range s.More[wi].Powers {
				accum(p)
			}
		}
	}
	if !ok {
		return 0, false
	}
	if g == 0 {
		return 0, false
	}
	// Table size per window slot is w/g; keep the DP comfortably small.
	if maxQ/g > 4096 {
		return 0, false
	}
	return float64(g) * unit, true
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// OfflineAppro is the paper's Algorithm 1 (Offline_Appro): sensors are
// sorted by (start slot, end slot); the Cohen-Katzir-Raz local-ratio GAP
// algorithm packs each sensor's window with a knapsack oracle against
// residual profits; each slot finally belongs to the last sensor that
// claimed it. With a β-approximate knapsack the allocation is within
// 1/(1+β) of optimal.
func OfflineAppro(inst *Instance, opts Options) (*Allocation, error) {
	return OfflineApproCtx(context.Background(), inst, opts)
}

// OfflineApproCtx is OfflineAppro with cancellation: the context is
// threaded into the local-ratio sweep and the inner knapsack DPs. With
// opts.Parallel set, the GAP instance is decomposed into connected
// components of overlapping visibility windows and the components are
// solved concurrently — the merged allocation is guaranteed identical to
// the sequential one.
func OfflineApproCtx(ctx context.Context, inst *Instance, opts Options) (*Allocation, error) {
	if inst == nil {
		return nil, errors.New("core: nil instance")
	}
	if opts.Knapsack == nil {
		// Flat fast path: compile the GAP reduction once and sweep it with
		// the structure-of-arrays kernels. Bit-identical to the legacy
		// sweep below (see TestFlatMatchesLegacy).
		c, err := CompileAppro(inst, opts)
		if err != nil {
			return nil, err
		}
		return c.Solve(ctx, opts)
	}
	return offlineApproLegacyCtx(ctx, inst, opts)
}

// offlineApproLegacyCtx is the pointer-y sweep over a freshly built
// gap.Instance: the only remaining production caller is the custom-oracle
// case (an opaque knapsack.Solver cannot be compiled), but it is also the
// reference implementation the flat engine is differentially tested
// against.
func offlineApproLegacyCtx(ctx context.Context, inst *Instance, opts Options) (*Allocation, error) {
	order := sensorOrder(inst)
	g := buildGAP(inst, order)
	var asg *gap.Assignment
	var err error
	if opts.Parallel {
		asg, err = gap.LocalRatioParallelCtx(ctx, g, opts.SolverCtx(inst), opts.Workers)
	} else {
		asg, err = gap.LocalRatioCtx(ctx, g, opts.SolverCtx(inst))
	}
	if err != nil {
		return nil, err
	}
	alloc := inst.NewAllocation()
	for j, b := range asg.ItemBin {
		if b >= 0 {
			alloc.SlotOwner[j] = order[b]
		}
	}
	inst.RecomputeData(alloc)
	return alloc, nil
}

// buildGAP constructs the paper's GAP reduction (Thm 1) for the given
// sensor order: one bin per sensor (capacity = per-tour energy budget),
// one entry per usable window slot (profit = r·τ bits, weight = P·τ
// Joules). Shared by OfflineAppro and OfflineGreedy, which differ only in
// bin order and the assignment algorithm run on the result.
//
// Fleet instances contribute entries from every window (one per audible
// sink) and carry the cross-sink constraint as the conflict-group map
// ItemGroup[global slot] = absolute slot: within a bin (sensor) at most
// one item per absolute slot may be assigned. Single-sink instances set
// no groups and build the exact legacy reduction.
func buildGAP(inst *Instance, order []int) *gap.Instance {
	g := &gap.Instance{NumItems: inst.T}
	g.Bins = make([]gap.Bin, len(order))
	for b, si := range order {
		s := &inst.Sensors[si]
		bin := gap.Bin{Capacity: s.Budget}
		if s.Start >= 0 {
			for j := s.Start; j <= s.End; j++ {
				r, p := s.Rates[j-s.Start], s.Powers[j-s.Start]
				if r <= 0 || p <= 0 {
					continue
				}
				bin.Entries = append(bin.Entries, gap.Entry{
					Item:   j,
					Profit: r * inst.Tau,
					Weight: p * inst.Tau,
				})
			}
		}
		for wi := range s.More {
			w := &s.More[wi]
			for j := w.Start; j <= w.End; j++ {
				r, p := w.Rates[j-w.Start], w.Powers[j-w.Start]
				if r <= 0 || p <= 0 {
					continue
				}
				bin.Entries = append(bin.Entries, gap.Entry{
					Item:   j,
					Profit: r * inst.Tau,
					Weight: p * inst.Tau,
				})
			}
		}
		g.Bins[b] = bin
	}
	if inst.NumSinks() > 1 {
		g.ItemGroup = make([]int, inst.T)
		for j := range g.ItemGroup {
			g.ItemGroup[j] = inst.AbsSlot(j)
		}
	}
	return g
}

// sensorOrder returns sensor indices sorted by increasing start slot, then
// end slot (paper Algorithm 1 line 1); sensors that never hear the sink are
// dropped.
func sensorOrder(inst *Instance) []int {
	order := make([]int, 0, len(inst.Sensors))
	for i := range inst.Sensors {
		if inst.Sensors[i].Start >= 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := &inst.Sensors[order[a]], &inst.Sensors[order[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		if sa.End != sb.End {
			return sa.End < sb.End
		}
		return order[a] < order[b] // deterministic tie-break
	})
	return order
}

// FixedTxPower returns the single transmission power if every positive
// per-slot power in the instance is identical (the special case of
// paper §VI), else ok=false.
func (inst *Instance) FixedTxPower() (float64, bool) {
	p := 0.0
	same := func(powers []float64) bool {
		for _, pw := range powers {
			if pw <= 0 {
				continue
			}
			if p == 0 {
				p = pw
			} else if math.Abs(pw-p) > 1e-12 {
				return false
			}
		}
		return true
	}
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		if !same(s.Powers) {
			return 0, false
		}
		for wi := range s.More {
			if !same(s.More[wi].Powers) {
				return 0, false
			}
		}
	}
	if p == 0 {
		return 0, false
	}
	return p, true
}

// OfflineMaxMatch solves the fixed-transmission-power special case exactly
// (paper §VI, Offline_MaxMatch): a maximum-weight matching between sensors
// and slots where sensor v_i may take up to
// n'_i = min(|A(v_i)|, ⌊P(v_i)/(P'·τ)⌋) slots. It errors when the instance
// is not a fixed-power instance.
func OfflineMaxMatch(inst *Instance) (*Allocation, error) {
	return OfflineMaxMatchCtx(context.Background(), inst)
}

// OfflineMaxMatchCtx is OfflineMaxMatch with cancellation: the context is
// polled once per augmenting path of the underlying min-cost flow.
func OfflineMaxMatchCtx(ctx context.Context, inst *Instance) (*Allocation, error) {
	if inst == nil {
		return nil, errors.New("core: nil instance")
	}
	pFixed, ok := inst.FixedTxPower()
	if !ok {
		return nil, fmt.Errorf("core: OfflineMaxMatch requires a single fixed transmission power")
	}
	perSlotCost := pFixed * inst.Tau
	g, err := matching.NewGraph(len(inst.Sensors), inst.T)
	if err != nil {
		return nil, err
	}
	// Fleet instances carry the cross-sink constraint as per-left conflict
	// groups keyed by absolute slot, which the matching solver enforces
	// exactly with unit-capacity gadget nodes — Offline_MaxMatch stays an
	// exact anchor at any K.
	fleet := inst.NumSinks() > 1
	addEdge := func(i, j int, r float64) error {
		if fleet {
			return g.AddEdgeInGroup(i, j, r*inst.Tau, inst.AbsSlot(j))
		}
		return g.AddEdge(i, j, r*inst.Tau)
	}
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		if s.Start < 0 {
			if err := g.SetLeftCap(i, 0); err != nil {
				return nil, err
			}
			continue
		}
		capSlots := int(math.Floor(s.Budget/perSlotCost + 1e-9))
		if w := s.TotalWindowSize(); capSlots > w {
			capSlots = w
		}
		if err := g.SetLeftCap(i, capSlots); err != nil {
			return nil, err
		}
		for j := s.Start; j <= s.End; j++ {
			if r := s.Rates[j-s.Start]; r > 0 {
				if err := addEdge(i, j, r); err != nil {
					return nil, err
				}
			}
		}
		for wi := range s.More {
			w := &s.More[wi]
			for j := w.Start; j <= w.End; j++ {
				if r := w.Rates[j-w.Start]; r > 0 {
					if err := addEdge(i, j, r); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	res, err := g.MaxWeightCtx(ctx)
	if err != nil {
		return nil, err
	}
	alloc := inst.NewAllocation()
	copy(alloc.SlotOwner, res.RightMatch)
	inst.RecomputeData(alloc)
	return alloc, nil
}

// OfflineGreedy is a density-greedy baseline over all (sensor, slot) pairs.
func OfflineGreedy(inst *Instance) (*Allocation, error) {
	return OfflineGreedyCtx(context.Background(), inst)
}

// OfflineGreedyCtx is OfflineGreedy with an up-front cancellation check
// (the greedy sweep itself is a single fast sort-and-scan).
func OfflineGreedyCtx(ctx context.Context, inst *Instance) (*Allocation, error) {
	if inst == nil {
		return nil, errors.New("core: nil instance")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Identity order: the greedy baseline does not depend on bin order.
	order := make([]int, len(inst.Sensors))
	for i := range order {
		order[i] = i
	}
	g := buildGAP(inst, order)
	asg, err := gap.Greedy(g)
	if err != nil {
		return nil, err
	}
	alloc := inst.NewAllocation()
	copy(alloc.SlotOwner, asg.ItemBin)
	inst.RecomputeData(alloc)
	return alloc, nil
}
