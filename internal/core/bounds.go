package core

import (
	"math"
	"sort"
)

// UpperBound returns an upper bound on the optimal collected data (bits),
// the minimum of two relaxations:
//
//  1. slot relaxation — drop the energy budgets: each slot contributes the
//     best rate any sensor offers in it;
//  2. energy relaxation — drop slot exclusivity: each sensor solves its own
//     fractional knapsack over its window.
//
// OPT never exceeds either, so reported ratios alg/UpperBound are
// conservative fraction-of-optimum figures.
func (inst *Instance) UpperBound() float64 {
	return math.Min(inst.slotBound(), inst.energyBound())
}

func (inst *Instance) slotBound() float64 {
	best := make([]float64, inst.T)
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		for j := s.Start; s.Start >= 0 && j <= s.End; j++ {
			if r := s.Rates[j-s.Start]; r > best[j] {
				best[j] = r
			}
		}
		for wi := range s.More {
			w := &s.More[wi]
			for j := w.Start; j <= w.End; j++ {
				if r := w.Rates[j-w.Start]; r > best[j] {
					best[j] = r
				}
			}
		}
	}
	total := 0.0
	for _, r := range best {
		total += r * inst.Tau
	}
	return total
}

func (inst *Instance) energyBound() float64 {
	total := 0.0
	for i := range inst.Sensors {
		total += inst.fractionalKnapsack(i)
	}
	return total
}

// fractionalKnapsack returns the LP-relaxed best data volume sensor i could
// upload alone: fill slots in decreasing rate/power density until the
// budget is exhausted, taking a fractional final slot.
func (inst *Instance) fractionalKnapsack(i int) float64 {
	s := &inst.Sensors[i]
	if s.Start < 0 {
		return 0
	}
	type slot struct{ profit, weight float64 }
	slots := make([]slot, 0, s.TotalWindowSize())
	add := func(rates, powers []float64) {
		for k, r := range rates {
			p := powers[k]
			if r <= 0 || p <= 0 {
				continue
			}
			slots = append(slots, slot{r * inst.Tau, p * inst.Tau})
		}
	}
	add(s.Rates, s.Powers)
	for wi := range s.More {
		add(s.More[wi].Rates, s.More[wi].Powers)
	}
	sort.Slice(slots, func(a, b int) bool {
		return slots[a].profit*slots[b].weight > slots[b].profit*slots[a].weight
	})
	left := s.Budget
	total := 0.0
	for _, sl := range slots {
		if sl.weight <= left {
			total += sl.profit
			left -= sl.weight
		} else {
			total += sl.profit * left / sl.weight
			break
		}
	}
	return total
}
