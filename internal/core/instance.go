// Package core implements the paper's data collection maximization problem:
// given one tour of a path-constrained mobile sink over T time slots,
// allocate slots to sensors — at most one sensor per slot, each sensor
// within its per-tour energy budget — to maximize the data collected under
// distance-dependent multi-rate transmission (paper §II.D).
//
// The package defines the problem Instance, feasibility validation, and the
// offline algorithms: OfflineAppro (the local-ratio GAP approximation,
// paper §IV) and OfflineMaxMatch (the exact matching-based solution of the
// fixed-transmission-power special case, paper §VI), plus upper bounds for
// fraction-of-optimum reporting.
package core

import (
	"errors"
	"fmt"

	"mobisink/internal/geom"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

// Window is one contiguous visibility window of a sensor against one sink
// of a fleet, in the instance's joint (sink-major) slot space.
type Window struct {
	Sink       int // fleet index of the sink this window listens to
	Start, End int // inclusive global slot range
	// Rates[k] and Powers[k] are r_{i,j} (bit/s) and P_{i,j} (W) for
	// global slot j = Start+k.
	Rates  []float64
	Powers []float64
}

// SensorSlots is a sensor together with its visibility window A(v) and
// per-slot link parameters for the current tour. Fleet instances (K > 1)
// may give a sensor one window per sink it can hear: the first (lowest
// sink index) is the primary window below, the rest live in More.
type SensorSlots struct {
	ID     int // dense sensor index
	Pos    geom.Point
	Budget float64 // P(v), Joules available this tour
	// Start and End delimit the primary window as an inclusive 0-based
	// global slot range; Start == -1 means the sensor never hears any sink.
	Start, End int
	// Rates[k] and Powers[k] are r_{i,j} (bit/s) and P_{i,j} (W) for slot
	// j = Start+k.
	Rates  []float64
	Powers []float64
	// Sink is the fleet index of the primary window's sink (0 for
	// single-sink instances).
	Sink int
	// More holds the windows against further sinks, ascending by sink
	// index; always empty when K = 1.
	More []Window
}

// WindowSize returns the primary window's size |A(v)|.
func (s *SensorSlots) WindowSize() int {
	if s.Start < 0 {
		return 0
	}
	return s.End - s.Start + 1
}

// TotalWindowSize returns the slot count across every window of the
// sensor (primary plus More); equal to WindowSize for K = 1.
func (s *SensorSlots) TotalWindowSize() int {
	n := s.WindowSize()
	for i := range s.More {
		w := &s.More[i]
		n += w.End - w.Start + 1
	}
	return n
}

// RateAt returns r_{i,j} for global slot j, or 0 if j is in no window.
func (s *SensorSlots) RateAt(j int) float64 {
	if s.Start >= 0 && j >= s.Start && j <= s.End {
		return s.Rates[j-s.Start]
	}
	for i := range s.More {
		if w := &s.More[i]; j >= w.Start && j <= w.End {
			return w.Rates[j-w.Start]
		}
	}
	return 0
}

// PowerAt returns P_{i,j} for global slot j, or 0 if j is in no window.
func (s *SensorSlots) PowerAt(j int) float64 {
	if s.Start >= 0 && j >= s.Start && j <= s.End {
		return s.Powers[j-s.Start]
	}
	for i := range s.More {
		if w := &s.More[i]; j >= w.Start && j <= w.End {
			return w.Powers[j-w.Start]
		}
	}
	return 0
}

// Contains reports whether global slot j lies inside any of the sensor's
// windows (independently of the slot's rate being usable).
func (s *SensorSlots) Contains(j int) bool {
	if s.Start >= 0 && j >= s.Start && j <= s.End {
		return true
	}
	for i := range s.More {
		if w := &s.More[i]; j >= w.Start && j <= w.End {
			return true
		}
	}
	return false
}

// SinkInfo is one mobile sink's segment of the joint slot space: its tour
// occupies the global slots [Offset, Offset+T); global slot Offset+a runs
// during absolute time slot a, concurrently with every other sink's slot
// of the same absolute index (the fleet tours in lock-step, sharing τ).
type SinkInfo struct {
	Offset int // first global slot of this sink's segment
	T      int // slots in this sink's tour
	Traj   *geom.Trajectory
}

// Instance is one tour's slot-allocation problem. Fleet instances (K > 1
// sinks) use a sink-major joint slot space: T sums the per-sink tour
// lengths, Sinks records each sink's segment, and the cross-sink
// constraint — a sensor transmits to at most one sink per absolute time
// slot — joins constraints (1)-(4).
type Instance struct {
	T       int     // slots per tour (sum over the fleet)
	Tau     float64 // τ, seconds per slot
	Gamma   int     // Γ = ⌊R/(r_s·τ)⌋, slots per online interval
	Range   float64 // R, maximum transmission range
	Sensors []SensorSlots
	Traj    *geom.Trajectory
	// Sinks describes the fleet's segments of the joint slot space; nil
	// means the legacy single sink owning all of [0, T).
	Sinks []SinkInfo
	// DataCaps, when non-nil, bounds each sensor's total upload in bits
	// (finite data queues); nil means the paper's unbounded-data model.
	// Set via SetDataCaps.
	DataCaps []float64
}

// NumSinks returns the fleet size (1 for legacy instances).
func (inst *Instance) NumSinks() int {
	if len(inst.Sinks) == 0 {
		return 1
	}
	return len(inst.Sinks)
}

// SinkOfSlot returns the fleet index of the sink owning global slot j.
func (inst *Instance) SinkOfSlot(j int) int {
	for k := len(inst.Sinks) - 1; k >= 0; k-- {
		if j >= inst.Sinks[k].Offset {
			return k
		}
	}
	return 0
}

// AbsSlot returns the absolute time slot during which global slot j runs:
// j minus its sink's segment offset. Two global slots conflict for a
// sensor exactly when their absolute slots coincide.
func (inst *Instance) AbsSlot(j int) int {
	if len(inst.Sinks) == 0 {
		return j
	}
	return j - inst.Sinks[inst.SinkOfSlot(j)].Offset
}

// BuildInstance derives the slot-allocation problem for one tour of the
// deployment with the given radio model and sink kinematics.
func BuildInstance(dep *network.Deployment, model radio.Model, sinkSpeed, slotLen float64) (*Instance, error) {
	if dep == nil {
		return nil, errors.New("core: nil deployment")
	}
	if err := dep.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, errors.New("core: nil radio model")
	}
	tr, err := geom.NewTrajectory(dep.Path(), sinkSpeed, slotLen)
	if err != nil {
		return nil, err
	}
	r := model.Range()
	inst := &Instance{
		T:     tr.SlotCount,
		Tau:   slotLen,
		Gamma: tr.Gamma(r),
		Range: r,
		Traj:  tr,
	}
	inst.Sensors = make([]SensorSlots, len(dep.Sensors))
	for i, s := range dep.Sensors {
		ss := SensorSlots{ID: i, Pos: s.Pos, Budget: s.Budget, Start: -1, End: -1}
		j0, j1, ok := tr.SlotWindow(s.Pos, r)
		if ok {
			ss.Start, ss.End = j0, j1
			ss.Rates = make([]float64, j1-j0+1)
			ss.Powers = make([]float64, j1-j0+1)
			for j := j0; j <= j1; j++ {
				d := tr.PosAtSlotMid(j).Dist(s.Pos)
				l, lok := model.LinkAt(d)
				if !lok {
					// Midpoint drifted out of range despite the window —
					// treat as a dead slot.
					continue
				}
				ss.Rates[j-j0] = l.Rate
				ss.Powers[j-j0] = l.Power
			}
		}
		inst.Sensors[i] = ss
	}
	return inst, nil
}

// Allocation assigns each slot to at most one sensor.
type Allocation struct {
	// SlotOwner[j] is the sensor index transmitting in slot j, or -1.
	SlotOwner []int
	// Data is the total collected volume in bits.
	Data float64
}

// NewAllocation returns an empty allocation for the instance.
func (inst *Instance) NewAllocation() *Allocation {
	so := make([]int, inst.T)
	for j := range so {
		so[j] = -1
	}
	return &Allocation{SlotOwner: so}
}

// Validate checks constraints (1)-(4) of the problem definition and that
// Data matches the assignment; it returns the recomputed data volume.
func (inst *Instance) Validate(a *Allocation) (float64, error) {
	if a == nil {
		return 0, errors.New("core: nil allocation")
	}
	if len(a.SlotOwner) != inst.T {
		return 0, fmt.Errorf("core: allocation covers %d slots, instance has %d", len(a.SlotOwner), inst.T)
	}
	energyUsed := make([]float64, len(inst.Sensors))
	// Fleet instances: absSlotOf[i] tracks sensor i's claimed absolute
	// slots so the cross-sink constraint (≤ 1 sink per absolute slot per
	// sensor) is enforced.
	var absSlotOf map[[2]int]int
	if inst.NumSinks() > 1 {
		absSlotOf = make(map[[2]int]int)
	}
	data := 0.0
	for j, i := range a.SlotOwner {
		if i == -1 {
			continue
		}
		if i < 0 || i >= len(inst.Sensors) {
			return 0, fmt.Errorf("core: slot %d assigned to invalid sensor %d", j, i)
		}
		s := &inst.Sensors[i]
		if !s.Contains(j) {
			return 0, fmt.Errorf("core: slot %d outside every window of sensor %d", j, i)
		}
		if s.RateAt(j) <= 0 {
			return 0, fmt.Errorf("core: slot %d allocated to sensor %d with zero rate", j, i)
		}
		if absSlotOf != nil {
			key := [2]int{i, inst.AbsSlot(j)}
			if prev, dup := absSlotOf[key]; dup {
				return 0, fmt.Errorf("core: sensor %d transmits to two sinks in absolute slot %d (global slots %d and %d)", i, key[1], prev, j)
			}
			absSlotOf[key] = j
		}
		energyUsed[i] += s.PowerAt(j) * inst.Tau
		data += s.RateAt(j) * inst.Tau
	}
	for i, e := range energyUsed {
		if e > inst.Sensors[i].Budget+1e-9 {
			return 0, fmt.Errorf("core: sensor %d spends %v J > budget %v J", i, e, inst.Sensors[i].Budget)
		}
	}
	if err := inst.validateDataCaps(a); err != nil {
		return 0, err
	}
	return data, nil
}

// EnergyUsed returns the per-sensor energy consumption of an allocation in
// Joules (no feasibility checking).
func (inst *Instance) EnergyUsed(a *Allocation) []float64 {
	used := make([]float64, len(inst.Sensors))
	for j, i := range a.SlotOwner {
		if i >= 0 && i < len(inst.Sensors) {
			used[i] += inst.Sensors[i].PowerAt(j) * inst.Tau
		}
	}
	return used
}

// RecomputeData refreshes a.Data from the slot assignment.
func (inst *Instance) RecomputeData(a *Allocation) {
	data := 0.0
	for j, i := range a.SlotOwner {
		if i >= 0 {
			data += inst.Sensors[i].RateAt(j) * inst.Tau
		}
	}
	a.Data = data
}

// ThroughputMb converts bits to megabits, the figures' unit.
func ThroughputMb(bits float64) float64 { return bits / 1e6 }
