package core_test

import (
	"fmt"

	"mobisink/internal/core"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

// Build a small highway instance and run the paper's offline approximation.
func ExampleOfflineAppro() {
	dep, _ := network.Generate(network.Params{
		N: 30, PathLength: 1000, MaxOffset: 100, Seed: 7,
	})
	_ = dep.SetUniformBudgets(2.0) // Joules per tour
	inst, _ := core.BuildInstance(dep, radio.Paper2013(), 5 /* m/s */, 1 /* s */)

	alloc, _ := core.OfflineAppro(inst, core.Options{})
	if _, err := inst.Validate(alloc); err != nil {
		fmt.Println("infeasible:", err)
		return
	}
	fmt.Printf("%d slots, collected %.2f Mb (≤ bound %.2f Mb)\n",
		inst.T, core.ThroughputMb(alloc.Data), core.ThroughputMb(inst.UpperBound()))
	// Output: 200 slots, collected 7.64 Mb (≤ bound 8.02 Mb)
}

// The fixed-power special case is solved exactly by maximum-weight
// matching (paper §VI).
func ExampleOfflineMaxMatch() {
	dep, _ := network.Generate(network.Params{
		N: 30, PathLength: 1000, MaxOffset: 100, Seed: 7,
	})
	_ = dep.SetUniformBudgets(2.0)
	fixed, _ := radio.NewFixedPower(radio.Paper2013(), 0.3)
	inst, _ := core.BuildInstance(dep, fixed, 5, 1)

	exact, _ := core.OfflineMaxMatch(inst)
	appro, _ := core.OfflineAppro(inst, core.Options{})
	fmt.Printf("optimum %.3f Mb, approximation within %.1f%%\n",
		core.ThroughputMb(exact.Data), 100*appro.Data/exact.Data)
	// Output: optimum 6.631 Mb, approximation within 100.0%
}
