package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"mobisink/internal/knapsack"
)

// SetDataCaps attaches finite data queues to the instance: caps[i] is the
// number of bits sensor i has available to upload this tour. The paper
// assumes every sensor "has stored enough sensing data" (unbounded); data
// caps lift that assumption for workload-driven scenarios (see
// internal/traffic). A nil slice restores the unbounded model.
func (inst *Instance) SetDataCaps(caps []float64) error {
	if caps == nil {
		inst.DataCaps = nil
		return nil
	}
	if len(caps) != len(inst.Sensors) {
		return fmt.Errorf("core: %d caps for %d sensors", len(caps), len(inst.Sensors))
	}
	for i, c := range caps {
		if c < 0 || math.IsNaN(c) {
			return fmt.Errorf("core: invalid data cap %v for sensor %d", c, i)
		}
	}
	inst.DataCaps = append([]float64(nil), caps...)
	return nil
}

// DataCapOf returns sensor i's cap, or +Inf when unbounded.
func (inst *Instance) DataCapOf(i int) float64 {
	if inst.DataCaps == nil {
		return math.Inf(1)
	}
	return inst.DataCaps[i]
}

// RateQuantumBits exposes the per-slot data quantum for external capped
// solvers (e.g. the online Sequential scheduler).
func (inst *Instance) RateQuantumBits() float64 { return inst.rateQuantumBits() }

// rateQuantumBits finds a common divisor of all per-slot data volumes
// (r·τ), in bits, for the exact capped DP. The discrete rate table makes
// this a coarse quantum (400·τ bits for the paper's tiers); continuous
// models fall back to a 1-bit quantum, which stays exact because data
// volumes are integral in practice.
func (inst *Instance) rateQuantumBits() float64 {
	g := int64(0)
	fine := false
	accum := func(rates []float64) {
		for _, r := range rates {
			if r <= 0 || fine {
				continue
			}
			v := int64(math.Round(r * inst.Tau))
			if v <= 0 {
				fine = true
				return
			}
			g = gcd64(g, v)
		}
	}
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		accum(s.Rates)
		for wi := range s.More {
			accum(s.More[wi].Rates)
		}
	}
	if fine || g <= 0 {
		return 1
	}
	return float64(g)
}

// OfflineSequential packs sensors one by one in the paper's
// (start slot, end slot) order: each sensor solves an exact knapsack over
// the *still unclaimed* slots of its window — doubly constrained by its
// energy budget and, when data caps are set, by its available data. For
// separable assignment problems this sequential scheme with an exact
// single-bin oracle is a 1/2-approximation, and unlike the local-ratio
// profit decomposition it remains sound under per-sensor data caps
// (the objective of each subproblem *is* the capped quantity).
func OfflineSequential(inst *Instance, opts Options) (*Allocation, error) {
	return OfflineSequentialCtx(context.Background(), inst, opts)
}

// OfflineSequentialCtx is OfflineSequential with cancellation: the context
// is polled per sensor and threaded into each per-sensor knapsack.
func OfflineSequentialCtx(ctx context.Context, inst *Instance, opts Options) (*Allocation, error) {
	if inst == nil {
		return nil, errors.New("core: nil instance")
	}
	order := sensorOrder(inst)
	alloc := inst.NewAllocation()
	quantum := inst.rateQuantumBits()
	solve := opts.SolverCtx(inst)
	fleet := inst.NumSinks() > 1
	var items []knapsack.Item
	var slots []int
	for _, si := range order {
		s := &inst.Sensors[si]
		items = items[:0]
		slots = slots[:0]
		collect := func(start int, rates, powers []float64) {
			for k, r := range rates {
				j := start + k
				if alloc.SlotOwner[j] != -1 {
					continue
				}
				p := powers[k]
				if r <= 0 || p <= 0 {
					continue
				}
				items = append(items, knapsack.Item{Profit: r * inst.Tau, Weight: p * inst.Tau})
				slots = append(slots, j)
			}
		}
		if s.Start >= 0 {
			collect(s.Start, s.Rates, s.Powers)
		}
		for wi := range s.More {
			w := &s.More[wi]
			collect(w.Start, w.Rates, w.Powers)
		}
		if fleet {
			items, slots = reduceByAbsSlot(inst, items, slots)
		}
		var sol knapsack.Solution
		var err error
		if cap := inst.DataCapOf(si); math.IsInf(cap, 1) {
			sol, err = solve(ctx, items, s.Budget)
		} else {
			sol, err = knapsack.MaxProfitUnderCtx(ctx, items, s.Budget, cap, quantum)
		}
		if err != nil {
			return nil, err
		}
		for _, k := range sol.Picked {
			alloc.SlotOwner[slots[k]] = si
		}
	}
	inst.RecomputeData(alloc)
	return alloc, nil
}

// reduceByAbsSlot thins a fleet sensor's candidate slots to at most one
// per absolute time slot — the dominant candidate (max profit, tie min
// weight, tie first seen) — so the group-blind per-sensor knapsack of the
// sequential packer can never produce a cross-sink conflict.
func reduceByAbsSlot(inst *Instance, items []knapsack.Item, slots []int) ([]knapsack.Item, []int) {
	best := make(map[int]int, len(slots)) // absolute slot → index in the kept prefix
	n := 0
	for k := range slots {
		a := inst.AbsSlot(slots[k])
		if bi, ok := best[a]; ok {
			cur, cand := items[bi], items[k]
			if cand.Profit > cur.Profit || (cand.Profit == cur.Profit && cand.Weight < cur.Weight) {
				items[bi], slots[bi] = cand, slots[k]
			}
			continue
		}
		items[n], slots[n] = items[k], slots[k]
		best[a] = n
		n++
	}
	return items[:n], slots[:n]
}

// validateDataCaps checks the per-sensor data constraint of an allocation.
func (inst *Instance) validateDataCaps(a *Allocation) error {
	if inst.DataCaps == nil {
		return nil
	}
	per := make([]float64, len(inst.Sensors))
	for j, i := range a.SlotOwner {
		if i >= 0 && i < len(per) {
			per[i] += inst.Sensors[i].RateAt(j) * inst.Tau
		}
	}
	for i, v := range per {
		if v > inst.DataCaps[i]+1e-6 {
			return fmt.Errorf("core: sensor %d uploads %v bits > data cap %v", i, v, inst.DataCaps[i])
		}
	}
	return nil
}
