package mac

import (
	"math"
	"math/rand"
	"testing"
)

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SlottedAloha(-1, 8, rng); err == nil {
		t.Error("expected negative-n error")
	}
	if _, err := SlottedAloha(5, 0, rng); err == nil {
		t.Error("expected window error")
	}
	if _, err := SlottedAloha(5, 8, nil); err == nil {
		t.Error("expected rng error")
	}
	if _, err := CSMAWindow(5, 0, rng); err == nil {
		t.Error("expected window error")
	}
	if _, err := ExpectedRegistrations(5, 8, 0, 1); err == nil {
		t.Error("expected trials error")
	}
}

func TestAlohaMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, w, trials = 10, 16, 20000
	succ := 0
	for i := 0; i < trials; i++ {
		ok, err := SlottedAloha(n, w, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range ok {
			if s {
				succ++
			}
		}
	}
	got := float64(succ) / float64(trials*n)
	want := AlohaSuccessProb(n, w)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical %v vs analytic %v", got, want)
	}
}

func TestAlohaSuccessProbEdge(t *testing.T) {
	if AlohaSuccessProb(1, 8) != 1 {
		t.Error("single contender always succeeds")
	}
	if AlohaSuccessProb(0, 8) != 0 || AlohaSuccessProb(5, 0) != 0 {
		t.Error("degenerate inputs must give 0")
	}
	// Larger window → higher success.
	if AlohaSuccessProb(10, 32) <= AlohaSuccessProb(10, 8) {
		t.Error("success must grow with window")
	}
}

func TestCSMABeatsAlohaWhenSparse(t *testing.T) {
	// With a generous window, retrying colliders must register more
	// contenders than one-shot slotted ALOHA.
	rng := rand.New(rand.NewSource(3))
	const n, w, trials = 8, 64, 5000
	alohaTotal, csmaTotal := 0, 0
	for i := 0; i < trials; i++ {
		a, _ := SlottedAloha(n, w, rng)
		c, _ := CSMAWindow(n, w, rng)
		for k := 0; k < n; k++ {
			if a[k] {
				alohaTotal++
			}
			if c[k] {
				csmaTotal++
			}
		}
	}
	if csmaTotal <= alohaTotal {
		t.Errorf("sparse regime: CSMA %d not above ALOHA %d", csmaTotal, alohaTotal)
	}
}

func TestCSMAWindowBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// n = 0: empty mask.
	ok, err := CSMAWindow(0, 8, rng)
	if err != nil || len(ok) != 0 {
		t.Fatalf("empty contention: %v %v", ok, err)
	}
	// One contender always succeeds.
	for i := 0; i < 50; i++ {
		ok, _ := CSMAWindow(1, 4, rng)
		if !ok[0] {
			t.Fatal("single contender must register")
		}
	}
	// Huge window: nearly everyone succeeds.
	succ := 0
	const n = 10
	for i := 0; i < 200; i++ {
		ok, _ := CSMAWindow(n, 4096, rng)
		for _, s := range ok {
			if s {
				succ++
			}
		}
	}
	if frac := float64(succ) / (200 * n); frac < 0.98 {
		t.Errorf("large-window success fraction %v", frac)
	}
}

func TestExpectedRegistrationsMonotone(t *testing.T) {
	small, err := ExpectedRegistrations(12, 4, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ExpectedRegistrations(12, 64, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("registrations must grow with window: %v vs %v", small, large)
	}
	if large > 12 {
		t.Errorf("cannot register more than n: %v", large)
	}
}
