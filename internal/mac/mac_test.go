package mac

import (
	"math"
	"math/rand"
	"testing"
)

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SlottedAloha(-1, 8, rng); err == nil {
		t.Error("expected negative-n error")
	}
	if _, err := SlottedAloha(5, 0, rng); err == nil {
		t.Error("expected window error")
	}
	if _, err := SlottedAloha(5, 8, nil); err == nil {
		t.Error("expected rng error")
	}
	if _, err := CSMAWindow(5, 0, rng); err == nil {
		t.Error("expected window error")
	}
	if _, err := ExpectedRegistrations(5, 8, 0, 1); err == nil {
		t.Error("expected trials error")
	}
}

func TestAlohaMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, w, trials = 10, 16, 20000
	succ := 0
	for i := 0; i < trials; i++ {
		ok, err := SlottedAloha(n, w, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range ok {
			if s {
				succ++
			}
		}
	}
	got := float64(succ) / float64(trials*n)
	want := AlohaSuccessProb(n, w)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical %v vs analytic %v", got, want)
	}
}

func TestAlohaSuccessProbEdge(t *testing.T) {
	if AlohaSuccessProb(1, 8) != 1 {
		t.Error("single contender always succeeds")
	}
	if AlohaSuccessProb(0, 8) != 0 || AlohaSuccessProb(5, 0) != 0 {
		t.Error("degenerate inputs must give 0")
	}
	// Larger window → higher success.
	if AlohaSuccessProb(10, 32) <= AlohaSuccessProb(10, 8) {
		t.Error("success must grow with window")
	}
}

func TestCSMABeatsAlohaWhenSparse(t *testing.T) {
	// With a generous window, retrying colliders must register more
	// contenders than one-shot slotted ALOHA.
	rng := rand.New(rand.NewSource(3))
	const n, w, trials = 8, 64, 5000
	alohaTotal, csmaTotal := 0, 0
	for i := 0; i < trials; i++ {
		a, _ := SlottedAloha(n, w, rng)
		c, _ := CSMAWindow(n, w, rng)
		for k := 0; k < n; k++ {
			if a[k] {
				alohaTotal++
			}
			if c[k] {
				csmaTotal++
			}
		}
	}
	if csmaTotal <= alohaTotal {
		t.Errorf("sparse regime: CSMA %d not above ALOHA %d", csmaTotal, alohaTotal)
	}
}

func TestCSMAWindowBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// n = 0: empty mask.
	ok, err := CSMAWindow(0, 8, rng)
	if err != nil || len(ok) != 0 {
		t.Fatalf("empty contention: %v %v", ok, err)
	}
	// One contender always succeeds.
	for i := 0; i < 50; i++ {
		ok, _ := CSMAWindow(1, 4, rng)
		if !ok[0] {
			t.Fatal("single contender must register")
		}
	}
	// Huge window: nearly everyone succeeds.
	succ := 0
	const n = 10
	for i := 0; i < 200; i++ {
		ok, _ := CSMAWindow(n, 4096, rng)
		for _, s := range ok {
			if s {
				succ++
			}
		}
	}
	if frac := float64(succ) / (200 * n); frac < 0.98 {
		t.Errorf("large-window success fraction %v", frac)
	}
}

func TestExpectedRegistrationsMonotone(t *testing.T) {
	small, err := ExpectedRegistrations(12, 4, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ExpectedRegistrations(12, 64, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("registrations must grow with window: %v vs %v", small, large)
	}
	if large > 12 {
		t.Errorf("cannot register more than n: %v", large)
	}
}

// Satellite coverage: collision/backoff edge cases.

// All Acks collide in every slot: with a single-slot window and multiple
// contenders, everyone transmits in slot 0, collides, and has no
// remaining slots to retry into — the whole interval is lost.
func TestCSMAAllAcksCollide(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 8} {
		ok, err := CSMAWindow(n, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range ok {
			if s {
				t.Errorf("n=%d: contender %d succeeded in an all-collide window", n, i)
			}
		}
	}
}

// Single-sensor contention: one contender never collides, so it succeeds
// for every window size and every seed.
func TestCSMASingleSensor(t *testing.T) {
	for _, w := range []int{1, 2, 16, 256} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			ok, err := CSMAWindow(1, w, rng)
			if err != nil {
				t.Fatal(err)
			}
			if len(ok) != 1 || !ok[0] {
				t.Fatalf("w=%d seed=%d: lone contender failed", w, seed)
			}
			aloha, err := SlottedAloha(1, w, rng)
			if err != nil {
				t.Fatal(err)
			}
			if !aloha[0] {
				t.Fatalf("w=%d seed=%d: lone ALOHA contender failed", w, seed)
			}
		}
	}
}

// Zero-slot registration windows are rejected, not silently emptied, for
// every contention model; zero contenders in a valid window succeed
// vacuously.
func TestCSMAZeroSlotWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := CSMAWindow(3, 0, rng); err == nil {
		t.Error("CSMAWindow accepted w=0")
	}
	if _, err := SlottedAloha(3, 0, rng); err == nil {
		t.Error("SlottedAloha accepted w=0")
	}
	if _, err := CSMAWindowLossy(3, 0, rng, func(int, int) bool { return false }); err == nil {
		t.Error("CSMAWindowLossy accepted w=0")
	}
	if _, err := CSMAWindow(3, -2, rng); err == nil {
		t.Error("negative window accepted")
	}
	ok, err := CSMAWindow(0, 4, rng)
	if err != nil || len(ok) != 0 {
		t.Errorf("zero contenders: ok=%v err=%v", ok, err)
	}
}

// The lossless erasure channel matches plain CSMA exactly (same rng
// stream consumption on success paths), and a fully-lossy channel
// registers nobody.
func TestCSMAWindowLossy(t *testing.T) {
	a, err := CSMAWindowLossy(10, 32, rand.New(rand.NewSource(5)), func(int, int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	b, err := CSMAWindow(10, 32, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lossless erasure diverges from plain CSMA at %d", i)
		}
	}
	all, err := CSMAWindowLossy(10, 32, rand.New(rand.NewSource(5)), func(int, int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range all {
		if s {
			t.Errorf("contender %d succeeded on a fully-lossy channel", i)
		}
	}
	// nil lossy degrades to plain CSMA.
	c, err := CSMAWindowLossy(10, 32, rand.New(rand.NewSource(5)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if c[i] != b[i] {
			t.Fatalf("nil-lossy diverges from plain CSMA at %d", i)
		}
	}
	// Partial loss: attempts are per contender; an erasure on the first
	// attempt can be recovered by a retry inside the window.
	firstLoss := func(_, attempt int) bool { return attempt == 0 }
	retried, err := CSMAWindowLossy(1, 64, rand.New(rand.NewSource(5)), firstLoss)
	if err != nil {
		t.Fatal(err)
	}
	if !retried[0] {
		t.Error("first-attempt erasure not recovered by in-window retry")
	}
}
