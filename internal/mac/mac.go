// Package mac models contention during the online protocol's registration
// phase. The paper assumes every in-range sensor's Ack reaches the sink
// before the registration timer expires; in a real CSMA network
// simultaneous Acks collide. This package provides slotted contention
// models to quantify how sensitive the distributed framework is to that
// assumption (it is the paper's only unmodelled MAC interaction — data
// slots are collision-free by construction of the schedule).
package mac

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// SlottedAloha simulates one registration window of w slots with n
// contenders, each transmitting in one uniformly chosen slot: a contender
// succeeds iff it is alone in its slot. Returns the per-contender success
// mask.
func SlottedAloha(n, w int, rng *rand.Rand) ([]bool, error) {
	if err := check(n, w, rng); err != nil {
		return nil, err
	}
	choice := make([]int, n)
	count := make([]int, w)
	for i := range choice {
		choice[i] = rng.Intn(w)
		count[choice[i]]++
	}
	ok := make([]bool, n)
	for i, c := range choice {
		ok[i] = count[c] == 1
	}
	return ok, nil
}

// AlohaSuccessProb is the analytic per-contender success probability of
// SlottedAloha: (1 − 1/w)^(n−1).
func AlohaSuccessProb(n, w int) float64 {
	if n <= 0 || w <= 0 {
		return 0
	}
	return math.Pow(1-1/float64(w), float64(n-1))
}

// CSMAWindow simulates carrier-sense contention with retry over a window
// of w slots: every contender draws a backoff slot; the window is scanned
// in order, and in each slot the contenders whose backoff expired transmit.
// A sole transmitter succeeds and leaves; colliders detect the collision
// and re-draw a backoff uniformly in the remaining window (lost only when
// no slots remain). Retrying lifts CSMA above one-shot slotted ALOHA when
// the window is generous (sparse regime); in a saturated window the
// retries crowd the remaining slots and can do worse — the classic
// congestion-collapse behaviour.
func CSMAWindow(n, w int, rng *rand.Rand) ([]bool, error) {
	if err := check(n, w, rng); err != nil {
		return nil, err
	}
	backoff := make([]int, n)
	for i := range backoff {
		backoff[i] = rng.Intn(w)
	}
	ok := make([]bool, n)
	lost := make([]bool, n)
	for slot := 0; slot < w; slot++ {
		var txs []int
		for i, b := range backoff {
			if b == slot && !ok[i] && !lost[i] {
				txs = append(txs, i)
			}
		}
		switch {
		case len(txs) == 1:
			ok[txs[0]] = true
		case len(txs) > 1:
			for _, i := range txs {
				if slot+1 >= w {
					lost[i] = true
					continue
				}
				backoff[i] = slot + 1 + rng.Intn(w-slot-1)
			}
		}
	}
	return ok, nil
}

// CSMAWindowLossy is CSMAWindow over an erasure channel: even a
// collision-free transmission is lost when lossy(contender, attempt)
// reports true, in which case the contender behaves like a collider —
// it detects the missing acknowledgement and re-draws a backoff in the
// remaining window (lost for good when no slots remain). attempt counts
// the contender's transmissions so far (0 for the first), letting a
// deterministic fault plan key each erasure independently. A nil lossy
// degrades to plain CSMAWindow.
func CSMAWindowLossy(n, w int, rng *rand.Rand, lossy func(contender, attempt int) bool) ([]bool, error) {
	if lossy == nil {
		return CSMAWindow(n, w, rng)
	}
	if err := check(n, w, rng); err != nil {
		return nil, err
	}
	backoff := make([]int, n)
	attempts := make([]int, n)
	for i := range backoff {
		backoff[i] = rng.Intn(w)
	}
	ok := make([]bool, n)
	lost := make([]bool, n)
	for slot := 0; slot < w; slot++ {
		var txs []int
		for i, b := range backoff {
			if b == slot && !ok[i] && !lost[i] {
				txs = append(txs, i)
			}
		}
		for _, i := range txs {
			delivered := len(txs) == 1 && !lossy(i, attempts[i])
			attempts[i]++
			if delivered {
				ok[i] = true
				continue
			}
			if slot+1 >= w {
				lost[i] = true
				continue
			}
			backoff[i] = slot + 1 + rng.Intn(w-slot-1)
		}
	}
	return ok, nil
}

// ExpectedRegistrations estimates the mean number of successful CSMA
// registrations by Monte-Carlo (deterministic per seed).
func ExpectedRegistrations(n, w, trials int, seed int64) (float64, error) {
	if trials <= 0 {
		return 0, errors.New("mac: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for t := 0; t < trials; t++ {
		ok, err := CSMAWindow(n, w, rng)
		if err != nil {
			return 0, err
		}
		for _, s := range ok {
			if s {
				total++
			}
		}
	}
	return float64(total) / float64(trials), nil
}

func check(n, w int, rng *rand.Rand) error {
	if n < 0 {
		return fmt.Errorf("mac: negative contender count %d", n)
	}
	if w <= 0 {
		return fmt.Errorf("mac: window must be positive, got %d", w)
	}
	if rng == nil {
		return errors.New("mac: nil rng")
	}
	return nil
}
