package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		Begin{Sensors: 3, T: 12, Gamma: 4, Fingerprint: 0xdeadbeefcafef00d},
		Commit{
			Interval:   0,
			Registered: []int{0, 2},
			Pairs:      []Assign{{Slot: 0, Sensor: 2}, {Slot: 1, Sensor: 0}, {Slot: 3, Sensor: 2}},
			Debits: []Debit{
				{Sensor: 0, Energy: 0.125, Data: 1.5},
				{Sensor: 2, Energy: 0.7, Data: math.Inf(1)},
			},
		},
		Commit{Interval: 1}, // empty interval: no registrations
		End{},
	}
}

func encodeAll(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		var err error
		buf, err = AppendRecord(buf, r)
		if err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
	}
	return buf
}

func TestRecordRoundTrip(t *testing.T) {
	recs := sampleRecords()
	buf := encodeAll(t, recs)
	off := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d: got %+v, want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d bytes", off, len(buf))
	}
	// Debit bit patterns survive exactly (the replay parity keystone).
	c := recs[1].(Commit)
	got, _, _ := DecodeRecord(buf[lenOf(t, recs[0]):])
	for i, d := range got.(Commit).Debits {
		if math.Float64bits(d.Energy) != math.Float64bits(c.Debits[i].Energy) ||
			math.Float64bits(d.Data) != math.Float64bits(c.Debits[i].Data) {
			t.Errorf("debit %d bits changed", i)
		}
	}
}

func lenOf(t *testing.T, r Record) int {
	t.Helper()
	b, err := AppendRecord(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	return len(b)
}

func TestAppendRejectsBadFields(t *testing.T) {
	for i, r := range []Record{
		Begin{Sensors: -1},
		Begin{T: -5},
		Commit{Interval: -1},
		Commit{Interval: 0, Registered: []int{-2}},
		Commit{Interval: 0, Pairs: []Assign{{Slot: -1, Sensor: 0}}},
		Commit{Interval: 0, Pairs: []Assign{{Slot: 0, Sensor: -1}}},
		Commit{Interval: 0, Debits: []Debit{{Sensor: 0, Energy: -1}}},
		Commit{Interval: 0, Debits: []Debit{{Sensor: 0, Energy: math.NaN()}}},
		Commit{Interval: 0, Debits: []Debit{{Sensor: 0, Data: -0.5}}},
	} {
		if _, err := AppendRecord(nil, r); !errors.Is(err, ErrBadField) {
			t.Errorf("case %d: err = %v, want ErrBadField", i, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := AppendRecord(nil, Begin{Sensors: 1, T: 2, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at every prefix length.
	for n := 0; n < len(good); n++ {
		if _, _, err := DecodeRecord(good[:n]); !errors.Is(err, ErrTruncated) {
			t.Errorf("prefix %d: err = %v, want ErrTruncated", n, err)
		}
	}
	// Corrupt checksum.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("checksum: err = %v", err)
	}
	// Oversized length prefix.
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, MaxRecord+1)
	if _, _, err := DecodeRecord(huge); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("oversize: err = %v", err)
	}
	// Unknown kind (checksum valid).
	payload := []byte{99}
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown kind: err = %v", err)
	}
	// Commit whose counts promise more bytes than the payload holds.
	payload = []byte{byte(KindCommit)}
	payload = appendI32(payload, 0)
	payload = appendI32(payload, 1000) // 1000 registrations, no bodies
	payload = appendI32(payload, 0)
	payload = appendI32(payload, 0)
	frame = binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrTruncated) {
		t.Errorf("bad counts: err = %v", err)
	}
	// Trailing garbage inside a checksummed payload.
	payload = append([]byte{byte(KindEnd)}, 0)
	frame = binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrTrailing) {
		t.Errorf("trailing: err = %v", err)
	}
}

func TestScanStopsAtTornTail(t *testing.T) {
	recs := sampleRecords()
	buf := encodeAll(t, recs)

	// Clean log: everything replays.
	got, valid, err := Scan(bytes.NewReader(buf))
	if err != nil || int(valid) != len(buf) || !reflect.DeepEqual(got, recs) {
		t.Fatalf("clean scan: %d recs, valid=%d, err=%v", len(got), valid, err)
	}

	// Torn tail: every truncation point replays the longest whole prefix.
	bounds := []int{}
	off := 0
	for _, r := range recs {
		off += lenOf(t, r)
		bounds = append(bounds, off)
	}
	for cut := 0; cut < len(buf); cut++ {
		wantRecs := 0
		wantValid := 0
		for i, b := range bounds {
			if cut >= b {
				wantRecs = i + 1
				wantValid = b
			}
		}
		got, valid, err := Scan(bytes.NewReader(buf[:cut]))
		if err != nil {
			t.Fatalf("cut %d: err %v", cut, err)
		}
		if len(got) != wantRecs || int(valid) != wantValid {
			t.Fatalf("cut %d: %d recs valid=%d, want %d recs valid=%d",
				cut, len(got), valid, wantRecs, wantValid)
		}
	}

	// Corrupt byte mid-tail: replay stops at the last valid record.
	bad := append([]byte(nil), buf...)
	bad[bounds[1]+4] ^= 0x01 // flip a bit inside record 2
	got, valid, err = Scan(bytes.NewReader(bad))
	if err != nil || len(got) != 2 || int(valid) != bounds[1] {
		t.Fatalf("corrupt scan: %d recs, valid=%d, err=%v", len(got), valid, err)
	}
}

func TestOpenAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tour.wal")
	recs := sampleRecords()

	l, replayed, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(replayed))
	}
	l.NoSync = true
	for _, r := range recs[:2] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: first two records replay; append the rest.
	l, replayed, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, recs[:2]) {
		t.Fatalf("replayed %+v", replayed)
	}
	l.NoSync = true
	for _, r := range recs[2:] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-append: a torn half-record on the tail.
	if f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0); err == nil {
		f.Write([]byte{0, 0, 0, 40, 1, 2, 3})
		f.Close()
	}
	l, replayed, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, recs) {
		t.Fatalf("post-tear replay %+v", replayed)
	}
	// The tear was truncated: the file ends exactly at the valid prefix,
	// so an append then a reopen replays cleanly.
	l.NoSync = true
	if err := l.Append(Commit{Interval: 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, replayed, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(replayed) != len(recs)+1 || !reflect.DeepEqual(replayed[len(recs)], Commit{Interval: 2}) {
		t.Fatalf("final replay %d records", len(replayed))
	}
}

func TestOpenBadPath(t *testing.T) {
	if _, _, err := Open(filepath.Join(t.TempDir(), "no", "such", "dir", "x.wal")); err == nil {
		t.Error("open into missing directory succeeded")
	}
}
