// Package wal is the sink's durable interval journal: an append-only,
// checksummed, length-prefixed record log that survives a sink crash and
// lets a restarted process resume the tour at the first uncommitted
// interval with every committed interval's assignments and debits intact.
//
// The record discipline deliberately mirrors internal/wire's framing:
// big-endian fixed-width fields, strict exact-length decoding, typed
// errors. Each record is
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// and the payload starts with a one-byte record kind. Replay is tolerant
// of a torn tail — a crash mid-append leaves a truncated or corrupt last
// record, and Scan stops at the last valid one; Open then truncates the
// file there so the next append starts from a clean prefix. Anything
// else (bad checksum mid-file, unknown kind, trailing garbage inside a
// payload) is corruption and fails replay loudly.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// MaxRecord bounds one record's payload so a corrupt length prefix
// cannot drive an allocation of gigabytes. A Commit for an interval
// with thousands of registered sensors fits comfortably.
const MaxRecord = 1 << 20

// Typed journal errors, mirroring internal/wire's decode errors.
var (
	ErrRecordTooLarge = errors.New("wal: record exceeds size bound")
	ErrTruncated      = errors.New("wal: truncated record")
	ErrChecksum       = errors.New("wal: payload checksum mismatch")
	ErrTrailing       = errors.New("wal: trailing bytes after payload fields")
	ErrUnknownKind    = errors.New("wal: unknown record kind")
	ErrBadField       = errors.New("wal: field out of range")
)

// Kind tags a journal record's payload shape.
type Kind uint8

// Record kinds. Values are on-disk format; append only.
const (
	// KindBegin opens a journal: tour shape plus an instance fingerprint
	// so replay can refuse a journal written for a different deployment.
	KindBegin Kind = iota + 1
	// KindCommit seals one interval: registrations, slot assignments,
	// and end-of-interval budget debits.
	KindCommit
	// KindEnd marks a completed tour; replay after End refuses to resume.
	KindEnd
)

// Record is one replayable journal entry.
type Record interface {
	Kind() Kind
}

// Begin is the journal header record.
type Begin struct {
	Sensors     int
	T           int
	Gamma       int
	Fingerprint uint64
}

// Assign is one (slot, sensor) scheduling decision inside a Commit.
type Assign struct {
	Slot   int
	Sensor int
}

// Debit is one sensor's end-of-interval ledger movement: the energy
// spent and the data drained, exactly as the sink computed them (bit
// patterns preserved, so replay reproduces residuals bit-identically).
type Debit struct {
	Sensor int
	Energy float64
	Data   float64
}

// Commit seals one interval of the tour.
type Commit struct {
	Interval   int
	Registered []int
	Pairs      []Assign
	Debits     []Debit
}

// End marks a completed tour.
type End struct{}

// Kind implementations.
func (Begin) Kind() Kind  { return KindBegin }
func (Commit) Kind() Kind { return KindCommit }
func (End) Kind() Kind    { return KindEnd }

const (
	beginLen  = 1 + 4 + 4 + 4 + 8 // kind, sensors, T, gamma, fingerprint
	endLen    = 1
	commitMin = 1 + 4 + 4 + 4 + 4 // kind, interval, three counts
	assignLen = 4 + 4
	debitLen  = 4 + 8 + 8
)

// AppendRecord encodes the record (length prefix, checksum, payload)
// onto buf and returns the extended slice.
func AppendRecord(buf []byte, r Record) ([]byte, error) {
	payload, err := appendPayload(nil, r)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxRecord {
		return nil, ErrRecordTooLarge
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...), nil
}

func appendPayload(p []byte, r Record) ([]byte, error) {
	switch v := r.(type) {
	case Begin:
		if v.Sensors < 0 || v.T < 0 || v.Gamma < 0 ||
			!fitsI32(v.Sensors) || !fitsI32(v.T) || !fitsI32(v.Gamma) {
			return nil, ErrBadField
		}
		p = append(p, byte(KindBegin))
		p = appendI32(p, v.Sensors)
		p = appendI32(p, v.T)
		p = appendI32(p, v.Gamma)
		return binary.BigEndian.AppendUint64(p, v.Fingerprint), nil
	case Commit:
		if v.Interval < 0 || !fitsI32(v.Interval) {
			return nil, ErrBadField
		}
		p = append(p, byte(KindCommit))
		p = appendI32(p, v.Interval)
		p = appendI32(p, len(v.Registered))
		p = appendI32(p, len(v.Pairs))
		p = appendI32(p, len(v.Debits))
		for _, id := range v.Registered {
			if id < 0 || !fitsI32(id) {
				return nil, ErrBadField
			}
			p = appendI32(p, id)
		}
		for _, a := range v.Pairs {
			if a.Slot < 0 || a.Sensor < 0 || !fitsI32(a.Slot) || !fitsI32(a.Sensor) {
				return nil, ErrBadField
			}
			p = appendI32(p, a.Slot)
			p = appendI32(p, a.Sensor)
		}
		for _, d := range v.Debits {
			if d.Sensor < 0 || !fitsI32(d.Sensor) ||
				math.IsNaN(d.Energy) || d.Energy < 0 ||
				math.IsNaN(d.Data) || d.Data < 0 {
				return nil, ErrBadField
			}
			p = appendI32(p, d.Sensor)
			p = binary.BigEndian.AppendUint64(p, math.Float64bits(d.Energy))
			p = binary.BigEndian.AppendUint64(p, math.Float64bits(d.Data))
		}
		return p, nil
	case End:
		return append(p, byte(KindEnd)), nil
	default:
		return nil, fmt.Errorf("wal: cannot encode %T", r)
	}
}

// Commit's encoder writes three counts then the bodies in order; the
// decoder validates counts against the remaining byte budget BEFORE
// allocating, so a corrupt count cannot drive an over-allocation.
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return nil, ErrTruncated
	}
	switch Kind(p[0]) {
	case KindBegin:
		if len(p) != beginLen {
			return nil, lenErr(len(p), beginLen)
		}
		b := Begin{
			Sensors:     getI32(p[1:]),
			T:           getI32(p[5:]),
			Gamma:       getI32(p[9:]),
			Fingerprint: binary.BigEndian.Uint64(p[13:]),
		}
		if b.Sensors < 0 || b.T < 0 || b.Gamma < 0 {
			return nil, ErrBadField
		}
		return b, nil
	case KindCommit:
		if len(p) < commitMin {
			return nil, ErrTruncated
		}
		c := Commit{Interval: getI32(p[1:])}
		if c.Interval < 0 {
			return nil, ErrBadField
		}
		nReg, nPair, nDeb := getI32(p[5:]), getI32(p[9:]), getI32(p[13:])
		if nReg < 0 || nPair < 0 || nDeb < 0 {
			return nil, ErrBadField
		}
		want := commitMin + 4*nReg + assignLen*nPair + debitLen*nDeb
		if len(p) < commitMin+4*nReg { // guard the multiply paths stepwise
			return nil, ErrTruncated
		}
		if len(p) != want {
			return nil, lenErr(len(p), want)
		}
		off := commitMin
		if nReg > 0 {
			c.Registered = make([]int, nReg)
			for i := range c.Registered {
				id := getI32(p[off:])
				if id < 0 {
					return nil, ErrBadField
				}
				c.Registered[i] = id
				off += 4
			}
		}
		if nPair > 0 {
			c.Pairs = make([]Assign, nPair)
			for i := range c.Pairs {
				a := Assign{Slot: getI32(p[off:]), Sensor: getI32(p[off+4:])}
				if a.Slot < 0 || a.Sensor < 0 {
					return nil, ErrBadField
				}
				c.Pairs[i] = a
				off += assignLen
			}
		}
		if nDeb > 0 {
			c.Debits = make([]Debit, nDeb)
			for i := range c.Debits {
				d := Debit{
					Sensor: getI32(p[off:]),
					Energy: math.Float64frombits(binary.BigEndian.Uint64(p[off+4:])),
					Data:   math.Float64frombits(binary.BigEndian.Uint64(p[off+12:])),
				}
				if d.Sensor < 0 || math.IsNaN(d.Energy) || d.Energy < 0 ||
					math.IsNaN(d.Data) || d.Data < 0 {
					return nil, ErrBadField
				}
				c.Debits[i] = d
				off += debitLen
			}
		}
		return c, nil
	case KindEnd:
		if len(p) != endLen {
			return nil, lenErr(len(p), endLen)
		}
		return End{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, p[0])
	}
}

func lenErr(got, want int) error {
	if got < want {
		return ErrTruncated
	}
	return ErrTrailing
}

// DecodeRecord decodes one record from the front of buf, returning the
// record and the number of bytes consumed.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < 8 {
		return nil, 0, ErrTruncated
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n > MaxRecord {
		return nil, 0, ErrRecordTooLarge
	}
	if len(buf) < 8+n {
		return nil, 0, ErrTruncated
	}
	payload := buf[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(buf[4:]) {
		return nil, 0, ErrChecksum
	}
	r, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return r, 8 + n, nil
}

// Scan replays every record from r, stopping cleanly at the last valid
// one. It returns the decoded records, the byte length of the valid
// prefix, and a nil error for both a clean EOF and a torn tail (the
// torn bytes are simply not part of the prefix). Only a read error from
// the underlying reader is returned.
func Scan(r io.Reader) ([]Record, int64, error) {
	var (
		recs  []Record
		valid int64
		head  [8]byte
	)
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, valid, nil
			}
			return recs, valid, err
		}
		n := int(binary.BigEndian.Uint32(head[:]))
		if n > MaxRecord {
			return recs, valid, nil // corrupt length = torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, valid, nil
			}
			return recs, valid, err
		}
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(head[4:]) {
			return recs, valid, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, valid, nil
		}
		recs = append(recs, rec)
		valid += int64(8 + n)
		recordsReplayed.Inc()
	}
}

// Log is an open journal positioned for appending.
type Log struct {
	f *os.File
	// NoSync skips the per-append fsync. Tests use it; production sinks
	// should leave it false so a committed interval survives power loss.
	NoSync bool
	buf    []byte
}

// Open opens (creating if absent) the journal at path, replays its
// valid prefix, truncates any torn tail, and returns the log positioned
// for appending plus the replayed records.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, valid, err := Scan(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: replay %s: %w", path, err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{f: f}, recs, nil
}

// Append encodes the record, writes it, and (unless NoSync) fsyncs so
// the commit is durable before the caller proceeds.
func (l *Log) Append(r Record) error {
	buf, err := AppendRecord(l.buf[:0], r)
	if err != nil {
		return err
	}
	l.buf = buf[:0]
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	if !l.NoSync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	recordsWritten.Inc()
	return nil
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }

// Binary helpers, mirroring internal/wire.
func appendI32(p []byte, v int) []byte {
	return binary.BigEndian.AppendUint32(p, uint32(int32(v)))
}

func getI32(p []byte) int { return int(int32(binary.BigEndian.Uint32(p))) }

func fitsI32(v int) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }
