package wal

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzJournalReplay drives arbitrary bytes through the tolerant replay
// path and asserts the decoder's safety contract: no panic, no
// over-read, the valid prefix re-scans to the same records, and every
// replayed record re-encodes and re-decodes to itself.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	for _, r := range []Record{
		Begin{Sensors: 2, T: 8, Gamma: 2, Fingerprint: 42},
		Commit{Interval: 0, Registered: []int{0, 1},
			Pairs:  []Assign{{Slot: 0, Sensor: 1}},
			Debits: []Debit{{Sensor: 1, Energy: 0.5, Data: 2}}},
		Commit{Interval: 3},
		End{},
	} {
		buf, err := AppendRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-2])              // torn tail
		f.Add(append(buf, buf...))           // two records
		f.Add(append(buf, 0x7f, 0x00, 0xff)) // trailing garbage
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := Scan(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("Scan on in-memory reader returned error: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		// The valid prefix is stable: re-scanning exactly it yields the
		// same records and consumes all of it.
		again, validAgain, err := Scan(bytes.NewReader(data[:valid]))
		if err != nil || validAgain != valid || !reflect.DeepEqual(again, recs) {
			t.Fatalf("re-scan diverged: %d vs %d records, valid %d vs %d, err=%v",
				len(again), len(recs), validAgain, valid, err)
		}
		// Round-trip: every replayed record survives encode→decode.
		for i, r := range recs {
			buf, err := AppendRecord(nil, r)
			if err != nil {
				t.Fatalf("record %d (%+v) failed re-encode: %v", i, r, err)
			}
			back, n, err := DecodeRecord(buf)
			if err != nil || n != len(buf) || !reflect.DeepEqual(back, r) {
				t.Fatalf("record %d round-trip: %+v vs %+v (n=%d err=%v)", i, back, r, n, err)
			}
		}
	})
}
