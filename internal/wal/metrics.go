package wal

import "mobisink/internal/metrics"

// Journal instrumentation, on the process-wide default registry so
// cmd/sinkd's stats dump and tests share one view.
var (
	recordsWritten = metrics.Default().Counter(
		"wal_records_written_total",
		"Journal records appended (and fsynced unless NoSync).")
	recordsReplayed = metrics.Default().Counter(
		"wal_records_replayed_total",
		"Journal records decoded during replay scans.")
)
