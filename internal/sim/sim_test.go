package sim

import (
	"math"
	"testing"
)

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(1, "x", nil); err == nil {
		t.Error("expected nil-event error")
	}
	if err := e.Schedule(math.NaN(), "x", func(float64) {}); err == nil {
		t.Error("expected NaN error")
	}
	if err := e.Schedule(math.Inf(1), "x", func(float64) {}); err == nil {
		t.Error("expected Inf error")
	}
	if err := e.After(-1, "x", func(float64) {}); err == nil {
		t.Error("expected negative-delay error")
	}
}

func TestTimeOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	must(t, e.Schedule(3, "c", func(float64) { order = append(order, 3) }))
	must(t, e.Schedule(1, "a", func(float64) { order = append(order, 1) }))
	must(t, e.Schedule(2, "b", func(float64) { order = append(order, 2) }))
	n := e.Run()
	if n != 3 || e.Executed() != 3 {
		t.Fatalf("executed %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine()
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		must(t, e.Schedule(5, name, func(float64) { order = append(order, name) }))
	}
	e.Run()
	if order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("simultaneous events not FIFO: %v", order)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	hits := 0
	var chain func(now float64)
	chain = func(now float64) {
		hits++
		if hits < 5 {
			must(t, e.After(1, "chain", chain))
		}
	}
	must(t, e.Schedule(0, "chain", chain))
	e.Run()
	if hits != 5 {
		t.Fatalf("hits = %d", hits)
	}
	if e.Now() != 4 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	e := NewEngine()
	var innerErr error
	must(t, e.Schedule(10, "x", func(now float64) {
		innerErr = e.Schedule(5, "past", func(float64) {})
	}))
	e.Run()
	if innerErr == nil {
		t.Error("expected past-scheduling error")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	must(t, e.Schedule(1, "a", func(float64) { ran++; e.Stop() }))
	must(t, e.Schedule(2, "b", func(float64) { ran++ }))
	if n := e.Run(); n != 1 || ran != 1 {
		t.Fatalf("Run after Stop executed %d events", n)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// Run can resume.
	if n := e.Run(); n != 1 || ran != 2 {
		t.Fatalf("resume executed %d", n)
	}
}

func TestCounters(t *testing.T) {
	e := NewEngine()
	e.Count("probe", 1)
	e.Count("probe", 2)
	e.Count("ack", 5)
	if e.Counter("probe") != 3 || e.Counter("ack") != 5 || e.Counter("none") != 0 {
		t.Fatalf("counters = %v", e.Counters())
	}
	cp := e.Counters()
	cp["probe"] = 100
	if e.Counter("probe") != 3 {
		t.Error("Counters must return a copy")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// The fault layer's event filter: filtered events are discarded (not
// executed), time still advances past them, and drops are tallied.
func TestEventFilter(t *testing.T) {
	e := NewEngine()
	var ran []string
	must(t, e.Schedule(1, "keep-1", func(float64) { ran = append(ran, "keep-1") }))
	must(t, e.Schedule(2, "drop-2", func(float64) { ran = append(ran, "drop-2") }))
	must(t, e.Schedule(3, "keep-3", func(float64) { ran = append(ran, "keep-3") }))
	e.SetFilter(func(name string, at float64) bool {
		if name == "drop-2" && at != 2 {
			t.Errorf("filter saw at=%v for drop-2", at)
		}
		return name != "drop-2"
	})
	if n := e.Run(); n != 2 {
		t.Fatalf("executed %d events, want 2", n)
	}
	if e.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", e.Dropped())
	}
	if len(ran) != 2 || ran[0] != "keep-1" || ran[1] != "keep-3" {
		t.Fatalf("ran = %v", ran)
	}
	// Time advanced through the dropped event's timestamp.
	if e.Now() != 3 {
		t.Fatalf("now = %v", e.Now())
	}
	// Nil filter restores execute-everything behaviour.
	e.SetFilter(nil)
	must(t, e.Schedule(4, "drop-2", func(float64) { ran = append(ran, "late") }))
	e.Run()
	if len(ran) != 3 {
		t.Fatal("nil filter must execute everything")
	}
}
