// Package sim is a minimal discrete-event simulation engine used to execute
// the online distributed protocol (paper Algorithm 2): a time-ordered event
// queue with stable FIFO ordering among simultaneous events, plus named
// counters for message accounting.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"mobisink/internal/metrics"
)

// Engine instrumentation on the process-wide registry: protocol
// simulations are the hot inner loop of the online experiments, so
// event volume per run is worth watching when tuning throughput.
var (
	simEvents = metrics.Default().Counter("sim_events_executed_total",
		"Discrete events executed across all engine runs.")
	simEventsPerRun = metrics.Default().Histogram("sim_events_per_run",
		"Events executed in one Engine.Run call.",
		metrics.ExpBuckets(1, 4, 12))
)

// Event is a callback executed at its scheduled simulation time.
type Event func(now float64)

type item struct {
	at   float64
	seq  uint64
	name string
	fn   Event
}

type queue []*item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}
func (q queue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x interface{}) { *q = append(*q, x.(*item)) }
func (q *queue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event executor. The zero value is
// not usable; call NewEngine.
type Engine struct {
	q        queue
	now      float64
	seq      uint64
	stopped  bool
	executed int
	dropped  int
	filter   func(name string, at float64) bool
	counters map[string]int
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine {
	return &Engine{counters: make(map[string]int)}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// SetFilter installs a pre-execution hook used for fault injection:
// an event for which filter returns false is discarded instead of
// executed (time still advances to its timestamp, and the drop is
// tallied under Dropped). A nil filter executes everything. The filter
// should be pure — the fault layer relies on asking the same question
// from multiple places and getting the same answer.
func (e *Engine) SetFilter(filter func(name string, at float64) bool) {
	e.filter = filter
}

// Dropped returns the number of events discarded by the filter.
func (e *Engine) Dropped() int { return e.dropped }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() int { return e.executed }

// Schedule enqueues fn to run at absolute time at (≥ current time). name is
// for diagnostics only.
func (e *Engine) Schedule(at float64, name string, fn Event) error {
	if fn == nil {
		return errors.New("sim: nil event")
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return fmt.Errorf("sim: invalid time %v", at)
	}
	if at < e.now {
		return fmt.Errorf("sim: cannot schedule %q at %v before now %v", name, at, e.now)
	}
	e.seq++
	heap.Push(&e.q, &item{at: at, seq: e.seq, name: name, fn: fn})
	return nil
}

// After enqueues fn to run delay seconds from now.
func (e *Engine) After(delay float64, name string, fn Event) error {
	if delay < 0 {
		return fmt.Errorf("sim: negative delay %v", delay)
	}
	return e.Schedule(e.now+delay, name, fn)
}

// Run executes events in time order until the queue drains or Stop is
// called, returning the number of events executed in this call.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for len(e.q) > 0 && !e.stopped {
		it := heap.Pop(&e.q).(*item)
		e.now = it.at
		if e.filter != nil && !e.filter(it.name, it.at) {
			e.dropped++
			continue
		}
		it.fn(e.now)
		n++
		e.executed++
	}
	simEvents.Add(float64(n))
	simEventsPerRun.Observe(float64(n))
	return n
}

// Stop halts Run after the current event returns; pending events remain
// queued.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.q) }

// Count adds n to the named counter (message accounting).
func (e *Engine) Count(kind string, n int) { e.counters[kind] += n }

// Counter returns the named counter's value.
func (e *Engine) Counter(kind string) int { return e.counters[kind] }

// Counters returns a copy of all counters.
func (e *Engine) Counters() map[string]int {
	cp := make(map[string]int, len(e.counters))
	for k, v := range e.counters {
		cp[k] = v
	}
	return cp
}
