// Package phy models the physical layer underneath the paper's abstract
// multi-rate table: log-distance path loss, SNR at the receiver, O-QPSK
// bit-error rate (the CC2420 radio the paper cites uses O-QPSK), frame
// error rate, and stop-and-wait ARQ. It serves two purposes:
//
//  1. validation — the paper's rate/power tiers (§VII.A) assert that a
//     given power sustains a given rate up to a given distance; phy lets
//     the simulator derive effective goodput from first principles and
//     check that a tier's operating point actually closes its link;
//  2. substitution — via Model, any phy parameterization is usable as a
//     radio.Model, so instances can be built from physics instead of a
//     hand-authored table.
//
// All deterministic quantities are analytic; SimulateSlot additionally
// provides a seeded Monte-Carlo frame-by-frame simulation whose mean
// converges to the analytic goodput (tested).
package phy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mobisink/internal/radio"
)

// Params describes one radio operating point and environment.
type Params struct {
	// TxPowerDBm is the transmission power at the antenna.
	TxPowerDBm float64
	// BitRate is the raw channel rate in bit/s.
	BitRate float64
	// RefLossDB is the path loss at RefDist meters (e.g. 40 dB at 1 m for
	// 2.4 GHz free space plus antenna losses).
	RefLossDB float64
	// RefDist is the path-loss reference distance in meters.
	RefDist float64
	// Exponent is the path-loss exponent (≥ 2).
	Exponent float64
	// NoiseFloorDBm is thermal noise + receiver noise figure over the
	// signal bandwidth.
	NoiseFloorDBm float64
	// FrameBytes is the PHY payload per frame; OverheadBytes covers
	// preamble/header/CRC and is excluded from goodput.
	FrameBytes    int
	OverheadBytes int
	// MaxRetries is the number of ARQ retransmissions after the first
	// attempt (0 = no ARQ).
	MaxRetries int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.BitRate <= 0:
		return errors.New("phy: bit rate must be positive")
	case p.RefDist <= 0:
		return errors.New("phy: reference distance must be positive")
	case p.Exponent < 1.6:
		return fmt.Errorf("phy: implausible path-loss exponent %v", p.Exponent)
	case p.FrameBytes <= 0:
		return errors.New("phy: frame payload must be positive")
	case p.OverheadBytes < 0:
		return errors.New("phy: negative overhead")
	case p.MaxRetries < 0:
		return errors.New("phy: negative retries")
	}
	return nil
}

// CC2420 returns parameters resembling the radio the paper cites
// (2.4 GHz O-QPSK, 250 kbps, −95 dBm sensitivity class) at the given
// transmit power.
func CC2420(txDBm float64) Params {
	return Params{
		TxPowerDBm:    txDBm,
		BitRate:       250e3,
		RefLossDB:     40,
		RefDist:       1,
		Exponent:      2.7,
		NoiseFloorDBm: -100,
		FrameBytes:    112, // 802.15.4 max payload-ish
		OverheadBytes: 21,
		MaxRetries:    3,
	}
}

// DBmToWatts converts dBm to Watts.
func DBmToWatts(dbm float64) float64 { return math.Pow(10, dbm/10) / 1000 }

// WattsToDBm converts Watts to dBm.
func WattsToDBm(w float64) float64 { return 10 * math.Log10(w*1000) }

// PathLossDB returns the log-distance path loss at distance d.
func (p Params) PathLossDB(d float64) float64 {
	if d < p.RefDist {
		d = p.RefDist
	}
	return p.RefLossDB + 10*p.Exponent*math.Log10(d/p.RefDist)
}

// SNRdB returns the received signal-to-noise ratio at distance d.
func (p Params) SNRdB(d float64) float64 {
	return p.TxPowerDBm - p.PathLossDB(d) - p.NoiseFloorDBm
}

// BER returns the bit error rate at distance d under O-QPSK with coherent
// detection: BER = Q(√(2·Eb/N0)), with Eb/N0 taken as the per-bit SNR.
func (p Params) BER(d float64) float64 {
	snr := math.Pow(10, p.SNRdB(d)/10)
	if snr <= 0 {
		return 0.5
	}
	ber := 0.5 * math.Erfc(math.Sqrt(snr))
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// FER returns the frame error rate at distance d (any bit error kills the
// frame; no FEC).
func (p Params) FER(d float64) float64 {
	bits := float64(8 * (p.FrameBytes + p.OverheadBytes))
	ber := p.BER(d)
	return 1 - math.Pow(1-ber, bits)
}

// DeliveryProb returns the probability a frame is delivered within the ARQ
// budget (1 + MaxRetries attempts).
func (p Params) DeliveryProb(d float64) float64 {
	fer := p.FER(d)
	return 1 - math.Pow(fer, float64(p.MaxRetries+1))
}

// Goodput returns the expected application-payload rate (bit/s) at
// distance d: channel rate scaled by payload efficiency and divided by the
// expected number of transmissions per *delivered* frame, accounting for
// frames lost after all retries.
func (p Params) Goodput(d float64) float64 {
	fer := p.FER(d)
	if fer >= 1 {
		return 0
	}
	attempts := float64(p.MaxRetries + 1)
	// Expected attempts consumed per frame entering the ARQ process.
	expAttempts := (1 - math.Pow(fer, attempts)) / (1 - fer)
	delivered := 1 - math.Pow(fer, attempts)
	payload := float64(8 * p.FrameBytes)
	total := float64(8 * (p.FrameBytes + p.OverheadBytes))
	frameAirTime := total / p.BitRate
	return payload * delivered / (expAttempts * frameAirTime)
}

// FrameAirTime returns the on-air duration of one frame in seconds.
func (p Params) FrameAirTime() float64 {
	return float64(8*(p.FrameBytes+p.OverheadBytes)) / p.BitRate
}

// SlotResult is the outcome of a Monte-Carlo slot simulation.
type SlotResult struct {
	Frames     int     // frames attempted (first transmissions)
	Delivered  int     // frames delivered within the ARQ budget
	Attempts   int     // total transmissions including retries
	Bits       float64 // payload bits delivered
	EnergyJ    float64 // transmit energy spent
	AirSeconds float64 // time spent transmitting
}

// SimulateSlot runs a frame-by-frame simulation of one time slot of
// `duration` seconds at distance d, drawing frame losses from rng. The
// radio transmits back-to-back frames with stop-and-wait ARQ (ack time
// ignored, as the paper's model does). Energy is TxPower × air time.
func (p Params) SimulateSlot(d, duration float64, rng *rand.Rand) (SlotResult, error) {
	if err := p.Validate(); err != nil {
		return SlotResult{}, err
	}
	if duration <= 0 {
		return SlotResult{}, fmt.Errorf("phy: non-positive slot duration %v", duration)
	}
	if rng == nil {
		return SlotResult{}, errors.New("phy: nil rng")
	}
	fer := p.FER(d)
	air := p.FrameAirTime()
	txW := DBmToWatts(p.TxPowerDBm)
	var res SlotResult
	t := 0.0
	for {
		if t+air > duration {
			break
		}
		res.Frames++
		delivered := false
		for attempt := 0; attempt <= p.MaxRetries; attempt++ {
			if t+air > duration {
				break
			}
			t += air
			res.Attempts++
			if rng.Float64() >= fer {
				delivered = true
				break
			}
		}
		if delivered {
			res.Delivered++
			res.Bits += float64(8 * p.FrameBytes)
		}
	}
	res.AirSeconds = float64(res.Attempts) * air
	res.EnergyJ = res.AirSeconds * txW
	return res, nil
}

// Model adapts a set of phy operating points (one per power level, tried
// in listed order) into a radio.Model-compatible link chooser: at distance
// d it picks the first operating point whose delivery probability meets
// MinDelivery, returning its goodput and transmit power.
type Model struct {
	Points      []Params
	MinDelivery float64 // e.g. 0.9
	MaxRange    float64 // hard range cutoff, m
}

// NewModel validates and builds the adapter.
func NewModel(points []Params, minDelivery, maxRange float64) (*Model, error) {
	if len(points) == 0 {
		return nil, errors.New("phy: no operating points")
	}
	for i, pt := range points {
		if err := pt.Validate(); err != nil {
			return nil, fmt.Errorf("phy: point %d: %w", i, err)
		}
	}
	if minDelivery <= 0 || minDelivery > 1 {
		return nil, fmt.Errorf("phy: delivery threshold %v outside (0,1]", minDelivery)
	}
	if maxRange <= 0 {
		return nil, errors.New("phy: non-positive max range")
	}
	return &Model{Points: points, MinDelivery: minDelivery, MaxRange: maxRange}, nil
}

// LinkAt picks the operating point for distance d, implementing
// radio.Model so instances can be built directly from physics.
func (m *Model) LinkAt(d float64) (radio.Link, bool) {
	if d < 0 || d > m.MaxRange {
		return radio.Link{}, false
	}
	for _, pt := range m.Points {
		if pt.DeliveryProb(d) >= m.MinDelivery {
			return radio.Link{Rate: pt.Goodput(d), Power: DBmToWatts(pt.TxPowerDBm)}, true
		}
	}
	return radio.Link{}, false
}

// Range returns the hard range cutoff.
func (m *Model) Range() float64 { return m.MaxRange }
