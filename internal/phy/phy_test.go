package phy

import (
	"math"
	"math/rand"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func TestValidate(t *testing.T) {
	good := CC2420(0)
	if err := good.Validate(); err != nil {
		t.Fatalf("CC2420 params invalid: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.BitRate = 0 },
		func(p *Params) { p.RefDist = 0 },
		func(p *Params) { p.Exponent = 1 },
		func(p *Params) { p.FrameBytes = 0 },
		func(p *Params) { p.OverheadBytes = -1 },
		func(p *Params) { p.MaxRetries = -1 },
	}
	for i, mutate := range cases {
		p := CC2420(0)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestUnitConversions(t *testing.T) {
	if got := DBmToWatts(0); math.Abs(got-0.001) > 1e-12 {
		t.Errorf("0 dBm = %v W", got)
	}
	if got := DBmToWatts(30); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("30 dBm = %v W", got)
	}
	for _, dbm := range []float64{-10, 0, 7, 22.3} {
		if got := WattsToDBm(DBmToWatts(dbm)); math.Abs(got-dbm) > 1e-9 {
			t.Errorf("round trip %v → %v", dbm, got)
		}
	}
}

func TestPathLossMonotone(t *testing.T) {
	p := CC2420(0)
	prev := -1.0
	for d := 1.0; d <= 500; d *= 1.5 {
		pl := p.PathLossDB(d)
		if pl <= prev {
			t.Fatalf("path loss not increasing at %v m", d)
		}
		prev = pl
	}
	// Below the reference distance the loss clamps.
	if p.PathLossDB(0.1) != p.PathLossDB(1) {
		t.Error("loss below reference distance must clamp")
	}
}

func TestBERBehaviour(t *testing.T) {
	p := CC2420(0)
	// Close range: essentially error-free.
	if ber := p.BER(1); ber > 1e-12 {
		t.Errorf("BER(1 m) = %v, want ~0", ber)
	}
	// Very far: approaches 0.5 but never exceeds it.
	if ber := p.BER(100000); ber < 0.4 || ber > 0.5 {
		t.Errorf("BER(100 km) = %v", ber)
	}
	// Monotone non-decreasing with distance.
	prev := 0.0
	for d := 1.0; d < 2000; d *= 1.3 {
		ber := p.BER(d)
		if ber+1e-15 < prev {
			t.Fatalf("BER decreased at %v m", d)
		}
		prev = ber
	}
}

func TestFERAndDelivery(t *testing.T) {
	p := CC2420(0)
	if fer := p.FER(1); fer > 1e-9 {
		t.Errorf("FER(1 m) = %v", fer)
	}
	if dp := p.DeliveryProb(1); dp < 1-1e-9 {
		t.Errorf("DeliveryProb(1 m) = %v", dp)
	}
	// ARQ helps: delivery with retries ≥ delivery of a single attempt.
	far := 120.0
	single := p
	single.MaxRetries = 0
	if p.DeliveryProb(far) < single.DeliveryProb(far) {
		t.Error("retries must not hurt delivery")
	}
}

func TestGoodputShape(t *testing.T) {
	p := CC2420(0)
	// Near: goodput ≈ bitrate × payload efficiency.
	eff := float64(p.FrameBytes) / float64(p.FrameBytes+p.OverheadBytes)
	near := p.Goodput(1)
	if math.Abs(near-p.BitRate*eff)/(p.BitRate*eff) > 1e-6 {
		t.Errorf("near goodput %v, want %v", near, p.BitRate*eff)
	}
	// Monotone non-increasing with distance.
	prev := math.Inf(1)
	for d := 1.0; d < 5000; d *= 1.4 {
		g := p.Goodput(d)
		if g > prev+1e-9 {
			t.Fatalf("goodput increased at %v m", d)
		}
		prev = g
	}
	// Far: goodput collapses to ~0.
	if g := p.Goodput(5000); g > 1 {
		t.Errorf("far goodput = %v", g)
	}
}

func TestSimulateSlotMatchesAnalytic(t *testing.T) {
	p := CC2420(0)
	rng := rand.New(rand.NewSource(5))
	for _, d := range []float64{10, 150, 260} {
		var bits, seconds float64
		const slots = 400
		for i := 0; i < slots; i++ {
			res, err := p.SimulateSlot(d, 1.0, rng)
			if err != nil {
				t.Fatal(err)
			}
			bits += res.Bits
			seconds += 1.0
			if res.Attempts < res.Frames {
				t.Fatal("attempts < frames")
			}
			if res.Delivered > res.Frames {
				t.Fatal("delivered > frames")
			}
			if res.EnergyJ < 0 || res.AirSeconds > 1.0+1e-9 {
				t.Fatalf("implausible slot result %+v", res)
			}
		}
		mc := bits / seconds
		analytic := p.Goodput(d)
		// The slot boundary truncates partially-completed ARQ rounds, so the
		// Monte-Carlo mean sits slightly below the analytic steady-state
		// goodput; allow 10% + a small absolute tolerance.
		if mc > analytic*1.1+100 || mc < analytic*0.8-100 {
			t.Errorf("d=%v: MC goodput %v vs analytic %v", d, mc, analytic)
		}
	}
}

func TestSimulateSlotValidation(t *testing.T) {
	p := CC2420(0)
	rng := rand.New(rand.NewSource(1))
	if _, err := p.SimulateSlot(10, 0, rng); err == nil {
		t.Error("expected duration error")
	}
	if _, err := p.SimulateSlot(10, 1, nil); err == nil {
		t.Error("expected rng error")
	}
	bad := p
	bad.BitRate = 0
	if _, err := bad.SimulateSlot(10, 1, rng); err == nil {
		t.Error("expected validation error")
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil, 0.9, 200); err == nil {
		t.Error("expected empty-points error")
	}
	bad := CC2420(0)
	bad.BitRate = 0
	if _, err := NewModel([]Params{bad}, 0.9, 200); err == nil {
		t.Error("expected invalid-point error")
	}
	if _, err := NewModel([]Params{CC2420(0)}, 0, 200); err == nil {
		t.Error("expected threshold error")
	}
	if _, err := NewModel([]Params{CC2420(0)}, 0.9, 0); err == nil {
		t.Error("expected range error")
	}
}

// The tier intuition of the paper's table: lower power suffices close by,
// higher power extends the range at lower goodput.
func TestModelTiering(t *testing.T) {
	low := CC2420(-10)
	high := CC2420(0)
	m, err := NewModel([]Params{low, high}, 0.95, 300)
	if err != nil {
		t.Fatal(err)
	}
	near, ok := m.LinkAt(5)
	if !ok {
		t.Fatal("no link at 5 m")
	}
	if math.Abs(near.Power-DBmToWatts(-10)) > 1e-12 {
		t.Errorf("near link should use the low-power point, got %v W", near.Power)
	}
	// Find a distance where only the high-power point closes the link.
	found := false
	for d := 10.0; d <= 300; d += 5 {
		if low.DeliveryProb(d) < 0.95 && high.DeliveryProb(d) >= 0.95 {
			l, ok := m.LinkAt(d)
			if !ok {
				t.Fatalf("expected link at %v m", d)
			}
			if math.Abs(l.Power-DBmToWatts(0)) > 1e-12 {
				t.Fatalf("at %v m expected high power", d)
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("no exclusive high-power band with these parameters")
	}
	if _, ok := m.LinkAt(400); ok {
		t.Error("beyond max range must fail")
	}
	if _, ok := m.LinkAt(-1); ok {
		t.Error("negative distance must fail")
	}
}

// End-to-end: a physics-derived model can drive the whole pipeline.
func TestModelDrivesInstance(t *testing.T) {
	m, err := NewModel([]Params{CC2420(-7), CC2420(0)}, 0.9, 250)
	if err != nil {
		t.Fatal(err)
	}
	var _ radio.Model = m // compile-time interface check
	dep, err := network.Generate(network.Params{N: 40, PathLength: 2000, MaxOffset: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = dep.SetUniformBudgets(2)
	inst, err := core.BuildInstance(dep, m, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.OfflineAppro(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(a); err != nil {
		t.Fatal(err)
	}
	if a.Data <= 0 {
		t.Error("physics-driven instance collected nothing")
	}
}
