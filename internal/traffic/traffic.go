// Package traffic generates the sensing workload of the paper's motivating
// application — traffic monitoring and surveillance on busy highways. A
// seeded (optionally inhomogeneous) Poisson stream of vehicles enters the
// road and drives its length; each roadside sensor detects the vehicles
// that pass its nearest road point while within detection range, and every
// detection produces a fixed amount of surveillance data. The resulting
// per-sensor data volumes feed core.Instance.SetDataCaps, lifting the
// paper's unbounded-data assumption with a physically grounded workload.
package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mobisink/internal/geom"
	"mobisink/internal/network"
)

// Params configures the vehicle stream.
type Params struct {
	// ArrivalRate is the mean vehicle arrival rate at the road entrance,
	// vehicles/second (e.g. 0.2 ≈ 720 veh/h on a busy rural highway).
	ArrivalRate float64
	// MeanSpeed and SpeedStdDev describe the truncated-normal vehicle
	// speed distribution, m/s.
	MeanSpeed, SpeedStdDev float64
	// DetectRange is how far from the road a sensor can still detect a
	// passing vehicle, meters.
	DetectRange float64
	// BitsPerDetection is the data produced per detected vehicle (e.g. a
	// compressed snapshot + metadata).
	BitsPerDetection float64
	// RateProfile optionally modulates ArrivalRate over time-of-day
	// (thinned inhomogeneous Poisson); it must return values in [0, 1].
	// Nil means a constant rate.
	RateProfile func(t float64) float64
	// Seed makes the stream reproducible.
	Seed int64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.ArrivalRate <= 0:
		return errors.New("traffic: arrival rate must be positive")
	case p.MeanSpeed <= 0:
		return errors.New("traffic: mean speed must be positive")
	case p.SpeedStdDev < 0:
		return errors.New("traffic: negative speed stddev")
	case p.DetectRange <= 0:
		return errors.New("traffic: detect range must be positive")
	case p.BitsPerDetection <= 0:
		return errors.New("traffic: bits per detection must be positive")
	}
	return nil
}

// Vehicle is one generated vehicle.
type Vehicle struct {
	Enter float64 // entry time at arc length 0, seconds
	Speed float64 // m/s
}

// RushHour returns a rate profile with morning and evening peaks (a pair of
// Gaussian bumps on a base level), normalized to max 1.
func RushHour() func(t float64) float64 {
	bump := func(tod, center, width float64) float64 {
		d := (tod - center) / width
		return math.Exp(-d * d / 2)
	}
	return func(t float64) float64 {
		tod := math.Mod(t, 86400)
		if tod < 0 {
			tod += 86400
		}
		v := 0.25 + 0.75*math.Max(bump(tod, 8*3600, 1.5*3600), bump(tod, 17.5*3600, 2*3600))
		if v > 1 {
			v = 1
		}
		return v
	}
}

// Stream generates the vehicles entering during [t0, t1) by thinning a
// homogeneous Poisson process at the peak rate.
func Stream(p Params, t0, t1 float64) ([]Vehicle, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("traffic: empty horizon [%v, %v)", t0, t1)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var out []Vehicle
	t := t0
	for {
		t += rng.ExpFloat64() / p.ArrivalRate
		if t >= t1 {
			break
		}
		if p.RateProfile != nil {
			f := p.RateProfile(t)
			if f < 0 || f > 1 {
				return nil, fmt.Errorf("traffic: rate profile returned %v outside [0,1]", f)
			}
			if rng.Float64() >= f {
				continue // thinned out
			}
		}
		speed := p.MeanSpeed + p.SpeedStdDev*rng.NormFloat64()
		if min := p.MeanSpeed / 4; speed < min {
			speed = min
		}
		out = append(out, Vehicle{Enter: t, Speed: speed})
	}
	return out, nil
}

// Load computes each sensor's generated data over the horizon [t0, t1):
// the number of vehicles passing the sensor's nearest road point during the
// horizon (while the sensor is within DetectRange of the road) times
// BitsPerDetection.
func Load(dep *network.Deployment, p Params, t0, t1 float64) ([]float64, error) {
	if dep == nil {
		return nil, errors.New("traffic: nil deployment")
	}
	if err := dep.Validate(); err != nil {
		return nil, err
	}
	vehicles, err := Stream(p, t0, t1)
	if err != nil {
		return nil, err
	}
	path := dep.Path()
	caps := make([]float64, len(dep.Sensors))
	// Precompute each sensor's arc position and road distance.
	type at struct {
		s    float64
		dist float64
		idx  int
	}
	ats := make([]at, 0, len(dep.Sensors))
	for i, s := range dep.Sensors {
		arc, d := geom.Nearest(path, s.Pos)
		if d <= p.DetectRange {
			ats = append(ats, at{arc, d, i})
		}
	}
	sort.Slice(ats, func(a, b int) bool { return ats[a].s < ats[b].s })
	for _, v := range vehicles {
		// The vehicle passes arc s at time Enter + s/Speed; count it for
		// every detecting sensor whose pass time lands inside the horizon.
		// Sensors are sorted by arc; the pass time is monotone in s, so
		// the eligible sensors form a prefix/suffix range.
		for _, a := range ats {
			pass := v.Enter + a.s/v.Speed
			if pass >= t1 {
				break // later sensors only pass later
			}
			caps[a.idx] += p.BitsPerDetection
		}
	}
	return caps, nil
}

// Summary aggregates a load vector.
type Summary struct {
	Vehicles   int     // vehicles entering during the horizon
	TotalBits  float64 // sum of all sensor loads
	MeanBits   float64
	MaxBits    float64
	ZeroLoad   int // sensors with no detections
	Detections float64
}

// Summarize derives a Summary from a load vector and its vehicle stream.
func Summarize(caps []float64, vehicles []Vehicle, bitsPer float64) Summary {
	s := Summary{Vehicles: len(vehicles)}
	for _, c := range caps {
		s.TotalBits += c
		if c > s.MaxBits {
			s.MaxBits = c
		}
		if c == 0 {
			s.ZeroLoad++
		}
	}
	if len(caps) > 0 {
		s.MeanBits = s.TotalBits / float64(len(caps))
	}
	if bitsPer > 0 {
		s.Detections = s.TotalBits / bitsPer
	}
	return s
}
