package traffic

import (
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func latencySetup(t *testing.T, speed float64) (*network.Deployment, *core.Instance, *core.Allocation, Params) {
	t.Helper()
	dep, err := network.Generate(network.Params{N: 60, PathLength: 3000, MaxOffset: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_ = dep.SetUniformBudgets(4)
	inst, err := core.BuildInstance(dep, radio.Paper2013(), speed, 1)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := core.OfflineAppro(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := baseParams()
	p.ArrivalRate = 0.05
	return dep, inst, alloc, p
}

func TestDeliveryLatencyValidation(t *testing.T) {
	dep, inst, alloc, p := latencySetup(t, 5)
	if _, err := DeliveryLatency(nil, p, inst, alloc, 0, 0); err == nil {
		t.Error("expected nil-deployment error")
	}
	if _, err := DeliveryLatency(dep, p, inst, nil, 0, 0); err == nil {
		t.Error("expected nil-allocation error")
	}
	bad := &core.Allocation{SlotOwner: make([]int, 3)}
	if _, err := DeliveryLatency(dep, p, inst, bad, 0, 0); err == nil {
		t.Error("expected length error")
	}
	if _, err := DeliveryLatency(dep, p, inst, alloc, 1e9, 0); err == nil {
		t.Error("expected empty-window error")
	}
}

func TestDeliveryLatencyBasics(t *testing.T) {
	dep, inst, alloc, p := latencySetup(t, 5)
	// Generate data for an hour before the tour plus the tour itself.
	st, err := DeliveryLatency(dep, p, inst, alloc, -3600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Detections == 0 {
		t.Fatal("no detections generated")
	}
	if st.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if st.Delivered > st.Detections {
		t.Fatalf("delivered %d > generated %d", st.Delivered, st.Detections)
	}
	if st.MeanDelay <= 0 || st.MaxDelay < st.MeanDelay || st.P95Delay < st.MedianDelay {
		t.Fatalf("implausible stats: %+v", st)
	}
	// Delay is bounded by generation window + tour duration.
	if st.MaxDelay > 3600+float64(inst.T)*inst.Tau+1 {
		t.Fatalf("max delay %v beyond horizon", st.MaxDelay)
	}
}

// The paper's trade-off: a faster sink delivers sensed data sooner (lower
// latency) but collects less per tour.
func TestFasterSinkLowersLatency(t *testing.T) {
	depS, instS, allocS, p := latencySetup(t, 5)
	slow, err := DeliveryLatency(depS, p, instS, allocS, -1800, 0)
	if err != nil {
		t.Fatal(err)
	}
	depF, instF, allocF, _ := latencySetup(t, 20)
	fast, err := DeliveryLatency(depF, p, instF, allocF, -1800, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MeanDelay >= slow.MeanDelay {
		t.Errorf("fast sink mean delay %v not below slow %v", fast.MeanDelay, slow.MeanDelay)
	}
	if allocF.Data >= allocS.Data {
		t.Errorf("fast sink collected %v ≥ slow %v — per-tour volume should drop", allocF.Data, allocS.Data)
	}
}

func TestDeliveryLatencyDeterministic(t *testing.T) {
	dep, inst, alloc, p := latencySetup(t, 5)
	a, err := DeliveryLatency(dep, p, inst, alloc, -600, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeliveryLatency(dep, p, inst, alloc, -600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}
