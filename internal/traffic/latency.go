package traffic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mobisink/internal/core"
	"mobisink/internal/geom"
	"mobisink/internal/network"
)

// LatencyStats summarizes data-delivery latency — the time from a
// detection being sensed to its last bit reaching the mobile sink. The
// paper argues the core trade-off qualitatively ("a higher speed leads to
// a shorter delay ... but less data collected per tour", §VII.C); this
// makes it measurable.
type LatencyStats struct {
	Detections  int     // detections generated in the horizon
	Delivered   int     // fully uploaded during the tour
	MeanDelay   float64 // seconds, over delivered detections
	MedianDelay float64
	P95Delay    float64
	MaxDelay    float64
}

// DeliveryLatency replays one tour against the traffic workload: sensor
// queues hold their detections FIFO (bits), each allocated slot drains
// r_{i,j}·τ bits at the slot's midpoint time, and a detection counts as
// delivered when its last bit is uploaded. tourStart is the absolute time
// the tour begins; detections are generated over [genStart, tourStart+tour]
// so data sensed mid-tour can still be collected later in the tour.
func DeliveryLatency(dep *network.Deployment, p Params, inst *core.Instance, alloc *core.Allocation, genStart, tourStart float64) (LatencyStats, error) {
	if dep == nil || inst == nil || alloc == nil {
		return LatencyStats{}, errors.New("traffic: nil deployment, instance or allocation")
	}
	if len(alloc.SlotOwner) != inst.T {
		return LatencyStats{}, fmt.Errorf("traffic: allocation covers %d slots, instance has %d", len(alloc.SlotOwner), inst.T)
	}
	tourEnd := tourStart + float64(inst.T)*inst.Tau
	if genStart >= tourEnd {
		return LatencyStats{}, fmt.Errorf("traffic: generation window [%v, %v) empty", genStart, tourEnd)
	}
	vehicles, err := Stream(p, genStart, tourEnd)
	if err != nil {
		return LatencyStats{}, err
	}
	path := dep.Path()

	// Per-sensor detection times (ascending by construction per vehicle,
	// but vehicles interleave — sort per sensor).
	n := len(inst.Sensors)
	detections := make([][]float64, n)
	for i := 0; i < n; i++ {
		s := &inst.Sensors[i]
		if s.Start < 0 {
			continue
		}
		arc, d := geom.Nearest(path, s.Pos)
		if d > p.DetectRange {
			continue
		}
		for _, v := range vehicles {
			pass := v.Enter + arc/v.Speed
			if pass < tourEnd {
				detections[i] = append(detections[i], pass)
			}
		}
		sort.Float64s(detections[i])
	}

	stats := LatencyStats{}
	var delays []float64
	for i := 0; i < n; i++ {
		stats.Detections += len(detections[i])
		if len(detections[i]) == 0 {
			continue
		}
		s := &inst.Sensors[i]
		// Slots owned by sensor i, in time order.
		queueHead := 0   // next undelivered detection
		remaining := 0.0 // bits of the head detection still queued
		if len(detections[i]) > 0 {
			remaining = p.BitsPerDetection
		}
		for j := s.Start; j <= s.End && queueHead < len(detections[i]); j++ {
			if alloc.SlotOwner[j] != i {
				continue
			}
			slotTime := tourStart + (float64(j)+0.5)*inst.Tau
			budget := s.RateAt(j) * inst.Tau // bits drained this slot
			for budget > 0 && queueHead < len(detections[i]) {
				gen := detections[i][queueHead]
				if gen > slotTime {
					break // not sensed yet at this slot
				}
				if remaining <= budget {
					budget -= remaining
					delays = append(delays, slotTime-gen)
					queueHead++
					remaining = p.BitsPerDetection
				} else {
					remaining -= budget
					budget = 0
				}
			}
		}
	}
	stats.Delivered = len(delays)
	if len(delays) == 0 {
		return stats, nil
	}
	sort.Float64s(delays)
	sum := 0.0
	for _, d := range delays {
		sum += d
		if d > stats.MaxDelay {
			stats.MaxDelay = d
		}
	}
	stats.MeanDelay = sum / float64(len(delays))
	stats.MedianDelay = delays[len(delays)/2]
	p95 := int(math.Ceil(0.95*float64(len(delays)))) - 1
	if p95 < 0 {
		p95 = 0
	}
	stats.P95Delay = delays[p95]
	return stats, nil
}
