package traffic

import (
	"math"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/geom"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func baseParams() Params {
	return Params{
		ArrivalRate:      0.1,
		MeanSpeed:        25,
		SpeedStdDev:      4,
		DetectRange:      60,
		BitsPerDetection: 200e3,
		Seed:             1,
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.ArrivalRate = 0 },
		func(p *Params) { p.MeanSpeed = 0 },
		func(p *Params) { p.SpeedStdDev = -1 },
		func(p *Params) { p.DetectRange = 0 },
		func(p *Params) { p.BitsPerDetection = 0 },
	}
	for i, mutate := range cases {
		p := baseParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStreamStatistics(t *testing.T) {
	p := baseParams()
	const horizon = 40000.0
	vs, err := Stream(p, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson mean λ·H = 4000; allow ±5σ.
	mean := p.ArrivalRate * horizon
	if float64(len(vs)) < mean-5*math.Sqrt(mean) || float64(len(vs)) > mean+5*math.Sqrt(mean) {
		t.Errorf("vehicles = %d, want ≈ %v", len(vs), mean)
	}
	prev := 0.0
	speedSum := 0.0
	for _, v := range vs {
		if v.Enter < prev {
			t.Fatal("entries not time-ordered")
		}
		prev = v.Enter
		if v.Speed < p.MeanSpeed/4 {
			t.Fatalf("speed %v below truncation floor", v.Speed)
		}
		speedSum += v.Speed
	}
	if avg := speedSum / float64(len(vs)); math.Abs(avg-p.MeanSpeed) > 1 {
		t.Errorf("mean speed %v, want ≈ %v", avg, p.MeanSpeed)
	}
	// Determinism.
	vs2, _ := Stream(p, 0, horizon)
	if len(vs) != len(vs2) || vs[0] != vs2[0] {
		t.Error("stream not reproducible")
	}
	// Empty horizon.
	if _, err := Stream(p, 10, 10); err == nil {
		t.Error("expected horizon error")
	}
}

func TestRushHourProfile(t *testing.T) {
	prof := RushHour()
	peak := prof(8 * 3600)
	night := prof(3 * 3600)
	if peak <= night {
		t.Errorf("rush hour %v not above night %v", peak, night)
	}
	for _, tm := range []float64{0, 4 * 3600, 8 * 3600, 12 * 3600, 17.5 * 3600, 23 * 3600, 100000} {
		v := prof(tm)
		if v < 0 || v > 1 {
			t.Fatalf("profile(%v) = %v outside [0,1]", tm, v)
		}
	}
	if prof(-3600) != prof(86400-3600) {
		t.Error("profile must wrap")
	}
	// Thinned stream has fewer vehicles than the homogeneous one.
	p := baseParams()
	full, _ := Stream(p, 0, 86400)
	p.RateProfile = prof
	thinned, err := Stream(p, 0, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if len(thinned) >= len(full) {
		t.Errorf("thinned %d not below full %d", len(thinned), len(full))
	}
	// Invalid profile values are rejected.
	p.RateProfile = func(float64) float64 { return 2 }
	if _, err := Stream(p, 0, 1000); err == nil {
		t.Error("expected profile-range error")
	}
}

func TestLoad(t *testing.T) {
	dep, err := network.Generate(network.Params{N: 80, PathLength: 5000, MaxOffset: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := baseParams()
	caps, err := Load(dep, p, 0, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 80 {
		t.Fatalf("caps length %d", len(caps))
	}
	vs, _ := Stream(p, 0, 3600)
	sum := Summarize(caps, vs, p.BitsPerDetection)
	if sum.Vehicles == 0 || sum.TotalBits == 0 {
		t.Fatalf("empty load: %+v", sum)
	}
	// Sensors beyond detect range get nothing; in-range near the entrance
	// see nearly every vehicle that entered early enough.
	for i, s := range dep.Sensors {
		if math.Abs(s.Pos.Y) > p.DetectRange && caps[i] != 0 {
			t.Fatalf("sensor %d out of detect range but loaded", i)
		}
		if caps[i] < 0 {
			t.Fatal("negative load")
		}
		// Loads are integer multiples of BitsPerDetection.
		k := caps[i] / p.BitsPerDetection
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("load %v not a detection multiple", caps[i])
		}
	}
	// Determinism.
	caps2, _ := Load(dep, p, 0, 3600)
	for i := range caps {
		if caps[i] != caps2[i] {
			t.Fatal("load not reproducible")
		}
	}
	if _, err := Load(nil, p, 0, 100); err == nil {
		t.Error("expected nil-deployment error")
	}
}

// Upstream sensors accumulate at least as many detections as downstream
// ones over long horizons (every vehicle passes them first).
func TestLoadMonotoneAlongRoad(t *testing.T) {
	dep := &network.Deployment{PathLength: 5000, MaxOffset: 0, Sensors: []network.Sensor{
		{ID: 0, Pos: pos(100, 0)},
		{ID: 1, Pos: pos(2500, 0)},
		{ID: 2, Pos: pos(4900, 0)},
	}}
	p := baseParams()
	caps, err := Load(dep, p, 0, 7200)
	if err != nil {
		t.Fatal(err)
	}
	if caps[0] < caps[1] || caps[1] < caps[2] {
		t.Errorf("loads not monotone along the road: %v", caps)
	}
}

// End-to-end: traffic loads as data caps change the optimizer's behaviour.
func TestLoadDrivesDataCaps(t *testing.T) {
	dep, err := network.Generate(network.Params{N: 50, PathLength: 2000, MaxOffset: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_ = dep.SetUniformBudgets(3)
	inst, err := core.BuildInstance(dep, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := core.OfflineSequential(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := baseParams()
	p.ArrivalRate = 0.002 // very light traffic → tight caps
	caps, err := Load(dep, p, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.SetDataCaps(caps); err != nil {
		t.Fatal(err)
	}
	capped, err := core.OfflineSequential(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(capped); err != nil {
		t.Fatalf("capped allocation infeasible: %v", err)
	}
	if capped.Data > uncapped.Data+1e-6 {
		t.Errorf("caps cannot increase throughput: %v vs %v", capped.Data, uncapped.Data)
	}
	total := 0.0
	for _, c := range caps {
		total += c
	}
	if capped.Data > total+1e-6 {
		t.Errorf("collected %v above total available %v", capped.Data, total)
	}
}

func pos(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }
