package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	l := NewLRU[string, int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	l.Add("a", 1)
	l.Add("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; adding "c" must evict it.
	l.Add("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a lost after eviction: %v, %v", v, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	hits, misses := l.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 2/2", hits, misses)
	}
}

func TestLRUUpdateAndRemove(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Add("a", 1)
	l.Add("a", 10) // refresh, not a second entry
	if l.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add", l.Len())
	}
	if v, _ := l.Get("a"); v != 10 {
		t.Fatalf("Get(a) = %d, want 10", v)
	}
	if !l.Remove("a") || l.Remove("a") {
		t.Fatal("Remove semantics wrong")
	}
	if _, ok := l.Get("a"); ok {
		t.Fatal("removed key still present")
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	l := NewLRU[int, int](0) // clamped to 1
	l.Add(1, 1)
	l.Add(2, 2)
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	l := NewLRU[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Add(i%100, g)
				l.Get((i + g) % 100)
				if i%50 == 0 {
					l.Remove(i % 100)
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", l.Len())
	}
}

func TestGroupCollapsesConcurrentCalls(t *testing.T) {
	var g Group[string, int]
	var calls, attached atomic.Int64
	g.waitHook = func() { attached.Add(1) }
	started := make(chan struct{})
	gate := make(chan struct{})
	const waiters = 16
	results := make([]int, waiters)
	shareds := make([]bool, waiters)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the leader starts fn and blocks on the gate
		defer wg.Done()
		v, err, shared := g.Do("k", func() (int, error) {
			calls.Add(1)
			close(started)
			<-gate
			return 42, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0] = v
		shareds[0] = shared
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (int, error) {
				calls.Add(1)
				return -1, nil // must never run: the leader's call is in flight
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
			shareds[i] = shared
		}(i)
	}
	// Release the leader only after every follower has attached to its
	// in-flight call, so collapse is deterministic, not timing-dependent.
	for attached.Load() < waiters-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	nonShared := 0
	for i := range results {
		if results[i] != 42 {
			t.Fatalf("caller %d got %d", i, results[i])
		}
		if !shareds[i] {
			nonShared++
		}
	}
	if nonShared != 1 {
		t.Fatalf("%d callers think they ran fn, want 1", nonShared)
	}
}

func TestGroupDistinctKeysRunIndependently(t *testing.T) {
	var g Group[int, int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, _ := g.Do(i, func() (int, error) {
				calls.Add(1)
				return i * i, nil
			})
			if v != i*i {
				t.Errorf("key %d: got %d", i, v)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Fatalf("fn ran %d times, want 8", calls.Load())
	}
}

func TestMemoCachesSuccessNotError(t *testing.T) {
	m := NewMemo[string, int](4)
	var calls int
	boom := errors.New("boom")
	if _, err, _ := m.Do("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Error was not cached: next call recomputes.
	v, err, cached := m.Do("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || cached {
		t.Fatalf("got %v, %v, cached=%v", v, err, cached)
	}
	// Success was cached: no recompute.
	v, err, cached = m.Do("k", func() (int, error) { calls++; return 0, nil })
	if err != nil || v != 7 || !cached {
		t.Fatalf("cached read got %v, %v, cached=%v", v, err, cached)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[string, string](4)
	var calls atomic.Int64
	var wg sync.WaitGroup
	started := make(chan struct{})
	gate := make(chan struct{})
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, _ := m.Do("dep", func() (string, error) {
				calls.Add(1)
				close(started)
				<-gate
				return "plan", nil
			})
			if err != nil || v != "plan" {
				t.Errorf("got %q, %v", v, err)
			}
		}()
	}
	<-started
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMemoEviction(t *testing.T) {
	m := NewMemo[int, int](2)
	for i := 0; i < 5; i++ {
		m.Do(i, func() (int, error) { return i, nil })
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	// Evicted keys recompute.
	var calls int
	m.Do(0, func() (int, error) { calls++; return 0, nil })
	if calls != 1 {
		t.Fatal("evicted key did not recompute")
	}
}

func ExampleMemo() {
	m := NewMemo[string, int](8)
	expensive := func() (int, error) { return 6 * 7, nil }
	v, _, cached := m.Do("answer", expensive)
	fmt.Println(v, cached)
	v, _, cached = m.Do("answer", expensive)
	fmt.Println(v, cached)
	// Output:
	// 42 false
	// 42 true
}
