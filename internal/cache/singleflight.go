package cache

import (
	"sync"
	"sync/atomic"
)

// Group collapses concurrent calls with the same key into one execution:
// the first caller runs fn, later callers block and receive the same
// result. Unlike golang.org/x/sync/singleflight (not vendored here —
// the repo is stdlib-only), results are typed via generics.
type Group[K comparable, V any] struct {
	mu        sync.Mutex
	calls     map[K]*call[V]
	collapses atomic.Uint64
	// waitHook, when set, runs each time a caller attaches to another
	// caller's in-flight computation (test seam for deterministic
	// concurrency tests).
	waitHook func()
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do executes fn once per key among concurrent callers. The shared
// return reports whether this caller received another caller's result
// rather than running fn itself. Panics in fn propagate to the caller
// that ran it; waiters for a panicked call receive the zero value and a
// nil error only if fn also returned them, so fn should not panic in
// normal operation (the service layer wraps solver panics upstream).
func (g *Group[K, V]) Do(k K, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[k]; ok {
		g.mu.Unlock()
		g.collapses.Add(1)
		if g.waitHook != nil {
			g.waitHook()
		}
		<-c.done
		return c.val, c.err, true
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[k] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.calls, k)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// Collapses returns the cumulative number of callers that attached to
// another caller's in-flight computation instead of running fn.
func (g *Group[K, V]) Collapses() uint64 { return g.collapses.Load() }
