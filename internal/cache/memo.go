package cache

// Memo is the cache the allocation service actually uses: an LRU of
// successful results fronted by a single-flight group, so concurrent
// identical requests compute once and subsequent repeats are served
// without recomputation. Errors are never cached — a failed computation
// is retried by the next caller.
type Memo[K comparable, V any] struct {
	lru *LRU[K, V]
	sf  Group[K, V]
}

// NewMemo returns a Memo retaining at most entries successful results.
func NewMemo[K comparable, V any](entries int) *Memo[K, V] {
	return &Memo[K, V]{lru: NewLRU[K, V](entries)}
}

// Do returns the cached value for k, or computes it with fn. Concurrent
// callers with the same key share one fn execution. The cached return
// reports whether the value came from the LRU or from another in-flight
// caller rather than this caller's own fn run.
func (m *Memo[K, V]) Do(k K, fn func() (V, error)) (v V, err error, cached bool) {
	if v, ok := m.lru.Get(k); ok {
		return v, nil, true
	}
	return m.sf.Do(k, func() (V, error) {
		// Re-check under single-flight: a caller that missed the LRU just
		// before a concurrent computation finished would otherwise
		// recompute a value that is already cached.
		if v, ok := m.lru.Get(k); ok {
			return v, nil
		}
		v, err := fn()
		if err == nil {
			m.lru.Add(k, v)
		}
		return v, err
	})
}

// Len returns the number of cached results.
func (m *Memo[K, V]) Len() int { return m.lru.Len() }

// Stats returns cumulative LRU hit and miss counts.
func (m *Memo[K, V]) Stats() (hits, misses uint64) { return m.lru.Stats() }

// MemoStats is a cumulative snapshot of the cache's behavior: LRU
// traffic plus single-flight deduplication.
type MemoStats struct {
	Hits      uint64 // LRU lookups served from memory
	Misses    uint64 // LRU lookups that fell through
	Evictions uint64 // entries dropped by capacity pressure
	Collapses uint64 // callers who shared another caller's computation
}

// StatsAll returns the full cumulative stats (the metrics exporter's
// read path).
func (m *Memo[K, V]) StatsAll() MemoStats {
	h, ms := m.lru.Stats()
	return MemoStats{
		Hits:      h,
		Misses:    ms,
		Evictions: m.lru.Evictions(),
		Collapses: m.sf.Collapses(),
	}
}
