// Package cache provides the result-reuse layer of the allocation
// service: a generic LRU map, a single-flight group that collapses
// concurrent identical computations, and a Memo combining the two so a
// burst of identical requests computes once and later repeats are served
// from memory. The planning workload this exploits — repeated requests
// over mostly-stable topologies — is the norm for mobile-sink services,
// where the same deployment is re-planned tour after tour.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity map with least-recently-used eviction. The
// zero value is not usable; construct with NewLRU. All methods are safe
// for concurrent use.
type LRU[K comparable, V any] struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	items     map[K]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU returns an LRU holding at most capacity entries (minimum 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[K]*list.Element, capacity),
	}
}

// Get returns the value for k and marks it most recently used.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[k]; ok {
		l.order.MoveToFront(el)
		l.hits++
		return el.Value.(*lruEntry[K, V]).val, true
	}
	l.misses++
	var zero V
	return zero, false
}

// Add inserts or refreshes k→v, evicting the least recently used entry
// when over capacity.
func (l *LRU[K, V]) Add(k K, v V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		l.order.MoveToFront(el)
		return
	}
	l.items[k] = l.order.PushFront(&lruEntry[K, V]{key: k, val: v})
	if l.order.Len() > l.capacity {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry[K, V]).key)
		l.evictions++
	}
}

// Remove drops k if present, reporting whether it was there.
func (l *LRU[K, V]) Remove(k K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[k]
	if !ok {
		return false
	}
	l.order.Remove(el)
	delete(l.items, k)
	return true
}

// Len returns the current entry count.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Stats returns cumulative hit and miss counts for Get.
func (l *LRU[K, V]) Stats() (hits, misses uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses
}

// Evictions returns the cumulative count of capacity evictions
// (explicit Removes are not evictions).
func (l *LRU[K, V]) Evictions() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}
