package fair

import (
	"math"
	"math/rand"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func buildInstance(t *testing.T, n int, seed int64) *core.Instance {
	t.Helper()
	dep, err := network.Generate(network.PaperParams(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	sun := energy.PaperSolar(energy.Sunny)
	if err := dep.AssignSteadyStateBudgets(sun, 3*2000, 0.5, rng); err != nil {
		t.Fatal(err)
	}
	inst, err := core.BuildInstance(dep, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestWaterFillNil(t *testing.T) {
	if _, err := WaterFill(nil); err == nil {
		t.Error("expected nil error")
	}
}

func TestWaterFillFeasible(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		inst := buildInstance(t, 120, seed)
		a, err := WaterFill(inst)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := inst.Validate(a); err != nil || math.Abs(v-a.Data) > 1e-6 {
			t.Fatalf("seed %d: infeasible or inconsistent: %v", seed, err)
		}
		if a.Data <= 0 {
			t.Fatal("waterfill collected nothing")
		}
	}
}

func TestJainIndex(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Error("empty")
	}
	if JainIndex([]float64{0, 0}) != 0 {
		t.Error("all-zero")
	}
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares = %v, want 1", got)
	}
	if got := JainIndex([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("monopoly = %v, want 0.25", got)
	}
	if got := JainIndex([]float64{1, 2}); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Jain(1,2) = %v, want 0.9", got)
	}
}

// Water filling trades total throughput for spread: its Jain index should
// beat the throughput-optimal matching's on average, while its total stays
// below.
func TestFairnessVsThroughputTradeoff(t *testing.T) {
	fp, _ := radio.NewFixedPower(radio.Paper2013(), 0.3)
	var jainWF, jainMM, totWF, totMM float64
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		dep, err := network.Generate(network.PaperParams(150, seed))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		sun := energy.PaperSolar(energy.Sunny)
		if err := dep.AssignSteadyStateBudgets(sun, 3*2000, 0.5, rng); err != nil {
			t.Fatal(err)
		}
		inst, err := core.BuildInstance(dep, fp, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		wf, err := WaterFill(inst)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := core.OfflineMaxMatch(inst)
		if err != nil {
			t.Fatal(err)
		}
		if wf.Data > mm.Data+1e-6 {
			t.Fatalf("seed %d: waterfill %v above the throughput optimum %v", seed, wf.Data, mm.Data)
		}
		jainWF += Coverage(inst, wf).Jain
		jainMM += Coverage(inst, mm).Jain
		totWF += wf.Data
		totMM += mm.Data
	}
	if jainWF <= jainMM {
		t.Errorf("waterfill Jain %v should exceed matching Jain %v on average", jainWF/trials, jainMM/trials)
	}
	if totWF > totMM {
		t.Errorf("waterfill total %v cannot exceed optimum total %v", totWF, totMM)
	}
	// The fairness price is real (~2× here: far sensors burn their energy
	// on 4.8 kbps slots) but should not be catastrophic.
	if totWF < 0.3*totMM {
		t.Errorf("waterfill total %v below 30%% of the optimum %v", totWF, totMM)
	}
}

func TestPerSensorDataAndCoverage(t *testing.T) {
	inst := buildInstance(t, 60, 9)
	a, err := WaterFill(inst)
	if err != nil {
		t.Fatal(err)
	}
	per := PerSensorData(inst, a)
	sum := 0.0
	for _, x := range per {
		sum += x
	}
	if math.Abs(sum-a.Data) > 1e-6 {
		t.Errorf("per-sensor sum %v != total %v", sum, a.Data)
	}
	st := Coverage(inst, a)
	if st.Served > st.Eligible {
		t.Errorf("served %d > eligible %d", st.Served, st.Eligible)
	}
	if st.Jain < 0 || st.Jain > 1 {
		t.Errorf("Jain = %v", st.Jain)
	}
	if st.Served > 0 && st.MinServed <= 0 {
		t.Errorf("MinServed = %v with %d served", st.MinServed, st.Served)
	}
}

func TestMinDataAndSortedShares(t *testing.T) {
	inst := buildInstance(t, 80, 11)
	wf, _ := WaterFill(inst)
	mm, err := core.OfflineAppro(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Max-min objective: water filling should not have a smaller minimum
	// than the throughput-oriented allocation (usually strictly larger).
	if MinData(inst, wf) < MinData(inst, mm)-1e-9 {
		t.Errorf("waterfill min %v below appro min %v", MinData(inst, wf), MinData(inst, mm))
	}
	shares := SortedShares(inst, wf)
	for i := 1; i < len(shares); i++ {
		if shares[i] < shares[i-1] {
			t.Fatal("shares not sorted")
		}
	}
	if len(shares) != len(inst.Sensors) {
		t.Fatal("share count mismatch")
	}
}
