// Package fair provides fairness-oriented slot allocation and fairness
// metrics. The paper maximizes total collected data; the related work it
// builds on (Liu et al., its refs. [14][16]) instead targets lexicographic
// max-min fairness across sensors. WaterFill is a progressive-filling
// heuristic for that objective on the same slot/energy model, enabling the
// throughput-vs-fairness comparison; JainIndex quantifies the difference.
package fair

import (
	"context"
	"errors"
	"sort"

	"mobisink/internal/core"
)

// WaterFill allocates slots by progressive filling: repeatedly give the
// currently poorest sensor (least collected data) its highest-rate
// affordable unassigned slot, freezing sensors that cannot be improved.
// The result approximates lexicographic max-min fairness; it is always
// feasible. On fleet instances every sink's window competes, and a sensor
// never claims two slots of the same absolute time slot (the cross-sink
// constraint).
func WaterFill(inst *core.Instance) (*core.Allocation, error) {
	return WaterFillCtx(context.Background(), inst)
}

// WaterFillCtx is WaterFill with cancellation: the context is polled once
// per filling step (each step scans one sensor's windows).
func WaterFillCtx(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
	if inst == nil {
		return nil, errors.New("fair: nil instance")
	}
	alloc := inst.NewAllocation()
	n := len(inst.Sensors)
	data := make([]float64, n)
	budget := make([]float64, n)
	active := make([]bool, n)
	for i := range inst.Sensors {
		budget[i] = inst.Sensors[i].Budget
		active[i] = inst.Sensors[i].Start >= 0
	}
	// absUsed[i] records sensor i's claimed absolute slots on fleet
	// instances; nil for K=1, where global slots are absolute slots and
	// SlotOwner already excludes double claims.
	var absUsed []map[int]bool
	if inst.NumSinks() > 1 {
		absUsed = make([]map[int]bool, n)
	}
	// Order of consideration among equal-data sensors: by id, for
	// determinism.
	remaining := 0
	for _, a := range active {
		if a {
			remaining++
		}
	}
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Poorest active sensor.
		pick := -1
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			if pick == -1 || data[i] < data[pick] {
				pick = i
			}
		}
		s := &inst.Sensors[pick]
		// Its best affordable unassigned slot across every window.
		bestSlot, bestRate := -1, 0.0
		consider := func(start int, rates, powers []float64) {
			for k, r := range rates {
				j := start + k
				if alloc.SlotOwner[j] != -1 {
					continue
				}
				p := powers[k]
				if r <= 0 || p <= 0 || p*inst.Tau > budget[pick]+1e-12 {
					continue
				}
				if absUsed != nil && absUsed[pick][inst.AbsSlot(j)] {
					continue
				}
				if r > bestRate {
					bestRate, bestSlot = r, j
				}
			}
		}
		consider(s.Start, s.Rates, s.Powers)
		for wi := range s.More {
			w := &s.More[wi]
			consider(w.Start, w.Rates, w.Powers)
		}
		if bestSlot == -1 {
			active[pick] = false
			remaining--
			continue
		}
		alloc.SlotOwner[bestSlot] = pick
		if absUsed != nil {
			if absUsed[pick] == nil {
				absUsed[pick] = make(map[int]bool)
			}
			absUsed[pick][inst.AbsSlot(bestSlot)] = true
		}
		budget[pick] -= s.PowerAt(bestSlot) * inst.Tau
		data[pick] += bestRate * inst.Tau
	}
	inst.RecomputeData(alloc)
	return alloc, nil
}

// PerSensorData returns each sensor's collected data under an allocation,
// in bits.
func PerSensorData(inst *core.Instance, a *core.Allocation) []float64 {
	out := make([]float64, len(inst.Sensors))
	for j, i := range a.SlotOwner {
		if i >= 0 && i < len(out) {
			out[i] += inst.Sensors[i].RateAt(j) * inst.Tau
		}
	}
	return out
}

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over the
// *served* population given by xs; it is 1 for perfectly equal shares and
// 1/n when one member takes everything. Empty or all-zero input yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CoverageStats summarizes how the collected data is spread over sensors.
type CoverageStats struct {
	Served    int     // sensors with any collected data
	Eligible  int     // sensors with a nonempty window and positive budget
	MinServed float64 // minimum nonzero per-sensor data, bits
	Jain      float64 // Jain index over eligible sensors
}

// Coverage computes CoverageStats of an allocation.
func Coverage(inst *core.Instance, a *core.Allocation) CoverageStats {
	per := PerSensorData(inst, a)
	var st CoverageStats
	var eligibleData []float64
	for i, x := range per {
		s := &inst.Sensors[i]
		eligible := s.Start >= 0 && s.Budget > 0
		if eligible {
			st.Eligible++
			eligibleData = append(eligibleData, x)
		}
		if x > 0 {
			st.Served++
			if st.MinServed == 0 || x < st.MinServed {
				st.MinServed = x
			}
		}
	}
	st.Jain = JainIndex(eligibleData)
	return st
}

// MinData returns the minimum per-sensor data over sensors that could have
// been served (nonempty window, budget covering at least one of their
// slots); this is the quantity lexicographic max-min maximizes first.
func MinData(inst *core.Instance, a *core.Allocation) float64 {
	per := PerSensorData(inst, a)
	min := -1.0
	for i, x := range per {
		s := &inst.Sensors[i]
		if s.Start < 0 {
			continue
		}
		affordable := false
		check := func(rates, powers []float64) {
			for k, r := range rates {
				p := powers[k]
				if p > 0 && p*inst.Tau <= s.Budget+1e-12 && r > 0 {
					affordable = true
					return
				}
			}
		}
		check(s.Rates, s.Powers)
		for wi := range s.More {
			if affordable {
				break
			}
			check(s.More[wi].Rates, s.More[wi].Powers)
		}
		if !affordable {
			continue
		}
		if min < 0 || x < min {
			min = x
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// SortedShares returns the per-sensor data vector in ascending order —
// the lexicographic objective the max-min literature compares.
func SortedShares(inst *core.Instance, a *core.Allocation) []float64 {
	per := PerSensorData(inst, a)
	sort.Float64s(per)
	return per
}
