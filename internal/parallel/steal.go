package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// StealStats reports how a ForEachStealing run balanced itself: Tasks is
// the number of tasks executed, Steals how many of them a worker claimed
// from another worker's chunk after draining its own.
type StealStats struct {
	Tasks  int64
	Steals int64
}

// chunk is one worker's contiguous task range [next, limit). The cursor is
// claimed with CAS so idle workers can steal from the tail without
// coordination; padding keeps neighboring cursors off one cache line.
type chunk struct {
	next  atomic.Int64
	limit int64
	_     [48]byte
}

func (c *chunk) claim() int64 {
	for {
		v := c.next.Load()
		if v >= c.limit {
			return -1
		}
		if c.next.CompareAndSwap(v, v+1) {
			return v
		}
	}
}

// ForEachStealing runs fn(i) for every i in [0, n) on a work-stealing pool
// of `workers` goroutines (GOMAXPROCS when workers ≤ 0): the index range
// is split into per-worker contiguous chunks, each worker drains its own
// chunk first, then claims from other workers' chunks. Compared to ForEach
// this keeps long-running tasks from serializing behind a static
// partition, at the cost of nondeterministic execution order — results
// must still go into caller-owned index-addressed storage. All tasks run
// even if some fail; the returned error joins every task error in index
// order, and panics are captured as errors like ForEach.
func ForEachStealing(n, workers int, fn func(i int) error) (StealStats, error) {
	if n < 0 {
		return StealStats{}, fmt.Errorf("parallel: negative task count %d", n)
	}
	if fn == nil {
		return StealStats{}, errors.New("parallel: nil task function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return StealStats{}, nil
	}
	chunks := make([]chunk, workers)
	for w := 0; w < workers; w++ {
		chunks[w].next.Store(int64(w * n / workers))
		chunks[w].limit = int64((w + 1) * n / workers)
	}
	errs := make([]error, n)
	run := func(i int64) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("parallel: task %d panicked: %v", i, r)
			}
		}()
		errs[i] = fn(int(i))
	}
	var steals atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := chunks[w].claim()
				if i < 0 {
					break
				}
				run(i)
			}
			// Own chunk drained: steal from the others round-robin.
			for off := 1; off < workers; off++ {
				victim := &chunks[(w+off)%workers]
				for {
					i := victim.claim()
					if i < 0 {
						break
					}
					steals.Add(1)
					run(i)
				}
			}
		}(w)
	}
	wg.Wait()
	var nonNil []error
	for _, err := range errs {
		if err != nil {
			nonNil = append(nonNil, err)
		}
	}
	return StealStats{Tasks: int64(n), Steals: steals.Load()}, errors.Join(nonNil...)
}
