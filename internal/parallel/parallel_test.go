package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	const n = 100
	var hits [n]int32
	err := ForEach(n, 7, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	var cur, max int32
	err := ForEach(50, 3, func(i int) error {
		c := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max > 3 {
		t.Fatalf("observed %d concurrent tasks, limit 3", max)
	}
}

func TestForEachCollectsErrors(t *testing.T) {
	wantA := errors.New("a")
	err := ForEach(5, 2, func(i int) error {
		if i == 1 {
			return wantA
		}
		if i == 3 {
			return fmt.Errorf("b%d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected joined error")
	}
	if !errors.Is(err, wantA) {
		t.Error("joined error lost identity")
	}
	if !strings.Contains(err.Error(), "b3") {
		t.Error("second error missing")
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	err := ForEach(4, 2, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not reported: %v", err)
	}
}

func TestForEachValidation(t *testing.T) {
	if err := ForEach(-1, 1, func(int) error { return nil }); err == nil {
		t.Error("expected negative-count error")
	}
	if err := ForEach(3, 1, nil); err == nil {
		t.Error("expected nil-fn error")
	}
	if err := ForEach(0, 1, func(int) error { return errors.New("x") }); err != nil {
		t.Error("zero tasks must succeed")
	}
}

func TestMap(t *testing.T) {
	out, err := Map(10, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	_, err = Map(3, 1, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil {
		t.Error("expected error")
	}
	if _, err := Map[int](3, 1, nil); err == nil {
		t.Error("expected nil-fn error")
	}
}
