// Package parallel provides the bounded fork-join primitive used by the
// experiment harness: run n independent index-addressed tasks with a fixed
// worker budget, collect every error, and keep results deterministic by
// writing into caller-owned, index-addressed storage.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Sem is a counting semaphore bounding concurrent work. It is the
// channel-of-tokens idiom ForEach has always used, exported so other
// bounded pools (notably internal/jobs' worker pool) share one
// implementation instead of re-deriving it.
type Sem chan struct{}

// NewSem returns a semaphore with n slots (GOMAXPROCS when n ≤ 0).
func NewSem(n int) Sem {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return make(Sem, n)
}

// Acquire blocks until a slot is free.
func (s Sem) Acquire() { s <- struct{}{} }

// TryAcquire takes a slot without blocking, reporting whether it got one.
func (s Sem) TryAcquire() bool {
	select {
	case s <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire.
func (s Sem) Release() { <-s }

// Cap returns the slot count.
func (s Sem) Cap() int { return cap(s) }

// ForEach runs fn(i) for every i in [0, n) using at most `workers`
// concurrent goroutines (GOMAXPROCS when workers ≤ 0). All tasks run even
// if some fail; the returned error joins every task error in index order.
// fn must write its result into caller-owned storage at index i — that
// keeps aggregation deterministic regardless of scheduling.
func ForEach(n, workers int, fn func(i int) error) error {
	if n < 0 {
		return fmt.Errorf("parallel: negative task count %d", n)
	}
	if fn == nil {
		return errors.New("parallel: nil task function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := NewSem(workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem.Acquire()
		go func(i int) {
			defer wg.Done()
			defer sem.Release()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("parallel: task %d panicked: %v", i, r)
				}
			}()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	var nonNil []error
	for _, err := range errs {
		if err != nil {
			nonNil = append(nonNil, err)
		}
	}
	return errors.Join(nonNil...)
}

// Map runs fn over [0, n) and returns the results in index order; the
// first error (by index) aborts nothing but is reported joined.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, errors.New("parallel: nil task function")
	}
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
