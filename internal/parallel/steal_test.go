package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachStealingRunsEveryIndexOnce(t *testing.T) {
	const n = 1000
	counts := make([]int32, n)
	stats, err := ForEachStealing(n, 8, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	if stats.Tasks != n {
		t.Fatalf("stats.Tasks = %d, want %d", stats.Tasks, n)
	}
	if stats.Steals < 0 || stats.Steals > n {
		t.Fatalf("stats.Steals = %d out of range", stats.Steals)
	}
}

func TestForEachStealingSmallAndEmpty(t *testing.T) {
	if stats, err := ForEachStealing(0, 4, func(int) error { t.Fatal("ran"); return nil }); err != nil || stats.Tasks != 0 {
		t.Fatalf("n=0: stats=%+v err=%v", stats, err)
	}
	ran := false
	if _, err := ForEachStealing(1, 0, func(i int) error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("n=1 workers=0: ran=%v err=%v", ran, err)
	}
}

// TestForEachStealingStealsUnderSkew gives the first worker's chunk all
// the slow tasks; the other workers must steal from it.
func TestForEachStealingStealsUnderSkew(t *testing.T) {
	const n, workers = 64, 4
	var ran atomic.Int32
	stats, err := ForEachStealing(n, workers, func(i int) error {
		if i < n/workers {
			time.Sleep(2 * time.Millisecond) // first chunk is slow
		}
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(ran.Load()) != n {
		t.Fatalf("ran %d of %d tasks", ran.Load(), n)
	}
	if stats.Steals == 0 {
		t.Fatal("no steals under a maximally skewed chunk")
	}
}

func TestForEachStealingJoinsErrorsInIndexOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := ForEachStealing(10, 3, func(i int) error {
		switch i {
		case 2:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error %v missing a task error", err)
	}
}

func TestForEachStealingRecoversPanic(t *testing.T) {
	var ran atomic.Int32
	_, err := ForEachStealing(20, 4, func(i int) error {
		if i == 5 {
			panic(fmt.Sprintf("task %d exploded", i))
		}
		ran.Add(1)
		return nil
	})
	if err == nil {
		t.Fatal("panic was swallowed without an error")
	}
	if ran.Load() != 19 {
		t.Fatalf("panic stopped siblings: only %d of 19 clean tasks ran", ran.Load())
	}
}
