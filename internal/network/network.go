// Package network defines sensor deployments for the highway-monitoring
// scenario: homogeneous energy-harvesting sensors randomly placed along a
// pre-defined path, each with a per-tour energy budget derived from its
// harvester (paper §II.A-B, §VII.A).
package network

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"mobisink/internal/energy"
	"mobisink/internal/geom"
)

// Sensor is one stationary node.
type Sensor struct {
	ID     int        `json:"id"`
	Pos    geom.Point `json:"pos"`
	Budget float64    `json:"budget"` // energy available this tour, J
}

// SinkSpec describes one mobile sink of a fleet: its own tour path and
// cruise speed. A zero Speed defers to the speed supplied at
// instance-build time; an empty path (no waypoints, zero PathLength)
// defers to the deployment's own path.
type SinkSpec struct {
	// Speed is the sink's cruise speed in m/s; 0 means "use the default
	// speed passed to the instance builder".
	Speed float64 `json:"speed,omitempty"`
	// PathLength is the straight-line tour length along the x-axis when
	// Waypoints is empty; 0 falls back to the deployment's PathLength.
	PathLength float64 `json:"path_length,omitempty"`
	// Waypoints, when at least two are given, switch the sink to a
	// piecewise-linear tour path.
	Waypoints []geom.Point `json:"waypoints,omitempty"`
}

// Path returns the sink's tour path, falling back to the deployment-level
// straight highway of length depLen when the spec carries no path of its
// own.
func (sp *SinkSpec) Path(depLen float64) (geom.Path, error) {
	if len(sp.Waypoints) >= 2 {
		return geom.NewPolyline(sp.Waypoints)
	}
	if len(sp.Waypoints) == 1 {
		return nil, errors.New("network: sink spec with a single waypoint")
	}
	l := sp.PathLength
	if l == 0 {
		l = depLen
	}
	if l <= 0 {
		return nil, fmt.Errorf("network: sink spec with non-positive path length %v", l)
	}
	return geom.HighwayLine(l), nil
}

// Deployment is a set of sensors along a tour path. By default the path is
// a straight line of PathLength meters along the x-axis (the paper's
// setting); supplying at least two Waypoints switches to a piecewise-linear
// road instead (the paper notes the extension to real road shapes is
// straightforward — this is it).
//
// Sinks, when non-empty, declares a fleet of K mobile sinks, each with its
// own path and speed; deployments without the field (all pre-fleet JSON)
// keep the implicit single sink on the deployment path, so K=1 is the
// backward-compatible default.
type Deployment struct {
	PathLength float64      `json:"path_length"` // meters
	MaxOffset  float64      `json:"max_offset"`  // max sensor distance from the path, meters
	Waypoints  []geom.Point `json:"waypoints,omitempty"`
	Sinks      []SinkSpec   `json:"sinks,omitempty"`
	Sensors    []Sensor     `json:"sensors"`
}

// NumSinks returns the fleet size: len(Sinks), or 1 for the implicit
// single-sink (legacy) deployment.
func (d *Deployment) NumSinks() int {
	if len(d.Sinks) == 0 {
		return 1
	}
	return len(d.Sinks)
}

// SinkSpecs returns the fleet as an explicit spec list; legacy deployments
// yield one implicit spec riding on the deployment path.
func (d *Deployment) SinkSpecs() []SinkSpec {
	if len(d.Sinks) == 0 {
		return []SinkSpec{{PathLength: d.PathLength, Waypoints: d.Waypoints}}
	}
	return d.Sinks
}

// SinkPath returns sink k's tour path.
func (d *Deployment) SinkPath(k int) (geom.Path, error) {
	specs := d.SinkSpecs()
	if k < 0 || k >= len(specs) {
		return nil, fmt.Errorf("network: sink %d out of range (fleet of %d)", k, len(specs))
	}
	return specs[k].Path(d.PathLength)
}

// SplitSinks replaces the fleet with k sinks that split the deployment's
// straight highway into k contiguous equal segments: sink i tours
// [i·L/k, (i+1)·L/k] as a two-waypoint path at speeds[i] m/s (a single
// speed is broadcast to all sinks; nil keeps every Speed at 0, deferring
// to the build-time default). It errors on waypoint deployments — splitting
// a polyline is the caller's business.
func (d *Deployment) SplitSinks(k int, speeds []float64) error {
	if k < 1 {
		return fmt.Errorf("network: fleet size must be at least 1, got %d", k)
	}
	if len(d.Waypoints) > 0 {
		return errors.New("network: SplitSinks requires a straight-line deployment")
	}
	if d.PathLength <= 0 {
		return errors.New("network: SplitSinks on a deployment without a path")
	}
	if len(speeds) != 0 && len(speeds) != 1 && len(speeds) != k {
		return fmt.Errorf("network: %d speeds for %d sinks", len(speeds), k)
	}
	seg := d.PathLength / float64(k)
	sinks := make([]SinkSpec, k)
	for i := range sinks {
		sp := SinkSpec{Waypoints: []geom.Point{
			{X: float64(i) * seg, Y: 0},
			{X: float64(i+1) * seg, Y: 0},
		}}
		switch len(speeds) {
		case 1:
			sp.Speed = speeds[0]
		case k:
			sp.Speed = speeds[i]
		}
		if sp.Speed < 0 {
			return fmt.Errorf("network: negative speed %v for sink %d", sp.Speed, i)
		}
		sinks[i] = sp
	}
	d.Sinks = sinks
	return nil
}

// Params configures random topology generation.
type Params struct {
	N          int     // number of sensors
	PathLength float64 // L, meters (paper: 10 000)
	MaxOffset  float64 // max sensor distance from the path (paper: 180)
	Seed       int64   // RNG seed; same seed → same topology
}

// PaperParams returns the paper's §VII.A topology defaults for n sensors.
func PaperParams(n int, seed int64) Params {
	return Params{N: n, PathLength: 10000, MaxOffset: 180, Seed: seed}
}

// Generate places N sensors uniformly at random along the path: x uniform in
// [0, L], y uniform in [−MaxOffset, +MaxOffset]. Budgets start at zero; use
// a budget assigner before building a problem instance.
func Generate(p Params) (*Deployment, error) {
	switch {
	case p.N <= 0:
		return nil, fmt.Errorf("network: sensor count must be positive, got %d", p.N)
	case p.PathLength <= 0:
		return nil, fmt.Errorf("network: path length must be positive, got %v", p.PathLength)
	case p.MaxOffset < 0:
		return nil, fmt.Errorf("network: negative max offset %v", p.MaxOffset)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	d := &Deployment{PathLength: p.PathLength, MaxOffset: p.MaxOffset}
	d.Sensors = make([]Sensor, p.N)
	for i := range d.Sensors {
		d.Sensors[i] = Sensor{
			ID: i,
			Pos: geom.Point{
				X: rng.Float64() * p.PathLength,
				Y: (2*rng.Float64() - 1) * p.MaxOffset,
			},
		}
	}
	return d, nil
}

// Validate checks deployment invariants.
func (d *Deployment) Validate() error {
	if d.PathLength <= 0 {
		return errors.New("network: non-positive path length")
	}
	if len(d.Sensors) == 0 {
		return errors.New("network: empty deployment")
	}
	curved := len(d.Waypoints) > 0
	var path geom.Path
	if curved {
		pl, err := geom.NewPolyline(d.Waypoints)
		if err != nil {
			return fmt.Errorf("network: bad waypoints: %w", err)
		}
		if diff := pl.Length() - d.PathLength; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("network: path length %v does not match waypoints length %v", d.PathLength, pl.Length())
		}
		path = pl
	}
	var sinkPaths []geom.Path
	for k := range d.Sinks {
		sp := &d.Sinks[k]
		if sp.Speed < 0 {
			return fmt.Errorf("network: sink %d has negative speed %v", k, sp.Speed)
		}
		p, err := sp.Path(d.PathLength)
		if err != nil {
			return fmt.Errorf("network: sink %d: %w", k, err)
		}
		sinkPaths = append(sinkPaths, p)
	}
	for i, s := range d.Sensors {
		if s.ID != i {
			return fmt.Errorf("network: sensor %d has ID %d (IDs must be dense)", i, s.ID)
		}
		if s.Budget < 0 {
			return fmt.Errorf("network: sensor %d has negative budget", i)
		}
		if len(sinkPaths) > 0 {
			// Fleet deployments: every sensor must sit within MaxOffset of
			// at least one sink's tour (a sensor no sink can ever hear is a
			// deployment bug, not a solver input).
			if d.MaxOffset > 0 {
				near := false
				for _, p := range sinkPaths {
					if _, _, ok := p.CoverInterval(s.Pos, d.MaxOffset+1e-9); ok {
						near = true
						break
					}
				}
				if !near {
					return fmt.Errorf("network: sensor %d farther than %v m from every sink path", i, d.MaxOffset)
				}
			}
			continue
		}
		if curved {
			if d.MaxOffset > 0 {
				if _, _, ok := path.CoverInterval(s.Pos, d.MaxOffset+1e-9); !ok {
					return fmt.Errorf("network: sensor %d farther than %v m from the path", i, d.MaxOffset)
				}
			}
			continue
		}
		if s.Pos.X < 0 || s.Pos.X > d.PathLength {
			return fmt.Errorf("network: sensor %d x=%v outside [0, %v]", i, s.Pos.X, d.PathLength)
		}
		if d.MaxOffset > 0 && (s.Pos.Y < -d.MaxOffset || s.Pos.Y > d.MaxOffset) {
			return fmt.Errorf("network: sensor %d y=%v outside ±%v", i, s.Pos.Y, d.MaxOffset)
		}
	}
	return nil
}

// Path returns the deployment's tour path: the waypoint polyline when
// present, the canonical straight highway otherwise.
func (d *Deployment) Path() geom.Path {
	if len(d.Waypoints) >= 2 {
		pl, err := geom.NewPolyline(d.Waypoints)
		if err == nil {
			return pl
		}
	}
	return geom.HighwayLine(d.PathLength)
}

// GenerateAlong places n sensors uniformly along an arbitrary waypoint
// path: a uniform arc-length position plus a uniform perpendicular offset
// in [−maxOffset, +maxOffset] relative to the local road direction.
func GenerateAlong(waypoints []geom.Point, n int, maxOffset float64, seed int64) (*Deployment, error) {
	pl, err := geom.NewPolyline(waypoints)
	if err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	if n <= 0 {
		return nil, fmt.Errorf("network: sensor count must be positive, got %d", n)
	}
	if maxOffset < 0 {
		return nil, fmt.Errorf("network: negative max offset %v", maxOffset)
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Deployment{
		PathLength: pl.Length(),
		MaxOffset:  maxOffset,
		Waypoints:  append([]geom.Point(nil), waypoints...),
	}
	d.Sensors = make([]Sensor, n)
	for i := range d.Sensors {
		s := rng.Float64() * pl.Length()
		at := pl.At(s)
		// Local tangent by central difference; rotate 90° for the normal.
		const h = 0.5
		a, b := pl.At(s-h), pl.At(s+h)
		dir := b.Sub(a)
		norm := dir.Norm()
		off := (2*rng.Float64() - 1) * maxOffset
		pos := at
		if norm > 0 {
			normal := geom.Point{X: -dir.Y / norm, Y: dir.X / norm}
			pos = at.Add(normal.Scale(off))
		}
		// Corners can push the perpendicular offset beyond maxOffset as
		// measured to the nearest path point; clamp by resampling.
		if maxOffset > 0 {
			if _, _, ok := pl.CoverInterval(pos, maxOffset); !ok {
				pos = at
			}
		}
		d.Sensors[i] = Sensor{ID: i, Pos: pos}
	}
	return d, nil
}

// AssignSteadyStateBudgets sets every sensor's per-tour budget to the
// steady-state harvest of the given harvester over one tour: with tours
// running back to back and the battery (capacity ≫ per-tour spend) smoothing
// the diurnal cycle, a perpetually-operating sensor can spend on average
// exactly what it harvests — avgPower·tourDuration (paper §II.B's perpetual
// operation constraint). jitter ∈ [0, 1) adds per-sensor multiplicative
// heterogeneity (panel orientation, shading): budget scaled by a uniform
// factor in [1−jitter, 1].
func (d *Deployment) AssignSteadyStateBudgets(h energy.Harvester, tourDuration, jitter float64, rng *rand.Rand) error {
	if h == nil {
		return errors.New("network: nil harvester")
	}
	if tourDuration <= 0 {
		return fmt.Errorf("network: tour duration must be positive, got %v", tourDuration)
	}
	if jitter < 0 || jitter >= 1 {
		return fmt.Errorf("network: jitter must be in [0,1), got %v", jitter)
	}
	if jitter > 0 && rng == nil {
		return errors.New("network: jitter requires an RNG")
	}
	const horizon = 48 * 3600.0
	avgPower := h.EnergyBetween(0, horizon) / horizon
	base := avgPower * tourDuration
	for i := range d.Sensors {
		f := 1.0
		if jitter > 0 {
			f = 1 - jitter*rng.Float64()
		}
		d.Sensors[i].Budget = base * f
	}
	return nil
}

// SetUniformBudgets sets every sensor's budget to b Joules.
func (d *Deployment) SetUniformBudgets(b float64) error {
	if b < 0 {
		return fmt.Errorf("network: negative budget %v", b)
	}
	for i := range d.Sensors {
		d.Sensors[i].Budget = b
	}
	return nil
}

// CoverageGaps returns the slot indices (for the given trajectory and range)
// that no sensor can serve. The paper assumes dense deployment — at least
// one sensor audible per interval; this reports how well a topology meets
// that.
func (d *Deployment) CoverageGaps(tr *geom.Trajectory, rng float64) []int {
	covered := make([]bool, tr.SlotCount)
	for _, s := range d.Sensors {
		j0, j1, ok := tr.SlotWindow(s.Pos, rng)
		if !ok {
			continue
		}
		for j := j0; j <= j1; j++ {
			covered[j] = true
		}
	}
	var gaps []int
	for j, c := range covered {
		if !c {
			gaps = append(gaps, j)
		}
	}
	return gaps
}

// MarshalJSON round-trips deployments for cmd/netgen.
func (d *Deployment) MarshalJSON() ([]byte, error) {
	type alias Deployment
	return json.Marshal((*alias)(d))
}

// UnmarshalJSON parses and validates a deployment.
func (d *Deployment) UnmarshalJSON(data []byte) error {
	type alias Deployment
	if err := json.Unmarshal(data, (*alias)(d)); err != nil {
		return err
	}
	return d.Validate()
}
