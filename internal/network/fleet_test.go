package network

import (
	"encoding/json"
	"reflect"
	"testing"

	"mobisink/internal/geom"
)

func TestSinkSpecPath(t *testing.T) {
	empty := SinkSpec{}
	p, err := empty.Path(500)
	if err != nil || p.Length() != 500 {
		t.Fatalf("empty spec path: %v, %v", p, err)
	}
	long := SinkSpec{PathLength: 1200}
	if p, err = long.Path(500); err != nil || p.Length() != 1200 {
		t.Fatalf("explicit-length spec path: %v, %v", p, err)
	}
	way := SinkSpec{Waypoints: []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}}
	if p, err = way.Path(500); err != nil || p.Length() != 5 {
		t.Fatalf("waypoint spec path: %v, %v", p, err)
	}
	if _, err = (&SinkSpec{Waypoints: []geom.Point{{X: 1, Y: 1}}}).Path(500); err == nil {
		t.Fatal("single-waypoint spec accepted")
	}
	if _, err = (&SinkSpec{}).Path(0); err == nil {
		t.Fatal("pathless spec with no fallback accepted")
	}
}

func TestSplitSinks(t *testing.T) {
	d, _ := Generate(PaperParams(10, 4))
	_ = d.SetUniformBudgets(1)
	if err := d.SplitSinks(4, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if d.NumSinks() != 4 {
		t.Fatalf("NumSinks = %d, want 4", d.NumSinks())
	}
	totalLen := 0.0
	for k := range d.Sinks {
		if d.Sinks[k].Speed != 5 {
			t.Fatalf("sink %d speed %v, want broadcast 5", k, d.Sinks[k].Speed)
		}
		p, err := d.SinkPath(k)
		if err != nil {
			t.Fatal(err)
		}
		totalLen += p.Length()
	}
	if diff := totalLen - d.PathLength; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("segments sum to %v, deployment path is %v", totalLen, d.PathLength)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("split deployment invalid: %v", err)
	}

	if err := d.SplitSinks(0, nil); err == nil {
		t.Fatal("zero-sink split accepted")
	}
	if err := d.SplitSinks(2, []float64{1, 2, 3}); err == nil {
		t.Fatal("mismatched speed count accepted")
	}
	if err := d.SplitSinks(2, []float64{-1}); err == nil {
		t.Fatal("negative speed accepted")
	}
}

// TestFleetJSONRoundTrip: deployments with per-sink specs — waypoint
// paths, speeds, explicit lengths — must survive Marshal/Unmarshal
// byte-exactly, and legacy JSON without a sinks field must keep decoding
// as the implicit single sink.
func TestFleetJSONRoundTrip(t *testing.T) {
	d, _ := Generate(PaperParams(15, 11))
	_ = d.SetUniformBudgets(2)
	if err := d.SplitSinks(2, []float64{4, 9}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Deployment
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Sinks, d.Sinks) {
		t.Fatalf("sink specs lost in round trip: %+v vs %+v", back.Sinks, d.Sinks)
	}
	if !reflect.DeepEqual(back.Sensors, d.Sensors) {
		t.Fatal("sensors lost in round trip")
	}
	for k := range d.Sinks {
		if len(back.Sinks[k].Waypoints) != 2 {
			t.Fatalf("sink %d waypoints lost", k)
		}
	}

	// Legacy JSON (no sinks field) keeps the implicit single sink.
	var legacy Deployment
	legacyJSON, _ := json.Marshal(&Deployment{
		PathLength: 100, MaxOffset: 10,
		Sensors: []Sensor{{ID: 0, Pos: geom.Point{X: 50, Y: 5}, Budget: 1}},
	})
	if err := json.Unmarshal(legacyJSON, &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.NumSinks() != 1 || legacy.Sinks != nil {
		t.Fatalf("legacy JSON decoded to %d sinks (%+v)", legacy.NumSinks(), legacy.Sinks)
	}
	specs := legacy.SinkSpecs()
	if len(specs) != 1 || specs[0].PathLength != 100 {
		t.Fatalf("implicit spec = %+v", specs)
	}

	// Unmarshal validates fleet fields too.
	bad := `{"path_length":100,"sinks":[{"speed":-2}],"sensors":[{"id":0,"pos":{"x":1,"y":0},"budget":1}]}`
	if err := json.Unmarshal([]byte(bad), &back); err == nil {
		t.Error("negative sink speed accepted on unmarshal")
	}
}

// TestValidateFleetCoverage: with explicit sinks, a sensor out of range
// of every sink path is rejected even if it sits near the deployment
// path.
func TestValidateFleetCoverage(t *testing.T) {
	d := &Deployment{
		PathLength: 1000, MaxOffset: 50,
		Sinks: []SinkSpec{{Waypoints: []geom.Point{{X: 0, Y: 0}, {X: 400, Y: 0}}}},
		Sensors: []Sensor{
			{ID: 0, Pos: geom.Point{X: 200, Y: 20}, Budget: 1},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("covered sensor rejected: %v", err)
	}
	d.Sensors = append(d.Sensors, Sensor{ID: 1, Pos: geom.Point{X: 900, Y: 0}, Budget: 1})
	if err := d.Validate(); err == nil {
		t.Fatal("sensor beyond every sink path accepted")
	}
}
