package network

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"mobisink/internal/energy"
	"mobisink/internal/geom"
)

func TestGenerateValidation(t *testing.T) {
	bad := []Params{
		{N: 0, PathLength: 100, MaxOffset: 10},
		{N: -5, PathLength: 100, MaxOffset: 10},
		{N: 10, PathLength: 0, MaxOffset: 10},
		{N: 10, PathLength: 100, MaxOffset: -1},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGenerateBoundsAndDeterminism(t *testing.T) {
	p := PaperParams(300, 42)
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Sensors) != 300 {
		t.Fatalf("got %d sensors", len(d.Sensors))
	}
	for _, s := range d.Sensors {
		if s.Pos.X < 0 || s.Pos.X > 10000 {
			t.Fatalf("x out of range: %v", s.Pos.X)
		}
		if math.Abs(s.Pos.Y) > 180 {
			t.Fatalf("y out of range: %v", s.Pos.Y)
		}
	}
	d2, _ := Generate(p)
	for i := range d.Sensors {
		if d.Sensors[i].Pos != d2.Sensors[i].Pos {
			t.Fatal("same seed must reproduce the same topology")
		}
	}
	p3 := p
	p3.Seed = 43
	d3, _ := Generate(p3)
	same := true
	for i := range d.Sensors {
		if d.Sensors[i].Pos != d3.Sensors[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d, _ := Generate(PaperParams(10, 1))
	d.Sensors[3].ID = 7
	if err := d.Validate(); err == nil {
		t.Error("expected dense-ID error")
	}
	d, _ = Generate(PaperParams(10, 1))
	d.Sensors[0].Budget = -1
	if err := d.Validate(); err == nil {
		t.Error("expected negative-budget error")
	}
	d, _ = Generate(PaperParams(10, 1))
	d.Sensors[0].Pos.X = -5
	if err := d.Validate(); err == nil {
		t.Error("expected x-range error")
	}
	d, _ = Generate(PaperParams(10, 1))
	d.Sensors[0].Pos.Y = 500
	if err := d.Validate(); err == nil {
		t.Error("expected y-range error")
	}
	empty := &Deployment{PathLength: 100}
	if err := empty.Validate(); err == nil {
		t.Error("expected empty error")
	}
}

func TestAssignSteadyStateBudgets(t *testing.T) {
	d, _ := Generate(PaperParams(50, 7))
	h := energy.PaperSolar(energy.Sunny)
	// Tour at 5 m/s over 10 km = 2000 s; avg harvest ≈ 1 mW → ≈ 2 J.
	if err := d.AssignSteadyStateBudgets(h, 2000, 0, nil); err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Sensors {
		if s.Budget < 1.8 || s.Budget > 2.2 {
			t.Fatalf("budget = %v J, want ≈ 2 J", s.Budget)
		}
	}
	// Jitter bounds.
	rng := rand.New(rand.NewSource(1))
	if err := d.AssignSteadyStateBudgets(h, 2000, 0.3, rng); err != nil {
		t.Fatal(err)
	}
	base := h.EnergyBetween(0, 48*3600) / (48 * 3600) * 2000
	varied := false
	for _, s := range d.Sensors {
		if s.Budget > base+1e-12 || s.Budget < base*0.7-1e-12 {
			t.Fatalf("jittered budget %v outside [%v, %v]", s.Budget, base*0.7, base)
		}
		if s.Budget < base*0.999 {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter produced no variation")
	}
	// Error paths.
	if err := d.AssignSteadyStateBudgets(nil, 2000, 0, nil); err == nil {
		t.Error("expected nil-harvester error")
	}
	if err := d.AssignSteadyStateBudgets(h, 0, 0, nil); err == nil {
		t.Error("expected duration error")
	}
	if err := d.AssignSteadyStateBudgets(h, 2000, 1.0, rng); err == nil {
		t.Error("expected jitter error")
	}
	if err := d.AssignSteadyStateBudgets(h, 2000, 0.5, nil); err == nil {
		t.Error("expected rng-required error")
	}
}

func TestSetUniformBudgets(t *testing.T) {
	d, _ := Generate(PaperParams(5, 1))
	if err := d.SetUniformBudgets(-1); err == nil {
		t.Error("expected negative-budget error")
	}
	if err := d.SetUniformBudgets(3.5); err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Sensors {
		if s.Budget != 3.5 {
			t.Fatal("budget not applied")
		}
	}
}

func TestCoverageGaps(t *testing.T) {
	// Dense deployment: no gaps expected at paper scale.
	d, _ := Generate(PaperParams(600, 3))
	tr, err := geom.NewTrajectory(d.Path(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gaps := d.CoverageGaps(tr, 200); len(gaps) != 0 {
		t.Errorf("600 sensors left %d uncovered slots", len(gaps))
	}
	// A single far-away sensor: everything else is a gap.
	tiny := &Deployment{PathLength: 10000, MaxOffset: 180,
		Sensors: []Sensor{{ID: 0, Pos: geom.Point{X: 5000, Y: 0}}}}
	gaps := tiny.CoverageGaps(tr, 200)
	if len(gaps) == 0 {
		t.Fatal("expected gaps with one sensor")
	}
	for _, j := range gaps {
		if tr.PosAtSlotMid(j).Dist(geom.Point{X: 5000, Y: 0}) <= 200 {
			t.Fatalf("slot %d reported as gap but is covered", j)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d, _ := Generate(PaperParams(20, 9))
	_ = d.SetUniformBudgets(2)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Deployment
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Sensors) != 20 || back.PathLength != 10000 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range back.Sensors {
		if back.Sensors[i] != d.Sensors[i] {
			t.Fatal("sensor mismatch after round trip")
		}
	}
	// Unmarshal validates.
	if err := json.Unmarshal([]byte(`{"path_length":-1,"sensors":[]}`), &back); err == nil {
		t.Error("expected validation error on unmarshal")
	}
}

func TestPath(t *testing.T) {
	d, _ := Generate(PaperParams(5, 1))
	if got := d.Path().Length(); got != 10000 {
		t.Errorf("path length = %v", got)
	}
}

func TestGenerateAlong(t *testing.T) {
	wps := []geom.Point{{X: 0, Y: 0}, {X: 3000, Y: 0}, {X: 3000, Y: 2000}, {X: 6000, Y: 2000}}
	d, err := GenerateAlong(wps, 120, 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.PathLength-8000) > 1e-9 {
		t.Fatalf("path length = %v, want 8000", d.PathLength)
	}
	path := d.Path()
	if _, ok := path.(*geom.Polyline); !ok {
		t.Fatalf("expected polyline path, got %T", path)
	}
	// Every sensor within maxOffset of the path.
	for _, s := range d.Sensors {
		if _, _, ok := path.CoverInterval(s.Pos, 150+1e-6); !ok {
			t.Fatalf("sensor %d too far from path: %v", s.ID, s.Pos)
		}
	}
	// Determinism.
	d2, _ := GenerateAlong(wps, 120, 150, 9)
	for i := range d.Sensors {
		if d.Sensors[i].Pos != d2.Sensors[i].Pos {
			t.Fatal("same seed must reproduce")
		}
	}
	// Validation failures.
	if _, err := GenerateAlong(wps[:1], 10, 100, 1); err == nil {
		t.Error("expected waypoint error")
	}
	if _, err := GenerateAlong(wps, 0, 100, 1); err == nil {
		t.Error("expected count error")
	}
	if _, err := GenerateAlong(wps, 10, -1, 1); err == nil {
		t.Error("expected offset error")
	}
}

func TestCurvedValidate(t *testing.T) {
	wps := []geom.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 1000, Y: 1000}}
	d, err := GenerateAlong(wps, 20, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the recorded path length.
	d.PathLength = 1234
	if err := d.Validate(); err == nil {
		t.Error("expected length-mismatch error")
	}
	d.PathLength = 2000
	// Move a sensor away from the path.
	d.Sensors[0].Pos = geom.Point{X: -500, Y: -500}
	if err := d.Validate(); err == nil {
		t.Error("expected off-path error")
	}
}

func TestCurvedJSONRoundTrip(t *testing.T) {
	wps := []geom.Point{{X: 0, Y: 0}, {X: 2000, Y: 500}, {X: 4000, Y: 0}}
	d, err := GenerateAlong(wps, 15, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = d.SetUniformBudgets(1)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Deployment
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Waypoints) != 3 {
		t.Fatalf("waypoints lost: %v", back.Waypoints)
	}
	if back.Path().Length() != d.Path().Length() {
		t.Error("path length changed in round trip")
	}
}
