package energy

import (
	"errors"
	"fmt"
	"math"
)

// Predictor implements the paper's §II.B assumption that future harvest is
// "uncontrollable but predictable based on the source type and harvesting
// history": an EWMA profile over time-of-day buckets, in the spirit of the
// classic EWMA solar predictors (Kansal et al.). Observations from past
// days train per-bucket mean power; Predict integrates the learned profile
// over a future window.
type Predictor struct {
	bucketLen float64   // seconds per time-of-day bucket
	alpha     float64   // EWMA weight of the newest observation
	mean      []float64 // learned mean power per bucket, W
	seen      []bool    // whether a bucket has any observation
}

// NewPredictor creates a predictor with the given time-of-day resolution
// (bucketLen seconds, dividing a day evenly is recommended) and EWMA weight
// alpha ∈ (0, 1].
func NewPredictor(bucketLen, alpha float64) (*Predictor, error) {
	if bucketLen <= 0 || bucketLen > secondsPerDay {
		return nil, fmt.Errorf("energy: bucket length %v outside (0, %v]", bucketLen, secondsPerDay)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("energy: alpha %v outside (0,1]", alpha)
	}
	n := int(math.Ceil(secondsPerDay / bucketLen))
	return &Predictor{
		bucketLen: bucketLen,
		alpha:     alpha,
		mean:      make([]float64, n),
		seen:      make([]bool, n),
	}, nil
}

func (p *Predictor) bucket(t float64) int {
	tod := math.Mod(t, secondsPerDay)
	if tod < 0 {
		tod += secondsPerDay
	}
	b := int(tod / p.bucketLen)
	if b >= len(p.mean) {
		b = len(p.mean) - 1
	}
	return b
}

// Observe records the energy actually harvested over [t0, t1] (Joules),
// attributing mean power to every bucket the interval covers.
func (p *Predictor) Observe(t0, t1, joules float64) error {
	if t1 <= t0 {
		return errors.New("energy: empty observation interval")
	}
	if joules < 0 {
		return fmt.Errorf("energy: negative harvest %v", joules)
	}
	power := joules / (t1 - t0)
	for t := t0; t < t1; t += p.bucketLen {
		b := p.bucket(t)
		if !p.seen[b] {
			p.mean[b] = power
			p.seen[b] = true
		} else {
			p.mean[b] = (1-p.alpha)*p.mean[b] + p.alpha*power
		}
	}
	return nil
}

// Train feeds the predictor `days` days of history from a harvester,
// observing bucket by bucket (a convenience for simulations).
func (p *Predictor) Train(h Harvester, start float64, days int) error {
	if h == nil {
		return errors.New("energy: nil harvester")
	}
	if days <= 0 {
		return errors.New("energy: need at least one training day")
	}
	end := start + float64(days)*secondsPerDay
	for t := start; t < end; t += p.bucketLen {
		hi := t + p.bucketLen
		if err := p.Observe(t, hi, h.EnergyBetween(t, hi)); err != nil {
			return err
		}
	}
	return nil
}

// Predict estimates the energy (Joules) that will be harvested over
// [t0, t1] from the learned profile. Buckets never observed predict zero.
func (p *Predictor) Predict(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	total := 0.0
	for t := t0; t < t1; {
		b := p.bucket(t)
		// Integrate to the end of this bucket or the horizon.
		bucketEnd := math.Floor(t/p.bucketLen)*p.bucketLen + p.bucketLen
		hi := math.Min(bucketEnd, t1)
		total += p.mean[b] * (hi - t)
		t = hi
	}
	return total
}

// Coverage returns the fraction of time-of-day buckets with observations.
func (p *Predictor) Coverage() float64 {
	n := 0
	for _, s := range p.seen {
		if s {
			n++
		}
	}
	return float64(n) / float64(len(p.seen))
}
