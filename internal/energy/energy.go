// Package energy models renewable-energy replenishment for sensor nodes.
//
// Each sensor is powered by a small solar panel feeding a finite battery
// (paper §II.B): the stored energy at the start of tour j evolves as
//
//	P_j(v) = min{ P_{j-1}(v) + Q_{j-1}(v) − O_{j-1}(v), B(v) }
//
// where Q is the energy harvested and O the energy consumed during tour
// j−1. Under the perpetual-operation policy the per-tour energy budget is
// exactly the stored energy P_j(v).
//
// The paper drives Q from real solar-radiation measurements (its ref. [14])
// which are not publicly available; this package substitutes a synthetic
// diurnal solar model calibrated to the two 48-hour energy totals the paper
// publishes for a 37×37 mm panel: 655.15 mWh on a sunny day and 313.70 mWh
// on a partly cloudy day. The substitution preserves the quantity the
// algorithms actually consume — the per-tour harvested energy and its
// variability across sensors and times of day.
package energy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Physical calibration constants derived from the paper's §VII.A numbers.
const (
	// ReferencePanelAreaMM2 is the measured panel area (37 mm × 37 mm).
	ReferencePanelAreaMM2 = 37.0 * 37.0
	// PaperPanelAreaMM2 is the experiment panel area (10 mm × 10 mm).
	PaperPanelAreaMM2 = 10.0 * 10.0
	// SunnyEnergy48hJ is 655.15 mWh in Joules (×3.6).
	SunnyEnergy48hJ = 655.15 * 3.6
	// PartlyCloudyEnergy48hJ is 313.70 mWh in Joules.
	PartlyCloudyEnergy48hJ = 313.70 * 3.6
	// PaperBatteryCapacityJ is the battery capacity used in the paper.
	PaperBatteryCapacityJ = 10000.0

	// Diurnal cycle geometry of the synthetic model.
	secondsPerDay = 86400.0
	sunriseSec    = 6 * 3600.0
	sunsetSec     = 18 * 3600.0
)

// Condition selects the calibrated sky condition.
type Condition int

// Supported sky conditions.
const (
	Sunny Condition = iota
	PartlyCloudy
)

// String implements fmt.Stringer.
func (c Condition) String() string {
	switch c {
	case Sunny:
		return "sunny"
	case PartlyCloudy:
		return "partly-cloudy"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Harvester produces instantaneous harvested power as a function of absolute
// simulation time (seconds; time 0 is local midnight).
type Harvester interface {
	// Power returns the harvested power at time t, in Watts.
	Power(t float64) float64
	// EnergyBetween returns the energy harvested over [t0, t1], in Joules.
	EnergyBetween(t0, t1 float64) float64
}

// Constant is a Harvester with a fixed harvest rate, useful for tests and
// steady-state analyses.
type Constant struct {
	P float64 // Watts
}

// Power implements Harvester.
func (c Constant) Power(float64) float64 { return c.P }

// EnergyBetween implements Harvester.
func (c Constant) EnergyBetween(t0, t1 float64) float64 {
	if t1 < t0 {
		return 0
	}
	return c.P * (t1 - t0)
}

// Solar is the calibrated diurnal harvester: a half-sine irradiance profile
// between sunrise and sunset, scaled so that a panel of the reference area
// collects exactly the paper's published 48-hour totals.
type Solar struct {
	peak float64 // peak harvested power at solar noon, W
}

// NewSolar builds a solar harvester for a panel of areaMM2 square
// millimeters under the given sky condition, with an additional efficiency
// multiplier (1.0 = nominal; use <1 for suboptimal orientation, dirt, aging).
func NewSolar(areaMM2 float64, cond Condition, efficiency float64) (*Solar, error) {
	if areaMM2 <= 0 {
		return nil, fmt.Errorf("energy: panel area must be positive, got %v", areaMM2)
	}
	if efficiency <= 0 || efficiency > 1 {
		return nil, fmt.Errorf("energy: efficiency must be in (0,1], got %v", efficiency)
	}
	var total48h float64
	switch cond {
	case Sunny:
		total48h = SunnyEnergy48hJ
	case PartlyCloudy:
		total48h = PartlyCloudyEnergy48hJ
	default:
		return nil, fmt.Errorf("energy: unknown condition %v", cond)
	}
	// Two diurnal half-sine humps over 48 h, each with daylight length D:
	//   total = 2 · peakRef · (2/π) · D   ⇒   peakRef = total·π/(4D)
	dayLen := sunsetSec - sunriseSec
	peakRef := total48h * math.Pi / (4 * dayLen)
	peak := peakRef * (areaMM2 / ReferencePanelAreaMM2) * efficiency
	return &Solar{peak: peak}, nil
}

// PaperSolar returns the default experiment harvester: the paper's 10×10 mm
// panel at nominal efficiency.
func PaperSolar(cond Condition) *Solar {
	s, err := NewSolar(PaperPanelAreaMM2, cond, 1.0)
	if err != nil {
		panic("energy: PaperSolar: " + err.Error())
	}
	return s
}

// Peak returns the harvested power at solar noon, in Watts.
func (s *Solar) Peak() float64 { return s.peak }

// Power implements Harvester.
func (s *Solar) Power(t float64) float64 {
	tod := math.Mod(t, secondsPerDay)
	if tod < 0 {
		tod += secondsPerDay
	}
	if tod < sunriseSec || tod > sunsetSec {
		return 0
	}
	p := s.peak * math.Sin(math.Pi*(tod-sunriseSec)/(sunsetSec-sunriseSec))
	if p < 0 {
		return 0 // sin rounding noise at the day boundaries
	}
	return p
}

// EnergyBetween implements Harvester analytically (exact integral of the
// half-sine profile, day boundaries included).
func (s *Solar) EnergyBetween(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	dayLen := sunsetSec - sunriseSec
	// Integral of peak·sin(π(x−sunrise)/D) dx from a to b within one day.
	dayIntegral := func(a, b float64) float64 {
		a = math.Max(a, sunriseSec)
		b = math.Min(b, sunsetSec)
		if b <= a {
			return 0
		}
		k := math.Pi / dayLen
		return s.peak / k * (math.Cos(k*(a-sunriseSec)) - math.Cos(k*(b-sunriseSec)))
	}
	total := 0.0
	day0 := math.Floor(t0 / secondsPerDay)
	day1 := math.Floor((t1 - 1e-9) / secondsPerDay)
	for d := day0; d <= day1; d++ {
		a := math.Max(t0, d*secondsPerDay) - d*secondsPerDay
		b := math.Min(t1, (d+1)*secondsPerDay) - d*secondsPerDay
		total += dayIntegral(a, b)
	}
	return total
}

// Noisy wraps a Harvester with smooth multiplicative cloud noise: a mean-
// reverting random factor in [Min, 1] resampled every Period seconds and
// linearly interpolated, deterministic per seed. It models the fast,
// uncontrollable fluctuations the paper attributes to energy-harvesting
// sources while keeping runs reproducible.
type Noisy struct {
	Base   Harvester
	Min    float64 // lower bound of the attenuation factor, in [0,1)
	Period float64 // seconds between resampled attenuation knots

	seed int64
}

// NewNoisy validates and builds the wrapper.
func NewNoisy(base Harvester, min, period float64, seed int64) (*Noisy, error) {
	if base == nil {
		return nil, errors.New("energy: nil base harvester")
	}
	if min < 0 || min >= 1 {
		return nil, fmt.Errorf("energy: noise floor must be in [0,1), got %v", min)
	}
	if period <= 0 {
		return nil, fmt.Errorf("energy: noise period must be positive, got %v", period)
	}
	return &Noisy{Base: base, Min: min, Period: period, seed: seed}, nil
}

// factorAt returns the attenuation at knot index k (deterministic in k).
func (n *Noisy) factorAt(k int64) float64 {
	const mix = int64(-0x61c8864680b583eb) // golden-ratio mixing constant
	r := rand.New(rand.NewSource(n.seed ^ k*mix))
	return n.Min + (1-n.Min)*r.Float64()
}

// attenuation returns the interpolated attenuation factor at time t.
func (n *Noisy) attenuation(t float64) float64 {
	k := math.Floor(t / n.Period)
	frac := t/n.Period - k
	a := n.factorAt(int64(k))
	b := n.factorAt(int64(k) + 1)
	return a + (b-a)*frac
}

// Power implements Harvester.
func (n *Noisy) Power(t float64) float64 {
	return n.Base.Power(t) * n.attenuation(t)
}

// EnergyBetween implements Harvester by trapezoidal integration at a
// resolution finer than both the noise period and the diurnal profile.
func (n *Noisy) EnergyBetween(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	step := math.Min(n.Period/4, 300)
	steps := int(math.Ceil((t1 - t0) / step))
	if steps < 1 {
		steps = 1
	}
	h := (t1 - t0) / float64(steps)
	total := 0.0
	prev := n.Power(t0)
	for i := 1; i <= steps; i++ {
		cur := n.Power(t0 + float64(i)*h)
		total += (prev + cur) / 2 * h
		prev = cur
	}
	return total
}

// Battery is a finite energy store with capacity B. The zero value is a
// zero-capacity battery; use NewBattery.
type Battery struct {
	capacity float64
	level    float64
}

// NewBattery returns a battery with the given capacity and initial level
// (both Joules). The initial level is clamped to [0, capacity].
func NewBattery(capacity, initial float64) (*Battery, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("energy: battery capacity must be positive, got %v", capacity)
	}
	b := &Battery{capacity: capacity}
	b.level = clamp(initial, 0, capacity)
	return b, nil
}

// Capacity returns B in Joules.
func (b *Battery) Capacity() float64 { return b.capacity }

// Level returns the currently stored energy in Joules.
func (b *Battery) Level() float64 { return b.level }

// Charge adds e Joules, clipping at capacity, and returns the energy
// actually stored (the rest is wasted — the battery is full).
func (b *Battery) Charge(e float64) float64 {
	if e < 0 {
		return 0
	}
	stored := math.Min(e, b.capacity-b.level)
	b.level += stored
	return stored
}

// Discharge removes e Joules and reports whether the battery held enough;
// if not, the level is unchanged and false is returned.
func (b *Battery) Discharge(e float64) bool {
	if e < 0 {
		return false
	}
	if e > b.level+1e-12 {
		return false
	}
	b.level = math.Max(0, b.level-e)
	return true
}

// Account tracks the per-tour energy recurrence of paper §II.B for one
// sensor: budgets are read at tour starts, consumption is debited, and
// harvest is credited between tour starts.
type Account struct {
	Battery   *Battery
	Harvester Harvester
	now       float64
}

// NewAccount starts an account at absolute time start (seconds).
func NewAccount(b *Battery, h Harvester, start float64) (*Account, error) {
	if b == nil || h == nil {
		return nil, errors.New("energy: account needs battery and harvester")
	}
	return &Account{Battery: b, Harvester: h, now: start}, nil
}

// Now returns the account's current absolute time.
func (a *Account) Now() float64 { return a.now }

// Budget returns the energy available for the tour starting now: the stored
// level P_j(v).
func (a *Account) Budget() float64 { return a.Battery.Level() }

// EndTour advances time to the next tour start, debiting the energy consumed
// during the elapsed tour and crediting the harvest over the full period.
// consumed must not exceed the budget returned by Budget; if it does,
// EndTour returns an error and leaves the account unchanged.
func (a *Account) EndTour(duration, consumed float64) error {
	if duration <= 0 {
		return fmt.Errorf("energy: tour duration must be positive, got %v", duration)
	}
	if consumed < 0 {
		return fmt.Errorf("energy: negative consumption %v", consumed)
	}
	if !a.Battery.Discharge(consumed) {
		return fmt.Errorf("energy: consumption %v exceeds stored %v", consumed, a.Battery.Level())
	}
	a.Battery.Charge(a.Harvester.EnergyBetween(a.now, a.now+duration))
	a.now += duration
	return nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
