package energy_test

import (
	"fmt"

	"mobisink/internal/energy"
)

// The calibrated solar model reproduces the paper's measured 48-hour
// totals for the reference panel.
func ExampleNewSolar() {
	ref, _ := energy.NewSolar(energy.ReferencePanelAreaMM2, energy.Sunny, 1.0)
	fmt.Printf("reference panel, 48 h: %.2f J (%.2f mWh)\n",
		ref.EnergyBetween(0, 48*3600), ref.EnergyBetween(0, 48*3600)/3.6)

	paper := energy.PaperSolar(energy.Sunny)
	fmt.Printf("paper 10×10 mm panel, average: %.3f mW\n",
		1000*paper.EnergyBetween(0, 48*3600)/(48*3600))
	// Output:
	// reference panel, 48 h: 2358.54 J (655.15 mWh)
	// paper 10×10 mm panel, average: 0.997 mW
}

// The per-tour budget recurrence P_j = min(P_{j-1} + Q − O, B).
func ExampleAccount() {
	batt, _ := energy.NewBattery(10 /* J capacity */, 4 /* J stored */)
	acct, _ := energy.NewAccount(batt, energy.Constant{P: 0.001}, 0)

	fmt.Printf("tour 1 budget: %.1f J\n", acct.Budget())
	_ = acct.EndTour(2000 /* s */, 3 /* J consumed */)
	fmt.Printf("tour 2 budget: %.1f J\n", acct.Budget()) // 4 − 3 + 2 harvested
	// Output:
	// tour 1 budget: 4.0 J
	// tour 2 budget: 3.0 J
}
