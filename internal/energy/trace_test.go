package energy

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

func TestNewTraceValidation(t *testing.T) {
	cases := []struct {
		name          string
		times, powers []float64
		period        float64
	}{
		{"empty", nil, nil, 0},
		{"length mismatch", []float64{0, 1}, []float64{1}, 0},
		{"not ascending", []float64{0, 0}, []float64{1, 1}, 0},
		{"negative power", []float64{0, 1}, []float64{1, -1}, 0},
		{"negative time", []float64{-1, 1}, []float64{1, 1}, 0},
		{"short period", []float64{0, 100}, []float64{1, 1}, 50},
	}
	for _, c := range cases {
		if _, err := NewTrace(c.times, c.powers, c.period); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewTrace([]float64{0, 100}, []float64{1, 2}, 100); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestTraceInterpolation(t *testing.T) {
	tr, err := NewTrace([]float64{0, 10, 20}, []float64{0, 1, 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ at, want float64 }{
		{-5, 0}, // constant extrapolation left
		{0, 0},
		{5, 0.5}, // midpoint of rising segment
		{10, 1},
		{15, 0.75},
		{20, 0.5},
		{100, 0.5}, // constant extrapolation right
	}
	for _, c := range cases {
		if got := tr.Power(c.at); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Power(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestTracePeriodic(t *testing.T) {
	tr, err := NewTrace([]float64{0, 10, 20}, []float64{0, 1, 0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Power(25); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("wrapped Power(25) = %v, want 0.5", got)
	}
	if got := tr.Power(-5); math.Abs(got-tr.Power(15)) > 1e-12 {
		t.Errorf("negative wrap: %v vs %v", got, tr.Power(15))
	}
	// Integral over one period: triangle of base 20, height 1 → 10 J.
	if got := tr.EnergyBetween(0, 20); math.Abs(got-10) > 1e-9 {
		t.Errorf("period energy = %v, want 10", got)
	}
	// Over 3 periods.
	if got := tr.EnergyBetween(0, 60); math.Abs(got-30) > 1e-9 {
		t.Errorf("3-period energy = %v, want 30", got)
	}
	// Straddling a boundary: [15, 25] = falling half + rising half = 2·1.25+... compute:
	// [15,20]: from 0.5 down to 0 → 1.25; [20,25]=[0,5]: 0 up to 0.5 → 1.25.
	if got := tr.EnergyBetween(15, 25); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("straddle energy = %v, want 2.5", got)
	}
}

func TestTraceEnergyMatchesNumeric(t *testing.T) {
	tr, _ := NewTrace([]float64{0, 7, 13, 20, 31}, []float64{0.2, 1.0, 0.1, 0.9, 0.4}, 0)
	for _, span := range [][2]float64{{-5, 40}, {3, 9}, {7, 13}, {0, 31}, {10, 10}, {12, 14}} {
		analytic := tr.EnergyBetween(span[0], span[1])
		numeric := 0.0
		const steps = 20000
		h := (span[1] - span[0]) / steps
		if h > 0 {
			prev := tr.Power(span[0])
			for i := 1; i <= steps; i++ {
				cur := tr.Power(span[0] + float64(i)*h)
				numeric += (prev + cur) / 2 * h
				prev = cur
			}
		}
		if math.Abs(analytic-numeric) > 1e-4 {
			t.Errorf("span %v: analytic %v vs numeric %v", span, analytic, numeric)
		}
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr, _ := NewTrace([]float64{0, 3600, 7200}, []float64{0, 0.002, 0.001}, 7200)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf, 7200)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []float64{0, 1800, 3600, 5000, 7100} {
		if math.Abs(tr.Power(at)-back.Power(at)) > 1e-12 {
			t.Errorf("round-trip Power(%v) differs", at)
		}
	}
}

func TestReadTraceCSVVariants(t *testing.T) {
	// Header and comments are tolerated.
	src := "# solar trace\ntime_s,power_w\n0,0.001\n100,0.002\n"
	tr, err := ReadTraceCSV(strings.NewReader(src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Power(50); math.Abs(got-0.0015) > 1e-12 {
		t.Errorf("Power(50) = %v", got)
	}
	// Non-numeric data row fails.
	if _, err := ReadTraceCSV(strings.NewReader("0,0.001\nbad,row\n"), 0); err == nil {
		t.Error("expected parse error")
	}
	// Too few fields fails.
	if _, err := ReadTraceCSV(strings.NewReader("0\n"), 0); err == nil {
		t.Error("expected field-count error")
	}
	// Empty input fails (no samples).
	if _, err := ReadTraceCSV(strings.NewReader(""), 0); err == nil {
		t.Error("expected empty error")
	}
}

// Exporting the calibrated solar model as a trace must approximately
// preserve its energy integral.
func TestSampleHarvesterPreservesEnergy(t *testing.T) {
	sun := PaperSolar(Sunny)
	tr, err := SampleHarvester(sun, secondsPerDay, 1441, true) // minute resolution
	if err != nil {
		t.Fatal(err)
	}
	want := sun.EnergyBetween(0, secondsPerDay)
	got := tr.EnergyBetween(0, secondsPerDay)
	if math.Abs(got-want)/want > 1e-3 {
		t.Errorf("sampled energy %v vs analytic %v", got, want)
	}
	// Periodic repetition matches the solar model across days.
	want2 := sun.EnergyBetween(0, 3*secondsPerDay)
	got2 := tr.EnergyBetween(0, 3*secondsPerDay)
	if math.Abs(got2-want2)/want2 > 1e-3 {
		t.Errorf("3-day sampled energy %v vs analytic %v", got2, want2)
	}
}

func TestSampleHarvesterValidation(t *testing.T) {
	if _, err := SampleHarvester(nil, 100, 10, false); err == nil {
		t.Error("expected nil error")
	}
	if _, err := SampleHarvester(Constant{1}, 100, 1, false); err == nil {
		t.Error("expected sample-count error")
	}
	if _, err := SampleHarvester(Constant{1}, 0, 10, false); err == nil {
		t.Error("expected horizon error")
	}
}

// A trace can drive the full budget recurrence in place of the analytic
// model.
func TestTraceDrivesAccount(t *testing.T) {
	tr, _ := NewTrace([]float64{0, 43200, 86400}, []float64{0, 0.002, 0}, 86400)
	b, _ := NewBattery(10, 1)
	a, err := NewAccount(b, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.EndTour(86400, 0.5); err != nil {
		t.Fatal(err)
	}
	// Harvested: triangle 86400×0.002/2 = 86.4 J, clipped at capacity 10.
	if a.Budget() != 10 {
		t.Errorf("budget = %v, want clipped 10", a.Budget())
	}
}

// The shipped sample dataset loads and closely matches the analytic model
// it was sampled from.
func TestShippedSolarTrace(t *testing.T) {
	f, err := os.Open("testdata/solar_sunny_daily.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ReadTraceCSV(f, 86400)
	if err != nil {
		t.Fatal(err)
	}
	sun := PaperSolar(Sunny)
	want := sun.EnergyBetween(0, 86400)
	got := tr.EnergyBetween(0, 86400)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("daily energy %v vs analytic %v", got, want)
	}
	// Multi-day periodic repetition.
	if got3 := tr.EnergyBetween(0, 3*86400); math.Abs(got3-3*got) > 1e-6 {
		t.Errorf("periodic repetition broken: %v vs %v", got3, 3*got)
	}
}
