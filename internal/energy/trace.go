package energy

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Trace is a Harvester driven by sampled measurements: (time, power) points
// with linear interpolation between samples, constant extrapolation before
// the first and after the last sample, and optional periodic repetition.
// It is the drop-in replacement for the paper's real solar-radiation traces
// when such measurements are available.
type Trace struct {
	times  []float64 // ascending, seconds
	powers []float64 // Watts
	period float64   // 0 = no repetition
}

// NewTrace builds a trace from sample points. times must be strictly
// ascending and powers non-negative; period (seconds) makes the trace
// repeat (e.g. 86400 for a daily profile) and must be at least the last
// sample time, or 0 to disable repetition.
func NewTrace(times, powers []float64, period float64) (*Trace, error) {
	if len(times) == 0 || len(times) != len(powers) {
		return nil, fmt.Errorf("energy: trace needs equal-length samples, got %d/%d", len(times), len(powers))
	}
	for i := range times {
		if i > 0 && times[i] <= times[i-1] {
			return nil, fmt.Errorf("energy: trace times not ascending at index %d", i)
		}
		if powers[i] < 0 {
			return nil, fmt.Errorf("energy: negative power %v at index %d", powers[i], i)
		}
		if times[i] < 0 {
			return nil, fmt.Errorf("energy: negative time %v at index %d", times[i], i)
		}
	}
	if period != 0 && period < times[len(times)-1] {
		return nil, fmt.Errorf("energy: period %v shorter than last sample %v", period, times[len(times)-1])
	}
	t := &Trace{
		times:  append([]float64(nil), times...),
		powers: append([]float64(nil), powers...),
		period: period,
	}
	return t, nil
}

// ReadTraceCSV parses a two-column CSV (time_seconds, power_watts) into a
// Trace. Lines starting with '#' and a header row of non-numeric fields are
// skipped.
func ReadTraceCSV(r io.Reader, period float64) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1
	var times, powers []float64
	rowNum := 0
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		rowNum++
		if len(rec) < 2 {
			return nil, fmt.Errorf("energy: trace row %d has %d fields, want 2", rowNum, len(rec))
		}
		t, err1 := strconv.ParseFloat(rec[0], 64)
		p, err2 := strconv.ParseFloat(rec[1], 64)
		if err1 != nil || err2 != nil {
			if rowNum == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("energy: trace row %d is not numeric", rowNum)
		}
		times = append(times, t)
		powers = append(powers, p)
	}
	return NewTrace(times, powers, period)
}

// WriteCSV emits the trace samples as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "power_w"}); err != nil {
		return err
	}
	for i := range t.times {
		if err := cw.Write([]string{
			strconv.FormatFloat(t.times[i], 'g', -1, 64),
			strconv.FormatFloat(t.powers[i], 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Power implements Harvester by linear interpolation.
func (t *Trace) Power(at float64) float64 {
	if t.period > 0 {
		at = modPos(at, t.period)
	}
	n := len(t.times)
	if at <= t.times[0] {
		return t.powers[0]
	}
	if at >= t.times[n-1] {
		return t.powers[n-1]
	}
	// Index of the first sample at or after `at`.
	i := sort.SearchFloat64s(t.times, at)
	if t.times[i] == at {
		return t.powers[i]
	}
	frac := (at - t.times[i-1]) / (t.times[i] - t.times[i-1])
	return t.powers[i-1] + frac*(t.powers[i]-t.powers[i-1])
}

// EnergyBetween implements Harvester with exact piecewise-linear
// integration.
func (t *Trace) EnergyBetween(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	if t.period > 0 {
		// Whole periods plus the remainder.
		per := t.integrate(0, t.period)
		n0 := math.Floor(t0 / t.period)
		n1 := math.Floor(t1 / t.period)
		if n0 == n1 {
			return t.integrate(t0-n0*t.period, t1-n0*t.period)
		}
		total := t.integrate(t0-n0*t.period, t.period)
		total += per * (n1 - n0 - 1)
		total += t.integrate(0, t1-n1*t.period)
		return total
	}
	return t.integrate(t0, t1)
}

// integrate computes the exact integral over [a, b] within one period
// (no wrapping), handling the constant extrapolation regions.
func (t *Trace) integrate(a, b float64) float64 {
	if b <= a {
		return 0
	}
	total := 0.0
	n := len(t.times)
	// Leading constant region.
	if a < t.times[0] {
		hi := b
		if hi > t.times[0] {
			hi = t.times[0]
		}
		total += t.powers[0] * (hi - a)
		a = hi
		if a >= b {
			return total
		}
	}
	// Trailing constant region.
	if b > t.times[n-1] {
		lo := a
		if lo < t.times[n-1] {
			lo = t.times[n-1]
		}
		total += t.powers[n-1] * (b - lo)
		b = t.times[n-1]
		if a >= b {
			return total
		}
	}
	// Piecewise-linear middle: trapezoid between clipped segment parts.
	i := sort.SearchFloat64s(t.times, a)
	if i > 0 && (i == n || t.times[i] > a) {
		i--
	}
	for ; i < n-1 && t.times[i] < b; i++ {
		lo, hi := t.times[i], t.times[i+1]
		sa, sb := lo, hi
		if sa < a {
			sa = a
		}
		if sb > b {
			sb = b
		}
		if sb <= sa {
			continue
		}
		pa := t.powers[i] + (sa-lo)/(hi-lo)*(t.powers[i+1]-t.powers[i])
		pb := t.powers[i] + (sb-lo)/(hi-lo)*(t.powers[i+1]-t.powers[i])
		total += (pa + pb) / 2 * (sb - sa)
	}
	return total
}

// SampleHarvester tabulates any Harvester into a Trace with n uniform
// samples over [0, horizon] (repeating with that period if periodic=true) —
// useful for exporting the calibrated solar model as a CSV trace.
func SampleHarvester(h Harvester, horizon float64, n int, periodic bool) (*Trace, error) {
	if h == nil {
		return nil, errors.New("energy: nil harvester")
	}
	if n < 2 || horizon <= 0 {
		return nil, fmt.Errorf("energy: need n >= 2 samples over a positive horizon")
	}
	times := make([]float64, n)
	powers := make([]float64, n)
	for i := 0; i < n; i++ {
		times[i] = horizon * float64(i) / float64(n-1)
		powers[i] = h.Power(times[i])
	}
	period := 0.0
	if periodic {
		period = horizon
	}
	return NewTrace(times, powers, period)
}

func modPos(x, m float64) float64 {
	r := math.Mod(x, m)
	if r < 0 {
		r += m
	}
	return r
}
