package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantHarvester(t *testing.T) {
	c := Constant{P: 0.002}
	if got := c.Power(12345); got != 0.002 {
		t.Errorf("Power = %v", got)
	}
	if got := c.EnergyBetween(100, 1100); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("EnergyBetween = %v, want 2", got)
	}
	if got := c.EnergyBetween(100, 50); got != 0 {
		t.Errorf("EnergyBetween backwards = %v, want 0", got)
	}
}

func TestNewSolarValidation(t *testing.T) {
	if _, err := NewSolar(0, Sunny, 1); err == nil {
		t.Error("expected error for zero area")
	}
	if _, err := NewSolar(100, Sunny, 0); err == nil {
		t.Error("expected error for zero efficiency")
	}
	if _, err := NewSolar(100, Sunny, 1.5); err == nil {
		t.Error("expected error for efficiency > 1")
	}
	if _, err := NewSolar(100, Condition(42), 1); err == nil {
		t.Error("expected error for unknown condition")
	}
}

// The calibration contract: a reference-area panel must collect exactly the
// paper's published 48-hour totals.
func TestSolarCalibration(t *testing.T) {
	cases := []struct {
		cond Condition
		want float64
	}{
		{Sunny, SunnyEnergy48hJ},
		{PartlyCloudy, PartlyCloudyEnergy48hJ},
	}
	for _, c := range cases {
		s, err := NewSolar(ReferencePanelAreaMM2, c.cond, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		got := s.EnergyBetween(0, 48*3600)
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("%v: 48h energy = %v J, want %v J", c.cond, got, c.want)
		}
	}
}

func TestPaperSolarAverageAboutOneMilliwatt(t *testing.T) {
	s := PaperSolar(Sunny)
	avg := s.EnergyBetween(0, 48*3600) / (48 * 3600)
	// 655.15 mWh scaled by 100/1369 over 48 h ≈ 0.997 mW average.
	if avg < 0.0009 || avg > 0.0011 {
		t.Errorf("average harvest = %v W, want ~1 mW", avg)
	}
}

func TestSolarNightIsDark(t *testing.T) {
	s := PaperSolar(Sunny)
	for _, tm := range []float64{0, 3 * 3600, 5.99 * 3600, 18.01 * 3600, 23 * 3600, secondsPerDay + 2*3600} {
		if got := s.Power(tm); got != 0 {
			t.Errorf("Power(%v) = %v, want 0 at night", tm, got)
		}
	}
	noon := 12 * 3600.0
	if got := s.Power(noon); math.Abs(got-s.Peak()) > 1e-12 {
		t.Errorf("Power(noon) = %v, want peak %v", got, s.Peak())
	}
	if s.Power(noon+secondsPerDay) != s.Power(noon) {
		t.Error("profile must repeat daily")
	}
	if s.Power(-2*3600) != s.Power(22*3600) {
		t.Error("negative times must wrap")
	}
}

// Property: the analytic integral matches numeric integration.
func TestSolarEnergyMatchesNumeric(t *testing.T) {
	s := PaperSolar(PartlyCloudy)
	f := func(aRaw, bRaw uint32) bool {
		t0 := float64(aRaw % 172800)
		t1 := t0 + float64(bRaw%90000)
		analytic := s.EnergyBetween(t0, t1)
		numeric := 0.0
		steps := 2000
		h := (t1 - t0) / float64(steps)
		if h == 0 {
			return analytic == 0
		}
		prev := s.Power(t0)
		for i := 1; i <= steps; i++ {
			cur := s.Power(t0 + float64(i)*h)
			numeric += (prev + cur) / 2 * h
			prev = cur
		}
		tol := math.Max(1e-6, numeric*1e-3)
		return math.Abs(analytic-numeric) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolarEnergyAdditive(t *testing.T) {
	s := PaperSolar(Sunny)
	a := s.EnergyBetween(0, 30000)
	b := s.EnergyBetween(30000, 90000)
	whole := s.EnergyBetween(0, 90000)
	if math.Abs(a+b-whole) > 1e-9 {
		t.Errorf("additivity violated: %v + %v != %v", a, b, whole)
	}
}

func TestNoisyHarvester(t *testing.T) {
	base := PaperSolar(Sunny)
	n, err := NewNoisy(base, 0.4, 600, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Noise bounded: base·0.4 ≤ noisy ≤ base.
	for tm := 0.0; tm < secondsPerDay; tm += 977 {
		p := n.Power(tm)
		b := base.Power(tm)
		if p < b*0.4-1e-12 || p > b+1e-12 {
			t.Fatalf("Power(%v) = %v outside [%v, %v]", tm, p, b*0.4, b)
		}
	}
	// Determinism per seed.
	n2, _ := NewNoisy(base, 0.4, 600, 7)
	if n.Power(43210) != n2.Power(43210) {
		t.Error("same seed must give same noise")
	}
	n3, _ := NewNoisy(base, 0.4, 600, 8)
	same := true
	for tm := 30000.0; tm < 50000; tm += 500 {
		if n.Power(tm) != n3.Power(tm) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different noise")
	}
	// Energy integral bounded by base integral.
	e := n.EnergyBetween(0, secondsPerDay)
	eb := base.EnergyBetween(0, secondsPerDay)
	if e <= 0 || e > eb {
		t.Errorf("noisy energy %v outside (0, %v]", e, eb)
	}
	if got := n.EnergyBetween(10, 10); got != 0 {
		t.Errorf("empty interval energy = %v", got)
	}
}

func TestNewNoisyValidation(t *testing.T) {
	if _, err := NewNoisy(nil, 0.5, 60, 1); err == nil {
		t.Error("expected error for nil base")
	}
	if _, err := NewNoisy(Constant{1}, 1.0, 60, 1); err == nil {
		t.Error("expected error for min >= 1")
	}
	if _, err := NewNoisy(Constant{1}, -0.1, 60, 1); err == nil {
		t.Error("expected error for negative min")
	}
	if _, err := NewNoisy(Constant{1}, 0.5, 0, 1); err == nil {
		t.Error("expected error for zero period")
	}
}

func TestBattery(t *testing.T) {
	if _, err := NewBattery(0, 0); err == nil {
		t.Error("expected error for zero capacity")
	}
	b, err := NewBattery(100, 150)
	if err != nil {
		t.Fatal(err)
	}
	if b.Level() != 100 {
		t.Errorf("initial level clamped: got %v", b.Level())
	}
	if b.Capacity() != 100 {
		t.Errorf("capacity = %v", b.Capacity())
	}
	if !b.Discharge(30) || b.Level() != 70 {
		t.Errorf("after discharge level = %v", b.Level())
	}
	if b.Discharge(71) {
		t.Error("over-discharge must fail")
	}
	if b.Level() != 70 {
		t.Error("failed discharge must not change level")
	}
	if stored := b.Charge(50); stored != 30 || b.Level() != 100 {
		t.Errorf("charge clipped: stored %v level %v", stored, b.Level())
	}
	if stored := b.Charge(-5); stored != 0 {
		t.Error("negative charge must be ignored")
	}
	if b.Discharge(-5) {
		t.Error("negative discharge must fail")
	}
}

func TestAccountRecurrence(t *testing.T) {
	b, _ := NewBattery(10, 4)
	h := Constant{P: 0.001} // 1 mW
	a, err := NewAccount(b, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Budget() != 4 {
		t.Errorf("initial budget = %v", a.Budget())
	}
	// Tour of 2000 s consuming 3 J: P_next = min(4 - 3 + 2, 10) = 3.
	if err := a.EndTour(2000, 3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Budget()-3) > 1e-9 {
		t.Errorf("budget after tour = %v, want 3", a.Budget())
	}
	if a.Now() != 2000 {
		t.Errorf("Now = %v", a.Now())
	}
	// Battery cap: long idle period overfills and clips at capacity.
	if err := a.EndTour(100000, 0); err != nil {
		t.Fatal(err)
	}
	if a.Budget() != 10 {
		t.Errorf("budget must clip at capacity, got %v", a.Budget())
	}
	// Over-consumption rejected.
	if err := a.EndTour(100, 11); err == nil {
		t.Error("expected error when consumption exceeds stored energy")
	}
	if err := a.EndTour(-1, 0); err == nil {
		t.Error("expected error for non-positive duration")
	}
	if err := a.EndTour(100, -1); err == nil {
		t.Error("expected error for negative consumption")
	}
}

func TestNewAccountValidation(t *testing.T) {
	b, _ := NewBattery(10, 4)
	if _, err := NewAccount(nil, Constant{1}, 0); err == nil {
		t.Error("expected error for nil battery")
	}
	if _, err := NewAccount(b, nil, 0); err == nil {
		t.Error("expected error for nil harvester")
	}
}

func TestConditionString(t *testing.T) {
	if Sunny.String() != "sunny" || PartlyCloudy.String() != "partly-cloudy" {
		t.Error("condition names wrong")
	}
	if Condition(9).String() == "" {
		t.Error("unknown condition must still format")
	}
}
