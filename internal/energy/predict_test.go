package energy

import (
	"math"
	"testing"
)

func TestNewPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(0, 0.5); err == nil {
		t.Error("expected bucket error")
	}
	if _, err := NewPredictor(2*secondsPerDay, 0.5); err == nil {
		t.Error("expected oversize bucket error")
	}
	if _, err := NewPredictor(3600, 0); err == nil {
		t.Error("expected alpha error")
	}
	if _, err := NewPredictor(3600, 1.5); err == nil {
		t.Error("expected alpha range error")
	}
}

func TestPredictorLearnsDeterministicProfile(t *testing.T) {
	p, err := NewPredictor(1800, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sun := PaperSolar(Sunny)
	if err := p.Train(sun, 0, 3); err != nil {
		t.Fatal(err)
	}
	if p.Coverage() != 1 {
		t.Fatalf("coverage = %v after full training", p.Coverage())
	}
	// On a noiseless periodic source the prediction should be near-exact
	// for any horizon aligned to the learned profile.
	for _, span := range [][2]float64{{6 * 3600, 10 * 3600}, {0, secondsPerDay}, {11 * 3600, 13 * 3600}} {
		// Ask about the NEXT day (future time), same time-of-day.
		t0 := span[0] + 5*secondsPerDay
		t1 := span[1] + 5*secondsPerDay
		got := p.Predict(t0, t1)
		want := sun.EnergyBetween(t0, t1)
		tol := math.Max(0.02*want, 0.01)
		if math.Abs(got-want) > tol {
			t.Errorf("span %v: predicted %v, actual %v", span, got, want)
		}
	}
	// Night predictions are ~zero.
	if got := p.Predict(5*secondsPerDay, 5*secondsPerDay+3*3600); got > 0.01 {
		t.Errorf("night prediction = %v", got)
	}
}

func TestPredictorTracksNoisySource(t *testing.T) {
	base := PaperSolar(Sunny)
	noisy, err := NewNoisy(base, 0.5, 1800, 42)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewPredictor(3600, 0.3)
	if err := p.Train(noisy, 0, 7); err != nil {
		t.Fatal(err)
	}
	// A week of noisy training should predict daily energy within ~25%.
	day := 10.0
	got := p.Predict(day*secondsPerDay, (day+1)*secondsPerDay)
	actual := noisy.EnergyBetween(day*secondsPerDay, (day+1)*secondsPerDay)
	if got <= 0 {
		t.Fatal("no prediction after training")
	}
	if math.Abs(got-actual)/actual > 0.35 {
		t.Errorf("daily prediction %v vs actual %v", got, actual)
	}
}

func TestPredictorObserveValidation(t *testing.T) {
	p, _ := NewPredictor(3600, 0.5)
	if err := p.Observe(10, 10, 1); err == nil {
		t.Error("expected empty-interval error")
	}
	if err := p.Observe(0, 10, -1); err == nil {
		t.Error("expected negative error")
	}
	if err := p.Train(nil, 0, 1); err == nil {
		t.Error("expected nil-harvester error")
	}
	if err := p.Train(Constant{1}, 0, 0); err == nil {
		t.Error("expected days error")
	}
}

func TestPredictorUntrainedPredictsZero(t *testing.T) {
	p, _ := NewPredictor(3600, 0.5)
	if got := p.Predict(0, secondsPerDay); got != 0 {
		t.Errorf("untrained prediction = %v", got)
	}
	if p.Coverage() != 0 {
		t.Error("untrained coverage must be 0")
	}
	if p.Predict(10, 5) != 0 {
		t.Error("reversed interval must be 0")
	}
}

// Using predictions for tour budgets: the planning error shows up as either
// unused energy (under-prediction) or infeasible schedules that the account
// rejects (over-prediction) — quantify the under-prediction case.
func TestPredictorDrivenBudgeting(t *testing.T) {
	noisy, _ := NewNoisy(PaperSolar(Sunny), 0.6, 1800, 7)
	p, _ := NewPredictor(3600, 0.3)
	if err := p.Train(noisy, 0, 5); err != nil {
		t.Fatal(err)
	}
	// Plan hourly tours for day 6 with predicted budgets, compare with
	// the oracle (actual harvest).
	var predicted, actual float64
	day := 6.0 * secondsPerDay
	for h := 0; h < 24; h++ {
		t0 := day + float64(h)*3600
		predicted += p.Predict(t0, t0+3600)
		actual += noisy.EnergyBetween(t0, t0+3600)
	}
	if predicted <= 0 || actual <= 0 {
		t.Fatal("degenerate day")
	}
	ratio := predicted / actual
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("day-ahead budget prediction off by %vx", ratio)
	}
}
