// Package fault is the deterministic fault-injection subsystem for the
// online protocol and its simulations. The paper's distributed framework
// (Algorithm 2) assumes a lossless control channel — every Probe reaches
// every in-range sensor, every Ack reaches the sink, every registered
// sensor survives the interval. Real energy-harvesting deployments violate
// all of those constantly, so this package models the violations:
//
//   - per-message Bernoulli drops for Probe/Ack/Schedule/Finish,
//   - sensor crash/recovery traces (outage slot windows),
//   - mid-tour energy-harvest shortfalls (the budget the sensor planned on
//     never materializes),
//   - per-interval compute-deadline stalls (the sink's scheduler misses
//     its broadcast deadline and must fall back to a cheap policy).
//
// Every decision is a pure function of (Plan.Seed, kind, coordinates) via
// a splitmix64 hash, so fault traces are fully reproducible from one seed
// and — crucially — independent of evaluation order: two subsystems may
// ask the same question (e.g. "is interval 3's Finish jammed?") and get
// the same answer without sharing an RNG stream.
package fault

import (
	"fmt"
	"math"
	"sort"
)

// Kind tags the protocol message or event a fault roll applies to.
type Kind uint8

// Fault-roll kinds. The values are part of the deterministic trace: two
// rolls differing only in Kind are independent.
const (
	KindProbe Kind = iota + 1
	KindAck
	KindSchedule
	KindFinish
	KindStall
	// KindDelay and KindReorder are consumed by network transports
	// (internal/wire's chaos proxy) to derive per-frame latency and
	// reordering decisions from the same seed as the drop rolls.
	KindDelay
	KindReorder
	// KindConnKill and KindPartition drive transport-level survivability
	// chaos: severed connections (the sensor must redial and resume its
	// session) and interval-scoped black-hole partitions. Like the other
	// kinds they are pure functions of the plan seed, so connection churn
	// is scriptable and reproducible.
	KindConnKill
	KindPartition
)

// Crash is one sensor outage: the sensor is dead (no Acks, no data
// transmissions) for every slot in the inclusive range [From, To].
type Crash struct {
	Sensor int `json:"sensor"`
	From   int `json:"from"`
	To     int `json:"to"`
}

// Shortfall is one energy-harvest deficit: at slot Slot the sensor
// discovers that Joules of its per-tour budget never accrued (clouds,
// shadowing, a mis-calibrated prediction) and writes the loss off.
type Shortfall struct {
	Sensor int     `json:"sensor"`
	Slot   int     `json:"slot"`
	Joules float64 `json:"joules"`
}

// ConnKill is one scripted connection severance: the transport carrying
// the sensor's session is torn down when the given interval's first
// Probe reaches it. The sensor must redial and resume its session.
type ConnKill struct {
	Sensor   int `json:"sensor"`
	Interval int `json:"interval"`
}

// Partition is one network partition window: for every interval in the
// inclusive range [From, To] the listed sensors are black-holed — their
// protocol traffic is silently discarded in both directions. An empty
// Sensors list partitions every sensor.
type Partition struct {
	From    int   `json:"from"`
	To      int   `json:"to"`
	Sensors []int `json:"sensors,omitempty"`
}

// Plan is a declarative fault scenario for one tour. The zero value
// injects nothing (and the online runner treats a zero plan exactly like
// no plan at all).
type Plan struct {
	// Seed drives every Bernoulli roll; runs are reproducible per seed.
	Seed int64 `json:"seed"`
	// DropProbe is the per-(interval, sensor, attempt) probability that
	// an in-range sensor fails to hear the sink's Probe broadcast.
	DropProbe float64 `json:"drop_probe"`
	// DropAck is the per-transmission probability that a sensor's Ack is
	// lost on an otherwise collision-free channel.
	DropAck float64 `json:"drop_ack"`
	// DropSchedule is the per-(interval, sensor) probability that a
	// registered sensor misses the Schedule broadcast and stays silent
	// through its assigned slots.
	DropSchedule float64 `json:"drop_schedule"`
	// DropFinish is the per-interval probability that the Finish
	// broadcast is jammed: no registered sensor commits its debit, so
	// their next registrations report stale budgets.
	DropFinish float64 `json:"drop_finish"`
	// MaxRetries bounds Probe/Ack retransmission rounds per interval
	// (0 = the paper's single exchange). Each extra round costs one
	// probe broadcast plus the pending sensors' Acks.
	MaxRetries int `json:"max_retries"`
	// Crashes lists sensor outage windows in slot units.
	Crashes []Crash `json:"crashes,omitempty"`
	// Shortfalls lists mid-tour energy-harvest deficits.
	Shortfalls []Shortfall `json:"shortfalls,omitempty"`
	// StallProb is the per-interval probability that the scheduler
	// exceeds its compute deadline and the sink degrades to the fallback
	// policy for that interval.
	StallProb float64 `json:"stall_prob"`
	// StallIntervals forces specific intervals into degraded mode
	// regardless of StallProb.
	StallIntervals []int `json:"stall_intervals,omitempty"`
	// ConnKillProb is the per-(interval, sensor) probability that the
	// sensor's transport connection is severed at that interval's first
	// Probe delivery.
	ConnKillProb float64 `json:"conn_kill_prob"`
	// ConnKills lists scripted connection severances.
	ConnKills []ConnKill `json:"conn_kills,omitempty"`
	// Partitions lists interval-windowed black-hole partitions.
	Partitions []Partition `json:"partitions,omitempty"`
}

// maxRetriesCap bounds retransmission rounds so a hostile plan cannot
// turn registration into an unbounded loop.
const maxRetriesCap = 8

// Zero reports whether the plan injects nothing: all probabilities zero,
// no crashes, shortfalls, or forced stalls. A zero plan run is
// semantically identical to a fault-free run.
func (p *Plan) Zero() bool {
	if p == nil {
		return true
	}
	return p.DropProbe == 0 && p.DropAck == 0 && p.DropSchedule == 0 &&
		p.DropFinish == 0 && p.StallProb == 0 && p.ConnKillProb == 0 &&
		len(p.Crashes) == 0 && len(p.Shortfalls) == 0 && len(p.StallIntervals) == 0 &&
		len(p.ConnKills) == 0 && len(p.Partitions) == 0
}

// Validate rejects malformed plans: probabilities outside [0,1] or NaN,
// negative retry counts, inverted crash windows, negative shortfalls.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"drop_probe", p.DropProbe}, {"drop_ack", p.DropAck},
		{"drop_schedule", p.DropSchedule}, {"drop_finish", p.DropFinish},
		{"stall_prob", p.StallProb}, {"conn_kill_prob", p.ConnKillProb},
	} {
		if math.IsNaN(pr.v) || pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: max_retries = %d is negative", p.MaxRetries)
	}
	if p.MaxRetries > maxRetriesCap {
		return fmt.Errorf("fault: max_retries = %d exceeds cap %d", p.MaxRetries, maxRetriesCap)
	}
	for _, c := range p.Crashes {
		if c.Sensor < 0 {
			return fmt.Errorf("fault: crash with negative sensor %d", c.Sensor)
		}
		if c.To < c.From {
			return fmt.Errorf("fault: crash window [%d,%d] inverted", c.From, c.To)
		}
	}
	for _, s := range p.Shortfalls {
		if s.Sensor < 0 {
			return fmt.Errorf("fault: shortfall with negative sensor %d", s.Sensor)
		}
		if math.IsNaN(s.Joules) || s.Joules < 0 {
			return fmt.Errorf("fault: shortfall of %v J invalid", s.Joules)
		}
	}
	for _, k := range p.ConnKills {
		if k.Sensor < 0 {
			return fmt.Errorf("fault: conn kill with negative sensor %d", k.Sensor)
		}
		if k.Interval < 0 {
			return fmt.Errorf("fault: conn kill at negative interval %d", k.Interval)
		}
	}
	for _, w := range p.Partitions {
		if w.To < w.From {
			return fmt.Errorf("fault: partition window [%d,%d] inverted", w.From, w.To)
		}
		for _, s := range w.Sensors {
			if s < 0 {
				return fmt.Errorf("fault: partition names negative sensor %d", s)
			}
		}
	}
	return nil
}

// Sanitized returns a copy of the plan clamped into validity for a tour
// with numSensors sensors and T slots: probabilities are clamped into
// [0,1] (NaN → 0), retry counts into [0, 8], crash windows are swapped
// when inverted and clipped to the tour (windows entirely past the tour
// end are dropped), out-of-range sensors are dropped, and negative or
// NaN shortfalls are zeroed. Fuzzing uses it to turn arbitrary bytes
// into a runnable plan; production callers should Validate instead.
func (p *Plan) Sanitized(numSensors, T int) Plan {
	if p == nil {
		return Plan{}
	}
	clamp01 := func(v float64) float64 {
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	q := Plan{
		Seed:         p.Seed,
		DropProbe:    clamp01(p.DropProbe),
		DropAck:      clamp01(p.DropAck),
		DropSchedule: clamp01(p.DropSchedule),
		DropFinish:   clamp01(p.DropFinish),
		StallProb:    clamp01(p.StallProb),
		ConnKillProb: clamp01(p.ConnKillProb),
		MaxRetries:   p.MaxRetries,
	}
	if q.MaxRetries < 0 {
		q.MaxRetries = 0
	}
	if q.MaxRetries > maxRetriesCap {
		q.MaxRetries = maxRetriesCap
	}
	for _, c := range p.Crashes {
		if c.To < c.From {
			c.From, c.To = c.To, c.From
		}
		if c.Sensor < 0 || c.Sensor >= numSensors || c.From >= T || c.To < 0 {
			continue
		}
		if c.From < 0 {
			c.From = 0
		}
		if c.To >= T {
			c.To = T - 1
		}
		q.Crashes = append(q.Crashes, c)
	}
	for _, s := range p.Shortfalls {
		if s.Sensor < 0 || s.Sensor >= numSensors || math.IsNaN(s.Joules) || s.Joules <= 0 {
			continue
		}
		if math.IsInf(s.Joules, 1) {
			s.Joules = math.MaxFloat64
		}
		if s.Slot < 0 {
			s.Slot = 0
		}
		if s.Slot >= T {
			s.Slot = T - 1
		}
		q.Shortfalls = append(q.Shortfalls, s)
	}
	for _, iv := range p.StallIntervals {
		if iv >= 0 {
			q.StallIntervals = append(q.StallIntervals, iv)
		}
	}
	// Interval indices are bounded above by the slot count (Γ ≥ 1), so T
	// is a safe clip for the interval-coordinate units too.
	for _, k := range p.ConnKills {
		if k.Sensor < 0 || k.Sensor >= numSensors || k.Interval < 0 || k.Interval >= T {
			continue
		}
		q.ConnKills = append(q.ConnKills, k)
	}
	for _, w := range p.Partitions {
		if w.To < w.From {
			w.From, w.To = w.To, w.From
		}
		if w.From >= T || w.To < 0 {
			continue
		}
		if w.From < 0 {
			w.From = 0
		}
		if w.To >= T {
			w.To = T - 1
		}
		var keep []int
		for _, s := range w.Sensors {
			if s >= 0 && s < numSensors {
				keep = append(keep, s)
			}
		}
		if len(w.Sensors) > 0 && len(keep) == 0 {
			continue // every named sensor was bogus; drop, don't widen to "all"
		}
		w.Sensors = keep
		q.Partitions = append(q.Partitions, w)
	}
	return q
}

// Stats tallies the faults injected and the recoveries performed over one
// tour. The online runner fills it; zero-valued fields mean the fault
// class never fired.
type Stats struct {
	// ProbesDropped counts (sensor, attempt) pairs that missed a Probe.
	ProbesDropped int
	// AcksLost counts Ack transmissions erased by the injected drop rate
	// (contention collisions are channel physics, tallied by the engine's
	// ack-lost counter instead).
	AcksLost int
	// SchedulesMissed counts registered sensors that missed a Schedule
	// broadcast that had assigned them at least one slot.
	SchedulesMissed int
	// FinishesJammed counts intervals whose Finish broadcast was dropped.
	FinishesJammed int
	// ProbeRetransmissions counts extra registration rounds beyond the
	// paper's single exchange.
	ProbeRetransmissions int
	// CrashSilences counts in-range sensors that were down at probe time.
	CrashSilences int
	// RepairedSlots counts slots reassigned from a silent sensor to the
	// next-best registered one.
	RepairedSlots int
	// LostSlots counts slots that went idle: the sink's one-slot silence
	// detection, a repair unicast that was itself dropped, or no eligible
	// replacement existing.
	LostSlots int
	// DegradedIntervals counts intervals scheduled by the fallback policy
	// after a compute-deadline stall.
	DegradedIntervals int
	// BudgetClamps counts registrations whose stale reported budget was
	// clamped down to the sink-tracked residual (feasibility guard).
	BudgetClamps int
	// ShortfallJoules is the total harvest deficit applied.
	ShortfallJoules float64
}

// Injector answers fault questions for one tour. All decision methods are
// pure — same arguments, same answer — so callers may consult them from
// multiple places without coordinating; tallies live in Stats and are the
// caller's responsibility.
type Injector struct {
	plan     Plan
	stalls   map[int]bool // forced intervals
	crashes  map[int][]Crash
	deficits map[int][]Shortfall // sorted by slot
	kills    map[int]map[int]bool
}

// NewInjector validates the plan and indexes its traces for a tour with
// numSensors sensors and T slots.
func NewInjector(p Plan, numSensors, T int) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, c := range p.Crashes {
		if c.Sensor >= numSensors {
			return nil, fmt.Errorf("fault: crash names sensor %d of %d", c.Sensor, numSensors)
		}
	}
	for _, s := range p.Shortfalls {
		if s.Sensor >= numSensors {
			return nil, fmt.Errorf("fault: shortfall names sensor %d of %d", s.Sensor, numSensors)
		}
		if s.Slot < 0 || s.Slot >= T {
			return nil, fmt.Errorf("fault: shortfall at slot %d of %d", s.Slot, T)
		}
	}
	for _, k := range p.ConnKills {
		if k.Sensor >= numSensors {
			return nil, fmt.Errorf("fault: conn kill names sensor %d of %d", k.Sensor, numSensors)
		}
	}
	for _, w := range p.Partitions {
		for _, s := range w.Sensors {
			if s >= numSensors {
				return nil, fmt.Errorf("fault: partition names sensor %d of %d", s, numSensors)
			}
		}
	}
	in := &Injector{
		plan:     p,
		stalls:   make(map[int]bool, len(p.StallIntervals)),
		crashes:  make(map[int][]Crash),
		deficits: make(map[int][]Shortfall),
		kills:    make(map[int]map[int]bool, len(p.ConnKills)),
	}
	for _, k := range p.ConnKills {
		if in.kills[k.Interval] == nil {
			in.kills[k.Interval] = make(map[int]bool)
		}
		in.kills[k.Interval][k.Sensor] = true
	}
	for _, iv := range p.StallIntervals {
		in.stalls[iv] = true
	}
	for _, c := range p.Crashes {
		in.crashes[c.Sensor] = append(in.crashes[c.Sensor], c)
	}
	for _, s := range p.Shortfalls {
		in.deficits[s.Sensor] = append(in.deficits[s.Sensor], s)
	}
	for i := range in.deficits {
		d := in.deficits[i]
		sort.Slice(d, func(a, b int) bool { return d[a].Slot < d[b].Slot })
	}
	return in, nil
}

// Plan returns the validated plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// MaxRetries returns the plan's retransmission bound.
func (in *Injector) MaxRetries() int { return in.plan.MaxRetries }

// ProbeHeard reports whether the sensor hears the interval's Probe on the
// given retransmission attempt.
func (in *Injector) ProbeHeard(interval, sensor, attempt int) bool {
	return !in.roll(in.plan.DropProbe, KindProbe, interval, sensor, attempt)
}

// AckLost reports whether the sensor's Ack transmission (identified by a
// caller-chosen salt, e.g. retransmission round × contention attempt) is
// erased in flight.
func (in *Injector) AckLost(interval, sensor, salt int) bool {
	return in.roll(in.plan.DropAck, KindAck, interval, sensor, salt)
}

// ScheduleHeard reports whether the registered sensor hears the
// interval's Schedule broadcast.
func (in *Injector) ScheduleHeard(interval, sensor int) bool {
	return !in.roll(in.plan.DropSchedule, KindSchedule, interval, sensor, 0)
}

// RepairLost reports whether the unicast schedule-repair message
// reassigning the slot to the sensor is dropped. Repairs ride the same
// channel as the Schedule broadcast (same drop rate); the slot-based salt
// (≥ 1) keeps the rolls independent of the broadcast's.
func (in *Injector) RepairLost(interval, sensor, slot int) bool {
	return in.roll(in.plan.DropSchedule, KindSchedule, interval, sensor, slot+1)
}

// FinishJammed reports whether the interval's Finish broadcast is
// dropped. Both the discrete-event filter (which skips the broadcast
// event) and the budget bookkeeping (which keeps the sensors' reported
// budgets stale) consult this; purity keeps them agreeing.
func (in *Injector) FinishJammed(interval int) bool {
	return in.roll(in.plan.DropFinish, KindFinish, interval, 0, 0)
}

// Stalled reports whether the interval's scheduler blows its compute
// deadline (forced via StallIntervals or rolled via StallProb).
func (in *Injector) Stalled(interval int) bool {
	if in.stalls[interval] {
		return true
	}
	return in.roll(in.plan.StallProb, KindStall, interval, 0, 0)
}

// Alive reports whether the sensor is up at the slot (outside every crash
// window).
func (in *Injector) Alive(sensor, slot int) bool {
	for _, c := range in.crashes[sensor] {
		if slot >= c.From && slot <= c.To {
			return false
		}
	}
	return true
}

// Deficit returns the cumulative harvest shortfall the sensor has
// discovered by the start of the given slot (inclusive), in Joules.
func (in *Injector) Deficit(sensor, uptoSlot int) float64 {
	total := 0.0
	for _, s := range in.deficits[sensor] {
		if s.Slot > uptoSlot {
			break
		}
		total += s.Joules
	}
	return total
}

// ConnKilled reports whether the sensor's transport connection is
// severed at the given interval's first Probe delivery — scripted via
// ConnKills or rolled via ConnKillProb. Each (interval, sensor) pair
// fires at most once per connection: transports consult it only on
// attempt-0 probes, so a resumed session is not re-killed by the same
// interval's retransmissions.
func (in *Injector) ConnKilled(interval, sensor int) bool {
	if in.kills[interval][sensor] {
		return true
	}
	return in.roll(in.plan.ConnKillProb, KindConnKill, interval, sensor, 0)
}

// Partitioned reports whether the sensor's protocol traffic is
// black-holed during the interval (inside any partition window naming
// it, or any window with an empty sensor list).
func (in *Injector) Partitioned(interval, sensor int) bool {
	for _, w := range in.plan.Partitions {
		if interval < w.From || interval > w.To {
			continue
		}
		if len(w.Sensors) == 0 {
			return true
		}
		for _, s := range w.Sensors {
			if s == sensor {
				return true
			}
		}
	}
	return false
}

// Unit exposes the injector's deterministic hash stream: a value in
// [0, 1) that is a pure function of (seed, kind, a, b, c). Network
// transports use it for decisions with no Bernoulli shape — e.g. the
// chaos proxy scales Unit(KindDelay, ...) into a per-frame latency —
// so every layer of a chaotic run reproduces from the one plan seed.
func (in *Injector) Unit(kind Kind, a, b, c int) float64 {
	return unit(in.plan.Seed, kind, a, b, c)
}

// roll is one Bernoulli trial: true with probability prob, deterministic
// in (seed, kind, a, b, c).
func (in *Injector) roll(prob float64, kind Kind, a, b, c int) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return unit(in.plan.Seed, kind, a, b, c) < prob
}

// unit hashes the roll coordinates into [0, 1).
func unit(seed int64, kind Kind, a, b, c int) float64 {
	x := splitmix(uint64(seed) ^ 0x9e3779b97f4a7c15)
	x = splitmix(x ^ uint64(kind))
	x = splitmix(x ^ uint64(uint(a)))
	x = splitmix(x ^ uint64(uint(b)))
	x = splitmix(x ^ uint64(uint(c)))
	return float64(x>>11) / (1 << 53)
}

// splitmix is the splitmix64 finalizer (Steele et al.), a cheap
// high-quality bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
