package fault

import (
	"math"
	"testing"
)

func TestPlanZero(t *testing.T) {
	var p *Plan
	if !p.Zero() {
		t.Error("nil plan must be zero")
	}
	if !(&Plan{Seed: 42, MaxRetries: 3}).Zero() {
		t.Error("seed and retries alone inject nothing")
	}
	for _, p := range []Plan{
		{DropProbe: 0.1}, {DropAck: 0.1}, {DropSchedule: 0.1},
		{DropFinish: 0.1}, {StallProb: 0.1},
		{Crashes: []Crash{{Sensor: 0, From: 0, To: 1}}},
		{Shortfalls: []Shortfall{{Sensor: 0, Slot: 0, Joules: 1}}},
		{StallIntervals: []int{2}},
		{ConnKillProb: 0.1},
		{ConnKills: []ConnKill{{Sensor: 0, Interval: 1}}},
		{Partitions: []Partition{{From: 0, To: 2}}},
	} {
		if p.Zero() {
			t.Errorf("plan %+v wrongly zero", p)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := Plan{DropProbe: 0.5, DropAck: 1, MaxRetries: 2,
		Crashes:    []Crash{{Sensor: 1, From: 3, To: 9}},
		Shortfalls: []Shortfall{{Sensor: 0, Slot: 5, Joules: 0.2}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{DropProbe: -0.1}, {DropAck: 1.5}, {DropSchedule: math.NaN()},
		{StallProb: math.Inf(1)}, {MaxRetries: -1}, {MaxRetries: 99},
		{Crashes: []Crash{{Sensor: -1, From: 0, To: 0}}},
		{Crashes: []Crash{{Sensor: 0, From: 5, To: 2}}},
		{Shortfalls: []Shortfall{{Sensor: 0, Slot: 0, Joules: -1}}},
		{Shortfalls: []Shortfall{{Sensor: -2, Slot: 0, Joules: 1}}},
		{ConnKillProb: -0.5}, {ConnKillProb: math.NaN()},
		{ConnKills: []ConnKill{{Sensor: -1, Interval: 0}}},
		{ConnKills: []ConnKill{{Sensor: 0, Interval: -3}}},
		{Partitions: []Partition{{From: 5, To: 2}}},
		{Partitions: []Partition{{From: 0, To: 1, Sensors: []int{-4}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestSanitized(t *testing.T) {
	p := Plan{
		Seed:       7,
		DropProbe:  math.NaN(),
		DropAck:    -3,
		DropFinish: 2,
		MaxRetries: 100,
		Crashes: []Crash{
			{Sensor: 0, From: 9, To: 2},    // inverted → swapped → [2,9] clipped to [2,4]
			{Sensor: 1, From: 50, To: 60},  // past tour end → dropped
			{Sensor: 99, From: 0, To: 1},   // unknown sensor → dropped
			{Sensor: 2, From: -3, To: 100}, // clipped to [0,4]
		},
		Shortfalls: []Shortfall{
			{Sensor: 0, Slot: 2, Joules: math.NaN()},  // dropped
			{Sensor: 0, Slot: 80, Joules: 1},          // clamped to last slot
			{Sensor: 1, Slot: 1, Joules: math.Inf(1)}, // finite-ized
			{Sensor: -1, Slot: 0, Joules: 1},          // dropped
			{Sensor: 2, Slot: 3, Joules: -5},          // dropped
		},
		StallIntervals: []int{-1, 3},
	}
	q := p.Sanitized(3, 5)
	if err := q.Validate(); err != nil {
		t.Fatalf("sanitized plan invalid: %v", err)
	}
	if q.DropProbe != 0 || q.DropAck != 0 || q.DropFinish != 1 {
		t.Errorf("probabilities not clamped: %+v", q)
	}
	if q.MaxRetries != maxRetriesCap {
		t.Errorf("retries = %d", q.MaxRetries)
	}
	if len(q.Crashes) != 2 || q.Crashes[0] != (Crash{0, 2, 4}) || q.Crashes[1] != (Crash{2, 0, 4}) {
		t.Errorf("crashes = %+v", q.Crashes)
	}
	if len(q.Shortfalls) != 2 {
		t.Fatalf("shortfalls = %+v", q.Shortfalls)
	}
	if q.Shortfalls[0].Slot != 4 || q.Shortfalls[1].Joules != math.MaxFloat64 {
		t.Errorf("shortfalls = %+v", q.Shortfalls)
	}
	if len(q.StallIntervals) != 1 || q.StallIntervals[0] != 3 {
		t.Errorf("stalls = %+v", q.StallIntervals)
	}
	// Building an injector from a sanitized plan always succeeds.
	if _, err := NewInjector(q, 3, 5); err != nil {
		t.Fatalf("injector on sanitized plan: %v", err)
	}
	if nilSan := (*Plan)(nil).Sanitized(3, 5); !nilSan.Zero() {
		t.Error("nil plan must sanitize to zero")
	}
}

func TestInjectorDeterminismAndPurity(t *testing.T) {
	p := Plan{Seed: 11, DropProbe: 0.3, DropAck: 0.3, DropSchedule: 0.3,
		DropFinish: 0.3, StallProb: 0.3}
	a, err := NewInjector(p, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(p, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	for iv := 0; iv < 20; iv++ {
		for s := 0; s < 10; s++ {
			if a.ProbeHeard(iv, s, 0) != b.ProbeHeard(iv, s, 0) ||
				a.AckLost(iv, s, 1) != b.AckLost(iv, s, 1) ||
				a.ScheduleHeard(iv, s) != b.ScheduleHeard(iv, s) {
				t.Fatalf("injectors disagree at iv=%d s=%d", iv, s)
			}
		}
		if a.FinishJammed(iv) != b.FinishJammed(iv) || a.Stalled(iv) != b.Stalled(iv) {
			t.Fatalf("broadcast rolls disagree at iv=%d", iv)
		}
		// Purity: asking twice gives the same answer.
		if a.FinishJammed(iv) != a.FinishJammed(iv) {
			t.Fatal("FinishJammed impure")
		}
	}
	// Different seeds should actually differ somewhere.
	c, _ := NewInjector(Plan{Seed: 12, DropProbe: 0.3}, 10, 100)
	same := true
	for iv := 0; iv < 50 && same; iv++ {
		for s := 0; s < 10; s++ {
			if a.ProbeHeard(iv, s, 0) != c.ProbeHeard(iv, s, 0) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 11 and 12 produced identical probe traces")
	}
}

func TestRollRates(t *testing.T) {
	// Empirical drop frequency tracks the configured probability.
	for _, prob := range []float64{0.05, 0.2, 0.5} {
		in, err := NewInjector(Plan{Seed: 3, DropAck: prob}, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		n, hits := 20000, 0
		for i := 0; i < n; i++ {
			if in.AckLost(i, 0, 0) {
				hits++
			}
		}
		got := float64(hits) / float64(n)
		if math.Abs(got-prob) > 0.02 {
			t.Errorf("prob %v: empirical %v", prob, got)
		}
	}
	// Degenerate probabilities are exact.
	in, _ := NewInjector(Plan{Seed: 3, DropAck: 1}, 1, 1)
	if !in.AckLost(0, 0, 0) {
		t.Error("prob 1 must always drop")
	}
	in, _ = NewInjector(Plan{Seed: 3}, 1, 1)
	if in.AckLost(0, 0, 0) {
		t.Error("prob 0 must never drop")
	}
}

func TestCrashAndDeficitTraces(t *testing.T) {
	p := Plan{
		Crashes: []Crash{{Sensor: 0, From: 2, To: 4}, {Sensor: 0, From: 8, To: 8}},
		Shortfalls: []Shortfall{
			{Sensor: 1, Slot: 5, Joules: 0.5},
			{Sensor: 1, Slot: 2, Joules: 0.25},
		},
	}
	in, err := NewInjector(p, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantAlive := map[int]bool{0: true, 1: true, 2: false, 4: false, 5: true, 7: true, 8: false, 9: true}
	for slot, want := range wantAlive {
		if got := in.Alive(0, slot); got != want {
			t.Errorf("Alive(0,%d) = %v", slot, got)
		}
		if !in.Alive(1, slot) {
			t.Errorf("sensor 1 has no crashes but dead at %d", slot)
		}
	}
	for _, tc := range []struct {
		upto int
		want float64
	}{{0, 0}, {1, 0}, {2, 0.25}, {4, 0.25}, {5, 0.75}, {9, 0.75}} {
		if got := in.Deficit(1, tc.upto); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Deficit(1,%d) = %v, want %v", tc.upto, got, tc.want)
		}
	}
	if in.Deficit(0, 9) != 0 {
		t.Error("sensor 0 has no shortfalls")
	}
}

func TestNewInjectorRejectsOutOfRange(t *testing.T) {
	if _, err := NewInjector(Plan{Crashes: []Crash{{Sensor: 5, From: 0, To: 0}}}, 3, 10); err == nil {
		t.Error("crash sensor out of range accepted")
	}
	if _, err := NewInjector(Plan{Shortfalls: []Shortfall{{Sensor: 0, Slot: 99, Joules: 1}}}, 3, 10); err == nil {
		t.Error("shortfall slot out of range accepted")
	}
	if _, err := NewInjector(Plan{DropAck: 7}, 3, 10); err == nil {
		t.Error("invalid probability accepted")
	}
	if _, err := NewInjector(Plan{ConnKills: []ConnKill{{Sensor: 9, Interval: 0}}}, 3, 10); err == nil {
		t.Error("conn-kill sensor out of range accepted")
	}
	if _, err := NewInjector(Plan{Partitions: []Partition{{From: 0, To: 1, Sensors: []int{7}}}}, 3, 10); err == nil {
		t.Error("partition sensor out of range accepted")
	}
}

func TestConnKilled(t *testing.T) {
	p := Plan{Seed: 5, ConnKills: []ConnKill{{Sensor: 1, Interval: 3}}}
	in, err := NewInjector(p, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !in.ConnKilled(3, 1) {
		t.Error("scripted kill did not fire")
	}
	for iv := 0; iv < 10; iv++ {
		for s := 0; s < 4; s++ {
			if iv == 3 && s == 1 {
				continue
			}
			if in.ConnKilled(iv, s) {
				t.Errorf("spurious kill at iv=%d s=%d with zero prob", iv, s)
			}
		}
	}
	// Rolled kills: empirical frequency tracks the probability and the
	// trace is deterministic per seed.
	a, _ := NewInjector(Plan{Seed: 8, ConnKillProb: 0.25}, 1, 1)
	b, _ := NewInjector(Plan{Seed: 8, ConnKillProb: 0.25}, 1, 1)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if a.ConnKilled(i, 0) != b.ConnKilled(i, 0) {
			t.Fatal("conn-kill rolls nondeterministic")
		}
		if a.ConnKilled(i, 0) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.25) > 0.02 {
		t.Errorf("empirical kill rate %v, want ≈0.25", got)
	}
}

func TestPartitioned(t *testing.T) {
	p := Plan{Partitions: []Partition{
		{From: 2, To: 4, Sensors: []int{1}},
		{From: 7, To: 7}, // empty sensor list → everyone
	}}
	in, err := NewInjector(p, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		iv, s int
		want  bool
	}{
		{1, 1, false}, {2, 1, true}, {4, 1, true}, {5, 1, false},
		{3, 0, false}, {3, 2, false}, // window names only sensor 1
		{7, 0, true}, {7, 1, true}, {7, 2, true}, // global window
		{6, 0, false}, {8, 2, false},
	} {
		if got := in.Partitioned(tc.iv, tc.s); got != tc.want {
			t.Errorf("Partitioned(%d,%d) = %v, want %v", tc.iv, tc.s, got, tc.want)
		}
	}
}

func TestSanitizedChurnUnits(t *testing.T) {
	p := Plan{
		ConnKillProb: 3,
		ConnKills: []ConnKill{
			{Sensor: 0, Interval: 2},  // kept
			{Sensor: 9, Interval: 0},  // unknown sensor → dropped
			{Sensor: 1, Interval: -1}, // negative interval → dropped
			{Sensor: 1, Interval: 50}, // past tour end → dropped
		},
		Partitions: []Partition{
			{From: 4, To: 1, Sensors: []int{0}},       // inverted → swapped → [1,4]
			{From: 50, To: 60},                        // past tour end → dropped
			{From: -2, To: 100, Sensors: []int{2, 9}}, // clipped, bogus sensor pruned
			{From: 0, To: 1, Sensors: []int{77}},      // all sensors bogus → dropped
		},
	}
	q := p.Sanitized(3, 5)
	if err := q.Validate(); err != nil {
		t.Fatalf("sanitized plan invalid: %v", err)
	}
	if q.ConnKillProb != 1 {
		t.Errorf("conn_kill_prob = %v", q.ConnKillProb)
	}
	if len(q.ConnKills) != 1 || q.ConnKills[0] != (ConnKill{Sensor: 0, Interval: 2}) {
		t.Errorf("conn kills = %+v", q.ConnKills)
	}
	if len(q.Partitions) != 2 {
		t.Fatalf("partitions = %+v", q.Partitions)
	}
	if q.Partitions[0].From != 1 || q.Partitions[0].To != 4 {
		t.Errorf("window 0 = %+v", q.Partitions[0])
	}
	if q.Partitions[1].From != 0 || q.Partitions[1].To != 4 ||
		len(q.Partitions[1].Sensors) != 1 || q.Partitions[1].Sensors[0] != 2 {
		t.Errorf("window 1 = %+v", q.Partitions[1])
	}
	if _, err := NewInjector(q, 3, 5); err != nil {
		t.Fatalf("injector on sanitized plan: %v", err)
	}
}

func TestForcedStalls(t *testing.T) {
	in, err := NewInjector(Plan{StallIntervals: []int{1, 4}}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for iv := 0; iv < 6; iv++ {
		want := iv == 1 || iv == 4
		if in.Stalled(iv) != want {
			t.Errorf("Stalled(%d) = %v", iv, !want)
		}
	}
}
