package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// FuzzFrameDecode drives arbitrary payloads through the strict decoder:
// no input may panic or over-read, and anything that decodes must
// re-encode and decode back to the same message (round-trip symmetry).
func FuzzFrameDecode(f *testing.F) {
	seed := func(m Msg) {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	seed(&Hello{Version: Version, Role: RoleSink, Sensor: -1})
	seed(&Hello{Version: Version, Role: RoleSensor, Sensor: 17})
	seed(&Probe{Interval: 2, Attempt: 1, Start: 32, End: 47, SinkX: 120, SinkY: -3})
	seed(&Ack{Kind: AckDecline, Interval: 2, Sensor: 5})
	seed(&Ack{Kind: AckConfirm, Interval: 2, Sensor: 5})
	seed(&Ack{Kind: AckRegister, Interval: 2, Attempt: 1, Sensor: 5,
		Budget: 0.125, DataLeft: math.Inf(1), ClipStart: 32, ClipEnd: 40})
	seed(&Schedule{Interval: 2, Pairs: []Assign{{32, 5}, {33, 6}}})
	seed(&Schedule{Interval: 2, Repair: true, Pairs: []Assign{{40, 1}}})
	seed(&Finish{Interval: 2})
	seed(&Hello{Version: Version, Role: RoleSensor, Sensor: 17,
		Token: 0xABCDEF0123456789, LastInterval: 3})
	seed(&Resume{Token: 42, LastInterval: 3, Budget: 0.5, DataLeft: math.Inf(1)})
	seed(&Sync{Resumed: true, Token: 42, Interval: 4, Missed: 1,
		Budget: 0.25, DataLeft: 1024})
	seed(&Heartbeat{})
	// Hostile shapes: truncations, unknown tags, version skew, junk.
	f.Add([]byte{})
	f.Add([]byte{byte(TypeProbe)})
	f.Add([]byte{byte(TypeSchedule), 0, 0, 0, 1, 0, 0xFF, 0xFF})
	f.Add([]byte{99, 1, 2, 3})
	f.Add([]byte{byte(TypeHello), 0x4D, 0x53, Version + 1, 0, 0, 0, 0, 7})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Decode(payload)
		if err != nil {
			return // rejected input is the expected outcome
		}
		frame, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %+v: %v", m, err)
		}
		if n := binary.BigEndian.Uint32(frame); int(n) != len(frame)-4 {
			t.Fatalf("length prefix %d for %d-byte payload", n, len(frame)-4)
		}
		back, err := Decode(frame[4:])
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if !reflect.DeepEqual(back, m) {
			t.Fatalf("round trip diverged:\nfirst  %+v\nsecond %+v", m, back)
		}
	})
}
