package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnOptions configures a Conn's liveness behavior. The zero value is
// the pre-v2 behavior: no deadlines, reads and writes block forever.
type ConnOptions struct {
	// ReadTimeout bounds each ReadMsg call; a peer that goes silent for
	// longer surfaces a net.Error timeout instead of blocking forever.
	// When heartbeats are enabled on the peer, set this to at least 3×
	// the heartbeat period so a healthy idle peer is never cut.
	ReadTimeout time.Duration
	// WriteTimeout bounds each WriteMsg call (a peer that stops draining
	// its socket otherwise wedges the writer once buffers fill).
	WriteTimeout time.Duration
}

// ioScratch pools encode and frame-read scratch buffers shared by every
// Conn and SensorClient in the process, so a multi-thousand-connection
// sink amortizes a handful of buffers across the fleet instead of
// pinning a private write and read buffer per connection.
var ioScratch = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// Conn frames protocol messages over a net.Conn. Reads are buffered;
// writes are serialized by a mutex and land as a single Write per frame
// so concurrent writers (a shard's queue drainer vs. the heartbeat
// loop) never interleave bytes. A Conn tracks the frames-sent/received
// counters per message type, and — when ConnOptions set timeouts —
// applies per-operation deadlines so a dead peer is detected in bounded
// time instead of never.
type Conn struct {
	raw net.Conn
	br  *bufio.Reader
	opt ConnOptions

	wmu sync.Mutex

	// lastWrite is the UnixNano of the last successful frame write; the
	// heartbeat loop consults it to write keepalives only when idle.
	lastWrite atomic.Int64

	hbStop chan struct{}
	hbOnce sync.Once
}

// NewConn wraps a transport connection with no deadlines (the pre-v2
// behavior, used by the idealized loopback paths).
func NewConn(c net.Conn) *Conn { return NewConnOpts(c, ConnOptions{}) }

// NewConnOpts wraps a transport connection with the given liveness
// options.
func NewConnOpts(c net.Conn, opt ConnOptions) *Conn {
	cn := &Conn{raw: c, br: bufio.NewReader(c), opt: opt}
	cn.lastWrite.Store(time.Now().UnixNano())
	return cn
}

// Close stops the heartbeat loop (if running) and closes the underlying
// connection.
func (c *Conn) Close() error {
	c.stopHeartbeat()
	return c.raw.Close()
}

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// WriteMsg encodes and sends one message. The encode scratch comes from
// the shared pool; broadcast paths that write the same message to many
// conns should encode once (EncodeFrame) and use WriteRaw instead.
func (c *Conn) WriteMsg(m Msg) error {
	bp := ioScratch.Get().(*[]byte)
	buf, err := AppendFrame((*bp)[:0], m)
	if err != nil {
		ioScratch.Put(bp)
		return err
	}
	*bp = buf
	err = c.WriteRaw(m.Type(), buf)
	ioScratch.Put(bp)
	return err
}

// WriteRaw sends one pre-encoded frame under the write lock and deadline
// policy; buf must hold exactly one complete frame of type t. This is
// the encode-once fan-out path: the sink serializes a broadcast frame a
// single time and every shard writer hands the same bytes to its conns.
func (c *Conn) WriteRaw(t Type, buf []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.opt.WriteTimeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout)); err != nil {
			return err
		}
	}
	if _, err := c.raw.Write(buf); err != nil {
		return err
	}
	c.lastWrite.Store(time.Now().UnixNano())
	countSent(t)
	return nil
}

// ReadMsg reads and decodes the next message. The returned message does
// not alias the read buffer. Decode failures increment the decode-error
// counter; transport errors (EOF, closed conn, deadline timeouts) pass
// through untouched — test timeouts with net.Error's Timeout.
func (c *Conn) ReadMsg() (Msg, error) {
	if c.opt.ReadTimeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(c.opt.ReadTimeout)); err != nil {
			return nil, err
		}
	}
	bp := ioScratch.Get().(*[]byte)
	payload, err := ReadFrame(c.br, (*bp)[:0])
	if err != nil {
		ioScratch.Put(bp)
		return nil, err
	}
	*bp = payload
	m, err := Decode(payload) // copies everything it keeps
	ioScratch.Put(bp)
	if err != nil {
		decodeErrors.Inc()
		return nil, err
	}
	countReceived(m.Type())
	return m, nil
}

// StartHeartbeat launches a keepalive loop that writes a Heartbeat frame
// whenever the write side has been idle for one period, so an otherwise
// silent but healthy peer keeps resetting the other end's read deadline.
// The returned stop function is idempotent; Close also stops the loop.
func (c *Conn) StartHeartbeat(every time.Duration) (stop func()) {
	if every <= 0 {
		return func() {}
	}
	c.hbStop = make(chan struct{})
	done := c.hbStop
	go func() {
		t := time.NewTicker(every / 2)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				idle := time.Since(time.Unix(0, c.lastWrite.Load()))
				if idle < every {
					continue
				}
				if err := c.WriteMsg(&Heartbeat{}); err != nil {
					return // conn dead; the read side surfaces the error
				}
			}
		}
	}()
	return c.stopHeartbeat
}

func (c *Conn) stopHeartbeat() {
	if c.hbStop == nil {
		return
	}
	c.hbOnce.Do(func() { close(c.hbStop) })
}

// ClientHandshake sends the sensor's Hello — carrying its session token
// (0 = none) and last committed interval (-1 = none) — and validates the
// sink's answering Hello.
func (c *Conn) ClientHandshake(sensor int, token uint64, lastInterval int) error {
	h := &Hello{
		Version: Version, Role: RoleSensor, Sensor: sensor,
		Token: token, LastInterval: lastInterval,
	}
	if err := c.WriteMsg(h); err != nil {
		return err
	}
	m, err := c.ReadMsg()
	if err != nil {
		return err
	}
	r, ok := m.(*Hello)
	if !ok {
		return fmt.Errorf("%w: want hello, got %s", ErrBadField, m.Type())
	}
	if r.Role != RoleSink {
		return fmt.Errorf("%w: peer is not a sink", ErrBadField)
	}
	return nil
}

// ServerHandshake reads the sensor's Hello, answers with the sink's, and
// returns the sensor's Hello (index, session token, last interval).
func (c *Conn) ServerHandshake() (*Hello, error) {
	m, err := c.ReadMsg()
	if err != nil {
		return nil, err
	}
	h, ok := m.(*Hello)
	if !ok {
		return nil, fmt.Errorf("%w: want hello, got %s", ErrBadField, m.Type())
	}
	if h.Role != RoleSensor || h.Sensor < 0 {
		return nil, fmt.Errorf("%w: peer is not a sensor (role %d, id %d)", ErrBadField, h.Role, h.Sensor)
	}
	if err := c.WriteMsg(&Hello{Version: Version, Role: RoleSink, Sensor: -1, LastInterval: -1}); err != nil {
		return nil, err
	}
	return h, nil
}
