package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// Conn frames protocol messages over a net.Conn. Reads are buffered;
// writes are serialized by a mutex and land as a single Write per frame
// so concurrent writers (the sink's broadcast path vs. a repair unicast)
// never interleave bytes. A Conn tracks the frames-sent/received
// counters per message type.
type Conn struct {
	raw net.Conn
	br  *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte

	rbuf []byte
}

// NewConn wraps a transport connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{raw: c, br: bufio.NewReader(c)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// WriteMsg encodes and sends one message.
func (c *Conn) WriteMsg(m Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf, err := AppendFrame(c.wbuf[:0], m)
	if err != nil {
		return err
	}
	c.wbuf = buf
	if _, err := c.raw.Write(buf); err != nil {
		return err
	}
	framesSent.With(m.Type().String()).Inc()
	return nil
}

// ReadMsg reads and decodes the next message. The returned message does
// not alias the read buffer. Decode failures increment the decode-error
// counter; transport errors (EOF, closed conn) pass through untouched.
func (c *Conn) ReadMsg() (Msg, error) {
	payload, err := ReadFrame(c.br, c.rbuf)
	if err != nil {
		return nil, err
	}
	c.rbuf = payload
	m, err := Decode(payload)
	if err != nil {
		decodeErrors.Inc()
		return nil, err
	}
	framesReceived.With(m.Type().String()).Inc()
	return m, nil
}

// ClientHandshake sends the sensor's Hello and validates the sink's.
func (c *Conn) ClientHandshake(sensor int) error {
	if err := c.WriteMsg(&Hello{Version: Version, Role: RoleSensor, Sensor: sensor}); err != nil {
		return err
	}
	m, err := c.ReadMsg()
	if err != nil {
		return err
	}
	h, ok := m.(*Hello)
	if !ok {
		return fmt.Errorf("%w: want hello, got %s", ErrBadField, m.Type())
	}
	if h.Role != RoleSink {
		return fmt.Errorf("%w: peer is not a sink", ErrBadField)
	}
	return nil
}

// ServerHandshake reads the sensor's Hello, answers with the sink's, and
// returns the sensor index.
func (c *Conn) ServerHandshake() (int, error) {
	m, err := c.ReadMsg()
	if err != nil {
		return 0, err
	}
	h, ok := m.(*Hello)
	if !ok {
		return 0, fmt.Errorf("%w: want hello, got %s", ErrBadField, m.Type())
	}
	if h.Role != RoleSensor || h.Sensor < 0 {
		return 0, fmt.Errorf("%w: peer is not a sensor (role %d, id %d)", ErrBadField, h.Role, h.Sensor)
	}
	if err := c.WriteMsg(&Hello{Version: Version, Role: RoleSink, Sensor: -1}); err != nil {
		return 0, err
	}
	return h.Sensor, nil
}
