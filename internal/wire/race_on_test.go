//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation charges allocations to pooled fast paths, so the
// zero-alloc gates skip themselves under -race (they run in the plain
// `go test ./...` tier).
const raceEnabled = true
