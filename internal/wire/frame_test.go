package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"mobisink/internal/online"
)

func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	frame, err := AppendFrame(nil, m)
	if err != nil {
		t.Fatalf("encode %+v: %v", m, err)
	}
	payload, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	got, err := Decode(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	msgs := []Msg{
		&Hello{Version: Version, Role: RoleSink, Sensor: -1},
		&Hello{Version: Version, Role: RoleSensor, Sensor: 42},
		&Probe{Interval: 3, Attempt: 2, Start: 48, End: 63, SinkX: 240.5, SinkY: -17.25},
		&Ack{Kind: AckDecline, Interval: 3, Attempt: 1, Sensor: 9},
		&Ack{Kind: AckConfirm, Interval: 7, Sensor: 120},
		&Ack{Kind: AckRegister, Interval: 3, Attempt: 2, Sensor: 9,
			Budget: 0.03125, DataLeft: math.Inf(1), ClipStart: 50, ClipEnd: 60},
		&Ack{Kind: AckRegister, Interval: 0, Sensor: 0,
			Budget: 1e-9, DataLeft: 65536.5, ClipStart: 0, ClipEnd: 0},
		&Schedule{Interval: 3, Pairs: []Assign{{48, 9}, {49, 11}, {55, 9}}},
		&Schedule{Interval: 4, Repair: true, Pairs: []Assign{{61, 2}}},
		&Schedule{Interval: 5},
		&Finish{Interval: 3},
		&Hello{Version: Version, Role: RoleSensor, Sensor: 7,
			Token: 0xDEADBEEF12345678, LastInterval: 5},
		&Hello{Version: Version, Role: RoleSink, Sensor: -1, LastInterval: -1},
		&Resume{Token: 0, LastInterval: -1, Budget: 1.5, DataLeft: math.Inf(1)},
		&Resume{Token: 99, LastInterval: 4, Budget: 0, DataLeft: 0.03125},
		&Sync{Resumed: true, Token: 3, Interval: 6, Missed: 2,
			Budget: 0.25, DataLeft: math.Inf(1)},
		&Sync{Token: 1, Interval: -1},
		&Heartbeat{},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestRegistrationCarriedExactly(t *testing.T) {
	reg := online.Registration{
		Sensor: 17, Budget: 0.1 + 0.2, DataLeft: math.Inf(1), ClipStart: 100, ClipEnd: 115,
	}
	got := roundTrip(t, RegisterAck(6, 1, reg)).(*Ack)
	if got.Registration() != reg {
		t.Fatalf("registration mangled: got %+v want %+v", got.Registration(), reg)
	}
	if got.Interval != 6 || got.Attempt != 1 {
		t.Fatalf("ack header mangled: %+v", got)
	}
}

func TestDecodeStrict(t *testing.T) {
	valid := func(m Msg) []byte {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		return frame[4:] // payload without length prefix
	}
	probe := valid(&Probe{Interval: 1, Start: 16, End: 31})
	hello := valid(&Hello{Version: Version, Role: RoleSensor, Sensor: 3})
	sched := valid(&Schedule{Interval: 1, Pairs: []Assign{{16, 2}}})

	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, ErrTruncated},
		{"unknown tag", []byte{99, 0, 0, 0, 0}, ErrUnknownType},
		{"truncated probe", probe[:len(probe)-3], ErrTruncated},
		{"trailing probe", append(append([]byte{}, probe...), 0), ErrTrailing},
		{"bad magic", func() []byte {
			p := append([]byte{}, hello...)
			p[1], p[2] = 0xDE, 0xAD
			return p
		}(), ErrBadMagic},
		{"version mismatch", func() []byte {
			p := append([]byte{}, hello...)
			p[3] = Version + 1
			return p
		}(), ErrVersion},
		{"bad hello role", func() []byte {
			p := append([]byte{}, hello...)
			p[4] = 7
			return p
		}(), ErrBadField},
		{"bad ack kind", func() []byte {
			p := valid(&Ack{Kind: AckDecline, Interval: 1, Sensor: 2})
			p[1] = 9
			return p
		}(), ErrBadField},
		{"negative finish interval", func() []byte {
			p := valid(&Finish{Interval: 1})
			binary.BigEndian.PutUint32(p[1:], 1<<31)
			return p
		}(), ErrBadField},
		{"schedule count overruns payload", func() []byte {
			p := append([]byte{}, sched...)
			binary.BigEndian.PutUint16(p[6:], 500)
			return p
		}(), ErrTruncated},
		{"bad schedule repair byte", func() []byte {
			p := append([]byte{}, sched...)
			p[5] = 2
			return p
		}(), ErrBadField},
		{"hello last interval below -1", func() []byte {
			p := append([]byte{}, hello...)
			binary.BigEndian.PutUint32(p[17:], 0xFFFFFFFE) // -2
			return p
		}(), ErrBadField},
		{"truncated resume", func() []byte {
			p := valid(&Resume{Token: 1, LastInterval: 0, Budget: 1, DataLeft: 1})
			return p[:len(p)-4]
		}(), ErrTruncated},
		{"bad sync resumed byte", func() []byte {
			p := valid(&Sync{Resumed: true, Token: 1, Interval: 0, Budget: 1, DataLeft: 1})
			p[1] = 2
			return p
		}(), ErrBadField},
		{"sync token zero", func() []byte {
			p := valid(&Sync{Token: 1, Interval: 0})
			for i := 2; i < 10; i++ {
				p[i] = 0
			}
			return p
		}(), ErrBadField},
		{"trailing heartbeat", append(valid(&Heartbeat{}), 0), ErrTrailing},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.payload); !errors.Is(err, tc.want) {
			t.Errorf("%s: got error %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestEncodeRejectsBadFields(t *testing.T) {
	bad := []Msg{
		&Probe{Interval: -1, Start: 0, End: 1},
		&Probe{Interval: 0, Start: 5, End: 4},
		&Probe{Interval: 0, Attempt: 300, Start: 0, End: 1},
		&Ack{Kind: AckRegister, Interval: 0, Sensor: 1, Budget: math.NaN()},
		&Ack{Kind: AckRegister, Interval: 0, Sensor: 1, Budget: math.Inf(1)},
		&Ack{Kind: AckRegister, Interval: 0, Sensor: 1, DataLeft: math.NaN()},
		&Ack{Kind: AckDecline, Interval: 0, Sensor: -1},
		&Schedule{Interval: 0, Pairs: []Assign{{-1, 0}}},
		&Schedule{Interval: 0, Pairs: make([]Assign, MaxSchedulePairs+1)},
		&Finish{Interval: -2},
		&Hello{Version: Version, Role: 3},
		&Hello{Version: Version, Role: RoleSensor, Sensor: 1, LastInterval: -2},
		&Resume{LastInterval: -2},
		&Resume{Budget: math.Inf(1)},
		&Resume{Budget: math.NaN()},
		&Resume{DataLeft: -1},
		&Sync{Token: 0, Interval: 0},
		&Sync{Token: 1, Interval: -2},
		&Sync{Token: 1, Missed: -1},
		&Sync{Token: 1, Budget: math.NaN()},
	}
	for _, m := range bad {
		if _, err := AppendFrame(nil, m); !errors.Is(err, ErrBadField) {
			t.Errorf("%+v: got %v, want ErrBadField", m, err)
		}
	}
}

func TestReadFrameLimits(t *testing.T) {
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(huge[:]), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized prefix: got %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("zero-length frame: got %v, want ErrTruncated", err)
	}
	// Declared length longer than the stream: unexpected EOF, not a hang.
	frame, err := AppendFrame(nil, &Finish{Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2]), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short stream: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	var stream []byte
	var err error
	for i := 0; i < 3; i++ {
		stream, err = AppendFrame(stream, &Finish{Interval: i})
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream)
	buf := make([]byte, 0, 64)
	for i := 0; i < 3; i++ {
		payload, err := ReadFrame(r, buf)
		if err != nil {
			t.Fatal(err)
		}
		if &payload[0] != &buf[:1][0] {
			t.Fatal("ReadFrame did not reuse the caller's buffer")
		}
		m, err := Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*Finish).Interval; got != i {
			t.Fatalf("frame %d decoded as interval %d", i, got)
		}
	}
}
