package wire

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file is the sink's sharded write plane. The paper's radio model
// is one sink transmission heard by every in-range sensor; emulating it
// as N sequential TCP unicasts from the interval loop makes one slow
// peer stall the whole interval (head-of-line blocking) and bounds the
// fleet by a single goroutine's syscall throughput. The rebuild:
//
//   - encode-once, write-many: a broadcast frame is serialized exactly
//     once into a pooled, reference-counted Frame and every writer hands
//     the same bytes to the socket;
//   - W writer shards, each owning the conns with id ≡ shard (mod W), a
//     FIFO task queue drained by one worker, and a bounded outbound
//     queue per conn drained by a dedicated writer goroutine;
//   - backpressure: a peer that stops draining fills only its own
//     queue; on overflow the conn is killed through the same drop path
//     as a write-deadline failure, and the sensor may resume its
//     session on a fresh connection.
//
// Per-sensor frame order is preserved end to end — shard task FIFO ×
// per-conn queue FIFO × single writer per conn — which is what keeps
// the fault-free tour byte-identical to online.Run (see DESIGN.md §3j).

// Frame is one encoded protocol frame shared by every connection a
// broadcast fans out to: serialized exactly once, reference-counted
// back into a sync.Pool when the last writer has released it.
type Frame struct {
	typ  Type
	buf  []byte
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return &Frame{} }}

// EncodeFrame serializes m once into a pooled frame. The caller holds
// one reference; every additional holder must Retain before hand-off
// and Release when done.
func EncodeFrame(m Msg) (*Frame, error) {
	f := framePool.Get().(*Frame)
	buf, err := AppendFrame(f.buf[:0], m)
	if err != nil {
		framePool.Put(f)
		return nil, err
	}
	f.typ = m.Type()
	f.buf = buf
	f.refs.Store(1)
	return f, nil
}

// Type returns the frame's message type.
func (f *Frame) Type() Type { return f.typ }

// Bytes returns the encoded frame, valid until the last Release.
func (f *Frame) Bytes() []byte { return f.buf }

// Retain adds n references.
func (f *Frame) Retain(n int32) { f.refs.Add(n) }

// Release drops one reference; the last one returns the buffer to the
// pool for the next encode.
func (f *Frame) Release() {
	if f.refs.Add(-1) == 0 {
		framePool.Put(f)
	}
}

// qitem is one entry of a conn's outbound queue: a shared frame to
// write, and/or a flush marker (nil frame) whose WaitGroup is signaled
// once everything queued ahead of it has drained.
type qitem struct {
	f    *Frame
	done *sync.WaitGroup
}

// sconn is a shard's handle on one live connection: a bounded FIFO
// queue drained by a dedicated writer goroutine.
type sconn struct {
	id   int
	c    *Conn
	q    chan qitem
	stop chan struct{}
	once sync.Once

	mu   sync.Mutex
	dead bool
}

// enqueue appends one item in FIFO order. ok is false when the conn is
// already dead (item skipped) or the queue is full (full=true; the
// caller kills the conn). The mutex closes the race against die's
// drain: no item can land in the queue after the drain has started.
func (sc *sconn) enqueue(it qitem) (ok, full bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.dead {
		return false, false
	}
	select {
	case sc.q <- it:
		return true, false
	default:
		return false, true
	}
}

// halt unblocks the writer goroutine; idempotent.
func (sc *sconn) halt() { sc.once.Do(func() { close(sc.stop) }) }

// die marks the queue dead and drains it, releasing frame references
// and acknowledging flush markers so no flusher waits on a dead conn.
func (sc *sconn) die() {
	sc.mu.Lock()
	sc.dead = true
	sc.mu.Unlock()
	for {
		select {
		case it := <-sc.q:
			if it.f != nil {
				it.f.Release()
			}
			if it.done != nil {
				it.done.Done()
			}
		default:
			return
		}
	}
}

// writeLoop drains the conn's queue onto the socket. A write failure
// (deadline, peer gone) reports the conn through drop — the same kill
// path a serial broadcast used — and exits; die() then clears whatever
// was still queued.
func (sc *sconn) writeLoop(done <-chan struct{}, drop func(id int, c *Conn)) {
	defer sc.die()
	for {
		select {
		case <-sc.stop:
			return
		case <-done:
			return
		case it := <-sc.q:
			var err error
			if it.f != nil {
				err = sc.c.WriteRaw(it.f.typ, it.f.buf)
				it.f.Release()
			}
			if it.done != nil {
				it.done.Done()
			}
			if err != nil {
				drop(sc.id, sc.c)
				return
			}
		}
	}
}

// btask is one shard's slice of a broadcast, or (nil frame) a flush
// sweep. The task channel is FIFO and drained by a single worker per
// shard, which — combined with each conn's FIFO queue — preserves
// per-sensor frame order end to end.
type btask struct {
	f     *Frame
	ids   *[]int
	flush *sync.WaitGroup
	count chan<- int
}

type bshard struct {
	mu    sync.Mutex
	conns map[int]*sconn
	tasks chan btask
}

// broadcaster is the sharded fan-out plane: W shards, each owning a
// disjoint conn set (id mod W) and one worker moving pre-encoded frames
// from the task queue into the per-conn queues. The interval loop's
// part of a broadcast ends at task hand-off; it never blocks on a
// socket write.
type broadcaster struct {
	shards []*bshard
	queue  int
	done   <-chan struct{}
	drop   func(id int, c *Conn)
	idsP   sync.Pool

	// Flush state: one WaitGroup reused across calls (fmu serializes
	// them) and a counts channel sized to the shard count, so a
	// steady-state Flush allocates nothing.
	fmu  sync.Mutex
	fwg  sync.WaitGroup
	fcnt chan int
}

// newBroadcaster builds the write plane: w shards, per-conn queues of
// the given depth, workers exiting when done closes, dead conns
// reported through drop (which must tolerate concurrent calls and may
// call back into removeConn).
func newBroadcaster(w, queue int, done <-chan struct{}, drop func(id int, c *Conn)) *broadcaster {
	if w < 1 {
		w = 1
	}
	if queue < 1 {
		queue = 1
	}
	b := &broadcaster{
		shards: make([]*bshard, w),
		queue:  queue,
		done:   done,
		drop:   drop,
		idsP:   sync.Pool{New: func() any { s := make([]int, 0, 64); return &s }},
		fcnt:   make(chan int, w),
	}
	for i := range b.shards {
		sh := &bshard{conns: make(map[int]*sconn), tasks: make(chan btask, 64)}
		b.shards[i] = sh
		go b.work(sh)
	}
	return b
}

func (b *broadcaster) shardOf(id int) *bshard { return b.shards[id%len(b.shards)] }

func (b *broadcaster) getIDs() *[]int {
	p := b.idsP.Get().(*[]int)
	*p = (*p)[:0]
	return p
}

func (b *broadcaster) putIDs(p *[]int) { b.idsP.Put(p) }

// add registers a conn with its shard and starts its writer, replacing
// (and halting) any stale sconn still holding the sensor's slot.
func (b *broadcaster) add(id int, c *Conn) *sconn {
	sc := &sconn{id: id, c: c, q: make(chan qitem, b.queue), stop: make(chan struct{})}
	sh := b.shardOf(id)
	sh.mu.Lock()
	old := sh.conns[id]
	sh.conns[id] = sc
	sh.mu.Unlock()
	if old != nil {
		old.halt()
	}
	go sc.writeLoop(b.done, b.drop)
	return sc
}

// remove detaches sc iff it still owns its slot (a replacement may have
// taken it over) and halts its writer.
func (b *broadcaster) remove(id int, sc *sconn) {
	sh := b.shardOf(id)
	sh.mu.Lock()
	if sh.conns[id] == sc {
		delete(sh.conns, id)
	}
	sh.mu.Unlock()
	sc.halt()
}

// removeConn detaches by conn identity (the drop path, which has no
// sconn at hand).
func (b *broadcaster) removeConn(id int, c *Conn) {
	sh := b.shardOf(id)
	sh.mu.Lock()
	sc := sh.conns[id]
	if sc != nil && sc.c == c {
		delete(sh.conns, id)
	} else {
		sc = nil
	}
	sh.mu.Unlock()
	if sc != nil {
		sc.halt()
	}
}

// Broadcast encodes m exactly once and hands each shard its slice of
// the id list; it returns at hand-off, with delivery proceeding on the
// shard writers. A conn whose bounded queue is full is killed
// (backpressure → the drop path). Callers must not rely on delivery
// having happened on return — Flush provides that barrier. Not safe
// for concurrent use; the interval loop is the only caller.
func (b *broadcaster) Broadcast(m Msg, ids []int) error {
	f, err := EncodeFrame(m)
	if err != nil {
		return err
	}
	w := len(b.shards)
	var partsArr [64]*[]int
	parts := partsArr[:w]
	for _, id := range ids {
		p := parts[id%w]
		if p == nil {
			p = b.getIDs()
			parts[id%w] = p
		}
		*p = append(*p, id)
	}
	for i, p := range parts {
		if p == nil {
			continue
		}
		f.Retain(1)
		select {
		case b.shards[i].tasks <- btask{f: f, ids: p}:
		case <-b.done:
			f.Release()
			b.putIDs(p)
		}
	}
	f.Release()
	return nil
}

// Unicast routes one frame to a single conn through its shard's task
// FIFO, so it cannot overtake an earlier broadcast to the same sensor
// (the repair path depends on Schedule-before-repair order). It reports
// whether the sensor had a live conn at hand-off; delivery itself is
// asynchronous and optimistic, matching the repair commit's documented
// semantics.
func (b *broadcaster) Unicast(id int, m Msg) bool {
	sh := b.shardOf(id)
	sh.mu.Lock()
	_, live := sh.conns[id]
	sh.mu.Unlock()
	if !live {
		return false
	}
	f, err := EncodeFrame(m)
	if err != nil {
		return false
	}
	ids := b.getIDs()
	*ids = append(*ids, id)
	f.Retain(1)
	select {
	case sh.tasks <- btask{f: f, ids: ids}:
	case <-b.done:
		f.Release()
		b.putIDs(ids)
	}
	f.Release()
	return true
}

// Flush blocks until every frame enqueued before the call has been
// written or its conn killed. It routes a marker through each shard's
// task FIFO and then through each conn's queue, so the barrier cannot
// overtake pending frames. The sink flushes once at the end of a
// completed tour, so the final Finish frames are on the wire before
// the listener closes; a HaltAfter "crash" deliberately skips it.
func (b *broadcaster) Flush(ctx context.Context) error {
	b.fmu.Lock()
	defer b.fmu.Unlock()
	// Drop counts stranded by an earlier bailed-out flush.
	for {
		select {
		case <-b.fcnt:
			continue
		default:
		}
		break
	}
	sent := 0
	for _, sh := range b.shards {
		select {
		case sh.tasks <- btask{flush: &b.fwg, count: b.fcnt}:
			sent++
		case <-b.done:
			return nil // sink closing; nothing left to guarantee
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// Collect the per-shard marker counts first: only after every sweep
	// has finished its wg.Add calls is Wait safe.
	for i := 0; i < sent; i++ {
		select {
		case <-b.fcnt:
		case <-b.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	drained := make(chan struct{})
	go func() { b.fwg.Wait(); close(drained) }()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *broadcaster) work(sh *bshard) {
	for {
		select {
		case <-b.done:
			return
		case t := <-sh.tasks:
			b.run(sh, t)
		}
	}
}

// run executes one task. Kills are collected under the shard lock and
// applied after it is released: drop calls back into removeConn, which
// takes the same lock.
func (b *broadcaster) run(sh *bshard, t btask) {
	if t.f == nil { // flush sweep
		var kills []*sconn
		n := 0
		sh.mu.Lock()
		for _, sc := range sh.conns {
			t.flush.Add(1)
			ok, full := sc.enqueue(qitem{done: t.flush})
			if ok {
				n++
				continue
			}
			t.flush.Done()
			if full {
				kills = append(kills, sc)
			}
		}
		sh.mu.Unlock()
		for _, sc := range kills {
			connKills.Inc()
			b.drop(sc.id, sc.c)
		}
		select {
		case t.count <- n:
		case <-b.done:
		}
		return
	}
	for _, id := range *t.ids {
		sh.mu.Lock()
		sc := sh.conns[id]
		sh.mu.Unlock()
		if sc == nil {
			continue
		}
		t.f.Retain(1)
		ok, full := sc.enqueue(qitem{f: t.f})
		if !ok {
			t.f.Release()
			if full {
				connKills.Inc()
				b.drop(sc.id, sc.c)
			}
		}
	}
	b.putIDs(t.ids)
	t.f.Release()
}
