package wire

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobisink/internal/fault"
)

// ChaosConfig translates a fault.Plan into network behavior.
type ChaosConfig struct {
	// Plan supplies the drop probabilities and the deterministic seed.
	// The proxy applies the message-level drops (Probe, register-Ack,
	// Schedule, repair, Finish) with exactly the same keyed Bernoulli
	// rolls as the in-process injector, plus the connection-level churn
	// units: ConnKillProb/ConnKills sever a sensor's TCP connection at
	// first-probe delivery, and Partitions black-hole a sensor's protocol
	// traffic for a window of intervals. Crash and stall faults stay where
	// they belong (sensor endpoints and the sink's scheduler).
	Plan fault.Plan
	// MaxDelay, when positive, delays each forwarded frame by a
	// deterministic pseudo-random fraction of it.
	MaxDelay time.Duration
	// ReorderProb is the per-frame probability of an adjacent swap: the
	// frame is held back and delivered after its successor.
	ReorderProb float64
}

// ChaosStats counts what the proxy did to the traffic.
type ChaosStats struct {
	DroppedProbes    int64
	DroppedAcks      int64
	DroppedSchedules int64
	DroppedRepairs   int64
	DroppedFinishes  int64
	Delayed          int64
	Reordered        int64
	// ConnKills counts proxied connections severed by the conn-kill units.
	ConnKills int64
	// PartitionDrops counts frames black-holed inside partition windows.
	PartitionDrops int64
}

// Dropped returns the total frames discarded.
func (s ChaosStats) Dropped() int64 {
	return s.DroppedProbes + s.DroppedAcks + s.DroppedSchedules + s.DroppedRepairs +
		s.DroppedFinishes + s.PartitionDrops
}

// ChaosProxy sits between sensor clients and a Sink, forwarding frames
// while injecting the fault plan as real network behavior: dropped
// frames simply never arrive, so the endpoints' recovery machinery —
// retransmission windows, confirm-based silence detection, stale-budget
// clamps, session resumption — is exercised by actual message loss and
// connection churn rather than simulated flags. Direction matters:
// Probe/Schedule/Finish drops apply sink → sensor, register-Ack drops
// apply sensor → sink, and declines, confirms, and the session handshake
// (Hello, Resume, Sync) always pass — black-holing a handshake would
// wedge a reconnecting client rather than model loss. Conn kills fire on
// delivery of an interval's first probe (attempt 0 only, so a resumed
// connection is not re-killed by the retransmit of the same probe).
// Partition windows require a Recovery-mode sink: the idealized protocol
// waits forever for the partitioned sensor's answer.
type ChaosProxy struct {
	cfg ChaosConfig
	inj *fault.Injector
	ln  net.Listener
	// sinkAddr is where forwarded traffic goes.
	sinkAddr string

	mu     sync.Mutex
	closed bool
	conns  []net.Conn

	stats struct {
		droppedProbes    atomic.Int64
		droppedAcks      atomic.Int64
		droppedSchedules atomic.Int64
		droppedRepairs   atomic.Int64
		droppedFinishes  atomic.Int64
		delayed          atomic.Int64
		reordered        atomic.Int64
		connKills        atomic.Int64
		partitionDrops   atomic.Int64
	}
}

// NewChaosProxy listens on 127.0.0.1:0 and forwards each accepted
// connection to the sink at sinkAddr under the chaos plan. numSensors
// and slots size the injector's roll domain exactly like the in-process
// runner's.
func NewChaosProxy(sinkAddr string, cfg ChaosConfig, numSensors, slots int) (*ChaosProxy, error) {
	inj, err := fault.NewInjector(cfg.Plan, numSensors, slots)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{cfg: cfg, inj: inj, ln: ln, sinkAddr: sinkAddr}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; sensors dial this instead of
// the sink.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the chaos counters.
func (p *ChaosProxy) Stats() ChaosStats {
	return ChaosStats{
		DroppedProbes:    p.stats.droppedProbes.Load(),
		DroppedAcks:      p.stats.droppedAcks.Load(),
		DroppedSchedules: p.stats.droppedSchedules.Load(),
		DroppedRepairs:   p.stats.droppedRepairs.Load(),
		DroppedFinishes:  p.stats.droppedFinishes.Load(),
		Delayed:          p.stats.delayed.Load(),
		Reordered:        p.stats.reordered.Load(),
		ConnKills:        p.stats.connKills.Load(),
		PartitionDrops:   p.stats.partitionDrops.Load(),
	}
}

// Close stops accepting and severs all proxied connections.
func (p *ChaosProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := append([]net.Conn(nil), p.conns...)
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (p *ChaosProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns = append(p.conns, c)
	return true
}

func (p *ChaosProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.relay(client)
	}
}

// relay bridges one sensor connection to the sink, decoding and
// re-encoding every frame so the chaos rules can key their rolls on the
// message contents.
func (p *ChaosProxy) relay(clientRaw net.Conn) {
	sinkRaw, err := net.Dial("tcp", p.sinkAddr)
	if err != nil {
		clientRaw.Close()
		return
	}
	if !p.track(clientRaw) || !p.track(sinkRaw) {
		clientRaw.Close()
		sinkRaw.Close()
		return
	}
	client, sink := NewConn(clientRaw), NewConn(sinkRaw)
	// The sensor index arrives in the client's Hello; both pumps key
	// their rolls on it. The current interval arrives in the sink's
	// probes; frames without their own interval (heartbeats) borrow it
	// for the partition check.
	var sensorID, curInterval atomic.Int64
	sensorID.Store(-1)
	curInterval.Store(-1)
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			p.stats.connKills.Add(1)
			clientRaw.Close()
			sinkRaw.Close()
		})
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // sensor → sink
		defer wg.Done()
		p.pump(client, sink, &sensorID, &curInterval, 1, p.dropToSink, nil)
		sink.Close()
	}()
	go func() { // sink → sensor
		defer wg.Done()
		p.pump(sink, client, &sensorID, &curInterval, 0, p.dropToClient, kill)
		client.Close()
	}()
	wg.Wait()
}

// frameInterval extracts a frame's own interval index, falling back to
// the relay's last-probed interval for frames that carry none.
func frameInterval(m Msg, cur int64) int {
	switch m := m.(type) {
	case *Probe:
		return m.Interval
	case *Ack:
		return m.Interval
	case *Schedule:
		return m.Interval
	case *Finish:
		return m.Interval
	}
	return int(cur)
}

// pump forwards frames from src to dst, applying the connection-kill
// rule (sink→sensor only, nil kill otherwise), the partition rule, the
// drop rule, the deterministic delay, and the adjacent-swap reorder. dir
// keys the delay/reorder rolls (0 sink→sensor, 1 sensor→sink) so the two
// directions draw independent streams.
func (p *ChaosProxy) pump(src, dst *Conn, sensorID, curInterval *atomic.Int64, dir int, drop func(Msg, int) bool, kill func()) {
	var held Msg
	seq := 0
	forward := func(m Msg) bool { return dst.WriteMsg(m) == nil }
	for {
		m, err := src.ReadMsg()
		if err != nil {
			if held != nil {
				forward(held)
			}
			return
		}
		switch h := m.(type) {
		case *Hello:
			if h.Role == RoleSensor {
				sensorID.Store(int64(h.Sensor))
			}
			if !forward(m) { // the handshake is never dropped or delayed
				return
			}
			continue
		case *Resume, *Sync:
			if !forward(m) { // session resumption traffic always passes
				return
			}
			continue
		}
		seq++
		id := int(sensorID.Load())
		if pr, ok := m.(*Probe); ok {
			curInterval.Store(int64(pr.Interval))
			if kill != nil && pr.Attempt == 0 && id >= 0 && p.inj.ConnKilled(pr.Interval, id) {
				// The connection dies with the probe in flight: neither the
				// probe nor anything after it is delivered.
				kill()
				return
			}
		}
		if id >= 0 && p.inj.Partitioned(frameInterval(m, curInterval.Load()), id) {
			p.stats.partitionDrops.Add(1)
			framesDropped.With(m.Type().String()).Inc()
			continue
		}
		if drop(m, id) {
			framesDropped.With(m.Type().String()).Inc()
			continue
		}
		if p.cfg.MaxDelay > 0 {
			u := p.inj.Unit(fault.KindDelay, id, seq, dir)
			time.Sleep(time.Duration(u * float64(p.cfg.MaxDelay)))
			p.stats.delayed.Add(1)
		}
		if held != nil {
			ok := forward(m)
			ok = forward(held) && ok
			held = nil
			p.stats.reordered.Add(1)
			if !ok {
				return
			}
			continue
		}
		if p.cfg.ReorderProb > 0 && p.inj.Unit(fault.KindReorder, id, seq, dir) < p.cfg.ReorderProb {
			held = m
			continue
		}
		if !forward(m) {
			return
		}
	}
}

// dropToClient applies the sink → sensor drop rules with the same keyed
// rolls as the in-process injector: a dropped broadcast frame is rolled
// per receiving sensor, so the set of sensors that miss it matches the
// in-process run for the same plan seed.
func (p *ChaosProxy) dropToClient(m Msg, id int) bool {
	if id < 0 {
		return false // no Hello yet; nothing to key on
	}
	switch m := m.(type) {
	case *Probe:
		if !p.inj.ProbeHeard(m.Interval, id, m.Attempt) {
			p.stats.droppedProbes.Add(1)
			return true
		}
	case *Schedule:
		if m.Repair {
			if len(m.Pairs) > 0 && p.inj.RepairLost(m.Interval, id, m.Pairs[0].Slot) {
				p.stats.droppedRepairs.Add(1)
				return true
			}
		} else if !p.inj.ScheduleHeard(m.Interval, id) {
			p.stats.droppedSchedules.Add(1)
			return true
		}
	case *Finish:
		if p.inj.FinishJammed(m.Interval) {
			p.stats.droppedFinishes.Add(1)
			return true
		}
	}
	return false
}

// dropToSink applies the sensor → sink rule: register-Acks are lost
// with the plan's Ack rate (same salt as the in-process non-contention
// path); declines and confirms pass.
func (p *ChaosProxy) dropToSink(m Msg, id int) bool {
	if id < 0 {
		return false
	}
	if a, ok := m.(*Ack); ok && a.Kind == AckRegister {
		if p.inj.AckLost(a.Interval, id, a.Attempt<<20) {
			p.stats.droppedAcks.Add(1)
			return true
		}
	}
	return false
}
