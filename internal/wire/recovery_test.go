package wire

import (
	"context"
	"errors"
	"math"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/fault"
	"mobisink/internal/online"
)

// pipeConns wraps both ends of a net.Pipe (fully synchronous: a write
// blocks until the peer reads, the harshest possible stall).
func pipeConns(opt ConnOptions) (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConnOpts(a, opt), NewConnOpts(b, opt)
}

// TestWriteDeadlineBoundsStalledPeer is the regression test for the
// unbounded-blocking defect: before ConnOptions, a peer that stopped
// draining its socket wedged WriteMsg — and with it the sink's broadcast
// path inside runInterval — forever. With a write deadline the stall
// surfaces as a net.Error timeout in bounded time.
func TestWriteDeadlineBoundsStalledPeer(t *testing.T) {
	a, _ := pipeConns(ConnOptions{WriteTimeout: 50 * time.Millisecond})
	defer a.Close()
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- a.WriteMsg(&Finish{Interval: 0}) }()
	select {
	case err := <-done:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("stalled write returned %v, want a net.Error timeout", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("stalled write took %v to time out", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WriteMsg to a stalled peer did not return: unbounded blocking defect")
	}
}

// TestReadDeadlineBoundsSilentPeer: the read side of the same defect. A
// silent peer must surface a timeout, and a heartbeating peer must not.
func TestReadDeadlineBoundsSilentPeer(t *testing.T) {
	a, b := pipeConns(ConnOptions{ReadTimeout: 80 * time.Millisecond})
	defer a.Close()
	defer b.Close()
	if _, err := a.ReadMsg(); err == nil {
		t.Fatal("read from silent peer succeeded")
	} else {
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("silent peer read returned %v, want timeout", err)
		}
	}
	// A heartbeating peer keeps an otherwise idle connection alive well
	// past the read deadline.
	stop := b.StartHeartbeat(20 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(400 * time.Millisecond)
	beats := 0
	for time.Now().Before(deadline) {
		m, err := a.ReadMsg()
		if err != nil {
			t.Fatalf("idle heartbeating peer hit read deadline: %v", err)
		}
		if _, ok := m.(*Heartbeat); ok {
			beats++
		}
		if beats >= 5 {
			return
		}
	}
	if beats == 0 {
		t.Fatal("no heartbeats arrived within the window")
	}
}

// TestStalledSensorCannotWedgeTour runs a recovery-mode tour with one
// impostor that completes the handshake and then never reads or writes
// again. The sink's timed windows and write deadlines must bound every
// interval, so the tour still completes on the schedule of the live
// sensors.
func TestStalledSensorCannotWedgeTour(t *testing.T) {
	inst := shortInstance(t, 12, 900, 11)
	rec := &Recovery{MaxRetries: 1, RegWindow: 40 * time.Millisecond, ConfirmWindow: 40 * time.Millisecond}
	sink, err := NewSink(SinkConfig{
		Inst: inst, Scheduler: &online.Greedy{}, Recovery: rec,
		Conn: ConnOptions{WriteTimeout: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// The impostor claims sensor 0's identity, handshakes, then stalls.
	raw, err := net.Dial("tcp", sink.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	imp := NewConn(raw)
	if err := imp.ClientHandshake(0, 0, -1); err != nil {
		t.Fatal(err)
	}
	if err := imp.WriteMsg(&Resume{LastInterval: -1, Budget: inst.Sensors[0].Budget, DataLeft: inst.DataCapOf(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := imp.ReadMsg(); err != nil { // its Sync
		t.Fatal(err)
	}
	// From here on the impostor neither reads nor writes.

	fl := &fleet{errs: make(chan error, len(inst.Sensors)-1)}
	for i := 1; i < len(inst.Sensors); i++ {
		cfg := SensorConfigFor(inst, i)
		c, err := DialSensor(sink.Addr(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		fl.clients = append(fl.clients, c)
		go func() { fl.errs <- c.Run(context.Background()) }()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sink.WaitSensors(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := sink.RunTour(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Every interval is bounded by the recovery windows; the stalled peer
	// must not add unbounded time on top.
	intervals := (inst.T + inst.Gamma - 1) / inst.Gamma
	bound := time.Duration(intervals) * (2*rec.RegWindow + rec.ConfirmWindow + 2*time.Second)
	if elapsed := time.Since(start); elapsed > bound {
		t.Fatalf("tour took %v with a stalled sensor (bound %v)", elapsed, bound)
	}
	if res.Data <= 0 {
		t.Error("tour with stalled sensor collected no data")
	}
	sink.Close()
	fl.join(t)
}

// rawHandshake performs the full client-side v2 handshake on a raw conn
// and returns the sink's Sync.
func rawHandshake(t *testing.T, addr string, sensor int, token uint64, last int) (*Conn, *Sync) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(raw)
	if err := c.ClientHandshake(sensor, token, last); err != nil {
		c.Close()
		t.Fatal(err)
	}
	if err := c.WriteMsg(&Resume{Token: token, LastInterval: last, Budget: 1, DataLeft: 1}); err != nil {
		c.Close()
		t.Fatal(err)
	}
	m, err := c.ReadMsg()
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	sync, ok := m.(*Sync)
	if !ok {
		c.Close()
		t.Fatalf("want sync, got %T", m)
	}
	return c, sync
}

// TestSessionResumeAndTTL drives the session table directly: a fresh
// hello mints a token, reconnecting with it resumes, a bogus token gets
// a fresh session, and an expired TTL forfeits resumption.
func TestSessionResumeAndTTL(t *testing.T) {
	inst := shortInstance(t, 4, 600, 3)
	sink, err := NewSink(SinkConfig{
		Inst: inst, Scheduler: &online.Greedy{},
		SessionTTL: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	base := sessionsResumed.Value()

	c1, s1 := rawHandshake(t, sink.Addr(), 0, 0, -1)
	if s1.Resumed || s1.Token == 0 {
		t.Fatalf("fresh connect: resumed=%v token=%d", s1.Resumed, s1.Token)
	}
	if s1.Interval != -1 || s1.Missed != 0 {
		t.Fatalf("fresh connect: interval=%d missed=%d", s1.Interval, s1.Missed)
	}
	if s1.Budget != inst.Sensors[0].Budget {
		t.Fatalf("fresh connect: budget %v, want %v", s1.Budget, inst.Sensors[0].Budget)
	}
	c1.Close()

	// Prompt reconnect with the minted token resumes the session.
	c2, s2 := rawHandshake(t, sink.Addr(), 0, s1.Token, -1)
	if !s2.Resumed || s2.Token != s1.Token {
		t.Fatalf("reconnect: resumed=%v token=%d want token %d", s2.Resumed, s2.Token, s1.Token)
	}
	if got := sessionsResumed.Value() - base; got != 1 {
		t.Fatalf("sessions_resumed_total delta %v, want 1", got)
	}

	// A newer connection presenting the same token kicks the older one.
	c3, s3 := rawHandshake(t, sink.Addr(), 0, s1.Token, -1)
	if !s3.Resumed || s3.Token != s1.Token {
		t.Fatalf("takeover: resumed=%v token=%d", s3.Resumed, s3.Token)
	}
	if err := c2.raw.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.ReadMsg(); err == nil {
		t.Fatal("kicked connection still readable")
	}
	c2.Close()

	// A bogus token mints a fresh session instead of resuming.
	c4, s4 := rawHandshake(t, sink.Addr(), 1, 0xBAD, -1)
	if s4.Resumed {
		t.Fatal("bogus token resumed a session")
	}
	if s4.Token == 0 || s4.Token == 0xBAD {
		t.Fatalf("bogus token answered with token %d", s4.Token)
	}
	c4.Close()

	// TTL expiry: disconnect, outwait the TTL, and the token is dead.
	c3.Close()
	time.Sleep(150 * time.Millisecond)
	c5, s5 := rawHandshake(t, sink.Addr(), 0, s1.Token, -1)
	if s5.Resumed {
		t.Fatal("session resumed after TTL expiry")
	}
	if s5.Token == s1.Token {
		t.Fatal("expired session kept its token")
	}
	c5.Close()
	if got := sessionsResumed.Value() - base; got != 2 {
		t.Fatalf("sessions_resumed_total delta %v, want 2 (resume + takeover)", got)
	}
}

// launchRedialFleet dials one client per sensor with the reconnect
// policy enabled.
func launchRedialFleet(t *testing.T, addr string, inst *core.Instance, rd Redial) *fleet {
	t.Helper()
	fl := &fleet{errs: make(chan error, len(inst.Sensors))}
	for i := range inst.Sensors {
		cfg := SensorConfigFor(inst, i)
		r := rd
		cfg.Redial = &r
		c, err := DialSensor(addr, cfg)
		if err != nil {
			t.Fatalf("dial sensor %d: %v", i, err)
		}
		fl.clients = append(fl.clients, c)
		go func() { fl.errs <- c.Run(context.Background()) }()
	}
	return fl
}

// TestConnKillChurnTour is the churn end-to-end: a seeded plan kills
// every sensor's connection exactly once mid-tour. Every session must
// resume, the tour must complete, and the protocol invariants must hold.
func TestConnKillChurnTour(t *testing.T) {
	inst := shortInstance(t, 16, 1200, 13)
	n := len(inst.Sensors)
	intervals := (inst.T + inst.Gamma - 1) / inst.Gamma
	if intervals < 4 {
		t.Fatalf("instance too short for mid-tour churn: %d intervals", intervals)
	}
	plan := fault.Plan{Seed: 99, MaxRetries: 2}
	for i := 0; i < n; i++ {
		plan.ConnKills = append(plan.ConnKills, fault.ConnKill{
			Sensor: i, Interval: 1 + i%(intervals-2),
		})
	}
	rec := &Recovery{
		MaxRetries:    2,
		RegWindow:     120 * time.Millisecond,
		ConfirmWindow: 60 * time.Millisecond,
	}
	sink, err := NewSink(SinkConfig{Inst: inst, Scheduler: &online.Appro{}, Recovery: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	proxy, err := NewChaosProxy(sink.Addr(), ChaosConfig{Plan: plan}, n, inst.T)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	baseResumed := sessionsResumed.Value()
	baseReconnects := reconnects.Value()
	fl := launchRedialFleet(t, proxy.Addr(), inst, Redial{
		MaxAttempts: 10, Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Seed: 7,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := sink.WaitSensors(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := sink.RunTour(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	proxy.Close()
	fl.join(t)

	if err := res.CheckLemma1(); err != nil {
		t.Errorf("lemma 1 violated under churn: %v", err)
	}
	if res.Data <= 0 {
		t.Error("churn tour collected no data")
	}
	for i, r := range res.Residual {
		if r < 0 {
			t.Errorf("sensor %d residual negative: %v", i, r)
		}
	}
	cs := proxy.Stats()
	if cs.ConnKills != int64(n) {
		t.Errorf("proxy killed %d connections, want %d (one per sensor)", cs.ConnKills, n)
	}
	if got := sessionsResumed.Value() - baseResumed; got != float64(n) {
		t.Errorf("wire_sessions_resumed_total delta %v, want %d", got, n)
	}
	if got := reconnects.Value() - baseReconnects; got < float64(n) {
		t.Errorf("wire_reconnects_total delta %v, want >= %d", got, n)
	}
	for i, c := range fl.clients {
		if c.Token() == 0 {
			t.Errorf("sensor %d finished the tour without a session token", i)
		}
	}
}

// TestSinkCrashRestartParity is the durability acceptance test: the sink
// is killed mid-tour and a successor process (a second Sink on the same
// WAL) resumes at the first uncommitted interval. The union of the two
// half-tours must be byte-identical to the uninterrupted in-process run —
// allocation, collected data, residual ledger, message counts, and the
// sensors' own residuals.
func TestSinkCrashRestartParity(t *testing.T) {
	inst := shortInstance(t, 24, 1400, 21)
	intervals := (inst.T + inst.Gamma - 1) / inst.Gamma
	if intervals < 4 {
		t.Fatalf("instance too short to crash mid-tour: %d intervals", intervals)
	}
	want, err := online.Run(inst, &online.Appro{})
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(t.TempDir(), "tour.wal")

	sink1, err := NewSink(SinkConfig{
		Inst: inst, Scheduler: &online.Appro{},
		WALPath: walPath, HaltAfter: intervals / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := sink1.Addr()
	fl := launchRedialFleet(t, addr, inst, Redial{
		MaxAttempts: 60, Base: 5 * time.Millisecond, Max: 40 * time.Millisecond, Seed: 3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := sink1.WaitSensors(ctx); err != nil {
		t.Fatal(err)
	}
	res1, err := sink1.RunTour(ctx)
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("phase 1: got err %v, want ErrHalted", err)
	}
	if res1 == nil {
		t.Fatal("halted tour returned no partial result")
	}
	sink1.Close() // the crash: no End record, conns severed

	// The successor binds the same address (so redialing clients find it)
	// and replays the journal.
	sink2, err := NewSink(SinkConfig{
		Inst: inst, Scheduler: &online.Appro{},
		Addr: addr, WALPath: walPath,
	})
	if err != nil {
		t.Fatalf("restart on journal: %v", err)
	}
	defer sink2.Close()
	if err := sink2.WaitSensors(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := sink2.RunTour(ctx)
	if err != nil {
		t.Fatalf("resumed tour: %v", err)
	}
	sink2.Close()
	fl.join(t)

	if got.Data != want.Data {
		t.Errorf("data: crash-restart %v, in-process %v", got.Data, want.Data)
	}
	if !reflect.DeepEqual(got.Alloc.SlotOwner, want.Alloc.SlotOwner) {
		t.Error("slot assignments diverge across the crash")
	}
	if !reflect.DeepEqual(got.RegisteredIn, want.RegisteredIn) {
		t.Error("registration history diverges across the crash")
	}
	if got.Messages != want.Messages {
		t.Errorf("messages: crash-restart %+v, in-process %+v", got.Messages, want.Messages)
	}
	for i := range want.Residual {
		if got.Residual[i] != want.Residual[i] {
			t.Fatalf("sensor %d sink-ledger residual: crash-restart %v, in-process %v",
				i, got.Residual[i], want.Residual[i])
		}
		if r := fl.clients[i].Residual(); r != want.Residual[i] {
			t.Fatalf("sensor %d client residual %v, in-process %v", i, r, want.Residual[i])
		}
		if !math.IsInf(want.ResidualData[i], 1) && got.ResidualData[i] != want.ResidualData[i] {
			t.Fatalf("sensor %d residual data diverges", i)
		}
	}
	if err := got.CheckLemma1(); err != nil {
		t.Error(err)
	}

	// A third sink on the now-complete journal replays the whole tour
	// without running an interval.
	sink3, err := NewSink(SinkConfig{
		Inst: inst, Scheduler: &online.Appro{}, WALPath: walPath,
	})
	if err != nil {
		t.Fatalf("reopen complete journal: %v", err)
	}
	defer sink3.Close()
	replayed, err := sink3.RunTour(ctx)
	if err != nil {
		t.Fatalf("replay-only tour: %v", err)
	}
	if replayed.Data != want.Data || !reflect.DeepEqual(replayed.Alloc.SlotOwner, want.Alloc.SlotOwner) {
		t.Error("replay-only tour diverges from the in-process run")
	}
}

// TestJournalRejectsForeignInstance: a journal written for one
// deployment must not replay into another.
func TestJournalRejectsForeignInstance(t *testing.T) {
	instA := shortInstance(t, 6, 600, 31)
	instB := shortInstance(t, 6, 600, 32) // same shape, different sensors
	walPath := filepath.Join(t.TempDir(), "tour.wal")
	sinkA, err := NewSink(SinkConfig{Inst: instA, Scheduler: &online.Greedy{}, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	sinkA.Close() // leaves just the Begin record
	if _, err := NewSink(SinkConfig{Inst: instB, Scheduler: &online.Greedy{}, WALPath: walPath}); err == nil {
		t.Fatal("sink accepted a journal written for a different instance")
	}
}
