package wire

import (
	"context"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobisink/internal/online"
)

// killLog records the conns a broadcaster reported dead, deduplicated
// (a queue-overflow kill and the subsequent write-error kill may both
// fire for the same conn).
type killLog struct {
	mu   sync.Mutex
	ids  map[int]bool
	conn map[int]*Conn
}

func newKillLog() *killLog {
	return &killLog{ids: make(map[int]bool), conn: make(map[int]*Conn)}
}

func (k *killLog) drop(id int, c *Conn) {
	k.mu.Lock()
	first := !k.ids[id]
	k.ids[id] = true
	k.conn[id] = c
	k.mu.Unlock()
	if first {
		c.Close()
	}
}

func (k *killLog) killed() []int {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]int, 0, len(k.ids))
	for id := range k.ids {
		out = append(out, id)
	}
	return out
}

// pipeFleet builds n sink-side conns over net.Pipe (writes block until
// the peer reads — the harshest stall model) registered with a fresh
// broadcaster, and returns the peer-side conns for the test to read.
func pipeFleet(t *testing.T, b *broadcaster, n int) []*Conn {
	t.Helper()
	peers := make([]*Conn, n)
	for i := 0; i < n; i++ {
		sinkSide, peerSide := net.Pipe()
		sc := NewConn(sinkSide)
		peers[i] = NewConn(peerSide)
		b.add(i, sc)
		t.Cleanup(func() { sc.Close() })
		t.Cleanup(func() { peers[i].Close() })
	}
	return peers
}

func fleetIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// TestSlowPeerDoesNotStallBroadcast is the head-of-line regression test
// at the write-plane level: over net.Pipe a write blocks until the peer
// reads, so under the old serial loop one slow-but-alive peer delayed
// every peer after it in the id order. On the sharded plane the slow
// peer's frame waits in its own queue while everyone else is served.
func TestSlowPeerDoesNotStallBroadcast(t *testing.T) {
	const n, slow = 8, 0
	done := make(chan struct{})
	defer close(done)
	kills := newKillLog()
	b := newBroadcaster(4, 16, done, kills.drop)
	peers := pipeFleet(t, b, n)

	type rcpt struct {
		id int
		at time.Duration
	}
	got := make(chan rcpt, n)
	start := time.Now()
	for i, p := range peers {
		i, p := i, p
		go func() {
			if i == slow {
				time.Sleep(300 * time.Millisecond) // alive, just slow
			}
			if _, err := p.ReadMsg(); err != nil {
				t.Errorf("peer %d read: %v", i, err)
				return
			}
			got <- rcpt{id: i, at: time.Since(start)}
		}()
	}

	if err := b.Broadcast(&Finish{Interval: 3}, fleetIDs(n)); err != nil {
		t.Fatal(err)
	}
	if stall := time.Since(start); stall > 150*time.Millisecond {
		t.Errorf("Broadcast hand-off stalled %v behind the slow peer", stall)
	}
	for i := 0; i < n; i++ {
		select {
		case r := <-got:
			if r.id != slow && r.at > 200*time.Millisecond {
				t.Errorf("fast peer %d waited %v behind the slow peer", r.id, r.at)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("broadcast never reached every peer")
		}
	}
	if k := kills.killed(); len(k) != 0 {
		t.Errorf("broadcast killed conns %v, want none", k)
	}
}

// TestQueueOverflowKillsOnlyStalledConn: a peer that stops draining
// fills its own bounded queue and is killed through the drop path,
// while every other conn receives the full frame sequence in order.
func TestQueueOverflowKillsOnlyStalledConn(t *testing.T) {
	const n, stalled, frames = 4, 1, 6
	done := make(chan struct{})
	defer close(done)
	kills := newKillLog()
	b := newBroadcaster(2, 2, done, kills.drop)
	peers := pipeFleet(t, b, n)

	// Fast peers report each receipt; the test paces broadcasts on them
	// so a healthy queue never holds more than one or two frames while
	// the stalled peer's fills monotonically (one write in flight + a
	// queue of 2 absorbs at most 3 of the 6 frames).
	rcpts := make(chan int, n*frames)
	for i, p := range peers {
		if i == stalled {
			continue
		}
		i, p := i, p
		go func() {
			for want := 0; want < frames; want++ {
				m, err := p.ReadMsg()
				if err != nil {
					t.Errorf("peer %d read %d: %v", i, want, err)
					return
				}
				f, ok := m.(*Finish)
				if !ok || f.Interval != want {
					t.Errorf("peer %d got %v at position %d, want Finish %d", i, m, want, want)
					return
				}
				rcpts <- f.Interval
			}
		}()
	}
	for j := 0; j < frames; j++ {
		if err := b.Broadcast(&Finish{Interval: j}, fleetIDs(n)); err != nil {
			t.Fatal(err)
		}
		for seen := 0; seen < n-1; seen++ {
			select {
			case got := <-rcpts:
				if got != j {
					t.Fatalf("receipt for frame %d while pacing frame %d", got, j)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("frame %d never reached the healthy peers", j)
			}
		}
	}
	k := kills.killed()
	if len(k) != 1 || k[0] != stalled {
		t.Fatalf("killed conns %v, want exactly [%d]", k, stalled)
	}
}

// TestBroadcastOrderingPerConn interleaves broadcasts with a shard-
// routed unicast and checks each conn sees its frames in submission
// order — the property the parity and repair arguments rest on.
func TestBroadcastOrderingPerConn(t *testing.T) {
	const n = 4
	done := make(chan struct{})
	defer close(done)
	kills := newKillLog()
	b := newBroadcaster(2, 64, done, kills.drop)
	peers := pipeFleet(t, b, n)

	all := fleetIDs(n)
	steps := []func() error{
		func() error { return b.Broadcast(&Probe{Interval: 0, Start: 0, End: 4}, all) },
		func() error {
			if !b.Unicast(2, &Schedule{Interval: 0, Repair: true, Pairs: []Assign{{Slot: 1, Sensor: 2}}}) {
				t.Error("unicast to live conn reported no conn")
			}
			return nil
		},
		func() error { return b.Broadcast(&Finish{Interval: 0}, all) },
		func() error { return b.Broadcast(&Probe{Interval: 1, Start: 5, End: 9}, all) },
	}
	read := make(chan error, n)
	for i, p := range peers {
		i, p := i, p
		go func() {
			want := []Type{TypeProbe, TypeFinish, TypeProbe}
			if i == 2 {
				want = []Type{TypeProbe, TypeSchedule, TypeFinish, TypeProbe}
			}
			for _, w := range want {
				m, err := p.ReadMsg()
				if err != nil {
					read <- err
					return
				}
				if m.Type() != w {
					t.Errorf("peer %d got %s, want %s", i, m.Type(), w)
				}
			}
			read <- nil
		}()
	}
	for _, step := range steps {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-read:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("peers did not drain the interleaved sequence")
		}
	}
	if k := kills.killed(); len(k) != 0 {
		t.Errorf("killed conns %v, want none", k)
	}
}

// nullConn is a sink-free net.Conn for the alloc gate: writes succeed
// instantly (counted), nothing else does anything.
type nullConn struct{ writes *atomic.Int64 }

func (c nullConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (c nullConn) Write(p []byte) (int, error)      { c.writes.Add(1); return len(p), nil }
func (c nullConn) Close() error                     { return nil }
func (c nullConn) LocalAddr() net.Addr              { return nil }
func (c nullConn) RemoteAddr() net.Addr             { return nil }
func (c nullConn) SetDeadline(time.Time) error      { return nil }
func (c nullConn) SetReadDeadline(time.Time) error  { return nil }
func (c nullConn) SetWriteDeadline(time.Time) error { return nil }

// TestNoAllocsBroadcast pins the encode-once fan-out at zero steady-
// state allocations: frame buffers, id slices, and queue items all come
// from pools, so a warmed broadcast of any fleet size allocates nothing
// on the interval loop or the shard writers. Mirrors the gap/knapsack
// TestNoAllocs* gates.
func TestNoAllocsBroadcast(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation charges allocations to the pooled paths")
	}
	const n = 64
	done := make(chan struct{})
	defer close(done)
	kills := newKillLog()
	b := newBroadcaster(8, 1024, done, kills.drop)
	var writes atomic.Int64
	for i := 0; i < n; i++ {
		b.add(i, NewConn(nullConn{writes: &writes}))
	}
	ids := fleetIDs(n)
	msg := &Probe{Interval: 1, Start: 0, End: 4, SinkX: 12.5, SinkY: -3}
	run := func() {
		want := writes.Load() + n
		if err := b.Broadcast(msg, ids); err != nil {
			t.Fatal(err)
		}
		// Wait for full drain so every frame is back in its pool before
		// the next run; spinning keeps the wait itself alloc-free.
		for writes.Load() < want {
			runtime.Gosched()
		}
	}
	for i := 0; i < 50; i++ {
		run() // warm the frame, id-slice, and scratch pools
	}
	if a := testing.AllocsPerRun(100, run); a != 0 {
		t.Fatalf("sharded broadcast allocates %v per run after warmup", a)
	}
	if k := kills.killed(); len(k) != 0 {
		t.Fatalf("alloc gate killed conns %v", k)
	}
}

// TestSerialModeParity keeps the legacy serial write loop (Shards < 0)
// alive and byte-identical too: it is the benchmark baseline and the
// fallback, so it must keep producing the exact in-process tour.
func TestSerialModeParity(t *testing.T) {
	inst := shortInstance(t, 24, 1200, 3)
	want, err := online.Run(inst, &online.Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewSink(SinkConfig{Inst: inst, Scheduler: &online.Greedy{}, Shards: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	fl := launchFleet(t, sink.Addr(), inst, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sink.WaitSensors(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := sink.RunTour(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	fl.join(t)
	if got.Data != want.Data {
		t.Errorf("data: serial wire %v, in-process %v", got.Data, want.Data)
	}
	if got.Messages != want.Messages {
		t.Errorf("messages: serial wire %+v, in-process %+v", got.Messages, want.Messages)
	}
	for i := range want.Residual {
		if got.Residual[i] != want.Residual[i] {
			t.Fatalf("sensor %d residual: serial wire %v, in-process %v", i, got.Residual[i], want.Residual[i])
		}
	}
}

// TestSlowSensorTourCompletes is the end-to-end half of the head-of-
// line fix: a sensor that stays connected but serves its socket an
// order of magnitude slower than the recovery windows must not stop
// the fleet's tour from completing, and must itself survive (its
// bounded queue absorbs the trickle; it is slow, not dead).
func TestSlowSensorTourCompletes(t *testing.T) {
	inst := shortInstance(t, 12, 900, 21)
	rec := &Recovery{MaxRetries: 1, RegWindow: 40 * time.Millisecond, ConfirmWindow: 40 * time.Millisecond}
	sink, err := NewSink(SinkConfig{
		Inst: inst, Scheduler: &online.Greedy{}, Recovery: rec,
		Conn: ConnOptions{WriteTimeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// Sensor 0 is played by a hand-rolled peer that handshakes promptly,
	// then reads one frame per 50ms and declines every probe it
	// eventually sees — slow, but alive and protocol-correct.
	raw, err := net.Dial("tcp", sink.Addr())
	if err != nil {
		t.Fatal(err)
	}
	slow := NewConn(raw)
	defer slow.Close()
	if err := slow.ClientHandshake(0, 0, -1); err != nil {
		t.Fatal(err)
	}
	if err := slow.WriteMsg(&Resume{}); err != nil {
		t.Fatal(err)
	}
	if m, err := slow.ReadMsg(); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*Sync); !ok {
		t.Fatalf("slow sensor got %s, want sync", m.Type())
	}
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		for {
			m, err := slow.ReadMsg()
			if err != nil {
				return // sink closed at tour end
			}
			time.Sleep(50 * time.Millisecond)
			if p, ok := m.(*Probe); ok {
				if err := slow.WriteMsg(&Ack{Kind: AckDecline, Interval: p.Interval, Attempt: p.Attempt, Sensor: 0}); err != nil {
					return
				}
			}
		}
	}()

	// The rest of the fleet is ordinary clients for sensors 1..n-1.
	fl := &fleet{errs: make(chan error, len(inst.Sensors)-1)}
	for i := 1; i < len(inst.Sensors); i++ {
		c, err := DialSensor(sink.Addr(), SensorConfigFor(inst, i))
		if err != nil {
			t.Fatalf("dial sensor %d: %v", i, err)
		}
		fl.clients = append(fl.clients, c)
		go func() { fl.errs <- c.Run(context.Background()) }()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sink.WaitSensors(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := sink.RunTour(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data <= 0 {
		t.Error("tour with one slow sensor collected no data")
	}
	if res.Fault != nil && res.Fault.LostSlots > 0 && res.Data <= 0 {
		t.Error("slow sensor cost the whole tour")
	}
	sink.Close()
	fl.join(t)
	select {
	case <-slowDone:
	case <-time.After(10 * time.Second):
		t.Fatal("slow sensor loop did not exit after sink close")
	}
}
