package wire

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/fault"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
)

// shortInstance builds a small tour (a few hundred slots) so a full
// over-the-wire tour stays fast under -race.
func shortInstance(t *testing.T, n int, pathLen float64, seed int64) *core.Instance {
	t.Helper()
	d, err := network.Generate(network.Params{N: n, PathLength: pathLen, MaxOffset: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	// Paper-scale accrual (a full 10 km tour's worth) regardless of the
	// shortened path, so budgets afford enough slots to exercise the
	// schedulers.
	if err := d.AssignSteadyStateBudgets(energy.PaperSolar(energy.Sunny), 2000, 0.2, rng); err != nil {
		t.Fatal(err)
	}
	inst, err := core.BuildInstance(d, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// fleet is a set of sensor clients running against a sink (directly or
// through a chaos proxy).
type fleet struct {
	clients []*SensorClient
	errs    chan error
}

// launchFleet dials one client per sensor and runs their protocol loops.
func launchFleet(t *testing.T, addr string, inst *core.Instance, inj *fault.Injector) *fleet {
	t.Helper()
	fl := &fleet{errs: make(chan error, len(inst.Sensors))}
	for i := range inst.Sensors {
		cfg := SensorConfigFor(inst, i)
		cfg.Faults = inj
		c, err := DialSensor(addr, cfg)
		if err != nil {
			t.Fatalf("dial sensor %d: %v", i, err)
		}
		fl.clients = append(fl.clients, c)
		go func() { fl.errs <- c.Run(context.Background()) }()
	}
	return fl
}

// join waits for every client loop to exit cleanly.
func (fl *fleet) join(t *testing.T) {
	t.Helper()
	for range fl.clients {
		select {
		case err := <-fl.errs:
			if err != nil {
				t.Errorf("sensor client: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("sensor clients did not exit after sink close")
		}
	}
}

// wireTour runs one tour over loopback TCP and returns the sink's result
// plus the fleet (already joined, for client-side assertions).
func wireTour(t *testing.T, inst *core.Instance, sched online.Scheduler, rec *Recovery, chaos *ChaosConfig) (*online.Result, *fleet, ChaosStats) {
	t.Helper()
	sink, err := NewSink(SinkConfig{Inst: inst, Scheduler: sched, Recovery: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	addr := sink.Addr()
	var proxy *ChaosProxy
	var inj *fault.Injector
	if chaos != nil {
		proxy, err = NewChaosProxy(addr, *chaos, len(inst.Sensors), inst.T)
		if err != nil {
			t.Fatal(err)
		}
		defer proxy.Close()
		addr = proxy.Addr()
		inj, err = fault.NewInjector(chaos.Plan, len(inst.Sensors), inst.T)
		if err != nil {
			t.Fatal(err)
		}
	}
	fl := launchFleet(t, addr, inst, inj)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sink.WaitSensors(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := sink.RunTour(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	if proxy != nil {
		proxy.Close()
	}
	fl.join(t)
	var cs ChaosStats
	if proxy != nil {
		cs = proxy.Stats()
	}
	return res, fl, cs
}

// TestLoopbackParity is the keystone correctness check: a zero-fault
// tour over real TCP must be byte-identical to the in-process run —
// same allocation, same collected data, same message counts, same
// residual budgets on both the sink's ledger and the sensors' own.
func TestLoopbackParity(t *testing.T) {
	inst := shortInstance(t, 60, 2000, 7)
	schedulers := map[string]func() online.Scheduler{
		"appro": func() online.Scheduler { return &online.Appro{} },
		// The warm scheduler is stateful per tour: each run gets a fresh
		// one, and the wire tour must still match the in-process tour.
		"appro_warm": func() online.Scheduler { return &online.WarmAppro{SelfCheck: true} },
		"greedy":     func() online.Scheduler { return &online.Greedy{} },
	}
	for name, mk := range schedulers {
		t.Run(name, func(t *testing.T) {
			want, err := online.Run(inst, mk())
			if err != nil {
				t.Fatal(err)
			}
			got, fl, _ := wireTour(t, inst, mk(), nil, nil)

			if got.Data != want.Data {
				t.Errorf("data: wire %v, in-process %v", got.Data, want.Data)
			}
			if !reflect.DeepEqual(got.Alloc.SlotOwner, want.Alloc.SlotOwner) {
				t.Error("slot assignments diverge")
			}
			if got.Messages != want.Messages {
				t.Errorf("messages: wire %+v, in-process %+v", got.Messages, want.Messages)
			}
			if got.Intervals != want.Intervals {
				t.Errorf("intervals: wire %d, in-process %d", got.Intervals, want.Intervals)
			}
			if !reflect.DeepEqual(got.RegisteredIn, want.RegisteredIn) {
				t.Error("registration history diverges")
			}
			for i := range want.Residual {
				if got.Residual[i] != want.Residual[i] {
					t.Fatalf("sensor %d sink-ledger residual: wire %v, in-process %v",
						i, got.Residual[i], want.Residual[i])
				}
				if r := fl.clients[i].Residual(); r != want.Residual[i] {
					t.Fatalf("sensor %d client residual %v, in-process %v", i, r, want.Residual[i])
				}
				if !math.IsInf(want.ResidualData[i], 1) && got.ResidualData[i] != want.ResidualData[i] {
					t.Fatalf("sensor %d residual data: wire %v, in-process %v",
						i, got.ResidualData[i], want.ResidualData[i])
				}
			}
			if err := got.CheckLemma1(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestChaosProxyTour pushes a seeded fault plan through the proxy as
// real network damage and checks the recovery machinery holds the
// protocol invariants end to end.
func TestChaosProxyTour(t *testing.T) {
	inst := shortInstance(t, 24, 1600, 5)
	plan := fault.Plan{
		Seed:         42,
		DropProbe:    0.15,
		DropAck:      0.15,
		DropSchedule: 0.25,
		DropFinish:   1, // every Finish lost: all claims go stale
		MaxRetries:   2,
		Crashes: []fault.Crash{
			{Sensor: 3, From: inst.T / 4, To: inst.T},
			{Sensor: 11, From: 0, To: inst.T / 2},
		},
		StallIntervals: []int{1},
	}
	stallOnly := fault.Plan{Seed: plan.Seed, StallIntervals: plan.StallIntervals}
	stalls, err := fault.NewInjector(stallOnly, len(inst.Sensors), inst.T)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recovery{
		MaxRetries:    plan.MaxRetries,
		RegWindow:     50 * time.Millisecond,
		ConfirmWindow: 50 * time.Millisecond,
		Stalls:        stalls,
	}
	chaos := &ChaosConfig{Plan: plan, MaxDelay: 2 * time.Millisecond, ReorderProb: 0.1}

	res, _, cs := wireTour(t, inst, &online.Appro{}, rec, chaos)
	st := res.Fault
	if st == nil {
		t.Fatal("recovery run produced no fault stats")
	}
	if err := res.CheckLemma1(); err != nil {
		t.Errorf("lemma 1 violated under chaos: %v", err)
	}
	if res.Data <= 0 {
		t.Error("chaos tour collected no data")
	}
	for i, r := range res.Residual {
		if r < 0 {
			t.Errorf("sensor %d residual went negative: %v", i, r)
		}
	}
	if cs.Dropped() == 0 {
		t.Error("proxy dropped nothing despite nonzero drop rates")
	}
	if cs.DroppedFinishes == 0 {
		t.Error("DropFinish=1 but no Finish frames dropped")
	}
	if st.ProbeRetransmissions == 0 {
		t.Error("probe/ack drops occurred but no retransmission rounds ran")
	}
	if res.Messages.Retransmits != st.ProbeRetransmissions {
		t.Errorf("Retransmits %d != ProbeRetransmissions %d",
			res.Messages.Retransmits, st.ProbeRetransmissions)
	}
	if res.Messages.RepairUnicasts != st.RepairedSlots {
		t.Errorf("RepairUnicasts %d != RepairedSlots %d",
			res.Messages.RepairUnicasts, st.RepairedSlots)
	}
	if cs.DroppedSchedules > 0 && st.SchedulesMissed == 0 {
		t.Error("schedule broadcasts dropped but sink detected no missed schedules")
	}
	if st.SchedulesMissed > 0 && st.RepairedSlots+st.LostSlots == 0 {
		t.Error("missed schedules produced neither repairs nor lost slots")
	}
	if st.BudgetClamps == 0 {
		t.Error("every Finish was jammed yet no stale budget was clamped")
	}
	if st.DegradedIntervals != 1 {
		t.Errorf("DegradedIntervals = %d, want 1 (forced stall of interval 1)", st.DegradedIntervals)
	}
}

// TestChaosDelayReorderOnly checks pure timing chaos (no drops): delays
// and reorders alone must not break the protocol, because per-connection
// TCP ordering plus interval tags filter stale traffic.
func TestChaosDelayReorderOnly(t *testing.T) {
	inst := shortInstance(t, 16, 1200, 9)
	rec := &Recovery{MaxRetries: 1, RegWindow: 60 * time.Millisecond, ConfirmWindow: 60 * time.Millisecond}
	chaos := &ChaosConfig{
		Plan:        fault.Plan{Seed: 17},
		MaxDelay:    3 * time.Millisecond,
		ReorderProb: 0.2,
	}
	res, _, cs := wireTour(t, inst, &online.Greedy{}, rec, chaos)
	if err := res.CheckLemma1(); err != nil {
		t.Error(err)
	}
	if res.Data <= 0 {
		t.Error("no data collected under delay/reorder chaos")
	}
	if cs.Dropped() != 0 {
		t.Errorf("zero drop rates but proxy dropped %d frames", cs.Dropped())
	}
	if cs.Delayed == 0 {
		t.Error("MaxDelay set but nothing was delayed")
	}
}
