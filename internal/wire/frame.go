// Package wire promotes the online protocol (paper Algorithm 2) from
// in-process function calls to a real transport. It defines a compact,
// versioned, length-prefixed binary framing for the protocol's message
// types — Hello (version handshake), Probe, Ack (carrying an
// online.Registration), Schedule, and Finish — plus, on top of the
// framing:
//
//   - Sink, a TCP server that accepts long-lived sensor connections and
//     drives the interval loop (probe broadcast → registration window →
//     scheduler → schedule/finish broadcast), debiting budgets exactly as
//     online.RunCtx does;
//   - SensorClient, a sensor endpoint that answers probes according to
//     its visibility window, residual budget, and data queue;
//   - ChaosProxy, which translates internal/fault plans into real
//     network-level frame drops, delays, and reorders, so the recovery
//     machinery (retransmission, stale-budget clamps, schedule repair,
//     degraded fallback) is exercised over sockets.
//
// Frame layout (all integers big-endian):
//
//	uint32  length   payload byte count, 1 ≤ length ≤ MaxFrame
//	[]byte  payload  message tag byte followed by the tag's fixed fields
//
// Decoding is strict: a payload must consume exactly its declared length,
// unknown tags, bad magic, version mismatches, and out-of-domain fields
// are errors, and no input can make the decoder panic or over-read (see
// FuzzFrameDecode).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"mobisink/internal/online"
)

// Version is the protocol version carried by the Hello handshake. A sink
// and sensor with different versions refuse to talk. Version 2 added
// session resumption (Hello token fields, Resume/Sync) and Heartbeat.
const Version = 2

// magic opens every Hello payload; it guards against a non-protocol peer
// (or a desynchronized stream) being interpreted as a handshake.
const magic = 0x4D53 // "MS"

// MaxFrame bounds a frame's payload size. A length prefix above it is
// rejected before any allocation, so a hostile peer cannot make a reader
// allocate unbounded memory.
const MaxFrame = 1 << 16

// Decode error sentinels. Wrapped errors carry context; test with
// errors.Is.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrTrailing      = errors.New("wire: trailing bytes after message")
	ErrUnknownType   = errors.New("wire: unknown message type")
	ErrBadMagic      = errors.New("wire: bad handshake magic")
	ErrVersion       = errors.New("wire: protocol version mismatch")
	ErrBadField      = errors.New("wire: field out of domain")
)

// Type tags a protocol message on the wire.
type Type uint8

// Wire message tags. The values are part of the protocol.
const (
	TypeHello Type = iota + 1
	TypeProbe
	TypeAck
	TypeSchedule
	TypeFinish
	// TypeResume and TypeSync are the session-resumption handshake: after
	// Hello the sensor states its residual claim (Resume), the sink
	// answers with the authoritative session state (Sync).
	TypeResume
	TypeSync
	// TypeHeartbeat is the idle keepalive; it carries no fields and is
	// consumed by the connection layer, never surfaced to the protocol.
	TypeHeartbeat
)

// String returns the lowercase tag name (metric label values).
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeProbe:
		return "probe"
	case TypeAck:
		return "ack"
	case TypeSchedule:
		return "schedule"
	case TypeFinish:
		return "finish"
	case TypeResume:
		return "resume"
	case TypeSync:
		return "sync"
	case TypeHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Role distinguishes the two endpoints in a Hello.
type Role uint8

// Handshake roles.
const (
	RoleSink   Role = 0
	RoleSensor Role = 1
)

// Msg is one protocol message.
type Msg interface {
	// Type returns the message's wire tag.
	Type() Type
}

// Hello is the version handshake, the first frame in each direction on a
// new connection. Sensor is the dense sensor index for RoleSensor and -1
// for RoleSink. Token is the sensor's session token from a previous
// connection (0 = none, request a fresh session) and LastInterval the
// last interval whose Finish it committed (-1 = none); the sink answers
// the subsequent Resume with a Sync carrying the authoritative state.
type Hello struct {
	Version      uint8
	Role         Role
	Sensor       int
	Token        uint64
	LastInterval int
}

// Type implements Msg.
func (*Hello) Type() Type { return TypeHello }

// Resume is the sensor's session-resumption claim, sent right after
// Hello: the token it is resuming (0 for a fresh session) and its local
// view of its ledger — last committed interval, residual energy budget,
// and residual data. The sink reconciles the claim against its session
// table and answers with a Sync.
type Resume struct {
	Token        uint64
	LastInterval int
	Budget       float64
	DataLeft     float64 // +Inf on instances without data caps
}

// Type implements Msg.
func (*Resume) Type() Type { return TypeResume }

// Sync is the sink's authoritative answer to a Resume. Resumed reports
// whether an existing session was found (false = fresh session issued);
// Token is the session token to present on the next reconnect; Interval
// is the last interval the sink committed for this sensor; Missed
// counts the intervals the sensor was disconnected for (accounted as
// declines); Budget and DataLeft are the sink's ledger residuals, which
// the client adopts (taking the minimum against its local view, so a
// sensor can never talk itself into budget it no longer has).
type Sync struct {
	Resumed  bool
	Token    uint64
	Interval int
	Missed   int
	Budget   float64
	DataLeft float64
}

// Type implements Msg.
func (*Sync) Type() Type { return TypeSync }

// Heartbeat is the idle keepalive frame. It is written by the
// connection layer when the write side has been idle for a heartbeat
// period and consumed by the peer's read loop; the protocol above never
// sees it.
type Heartbeat struct{}

// Type implements Msg.
func (*Heartbeat) Type() Type { return TypeHeartbeat }

// Probe is the sink's registration solicitation for one interval:
// broadcast at the interval start (Attempt 0) and unicast to stragglers
// on recovery retransmission rounds (Attempt ≥ 1). It carries the
// interval's inclusive slot range and the sink position at the interval
// start, from which a sensor decides whether it is in range.
type Probe struct {
	Interval int
	Attempt  int
	Start    int
	End      int
	SinkX    float64
	SinkY    float64
}

// Type implements Msg.
func (*Probe) Type() Type { return TypeProbe }

// AckKind distinguishes the sensor's three answers.
type AckKind uint8

// Ack kinds.
const (
	// AckDecline answers a Probe from a sensor that is out of range (or
	// has no visibility window); it carries no registration payload. The
	// explicit negative answer is what lets the sink close a registration
	// window without waiting out a timer on the fault-free path.
	AckDecline AckKind = iota
	// AckRegister answers a Probe from an in-range sensor and carries its
	// online.Registration profile.
	AckRegister
	// AckConfirm acknowledges a Schedule broadcast that assigned the
	// sensor at least one slot; a missing confirmation is how the sink
	// detects a schedule-deaf or crashed sensor over the wire.
	AckConfirm
)

// Ack is a sensor's answer to a Probe (decline or register) or to a
// Schedule (confirm). The registration fields are present on the wire
// only for AckRegister.
type Ack struct {
	Kind     AckKind
	Interval int
	// Attempt echoes the Probe's retransmission attempt (0 on confirms),
	// keeping the chaos proxy's per-attempt loss rolls aligned with the
	// in-process injector's.
	Attempt int
	Sensor  int

	// Registration payload (AckRegister only).
	Budget    float64
	DataLeft  float64 // +Inf on instances without data caps
	ClipStart int
	ClipEnd   int
}

// Type implements Msg.
func (*Ack) Type() Type { return TypeAck }

// RegisterAck builds the AckRegister answer carrying the registration.
func RegisterAck(interval, attempt int, r online.Registration) *Ack {
	return &Ack{
		Kind: AckRegister, Interval: interval, Attempt: attempt, Sensor: r.Sensor,
		Budget: r.Budget, DataLeft: r.DataLeft, ClipStart: r.ClipStart, ClipEnd: r.ClipEnd,
	}
}

// Registration unpacks the carried profile.
func (a *Ack) Registration() online.Registration {
	return online.Registration{
		Sensor: a.Sensor, Budget: a.Budget, DataLeft: a.DataLeft,
		ClipStart: a.ClipStart, ClipEnd: a.ClipEnd,
	}
}

// Assign is one slot → sensor pair of a Schedule.
type Assign struct {
	Slot   int
	Sensor int
}

// Schedule carries one interval's slot assignment: the broadcast result
// of the scheduler (Repair false, pairs sorted by slot), or a unicast
// repair reassigning a silent sensor's slot (Repair true, single pair).
type Schedule struct {
	Interval int
	Repair   bool
	Pairs    []Assign
}

// Type implements Msg.
func (*Schedule) Type() Type { return TypeSchedule }

// Finish is the sink's end-of-interval broadcast; on receipt the
// scheduled sensors debit their energy and data budgets.
type Finish struct {
	Interval int
}

// Type implements Msg.
func (*Finish) Type() Type { return TypeFinish }

// Fixed payload sizes per tag (bytes, including the tag byte).
const (
	helloLen     = 1 + 2 + 1 + 1 + 4 + 8 + 4
	probeLen     = 1 + 4 + 1 + 4 + 4 + 8 + 8
	ackBaseLen   = 1 + 1 + 4 + 1 + 4
	ackRegLen    = ackBaseLen + 8 + 8 + 4 + 4
	schedHeadLen = 1 + 4 + 1 + 2
	assignLen    = 4 + 4
	finishLen    = 1 + 4
	resumeLen    = 1 + 8 + 4 + 8 + 8
	syncLen      = 1 + 1 + 8 + 4 + 4 + 8 + 8
	heartbeatLen = 1
)

// MaxSchedulePairs is the largest slot→sensor pair count one Schedule
// frame can carry under MaxFrame.
const MaxSchedulePairs = (MaxFrame - schedHeadLen) / assignLen

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendI32(b []byte, v int32) []byte  { return binary.BigEndian.AppendUint32(b, uint32(v)) }
func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

func getI32(b []byte) int32   { return int32(binary.BigEndian.Uint32(b)) }
func getF64(b []byte) float64 { return math.Float64frombits(binary.BigEndian.Uint64(b)) }
func fitsI32(vs ...int) bool {
	for _, v := range vs {
		if v < math.MinInt32 || v > math.MaxInt32 {
			return false
		}
	}
	return true
}

// AppendFrame appends m's length-prefixed frame to dst and returns the
// extended slice. It errors if a field is out of its wire domain (e.g. a
// negative interval or a Schedule with more than MaxSchedulePairs pairs).
func AppendFrame(dst []byte, m Msg) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length placeholder
	var err error
	dst, err = appendPayload(dst, m)
	if err != nil {
		return nil, err
	}
	n := len(dst) - start - 4
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d byte payload", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

func appendPayload(dst []byte, m Msg) ([]byte, error) {
	switch m := m.(type) {
	case *Hello:
		if m.Role > RoleSensor || m.Sensor < -1 || !fitsI32(m.Sensor, m.LastInterval) ||
			m.LastInterval < -1 {
			return nil, fmt.Errorf("%w: hello role %d sensor %d last %d", ErrBadField, m.Role, m.Sensor, m.LastInterval)
		}
		dst = append(dst, byte(TypeHello))
		dst = appendU16(dst, magic)
		dst = append(dst, m.Version, byte(m.Role))
		dst = appendI32(dst, int32(m.Sensor))
		dst = binary.BigEndian.AppendUint64(dst, m.Token)
		return appendI32(dst, int32(m.LastInterval)), nil
	case *Probe:
		if m.Interval < 0 || m.Attempt < 0 || m.Attempt > 255 ||
			m.Start < 0 || m.End < m.Start || !fitsI32(m.Interval, m.Start, m.End) {
			return nil, fmt.Errorf("%w: probe %+v", ErrBadField, *m)
		}
		dst = append(dst, byte(TypeProbe))
		dst = appendI32(dst, int32(m.Interval))
		dst = append(dst, byte(m.Attempt))
		dst = appendI32(dst, int32(m.Start))
		dst = appendI32(dst, int32(m.End))
		dst = appendF64(dst, m.SinkX)
		return appendF64(dst, m.SinkY), nil
	case *Ack:
		if m.Kind > AckConfirm || m.Interval < 0 || m.Attempt < 0 || m.Attempt > 255 ||
			m.Sensor < 0 || !fitsI32(m.Interval, m.Sensor) {
			return nil, fmt.Errorf("%w: ack kind %d interval %d sensor %d", ErrBadField, m.Kind, m.Interval, m.Sensor)
		}
		dst = append(dst, byte(TypeAck), byte(m.Kind))
		dst = appendI32(dst, int32(m.Interval))
		dst = append(dst, byte(m.Attempt))
		dst = appendI32(dst, int32(m.Sensor))
		if m.Kind != AckRegister {
			return dst, nil
		}
		if math.IsNaN(m.Budget) || m.Budget < 0 || math.IsInf(m.Budget, 0) ||
			math.IsNaN(m.DataLeft) || m.DataLeft < 0 || !fitsI32(m.ClipStart, m.ClipEnd) {
			return nil, fmt.Errorf("%w: registration budget %v data %v", ErrBadField, m.Budget, m.DataLeft)
		}
		dst = appendF64(dst, m.Budget)
		dst = appendF64(dst, m.DataLeft)
		dst = appendI32(dst, int32(m.ClipStart))
		return appendI32(dst, int32(m.ClipEnd)), nil
	case *Schedule:
		if m.Interval < 0 || !fitsI32(m.Interval) || len(m.Pairs) > MaxSchedulePairs {
			return nil, fmt.Errorf("%w: schedule interval %d with %d pairs", ErrBadField, m.Interval, len(m.Pairs))
		}
		dst = append(dst, byte(TypeSchedule))
		dst = appendI32(dst, int32(m.Interval))
		if m.Repair {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendU16(dst, uint16(len(m.Pairs)))
		for _, p := range m.Pairs {
			if p.Slot < 0 || p.Sensor < 0 || !fitsI32(p.Slot, p.Sensor) {
				return nil, fmt.Errorf("%w: schedule pair %+v", ErrBadField, p)
			}
			dst = appendI32(dst, int32(p.Slot))
			dst = appendI32(dst, int32(p.Sensor))
		}
		return dst, nil
	case *Finish:
		if m.Interval < 0 || !fitsI32(m.Interval) {
			return nil, fmt.Errorf("%w: finish interval %d", ErrBadField, m.Interval)
		}
		dst = append(dst, byte(TypeFinish))
		return appendI32(dst, int32(m.Interval)), nil
	case *Resume:
		if m.LastInterval < -1 || !fitsI32(m.LastInterval) ||
			math.IsNaN(m.Budget) || m.Budget < 0 || math.IsInf(m.Budget, 0) ||
			math.IsNaN(m.DataLeft) || m.DataLeft < 0 {
			return nil, fmt.Errorf("%w: resume last %d budget %v data %v", ErrBadField, m.LastInterval, m.Budget, m.DataLeft)
		}
		dst = append(dst, byte(TypeResume))
		dst = binary.BigEndian.AppendUint64(dst, m.Token)
		dst = appendI32(dst, int32(m.LastInterval))
		dst = appendF64(dst, m.Budget)
		return appendF64(dst, m.DataLeft), nil
	case *Sync:
		if m.Token == 0 || m.Interval < -1 || m.Missed < 0 ||
			!fitsI32(m.Interval, m.Missed) ||
			math.IsNaN(m.Budget) || m.Budget < 0 || math.IsInf(m.Budget, 0) ||
			math.IsNaN(m.DataLeft) || m.DataLeft < 0 {
			return nil, fmt.Errorf("%w: sync token %d interval %d missed %d budget %v", ErrBadField, m.Token, m.Interval, m.Missed, m.Budget)
		}
		dst = append(dst, byte(TypeSync))
		if m.Resumed {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.BigEndian.AppendUint64(dst, m.Token)
		dst = appendI32(dst, int32(m.Interval))
		dst = appendI32(dst, int32(m.Missed))
		dst = appendF64(dst, m.Budget)
		return appendF64(dst, m.DataLeft), nil
	case *Heartbeat:
		return append(dst, byte(TypeHeartbeat)), nil
	}
	return nil, fmt.Errorf("%w: %T", ErrUnknownType, m)
}

// Decode parses one frame payload. Every error path is reachable without
// panicking on arbitrary input; a nil error means the payload was
// consumed exactly.
func Decode(p []byte) (Msg, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrTruncated)
	}
	switch Type(p[0]) {
	case TypeHello:
		if err := exactLen(p, helloLen); err != nil {
			return nil, err
		}
		if binary.BigEndian.Uint16(p[1:]) != magic {
			return nil, fmt.Errorf("%w: 0x%04x", ErrBadMagic, binary.BigEndian.Uint16(p[1:]))
		}
		h := &Hello{
			Version: p[3], Role: Role(p[4]), Sensor: int(getI32(p[5:])),
			Token: binary.BigEndian.Uint64(p[9:]), LastInterval: int(getI32(p[17:])),
		}
		if h.Version != Version {
			return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, h.Version, Version)
		}
		if h.Role > RoleSensor || h.Sensor < -1 || h.LastInterval < -1 {
			return nil, fmt.Errorf("%w: hello role %d sensor %d last %d", ErrBadField, h.Role, h.Sensor, h.LastInterval)
		}
		return h, nil
	case TypeProbe:
		if err := exactLen(p, probeLen); err != nil {
			return nil, err
		}
		m := &Probe{
			Interval: int(getI32(p[1:])), Attempt: int(p[5]),
			Start: int(getI32(p[6:])), End: int(getI32(p[10:])),
			SinkX: getF64(p[14:]), SinkY: getF64(p[22:]),
		}
		if m.Interval < 0 || m.Start < 0 || m.End < m.Start ||
			math.IsNaN(m.SinkX) || math.IsNaN(m.SinkY) {
			return nil, fmt.Errorf("%w: probe %+v", ErrBadField, *m)
		}
		return m, nil
	case TypeAck:
		if len(p) < ackBaseLen {
			return nil, fmt.Errorf("%w: %d byte ack", ErrTruncated, len(p))
		}
		m := &Ack{
			Kind: AckKind(p[1]), Interval: int(getI32(p[2:])),
			Attempt: int(p[6]), Sensor: int(getI32(p[7:])),
		}
		if m.Kind > AckConfirm || m.Interval < 0 || m.Sensor < 0 {
			return nil, fmt.Errorf("%w: ack kind %d interval %d sensor %d", ErrBadField, m.Kind, m.Interval, m.Sensor)
		}
		if m.Kind != AckRegister {
			if err := exactLen(p, ackBaseLen); err != nil {
				return nil, err
			}
			return m, nil
		}
		if err := exactLen(p, ackRegLen); err != nil {
			return nil, err
		}
		m.Budget = getF64(p[11:])
		m.DataLeft = getF64(p[19:])
		m.ClipStart = int(getI32(p[27:]))
		m.ClipEnd = int(getI32(p[31:]))
		if math.IsNaN(m.Budget) || m.Budget < 0 || math.IsInf(m.Budget, 0) ||
			math.IsNaN(m.DataLeft) || m.DataLeft < 0 {
			return nil, fmt.Errorf("%w: registration budget %v data %v", ErrBadField, m.Budget, m.DataLeft)
		}
		return m, nil
	case TypeSchedule:
		if len(p) < schedHeadLen {
			return nil, fmt.Errorf("%w: %d byte schedule", ErrTruncated, len(p))
		}
		m := &Schedule{Interval: int(getI32(p[1:]))}
		switch p[5] {
		case 0:
		case 1:
			m.Repair = true
		default:
			return nil, fmt.Errorf("%w: schedule repair byte %d", ErrBadField, p[5])
		}
		n := int(binary.BigEndian.Uint16(p[6:]))
		if err := exactLen(p, schedHeadLen+n*assignLen); err != nil {
			return nil, err
		}
		if m.Interval < 0 {
			return nil, fmt.Errorf("%w: schedule interval %d", ErrBadField, m.Interval)
		}
		if n > 0 {
			m.Pairs = make([]Assign, n)
			for i := range m.Pairs {
				off := schedHeadLen + i*assignLen
				m.Pairs[i] = Assign{Slot: int(getI32(p[off:])), Sensor: int(getI32(p[off+4:]))}
				if m.Pairs[i].Slot < 0 || m.Pairs[i].Sensor < 0 {
					return nil, fmt.Errorf("%w: schedule pair %+v", ErrBadField, m.Pairs[i])
				}
			}
		}
		return m, nil
	case TypeFinish:
		if err := exactLen(p, finishLen); err != nil {
			return nil, err
		}
		m := &Finish{Interval: int(getI32(p[1:]))}
		if m.Interval < 0 {
			return nil, fmt.Errorf("%w: finish interval %d", ErrBadField, m.Interval)
		}
		return m, nil
	case TypeResume:
		if err := exactLen(p, resumeLen); err != nil {
			return nil, err
		}
		m := &Resume{
			Token: binary.BigEndian.Uint64(p[1:]), LastInterval: int(getI32(p[9:])),
			Budget: getF64(p[13:]), DataLeft: getF64(p[21:]),
		}
		if m.LastInterval < -1 ||
			math.IsNaN(m.Budget) || m.Budget < 0 || math.IsInf(m.Budget, 0) ||
			math.IsNaN(m.DataLeft) || m.DataLeft < 0 {
			return nil, fmt.Errorf("%w: resume last %d budget %v data %v", ErrBadField, m.LastInterval, m.Budget, m.DataLeft)
		}
		return m, nil
	case TypeSync:
		if err := exactLen(p, syncLen); err != nil {
			return nil, err
		}
		m := &Sync{
			Token: binary.BigEndian.Uint64(p[2:]), Interval: int(getI32(p[10:])),
			Missed: int(getI32(p[14:])), Budget: getF64(p[18:]), DataLeft: getF64(p[26:]),
		}
		switch p[1] {
		case 0:
		case 1:
			m.Resumed = true
		default:
			return nil, fmt.Errorf("%w: sync resumed byte %d", ErrBadField, p[1])
		}
		if m.Token == 0 || m.Interval < -1 || m.Missed < 0 ||
			math.IsNaN(m.Budget) || m.Budget < 0 || math.IsInf(m.Budget, 0) ||
			math.IsNaN(m.DataLeft) || m.DataLeft < 0 {
			return nil, fmt.Errorf("%w: sync token %d interval %d missed %d budget %v", ErrBadField, m.Token, m.Interval, m.Missed, m.Budget)
		}
		return m, nil
	case TypeHeartbeat:
		if err := exactLen(p, heartbeatLen); err != nil {
			return nil, err
		}
		return &Heartbeat{}, nil
	}
	return nil, fmt.Errorf("%w: tag %d", ErrUnknownType, p[0])
}

// exactLen enforces the strict-decode rule: payloads consume exactly
// their declared length.
func exactLen(p []byte, want int) error {
	switch {
	case len(p) < want:
		return fmt.Errorf("%w: %d bytes, want %d", ErrTruncated, len(p), want)
	case len(p) > want:
		return fmt.Errorf("%w: %d bytes, want %d", ErrTrailing, len(p), want)
	}
	return nil
}

// ReadFrame reads one length-prefixed payload from r, reusing buf's
// capacity when it suffices. The returned slice aliases buf (or its
// replacement); callers that retain decoded messages are safe because
// Decode copies everything it keeps.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrTruncated)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d byte payload", ErrFrameTooLarge, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
