package wire

import "mobisink/internal/metrics"

// Wire-transport instrumentation, on the process-wide default registry
// so cmd/sinkd's stats dump and tests share one view. Registration is
// idempotent, so plain var initialization is safe.
var (
	openConns = metrics.Default().Gauge(
		"wire_open_connections",
		"Sensor connections currently open on the sink server.")
	framesSent = metrics.Default().CounterVec(
		"wire_frames_sent_total",
		"Protocol frames written, by message type.", "type")
	framesReceived = metrics.Default().CounterVec(
		"wire_frames_received_total",
		"Protocol frames read and decoded, by message type.", "type")
	framesDropped = metrics.Default().CounterVec(
		"wire_frames_dropped_total",
		"Frames discarded by the chaos proxy, by message type.", "type")
	decodeErrors = metrics.Default().Counter(
		"wire_decode_errors_total",
		"Frames that failed strict decoding.")
	regRoundtrip = metrics.Default().Histogram(
		"wire_registration_roundtrip_seconds",
		"Probe broadcast to registration-window close, per interval.", nil)
	intervalCompute = metrics.Default().Histogram(
		"wire_interval_compute_seconds",
		"Scheduler compute time per interval on the sink server.", nil)
	sessionsResumed = metrics.Default().Counter(
		"wire_sessions_resumed_total",
		"Sensor sessions successfully resumed after a reconnect.")
	reconnects = metrics.Default().Counter(
		"wire_reconnects_total",
		"Sensor client redial attempts that reached a completed handshake.")
	heartbeatTimeouts = metrics.Default().Counter(
		"wire_heartbeat_timeouts_total",
		"Connections dropped after a read deadline expired with no frame.")
	recoverySeconds = metrics.Default().Histogram(
		"wire_recovery_seconds",
		"Journal replay to first-probe latency on sink restart.", nil)
)
