package wire

import "mobisink/internal/metrics"

// Wire-transport instrumentation, on the process-wide default registry
// so cmd/sinkd's stats dump and tests share one view. Registration is
// idempotent, so plain var initialization is safe.
var (
	openConns = metrics.Default().Gauge(
		"wire_open_connections",
		"Sensor connections currently open on the sink server.")
	framesSent = metrics.Default().CounterVec(
		"wire_frames_sent_total",
		"Protocol frames written, by message type.", "type")
	framesReceived = metrics.Default().CounterVec(
		"wire_frames_received_total",
		"Protocol frames read and decoded, by message type.", "type")
	framesDropped = metrics.Default().CounterVec(
		"wire_frames_dropped_total",
		"Frames discarded by the chaos proxy, by message type.", "type")
	decodeErrors = metrics.Default().Counter(
		"wire_decode_errors_total",
		"Frames that failed strict decoding.")
	regRoundtrip = metrics.Default().Histogram(
		"wire_registration_roundtrip_seconds",
		"Probe broadcast to registration-window close, per interval.", nil)
	intervalCompute = metrics.Default().Histogram(
		"wire_interval_compute_seconds",
		"Scheduler compute time per interval on the sink server.", nil)
)
