package wire

import "mobisink/internal/metrics"

// Wire-transport instrumentation, on the process-wide default registry
// so cmd/sinkd's stats dump and tests share one view. Registration is
// idempotent, so plain var initialization is safe.
var (
	openConns = metrics.Default().Gauge(
		"wire_open_connections",
		"Sensor connections currently open on the sink server.")
	framesSent = metrics.Default().CounterVec(
		"wire_frames_sent_total",
		"Protocol frames written, by message type.", "type")
	framesReceived = metrics.Default().CounterVec(
		"wire_frames_received_total",
		"Protocol frames read and decoded, by message type.", "type")
	framesDropped = metrics.Default().CounterVec(
		"wire_frames_dropped_total",
		"Frames discarded by the chaos proxy, by message type.", "type")
	decodeErrors = metrics.Default().Counter(
		"wire_decode_errors_total",
		"Frames that failed strict decoding.")
	regRoundtrip = metrics.Default().Histogram(
		"wire_registration_roundtrip_seconds",
		"Probe broadcast to registration-window close, per interval.", nil)
	intervalCompute = metrics.Default().Histogram(
		"wire_interval_compute_seconds",
		"Scheduler compute time per interval on the sink server.", nil)
	sessionsResumed = metrics.Default().Counter(
		"wire_sessions_resumed_total",
		"Sensor sessions successfully resumed after a reconnect.")
	reconnects = metrics.Default().Counter(
		"wire_reconnects_total",
		"Sensor client redial attempts that reached a completed handshake.")
	heartbeatTimeouts = metrics.Default().Counter(
		"wire_heartbeat_timeouts_total",
		"Connections dropped after a read deadline expired with no frame.")
	recoverySeconds = metrics.Default().Histogram(
		"wire_recovery_seconds",
		"Journal replay to first-probe latency on sink restart.", nil)
	// broadcastFanout measures the interval loop's stall per broadcast:
	// one encode plus the shard hand-off on the sharded plane, or the
	// full write loop in legacy serial mode. It is the quantity the
	// sharded rebuild optimizes — delivery itself proceeds on the
	// per-shard writers and never blocks the tour.
	broadcastFanout = metrics.Default().Histogram(
		"wire_broadcast_fanout_ns",
		"Interval-loop stall per broadcast frame fan-out, nanoseconds.",
		metrics.ExpBuckets(250, 2, 24))
	// intervalCommitNs spans an interval's full critical path: probe
	// broadcast start to sealed (journaled) commit.
	intervalCommitNs = metrics.Default().Histogram(
		"wire_interval_commit_ns",
		"Probe broadcast to sealed interval commit, nanoseconds.",
		metrics.ExpBuckets(1024, 2, 26))
	connKills = metrics.Default().Counter(
		"wire_conn_backpressure_kills_total",
		"Connections killed because their bounded outbound queue overflowed.")
)

// sentByType / recvByType resolve each message type's counter once at
// init, so the frame hot paths (per-conn shard writers, the encode-once
// fan-out) pay a single atomic add per frame instead of rendering the
// label string on every call.
var (
	sentByType [TypeHeartbeat + 1]*metrics.Counter
	recvByType [TypeHeartbeat + 1]*metrics.Counter
)

func init() {
	for t := TypeHello; t <= TypeHeartbeat; t++ {
		sentByType[t] = framesSent.With(t.String())
		recvByType[t] = framesReceived.With(t.String())
	}
}

func countSent(t Type) {
	if int(t) < len(sentByType) && sentByType[t] != nil {
		sentByType[t].Inc()
		return
	}
	framesSent.With(t.String()).Inc()
}

func countReceived(t Type) {
	if int(t) < len(recvByType) && recvByType[t] != nil {
		recvByType[t].Inc()
		return
	}
	framesReceived.With(t.String()).Inc()
}

// LatencyHistograms returns the wire latency histograms by metric name,
// for percentile reporting in cmd/loadgen and cmd/sinkd -stats. Names
// ending in _seconds record seconds; _ns record nanoseconds.
func LatencyHistograms() map[string]*metrics.Histogram {
	return map[string]*metrics.Histogram{
		"wire_registration_roundtrip_seconds": regRoundtrip,
		"wire_interval_compute_seconds":       intervalCompute,
		"wire_broadcast_fanout_ns":            broadcastFanout,
		"wire_interval_commit_ns":             intervalCommitNs,
	}
}
