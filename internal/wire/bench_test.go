package wire

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
)

// benchInstance is shortInstance for benchmarks (testing.TB), kept
// separate so the test helper and the parity tests stay untouched.
func benchInstance(tb testing.TB, n int, pathLen float64, seed int64) *core.Instance {
	tb.Helper()
	d, err := network.Generate(network.Params{N: n, PathLength: pathLen, MaxOffset: 40, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	if err := d.AssignSteadyStateBudgets(energy.PaperSolar(energy.Sunny), 2000, 0.2, rng); err != nil {
		tb.Fatal(err)
	}
	inst, err := core.BuildInstance(d, radio.Paper2013(), 5, 1)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

// benchConns opens n loopback TCP connections whose client ends are
// drained continuously, and returns the sink-side Conns indexed by id.
// The kernel socket buffers absorb individual frames, so a serial write
// measures the per-conn syscall cost and a sharded hand-off measures
// the enqueue cost — the two quantities BenchmarkBroadcast compares.
func benchConns(b *testing.B, n int) []*Conn {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	conns := make([]*Conn, n)
	accepted := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			c, err := ln.Accept()
			if err != nil {
				accepted <- err
				return
			}
			conns[i] = NewConn(c)
		}
		accepted <- nil
	}()
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		go io.Copy(io.Discard, c)
	}
	if err := <-accepted; err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
	})
	return conns
}

// BenchmarkBroadcast measures what one broadcast costs the interval
// loop — the serial baseline pays n encode+write syscalls in-line,
// while the sharded plane pays one encode plus n bounded enqueues and
// returns, with delivery proceeding on the shard writers. Flushes keep
// the sharded queues bounded but run outside the timer: queued frames
// are the point of the design, not overhead to hide.
func BenchmarkBroadcast(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		msg := &Probe{Interval: 7, Start: 35, End: 39, SinkX: 120.5, SinkY: -14.25}
		ids := fleetIDs(n)
		b.Run(fmt.Sprintf("Serial/N=%d", n), func(b *testing.B) {
			conns := benchConns(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, id := range ids {
					if err := conns[id].WriteMsg(msg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("Sharded/N=%d", n), func(b *testing.B) {
			conns := benchConns(b, n)
			done := make(chan struct{})
			defer close(done)
			var kills atomic.Int64
			bc := newBroadcaster(8, 1024, done, func(id int, c *Conn) {
				kills.Add(1)
				c.Close()
			})
			for i, c := range conns {
				bc.add(i, c)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bc.Broadcast(msg, ids); err != nil {
					b.Fatal(err)
				}
				if (i+1)%64 == 0 {
					b.StopTimer()
					if err := bc.Flush(ctx); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
			b.StopTimer()
			if err := bc.Flush(ctx); err != nil {
				b.Fatal(err)
			}
			if k := kills.Load(); k != 0 {
				b.Fatalf("%d conns killed by backpressure during the benchmark", k)
			}
			b.StartTimer()
		})
	}
}

// BenchmarkTourWall times a complete fault-free tour (sink + in-process
// fleet over loopback TCP) on the default sharded plane — the end-to-
// end number the fan-out optimization has to move at fleet scale.
func BenchmarkTourWall(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			inst := benchInstance(b, n, 900, 33)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sink, err := NewSink(SinkConfig{Inst: inst, Scheduler: &online.Greedy{}})
				if err != nil {
					b.Fatal(err)
				}
				clients := make([]*SensorClient, n)
				errs := make(chan error, n)
				var wg sync.WaitGroup
				sem := make(chan struct{}, 64)
				for s := 0; s < n; s++ {
					s := s
					wg.Add(1)
					sem <- struct{}{}
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						c, err := DialSensor(sink.Addr(), SensorConfigFor(inst, s))
						if err != nil {
							errs <- err
							return
						}
						clients[s] = c
						go func() { errs <- c.Run(context.Background()) }()
					}()
				}
				wg.Wait()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
				if err := sink.WaitSensors(ctx); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := sink.RunTour(ctx)
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if res.Data <= 0 {
					b.Fatal("benchmark tour collected no data")
				}
				// Close clients before the sink: Run then returns nil via
				// userClosed instead of racing the sink's conn teardown,
				// which at fleet scale can surface as an RST before the
				// client drains its final frames. A mid-tour failure still
				// fails the drain — Run already returned its error.
				for _, c := range clients {
					if c != nil {
						c.Close()
					}
				}
				sink.Close()
				for range clients {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
				cancel()
				b.StartTimer()
			}
		})
	}
}
