package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/fault"
	"mobisink/internal/geom"
	"mobisink/internal/online"
)

// Redial configures the client's reconnect policy. When set, a transport
// failure (connection killed, sink restarted) triggers jittered
// exponential-backoff redials that resume the session via the sensor's
// token; when nil, Run keeps the pre-v2 behavior and treats EOF as the
// end of the tour.
type Redial struct {
	// MaxAttempts bounds redials per outage; default 8. When the budget is
	// exhausted Run returns nil — the sink is gone, the tour is over.
	MaxAttempts int
	// Base is the first backoff; default 10ms. It doubles per failed
	// attempt up to Max (default 500ms), each sleep jittered by a uniform
	// factor in [0.5, 1.5) so a fleet killed together does not redial
	// together.
	Base time.Duration
	Max  time.Duration
	// Seed makes the jitter deterministic for tests; the sensor index is
	// folded in so peers diverge even with equal seeds.
	Seed int64
}

// SensorConfig is everything a sensor endpoint knows: its own link
// profile and budgets — never the rest of the network, preserving the
// protocol's locality.
type SensorConfig struct {
	// Sensor is the endpoint's own visibility window and link profile.
	Sensor core.SensorSlots
	// Tau and Range replicate the instance's slot length and radio range
	// (global constants every deployed node knows).
	Tau   float64
	Range float64
	// DataCap is the sensed-data queue, bits; +Inf when unbounded.
	DataCap float64
	// Faults, when non-nil, drives the sensor-side failure model: a
	// sensor that is crashed at a probed or assigned slot goes silent
	// (internal/fault Alive rolls). Message-level drops belong to the
	// network, i.e. ChaosProxy.
	Faults *fault.Injector
	// Conn sets per-operation I/O deadlines; zero keeps blocking reads.
	Conn ConnOptions
	// Heartbeat, when positive, writes idle keepalives so a sink read
	// deadline sees traffic between intervals.
	Heartbeat time.Duration
	// Redial, when non-nil, enables reconnect-and-resume on transport
	// failures.
	Redial *Redial
}

// SensorConfigFor extracts sensor i's endpoint configuration from a
// built instance.
func SensorConfigFor(inst *core.Instance, i int) SensorConfig {
	return SensorConfig{
		Sensor:  inst.Sensors[i],
		Tau:     inst.Tau,
		Range:   inst.Range,
		DataCap: inst.DataCapOf(i),
	}
}

// SensorClient speaks the sensor side of the protocol over one
// connection at a time: it answers probes according to its visibility
// window and residual budgets, confirms and stores schedules, and debits
// itself on Finish receipt — the exact floating-point debit the
// in-process runner performs, which is what makes wire and in-process
// residuals bit-identical on lossless networks. After a disconnect it
// can redial and resume its session: the sink's Sync reports the
// authoritative committed interval and the client adopts the minimum of
// the two residual views, so a sensor can never talk itself into budget
// it no longer has.
type SensorClient struct {
	cfg  SensorConfig
	addr string
	rng  *rand.Rand

	mu           sync.Mutex
	id           int
	conn         *Conn
	token        uint64
	lastFinished int // last interval whose Finish this sensor applied
	residual     float64
	residualData float64
	assigned     []int // slots of the current interval, ascending
	userClosed   bool
}

// DialSensor connects and handshakes a sensor endpoint. Callers then run
// its protocol loop via Run.
func DialSensor(addr string, cfg SensorConfig) (*SensorClient, error) {
	c := &SensorClient{
		cfg:          cfg,
		addr:         addr,
		id:           cfg.Sensor.ID,
		lastFinished: -1,
		residual:     cfg.Sensor.Budget,
		residualData: cfg.DataCap,
	}
	if rd := cfg.Redial; rd != nil {
		c.rng = rand.New(rand.NewSource(rd.Seed ^ int64(uint64(c.id)*0x9e3779b97f4a7c15)))
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials the sink and runs the full v2 handshake: Hello (token,
// last interval), Resume (the client's residual view), Sync (the sink's
// verdict). On success the client adopts the sink's session token, the
// committed-interval watermark, and the minimum of the two residual
// views, and drops any half-built interval state.
func (c *SensorClient) connect() error {
	raw, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	conn := NewConnOpts(raw, c.cfg.Conn)
	c.mu.Lock()
	token := c.token
	last := c.lastFinished
	budget := c.residual
	dataLeft := c.residualData
	c.mu.Unlock()
	if err := conn.ClientHandshake(c.id, token, last); err != nil {
		conn.Close()
		return err
	}
	if err := conn.WriteMsg(&Resume{Token: token, LastInterval: last, Budget: budget, DataLeft: dataLeft}); err != nil {
		conn.Close()
		return err
	}
	m, err := conn.ReadMsg()
	if err != nil {
		conn.Close()
		return err
	}
	sync, ok := m.(*Sync)
	if !ok {
		conn.Close()
		return fmt.Errorf("%w: want sync, got %s", ErrBadField, m.Type())
	}
	c.mu.Lock()
	c.token = sync.Token
	if sync.Interval > c.lastFinished {
		// Intervals committed while we were gone: we never transmitted in
		// them (missed probes read as declines), so no debit to reconcile.
		c.lastFinished = sync.Interval
	}
	if sync.Budget < c.residual {
		c.residual = sync.Budget
	}
	if sync.DataLeft < c.residualData {
		c.residualData = sync.DataLeft
	}
	c.assigned = nil
	c.conn = conn
	c.mu.Unlock()
	if c.cfg.Heartbeat > 0 {
		conn.StartHeartbeat(c.cfg.Heartbeat)
	}
	return nil
}

// current returns the live connection.
func (c *SensorClient) current() *Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn
}

// Token returns the current session token (0 before the first Sync).
func (c *SensorClient) Token() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

// Residual returns the sensor's remaining energy budget, J.
func (c *SensorClient) Residual() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.residual
}

// ResidualData returns the sensor's remaining queued data, bits.
func (c *SensorClient) ResidualData() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.residualData
}

// Close tears down the connection (Run returns nil after a local Close,
// and does not redial).
func (c *SensorClient) Close() error {
	c.mu.Lock()
	c.userClosed = true
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}

// Run processes protocol messages until the sink closes the connection
// (normal end of tour, returns nil) or the context is canceled. With
// Redial configured, a transport failure instead triggers
// reconnect-and-resume; Run returns nil only when the redial budget is
// exhausted (the sink is gone) or the client was closed locally.
func (c *SensorClient) Run(ctx context.Context) error {
	for {
		err := c.serve(ctx)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		c.mu.Lock()
		closed := c.userClosed
		c.mu.Unlock()
		if closed {
			return nil
		}
		transport := errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed)
		var ne net.Error
		if errors.As(err, &ne) {
			transport = true
		}
		if c.cfg.Redial == nil {
			// Pre-v2 semantics: a clean close is the end of the tour.
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !transport {
			return err
		}
		if !c.redial(ctx) {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return nil // sink unreachable: the tour is over for us
		}
	}
}

// serve pumps one connection until it errors; the error is always
// non-nil and Run classifies it.
func (c *SensorClient) serve(ctx context.Context) error {
	conn := c.current()
	stopped := make(chan struct{})
	defer close(stopped)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stopped:
		}
	}()
	for {
		m, err := conn.ReadMsg()
		if err != nil {
			conn.Close() // stops the heartbeat loop before any redial
			return err
		}
		switch m := m.(type) {
		case *Probe:
			err = c.onProbe(m)
		case *Schedule:
			err = c.onSchedule(m)
		case *Finish:
			c.onFinish(m.Interval)
		default:
			// Heartbeats and unexpected-but-harmless frames; ignore.
		}
		if err != nil {
			conn.Close()
			return err
		}
	}
}

// redial reconnects with jittered exponential backoff, resuming the
// session. Returns false when the attempt budget is exhausted.
func (c *SensorClient) redial(ctx context.Context) bool {
	rd := c.cfg.Redial
	attempts := rd.MaxAttempts
	if attempts <= 0 {
		attempts = 8
	}
	base := rd.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxB := rd.Max
	if maxB <= 0 {
		maxB = 500 * time.Millisecond
	}
	backoff := base
	for a := 0; a < attempts; a++ {
		c.mu.Lock()
		closed := c.userClosed
		c.mu.Unlock()
		if closed {
			return false
		}
		jittered := time.Duration(float64(backoff) * (0.5 + c.rng.Float64()))
		t := time.NewTimer(jittered)
		select {
		case <-ctx.Done():
			t.Stop()
			return false
		case <-t.C:
		}
		if backoff *= 2; backoff > maxB {
			backoff = maxB
		}
		if err := c.connect(); err == nil {
			reconnects.Inc()
			return true
		}
	}
	return false
}

// onProbe answers a registration solicitation: silence when crashed,
// a decline when out of range, otherwise a registration carrying the
// sensor's residual budgets and clipped window.
func (c *SensorClient) onProbe(p *Probe) error {
	if c.cfg.Faults != nil && !c.cfg.Faults.Alive(c.id, p.Start) {
		return nil // crashed sensors are silent, not polite
	}
	s := &c.cfg.Sensor
	sinkPos := geom.Point{X: p.SinkX, Y: p.SinkY}
	if s.Start < 0 || sinkPos.Dist(s.Pos) > c.cfg.Range {
		return c.current().WriteMsg(&Ack{Kind: AckDecline, Interval: p.Interval, Attempt: p.Attempt, Sensor: c.id})
	}
	cs, ce := s.Start, s.End
	if cs < p.Start {
		cs = p.Start
	}
	if ce > p.End {
		ce = p.End
	}
	c.mu.Lock()
	reg := online.Registration{
		Sensor: c.id, Budget: c.residual, DataLeft: c.residualData,
		ClipStart: cs, ClipEnd: ce,
	}
	conn := c.conn
	c.mu.Unlock()
	return conn.WriteMsg(RegisterAck(p.Interval, p.Attempt, reg))
}

// onSchedule stores the sensor's share of a Schedule. A broadcast with
// at least one own slot is confirmed — unless the sensor will be crashed
// at any assigned slot, in which case it stays silent and lets the sink
// detect and repair. Repair unicasts merge without confirmation,
// mirroring the in-process recovery's optimistic repair commit.
func (c *SensorClient) onSchedule(m *Schedule) error {
	var mine []int
	for _, p := range m.Pairs {
		if p.Sensor == c.id {
			mine = append(mine, p.Slot)
		}
	}
	if m.Repair {
		for _, slot := range mine {
			if c.cfg.Faults != nil && !c.cfg.Faults.Alive(c.id, slot) {
				continue
			}
			c.mu.Lock()
			c.assigned = append(c.assigned, slot)
			sort.Ints(c.assigned)
			c.mu.Unlock()
		}
		return nil
	}
	if len(mine) == 0 {
		c.mu.Lock()
		c.assigned = nil
		c.mu.Unlock()
		return nil
	}
	if c.cfg.Faults != nil {
		for _, slot := range mine {
			if !c.cfg.Faults.Alive(c.id, slot) {
				// Dying mid-interval: discard the whole assignment and stay
				// silent so the sink's confirm window catches it.
				c.mu.Lock()
				c.assigned = nil
				c.mu.Unlock()
				return nil
			}
		}
	}
	sort.Ints(mine)
	c.mu.Lock()
	c.assigned = mine
	conn := c.conn
	c.mu.Unlock()
	return conn.WriteMsg(&Ack{Kind: AckConfirm, Interval: m.Interval, Sensor: c.id})
}

// onFinish debits the interval's committed transmissions, replicating
// the in-process commit's floating-point order exactly: spends
// accumulate per slot in ascending order, then a single clamped
// subtraction per budget. The interval index becomes the client's
// committed watermark, carried in the next session handshake.
func (c *SensorClient) onFinish(interval int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var e, d float64
	for _, slot := range c.assigned {
		e += c.cfg.Sensor.PowerAt(slot) * c.cfg.Tau
		d += c.cfg.Sensor.RateAt(slot) * c.cfg.Tau
	}
	c.assigned = nil
	if interval > c.lastFinished {
		c.lastFinished = interval
	}
	if e == 0 && d == 0 {
		return
	}
	c.residual = math.Max(0, c.residual-e)
	if !math.IsInf(c.residualData, 1) {
		c.residualData = math.Max(0, c.residualData-d)
	}
}
