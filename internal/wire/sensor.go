package wire

import (
	"context"
	"errors"
	"io"
	"math"
	"net"
	"sort"
	"sync"

	"mobisink/internal/core"
	"mobisink/internal/fault"
	"mobisink/internal/geom"
	"mobisink/internal/online"
)

// SensorConfig is everything a sensor endpoint knows: its own link
// profile and budgets — never the rest of the network, preserving the
// protocol's locality.
type SensorConfig struct {
	// Sensor is the endpoint's own visibility window and link profile.
	Sensor core.SensorSlots
	// Tau and Range replicate the instance's slot length and radio range
	// (global constants every deployed node knows).
	Tau   float64
	Range float64
	// DataCap is the sensed-data queue, bits; +Inf when unbounded.
	DataCap float64
	// Faults, when non-nil, drives the sensor-side failure model: a
	// sensor that is crashed at a probed or assigned slot goes silent
	// (internal/fault Alive rolls). Message-level drops belong to the
	// network, i.e. ChaosProxy.
	Faults *fault.Injector
}

// SensorConfigFor extracts sensor i's endpoint configuration from a
// built instance.
func SensorConfigFor(inst *core.Instance, i int) SensorConfig {
	return SensorConfig{
		Sensor:  inst.Sensors[i],
		Tau:     inst.Tau,
		Range:   inst.Range,
		DataCap: inst.DataCapOf(i),
	}
}

// SensorClient speaks the sensor side of the protocol over one
// connection: it answers probes according to its visibility window and
// residual budgets, confirms and stores schedules, and debits itself on
// Finish receipt — the exact floating-point debit the in-process runner
// performs, which is what makes wire and in-process residuals
// bit-identical on lossless networks.
type SensorClient struct {
	cfg  SensorConfig
	id   int
	conn *Conn

	mu           sync.Mutex
	residual     float64
	residualData float64
	assigned     []int // slots of the current interval, ascending
}

// DialSensor connects and handshakes a sensor endpoint. Callers then run
// its protocol loop via Run.
func DialSensor(addr string, cfg SensorConfig) (*SensorClient, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewConn(raw)
	if err := c.ClientHandshake(cfg.Sensor.ID); err != nil {
		c.Close()
		return nil, err
	}
	return &SensorClient{
		cfg:          cfg,
		id:           cfg.Sensor.ID,
		conn:         c,
		residual:     cfg.Sensor.Budget,
		residualData: cfg.DataCap,
	}, nil
}

// Residual returns the sensor's remaining energy budget, J.
func (c *SensorClient) Residual() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.residual
}

// ResidualData returns the sensor's remaining queued data, bits.
func (c *SensorClient) ResidualData() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.residualData
}

// Close tears down the connection (Run returns nil after a local Close).
func (c *SensorClient) Close() error { return c.conn.Close() }

// Run processes protocol messages until the sink closes the connection
// (normal end of tour, returns nil) or the context is canceled.
func (c *SensorClient) Run(ctx context.Context) error {
	stopped := make(chan struct{})
	defer close(stopped)
	go func() {
		select {
		case <-ctx.Done():
			c.conn.Close()
		case <-stopped:
		}
	}()
	for {
		m, err := c.conn.ReadMsg()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				return nil
			}
			return err
		}
		switch m := m.(type) {
		case *Probe:
			err = c.onProbe(m)
		case *Schedule:
			err = c.onSchedule(m)
		case *Finish:
			c.onFinish()
		default:
			// Unexpected but harmless (e.g. a duplicate Hello); ignore.
		}
		if err != nil {
			return err
		}
	}
}

// onProbe answers a registration solicitation: silence when crashed,
// a decline when out of range, otherwise a registration carrying the
// sensor's residual budgets and clipped window.
func (c *SensorClient) onProbe(p *Probe) error {
	if c.cfg.Faults != nil && !c.cfg.Faults.Alive(c.id, p.Start) {
		return nil // crashed sensors are silent, not polite
	}
	s := &c.cfg.Sensor
	sinkPos := geom.Point{X: p.SinkX, Y: p.SinkY}
	if s.Start < 0 || sinkPos.Dist(s.Pos) > c.cfg.Range {
		return c.conn.WriteMsg(&Ack{Kind: AckDecline, Interval: p.Interval, Attempt: p.Attempt, Sensor: c.id})
	}
	cs, ce := s.Start, s.End
	if cs < p.Start {
		cs = p.Start
	}
	if ce > p.End {
		ce = p.End
	}
	c.mu.Lock()
	reg := online.Registration{
		Sensor: c.id, Budget: c.residual, DataLeft: c.residualData,
		ClipStart: cs, ClipEnd: ce,
	}
	c.mu.Unlock()
	return c.conn.WriteMsg(RegisterAck(p.Interval, p.Attempt, reg))
}

// onSchedule stores the sensor's share of a Schedule. A broadcast with
// at least one own slot is confirmed — unless the sensor will be crashed
// at any assigned slot, in which case it stays silent and lets the sink
// detect and repair. Repair unicasts merge without confirmation,
// mirroring the in-process recovery's optimistic repair commit.
func (c *SensorClient) onSchedule(m *Schedule) error {
	var mine []int
	for _, p := range m.Pairs {
		if p.Sensor == c.id {
			mine = append(mine, p.Slot)
		}
	}
	if m.Repair {
		for _, slot := range mine {
			if c.cfg.Faults != nil && !c.cfg.Faults.Alive(c.id, slot) {
				continue
			}
			c.mu.Lock()
			c.assigned = append(c.assigned, slot)
			sort.Ints(c.assigned)
			c.mu.Unlock()
		}
		return nil
	}
	if len(mine) == 0 {
		c.mu.Lock()
		c.assigned = nil
		c.mu.Unlock()
		return nil
	}
	if c.cfg.Faults != nil {
		for _, slot := range mine {
			if !c.cfg.Faults.Alive(c.id, slot) {
				// Dying mid-interval: discard the whole assignment and stay
				// silent so the sink's confirm window catches it.
				c.mu.Lock()
				c.assigned = nil
				c.mu.Unlock()
				return nil
			}
		}
	}
	sort.Ints(mine)
	c.mu.Lock()
	c.assigned = mine
	c.mu.Unlock()
	return c.conn.WriteMsg(&Ack{Kind: AckConfirm, Interval: m.Interval, Sensor: c.id})
}

// onFinish debits the interval's committed transmissions, replicating
// the in-process commit's floating-point order exactly: spends
// accumulate per slot in ascending order, then a single clamped
// subtraction per budget.
func (c *SensorClient) onFinish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var e, d float64
	for _, slot := range c.assigned {
		e += c.cfg.Sensor.PowerAt(slot) * c.cfg.Tau
		d += c.cfg.Sensor.RateAt(slot) * c.cfg.Tau
	}
	c.assigned = nil
	if e == 0 && d == 0 {
		return
	}
	c.residual = math.Max(0, c.residual-e)
	if !math.IsInf(c.residualData, 1) {
		c.residualData = math.Max(0, c.residualData-d)
	}
}
