package wire

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/fault"
	"mobisink/internal/online"
)

// Recovery enables the sink server's self-healing machinery, the wire
// counterpart of online.Options.Faults: bounded probe retransmission,
// stale-budget clamps, confirm-based silence detection with schedule
// repair, and degraded-mode fallback. Nil Recovery runs the paper's
// idealized protocol: the sink waits for every connected sensor's answer
// (register or decline) with no timers, which is what makes the
// fault-free tour byte-identical to online.Run.
type Recovery struct {
	// MaxRetries bounds the extra registration rounds per interval (the
	// in-process Plan.MaxRetries).
	MaxRetries int
	// RegWindow is how long the sink waits for outstanding answers in
	// each registration round before retransmitting (or giving up). It
	// must comfortably exceed the network round-trip time; sensors that
	// cannot answer within it are treated as out of reach. Default 100ms.
	RegWindow time.Duration
	// ConfirmWindow is how long the sink waits for Schedule confirmations
	// before declaring the silent assignees crashed or deaf and repairing
	// their slots. Default 100ms.
	ConfirmWindow time.Duration
	// Stalls, when non-nil, injects deterministic scheduler stalls
	// (Plan.StallProb/StallIntervals) that force the degraded fallback,
	// mirroring the in-process fault path.
	Stalls *fault.Injector
	// ComputeDeadline, when positive, bounds each interval's scheduler
	// wall-clock time; on overrun the interval falls back to Degraded.
	ComputeDeadline time.Duration
	// Degraded overrides the fallback scheduler (default density-greedy;
	// Sequential on data-capped instances).
	Degraded online.Scheduler
}

// SinkConfig configures a Sink server.
type SinkConfig struct {
	Inst      *core.Instance
	Scheduler online.Scheduler
	// Addr is the TCP listen address; default "127.0.0.1:0".
	Addr string
	// Sensors is the client count WaitSensors waits for; default
	// len(Inst.Sensors).
	Sensors int
	// Recovery enables the self-healing protocol; nil runs the idealized
	// lossless exchange.
	Recovery *Recovery
}

// inbound is one decoded message attributed to its sensor; a nil msg
// marks the connection closed.
type inbound struct {
	sensor int
	msg    Msg
}

// Sink is the mobile sink as a TCP server: it accepts long-lived sensor
// connections and drives the tour's interval loop over them — probe
// broadcast, registration window, scheduler, schedule/finish broadcast —
// debiting budgets through the same commit path as the in-process
// runner.
type Sink struct {
	cfg      SinkConfig
	rec      *Recovery
	degraded online.Scheduler
	ln       net.Listener
	inbox    chan inbound
	done     chan struct{}

	mu     sync.Mutex
	conns  map[int]*Conn
	joined int
	closed bool
}

// NewSink validates the configuration, binds the listener, and starts
// accepting sensor connections. Callers must Close it.
func NewSink(cfg SinkConfig) (*Sink, error) {
	if cfg.Inst == nil {
		return nil, errors.New("wire: nil instance")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("wire: nil scheduler")
	}
	if cfg.Inst.DataCaps != nil {
		aware, ok := cfg.Scheduler.(interface{ CapAware() bool })
		if !ok || !aware.CapAware() {
			return nil, fmt.Errorf("wire: scheduler %s does not handle data-capped instances (use Sequential)", cfg.Scheduler.Name())
		}
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Sensors == 0 {
		cfg.Sensors = len(cfg.Inst.Sensors)
	}
	s := &Sink{
		cfg:   cfg,
		rec:   cfg.Recovery,
		inbox: make(chan inbound, max(256, 16*cfg.Sensors)),
		done:  make(chan struct{}),
		conns: make(map[int]*Conn),
	}
	if s.rec != nil {
		if s.rec.RegWindow <= 0 {
			s.rec.RegWindow = 100 * time.Millisecond
		}
		if s.rec.ConfirmWindow <= 0 {
			s.rec.ConfirmWindow = 100 * time.Millisecond
		}
		s.degraded = s.rec.Degraded
	}
	if s.degraded == nil {
		if cfg.Inst.DataCaps != nil {
			s.degraded = &online.Sequential{}
		} else {
			s.degraded = &online.Greedy{}
		}
	}
	if s.rec != nil && cfg.Inst.DataCaps != nil {
		aware, ok := s.degraded.(interface{ CapAware() bool })
		if !ok || !aware.CapAware() {
			return nil, fmt.Errorf("wire: degraded scheduler %s does not handle data-capped instances", s.degraded.Name())
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:port").
func (s *Sink) Addr() string { return s.ln.Addr().String() }

// Close tears down the listener and all sensor connections.
func (s *Sink) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.done)
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Sink) acceptLoop() {
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.handle(NewConn(raw))
	}
}

func (s *Sink) handle(c *Conn) {
	id, err := c.ServerHandshake()
	if err != nil {
		c.Close()
		return
	}
	s.mu.Lock()
	if s.closed || id >= len(s.cfg.Inst.Sensors) || s.conns[id] != nil {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.conns[id] = c
	s.joined++
	s.mu.Unlock()
	openConns.Inc()
	defer func() {
		s.mu.Lock()
		if s.conns[id] == c {
			delete(s.conns, id)
		}
		s.mu.Unlock()
		openConns.Dec()
		c.Close()
		select {
		case s.inbox <- inbound{sensor: id}:
		case <-s.done:
		}
	}()
	for {
		m, err := c.ReadMsg()
		if err != nil {
			return
		}
		select {
		case s.inbox <- inbound{sensor: id, msg: m}:
		case <-s.done:
			return
		}
	}
}

// WaitSensors blocks until the configured number of sensors has
// completed the handshake (or the context expires).
func (s *Sink) WaitSensors(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := s.joined
		s.mu.Unlock()
		if n >= s.cfg.Sensors {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("wire: %w waiting for sensors (%d/%d joined)", ctx.Err(), n, s.cfg.Sensors)
		case <-tick.C:
		}
	}
}

// snapshot returns the live connections keyed by sensor index.
func (s *Sink) snapshot() map[int]*Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]*Conn, len(s.conns))
	for id, c := range s.conns {
		out[id] = c
	}
	return out
}

// dropConn discards a connection whose write failed; its sensor is
// treated as departed for the rest of the tour.
func (s *Sink) dropConn(id int, c *Conn) {
	s.mu.Lock()
	if s.conns[id] == c {
		delete(s.conns, id)
	}
	s.mu.Unlock()
	c.Close()
}

// RunTour drives one tour of the online protocol over the connected
// sensors and returns the same Result as online.Run: on a lossless
// network with Recovery nil, byte-identical allocations, collected data,
// residual budgets, and message counts. With Recovery set, Result.Fault
// tallies the sink-observable recoveries (retransmission rounds, budget
// clamps, missed schedules, repairs, lost slots, degraded intervals);
// network-side drop counts live in the chaos layer, which the sink
// cannot observe.
func (s *Sink) RunTour(ctx context.Context) (*online.Result, error) {
	inst := s.cfg.Inst
	res := &online.Result{
		Alloc:        inst.NewAllocation(),
		RegisteredIn: make([][]int, len(inst.Sensors)),
		Residual:     make([]float64, len(inst.Sensors)),
		ResidualData: make([]float64, len(inst.Sensors)),
	}
	for i := range inst.Sensors {
		res.Residual[i] = inst.Sensors[i].Budget
		res.ResidualData[i] = inst.DataCapOf(i)
	}
	var st *fault.Stats
	if s.rec != nil {
		st = &fault.Stats{}
		res.Fault = st
	}
	gamma := inst.Gamma
	intervals := (inst.T + gamma - 1) / gamma
	res.Intervals = intervals
	for j := 0; j < intervals; j++ {
		start := j * gamma
		end := start + gamma - 1
		if end >= inst.T {
			end = inst.T - 1
		}
		iv := online.Interval{Index: j, Start: start, End: end}
		if err := s.runInterval(ctx, iv, res, st); err != nil {
			return nil, fmt.Errorf("wire: interval %d: %w", j, err)
		}
	}
	inst.RecomputeData(res.Alloc)
	res.Data = res.Alloc.Data
	if _, err := inst.Validate(res.Alloc); err != nil {
		return nil, fmt.Errorf("wire: produced infeasible allocation: %w", err)
	}
	return res, nil
}

// runInterval executes one probe → ack → schedule → finish cycle over
// the wire.
func (s *Sink) runInterval(ctx context.Context, iv online.Interval, res *online.Result, st *fault.Stats) error {
	inst := s.cfg.Inst
	sinkPos := inst.Traj.PosAtSlotStart(iv.Start)
	probe := &Probe{Interval: iv.Index, Start: iv.Start, End: iv.End, SinkX: sinkPos.X, SinkY: sinkPos.Y}
	conns := s.snapshot()

	probeAt := time.Now()
	registered, err := s.registration(ctx, iv, probe, conns, res, st)
	if err != nil {
		return err
	}
	regRoundtrip.Observe(time.Since(probeAt).Seconds())

	// Canonical registration order (ascending sensor index, matching the
	// in-process runner regardless of Ack arrival order), with the
	// recovery path's feasibility guard: a stale claim — the sensor missed
	// a Finish and never debited — is clamped against the sink's ledger.
	ids := make([]int, 0, len(registered))
	for id := range registered {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	regs := make([]online.Registration, 0, len(ids))
	for _, id := range ids {
		r := registered[id]
		res.RegisteredIn[id] = append(res.RegisteredIn[id], iv.Index)
		if s.rec != nil {
			if r.Budget > res.Residual[id] {
				st.BudgetClamps++
				r.Budget = res.Residual[id]
			}
			if !math.IsInf(res.ResidualData[id], 1) && r.DataLeft > res.ResidualData[id] {
				r.DataLeft = res.ResidualData[id]
			}
		}
		regs = append(regs, r)
	}
	if len(regs) == 0 {
		return nil // nobody answered; the sink idles this interval
	}

	computeAt := time.Now()
	assign, err := s.schedule(ctx, iv, regs, st)
	if err != nil {
		return err
	}
	intervalCompute.Observe(time.Since(computeAt).Seconds())

	// Schedule broadcast to the registered sensors (slot → sensor pairs
	// sorted by slot; one logical broadcast regardless of fan-out).
	pairs := make([]Assign, 0, len(assign))
	for slot, sensor := range assign {
		pairs = append(pairs, Assign{Slot: slot, Sensor: sensor})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].Slot < pairs[b].Slot })
	s.broadcast(&Schedule{Interval: iv.Index, Pairs: pairs}, ids, conns)
	res.Messages.Schedules++

	if s.rec == nil {
		if err := online.ApplyAssignment(inst, iv, regs, assign, res); err != nil {
			return err
		}
	} else {
		confirmed := s.collectConfirms(ctx, iv, assign)
		if err := s.commitRecover(iv, regs, assign, confirmed, conns, res, st); err != nil {
			return err
		}
	}

	// Finish broadcast: the registered sensors debit their budgets on
	// receipt; TCP ordering delivers it before the next interval's Probe,
	// so every later registration claim reflects the debit.
	s.broadcast(&Finish{Interval: iv.Index}, ids, conns)
	res.Messages.Finishes++
	return nil
}

// broadcast writes one frame to each listed sensor, discarding
// connections whose transport has failed.
func (s *Sink) broadcast(m Msg, ids []int, conns map[int]*Conn) {
	for _, id := range ids {
		c := conns[id]
		if c == nil {
			continue
		}
		if err := c.WriteMsg(m); err != nil {
			s.dropConn(id, c)
			delete(conns, id)
		}
	}
}

// registration runs the interval's registration phase and returns the
// heard claims by sensor. With Recovery nil it is the idealized
// exchange: every connected sensor answers every probe (register or
// decline), so the window closes exactly when all answers are in — no
// timers, no drops, and Ack counts that match the in-process run. With
// Recovery set it runs timed windows with up to MaxRetries retransmit
// rounds unicast to the sensors still silent.
func (s *Sink) registration(ctx context.Context, iv online.Interval, probe *Probe, conns map[int]*Conn, res *online.Result, st *fault.Stats) (map[int]online.Registration, error) {
	all := make([]int, 0, len(conns))
	for id := range conns {
		all = append(all, id)
	}
	sort.Ints(all)
	s.broadcast(probe, all, conns)
	res.Messages.Probes++

	registered := make(map[int]online.Registration)
	answered := make(map[int]bool)
	handle := func(in inbound) {
		if in.msg == nil { // connection closed: the sensor is gone
			answered[in.sensor] = true
			return
		}
		ack, ok := in.msg.(*Ack)
		if !ok || ack.Interval != iv.Index || ack.Kind == AckConfirm || ack.Sensor != in.sensor {
			return // stale or out-of-phase traffic
		}
		if answered[in.sensor] {
			return
		}
		answered[in.sensor] = true
		if ack.Kind == AckRegister {
			registered[in.sensor] = ack.Registration()
			res.Messages.Acks++
		}
	}
	outstanding := func() []int {
		var out []int
		for _, id := range all {
			if !answered[id] && conns[id] != nil {
				out = append(out, id)
			}
		}
		return out
	}

	if s.rec == nil {
		for len(outstanding()) > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case in := <-s.inbox:
				handle(in)
			}
		}
		return registered, nil
	}

	for attempt := 0; attempt <= s.rec.MaxRetries; attempt++ {
		pending := outstanding()
		if len(pending) == 0 {
			break
		}
		if attempt > 0 {
			// One retransmission round: re-probe the stragglers (unicast,
			// but tallied as one round like the in-process recovery).
			rp := *probe
			rp.Attempt = attempt
			s.broadcast(&rp, pending, conns)
			res.Messages.Retransmits++
			st.ProbeRetransmissions++
		}
		timer := time.NewTimer(s.rec.RegWindow)
	window:
		for len(outstanding()) > 0 {
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
				break window
			case in := <-s.inbox:
				handle(in)
			}
		}
		timer.Stop()
	}
	return registered, nil
}

// schedule runs the interval's scheduler under the recovery stall model,
// mirroring the in-process fault path: an injected stall skips the
// primary scheduler outright; a compute-deadline overrun aborts it via
// context. Either way the degraded fallback reschedules the interval.
func (s *Sink) schedule(ctx context.Context, iv online.Interval, regs []online.Registration, st *fault.Stats) (map[int]int, error) {
	inst, sched := s.cfg.Inst, s.cfg.Scheduler
	if s.rec != nil {
		if s.rec.Stalls != nil && s.rec.Stalls.Stalled(iv.Index) {
			st.DegradedIntervals++
			return s.degraded.Schedule(ctx, inst, iv, regs)
		}
		if s.rec.ComputeDeadline > 0 {
			cctx, cancel := context.WithTimeout(ctx, s.rec.ComputeDeadline)
			assign, err := sched.Schedule(cctx, inst, iv, regs)
			cancel()
			if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				st.DegradedIntervals++
				return s.degraded.Schedule(ctx, inst, iv, regs)
			}
			return assign, err
		}
	}
	return sched.Schedule(ctx, inst, iv, regs)
}

// collectConfirms waits out the confirm window and returns the assigned
// sensors that acknowledged the Schedule broadcast. A sensor with slots
// but no confirm is crashed, deaf, or unreachable — commitRecover
// repairs its slots.
func (s *Sink) collectConfirms(ctx context.Context, iv online.Interval, assign map[int]int) map[int]bool {
	want := make(map[int]bool)
	for _, sensor := range assign {
		want[sensor] = true
	}
	confirmed := make(map[int]bool, len(want))
	timer := time.NewTimer(s.rec.ConfirmWindow)
	defer timer.Stop()
	for len(confirmed) < len(want) {
		select {
		case <-ctx.Done():
			return confirmed
		case <-timer.C:
			return confirmed
		case in := <-s.inbox:
			if in.msg == nil {
				continue
			}
			ack, ok := in.msg.(*Ack)
			if ok && ack.Kind == AckConfirm && ack.Interval == iv.Index && want[in.sensor] {
				confirmed[in.sensor] = true
			}
		}
	}
	return confirmed
}

// commitRecover is the wire counterpart of the in-process faulty commit:
// it validates the scheduler output under the protocol rules, then
// commits slot by slot, treating unconfirmed assignees as silent — one
// detection slot lost per silent sensor, remaining slots repaired to the
// best-rate eligible replacement via unicast Schedule updates. Repairs
// commit optimistically: the sink cannot observe a dropped repair
// unicast, and any resulting ledger divergence is healed by the budget
// clamp at the sensor's next registration.
func (s *Sink) commitRecover(iv online.Interval, regs []online.Registration, assign map[int]int, confirmed map[int]bool, conns map[int]*Conn, res *online.Result, st *fault.Stats) error {
	inst := s.cfg.Inst
	regOf := make(map[int]*online.Registration, len(regs))
	for k := range regs {
		regOf[regs[k].Sensor] = &regs[k]
	}
	slots := make([]int, 0, len(assign))
	for slot, sensor := range assign {
		r, ok := regOf[sensor]
		if !ok {
			return fmt.Errorf("scheduler assigned slot %d to unregistered sensor %d", slot, sensor)
		}
		if slot < r.ClipStart || slot > r.ClipEnd {
			return fmt.Errorf("slot %d outside clipped window [%d,%d] of sensor %d", slot, r.ClipStart, r.ClipEnd, sensor)
		}
		if res.Alloc.SlotOwner[slot] != -1 {
			return fmt.Errorf("slot %d double-booked", slot)
		}
		slots = append(slots, slot)
	}
	sort.Ints(slots)

	deaf := make(map[int]bool)
	for _, sensor := range assign {
		if !confirmed[sensor] {
			deaf[sensor] = true
		}
	}
	countedDeaf := make(map[int]bool)
	detected := make(map[int]bool)
	spend := make(map[int]float64)
	dataSpend := make(map[int]float64)

	fits := func(sensor, slot int) bool {
		r := regOf[sensor]
		e := inst.Sensors[sensor].PowerAt(slot) * inst.Tau
		d := inst.Sensors[sensor].RateAt(slot) * inst.Tau
		if spend[sensor]+e > r.Budget+1e-9 {
			return false
		}
		return dataSpend[sensor]+d <= r.DataLeft+1e-6
	}
	commit := func(sensor, slot int) {
		spend[sensor] += inst.Sensors[sensor].PowerAt(slot) * inst.Tau
		dataSpend[sensor] += inst.Sensors[sensor].RateAt(slot) * inst.Tau
		res.Alloc.SlotOwner[slot] = sensor
	}
	repair := func(slot, exclude int) {
		best, bestRate := -1, 0.0
		for _, r := range regs {
			i := r.Sensor
			if i == exclude || deaf[i] || detected[i] {
				continue
			}
			if slot < r.ClipStart || slot > r.ClipEnd {
				continue
			}
			rate, pw := inst.Sensors[i].RateAt(slot), inst.Sensors[i].PowerAt(slot)
			if rate <= 0 || pw <= 0 || !fits(i, slot) {
				continue
			}
			if rate > bestRate {
				best, bestRate = i, rate
			}
		}
		if best < 0 {
			st.LostSlots++
			return
		}
		if c := conns[best]; c != nil {
			if err := c.WriteMsg(&Schedule{Interval: iv.Index, Repair: true, Pairs: []Assign{{Slot: slot, Sensor: best}}}); err != nil {
				s.dropConn(best, c)
				delete(conns, best)
				st.LostSlots++
				return
			}
		} else {
			st.LostSlots++
			return
		}
		res.Messages.RepairUnicasts++
		st.RepairedSlots++
		commit(best, slot)
	}

	for _, slot := range slots {
		sensor := assign[slot]
		switch {
		case deaf[sensor]:
			if !countedDeaf[sensor] {
				countedDeaf[sensor] = true
				st.SchedulesMissed++
			}
			if !detected[sensor] {
				// The sink spends this slot discovering the silence.
				detected[sensor] = true
				st.LostSlots++
				continue
			}
			repair(slot, sensor)
		case detected[sensor]:
			repair(slot, sensor)
		case !fits(sensor, slot):
			// Only possible after a repair consumed this sensor's budget;
			// the sink made that repair, so it reassigns proactively.
			repair(slot, sensor)
		default:
			commit(sensor, slot)
		}
	}

	// Debit the ledger exactly like the fault-free path: per-sensor
	// accumulation in ascending slot order, one subtraction per sensor.
	for sensor, e := range spend {
		res.Residual[sensor] = math.Max(0, res.Residual[sensor]-e)
		if !math.IsInf(res.ResidualData[sensor], 1) {
			res.ResidualData[sensor] = math.Max(0, res.ResidualData[sensor]-dataSpend[sensor])
		}
	}
	return nil
}
