package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/fault"
	"mobisink/internal/online"
	"mobisink/internal/wal"
)

// ErrHalted is returned by RunTour when SinkConfig.HaltAfter stopped the
// tour early (the crash-restart demo's simulated crash point). The
// journal holds every committed interval; a new Sink on the same WAL
// resumes at the first uncommitted one.
var ErrHalted = errors.New("wire: tour halted by HaltAfter")

// Recovery enables the sink server's self-healing machinery, the wire
// counterpart of online.Options.Faults: bounded probe retransmission,
// stale-budget clamps, confirm-based silence detection with schedule
// repair, and degraded-mode fallback. Nil Recovery runs the paper's
// idealized protocol: the sink waits for every connected sensor's answer
// (register or decline) with no timers, which is what makes the
// fault-free tour byte-identical to online.Run.
type Recovery struct {
	// MaxRetries bounds the extra registration rounds per interval (the
	// in-process Plan.MaxRetries).
	MaxRetries int
	// RegWindow is how long the sink waits for outstanding answers in
	// each registration round before retransmitting (or giving up). It
	// must comfortably exceed the network round-trip time; sensors that
	// cannot answer within it are treated as out of reach. Default 100ms.
	RegWindow time.Duration
	// ConfirmWindow is how long the sink waits for Schedule confirmations
	// before declaring the silent assignees crashed or deaf and repairing
	// their slots. Default 100ms.
	ConfirmWindow time.Duration
	// Stalls, when non-nil, injects deterministic scheduler stalls
	// (Plan.StallProb/StallIntervals) that force the degraded fallback,
	// mirroring the in-process fault path.
	Stalls *fault.Injector
	// ComputeDeadline, when positive, bounds each interval's scheduler
	// wall-clock time; on overrun the interval falls back to Degraded.
	ComputeDeadline time.Duration
	// Degraded overrides the fallback scheduler (default density-greedy;
	// Sequential on data-capped instances).
	Degraded online.Scheduler
}

// SinkConfig configures a Sink server.
type SinkConfig struct {
	Inst      *core.Instance
	Scheduler online.Scheduler
	// Addr is the TCP listen address; default "127.0.0.1:0".
	Addr string
	// Sensors is the distinct-sensor count WaitSensors waits for; default
	// len(Inst.Sensors).
	Sensors int
	// Recovery enables the self-healing protocol; nil runs the idealized
	// lossless exchange.
	Recovery *Recovery
	// WALPath, when non-empty, journals every interval commit to an
	// append-only log (internal/wal). If the file already holds a journal
	// for this instance, NewSink replays it — restoring the allocation,
	// registrations, and residual ledger bit-for-bit — and RunTour
	// resumes at the first uncommitted interval.
	WALPath string
	// SessionTTL is how long a disconnected sensor's session (and its
	// resumption rights) survives. Default 1 minute.
	SessionTTL time.Duration
	// Conn sets per-operation I/O deadlines on every accepted
	// connection. The zero value keeps the idealized timer-free behavior;
	// set ReadTimeout to at least 3× the sensors' heartbeat period.
	Conn ConnOptions
	// Heartbeat, when positive, makes the sink write idle keepalives on
	// each connection so sensors with read deadlines see traffic between
	// intervals.
	Heartbeat time.Duration
	// HaltAfter, when positive, stops RunTour with ErrHalted after that
	// many intervals have committed in this process (crash-restart demo).
	HaltAfter int
	// Shards sets the writer-shard count of the broadcast plane: live
	// connections are partitioned id mod Shards, each shard fanning
	// pre-encoded frames out through per-conn bounded queues so the
	// interval loop never blocks on a socket write. 0 means the default
	// (8); values above 64 are clamped; a negative value disables the
	// sharded plane and restores the legacy in-line serial write loop.
	Shards int
	// Queue is the per-connection outbound queue depth on the sharded
	// plane. A peer that stops draining its socket fills only its own
	// queue; on overflow the connection is killed through the same drop
	// path as a write-deadline failure. Default 256.
	Queue int
}

// session is one sensor's resumption state: the token that authorizes a
// reconnect to pick the session back up, the conn that owns it (nil
// while disconnected), and when it disconnected (TTL anchor).
type session struct {
	token    uint64
	owner    *Conn
	lastGone time.Time
}

// inbound is one decoded message attributed to its sensor; a nil msg
// marks the connection closed.
type inbound struct {
	sensor int
	msg    Msg
}

// Sink is the mobile sink as a TCP server: it accepts long-lived sensor
// connections and drives the tour's interval loop over them — probe
// broadcast, registration window, scheduler, schedule/finish broadcast —
// debiting budgets through the same commit path as the in-process
// runner. Sensors that disconnect mid-tour may resume their session
// (Resume/Sync handshake) within the session TTL; with a WAL configured
// the sink itself may die and a successor resume the tour from the
// journal.
type Sink struct {
	cfg      SinkConfig
	rec      *Recovery
	degraded online.Scheduler
	ttl      time.Duration
	ln       net.Listener
	inbox    chan inbound
	done     chan struct{}
	// bc is the sharded write plane (nil in legacy serial mode).
	bc *broadcaster

	// res is the tour ledger, created (or WAL-replayed) by NewSink.
	// RunTour's goroutine owns all writes; the session handshake reads
	// Residual/ResidualData/committedIv under lmu.
	res *online.Result
	lmu sync.Mutex
	// committedIv is the last interval whose commit is final (-1 none).
	committedIv int

	log          *wal.Log
	resumeFrom   int
	tourDone     bool
	recoverStart time.Time

	mu        sync.Mutex
	conns     map[int]*Conn
	sessions  map[int]*session
	nextToken uint64
	joinedIDs map[int]bool
	closed    bool
}

// NewSink validates the configuration, opens and replays the journal
// (when configured), binds the listener, and starts accepting sensor
// connections. Callers must Close it.
func NewSink(cfg SinkConfig) (*Sink, error) {
	if cfg.Inst == nil {
		return nil, errors.New("wire: nil instance")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("wire: nil scheduler")
	}
	if cfg.Inst.DataCaps != nil {
		aware, ok := cfg.Scheduler.(interface{ CapAware() bool })
		if !ok || !aware.CapAware() {
			return nil, fmt.Errorf("wire: scheduler %s does not handle data-capped instances (use Sequential)", cfg.Scheduler.Name())
		}
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Sensors == 0 {
		cfg.Sensors = len(cfg.Inst.Sensors)
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = time.Minute
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.Shards > 64 {
		cfg.Shards = 64
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	s := &Sink{
		cfg:         cfg,
		rec:         cfg.Recovery,
		ttl:         cfg.SessionTTL,
		inbox:       make(chan inbound, max(256, 16*cfg.Sensors)),
		done:        make(chan struct{}),
		conns:       make(map[int]*Conn),
		sessions:    make(map[int]*session),
		joinedIDs:   make(map[int]bool),
		res:         online.NewResult(cfg.Inst),
		committedIv: -1,
	}
	if s.rec != nil {
		if s.rec.RegWindow <= 0 {
			s.rec.RegWindow = 100 * time.Millisecond
		}
		if s.rec.ConfirmWindow <= 0 {
			s.rec.ConfirmWindow = 100 * time.Millisecond
		}
		s.degraded = s.rec.Degraded
	}
	if s.degraded == nil {
		if cfg.Inst.DataCaps != nil {
			s.degraded = &online.Sequential{}
		} else {
			s.degraded = &online.Greedy{}
		}
	}
	if s.rec != nil && cfg.Inst.DataCaps != nil {
		aware, ok := s.degraded.(interface{ CapAware() bool })
		if !ok || !aware.CapAware() {
			return nil, fmt.Errorf("wire: degraded scheduler %s does not handle data-capped instances", s.degraded.Name())
		}
	}
	if cfg.WALPath != "" {
		if err := s.openJournal(cfg.WALPath); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if s.log != nil {
			s.log.Close()
		}
		return nil, err
	}
	s.ln = ln
	if cfg.Shards > 0 {
		s.bc = newBroadcaster(cfg.Shards, cfg.Queue, s.done, s.dropConn)
	}
	go s.acceptLoop()
	return s, nil
}

// openJournal opens (or creates) the WAL, verifies it belongs to this
// instance, and replays every committed interval into the ledger.
func (s *Sink) openJournal(path string) error {
	log, recs, err := wal.Open(path)
	if err != nil {
		return err
	}
	fp := instanceFingerprint(s.cfg.Inst)
	inst := s.cfg.Inst
	if len(recs) == 0 {
		if err := log.Append(wal.Begin{
			Sensors: len(inst.Sensors), T: inst.T, Gamma: inst.Gamma, Fingerprint: fp,
		}); err != nil {
			log.Close()
			return err
		}
		s.log = log
		return nil
	}
	s.recoverStart = time.Now()
	b, ok := recs[0].(wal.Begin)
	if !ok {
		log.Close()
		return errors.New("wire: journal does not start with a Begin record")
	}
	if b.Sensors != len(inst.Sensors) || b.T != inst.T || b.Gamma != inst.Gamma || b.Fingerprint != fp {
		log.Close()
		return fmt.Errorf("wire: journal written for a different instance (fingerprint %x, want %x)", b.Fingerprint, fp)
	}
	for _, r := range recs[1:] {
		switch r := r.(type) {
		case wal.Commit:
			if s.tourDone {
				log.Close()
				return errors.New("wire: journal has a Commit after End")
			}
			if err := s.applyCommit(r); err != nil {
				log.Close()
				return err
			}
		case wal.End:
			s.tourDone = true
		default:
			log.Close()
			return fmt.Errorf("wire: unexpected journal record kind %d", r.Kind())
		}
	}
	// Re-validate the replayed state before trusting it: the partial
	// allocation must be feasible and Lemma 1 must hold.
	inst.RecomputeData(s.res.Alloc)
	if _, err := inst.Validate(s.res.Alloc); err != nil {
		log.Close()
		return fmt.Errorf("wire: journal replays to infeasible allocation: %w", err)
	}
	if err := s.res.CheckLemma1(); err != nil {
		log.Close()
		return fmt.Errorf("wire: journal replays to Lemma 1 violation: %w", err)
	}
	s.resumeFrom = s.committedIv + 1
	s.log = log
	return nil
}

// applyCommit replays one committed interval into the ledger: the
// registrations, the slot owners, and the stored debits — the exact
// clamped subtraction the live commit performed, so residuals are
// bit-identical to the pre-crash process.
func (s *Sink) applyCommit(c wal.Commit) error {
	inst := s.cfg.Inst
	if c.Interval != s.committedIv+1 {
		return fmt.Errorf("wire: journal commits interval %d after %d", c.Interval, s.committedIv)
	}
	res := s.res
	for _, id := range c.Registered {
		if id >= len(inst.Sensors) {
			return fmt.Errorf("wire: journal registers unknown sensor %d", id)
		}
		res.RegisteredIn[id] = append(res.RegisteredIn[id], c.Interval)
	}
	for _, p := range c.Pairs {
		if p.Slot >= inst.T || p.Sensor >= len(inst.Sensors) {
			return fmt.Errorf("wire: journal assigns slot %d to sensor %d out of range", p.Slot, p.Sensor)
		}
		if res.Alloc.SlotOwner[p.Slot] != -1 {
			return fmt.Errorf("wire: journal double-books slot %d", p.Slot)
		}
		res.Alloc.SlotOwner[p.Slot] = p.Sensor
	}
	for _, d := range c.Debits {
		if d.Sensor >= len(inst.Sensors) {
			return fmt.Errorf("wire: journal debits unknown sensor %d", d.Sensor)
		}
		res.Residual[d.Sensor] = math.Max(0, res.Residual[d.Sensor]-d.Energy)
		if !math.IsInf(res.ResidualData[d.Sensor], 1) {
			res.ResidualData[d.Sensor] = math.Max(0, res.ResidualData[d.Sensor]-d.Data)
		}
	}
	// Reconstruct the message counters the live run would have tallied.
	// Retransmission and repair-unicast counts are not journaled (they
	// are transport effort, not tour state) and restart at zero.
	res.Messages.Probes++
	if len(c.Registered) > 0 {
		res.Messages.Acks += len(c.Registered)
		res.Messages.Schedules++
		res.Messages.Finishes++
	}
	s.committedIv = c.Interval
	return nil
}

// instanceFingerprint folds the tour-defining parameters — shape, slot
// length, radio range, and every sensor's budget, window, position, and
// data cap — into one hash, so a journal cannot be replayed against a
// different deployment.
func instanceFingerprint(inst *core.Instance) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(inst.T))
	put(uint64(inst.Gamma))
	put(math.Float64bits(inst.Tau))
	put(math.Float64bits(inst.Range))
	for i := range inst.Sensors {
		sn := &inst.Sensors[i]
		put(uint64(sn.ID))
		put(math.Float64bits(sn.Budget))
		put(uint64(int64(sn.Start)))
		put(uint64(int64(sn.End)))
		put(math.Float64bits(sn.Pos.X))
		put(math.Float64bits(sn.Pos.Y))
		put(math.Float64bits(inst.DataCapOf(i)))
	}
	return h.Sum64()
}

// Addr returns the bound listen address ("127.0.0.1:port").
func (s *Sink) Addr() string { return s.ln.Addr().String() }

// Close tears down the listener, all sensor connections, and the
// journal.
func (s *Sink) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.done)
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	if s.log != nil {
		s.log.Close()
	}
	return err
}

func (s *Sink) acceptLoop() {
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.handle(NewConnOpts(raw, s.cfg.Conn))
	}
}

// handle runs one connection: Hello, then the Resume/Sync session
// handshake, then the protocol read loop feeding the inbox. The conn
// only joins the broadcast set after its Sync is on the wire, so a
// resuming sensor never sees interval traffic before its session state.
func (s *Sink) handle(c *Conn) {
	hello, err := c.ServerHandshake()
	if err != nil {
		c.Close()
		return
	}
	id := hello.Sensor
	if id >= len(s.cfg.Inst.Sensors) {
		c.Close()
		return
	}
	m, err := c.ReadMsg()
	if err != nil {
		c.Close()
		return
	}
	rs, ok := m.(*Resume)
	if !ok || rs.Token != hello.Token {
		c.Close()
		return
	}
	sync, old := s.attach(id, c, rs)
	if sync == nil { // sink closed
		c.Close()
		return
	}
	if old != nil {
		old.Close() // kick the stale connection owning this session
	}
	if err := c.WriteMsg(sync); err != nil {
		s.detachSession(id, c)
		c.Close()
		return
	}
	// Join the write plane before the conn set: any broadcast that sees
	// the conn in s.conns must find its shard queue already live.
	var sc *sconn
	if s.bc != nil {
		sc = s.bc.add(id, c)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if sc != nil {
			s.bc.remove(id, sc)
		}
		s.detachSession(id, c)
		c.Close()
		return
	}
	s.conns[id] = c
	s.joinedIDs[id] = true
	s.mu.Unlock()
	openConns.Inc()
	var stopHB func()
	if s.cfg.Heartbeat > 0 {
		stopHB = c.StartHeartbeat(s.cfg.Heartbeat)
	}
	defer func() {
		if stopHB != nil {
			stopHB()
		}
		s.mu.Lock()
		if s.conns[id] == c {
			delete(s.conns, id)
		}
		s.mu.Unlock()
		if sc != nil {
			s.bc.remove(id, sc)
		}
		s.detachSession(id, c)
		openConns.Dec()
		c.Close()
		select {
		case s.inbox <- inbound{sensor: id}:
		case <-s.done:
		}
	}()
	for {
		m, err := c.ReadMsg()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				heartbeatTimeouts.Inc()
			}
			return
		}
		if _, ok := m.(*Heartbeat); ok {
			continue // liveness traffic, not protocol
		}
		select {
		case s.inbox <- inbound{sensor: id, msg: m}:
		case <-s.done:
			return
		}
	}
}

// attach reconciles a Resume claim against the session table and builds
// the answering Sync. It returns the stale conn to kick when the session
// was still nominally owned, and nil Sync when the sink is closed.
func (s *Sink) attach(id int, c *Conn, rs *Resume) (*Sync, *Conn) {
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil
	}
	sess := s.sessions[id]
	resumed := sess != nil && rs.Token != 0 && sess.token == rs.Token &&
		(sess.owner != nil || now.Sub(sess.lastGone) <= s.ttl)
	var old *Conn
	if sess != nil && sess.owner != nil {
		old = sess.owner
		if s.conns[id] == old {
			delete(s.conns, id)
		}
	}
	if !resumed {
		s.nextToken++
		sess = &session{token: s.nextToken}
		s.sessions[id] = sess
	}
	sess.owner = c
	sess.lastGone = time.Time{}
	token := sess.token
	s.mu.Unlock()

	s.lmu.Lock()
	committed := s.committedIv
	budget := s.res.Residual[id]
	dataLeft := s.res.ResidualData[id]
	s.lmu.Unlock()

	missed := 0
	if resumed && committed > rs.LastInterval {
		missed = committed - rs.LastInterval
	}
	if resumed {
		sessionsResumed.Inc()
	}
	return &Sync{
		Resumed: resumed, Token: token, Interval: committed,
		Missed: missed, Budget: budget, DataLeft: dataLeft,
	}, old
}

// detachSession marks the session disconnected iff c still owns it (a
// newer conn may have taken it over).
func (s *Sink) detachSession(id int, c *Conn) {
	s.mu.Lock()
	if sess := s.sessions[id]; sess != nil && sess.owner == c {
		sess.owner = nil
		sess.lastGone = time.Now()
	}
	s.mu.Unlock()
}

// WaitSensors blocks until the configured number of distinct sensors has
// completed the handshake (or the context expires).
func (s *Sink) WaitSensors(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := len(s.joinedIDs)
		s.mu.Unlock()
		if n >= s.cfg.Sensors {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("wire: %w waiting for sensors (%d/%d joined)", ctx.Err(), n, s.cfg.Sensors)
		case <-tick.C:
		}
	}
}

// connOf returns the sensor's current connection (nil while down). The
// broadcast and repair paths look connections up live rather than from a
// per-interval snapshot, so a sensor that resumed mid-interval is
// reachable the moment its Sync is written.
func (s *Sink) connOf(id int) *Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns[id]
}

// liveIDs returns the connected sensor indices, ascending.
func (s *Sink) liveIDs() []int {
	s.mu.Lock()
	ids := make([]int, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Ints(ids)
	return ids
}

// sessionAlive reports whether the sensor holds a resumable session: it
// is connected, or disconnected for less than the TTL and so may
// reconnect mid-interval.
func (s *Sink) sessionAlive(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		return false
	}
	return sess.owner != nil || time.Since(sess.lastGone) <= s.ttl
}

// reachableIDs returns the sensors the recovery-mode registration phase
// should solicit: everyone connected plus everyone whose session is
// still within its TTL — a sensor whose connection just died may resume
// before the registration window closes, and writing it off immediately
// would let a fast tour outrun every reconnect.
func (s *Sink) reachableIDs() []int {
	now := time.Now()
	s.mu.Lock()
	set := make(map[int]bool, len(s.conns))
	for id := range s.conns {
		set[id] = true
	}
	for id, sess := range s.sessions {
		if sess.owner != nil || now.Sub(sess.lastGone) <= s.ttl {
			set[id] = true
		}
	}
	s.mu.Unlock()
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// dropConn discards a connection whose write failed; its sensor may
// still resume its session from a fresh connection.
func (s *Sink) dropConn(id int, c *Conn) {
	s.mu.Lock()
	if s.conns[id] == c {
		delete(s.conns, id)
	}
	s.mu.Unlock()
	if s.bc != nil {
		s.bc.removeConn(id, c)
	}
	c.Close()
}

// RunTour drives one tour of the online protocol over the connected
// sensors and returns the same Result as online.Run: on a lossless
// network with Recovery nil, byte-identical allocations, collected data,
// residual budgets, and message counts. With Recovery set, Result.Fault
// tallies the sink-observable recoveries (retransmission rounds, budget
// clamps, missed schedules, repairs, lost slots, degraded intervals);
// network-side drop counts live in the chaos layer, which the sink
// cannot observe. With a WAL configured the tour starts at the first
// uncommitted interval — on a fresh journal that is interval 0; on a
// replayed one it is wherever the previous process died.
func (s *Sink) RunTour(ctx context.Context) (*online.Result, error) {
	inst := s.cfg.Inst
	res := s.res
	var st *fault.Stats
	if s.rec != nil {
		st = &fault.Stats{}
		res.Fault = st
	}
	gamma := inst.Gamma
	intervals := (inst.T + gamma - 1) / gamma
	res.Intervals = intervals
	if !s.recoverStart.IsZero() {
		recoverySeconds.Observe(time.Since(s.recoverStart).Seconds())
		s.recoverStart = time.Time{}
	}
	ran := 0
	for j := s.resumeFrom; j < intervals && !s.tourDone; j++ {
		start := j * gamma
		end := start + gamma - 1
		if end >= inst.T {
			end = inst.T - 1
		}
		iv := online.Interval{Index: j, Start: start, End: end}
		if err := s.runInterval(ctx, iv, res, st); err != nil {
			return nil, fmt.Errorf("wire: interval %d: %w", j, err)
		}
		ran++
		if s.cfg.HaltAfter > 0 && ran >= s.cfg.HaltAfter && j+1 < intervals {
			return res, ErrHalted
		}
	}
	// Drain the write plane before declaring the tour done, so the final
	// Finish frames are on the wire before the caller tears the sink
	// down. A HaltAfter "crash" returns above without flushing — frames
	// a real crash would lose stay lost, and the Resume/Sync min-residual
	// adoption heals the divergence bit-exactly.
	if s.bc != nil {
		if err := s.bc.Flush(ctx); err != nil {
			return nil, fmt.Errorf("wire: final flush: %w", err)
		}
	}
	if s.log != nil && !s.tourDone {
		if err := s.log.Append(wal.End{}); err != nil {
			return nil, fmt.Errorf("wire: journal end: %w", err)
		}
	}
	inst.RecomputeData(res.Alloc)
	res.Data = res.Alloc.Data
	if _, err := inst.Validate(res.Alloc); err != nil {
		return nil, fmt.Errorf("wire: produced infeasible allocation: %w", err)
	}
	return res, nil
}

// runInterval executes one probe → ack → schedule → finish cycle over
// the wire, journaling the commit before the Finish broadcast so a
// crash between the two cannot lose a debit the sensors performed.
func (s *Sink) runInterval(ctx context.Context, iv online.Interval, res *online.Result, st *fault.Stats) error {
	inst := s.cfg.Inst
	sinkPos := inst.Traj.PosAtSlotStart(iv.Start)
	probe := &Probe{Interval: iv.Index, Start: iv.Start, End: iv.End, SinkX: sinkPos.X, SinkY: sinkPos.Y}

	probeAt := time.Now()
	registered, err := s.registration(ctx, iv, probe, res, st)
	if err != nil {
		return err
	}
	regRoundtrip.Observe(time.Since(probeAt).Seconds())

	// Canonical registration order (ascending sensor index, matching the
	// in-process runner regardless of Ack arrival order), with the
	// recovery path's feasibility guard: a stale claim — the sensor missed
	// a Finish and never debited — is clamped against the sink's ledger.
	ids := make([]int, 0, len(registered))
	for id := range registered {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	regs := make([]online.Registration, 0, len(ids))
	for _, id := range ids {
		r := registered[id]
		res.RegisteredIn[id] = append(res.RegisteredIn[id], iv.Index)
		if s.rec != nil {
			if r.Budget > res.Residual[id] {
				st.BudgetClamps++
				r.Budget = res.Residual[id]
			}
			if !math.IsInf(res.ResidualData[id], 1) && r.DataLeft > res.ResidualData[id] {
				r.DataLeft = res.ResidualData[id]
			}
		}
		regs = append(regs, r)
	}
	if len(regs) == 0 {
		// Nobody answered; the sink idles this interval. The empty commit
		// still journals so a restarted sink resumes past it.
		if err := s.commitInterval(iv.Index, nil, nil, nil, nil); err != nil {
			return err
		}
		intervalCommitNs.Observe(float64(time.Since(probeAt).Nanoseconds()))
		return nil
	}

	computeAt := time.Now()
	assign, err := s.schedule(ctx, iv, regs, st)
	if err != nil {
		return err
	}
	intervalCompute.Observe(time.Since(computeAt).Seconds())

	// Schedule broadcast to the registered sensors (slot → sensor pairs
	// sorted by slot; one logical broadcast regardless of fan-out).
	pairs := make([]Assign, 0, len(assign))
	for slot, sensor := range assign {
		pairs = append(pairs, Assign{Slot: slot, Sensor: sensor})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].Slot < pairs[b].Slot })
	s.broadcast(&Schedule{Interval: iv.Index, Pairs: pairs}, ids)
	res.Messages.Schedules++

	var committed []wal.Assign
	spend := make(map[int]float64)
	dataSpend := make(map[int]float64)
	if s.rec == nil {
		s.lmu.Lock()
		err := online.ApplyAssignment(inst, iv, regs, assign, res)
		s.lmu.Unlock()
		if err != nil {
			return err
		}
		// Mirror ApplyAssignment's commit exactly — ascending slot order,
		// identical accumulation — so the journaled debits reproduce the
		// live residuals bit-for-bit on replay.
		for _, p := range pairs {
			spend[p.Sensor] += inst.Sensors[p.Sensor].PowerAt(p.Slot) * inst.Tau
			dataSpend[p.Sensor] += inst.Sensors[p.Sensor].RateAt(p.Slot) * inst.Tau
			committed = append(committed, wal.Assign{Slot: p.Slot, Sensor: p.Sensor})
		}
	} else {
		confirmed := s.collectConfirms(ctx, iv, assign)
		s.lmu.Lock()
		committed, err = s.commitRecover(iv, regs, assign, confirmed, res, st, spend, dataSpend)
		s.lmu.Unlock()
		if err != nil {
			return err
		}
	}
	if err := s.commitInterval(iv.Index, ids, committed, spend, dataSpend); err != nil {
		return err
	}
	intervalCommitNs.Observe(float64(time.Since(probeAt).Nanoseconds()))

	// Finish broadcast: the registered sensors debit their budgets on
	// receipt; TCP ordering delivers it before the next interval's Probe,
	// so every later registration claim reflects the debit.
	s.broadcast(&Finish{Interval: iv.Index}, ids)
	res.Messages.Finishes++
	return nil
}

// commitInterval journals the sealed interval (when a WAL is configured)
// and advances the committed-interval watermark the session handshake
// reports to resuming sensors.
func (s *Sink) commitInterval(interval int, ids []int, pairs []wal.Assign, spend, dataSpend map[int]float64) error {
	if s.log != nil {
		rec := wal.Commit{Interval: interval, Registered: ids, Pairs: pairs}
		sensors := make([]int, 0, len(spend))
		for sensor := range spend {
			sensors = append(sensors, sensor)
		}
		sort.Ints(sensors)
		for _, sensor := range sensors {
			rec.Debits = append(rec.Debits, wal.Debit{
				Sensor: sensor, Energy: spend[sensor], Data: dataSpend[sensor],
			})
		}
		if err := s.log.Append(rec); err != nil {
			return fmt.Errorf("journal commit: %w", err)
		}
	}
	s.lmu.Lock()
	s.committedIv = interval
	s.lmu.Unlock()
	return nil
}

// broadcast fans one frame out to the listed sensors. On the sharded
// plane the frame is encoded once and handed to the writer shards, so
// the observed fan-out time is the interval loop's stall — delivery
// proceeds concurrently on the per-shard writers, and a failed conn is
// discarded by its shard through dropConn. Legacy serial mode (Shards
// negative) is the original in-line write loop, timed end to end.
func (s *Sink) broadcast(m Msg, ids []int) {
	start := time.Now()
	if s.bc != nil {
		_ = s.bc.Broadcast(m, ids)
	} else {
		for _, id := range ids {
			c := s.connOf(id)
			if c == nil {
				continue
			}
			if err := c.WriteMsg(m); err != nil {
				s.dropConn(id, c)
			}
		}
	}
	broadcastFanout.Observe(float64(time.Since(start).Nanoseconds()))
}

// registration runs the interval's registration phase and returns the
// heard claims by sensor. With Recovery nil it is the idealized
// exchange: every connected sensor answers every probe (register or
// decline), so the window closes exactly when all answers are in — no
// timers, no drops, and Ack counts that match the in-process run. With
// Recovery set it runs timed windows with up to MaxRetries retransmit
// rounds unicast to the sensors still silent; a sensor that loses its
// connection mid-window and resumes its session before the next round is
// re-probed like any other straggler.
func (s *Sink) registration(ctx context.Context, iv online.Interval, probe *Probe, res *online.Result, st *fault.Stats) (map[int]online.Registration, error) {
	all := s.liveIDs()
	if s.rec != nil {
		// Recovery mode also waits (bounded by the windows) for sensors
		// whose connection died but whose session is inside its TTL: they
		// may resume before the window closes and answer a retransmit.
		all = s.reachableIDs()
	}
	s.broadcast(probe, all)
	res.Messages.Probes++

	registered := make(map[int]online.Registration)
	answered := make(map[int]bool)
	handle := func(in inbound) {
		if in.msg == nil { // connection closed
			if s.rec == nil {
				// Idealized mode has no retransmissions to catch a late
				// rejoin; the sensor is gone for this interval.
				answered[in.sensor] = true
			}
			return
		}
		ack, ok := in.msg.(*Ack)
		if !ok || ack.Interval != iv.Index || ack.Kind == AckConfirm || ack.Sensor != in.sensor {
			return // stale or out-of-phase traffic
		}
		if answered[in.sensor] {
			return
		}
		answered[in.sensor] = true
		if ack.Kind == AckRegister {
			registered[in.sensor] = ack.Registration()
			res.Messages.Acks++
		}
	}
	outstanding := func() []int {
		var out []int
		for _, id := range all {
			if answered[id] {
				continue
			}
			if s.connOf(id) != nil || (s.rec != nil && s.sessionAlive(id)) {
				out = append(out, id)
			}
		}
		return out
	}

	if s.rec == nil {
		for len(outstanding()) > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case in := <-s.inbox:
				handle(in)
			}
		}
		return registered, nil
	}

	for attempt := 0; attempt <= s.rec.MaxRetries; attempt++ {
		pending := outstanding()
		if len(pending) == 0 {
			break
		}
		if attempt > 0 {
			// One retransmission round: re-probe the stragglers (unicast,
			// but tallied as one round like the in-process recovery).
			rp := *probe
			rp.Attempt = attempt
			s.broadcast(&rp, pending)
			res.Messages.Retransmits++
			st.ProbeRetransmissions++
		}
		timer := time.NewTimer(s.rec.RegWindow)
	window:
		for len(outstanding()) > 0 {
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
				break window
			case in := <-s.inbox:
				handle(in)
			}
		}
		timer.Stop()
	}
	return registered, nil
}

// schedule runs the interval's scheduler under the recovery stall model,
// mirroring the in-process fault path: an injected stall skips the
// primary scheduler outright; a compute-deadline overrun aborts it via
// context. Either way the degraded fallback reschedules the interval.
func (s *Sink) schedule(ctx context.Context, iv online.Interval, regs []online.Registration, st *fault.Stats) (map[int]int, error) {
	inst, sched := s.cfg.Inst, s.cfg.Scheduler
	if s.rec != nil {
		if s.rec.Stalls != nil && s.rec.Stalls.Stalled(iv.Index) {
			st.DegradedIntervals++
			return s.degraded.Schedule(ctx, inst, iv, regs)
		}
		if s.rec.ComputeDeadline > 0 {
			cctx, cancel := context.WithTimeout(ctx, s.rec.ComputeDeadline)
			assign, err := sched.Schedule(cctx, inst, iv, regs)
			cancel()
			if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				st.DegradedIntervals++
				return s.degraded.Schedule(ctx, inst, iv, regs)
			}
			return assign, err
		}
	}
	return sched.Schedule(ctx, inst, iv, regs)
}

// collectConfirms waits out the confirm window and returns the assigned
// sensors that acknowledged the Schedule broadcast. A sensor with slots
// but no confirm is crashed, deaf, or unreachable — commitRecover
// repairs its slots.
func (s *Sink) collectConfirms(ctx context.Context, iv online.Interval, assign map[int]int) map[int]bool {
	want := make(map[int]bool)
	for _, sensor := range assign {
		want[sensor] = true
	}
	confirmed := make(map[int]bool, len(want))
	timer := time.NewTimer(s.rec.ConfirmWindow)
	defer timer.Stop()
	for len(confirmed) < len(want) {
		select {
		case <-ctx.Done():
			return confirmed
		case <-timer.C:
			return confirmed
		case in := <-s.inbox:
			if in.msg == nil {
				continue
			}
			ack, ok := in.msg.(*Ack)
			if ok && ack.Kind == AckConfirm && ack.Interval == iv.Index && want[in.sensor] {
				confirmed[in.sensor] = true
			}
		}
	}
	return confirmed
}

// commitRecover is the wire counterpart of the in-process faulty commit:
// it validates the scheduler output under the protocol rules, then
// commits slot by slot, treating unconfirmed assignees as silent — one
// detection slot lost per silent sensor, remaining slots repaired to the
// best-rate eligible replacement via unicast Schedule updates. Repairs
// commit optimistically: the sink cannot observe a dropped repair
// unicast, and any resulting ledger divergence is healed by the budget
// clamp at the sensor's next registration. It returns the committed
// (slot, sensor) pairs in ascending slot order and fills spend/dataSpend
// with the per-sensor debits, for the journal.
func (s *Sink) commitRecover(iv online.Interval, regs []online.Registration, assign map[int]int, confirmed map[int]bool, res *online.Result, st *fault.Stats, spend, dataSpend map[int]float64) ([]wal.Assign, error) {
	inst := s.cfg.Inst
	regOf := make(map[int]*online.Registration, len(regs))
	for k := range regs {
		regOf[regs[k].Sensor] = &regs[k]
	}
	slots := make([]int, 0, len(assign))
	for slot, sensor := range assign {
		r, ok := regOf[sensor]
		if !ok {
			return nil, fmt.Errorf("scheduler assigned slot %d to unregistered sensor %d", slot, sensor)
		}
		if slot < r.ClipStart || slot > r.ClipEnd {
			return nil, fmt.Errorf("slot %d outside clipped window [%d,%d] of sensor %d", slot, r.ClipStart, r.ClipEnd, sensor)
		}
		if res.Alloc.SlotOwner[slot] != -1 {
			return nil, fmt.Errorf("slot %d double-booked", slot)
		}
		slots = append(slots, slot)
	}
	sort.Ints(slots)

	deaf := make(map[int]bool)
	for _, sensor := range assign {
		if !confirmed[sensor] {
			deaf[sensor] = true
		}
	}
	countedDeaf := make(map[int]bool)
	detected := make(map[int]bool)
	var committed []wal.Assign

	fits := func(sensor, slot int) bool {
		r := regOf[sensor]
		e := inst.Sensors[sensor].PowerAt(slot) * inst.Tau
		d := inst.Sensors[sensor].RateAt(slot) * inst.Tau
		if spend[sensor]+e > r.Budget+1e-9 {
			return false
		}
		return dataSpend[sensor]+d <= r.DataLeft+1e-6
	}
	commit := func(sensor, slot int) {
		spend[sensor] += inst.Sensors[sensor].PowerAt(slot) * inst.Tau
		dataSpend[sensor] += inst.Sensors[sensor].RateAt(slot) * inst.Tau
		res.Alloc.SlotOwner[slot] = sensor
		committed = append(committed, wal.Assign{Slot: slot, Sensor: sensor})
	}
	repair := func(slot, exclude int) {
		best, bestRate := -1, 0.0
		for _, r := range regs {
			i := r.Sensor
			if i == exclude || deaf[i] || detected[i] {
				continue
			}
			if slot < r.ClipStart || slot > r.ClipEnd {
				continue
			}
			rate, pw := inst.Sensors[i].RateAt(slot), inst.Sensors[i].PowerAt(slot)
			if rate <= 0 || pw <= 0 || !fits(i, slot) {
				continue
			}
			if rate > bestRate {
				best, bestRate = i, rate
			}
		}
		if best < 0 {
			st.LostSlots++
			return
		}
		fix := &Schedule{Interval: iv.Index, Repair: true, Pairs: []Assign{{Slot: slot, Sensor: best}}}
		if s.bc != nil {
			// Shard-routed unicast: FIFO behind the interval's Schedule
			// broadcast, so the repair cannot overtake it. Delivery is
			// asynchronous and optimistic, exactly like a repair whose
			// frame the network dropped (see the commit rules above).
			if !s.bc.Unicast(best, fix) {
				st.LostSlots++
				return
			}
		} else if c := s.connOf(best); c != nil {
			if err := c.WriteMsg(fix); err != nil {
				s.dropConn(best, c)
				st.LostSlots++
				return
			}
		} else {
			st.LostSlots++
			return
		}
		res.Messages.RepairUnicasts++
		st.RepairedSlots++
		commit(best, slot)
	}

	for _, slot := range slots {
		sensor := assign[slot]
		switch {
		case deaf[sensor]:
			if !countedDeaf[sensor] {
				countedDeaf[sensor] = true
				st.SchedulesMissed++
			}
			if !detected[sensor] {
				// The sink spends this slot discovering the silence.
				detected[sensor] = true
				st.LostSlots++
				continue
			}
			repair(slot, sensor)
		case detected[sensor]:
			repair(slot, sensor)
		case !fits(sensor, slot):
			// Only possible after a repair consumed this sensor's budget;
			// the sink made that repair, so it reassigns proactively.
			repair(slot, sensor)
		default:
			commit(sensor, slot)
		}
	}

	// Debit the ledger exactly like the fault-free path: per-sensor
	// accumulation in ascending slot order, one subtraction per sensor.
	for sensor, e := range spend {
		res.Residual[sensor] = math.Max(0, res.Residual[sensor]-e)
		if !math.IsInf(res.ResidualData[sensor], 1) {
			res.ResidualData[sensor] = math.Max(0, res.ResidualData[sensor]-dataSpend[sensor])
		}
	}
	return committed, nil
}
