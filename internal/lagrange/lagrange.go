// Package lagrange computes tight upper bounds on the data collection
// maximization problem by Lagrangian relaxation of the slot-exclusivity
// constraints (Σ_i x_{i,j} ≤ 1). For multipliers λ_j ≥ 0 the dual
//
//	L(λ) = Σ_j λ_j + Σ_i KNAPSACK_i( profit_{i,j} − λ_j ; budget_i )
//
// separates into one independent knapsack per sensor, so every λ yields a
// valid upper bound ≥ OPT. Subgradient descent on λ tightens the bound far
// below the naive min(slot-bound, energy-bound) relaxation of
// core.UpperBound, enabling honest "fraction of optimum" reporting at full
// experiment scale where exact search is hopeless.
package lagrange

import (
	"errors"
	"math"

	"mobisink/internal/core"
	"mobisink/internal/knapsack"
)

// Options tunes the subgradient loop.
type Options struct {
	// Iterations of subgradient descent; 0 means 60.
	Iterations int
	// InitialStep scales the first step size; 0 means 2.0 (relative to the
	// mean positive profit).
	InitialStep float64
	// Solver is the per-sensor knapsack oracle; it must be EXACT or an
	// upper bound is not guaranteed. Nil selects the quantized DP when
	// possible and branch-and-bound otherwise.
	Solver knapsack.Solver
}

// Result carries the best bound found and the multiplier trajectory info.
type Result struct {
	// Bound is the best (lowest) valid upper bound on OPT, in bits.
	Bound float64
	// Initial is the bound at λ = 0 (the pure energy relaxation).
	Initial float64
	// Iterations actually performed.
	Iterations int
}

// UpperBound runs subgradient descent and returns the best dual bound.
func UpperBound(inst *core.Instance, opts Options) (*Result, error) {
	if inst == nil {
		return nil, errors.New("lagrange: nil instance")
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 60
	}
	solve := opts.Solver
	if solve == nil {
		solve = defaultSolver(inst)
	}

	// Flatten per-sensor entries once.
	type entry struct {
		slot   int
		profit float64
		weight float64
	}
	sensors := make([][]entry, len(inst.Sensors))
	meanProfit := 0.0
	nProfit := 0
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		for j := s.Start; s.Start >= 0 && j <= s.End; j++ {
			r, p := s.RateAt(j), s.PowerAt(j)
			if r <= 0 || p <= 0 {
				continue
			}
			sensors[i] = append(sensors[i], entry{j, r * inst.Tau, p * inst.Tau})
			meanProfit += r * inst.Tau
			nProfit++
		}
	}
	if nProfit == 0 {
		return &Result{}, nil
	}
	meanProfit /= float64(nProfit)
	step := opts.InitialStep
	if step <= 0 {
		step = 2.0
	}
	step *= meanProfit

	lambda := make([]float64, inst.T)
	usage := make([]int, inst.T)
	items := make([]knapsack.Item, 0, 64)
	idx := make([]int, 0, 64)

	best := math.Inf(1)
	initial := 0.0
	for it := 0; it < iters; it++ {
		// Evaluate L(λ): Σλ + per-sensor knapsacks on reduced profits.
		dual := 0.0
		for _, l := range lambda {
			dual += l
		}
		for j := range usage {
			usage[j] = 0
		}
		for i := range sensors {
			items = items[:0]
			idx = idx[:0]
			for _, e := range sensors[i] {
				rp := e.profit - lambda[e.slot]
				if rp <= 0 {
					continue
				}
				items = append(items, knapsack.Item{Profit: rp, Weight: e.weight})
				idx = append(idx, e.slot)
			}
			sol := solve(items, inst.Sensors[i].Budget)
			dual += sol.Profit
			for _, k := range sol.Picked {
				usage[idx[k]]++
			}
		}
		if it == 0 {
			initial = dual
		}
		if dual < best {
			best = dual
		}
		// Subgradient g_j = (Σ_i x_ij) − 1; λ ← max(0, λ + step·g).
		stepNow := step / float64(1+it)
		for j := range lambda {
			g := float64(usage[j] - 1)
			lambda[j] = math.Max(0, lambda[j]+stepNow*g)
		}
	}
	return &Result{Bound: best, Initial: initial, Iterations: iters}, nil
}

// defaultSolver mirrors core's automatic choice but insists on exactness.
func defaultSolver(inst *core.Instance) knapsack.Solver {
	if q, ok := quantum(inst); ok {
		return func(items []knapsack.Item, c float64) knapsack.Solution {
			return knapsack.DP(items, c, q)
		}
	}
	return knapsack.BranchAndBound
}

// quantum detects a weight quantum exactly as core does; duplicated here to
// avoid exporting a core internal. Weights are P·τ from a discrete table.
func quantum(inst *core.Instance) (float64, bool) {
	const unit = 1e-6
	g := int64(0)
	maxW := int64(0)
	for i := range inst.Sensors {
		for _, p := range inst.Sensors[i].Powers {
			if p <= 0 {
				continue
			}
			w := int64(math.Round(p * inst.Tau / unit))
			if w == 0 {
				return 0, false
			}
			g = gcd(g, w)
			if w > maxW {
				maxW = w
			}
		}
	}
	if g == 0 || maxW/g > 4096 {
		return 0, false
	}
	return float64(g) * unit, true
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Caveat on exactness: the quantized DP rounds weights *up*, so the per-
// sensor knapsack value it returns can only be ≤ the true knapsack value
// when the quantum does not divide the weights exactly — which would break
// the upper-bound property. quantum() therefore only accepts exact-divisor
// quanta (micro-Joule resolution of a discrete power table), matching the
// guarantee required here.
