package lagrange

import (
	"math/rand"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/gap"
	"mobisink/internal/geom"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func tinyInstance(t *testing.T, n int, seed int64, budget float64) *core.Instance {
	t.Helper()
	d, err := network.Generate(network.Params{N: n, PathLength: 300, MaxOffset: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.SetUniformBudgets(budget)
	inst, err := core.BuildInstance(d, radio.Paper2013(), 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func optimum(t *testing.T, inst *core.Instance) (float64, bool) {
	t.Helper()
	g := &gap.Instance{NumItems: inst.T}
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		bin := gap.Bin{Capacity: s.Budget}
		for j := s.Start; s.Start >= 0 && j <= s.End; j++ {
			if s.RateAt(j) > 0 && s.PowerAt(j) > 0 {
				bin.Entries = append(bin.Entries, gap.Entry{
					Item: j, Profit: s.RateAt(j) * inst.Tau, Weight: s.PowerAt(j) * inst.Tau,
				})
			}
		}
		g.Bins = append(g.Bins, bin)
	}
	opt, err := gap.Exhaustive(g, 1<<26)
	if err != nil {
		return 0, false
	}
	return opt.Profit, true
}

func TestUpperBoundNil(t *testing.T) {
	if _, err := UpperBound(nil, Options{}); err == nil {
		t.Error("expected nil error")
	}
}

func TestBoundDominatesOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		inst := tinyInstance(t, 3, seed, 0.7)
		res, err := UpperBound(inst, Options{Iterations: 40})
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := optimum(t, inst)
		if !ok {
			continue
		}
		if res.Bound < opt-1e-6 {
			t.Fatalf("seed %d: lagrangian bound %v below OPT %v", seed, res.Bound, opt)
		}
		if res.Bound > res.Initial+1e-6 {
			t.Fatalf("seed %d: best bound %v above initial %v", seed, res.Bound, res.Initial)
		}
	}
}

// On competitive instances the subgradient loop must tighten the bound
// noticeably below both the λ=0 dual and core.UpperBound.
func TestBoundTightensAtScale(t *testing.T) {
	dep, err := network.Generate(network.PaperParams(150, 7))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sun := energy.PaperSolar(energy.Sunny)
	if err := dep.AssignSteadyStateBudgets(sun, 3*2000, 0.5, rng); err != nil {
		t.Fatal(err)
	}
	inst, err := core.BuildInstance(dep, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := UpperBound(inst, Options{Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound >= res.Initial {
		t.Errorf("no tightening: best %v vs initial %v", res.Bound, res.Initial)
	}
	ap, err := core.OfflineAppro(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound < ap.Data-1e-6 {
		t.Fatalf("bound %v below a feasible solution %v", res.Bound, ap.Data)
	}
	// The dual should certify the approximation much tighter than the
	// naive bound does.
	naiveFrac := ap.Data / inst.UpperBound()
	dualFrac := ap.Data / res.Bound
	if dualFrac < naiveFrac-1e-9 {
		t.Errorf("dual bound looser than naive: %v vs %v", dualFrac, naiveFrac)
	}
	if dualFrac < 0.5 {
		t.Errorf("certified fraction %v suspiciously low", dualFrac)
	}
}

func TestEmptyInstanceBound(t *testing.T) {
	// A sensor with zero budget: entries exist but knapsacks return
	// nothing; the bound must still be finite and non-negative.
	dep := &network.Deployment{PathLength: 1000, MaxOffset: 0, Sensors: []network.Sensor{
		{ID: 0, Pos: geom.Point{X: 500, Y: 0}, Budget: 0},
	}}
	inst, err := core.BuildInstance(dep, radio.Paper2013(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Zero budgets: entries exist but knapsacks return nothing; bound must
	// still be finite and non-negative.
	res, err := UpperBound(inst, Options{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound < 0 {
		t.Errorf("negative bound %v", res.Bound)
	}
}
