package exact

import (
	"math"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/gap"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func tinyInstance(t *testing.T, n int, seed int64, budget float64, model radio.Model, speed float64) *core.Instance {
	t.Helper()
	d, err := network.Generate(network.Params{N: n, PathLength: 300, MaxOffset: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetUniformBudgets(budget); err != nil {
		t.Fatal(err)
	}
	inst, err := core.BuildInstance(d, model, speed, 1)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// exhaustiveOptimum mirrors the GAP reduction for ground truth.
func exhaustiveOptimum(t *testing.T, inst *core.Instance) (float64, bool) {
	t.Helper()
	g := &gap.Instance{NumItems: inst.T}
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		bin := gap.Bin{Capacity: s.Budget}
		for j := s.Start; s.Start >= 0 && j <= s.End; j++ {
			if s.RateAt(j) > 0 && s.PowerAt(j) > 0 {
				bin.Entries = append(bin.Entries, gap.Entry{
					Item: j, Profit: s.RateAt(j) * inst.Tau, Weight: s.PowerAt(j) * inst.Tau,
				})
			}
		}
		g.Bins = append(g.Bins, bin)
	}
	opt, err := gap.Exhaustive(g, 1<<26)
	if err != nil {
		return 0, false
	}
	return opt.Profit, true
}

func TestSolveNil(t *testing.T) {
	if _, err := Solve(nil, Options{}); err == nil {
		t.Error("expected nil-instance error")
	}
}

func TestSolveMatchesExhaustive(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		inst := tinyInstance(t, 3, seed, 0.7, radio.Paper2013(), 30)
		res, err := Solve(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatalf("seed %d: tiny instance must solve to optimality", seed)
		}
		if _, err := inst.Validate(res.Alloc); err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
		want, ok := exhaustiveOptimum(t, inst)
		if !ok {
			continue
		}
		if math.Abs(res.Alloc.Data-want) > 1e-6 {
			t.Fatalf("seed %d: exact %v != exhaustive %v", seed, res.Alloc.Data, want)
		}
	}
}

// On the fixed-power special case the matching optimum is known; the B&B
// must reproduce it on mid-size instances far beyond gap.Exhaustive.
func TestSolveMatchesMatchingOptimum(t *testing.T) {
	// Fixed-power instances are highly symmetric (equal profits and costs
	// abound), which is exactly where fractional bounds prune worst — and
	// exactly why the paper's §VI polynomial algorithm matters. Keep these
	// instances small; the matching solver is the production tool here.
	fp, _ := radio.NewFixedPower(radio.Paper2013(), 0.3)
	for seed := int64(0); seed < 4; seed++ {
		inst := tinyInstance(t, 5, seed, 0.65, fp, 20) // T = 15 slots
		mm, err := core.OfflineMaxMatch(inst)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(inst, Options{Incumbent: mm})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Skipf("seed %d: node budget hit (%d nodes)", seed, res.Nodes)
		}
		if math.Abs(res.Alloc.Data-mm.Data) > 1e-6 {
			t.Fatalf("seed %d: exact %v != matching optimum %v", seed, res.Alloc.Data, mm.Data)
		}
	}
}

func TestSolveDominatesAppro(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		inst := tinyInstance(t, 4, seed, 0.6, radio.Paper2013(), 30)
		ap, err := core.OfflineAppro(inst, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(inst, Options{Incumbent: ap})
		if err != nil {
			t.Fatal(err)
		}
		if res.Alloc.Data < ap.Data-1e-9 {
			t.Fatalf("seed %d: exact %v below incumbent %v", seed, res.Alloc.Data, ap.Data)
		}
		if res.Optimal && ap.Data < res.Alloc.Data/2-1e-9 {
			t.Fatalf("seed %d: appro %v below OPT/2 %v", seed, ap.Data, res.Alloc.Data/2)
		}
		if ub := inst.UpperBound(); res.Alloc.Data > ub+1e-6 {
			t.Fatalf("seed %d: exact %v above upper bound %v", seed, res.Alloc.Data, ub)
		}
	}
}

func TestSolveRejectsBadIncumbent(t *testing.T) {
	inst := tinyInstance(t, 3, 1, 0.5, radio.Paper2013(), 30)
	bad := inst.NewAllocation()
	bad.SlotOwner[0] = 99
	if _, err := Solve(inst, Options{Incumbent: bad}); err == nil {
		t.Error("expected invalid-incumbent error")
	}
}

func TestSolveNodeBudget(t *testing.T) {
	inst := tinyInstance(t, 10, 3, 2.0, radio.Paper2013(), 5) // T = 60, dense
	res, err := Solve(inst, Options{MaxNodes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Skip("instance solved within 200 nodes; cannot exercise truncation")
	}
	if res.Nodes < 200 {
		t.Errorf("nodes = %d, expected to hit the budget", res.Nodes)
	}
	// Best-found must still be feasible.
	if _, err := inst.Validate(res.Alloc); err != nil {
		t.Fatal(err)
	}
}
