// Package exact solves the data collection maximization problem to
// optimality by branch-and-bound over slot assignments.
//
// The paper dismisses exact ILP solving as too slow for online use
// (§I.B); this package exists to quantify that claim and to provide true
// optima for "fraction of optimum" reporting on small and medium
// instances, where gap.Exhaustive's state space is already astronomically
// large. The search branches on slots in time order — assigning each to
// one of its eligible sensors or to nobody — and prunes with an
// energy-aware fractional relaxation bound, dominance rules, and a node
// budget.
package exact

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mobisink/internal/core"
)

// ctxCheckNodes is how many search nodes are expanded between context
// polls.
const ctxCheckNodes = 4096

// Options bounds the search.
type Options struct {
	// MaxNodes caps the number of search nodes expanded; 0 means 5e6.
	MaxNodes int64
	// Incumbent is an optional known-feasible allocation used as the
	// starting lower bound (e.g. OfflineAppro's output); the solver only
	// explores branches that can beat it.
	Incumbent *core.Allocation
}

// Result is the outcome of a solve.
type Result struct {
	Alloc *core.Allocation
	// Optimal reports whether the search completed within the node budget
	// (true ⇒ Alloc is a true optimum; false ⇒ it is only the best found).
	Optimal bool
	// Nodes is the number of search nodes expanded.
	Nodes int64
}

type slotCand struct {
	sensor int
	profit float64 // r·τ
	cost   float64 // P·τ
}

type solver struct {
	inst     *core.Instance
	ctx      context.Context
	cands    [][]slotCand // per slot, profit-descending
	suffix   []float64    // suffix[j] = Σ_{k≥j} best profit of slot k (energy-free bound)
	byDens   [][]densItem // per sensor: its window slots in density order
	budget   []float64
	owner    []int
	nodes    int64
	maxNodes int64
	best     float64
	bestSet  []int
}

type densItem struct {
	slot   int
	profit float64
	weight float64
}

// Solve runs the branch and bound. It requires a non-nil instance.
func Solve(inst *core.Instance, opts Options) (*Result, error) {
	return SolveCtx(context.Background(), inst, opts)
}

// SolveCtx is Solve with cancellation: the search polls the context every
// few thousand nodes and returns ctx.Err() on expiry (partial incumbents
// are discarded — a canceled solve has no result).
func SolveCtx(ctx context.Context, inst *core.Instance, opts Options) (*Result, error) {
	if inst == nil {
		return nil, errors.New("exact: nil instance")
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 5_000_000
	}
	s := &solver{
		inst:     inst,
		ctx:      ctx,
		maxNodes: maxNodes,
		best:     -1,
	}
	s.prepare()
	if opts.Incumbent != nil {
		v, err := inst.Validate(opts.Incumbent)
		if err != nil {
			return nil, fmt.Errorf("exact: invalid incumbent: %w", err)
		}
		// Strictly below v is pruned; the incumbent itself is kept.
		s.best = v
		s.bestSet = append([]int(nil), opts.Incumbent.SlotOwner...)
	}
	s.owner = make([]int, inst.T)
	for j := range s.owner {
		s.owner[j] = -1
	}
	s.budget = make([]float64, len(inst.Sensors))
	for i := range inst.Sensors {
		s.budget[i] = inst.Sensors[i].Budget
	}
	complete := s.dfs(0, 0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	alloc := inst.NewAllocation()
	if s.bestSet != nil {
		copy(alloc.SlotOwner, s.bestSet)
	}
	inst.RecomputeData(alloc)
	return &Result{Alloc: alloc, Optimal: complete, Nodes: s.nodes}, nil
}

func (s *solver) prepare() {
	inst := s.inst
	s.cands = make([][]slotCand, inst.T)
	for i := range inst.Sensors {
		sen := &inst.Sensors[i]
		for j := sen.Start; sen.Start >= 0 && j <= sen.End; j++ {
			r, p := sen.RateAt(j), sen.PowerAt(j)
			if r <= 0 || p <= 0 {
				continue
			}
			s.cands[j] = append(s.cands[j], slotCand{
				sensor: i, profit: r * inst.Tau, cost: p * inst.Tau,
			})
		}
	}
	for j := range s.cands {
		sort.Slice(s.cands[j], func(a, b int) bool {
			ca, cb := s.cands[j][a], s.cands[j][b]
			if ca.profit != cb.profit {
				return ca.profit > cb.profit
			}
			return ca.sensor < cb.sensor
		})
	}
	s.suffix = make([]float64, inst.T+1)
	for j := inst.T - 1; j >= 0; j-- {
		best := 0.0
		if len(s.cands[j]) > 0 {
			best = s.cands[j][0].profit
		}
		s.suffix[j] = s.suffix[j+1] + best
	}
	s.byDens = make([][]densItem, len(inst.Sensors))
	for i := range inst.Sensors {
		sen := &inst.Sensors[i]
		for j := sen.Start; sen.Start >= 0 && j <= sen.End; j++ {
			r, p := sen.RateAt(j), sen.PowerAt(j)
			if r <= 0 || p <= 0 {
				continue
			}
			s.byDens[i] = append(s.byDens[i], densItem{j, r * inst.Tau, p * inst.Tau})
		}
		items := s.byDens[i]
		sort.Slice(items, func(a, b int) bool {
			return items[a].profit*items[b].weight > items[b].profit*items[a].weight
		})
	}
}

// awareBound is the energy-aware relaxation for slots ≥ j: each sensor can
// add at most its fractional knapsack over its remaining window with its
// remaining budget (per-sensor slots pre-sorted by density in prepare).
func (s *solver) awareBound(j int) float64 {
	aware := 0.0
	for i := range s.inst.Sensors {
		sen := &s.inst.Sensors[i]
		if sen.Start < 0 || sen.End < j {
			continue
		}
		left := s.budget[i]
		for _, it := range s.byDens[i] {
			if it.slot < j {
				continue
			}
			if it.weight <= left {
				aware += it.profit
				left -= it.weight
			} else {
				aware += it.profit * left / it.weight
				break
			}
		}
	}
	return aware
}

// dfs explores slot j with accumulated profit; returns false when the node
// budget is exhausted or the context is canceled (result may be
// suboptimal).
func (s *solver) dfs(j int, profit float64) bool {
	s.nodes++
	if s.nodes > s.maxNodes {
		return false
	}
	if s.nodes%ctxCheckNodes == 0 && s.ctx.Err() != nil {
		return false
	}
	if profit > s.best {
		s.best = profit
		s.bestSet = append(s.bestSet[:0], s.owner...)
	}
	if j == s.inst.T {
		return true
	}
	// Cheap energy-free bound first; the energy-aware bound only when the
	// cheap one fails to prune (both are valid relaxations).
	if profit+s.suffix[j] <= s.best+1e-9 {
		return true // cannot strictly improve
	}
	if profit+s.awareBound(j) <= s.best+1e-9 {
		return true
	}
	complete := true
	// Try assigning slot j to each affordable sensor, best profit first.
	for _, c := range s.cands[j] {
		if c.cost > s.budget[c.sensor]+1e-12 {
			continue
		}
		s.owner[j] = c.sensor
		s.budget[c.sensor] -= c.cost
		if !s.dfs(j+1, profit+c.profit) {
			complete = false
		}
		s.budget[c.sensor] += c.cost
		s.owner[j] = -1
		if !complete {
			return false
		}
	}
	// Leave slot j empty.
	if !s.dfs(j+1, profit) {
		complete = false
	}
	return complete
}
