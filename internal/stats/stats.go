// Package stats provides the summary statistics used to aggregate
// experiment trials (the paper averages 50 topologies per data point).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1)
	Min    float64
	Max    float64
	Median float64
	CI95   float64 // half-width of the normal-approximation 95% CI
}

// Summarize computes a Summary; it errors on empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(s.N))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// RelGain returns (a−b)/b, the relative advantage of a over b.
func RelGain(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b
}
