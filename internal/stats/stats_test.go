package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("expected error for empty sample")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 || s.Median != 42 {
		t.Errorf("summary = %+v", s)
	}
	if s.StdDev != 0 || s.CI95 != 0 {
		t.Errorf("single sample must have zero spread: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample stddev of this classic set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestMedianOdd(t *testing.T) {
	s, _ := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_, _ = Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestRelGain(t *testing.T) {
	if RelGain(12, 10) != 0.2 {
		t.Error("gain wrong")
	}
	if RelGain(5, 0) != 0 {
		t.Error("zero base must give 0")
	}
}

// Property: Min ≤ Median ≤ Max and Min ≤ Mean ≤ Max.
func TestSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
