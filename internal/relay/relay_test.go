package relay

import (
	"math"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/geom"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
)

// wideDeployment places sensors up to 500 m from the road — far beyond the
// 200 m radio range, so relaying matters.
func wideDeployment(t *testing.T, n int, seed int64) *network.Deployment {
	t.Helper()
	dep, err := network.Generate(network.Params{N: n, PathLength: 3000, MaxOffset: 500, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	_ = dep.SetUniformBudgets(3)
	return dep
}

func TestAssignValidation(t *testing.T) {
	dep := wideDeployment(t, 10, 1)
	if _, err := Assign(nil, radio.Paper2013(), DefaultParams()); err == nil {
		t.Error("expected nil-deployment error")
	}
	if _, err := Assign(dep, nil, DefaultParams()); err == nil {
		t.Error("expected nil-model error")
	}
	if _, err := Assign(dep, radio.Paper2013(), Params{Range: 0}); err == nil {
		t.Error("expected params error")
	}
	if err := (Params{Range: 10, TxJPerBit: -1}).Validate(); err == nil {
		t.Error("expected negative-energy error")
	}
}

func TestAssignRoles(t *testing.T) {
	dep := wideDeployment(t, 120, 2)
	asg, err := Assign(dep, radio.Paper2013(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	path := dep.Path()
	inRange, leaves, lost := 0, 0, 0
	for i, role := range asg.Subsink {
		_, d := geom.Nearest(path, dep.Sensors[i].Pos)
		switch {
		case role == SelfSubsink:
			inRange++
			if d > 200 {
				t.Fatalf("sensor %d marked in-range at %v m", i, d)
			}
		case role == Unreachable:
			lost++
			if d <= 200 {
				t.Fatalf("in-range sensor %d marked unreachable", i)
			}
		case role >= 0:
			leaves++
			if d <= 200 {
				t.Fatalf("in-range sensor %d assigned a subsink", i)
			}
			if asg.Subsink[role] != SelfSubsink {
				t.Fatalf("subsink %d of %d is not in range", role, i)
			}
			if dist := dep.Sensors[i].Pos.Dist(dep.Sensors[role].Pos); dist > DefaultParams().Range {
				t.Fatalf("relay hop %v m exceeds relay range", dist)
			}
		}
	}
	if asg.Covered != inRange+leaves || asg.Unreachable != lost {
		t.Fatalf("counters wrong: %+v vs %d/%d/%d", asg, inRange, leaves, lost)
	}
	if leaves == 0 {
		t.Fatal("topology produced no relay leaves; test is vacuous")
	}
}

func TestApplyMovesDataAndEnergy(t *testing.T) {
	dep := wideDeployment(t, 120, 3)
	p := DefaultParams()
	asg, err := Assign(dep, radio.Paper2013(), p)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, len(dep.Sensors))
	for i := range caps {
		caps[i] = 1e6 // 1 Mb queued everywhere
	}
	out, newCaps, err := Apply(dep, asg, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	totalBefore := 0.0
	totalAfter := 0.0
	for i := range caps {
		totalBefore += caps[i]
		totalAfter += newCaps[i]
		switch {
		case asg.Subsink[i] >= 0: // leaf
			if newCaps[i] != 0 {
				t.Fatalf("leaf %d kept caps", i)
			}
			if out.Sensors[i].Budget > dep.Sensors[i].Budget {
				t.Fatalf("leaf %d gained energy", i)
			}
		case asg.Subsink[i] == SelfSubsink:
			if newCaps[i] < caps[i] {
				t.Fatalf("subsink %d lost its own data", i)
			}
		case asg.Subsink[i] == Unreachable:
			if newCaps[i] != 0 {
				t.Fatalf("unreachable %d kept caps", i)
			}
		}
	}
	// Data is conserved up to unreachable and energy-truncated losses.
	if totalAfter > totalBefore+1e-6 {
		t.Fatalf("relaying created data: %v > %v", totalAfter, totalBefore)
	}
	// Size mismatch errors.
	if _, _, err := Apply(dep, asg, caps[:3], p); err == nil {
		t.Error("expected size error")
	}
}

// End-to-end: relaying recovers data that the paper's one-hop design loses.
func TestRelayingBeatsOneHop(t *testing.T) {
	dep := wideDeployment(t, 150, 4)
	p := DefaultParams()
	caps := make([]float64, len(dep.Sensors))
	for i := range caps {
		caps[i] = 400e3
	}
	// One-hop (paper): far sensors' data is unreachable.
	instOne, err := core.BuildInstance(dep, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := instOne.SetDataCaps(caps); err != nil {
		t.Fatal(err)
	}
	oneHop, err := online.Run(instOne, &online.Sequential{})
	if err != nil {
		t.Fatal(err)
	}
	// Relay-enabled.
	asg, err := Assign(dep, radio.Paper2013(), p)
	if err != nil {
		t.Fatal(err)
	}
	relayDep, relayCaps, err := Apply(dep, asg, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	instRelay, err := core.BuildInstance(relayDep, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := instRelay.SetDataCaps(relayCaps); err != nil {
		t.Fatal(err)
	}
	relayed, err := online.Run(instRelay, &online.Sequential{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := instRelay.Validate(relayed.Alloc); err != nil {
		t.Fatal(err)
	}
	if relayed.Data <= oneHop.Data {
		t.Errorf("relaying did not help: %v vs one-hop %v", relayed.Data, oneHop.Data)
	}
	if math.IsNaN(relayed.Data) {
		t.Fatal("NaN throughput")
	}
	t.Logf("one-hop %.2f Mb, relayed %.2f Mb, covered %d/%d sensors",
		oneHop.Data/1e6, relayed.Data/1e6, asg.Covered, len(dep.Sensors))
}
