// Package relay implements the subsink architecture of the paper's related
// work (Gao et al., its ref. [8]): sensors too far from the road to ever
// hear the mobile sink forward their data to a nearby in-range sensor (a
// "subsink"), which uploads on their behalf. The paper's own system is
// strictly one-hop — far sensors are simply lost; this package quantifies
// what that design choice costs and what relaying would cost in energy.
//
// The relay transfer happens between tours (the leaf pushes its backlog to
// its subsink before the vehicle arrives), so its effect on the tour
// problem is a transformation of the deployment: the leaf's data joins the
// subsink's queue, the leaf pays transmit energy per bit, and the subsink
// pays receive energy per bit out of the budget it would otherwise spend
// uploading.
package relay

import (
	"errors"
	"fmt"
	"math"

	"mobisink/internal/geom"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

// Params sets the leaf→subsink link energetics.
type Params struct {
	// Range is the maximum leaf-to-subsink distance, m.
	Range float64
	// TxJPerBit and RxJPerBit are the energy costs of forwarding one bit
	// (classic first-order radio model magnitudes: tens of nJ/bit plus
	// amplifier; defaults in DefaultParams are deliberately conservative).
	TxJPerBit float64
	RxJPerBit float64
}

// DefaultParams returns relay energetics in line with low-power 802.15.4
// radios: 250 kbps at ~170 mW ⇒ ~0.7 µJ/bit each way.
func DefaultParams() Params {
	return Params{Range: 200, TxJPerBit: 0.7e-6, RxJPerBit: 0.7e-6}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Range <= 0 {
		return errors.New("relay: range must be positive")
	}
	if p.TxJPerBit < 0 || p.RxJPerBit < 0 {
		return errors.New("relay: negative per-bit energy")
	}
	return nil
}

// Assignment maps each sensor to its role in the relay forest.
type Assignment struct {
	// Subsink[i] is the in-range sensor that uploads for sensor i; -1 for
	// sensors that are themselves in range (they are their own subsink)
	// and -2 for unreachable sensors (no subsink within relay range).
	Subsink []int
	// Covered counts sensors whose data can reach the mobile sink
	// (in-range + relayed).
	Covered int
	// Unreachable counts sensors lost even with relaying.
	Unreachable int
}

const (
	// SelfSubsink marks an in-range sensor.
	SelfSubsink = -1
	// Unreachable marks a sensor with no subsink in relay range.
	Unreachable = -2
)

// Assign builds the relay forest: every sensor outside the mobile sink's
// one-hop range attaches to the *nearest* in-range sensor within relay
// range (the hop-count-minimizing choice of Gao et al. degenerates to
// nearest-subsink for one relay hop).
func Assign(dep *network.Deployment, model radio.Model, p Params) (*Assignment, error) {
	if dep == nil {
		return nil, errors.New("relay: nil deployment")
	}
	if err := dep.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, errors.New("relay: nil radio model")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	path := dep.Path()
	r := model.Range()
	n := len(dep.Sensors)
	asg := &Assignment{Subsink: make([]int, n)}
	inRange := make([]bool, n)
	for i, s := range dep.Sensors {
		_, d := geom.Nearest(path, s.Pos)
		inRange[i] = d <= r
	}
	for i, s := range dep.Sensors {
		if inRange[i] {
			asg.Subsink[i] = SelfSubsink
			asg.Covered++
			continue
		}
		best, bestD := Unreachable, math.Inf(1)
		for j, cand := range dep.Sensors {
			if !inRange[j] || j == i {
				continue
			}
			if d := s.Pos.Dist(cand.Pos); d <= p.Range && d < bestD {
				best, bestD = j, d
			}
		}
		asg.Subsink[i] = best
		if best >= 0 {
			asg.Covered++
		} else {
			asg.Unreachable++
		}
	}
	return asg, nil
}

// Apply produces the transformed deployment and data caps seen by the tour
// problem: leaves' queued data (caps[i]) moves to their subsinks, leaf
// transmit energy is checked against the leaf budget (forwarding is
// truncated if the leaf cannot afford it), and subsink receive energy is
// debited from the subsink's budget. The returned deployment contains the
// same sensors (leaves keep zero caps — they have nothing left to upload
// directly and are out of range anyway).
func Apply(dep *network.Deployment, asg *Assignment, caps []float64, p Params) (*network.Deployment, []float64, error) {
	if dep == nil || asg == nil {
		return nil, nil, errors.New("relay: nil deployment or assignment")
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := len(dep.Sensors)
	if len(asg.Subsink) != n || len(caps) != n {
		return nil, nil, fmt.Errorf("relay: size mismatch (%d sensors, %d roles, %d caps)",
			n, len(asg.Subsink), len(caps))
	}
	out := *dep
	out.Sensors = append([]network.Sensor(nil), dep.Sensors...)
	newCaps := append([]float64(nil), caps...)
	for i, sub := range asg.Subsink {
		switch {
		case sub == SelfSubsink:
			continue
		case sub == Unreachable:
			newCaps[i] = 0 // data cannot reach the sink at all
		case sub >= 0:
			bits := caps[i]
			// Leaf affordability: it can forward at most budget/TxJPerBit.
			if p.TxJPerBit > 0 {
				if max := dep.Sensors[i].Budget / p.TxJPerBit; bits > max {
					bits = max
				}
			}
			// Subsink affordability: receiving must leave energy ≥ 0; cap
			// forwarded bits by the subsink budget too.
			if p.RxJPerBit > 0 {
				if max := out.Sensors[sub].Budget / p.RxJPerBit; bits > max {
					bits = max
				}
			}
			newCaps[sub] += bits
			newCaps[i] = 0
			out.Sensors[i].Budget -= bits * p.TxJPerBit
			out.Sensors[sub].Budget -= bits * p.RxJPerBit
			if out.Sensors[i].Budget < 0 {
				out.Sensors[i].Budget = 0
			}
			if out.Sensors[sub].Budget < 0 {
				out.Sensors[sub].Budget = 0
			}
		default:
			return nil, nil, fmt.Errorf("relay: invalid subsink %d for sensor %d", sub, i)
		}
	}
	return &out, newCaps, nil
}
