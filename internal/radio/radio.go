// Package radio models the sensor-to-sink wireless link.
//
// The paper adopts a multi-rate communication mechanism (CC2420-style
// discrete power levels): the achievable rate and the transmission power
// both depend on the sensor-to-sink distance. Package radio provides
//
//   - RateTable: the paper's piecewise-constant 4-pair setting
//     (250 kbps/170 mW @ 0-20 m, 19.2 kbps/220 mW @ 20-50 m,
//     9.6 kbps/300 mW @ 50-120 m, 4.8 kbps/330 mW @ 120-200 m),
//   - FixedPower: the special-case model of paper §VI, where every sensor
//     transmits with one identical power P' while the rate still follows a
//     distance-dependent table, and
//   - PathLoss: a generic SNR model r ∝ P/d^α for sensitivity studies.
//
// All models implement Model.
package radio

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Link is one operating point of the radio at a given distance.
type Link struct {
	Rate  float64 // achievable data rate, bit/s
	Power float64 // transmission power drawn while sending, W
}

// Model determines the link available between a sensor and the mobile sink
// separated by distance d (meters).
type Model interface {
	// LinkAt returns the link used at distance d. ok is false beyond the
	// communication range.
	LinkAt(d float64) (l Link, ok bool)
	// Range returns the maximum communication distance R in meters.
	Range() float64
}

// Tier is one row of a piecewise-constant rate table: the link used for
// distances in (prev.MaxDist, MaxDist].
type Tier struct {
	MaxDist float64 // upper distance bound of this tier, m
	Rate    float64 // bit/s
	Power   float64 // W
}

// RateTable is a piecewise-constant multi-rate model defined by tiers with
// increasing distance bounds. Closer tiers offer higher rates at lower power.
type RateTable struct {
	tiers []Tier
}

// NewRateTable validates and builds a table. Tiers must be sorted by
// strictly increasing MaxDist with positive rates and powers.
func NewRateTable(tiers []Tier) (*RateTable, error) {
	if len(tiers) == 0 {
		return nil, errors.New("radio: empty rate table")
	}
	prev := 0.0
	for i, t := range tiers {
		if t.MaxDist <= prev {
			return nil, fmt.Errorf("radio: tier %d distance bound %v not increasing", i, t.MaxDist)
		}
		if t.Rate <= 0 || t.Power <= 0 {
			return nil, fmt.Errorf("radio: tier %d has non-positive rate or power", i)
		}
		prev = t.MaxDist
	}
	cp := make([]Tier, len(tiers))
	copy(cp, tiers)
	return &RateTable{tiers: cp}, nil
}

// Paper2013 returns the exact 4-pairwise communication parameter setting of
// the paper's experimental environment (§VII.A).
func Paper2013() *RateTable {
	rt, err := NewRateTable([]Tier{
		{MaxDist: 20, Rate: 250e3, Power: 0.170},
		{MaxDist: 50, Rate: 19.2e3, Power: 0.220},
		{MaxDist: 120, Rate: 9.6e3, Power: 0.300},
		{MaxDist: 200, Rate: 4.8e3, Power: 0.330},
	})
	if err != nil {
		panic("radio: Paper2013 table invalid: " + err.Error())
	}
	return rt
}

// LinkAt implements Model.
func (rt *RateTable) LinkAt(d float64) (Link, bool) {
	if d < 0 {
		return Link{}, false
	}
	i := sort.Search(len(rt.tiers), func(i int) bool { return rt.tiers[i].MaxDist >= d })
	if i == len(rt.tiers) {
		return Link{}, false
	}
	return Link{Rate: rt.tiers[i].Rate, Power: rt.tiers[i].Power}, true
}

// Range implements Model.
func (rt *RateTable) Range() float64 { return rt.tiers[len(rt.tiers)-1].MaxDist }

// Tiers returns a copy of the table's tiers.
func (rt *RateTable) Tiers() []Tier {
	cp := make([]Tier, len(rt.tiers))
	copy(cp, rt.tiers)
	return cp
}

// FixedPower wraps a rate model so that every transmission uses the single
// power P' regardless of distance, while the rate still follows the wrapped
// model. This is the special data collection maximization problem of
// paper §VI (experiments use P' = 300 mW).
type FixedPower struct {
	Rates Model   // distance→rate source
	P     float64 // the identical transmission power P', W
}

// NewFixedPower builds the special-case model.
func NewFixedPower(rates Model, p float64) (*FixedPower, error) {
	if rates == nil {
		return nil, errors.New("radio: nil rate source")
	}
	if p <= 0 {
		return nil, fmt.Errorf("radio: fixed power must be positive, got %v", p)
	}
	return &FixedPower{Rates: rates, P: p}, nil
}

// LinkAt implements Model.
func (fp *FixedPower) LinkAt(d float64) (Link, bool) {
	l, ok := fp.Rates.LinkAt(d)
	if !ok {
		return Link{}, false
	}
	return Link{Rate: l.Rate, Power: fp.P}, true
}

// Range implements Model.
func (fp *FixedPower) Range() float64 { return fp.Rates.Range() }

// PathLoss is the generic SNR-driven model r = RefRate·(d0/d)^Alpha with a
// matching power ramp: transmissions at larger d use proportionally more
// power up to MaxPower, mimicking transmit-power control that holds the
// received SNR constant (paper §II.C: r_{i,j} ∝ P_{v_i}/d^α, α ≥ 2).
type PathLoss struct {
	RefRate  float64 // rate at reference distance d0, bit/s
	RefDist  float64 // d0, m
	Alpha    float64 // path-loss exponent, ≥ 2
	MinPower float64 // power at/below d0, W
	MaxPower float64 // power at MaxRange, W
	MaxRange float64 // R, m
}

// NewPathLoss validates the model parameters.
func NewPathLoss(refRate, refDist, alpha, minPower, maxPower, maxRange float64) (*PathLoss, error) {
	switch {
	case refRate <= 0 || refDist <= 0:
		return nil, errors.New("radio: reference rate and distance must be positive")
	case alpha < 2:
		return nil, fmt.Errorf("radio: path-loss exponent must be >= 2, got %v", alpha)
	case minPower <= 0 || maxPower < minPower:
		return nil, errors.New("radio: need 0 < MinPower <= MaxPower")
	case maxRange <= refDist:
		return nil, errors.New("radio: MaxRange must exceed RefDist")
	}
	return &PathLoss{RefRate: refRate, RefDist: refDist, Alpha: alpha,
		MinPower: minPower, MaxPower: maxPower, MaxRange: maxRange}, nil
}

// LinkAt implements Model.
func (pl *PathLoss) LinkAt(d float64) (Link, bool) {
	if d < 0 || d > pl.MaxRange {
		return Link{}, false
	}
	if d <= pl.RefDist {
		return Link{Rate: pl.RefRate, Power: pl.MinPower}, true
	}
	rate := pl.RefRate * math.Pow(pl.RefDist/d, pl.Alpha)
	// Power needed to keep received power at the d0 level grows as d^α,
	// clipped to the hardware maximum.
	pw := pl.MinPower * math.Pow(d/pl.RefDist, pl.Alpha)
	if pw > pl.MaxPower {
		pw = pl.MaxPower
	}
	return Link{Rate: rate, Power: pw}, true
}

// Range implements Model.
func (pl *PathLoss) Range() float64 { return pl.MaxRange }
