package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaper2013Table(t *testing.T) {
	rt := Paper2013()
	if got := rt.Range(); got != 200 {
		t.Fatalf("Range = %v, want 200", got)
	}
	cases := []struct {
		d     float64
		rate  float64
		power float64
		ok    bool
	}{
		{0, 250e3, 0.170, true},
		{10, 250e3, 0.170, true},
		{20, 250e3, 0.170, true}, // boundary belongs to the closer tier
		{20.01, 19.2e3, 0.220, true},
		{50, 19.2e3, 0.220, true},
		{100, 9.6e3, 0.300, true},
		{120, 9.6e3, 0.300, true},
		{150, 4.8e3, 0.330, true},
		{200, 4.8e3, 0.330, true},
		{200.5, 0, 0, false},
		{-1, 0, 0, false},
	}
	for _, c := range cases {
		l, ok := rt.LinkAt(c.d)
		if ok != c.ok {
			t.Errorf("LinkAt(%v) ok = %v, want %v", c.d, ok, c.ok)
			continue
		}
		if ok && (l.Rate != c.rate || l.Power != c.power) {
			t.Errorf("LinkAt(%v) = %+v, want rate %v power %v", c.d, l, c.rate, c.power)
		}
	}
}

func TestNewRateTableValidation(t *testing.T) {
	if _, err := NewRateTable(nil); err == nil {
		t.Error("expected error for empty table")
	}
	if _, err := NewRateTable([]Tier{{MaxDist: 10, Rate: 1, Power: 1}, {MaxDist: 10, Rate: 1, Power: 1}}); err == nil {
		t.Error("expected error for non-increasing bounds")
	}
	if _, err := NewRateTable([]Tier{{MaxDist: 10, Rate: 0, Power: 1}}); err == nil {
		t.Error("expected error for zero rate")
	}
	if _, err := NewRateTable([]Tier{{MaxDist: 10, Rate: 1, Power: -1}}); err == nil {
		t.Error("expected error for negative power")
	}
}

func TestTiersCopy(t *testing.T) {
	rt := Paper2013()
	tiers := rt.Tiers()
	tiers[0].Rate = 1
	if l, _ := rt.LinkAt(5); l.Rate != 250e3 {
		t.Error("Tiers() must return a copy")
	}
}

// Property: within range, rate is non-increasing and power non-decreasing
// with distance (closer is never worse).
func TestRateTableMonotone(t *testing.T) {
	rt := Paper2013()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%2000) / 10 // [0,200)
		b := float64(bRaw%2000) / 10
		if a > b {
			a, b = b, a
		}
		la, _ := rt.LinkAt(a)
		lb, _ := rt.LinkAt(b)
		return la.Rate >= lb.Rate && la.Power <= lb.Power
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedPower(t *testing.T) {
	fp, err := NewFixedPower(Paper2013(), 0.300)
	if err != nil {
		t.Fatal(err)
	}
	if got := fp.Range(); got != 200 {
		t.Fatalf("Range = %v", got)
	}
	l, ok := fp.LinkAt(10)
	if !ok || l.Rate != 250e3 || l.Power != 0.300 {
		t.Errorf("LinkAt(10) = %+v ok=%v, want rate 250k power 0.3", l, ok)
	}
	l, ok = fp.LinkAt(150)
	if !ok || l.Rate != 4.8e3 || l.Power != 0.300 {
		t.Errorf("LinkAt(150) = %+v ok=%v", l, ok)
	}
	if _, ok := fp.LinkAt(250); ok {
		t.Error("expected out of range")
	}
}

func TestNewFixedPowerValidation(t *testing.T) {
	if _, err := NewFixedPower(nil, 0.3); err == nil {
		t.Error("expected error for nil rates")
	}
	if _, err := NewFixedPower(Paper2013(), 0); err == nil {
		t.Error("expected error for zero power")
	}
}

func TestPathLoss(t *testing.T) {
	pl, err := NewPathLoss(250e3, 20, 2, 0.170, 0.330, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Range(); got != 200 {
		t.Fatalf("Range = %v", got)
	}
	l, ok := pl.LinkAt(10)
	if !ok || l.Rate != 250e3 || l.Power != 0.170 {
		t.Errorf("LinkAt(10) = %+v (inside reference distance)", l)
	}
	l, ok = pl.LinkAt(40) // 2x ref dist, alpha 2 → rate/4
	if !ok || math.Abs(l.Rate-250e3/4) > 1e-6 {
		t.Errorf("LinkAt(40).Rate = %v, want %v", l.Rate, 250e3/4.0)
	}
	if l.Power != 0.330 { // 0.17*4 = 0.68 clipped to 0.33
		t.Errorf("LinkAt(40).Power = %v, want clipped 0.330", l.Power)
	}
	if _, ok := pl.LinkAt(201); ok {
		t.Error("expected out of range")
	}
}

func TestNewPathLossValidation(t *testing.T) {
	cases := []struct {
		name                                          string
		refRate, refDist, alpha, minP, maxP, maxRange float64
	}{
		{"zero rate", 0, 20, 2, 0.1, 0.3, 200},
		{"alpha<2", 250e3, 20, 1.5, 0.1, 0.3, 200},
		{"maxP<minP", 250e3, 20, 2, 0.3, 0.1, 200},
		{"range<=refDist", 250e3, 20, 2, 0.1, 0.3, 20},
	}
	for _, c := range cases {
		if _, err := NewPathLoss(c.refRate, c.refDist, c.alpha, c.minP, c.maxP, c.maxRange); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPathLossMonotoneRate(t *testing.T) {
	pl, _ := NewPathLoss(250e3, 20, 3, 0.170, 0.330, 200)
	prev := math.Inf(1)
	for d := 0.0; d <= 200; d += 5 {
		l, ok := pl.LinkAt(d)
		if !ok {
			t.Fatalf("unexpectedly out of range at %v", d)
		}
		if l.Rate > prev+1e-9 {
			t.Fatalf("rate increased with distance at %v", d)
		}
		prev = l.Rate
	}
}
