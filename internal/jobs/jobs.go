// Package jobs provides the asynchronous execution layer of the
// allocation service: a bounded FIFO queue feeding a fixed worker pool,
// with job lifecycle tracking (queued → running → done/failed/canceled),
// per-job deadlines, and explicit backpressure — a full queue rejects
// submission immediately instead of letting work pile up unbounded.
//
// The worker pool reuses the counting-semaphore idiom from
// internal/parallel (parallel.Sem): a single dispatcher pops jobs in FIFO
// order and acquires a slot per running job, so at most `workers`
// computations execute at once while the queue preserves ordering.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mobisink/internal/parallel"
)

// State is a job lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Func is the work a job performs. The context carries the per-job
// deadline and is canceled when the job is canceled or the queue shuts
// down; long computations should honor it, but even a Func that ignores
// the context gets a timely status transition — the worker records the
// deadline/cancel outcome immediately and merely keeps its pool slot
// until the Func returns, so concurrency stays bounded.
type Func func(ctx context.Context) (any, error)

// Status is a point-in-time snapshot of a job.
type Status struct {
	ID         string    `json:"id"`
	State      State     `json:"state"`
	Result     any       `json:"result,omitempty"` // set when State == done
	Err        string    `json:"error,omitempty"`  // set when failed/canceled
	QueuedAt   time.Time `json:"queued_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
}

var (
	// ErrQueueFull is returned by Submit when the queue is at depth;
	// callers surface it as backpressure (the service maps it to 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit after Close has begun.
	ErrClosed = errors.New("jobs: queue closed")
	// ErrUnknownJob is returned for ids that do not exist or whose
	// records have been retired.
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// retainFinished bounds how many terminal job records are kept for
// status polling before the oldest are forgotten.
const retainFinished = 1024

type job struct {
	id      string
	fn      Func
	timeout time.Duration

	mu              sync.Mutex
	state           State
	result          any
	err             error
	queuedAt        time.Time
	startedAt       time.Time
	finishedAt      time.Time
	cancelRun       context.CancelFunc // set while running
	cancelRequested bool
	done            chan struct{} // closed on terminal state
}

// Queue is a bounded FIFO job queue with a fixed worker pool. Construct
// with New; all methods are safe for concurrent use.
type Queue struct {
	sem        parallel.Sem
	ch         chan *job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup // dispatcher + running workers

	mu        sync.Mutex
	jobs      map[string]*job
	doneOrder []string // FIFO of terminal job ids, for retention
	seq       uint64
	closed    bool

	m *Metrics // optional instrumentation; nil disables
}

// QueueOption configures a queue at construction time (see
// WithMetrics).
type QueueOption func(*Queue)

// New returns a queue running at most workers jobs concurrently
// (GOMAXPROCS when workers ≤ 0) and holding at most depth waiting jobs
// (minimum 1) before Submit reports ErrQueueFull.
func New(workers, depth int, opts ...QueueOption) *Queue {
	if depth < 1 {
		depth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		sem:        parallel.NewSem(workers),
		ch:         make(chan *job, depth),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}
	for _, o := range opts {
		o(q)
	}
	q.wg.Add(1)
	go q.dispatch()
	return q
}

// Workers returns the worker-pool size.
func (q *Queue) Workers() int { return q.sem.Cap() }

// Depth returns the queue capacity.
func (q *Queue) Depth() int { return cap(q.ch) }

// Option configures one submission.
type Option func(*job)

// WithTimeout bounds the job's running time; on expiry the job is marked
// failed with a deadline error. d ≤ 0 means no deadline.
func WithTimeout(d time.Duration) Option {
	return func(jb *job) { jb.timeout = d }
}

// Submit enqueues fn and returns the new job's id. It never blocks: a
// full queue returns ErrQueueFull and a closed queue returns ErrClosed.
func (q *Queue) Submit(fn Func, opts ...Option) (string, error) {
	if fn == nil {
		return "", errors.New("jobs: nil job function")
	}
	jb := &job{
		fn:       fn,
		state:    StateQueued,
		queuedAt: time.Now(),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(jb)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		if q.m != nil {
			q.m.Rejected.With("closed").Inc()
		}
		return "", ErrClosed
	}
	q.seq++
	jb.id = fmt.Sprintf("j%d", q.seq)
	select {
	case q.ch <- jb:
		q.jobs[jb.id] = jb
		if q.m != nil {
			q.m.Submitted.Inc()
		}
		q.m.transition(StateQueued)
		return jb.id, nil
	default:
		if q.m != nil {
			q.m.Rejected.With("full").Inc()
		}
		return "", ErrQueueFull
	}
}

// Get returns the job's current status.
func (q *Queue) Get(id string) (Status, bool) {
	q.mu.Lock()
	jb, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return jb.status(), true
}

// Cancel stops a job: a queued job is marked canceled and will never
// execute; a running job has its context canceled and is marked canceled
// once the worker observes it (its Func may still run to completion in
// the background); a terminal job is left untouched. The returned status
// is the state after the cancel request.
func (q *Queue) Cancel(id string) (Status, error) {
	q.mu.Lock()
	jb, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownJob
	}
	jb.mu.Lock()
	switch jb.state {
	case StateQueued:
		jb.cancelRequested = true
		jb.state = StateCanceled
		jb.err = context.Canceled
		jb.finishedAt = time.Now()
		close(jb.done)
		jb.mu.Unlock()
		q.m.transition(StateCanceled)
		q.retire(jb.id)
		return jb.status(), nil
	case StateRunning:
		jb.cancelRequested = true
		if jb.cancelRun != nil {
			jb.cancelRun()
		}
	}
	jb.mu.Unlock()
	return jb.status(), nil
}

// Wait blocks until the job reaches a terminal state or ctx expires,
// returning the status either way.
func (q *Queue) Wait(ctx context.Context, id string) (Status, error) {
	q.mu.Lock()
	jb, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownJob
	}
	select {
	case <-jb.done:
		return jb.status(), nil
	case <-ctx.Done():
		return jb.status(), ctx.Err()
	}
}

// Stats counts jobs by state among the records currently retained.
type Stats struct {
	Queued, Running, Done, Failed, Canceled int
}

// Stats returns a snapshot of per-state job counts.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	var st Stats
	for _, jb := range q.jobs {
		switch jb.snapshotState() {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
	}
	return st
}

// Close drains the queue: no new submissions are accepted, already
// queued and running jobs are given until ctx expires to finish. On
// expiry the base context is canceled (failing running jobs' contexts
// and canceling still-queued jobs) and ctx's error is returned.
func (q *Queue) Close(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
	q.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		q.baseCancel()
		return ctx.Err()
	}
}

// dispatch pops jobs in FIFO order, bounding concurrent execution with
// the worker-pool semaphore. The slot is acquired before the pop so a
// job leaves the buffer only when a worker is free — the buffer alone
// defines queue capacity. It exits once the queue is closed and drained.
func (q *Queue) dispatch() {
	defer q.wg.Done()
	for {
		q.sem.Acquire()
		jb, ok := <-q.ch
		if !ok {
			q.sem.Release()
			return
		}
		q.wg.Add(1)
		go func(jb *job) {
			defer q.wg.Done()
			defer q.sem.Release()
			q.run(jb)
		}(jb)
	}
}

// run executes one job on a worker slot.
func (q *Queue) run(jb *job) {
	jb.mu.Lock()
	if jb.state != StateQueued { // canceled while waiting
		jb.mu.Unlock()
		return
	}
	if q.baseCtx.Err() != nil { // queue shut down before this job started
		jb.state = StateCanceled
		jb.err = context.Cause(q.baseCtx)
		jb.finishedAt = time.Now()
		close(jb.done)
		jb.mu.Unlock()
		q.m.transition(StateCanceled)
		q.retire(jb.id)
		return
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if jb.timeout > 0 {
		ctx, cancel = context.WithTimeout(q.baseCtx, jb.timeout)
	} else {
		ctx, cancel = context.WithCancel(q.baseCtx)
	}
	jb.state = StateRunning
	jb.startedAt = time.Now()
	jb.cancelRun = cancel
	queuedAt, startedAt := jb.queuedAt, jb.startedAt
	jb.mu.Unlock()
	q.m.transition(StateRunning)
	q.m.observeWait(queuedAt, startedAt)
	defer cancel()

	type outcome struct {
		v   any
		err error
	}
	res := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				q.m.panicked()
				res <- outcome{err: fmt.Errorf("jobs: job panicked: %v", r)}
			}
		}()
		v, err := jb.fn(ctx)
		res <- outcome{v: v, err: err}
	}()
	select {
	case out := <-res:
		q.finish(jb, out.v, out.err)
	case <-ctx.Done():
		// Record the outcome now so status polling is timely, then hold
		// the worker slot until fn actually returns so true concurrency
		// never exceeds the pool size.
		q.finish(jb, nil, ctx.Err())
		<-res
	}
}

// finish moves jb to its terminal state (no-op if already terminal) and
// retires the record into the bounded done list.
func (q *Queue) finish(jb *job, v any, err error) {
	jb.mu.Lock()
	if jb.state.Terminal() {
		jb.mu.Unlock()
		return
	}
	jb.finishedAt = time.Now()
	switch {
	case err == nil:
		jb.state = StateDone
		jb.result = v
	case jb.cancelRequested || errors.Is(err, context.Canceled):
		jb.state = StateCanceled
		jb.err = err
	default:
		jb.state = StateFailed
		jb.err = err
	}
	state, startedAt, finishedAt := jb.state, jb.startedAt, jb.finishedAt
	close(jb.done)
	jb.mu.Unlock()
	q.m.transition(state)
	q.m.observeRun(startedAt, finishedAt)
	q.retire(jb.id)
}

// retire appends id to the terminal-record list, forgetting the oldest
// terminal jobs beyond the retention bound.
func (q *Queue) retire(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.doneOrder = append(q.doneOrder, id)
	for len(q.doneOrder) > retainFinished {
		delete(q.jobs, q.doneOrder[0])
		q.doneOrder = q.doneOrder[1:]
	}
}

func (jb *job) status() Status {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	st := Status{
		ID:         jb.id,
		State:      jb.state,
		QueuedAt:   jb.queuedAt,
		StartedAt:  jb.startedAt,
		FinishedAt: jb.finishedAt,
	}
	if jb.state == StateDone {
		st.Result = jb.result
	}
	if jb.err != nil {
		st.Err = jb.err.Error()
	}
	return st
}

func (jb *job) snapshotState() State {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return jb.state
}
