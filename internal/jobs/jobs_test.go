package jobs

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSubmitRunsAndReturnsResult(t *testing.T) {
	q := New(2, 8)
	defer q.Close(waitCtx(t))
	id, err := q.Submit(func(ctx context.Context) (any, error) { return 41 + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	st, err := q.Wait(waitCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result != 42 {
		t.Fatalf("status %+v", st)
	}
	if st.QueuedAt.IsZero() || st.StartedAt.IsZero() || st.FinishedAt.IsZero() {
		t.Fatalf("timestamps missing: %+v", st)
	}
}

func TestQueueFull(t *testing.T) {
	q := New(1, 1)
	gate := make(chan struct{})
	started := make(chan struct{})
	block := func(ctx context.Context) (any, error) {
		close(started)
		<-gate
		return nil, nil
	}
	idle := func(ctx context.Context) (any, error) { return nil, nil }
	// First job occupies the single worker...
	if _, err := q.Submit(block); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...second fills the single queue slot...
	if _, err := q.Submit(idle); err != nil {
		t.Fatal(err)
	}
	// ...third must be rejected, not blocked.
	if _, err := q.Submit(idle); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(gate)
	if err := q.Close(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
}

func TestCancelQueuedPreventsExecution(t *testing.T) {
	q := New(1, 4)
	gate := make(chan struct{})
	started := make(chan struct{})
	if _, err := q.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-gate
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	var ran atomic.Bool
	id, err := q.Submit(func(ctx context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := q.Cancel(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state after cancel = %s", st.State)
	}
	close(gate)
	if err := q.Close(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	if ran.Load() {
		t.Fatal("canceled queued job still executed")
	}
	if st, ok := q.Get(id); !ok || st.State != StateCanceled {
		t.Fatalf("final status %+v ok=%v", st, ok)
	}
}

func TestCancelRunningJob(t *testing.T) {
	q := New(1, 1)
	defer q.Close(waitCtx(t))
	started := make(chan struct{})
	id, err := q.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // honor cancellation
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := q.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, err := q.Wait(waitCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
}

func TestCancelUnknownAndTerminal(t *testing.T) {
	q := New(1, 1)
	defer q.Close(waitCtx(t))
	if _, err := q.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
	id, _ := q.Submit(func(ctx context.Context) (any, error) { return "x", nil })
	if _, err := q.Wait(waitCtx(t), id); err != nil {
		t.Fatal(err)
	}
	st, err := q.Cancel(id) // canceling a finished job is a no-op
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result != "x" {
		t.Fatalf("terminal cancel changed status: %+v", st)
	}
}

func TestPerJobDeadline(t *testing.T) {
	q := New(1, 1)
	defer q.Close(waitCtx(t))
	id, err := q.Submit(func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, WithTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	st, err := q.Wait(waitCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Err, "deadline") {
		t.Fatalf("status %+v, want failed with deadline error", st)
	}
}

func TestJobErrorAndPanic(t *testing.T) {
	q := New(2, 4)
	defer q.Close(waitCtx(t))
	boom := errors.New("boom")
	idErr, _ := q.Submit(func(ctx context.Context) (any, error) { return nil, boom })
	idPanic, _ := q.Submit(func(ctx context.Context) (any, error) { panic("kaboom") })
	st, err := q.Wait(waitCtx(t), idErr)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Err != "boom" {
		t.Fatalf("error job status %+v", st)
	}
	st, err = q.Wait(waitCtx(t), idPanic)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Err, "kaboom") {
		t.Fatalf("panic job status %+v", st)
	}
}

func TestFIFOOrderSingleWorker(t *testing.T) {
	q := New(1, 16)
	defer q.Close(waitCtx(t))
	gate := make(chan struct{})
	started := make(chan struct{})
	q.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started
	var order []int
	ch := make(chan int, 8)
	ids := make([]string, 8)
	for i := 0; i < 8; i++ {
		i := i
		id, err := q.Submit(func(ctx context.Context) (any, error) {
			ch <- i
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	close(gate)
	for i := 0; i < 8; i++ {
		st, err := q.Wait(waitCtx(t), ids[i])
		if err != nil || st.State != StateDone {
			t.Fatalf("job %d: %+v, %v", i, st, err)
		}
	}
	close(ch)
	for v := range ch {
		order = append(order, v)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v, want FIFO", order)
		}
	}
}

func TestConcurrencyBounded(t *testing.T) {
	const workers = 3
	q := New(workers, 64)
	defer q.Close(waitCtx(t))
	var running, peak atomic.Int64
	ids := make([]string, 20)
	for i := range ids {
		id, err := q.Submit(func(ctx context.Context) (any, error) {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if _, err := q.Wait(waitCtx(t), id); err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, pool size %d", p, workers)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	q := New(2, 16)
	var ran atomic.Int64
	ids := make([]string, 10)
	for i := range ids {
		id, err := q.Submit(func(ctx context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if err := q.Close(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Fatalf("%d jobs ran before drain completed, want 10", ran.Load())
	}
	if _, err := q.Submit(func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

func TestCloseDeadlineCancelsStragglers(t *testing.T) {
	q := New(1, 4)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	idRun, _ := q.Submit(func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return nil, nil
		}
	})
	<-started
	idQueued, _ := q.Submit(func(ctx context.Context) (any, error) { return nil, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want deadline exceeded", err)
	}
	st, err := q.Wait(waitCtx(t), idRun)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled && st.State != StateFailed {
		t.Fatalf("running straggler state %s", st.State)
	}
	st, err = q.Wait(waitCtx(t), idQueued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued straggler state %s, want canceled", st.State)
	}
}

func TestGetUnknown(t *testing.T) {
	q := New(1, 1)
	defer q.Close(waitCtx(t))
	if _, ok := q.Get("j999"); ok {
		t.Fatal("unknown id reported present")
	}
}

func TestStats(t *testing.T) {
	q := New(1, 8)
	gate := make(chan struct{})
	started := make(chan struct{})
	q.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started
	q.Submit(func(ctx context.Context) (any, error) { return nil, nil })
	st := q.Stats()
	if st.Running != 1 || st.Queued != 1 {
		t.Fatalf("stats %+v, want 1 running / 1 queued", st)
	}
	close(gate)
	if err := q.Close(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	st = q.Stats()
	if st.Done != 2 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("post-drain stats %+v", st)
	}
}

func TestRetention(t *testing.T) {
	q := New(4, 8)
	var lastID string
	for i := 0; i < retainFinished+50; i++ {
		for {
			id, err := q.Submit(func(ctx context.Context) (any, error) { return nil, nil })
			if errors.Is(err, ErrQueueFull) {
				time.Sleep(time.Millisecond)
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			lastID = id
			break
		}
	}
	if err := q.Close(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	q.mu.Lock()
	n := len(q.jobs)
	q.mu.Unlock()
	if n > retainFinished {
		t.Fatalf("%d records retained, bound is %d", n, retainFinished)
	}
	if _, ok := q.Get(lastID); !ok {
		t.Fatal("most recent job was forgotten")
	}
}

func TestWaitContextExpiry(t *testing.T) {
	q := New(1, 2)
	gate := make(chan struct{})
	defer q.Close(context.Background()) // LIFO: gate closes first, then drain
	defer close(gate)
	id, _ := q.Submit(func(ctx context.Context) (any, error) { <-gate; return nil, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	st, err := q.Wait(ctx, id)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if st.State.Terminal() {
		t.Fatalf("job should still be in flight, got %s", st.State)
	}
}
