package jobs

import (
	"time"

	"mobisink/internal/metrics"
)

// Metrics is the queue's instrumentation set. Construct with NewMetrics
// against a registry and attach via WithMetrics; a nil *Metrics
// disables instrumentation (the queue takes no locks and emits
// nothing).
type Metrics struct {
	// Submitted counts accepted submissions (jobs_submitted_total).
	Submitted *metrics.Counter
	// Rejected counts refused submissions by reason: "full" or "closed"
	// (jobs_rejected_total{reason}).
	Rejected *metrics.CounterVec
	// Transitions counts lifecycle entries by state: queued, running,
	// done, failed, canceled (jobs_transitions_total{state}).
	Transitions *metrics.CounterVec
	// Wait observes queued→running delay in seconds
	// (jobs_wait_seconds).
	Wait *metrics.Histogram
	// Run observes running→terminal duration in seconds
	// (jobs_run_seconds).
	Run *metrics.Histogram
	// Panics counts job functions that panicked and were recovered into
	// failed jobs (jobs_panics_recovered_total).
	Panics *metrics.Counter
}

// NewMetrics registers the queue's metric families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Submitted: r.Counter("jobs_submitted_total",
			"Jobs accepted into the queue."),
		Rejected: r.CounterVec("jobs_rejected_total",
			"Submissions refused, by reason (full, closed).", "reason"),
		Transitions: r.CounterVec("jobs_transitions_total",
			"Job lifecycle transitions, by entered state.", "state"),
		Wait: r.Histogram("jobs_wait_seconds",
			"Time jobs spend queued before a worker picks them up.", nil),
		Run: r.Histogram("jobs_run_seconds",
			"Time jobs spend executing on a worker.", nil),
		Panics: r.Counter("jobs_panics_recovered_total",
			"Job functions that panicked and were recovered into failures."),
	}
}

// WithMetrics attaches an instrumentation set to the queue at
// construction time.
func WithMetrics(m *Metrics) QueueOption {
	return func(q *Queue) { q.m = m }
}

// RegisterGauges registers the queue's live-state gauges on r:
// jobs_queue_depth (waiting), jobs_running, jobs_queue_capacity, and
// jobs_workers. Gauges are read at scrape time from the queue itself.
func (q *Queue) RegisterGauges(r *metrics.Registry) {
	r.GaugeFunc("jobs_queue_depth",
		"Jobs waiting for a worker.", func() float64 {
			return float64(q.Stats().Queued)
		})
	r.GaugeFunc("jobs_running",
		"Jobs currently executing.", func() float64 {
			return float64(q.Stats().Running)
		})
	r.GaugeFunc("jobs_queue_capacity",
		"Maximum number of waiting jobs before submissions are rejected.",
		func() float64 { return float64(q.Depth()) })
	r.GaugeFunc("jobs_workers",
		"Worker pool size.", func() float64 { return float64(q.Workers()) })
}

// panicked records one recovered job panic; nil-safe.
func (m *Metrics) panicked() {
	if m != nil {
		m.Panics.Inc()
	}
}

// transition records one lifecycle entry; nil-safe.
func (m *Metrics) transition(state State) {
	if m != nil {
		m.Transitions.With(string(state)).Inc()
	}
}

// observeWait records a queued→running delay; nil-safe.
func (m *Metrics) observeWait(queued, started time.Time) {
	if m != nil {
		m.Wait.Observe(started.Sub(queued).Seconds())
	}
}

// observeRun records a running→terminal duration; nil-safe.
func (m *Metrics) observeRun(started, finished time.Time) {
	if m != nil && !started.IsZero() {
		m.Run.Observe(finished.Sub(started).Seconds())
	}
}
