package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): per family a # HELP and # TYPE line, then one
// sample line per series; histograms expand into cumulative _bucket
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.families() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.snapshotSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.hist != nil:
		cum := s.hist.cumulative()
		total := s.hist.Count()
		for i, bound := range s.hist.bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, withLabel(s.labels, "le", formatBound(bound)), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, withLabel(s.labels, "le", "+Inf"), total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatValue(s.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, total)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
		return err
	}
}

// value reads a scalar series (counter, gauge, or func-backed).
func (s *series) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.ctr != nil:
		return s.ctr.Value()
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// withLabel appends one extra label to an already-rendered label set.
func withLabel(labels, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// Handler returns an http.Handler serving the registry as
// text/plain; version=0.0.4 (the Prometheus scrape format).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Values is a point-in-time flattening of a registry: exposition keys
// (name plus rendered labels; histograms contribute _bucket/_sum/_count
// entries exactly as in the text format) mapped to values.
type Values map[string]float64

// Get returns the value for an exposition key, 0 if absent.
func (s Values) Get(key string) float64 { return s[key] }

// Snapshot flattens the registry's current state for direct assertions.
func (r *Registry) Snapshot() Values {
	out := make(Values)
	for _, f := range r.families() {
		for _, s := range f.snapshotSeries() {
			if s.hist != nil {
				cum := s.hist.cumulative()
				for i, bound := range s.hist.bounds {
					out[f.name+"_bucket"+withLabel(s.labels, "le", formatBound(bound))] = float64(cum[i])
				}
				out[f.name+"_bucket"+withLabel(s.labels, "le", "+Inf")] = float64(s.hist.Count())
				out[f.name+"_sum"+s.labels] = s.hist.Sum()
				out[f.name+"_count"+s.labels] = float64(s.hist.Count())
				continue
			}
			out[f.name+s.labels] = s.value()
		}
	}
	return out
}

// Snapshot flattens the Default registry (the form cmd/mobisink -stats
// and package-level instrumentation tests use).
func Snapshot() Values { return Default().Snapshot() }
