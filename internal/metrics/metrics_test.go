package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.Add(-1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	snap := r.Snapshot()
	want := map[string]float64{
		`lat_seconds_bucket{le="0.1"}`:  1,
		`lat_seconds_bucket{le="1"}`:    3,
		`lat_seconds_bucket{le="10"}`:   4,
		`lat_seconds_bucket{le="+Inf"}`: 5,
		`lat_seconds_count`:             5,
	}
	for k, v := range want {
		if snap.Get(k) != v {
			t.Errorf("snapshot[%s] = %v, want %v", k, snap.Get(k), v)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "quantile fixture", []float64{10, 20, 40})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 10 observations in [0,10), 10 in [10,20): the median sits at the
	// bucket boundary and p75 interpolates halfway into the second.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("p50 = %v, want 10", got)
	}
	if got := h.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Errorf("p75 = %v, want 15", got)
	}
	if got := h.Quantile(1); math.Abs(got-20) > 1e-9 {
		t.Errorf("p100 = %v, want 20 (upper edge of last occupied bucket)", got)
	}
	// Out-of-range and NaN arguments clamp or propagate, never panic.
	if got := h.Quantile(-3); got > h.Quantile(0.01) {
		t.Errorf("q<0 should clamp to the low tail, got %v", got)
	}
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Error("NaN quantile should be NaN")
	}
	// An observation beyond every bound lands in the +Inf bucket; the
	// quantile degrades to the highest finite bound rather than +Inf.
	h.Observe(1e9)
	if got := h.Quantile(0.9999); math.IsInf(got, 1) {
		t.Error("quantile in the +Inf bucket should stay finite")
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "by route/code", "route", "code")
	v.With("/v1/allocate", "2xx").Add(3)
	v.With("/v1/allocate", "5xx").Inc()
	v.With("/v1/jobs", "2xx").Inc()
	snap := r.Snapshot()
	if got := snap.Get(`http_requests_total{route="/v1/allocate",code="2xx"}`); got != 3 {
		t.Fatalf("labeled counter = %v, want 3", got)
	}
	hv := r.HistogramVec("h", "", []float64{1}, "alg")
	hv.With("appro").Observe(0.5)
	if got := r.Snapshot().Get(`h_count{alg="appro"}`); got != 1 {
		t.Fatalf("labeled histogram count = %v, want 1", got)
	}
}

func TestFuncBackedAndEscaping(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.GaugeFunc("live", "from fn", func() float64 { return n })
	r.CounterFunc("seen_total", "from fn", func() float64 { return 41 })
	v := r.CounterVec("weird", "", "l")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE live gauge\nlive 7\n",
		"# TYPE seen_total counter\nseen_total 41\n",
		`weird{l="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	n = 9
	if got := r.Snapshot().Get("live"); got != 9 {
		t.Fatalf("func gauge = %v, want 9", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	if lin[0] != 0 || lin[1] != 5 || lin[2] != 10 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	if len(DefBuckets()) < 5 {
		t.Fatal("DefBuckets too coarse")
	}
}

// TestConcurrentIncrementSnapshot is the race-detector gate for the
// registry: many goroutines hammer every instrument kind while others
// snapshot and expose concurrently; final totals must be exact.
func TestConcurrentIncrementSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5, 1})
	vec := r.CounterVec("v_total", "", "worker")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) / 2)
				vec.With(lbl).Inc()
			}
		}(w)
	}
	// Concurrent readers: snapshots and exposition must not race.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for i := 0; i < 3; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Snapshot()
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Fatalf("counter = %v, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Fatalf("gauge = %v, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	snap := r.Snapshot()
	var vecSum float64
	for w := 0; w < workers; w++ {
		vecSum += snap.Get(`v_total{worker="` + string(rune('a'+w)) + `"}`)
	}
	if vecSum != total {
		t.Fatalf("vec sum = %v, want %d", vecSum, total)
	}
}
