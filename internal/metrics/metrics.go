// Package metrics is the observability substrate of the allocation
// service: a dependency-free registry of atomic counters, gauges, and
// fixed-bucket histograms with Prometheus text exposition and a
// Snapshot API for direct assertions in tests and CLI stats dumps.
//
// Instruments are cheap enough for hot paths (a counter increment is a
// single atomic add; a histogram observation is two atomic adds plus a
// CAS loop for the sum) and registration is idempotent: asking a
// registry for an already-registered name returns the existing
// instrument, so package-level instrumentation can be declared in plain
// var blocks without sync.Once ceremony. Names and label sets follow
// Prometheus conventions (snake_case, _total suffix on counters,
// _seconds unit suffixes).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing count. The zero value is not
// registered; obtain one from a Registry.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be ≥ 0 (negative deltas are dropped to keep
// the counter monotone).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds delta to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed cumulative buckets and
// tracks their sum, Prometheus-style. Bucket upper bounds are set at
// registration; a +Inf bucket is implicit.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	addFloat(&h.sum, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts, interpolating linearly inside the containing bucket — the
// standard Prometheus histogram_quantile estimator. Samples that landed
// in the +Inf bucket are reported as the largest finite bound (a lower
// bound on the true value). Returns NaN when the histogram is empty or
// q is NaN. The estimate is read from live atomic counts; concurrent
// observations may skew it by at most the races' sample count.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	q = math.Min(1, math.Max(0, q))
	total := h.Count()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var acc uint64
	lower := 0.0
	for i, upper := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(acc)+float64(c) >= rank {
			frac := (rank - float64(acc)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(upper-lower)
		}
		acc += c
		lower = upper
	}
	return lower
}

// cumulative returns the per-bound cumulative counts (excluding +Inf).
func (h *Histogram) cumulative() []uint64 {
	out := make([]uint64, len(h.bounds))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out
}

// DefBuckets are general-purpose latency buckets in seconds, spanning
// 100 µs to ~100 s.
func DefBuckets() []float64 {
	return ExpBuckets(1e-4, 4, 11)
}

// ExpBuckets returns n exponential bucket bounds start, start·factor, …
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n linear bucket bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// series is one (labelValues → instrument) entry of a family.
type series struct {
	labels string // rendered {k="v",...} or ""
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // func-backed counter/gauge
}

// family is one named metric with a fixed kind and label-name set.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

func (f *family) get(labelValues []string, mk func() *series) *series {
	key := renderLabels(f.labelNames, labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labels = key
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// renderLabels formats a label set as it appears in the exposition,
// e.g. `{route="/v1/allocate",code="2xx"}`; empty for no labels.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	if len(values) != len(names) {
		panic(fmt.Sprintf("metrics: got %d label values for %d label names %v",
			len(values), len(names), names))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Registry holds metric families. The zero value is not usable;
// construct with NewRegistry or use the process-wide Default registry.
// All methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used by package-level
// instrumentation (internal/exp, internal/sim) and by cmd binaries.
func Default() *Registry { return defaultRegistry }

// family returns the family for name, creating it on first use and
// panicking on a kind or label-set mismatch (a programming error: two
// call sites disagree about what the metric is).
func (r *Registry) family(name, help string, kind Kind, labelNames []string, buckets []float64) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s%v, was %s%v",
				name, kind, labelNames, f.kind, f.labelNames))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]*series),
	}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, KindCounter, nil, nil)
	return f.get(nil, func() *series { return &series{ctr: &Counter{}} }).ctr
}

// CounterFunc registers a counter whose value is read from fn at
// exposition/snapshot time (for counts already tracked elsewhere, e.g.
// cache hit totals). Re-registering the same name replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, KindCounter, nil, nil)
	s := f.get(nil, func() *series { return &series{} })
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, KindGauge, nil, nil)
	return f.get(nil, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition/snapshot time. Re-registering the same name replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, KindGauge, nil, nil)
	s := f.get(nil, func() *series { return &series{} })
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given bucket upper bounds (+Inf implicit; nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	f := r.family(name, help, KindHistogram, nil, buckets)
	return f.get(nil, func() *series { return &series{hist: newHistogram(f.buckets)} }).hist
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in the order the
// label names were registered), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues, func() *series { return &series{ctr: &Counter{}} }).ctr
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, labelNames, nil)}
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, labelNames, nil)}
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues, func() *series { return &series{hist: newHistogram(v.f.buckets)} }).hist
}

// HistogramVec registers (or fetches) a labeled histogram family with
// shared bucket bounds (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	return &HistogramVec{r.family(name, help, KindHistogram, labelNames, buckets)}
}

// families returns the registered families in registration order.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.fams[name])
	}
	return out
}

// snapshotSeries returns a family's series in creation order.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*series, 0, len(f.order))
	for _, k := range f.order {
		out = append(out, f.series[k])
	}
	return out
}
