package srv

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"mobisink/internal/metrics"
)

// This file hardens the serving path against misbehaving solvers and
// overload, in layers (outermost first):
//
//   - recoverMW: a handler panic becomes a 500 and a metric, never a
//     dropped connection or a dead worker;
//   - load shedding: when the job queue saturates, new allocations are
//     transparently degraded to the cheap greedy solver (cached under the
//     degraded algorithm's own key, so primary results are never
//     poisoned);
//   - circuit breaker: consecutive server-side solver failures open the
//     circuit and fail fast with 503 until a cooldown probe succeeds;
//   - retry with backoff: transient server-side failures (including
//     recovered solver panics) are retried before counting against the
//     breaker;
//   - runSafe: a panicking solver is captured as an error at the
//     invocation boundary, so one poisoned request cannot take down the
//     shared worker pool.

// Breaker states, exported via the srv_breaker_state gauge.
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// breaker is a consecutive-failure circuit breaker. Closed passes
// everything; threshold consecutive failures open it; after cooldown one
// half-open probe is admitted — success closes the circuit, failure
// re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook

	state    int
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	opens *metrics.Counter
}

func newBreaker(threshold int, cooldown time.Duration, opens *metrics.Counter) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, opens: opens}
}

// Allow reports whether a request may invoke the solver right now.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe only
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a healthy solver invocation.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// Failure records a server-side solver failure.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		if b.state != breakerOpen {
			b.opens.Inc()
		}
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	}
}

// Neutral records an invocation that says nothing about solver health
// (client error, caller cancellation): a half-open probe slot is returned
// without moving the state.
func (b *breaker) Neutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Open reports whether the circuit is currently failing fast.
func (b *breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && b.now().Sub(b.openedAt) < b.cooldown
}

func (b *breaker) stateValue() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return float64(b.state)
}

// resilienceMetrics is the hardening layer's instrumentation.
type resilienceMetrics struct {
	panics       *metrics.Counter
	solverPanics *metrics.Counter
	retries      *metrics.Counter
	breakerOpens *metrics.Counter
	shed         *metrics.Counter
}

func newResilienceMetrics(r *metrics.Registry) *resilienceMetrics {
	return &resilienceMetrics{
		panics: r.Counter("srv_panics_recovered_total",
			"HTTP handler panics recovered into 500 responses."),
		solverPanics: r.Counter("srv_solver_panics_total",
			"Solver invocations that panicked and were captured as errors."),
		retries: r.Counter("srv_solver_retries_total",
			"Solver invocations retried after a transient failure."),
		breakerOpens: r.Counter("srv_breaker_open_total",
			"Circuit breaker transitions into the open state."),
		shed: r.Counter("srv_load_shed_total",
			"Allocations degraded to the greedy solver under queue saturation."),
	}
}

// recoverMW converts a handler panic into a 500 instead of killing the
// connection (net/http would otherwise log and drop it); the response
// write is best-effort — if the handler already streamed a body, the
// client sees a truncated response either way.
func (s *Server) recoverMW(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.rm.panics.Inc()
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		h(w, r)
	}
}

// shouldShed reports whether the job queue is saturated enough to degrade
// new allocations (waiting jobs ≥ ShedFraction × capacity).
func (s *Server) shouldShed() bool {
	if s.cfg.ShedFraction >= 1 {
		return false
	}
	return float64(s.queue.Stats().Queued) >= s.cfg.ShedFraction*float64(s.queue.Depth())
}

// degradedAlgorithm maps an algorithm to its cheap fallback under load:
// the greedy scheduler of the same family, or the sequential one when the
// request carries data caps (greedy cannot honor them). Returns "" when
// the request is already as cheap as it gets.
func degradedAlgorithm(alg string, capped bool) string {
	a := strings.ToLower(alg)
	if a == "" {
		a = "offline_appro"
	}
	family := "offline"
	if strings.HasPrefix(a, "online") {
		family = "online"
	}
	cheap := family + "_greedy"
	if capped {
		cheap = family + "_sequential"
	}
	if a == cheap {
		return ""
	}
	return cheap
}

// errSolverPanic marks a captured solver panic (always server-side,
// always retryable — the next attempt may hit a healthy code path or the
// cache).
type errSolverPanic struct{ v any }

func (e *errSolverPanic) Error() string { return fmt.Sprintf("solver panicked: %v", e.v) }

// runSafe invokes the solver with panic capture, so one poisoned request
// degrades to an error instead of unwinding the worker goroutine.
func (s *Server) runSafe(ctx context.Context, req *Request) (resp *Response, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.rm.solverPanics.Inc()
			resp, err = nil, &errSolverPanic{rec}
		}
	}()
	return s.run(ctx, req)
}

// serverSide reports whether the error indicts the solver (and should
// trip retries and the breaker) rather than the request or the caller.
func serverSide(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.code >= 500
	}
	return true
}

// invoke is the hardened solver call: breaker check, then bounded
// retry-with-backoff around the panic-capturing runner. Client errors and
// cancellations pass through untouched and leave the breaker alone.
func (s *Server) invoke(ctx context.Context, req *Request) (*Response, error) {
	if !s.br.Allow() {
		return nil, &httpError{http.StatusServiceUnavailable, "circuit breaker open, retry later"}
	}
	var err error
	for attempt := 0; ; attempt++ {
		var resp *Response
		resp, err = s.runSafe(ctx, req)
		if err == nil {
			s.br.Success()
			return resp, nil
		}
		if !serverSide(err) {
			s.br.Neutral()
			return nil, err
		}
		if attempt >= s.cfg.RetryAttempts {
			break
		}
		s.rm.retries.Inc()
		backoff := s.cfg.RetryBackoff << attempt
		select {
		case <-ctx.Done():
			s.br.Neutral()
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
	}
	s.br.Failure()
	var ep *errSolverPanic
	if errors.As(err, &ep) {
		// A panic must surface as a plain 500, not leak internals upward.
		return nil, fmt.Errorf("srv: %w", err)
	}
	return nil, err
}
