package srv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobisink/internal/jobs"
	"mobisink/internal/network"
)

// newTestServer wires a Server with small knobs and an optional stand-in
// solver into an httptest server.
func newTestServer(t *testing.T, cfg Config, run func(*Request) (*Response, error)) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if run != nil {
		s.run = func(_ context.Context, req *Request) (*Response, error) { return run(req) }
	}
	ts := httptest.NewServer(s.Mux())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// blockingRun returns a stand-in solver that blocks on gate and counts
// invocations; Slots echoes the request speed so results are
// distinguishable without running a real solver.
func blockingRun(calls *atomic.Int64, gate chan struct{}) func(*Request) (*Response, error) {
	return func(req *Request) (*Response, error) {
		calls.Add(1)
		if gate != nil {
			<-gate
		}
		return &Response{Algorithm: req.Algorithm, Slots: int(req.Speed), DataMb: 1}, nil
	}
}

// stubDep is a minimal valid deployment for tests that stub the solver
// (Deployment's UnmarshalJSON validates, so requests can't carry a zero
// value).
var stubDep = func() network.Deployment {
	dep, err := network.Generate(network.Params{N: 2, PathLength: 100, MaxOffset: 10, Seed: 1})
	if err != nil {
		panic(err)
	}
	return *dep
}()

func speedReq(speed float64) Request {
	// Distinct speeds make distinct cache keys and distinguishable
	// stand-in responses.
	return Request{Deployment: stubDep, Speed: speed, SlotLen: 1, Algorithm: "offline_greedy"}
}

// Acceptance (a): a full queue rejects job submission with 429.
func TestJobsQueueFull429(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1},
		func(req *Request) (*Response, error) {
			once.Do(func() { close(started) })
			return blockingRun(&calls, gate)(req)
		})
	// First job occupies the single worker.
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: speedReq(1)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status %d", resp.StatusCode)
	}
	<-started
	// Second fills the single queue slot.
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: speedReq(2)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status %d", resp.StatusCode)
	}
	// Third must be rejected with backpressure.
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: speedReq(3)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status %d, want 429", resp.StatusCode)
	}
	close(gate)
}

// Acceptance (b): concurrent identical synchronous requests run the
// solver once (single-flight), and a repeat is served from the cache.
func TestAllocateSingleFlightAndCache(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	_, ts := newTestServer(t, Config{},
		func(req *Request) (*Response, error) {
			once.Do(func() { close(started) })
			return blockingRun(&calls, gate)(req)
		})
	req := speedReq(7)
	var wg sync.WaitGroup
	statuses := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", req)
			statuses[i] = resp.StatusCode
		}(i)
	}
	<-started
	close(gate)
	wg.Wait()
	for i, code := range statuses {
		if code != http.StatusOK {
			t.Fatalf("request %d status %d", i, code)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("solver ran %d times for identical concurrent requests, want 1", n)
	}
	// A later repeat is an LRU hit — still one solver run.
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", req)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q, want hit", got)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("solver ran %d times after cached repeat, want 1", n)
	}
}

// Acceptance (c): canceling a queued job prevents it from executing.
func TestJobCancelQueuedPreventsExecution(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4},
		func(req *Request) (*Response, error) {
			once.Do(func() { close(started) })
			return blockingRun(&calls, gate)(req)
		})
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: speedReq(1)})
	<-started
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: speedReq(2)})
	acc := decodeBody[JobAccepted](t, resp)

	resp = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+acc.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	st := decodeBody[jobs.Status](t, resp)
	if st.State != jobs.StateCanceled {
		t.Fatalf("state after cancel = %s", st.State)
	}
	close(gate)
	// Wait for the first job to finish, then confirm the canceled one
	// never reached the solver.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // give a wrongly-dispatched job time to show up
	if n := calls.Load(); n != 1 {
		t.Fatalf("solver ran %d times, want 1 (canceled job must not run)", n)
	}
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+acc.ID, nil)
	st = decodeBody[jobs.Status](t, resp)
	if st.State != jobs.StateCanceled {
		t.Fatalf("final state %s, want canceled", st.State)
	}
}

// Acceptance (d): a batch of N requests returns N results in input order.
func TestBatchOrdering(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 32}, blockingRun(&calls, nil))
	speeds := []float64{9, 3, 7, 1, 5, 8, 2, 6}
	var br BatchRequest
	for _, v := range speeds {
		br.Requests = append(br.Requests, speedReq(v))
	}
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/batch", br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decodeBody[BatchResponse](t, resp)
	if len(out.Results) != len(speeds) {
		t.Fatalf("%d results, want %d", len(out.Results), len(speeds))
	}
	for i, item := range out.Results {
		if !item.OK || item.Result == nil {
			t.Fatalf("item %d not ok: %+v", i, item)
		}
		if item.Result.Slots != int(speeds[i]) {
			t.Fatalf("item %d = request for speed %d, want %v (out of order)",
				i, item.Result.Slots, speeds[i])
		}
	}
}

// A batch larger than the queue can hold is rejected whole with 429.
func TestBatchQueueFull429(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	var once sync.Once
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2},
		func(req *Request) (*Response, error) {
			once.Do(func() { close(started) })
			return blockingRun(&calls, gate)(req)
		})
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: speedReq(1)})
	<-started // worker busy; 2 queue slots left, batch needs 3
	var br BatchRequest
	for _, v := range []float64{2, 3, 4} {
		br.Requests = append(br.Requests, speedReq(v))
	}
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/batch", br)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
}

func TestBatchRealSolver(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	dep := testDeployment(t, 15)
	br := BatchRequest{Requests: []Request{
		{Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: "offline_greedy"},
		{Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: "nope"},
		{Deployment: dep, Speed: 10, SlotLen: 1, Algorithm: "offline_greedy"},
	}}
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/batch", br)
	out := decodeBody[BatchResponse](t, resp)
	if len(out.Results) != 3 {
		t.Fatalf("%d results", len(out.Results))
	}
	if !out.Results[0].OK || out.Results[0].Result.DataMb <= 0 {
		t.Fatalf("result 0: %+v", out.Results[0])
	}
	if out.Results[1].OK || !strings.Contains(out.Results[1].Error, "unknown algorithm") {
		t.Fatalf("result 1 should fail with unknown algorithm: %+v", out.Results[1])
	}
	if !out.Results[2].OK {
		t.Fatalf("result 2: %+v", out.Results[2])
	}
	// Twice the speed halves the tour slots.
	if out.Results[2].Result.Slots >= out.Results[0].Result.Slots {
		t.Fatalf("speed 10 slots %d not below speed 5 slots %d",
			out.Results[2].Result.Slots, out.Results[0].Result.Slots)
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/batch", BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", resp.StatusCode)
	}
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	dep := testDeployment(t, 15)
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{
		Request: Request{Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: "offline_greedy"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	acc := decodeBody[JobAccepted](t, resp)
	if acc.ID == "" {
		t.Fatal("no job id")
	}
	deadline := time.Now().Add(10 * time.Second)
	var st jobs.Status
	for {
		resp = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+acc.ID, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		st = decodeBody[jobs.Status](t, resp)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("state %s err %q", st.State, st.Err)
	}
	// Result rides along as JSON; re-decode it as a Response.
	b, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var res Response
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatal(err)
	}
	if res.DataMb <= 0 || len(res.SlotOwner) != res.Slots {
		t.Fatalf("bad job result %+v", res)
	}
}

func TestJobFailureSurfacesError(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{
		Request: Request{Deployment: stubDep, Speed: 5, SlotLen: 1, Algorithm: "nope"},
	})
	acc := decodeBody[JobAccepted](t, resp)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+acc.ID, nil)
		st := decodeBody[jobs.Status](t, resp)
		if st.State.Terminal() {
			if st.State != jobs.StateFailed || !strings.Contains(st.Err, "unknown algorithm") {
				t.Fatalf("status %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobsUnknownID(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/j999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown: %d, want 404", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/j999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d, want 404", resp.StatusCode)
	}
}

// Satellite: oversized request bodies are rejected with 413 before any
// decoding work.
func TestBodyTooLarge413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024}, nil)
	big := fmt.Sprintf(`{"speed": 5, "slot_len": 1, "data_caps": [%s1]}`,
		strings.Repeat("1,", 2000))
	for _, path := range []string{"/v1/allocate", "/v1/jobs", "/v1/batch"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, resp.StatusCode)
		}
	}
}

// Satellite: healthz serves GET and HEAD only; other methods are 405.
func TestHealthzMethodRestriction(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	for _, m := range []string{http.MethodGet, http.MethodHead} {
		resp := doJSON(t, m, ts.URL+"/v1/healthz", nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", m, resp.StatusCode)
		}
	}
	for _, m := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		resp := doJSON(t, m, ts.URL+"/v1/healthz", nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s: status %d, want 405", m, resp.StatusCode)
		}
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 9, CacheEntries: 27}, nil)
	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/version", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	vi := decodeBody[VersionInfo](t, resp)
	if vi.Service != "allocserver" || vi.GoVersion == "" {
		t.Fatalf("version info %+v", vi)
	}
	if vi.Workers != 3 || vi.QueueDepth != 9 || vi.CacheEntries != 27 {
		t.Fatalf("sizing not reported: %+v", vi)
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/version", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp.StatusCode)
	}
}

// Satellite: method and payload error paths on the async endpoints.
func TestJobsErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	// Method not allowed: GET on the collection, POST on an id.
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/jobs: %d, want 405", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPut, ts.URL+"/v1/batch", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/batch: %d, want 405", resp.StatusCode)
	}
	// Unknown fields and broken JSON are 400s.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"surprise": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: %d, want 400", resp.StatusCode)
	}
}

// The cache serves repeats of real allocations byte-identically.
func TestAllocateCacheRealSolver(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	dep := testDeployment(t, 20)
	req := Request{Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: "offline_greedy"}
	first := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", req)
	if first.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first X-Cache = %q", first.Header.Get("X-Cache"))
	}
	b1, _ := io.ReadAll(first.Body)
	second := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", req)
	if second.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second X-Cache = %q", second.Header.Get("X-Cache"))
	}
	b2, _ := io.ReadAll(second.Body)
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached response differs from computed response")
	}
	// The implicit default algorithm shares the cache entry with the
	// explicit one.
	req.Algorithm = ""
	req2 := req
	req2.Algorithm = "offline_appro"
	doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", req)
	third := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", req2)
	if third.Header.Get("X-Cache") != "hit" {
		t.Fatalf("default-vs-explicit algorithm missed cache: %q", third.Header.Get("X-Cache"))
	}
}

// Server.Close drains in-flight jobs and rejects later submissions.
func TestServerCloseDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8}, nil)
	dep := testDeployment(t, 15)
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{
		Request: Request{Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: "offline_greedy"},
	})
	acc := decodeBody[JobAccepted](t, resp)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+acc.ID, nil)
	st := decodeBody[jobs.Status](t, resp)
	if st.State != jobs.StateDone {
		t.Fatalf("after drain: %+v", st)
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: speedReq(1)}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: %d, want 503", resp.StatusCode)
	}
}

// Regression: unknown job ids on GET and DELETE must be 404, never 500.
// (The service maps jobs.ErrUnknownJob onto http.StatusNotFound in
// writeError; this pins both handlers to that mapping, including ids
// that never existed, ids of retired records, and ids with hostile
// characters.)
func TestJobGetCancelUnknown404(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, blockingRun(&calls, nil))

	for _, id := range []string{"does-not-exist", "j0", "j18446744073709551615", "%20", "j1'--"} {
		for _, method := range []string{http.MethodGet, http.MethodDelete} {
			resp := doJSON(t, method, ts.URL+"/v1/jobs/"+id, nil)
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("%s /v1/jobs/%s = %d, want 404", method, id, resp.StatusCode)
			}
			if resp.StatusCode >= 500 {
				t.Errorf("%s /v1/jobs/%s returned server error %d", method, id, resp.StatusCode)
			}
			body, _ := io.ReadAll(resp.Body)
			if !strings.Contains(string(body), "unknown job") {
				t.Errorf("%s /v1/jobs/%s body %q, want unknown-job message", method, id, body)
			}
		}
	}

	// A known id still works, and cancel of a terminal job stays 200.
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: speedReq(3)})
	acc := decodeBody[JobAccepted](t, resp)
	waitForState(t, ts.URL, acc.ID, "done")
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+acc.ID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET known job: %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+acc.ID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE terminal job: %d", resp.StatusCode)
	}
}
