//go:build !race

package srv

const raceEnabled = false
