package srv

import (
	"net/http"
	"strconv"
	"time"

	"mobisink/internal/metrics"
)

// httpMetrics is the per-route HTTP instrumentation: request counts by
// status class, latency histograms, and an in-flight gauge.
type httpMetrics struct {
	requests *metrics.CounterVec   // http_requests_total{route,code}
	latency  *metrics.HistogramVec // http_request_seconds{route}
	inflight *metrics.Gauge        // http_inflight_requests
}

func newHTTPMetrics(r *metrics.Registry) *httpMetrics {
	return &httpMetrics{
		requests: r.CounterVec("http_requests_total",
			"HTTP requests served, by route pattern and status class.",
			"route", "code"),
		latency: r.HistogramVec("http_request_seconds",
			"HTTP request latency by route pattern.", nil, "route"),
		inflight: r.Gauge("http_inflight_requests",
			"Requests currently being served."),
	}
}

// statusRecorder captures the status code written by a handler
// (defaulting to 200 for handlers that never call WriteHeader).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// statusClass buckets a status code as "2xx", "4xx", …
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// instrument wraps a handler with request counting, latency
// observation, and in-flight tracking, labeling by the route pattern
// (not the concrete path, so /v1/jobs/{id} stays one series).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.hm.inflight.Inc()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			s.hm.inflight.Dec()
			s.hm.requests.With(route, statusClass(sr.code)).Inc()
			s.hm.latency.With(route).Observe(time.Since(start).Seconds())
		}()
		h(sr, r)
	}
}

// registerStateMetrics exports the server's live state: queue gauges
// and cumulative cache counters, all read at scrape time.
func (s *Server) registerStateMetrics(r *metrics.Registry) {
	s.queue.RegisterGauges(r)
	r.CounterFunc("cache_hits_total",
		"Allocation results served from the LRU.", func() float64 {
			return float64(s.memo.StatsAll().Hits)
		})
	r.CounterFunc("cache_misses_total",
		"Allocation requests that missed the LRU.", func() float64 {
			return float64(s.memo.StatsAll().Misses)
		})
	r.CounterFunc("cache_evictions_total",
		"Cached results dropped by capacity pressure.", func() float64 {
			return float64(s.memo.StatsAll().Evictions)
		})
	r.CounterFunc("cache_singleflight_collapses_total",
		"Concurrent identical requests that shared one solver run.",
		func() float64 { return float64(s.memo.StatsAll().Collapses) })
	r.GaugeFunc("cache_entries",
		"Results currently cached.", func() float64 {
			return float64(s.memo.Len())
		})
}
