// Package srv implements the JSON-over-HTTP allocation service behind
// cmd/allocserver: it parses a deployment + sink parameters, builds the
// slot-allocation instance, runs the requested algorithm, and returns the
// schedule with summary statistics.
//
// The service has a synchronous path (POST /v1/allocate, served through
// an LRU result cache with single-flight deduplication) and an
// asynchronous path (POST /v1/jobs + GET/DELETE /v1/jobs/{id},
// POST /v1/batch) backed by a bounded job queue and fixed worker pool;
// see server.go.
package srv

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/network"
	"mobisink/internal/radio"
	"mobisink/internal/solve"
)

// Request is the /v1/allocate payload.
type Request struct {
	Deployment network.Deployment `json:"deployment"`
	Speed      float64            `json:"speed"`    // r_s, m/s
	SlotLen    float64            `json:"slot_len"` // τ, s
	// Algorithm: offline_appro (default), offline_maxmatch,
	// offline_greedy, offline_sequential, online_appro, online_maxmatch,
	// online_greedy, online_sequential.
	Algorithm string `json:"algorithm"`
	// FixedPower switches to the fixed-transmission-power radio (W);
	// 0 keeps the multi-rate table.
	FixedPower float64 `json:"fixed_power"`
	// DataCaps optionally bounds per-sensor uploads, bits.
	DataCaps []float64 `json:"data_caps,omitempty"`
	// Eps tunes the FPTAS when ForceFPTAS is set.
	Eps        float64 `json:"eps"`
	ForceFPTAS bool    `json:"force_fptas"`
}

// Response is the /v1/allocate result.
type Response struct {
	Algorithm    string  `json:"algorithm"`
	Slots        int     `json:"slots"`
	Gamma        int     `json:"gamma"`
	DataMb       float64 `json:"data_mb"`
	UpperBoundMb float64 `json:"upper_bound_mb"`
	// SlotOwner[j] is the sensor transmitting in slot j, or -1.
	SlotOwner []int `json:"slot_owner"`
	// EnergyUsed[i] is sensor i's spend in Joules.
	EnergyUsed []float64 `json:"energy_used"`
	ElapsedMs  float64   `json:"elapsed_ms"`
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// Allocate runs one allocation request (exported for tests and embedding).
func Allocate(req *Request) (*Response, error) {
	return AllocateCtx(context.Background(), req)
}

// AllocateCtx is Allocate with cancellation: the context is threaded
// through the solver registry into the underlying search, so canceling it
// (job timeout, DELETE /v1/jobs/{id}, client disconnect) aborts the
// computation mid-solve instead of letting it run to completion.
func AllocateCtx(ctx context.Context, req *Request) (*Response, error) {
	start := time.Now()
	if req.Speed <= 0 || req.SlotLen <= 0 {
		return nil, badRequest("speed and slot_len must be positive")
	}
	var model radio.Model = radio.Paper2013()
	if req.FixedPower > 0 {
		fp, err := radio.NewFixedPower(model, req.FixedPower)
		if err != nil {
			return nil, badRequest("fixed_power: %v", err)
		}
		model = fp
	}
	inst, err := core.BuildInstance(&req.Deployment, model, req.Speed, req.SlotLen)
	if err != nil {
		return nil, badRequest("instance: %v", err)
	}
	if req.DataCaps != nil {
		if err := inst.SetDataCaps(req.DataCaps); err != nil {
			return nil, badRequest("data_caps: %v", err)
		}
	}
	opts := core.Options{Eps: req.Eps, ForceFPTAS: req.ForceFPTAS}
	alg := req.Algorithm
	if alg == "" {
		alg = "offline_appro"
	}
	solver, err := solve.New(alg, solve.Options{Core: opts})
	if err != nil {
		return nil, badRequest("unknown algorithm %q", alg)
	}
	alloc, err := solver.Solve(ctx, inst)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err // surface cancellation as-is, not as a 400
		}
		return nil, badRequest("%s: %v", alg, err)
	}
	if _, err := inst.Validate(alloc); err != nil {
		return nil, fmt.Errorf("internal: produced infeasible allocation: %w", err)
	}
	return &Response{
		Algorithm:    strings.ToLower(alg),
		Slots:        inst.T,
		Gamma:        inst.Gamma,
		DataMb:       core.ThroughputMb(alloc.Data),
		UpperBoundMb: core.ThroughputMb(inst.UpperBound()),
		SlotOwner:    alloc.SlotOwner,
		EnergyUsed:   inst.EnergyUsed(alloc),
		ElapsedMs:    float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}
