package srv

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mobisink/internal/energy"
	"mobisink/internal/jobs"
	"mobisink/internal/network"
)

// TestJobCancelAbortsSolver is the end-to-end proof that DELETE
// /v1/jobs/{id} aborts a solve in flight: with a single worker, a
// deliberately expensive request (large network, FPTAS at a tiny ε) is
// canceled mid-solve, and a subsequent cheap job must then complete far
// sooner than the expensive solve would have taken — which can only
// happen if the cancellation actually unwound the solver and freed the
// worker slot.
func TestJobCancelAbortsSolver(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive: the race detector slows the solve unpredictably")
	}
	if testing.Short() {
		t.Skip("runs a deliberately expensive solve")
	}
	dep, err := network.Generate(network.Params{N: 300, PathLength: 10000, MaxOffset: 180, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	if err := dep.AssignSteadyStateBudgets(energy.PaperSolar(energy.Sunny), 3*2000, 0.5, rng); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Mux())
	t.Cleanup(ts.Close)

	slow := Request{
		Deployment: *dep, Speed: 5, SlotLen: 1,
		Algorithm: "offline_appro", ForceFPTAS: true, Eps: 0.0004,
	}
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: slow})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow job status %d", resp.StatusCode)
	}
	slowID := decodeBody[JobAccepted](t, resp).ID

	waitState := func(id string, want func(jobs.State) bool, deadline time.Duration) jobs.Status {
		t.Helper()
		for start := time.Now(); time.Since(start) < deadline; {
			r := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, id), nil)
			if r.StatusCode != http.StatusOK {
				t.Fatalf("job %s status %d", id, r.StatusCode)
			}
			st := decodeBody[jobs.Status](t, r)
			if want(st.State) {
				return st
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %s did not reach wanted state in %v", id, deadline)
		return jobs.Status{}
	}

	waitState(slowID, func(s jobs.State) bool { return s == jobs.StateRunning }, 10*time.Second)
	time.Sleep(50 * time.Millisecond) // let it get well into the sweep

	canceled := time.Now()
	resp = doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, slowID), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	st := waitState(slowID, func(s jobs.State) bool { return s.Terminal() }, 10*time.Second)
	if st.State != jobs.StateCanceled {
		t.Fatalf("slow job ended %q, want canceled", st.State)
	}

	// The cheap job can only run once the canceled solver has returned its
	// worker; the 10 s budget is far below the minutes the ε=4e-4 FPTAS
	// needs, so passing implies a genuine mid-solve abort.
	fast := Request{Deployment: *dep, Speed: 5, SlotLen: 1, Algorithm: "offline_greedy"}
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{Request: fast})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fast job status %d", resp.StatusCode)
	}
	fastID := decodeBody[JobAccepted](t, resp).ID
	waitState(fastID, func(s jobs.State) bool { return s == jobs.StateDone }, 10*time.Second)
	t.Logf("worker freed and cheap job done %v after cancel", time.Since(canceled))
}
