//go:build race

package srv

// raceEnabled gates timing-sensitive end-to-end tests that rely on the
// relative cost of a real solve, which the race detector distorts.
const raceEnabled = true
