package srv

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"mobisink/internal/cache"
	"mobisink/internal/jobs"
	"mobisink/internal/metrics"
	"mobisink/internal/solve"
)

// Config sizes the service's concurrency and memory knobs; zero values
// pick the defaults noted on each field.
type Config struct {
	// Workers is the solver pool size shared by the async and batch
	// paths; ≤ 0 means GOMAXPROCS.
	Workers int
	// QueueDepth is the maximum number of jobs waiting for a worker
	// before submissions are rejected with 429; ≤ 0 means 64.
	QueueDepth int
	// CacheEntries bounds the LRU result cache; ≤ 0 means 256.
	CacheEntries int
	// MaxBodyBytes caps request bodies (413 beyond it); ≤ 0 means 8 MiB.
	MaxBodyBytes int64
	// JobTimeout is the default per-job deadline for the async path;
	// ≤ 0 means no deadline. Individual submissions may set a shorter
	// one via timeout_ms.
	JobTimeout time.Duration
	// Metrics is the registry the server instruments and serves at
	// GET /metrics; nil means a fresh private registry (Server.Metrics
	// returns it either way).
	Metrics *metrics.Registry
	// RetryAttempts is how many times a server-side solver failure
	// (including a captured panic) is retried before counting against the
	// circuit breaker; ≤ 0 means 1.
	RetryAttempts int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt; ≤ 0 means 10ms.
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive server-side failure count that
	// opens the circuit breaker (503 until cooldown); ≤ 0 means 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// admitting a half-open probe; ≤ 0 means 5s.
	BreakerCooldown time.Duration
	// ShedFraction is the queue-utilization level (waiting jobs over
	// capacity) beyond which new allocations degrade to the greedy
	// solver; ≤ 0 means 0.8, ≥ 1 disables shedding.
	ShedFraction float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ShedFraction <= 0 {
		c.ShedFraction = 0.8
	}
	return c
}

// Server owns the allocation service's long-lived state: the job queue,
// the worker pool, and the result cache. Construct with New, expose over
// HTTP with Mux, and drain with Close on shutdown.
type Server struct {
	cfg   Config
	queue *jobs.Queue
	memo  *cache.Memo[string, *Response]
	reg   *metrics.Registry
	hm    *httpMetrics
	rm    *resilienceMetrics
	br    *breaker
	// run computes one allocation; it defaults to AllocateCtx and exists
	// so tests can observe or stall computations.
	run func(context.Context, *Request) (*Response, error)
}

// New returns a started server (its worker pool is live immediately).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	rm := newResilienceMetrics(reg)
	s := &Server{
		cfg:   cfg,
		queue: jobs.New(cfg.Workers, cfg.QueueDepth, jobs.WithMetrics(jobs.NewMetrics(reg))),
		memo:  cache.NewMemo[string, *Response](cfg.CacheEntries),
		reg:   reg,
		hm:    newHTTPMetrics(reg),
		rm:    rm,
		br:    newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, rm.breakerOpens),
		run:   AllocateCtx,
	}
	s.registerStateMetrics(reg)
	reg.GaugeFunc("srv_breaker_state",
		"Circuit breaker state: 0 closed, 1 half-open, 2 open.",
		s.br.stateValue)
	return s
}

// Metrics returns the server's registry (for embedders that want to add
// their own instruments or serve it elsewhere).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// NewMux returns a default-configured service routing table (the
// historical entry point, kept for embedders that only need the
// synchronous path).
func NewMux() *http.ServeMux { return New(Config{}).Mux() }

// Close stops accepting jobs and drains queued and running work until
// ctx expires; stragglers are canceled on expiry.
func (s *Server) Close(ctx context.Context) error { return s.queue.Close(ctx) }

// Mux returns the service's routing table. Every /v1 route is wrapped
// in the metrics middleware (request counts by status class, latency
// histograms, in-flight gauge) around the panic-recovery middleware, so
// a panicking handler is recorded as a 500 rather than a dropped
// connection; the registry itself is served at GET /metrics in the
// Prometheus text format.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(name, s.recoverMW(h)))
	}
	route("GET /v1/healthz", "/v1/healthz", s.handleHealthz) // GET also serves HEAD
	route("GET /v1/version", "/v1/version", s.handleVersion)
	route("POST /v1/allocate", "/v1/allocate", s.handleAllocate)
	route("POST /v1/jobs", "/v1/jobs", s.handleJobSubmit)
	route("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobGet)
	route("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobCancel)
	route("POST /v1/batch", "/v1/batch", s.handleBatch)
	mux.Handle("GET /metrics", s.reg.Handler())
	return mux
}

// cacheKey canonicalizes a request into the cache/single-flight key: the
// SHA-256 of its JSON encoding with the algorithm default applied, so
// "" and "offline_appro" address the same entry. Struct field order
// makes the encoding deterministic.
func cacheKey(req *Request) (string, error) {
	c := *req
	if c.Algorithm == "" {
		c.Algorithm = "offline_appro"
	}
	b, err := json.Marshal(&c)
	if err != nil {
		return "", fmt.Errorf("srv: canonicalize request: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// compute runs one allocation through the result cache: repeats are
// served from the LRU and concurrent identical requests share a single
// solver run. Errors are never cached. The context belongs to the caller
// that initiated the flight (job or HTTP request); a follower of the
// single-flight may therefore observe the initiator's cancellation error,
// which is not cached and clears on retry.
//
// Under queue saturation the request is degraded to the cheap greedy
// solver before the cache key is computed, so degraded results live under
// the degraded algorithm's own entry and never shadow primary results.
// The solver invocation itself goes through the hardened path (breaker,
// retry, panic capture) in resilience.go.
func (s *Server) compute(ctx context.Context, req *Request) (resp *Response, cached bool, err error) {
	if s.shouldShed() {
		if cheap := degradedAlgorithm(req.Algorithm, req.DataCaps != nil); cheap != "" {
			c := *req
			c.Algorithm = cheap
			req = &c
			s.rm.shed.Inc()
		}
	}
	key, err := cacheKey(req)
	if err != nil {
		return nil, false, err
	}
	resp, err, cached = s.memo.Do(key, func() (*Response, error) { return s.invoke(ctx, req) })
	return resp, cached, err
}

// decode reads a JSON body into dst, enforcing the body-size cap and
// rejecting unknown fields.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return &httpError{http.StatusBadRequest, "bad json: " + err.Error()}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps service errors onto HTTP statuses: httpError carries
// its own code, queue saturation is 429, unknown job ids are 404,
// anything else is a 500.
func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		http.Error(w, he.msg, he.code)
	case errors.Is(err, jobs.ErrQueueFull):
		http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
	case errors.Is(err, jobs.ErrClosed):
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	case errors.Is(err, jobs.ErrUnknownJob):
		http.Error(w, "unknown job", http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Health is the GET /v1/healthz payload.
type Health struct {
	Status string `json:"status"` // "ok" or "unavailable"
	Reason string `json:"reason,omitempty"`
}

// handleHealthz reports readiness, not mere liveness: a server that would
// fail-fast or reject the next allocation (open circuit breaker,
// saturated job queue) answers 503 with the reason, so load balancers
// rotate it out before clients hit the failure.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var reason string
	switch st := s.queue.Stats(); {
	case s.br.Open():
		reason = "circuit breaker open"
	case st.Queued >= s.queue.Depth():
		reason = "job queue saturated"
	}
	if reason != "" {
		writeJSON(w, http.StatusServiceUnavailable, Health{Status: "unavailable", Reason: reason})
		return
	}
	writeJSON(w, http.StatusOK, Health{Status: "ok"})
}

// VersionInfo is the /v1/version payload.
type VersionInfo struct {
	Service      string `json:"service"`
	Version      string `json:"version"`
	GoVersion    string `json:"go_version"`
	Workers      int    `json:"workers"`
	QueueDepth   int    `json:"queue_depth"`
	CacheEntries int    `json:"cache_entries"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				version = kv.Value
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, VersionInfo{
		Service:      "allocserver",
		Version:      version,
		GoVersion:    runtime.Version(),
		Workers:      s.queue.Workers(),
		QueueDepth:   s.queue.Depth(),
		CacheEntries: s.cfg.CacheEntries,
	})
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, cached, err := s.compute(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, resp)
}

// JobRequest is the POST /v1/jobs payload: an allocation request plus an
// optional per-job deadline.
type JobRequest struct {
	Request Request `json:"request"`
	// TimeoutMs bounds this job's running time; 0 inherits the server
	// default (Config.JobTimeout).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// JobAccepted is the POST /v1/jobs success payload.
type JobAccepted struct {
	ID    string     `json:"id"`
	State jobs.State `json:"state"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var jr JobRequest
	if err := s.decode(w, r, &jr); err != nil {
		writeError(w, err)
		return
	}
	var opts []jobs.Option
	switch {
	case jr.TimeoutMs > 0:
		opts = append(opts, jobs.WithTimeout(time.Duration(jr.TimeoutMs)*time.Millisecond))
	case s.cfg.JobTimeout > 0:
		opts = append(opts, jobs.WithTimeout(s.cfg.JobTimeout))
	}
	req := jr.Request
	id, err := s.queue.Submit(func(ctx context.Context) (any, error) {
		// ctx is the job's context: canceling the job (timeout or
		// DELETE /v1/jobs/{id}) aborts the solver mid-search and frees
		// the worker.
		resp, _, err := s.compute(ctx, &req)
		if err != nil {
			return nil, err
		}
		return resp, nil
	}, opts...)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, JobAccepted{ID: id, State: jobs.StateQueued})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, jobs.ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.queue.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// BatchRequest is the POST /v1/batch payload: N independent allocation
// requests fanned across the worker pool.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchItem is one batch result, in the same position as its request.
type BatchItem struct {
	OK     bool      `json:"ok"`
	Result *Response `json:"result,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/batch payload: results in input order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var br BatchRequest
	if err := s.decode(w, r, &br); err != nil {
		writeError(w, err)
		return
	}
	if len(br.Requests) == 0 {
		writeError(w, badRequest("batch needs at least one request"))
		return
	}
	solve.ObserveBatchSize(len(br.Requests))
	// Fan the batch across the shared pool as ordinary jobs, so batch
	// work obeys the same backpressure as /v1/jobs: if the queue cannot
	// hold the whole batch, roll back and reject with 429 rather than
	// block the handler.
	ids := make([]string, len(br.Requests))
	for i := range br.Requests {
		req := br.Requests[i]
		id, err := s.queue.Submit(func(ctx context.Context) (any, error) {
			resp, _, err := s.compute(ctx, &req)
			if err != nil {
				return nil, err
			}
			return resp, nil
		})
		if err != nil {
			for _, prev := range ids[:i] {
				_, _ = s.queue.Cancel(prev)
			}
			writeError(w, err)
			return
		}
		ids[i] = id
	}
	out := BatchResponse{Results: make([]BatchItem, len(ids))}
	for i, id := range ids {
		st, err := s.queue.Wait(r.Context(), id)
		if err != nil { // client went away; abandon politely
			for _, rest := range ids[i:] {
				_, _ = s.queue.Cancel(rest)
			}
			return
		}
		switch st.State {
		case jobs.StateDone:
			out.Results[i] = BatchItem{OK: true, Result: st.Result.(*Response)}
		default:
			out.Results[i] = BatchItem{Error: st.Err}
		}
	}
	writeJSON(w, http.StatusOK, out)
}
