package srv

import (
	"bufio"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"mobisink/internal/metrics"
)

// scrape fetches and returns the /metrics body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)$`)
)

// validatePrometheus asserts body is well-formed Prometheus text
// exposition format: every line is a HELP/TYPE comment or a sample,
// every sample's family was TYPE-declared, histogram buckets are
// cumulative and end at +Inf == _count.
func validatePrometheus(t *testing.T, body string) {
	t.Helper()
	types := map[string]string{}
	type histState struct {
		lastCum  float64
		infSeen  bool
		count    float64
		hasCount bool
		inf      float64
	}
	hists := map[string]*histState{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case line == "":
			t.Fatalf("line %d: empty line", ln+1)
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Fatalf("line %d: bad HELP: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, m[1])
			}
			types[m[1]] = m[2]
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad sample: %q", ln+1, line)
			}
			name, labels, valStr := m[1], m[2], m[3]
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if trimmed, ok := strings.CutSuffix(name, suffix); ok {
					if _, isHist := types[trimmed]; isHist {
						base = trimmed
						break
					}
				}
			}
			kind, declared := types[base]
			if !declared {
				t.Fatalf("line %d: sample %s without TYPE declaration", ln+1, name)
			}
			val, err := strconv.ParseFloat(strings.Replace(valStr, "Inf", "inf", 1), 64)
			if err != nil && !strings.Contains(valStr, "Inf") && valStr != "NaN" {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
			if kind == "histogram" {
				hs := hists[base+stripLe(labels)]
				if hs == nil {
					hs = &histState{}
					hists[base+stripLe(labels)] = hs
				}
				switch {
				case strings.HasSuffix(name, "_bucket"):
					if val+1e-9 < hs.lastCum {
						t.Fatalf("line %d: non-cumulative bucket %q (%v < %v)", ln+1, line, val, hs.lastCum)
					}
					hs.lastCum = val
					if strings.Contains(labels, `le="+Inf"`) {
						hs.infSeen = true
						hs.inf = val
					}
				case strings.HasSuffix(name, "_count"):
					hs.count = val
					hs.hasCount = true
				}
			}
		}
	}
	for series, hs := range hists {
		if !hs.infSeen {
			t.Errorf("histogram %s: no +Inf bucket", series)
		}
		if !hs.hasCount {
			t.Errorf("histogram %s: no _count", series)
		} else if hs.inf != hs.count {
			t.Errorf("histogram %s: +Inf bucket %v != count %v", series, hs.inf, hs.count)
		}
	}
	if len(types) == 0 {
		t.Fatal("no metric families exposed")
	}
}

// stripLe removes the le label so all buckets of one histogram series
// share a key.
func stripLe(labels string) string {
	out := regexp.MustCompile(`,?le="(?:[^"\\]|\\.)*"`).ReplaceAllString(labels, "")
	if out == "{}" {
		return ""
	}
	return strings.Replace(out, "{,", "{", 1)
}

// TestMetricsEndpointFormat scrapes a live server and validates the
// exposition, before and after traffic.
func TestMetricsEndpointFormat(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4}, blockingRun(&calls, nil))
	validatePrometheus(t, scrape(t, ts.URL))

	// Drive every route at least once.
	doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", Request{Deployment: stubDep, Speed: 5, SlotLen: 1})
	acc := decodeBody[JobAccepted](t, doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		JobRequest{Request: Request{Deployment: stubDep, Speed: 6, SlotLen: 1}}))
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+acc.ID, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	doJSON(t, http.MethodPost, ts.URL+"/v1/batch",
		BatchRequest{Requests: []Request{{Deployment: stubDep, Speed: 7, SlotLen: 1}}})
	validatePrometheus(t, scrape(t, ts.URL))
}

// TestMetricsCountTraffic is the acceptance check: after requests, the
// HTTP counters, latency histograms, queue counters, and cache counters
// are all nonzero and consistent.
func TestMetricsCountTraffic(t *testing.T) {
	var calls atomic.Int64
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4, CacheEntries: 8}, blockingRun(&calls, nil))

	req := Request{Deployment: stubDep, Speed: 5, SlotLen: 1}
	doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", req) // miss
	doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", req) // hit
	acc := decodeBody[JobAccepted](t, doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		JobRequest{Request: Request{Deployment: stubDep, Speed: 9, SlotLen: 1}}))
	waitForState(t, ts.URL, acc.ID, "done")

	snap := s.Metrics().Snapshot()
	checks := []struct {
		key  string
		want float64
	}{
		{`http_requests_total{route="/v1/allocate",code="2xx"}`, 2},
		{`http_requests_total{route="/v1/jobs",code="2xx"}`, 1},
		{`jobs_submitted_total`, 1},
		{`jobs_transitions_total{state="queued"}`, 1},
		{`jobs_transitions_total{state="done"}`, 1},
		{`cache_hits_total`, 1},
	}
	for _, c := range checks {
		if got := snap.Get(c.key); got != c.want {
			t.Errorf("%s = %v, want %v", c.key, got, c.want)
		}
	}
	for _, positive := range []string{
		`http_request_seconds_count{route="/v1/allocate"}`,
		`jobs_wait_seconds_count`,
		`jobs_run_seconds_count`,
		`cache_misses_total`,
		`jobs_workers`,
		`jobs_queue_capacity`,
	} {
		if got := snap.Get(positive); got <= 0 {
			t.Errorf("%s = %v, want > 0", positive, got)
		}
	}
	// Status-class labeling: a bad request lands in 4xx.
	doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", map[string]any{"nope": 1})
	if got := s.Metrics().Snapshot().Get(`http_requests_total{route="/v1/allocate",code="4xx"}`); got != 1 {
		t.Errorf("4xx counter = %v, want 1", got)
	}
}

// TestQueueRejectionMetrics drives the queue to saturation and asserts
// the rejection counter moves with the 429s.
func TestQueueRejectionMetrics(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, blockingRun(&calls, gate))
	defer close(gate)

	rejected := 0
	for i := 0; i < 8; i++ {
		resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
			JobRequest{Request: Request{Deployment: stubDep, Speed: float64(i + 1), SlotLen: 1}})
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("expected at least one 429")
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Get(`jobs_rejected_total{reason="full"}`); got != float64(rejected) {
		t.Errorf(`jobs_rejected_total{reason="full"} = %v, want %v`, got, rejected)
	}
	if got := snap.Get(`http_requests_total{route="/v1/jobs",code="4xx"}`); got != float64(rejected) {
		t.Errorf("4xx on /v1/jobs = %v, want %v", got, rejected)
	}
}

// TestSharedRegistryAcrossServers ensures a caller-supplied registry is
// used as-is (allocserver wires metrics.Default) and Server.Metrics
// returns it.
func TestSharedRegistryAcrossServers(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Metrics: reg}, blockingRun(new(atomic.Int64), nil))
	if s.Metrics() != reg {
		t.Fatal("server did not adopt the supplied registry")
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if got := reg.Snapshot().Get(`http_requests_total{route="/v1/healthz",code="2xx"}`); got != 1 {
		t.Fatalf("healthz counter on shared registry = %v, want 1", got)
	}
}

// waitForState polls a job until it reaches the wanted state.
func waitForState(t *testing.T, base, id, want string) {
	t.Helper()
	for i := 0; i < 200; i++ {
		resp := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil)
		st := decodeBody[map[string]any](t, resp)
		if fmt.Sprint(st["state"]) == want {
			return
		}
	}
	t.Fatalf("job %s never reached %s", id, want)
}
