package srv

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mobisink/internal/energy"
	"mobisink/internal/network"
)

func testDeployment(t *testing.T, n int) network.Deployment {
	t.Helper()
	dep, err := network.Generate(network.Params{N: n, PathLength: 2000, MaxOffset: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if err := dep.AssignSteadyStateBudgets(energy.PaperSolar(energy.Sunny), 3*400, 0.5, rng); err != nil {
		t.Fatal(err)
	}
	return *dep
}

func postAllocate(t *testing.T, srv *httptest.Server, req Request) (*Response, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(NewMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAllocateAllAlgorithms(t *testing.T) {
	srv := httptest.NewServer(NewMux())
	defer srv.Close()
	dep := testDeployment(t, 40)
	for _, alg := range []string{
		"offline_appro", "offline_greedy", "offline_sequential",
		"online_appro", "online_greedy", "online_sequential",
	} {
		out, resp := postAllocate(t, srv, Request{
			Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: alg,
		})
		if out == nil {
			t.Fatalf("%s: status %d", alg, resp.StatusCode)
		}
		if out.Algorithm != alg || out.DataMb <= 0 || len(out.SlotOwner) != out.Slots {
			t.Errorf("%s: bad response %+v", alg, out)
		}
		if out.DataMb > out.UpperBoundMb+1e-6 {
			t.Errorf("%s: data above upper bound", alg)
		}
		if len(out.EnergyUsed) != len(dep.Sensors) {
			t.Errorf("%s: energy vector wrong length", alg)
		}
	}
	// Matching algorithms need fixed power.
	for _, alg := range []string{"offline_maxmatch", "online_maxmatch"} {
		out, resp := postAllocate(t, srv, Request{
			Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: alg, FixedPower: 0.3,
		})
		if out == nil {
			t.Fatalf("%s: status %d", alg, resp.StatusCode)
		}
		if out.DataMb <= 0 {
			t.Errorf("%s: no data", alg)
		}
	}
}

func TestAllocateDataCaps(t *testing.T) {
	srv := httptest.NewServer(NewMux())
	defer srv.Close()
	dep := testDeployment(t, 30)
	caps := make([]float64, 30)
	for i := range caps {
		caps[i] = 50e3
	}
	out, resp := postAllocate(t, srv, Request{
		Deployment: dep, Speed: 5, SlotLen: 1,
		Algorithm: "offline_sequential", DataCaps: caps,
	})
	if out == nil {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.DataMb > 30*0.05+1e-9 {
		t.Errorf("collected %v Mb above total caps", out.DataMb)
	}
}

func TestAllocateErrors(t *testing.T) {
	srv := httptest.NewServer(NewMux())
	defer srv.Close()
	dep := testDeployment(t, 10)

	cases := []struct {
		name string
		req  Request
		code int
	}{
		{"zero speed", Request{Deployment: dep, SlotLen: 1}, 400},
		{"unknown alg", Request{Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: "nope"}, 400},
		{"maxmatch multi-rate", Request{Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: "offline_maxmatch"}, 400},
		{"bad caps", Request{Deployment: dep, Speed: 5, SlotLen: 1, DataCaps: []float64{1}}, 400},
		{"negative fixed power", Request{Deployment: dep, Speed: 5, SlotLen: 1, FixedPower: -1}, 200}, // 0/neg = multi-rate... -1 ignored
	}
	for _, c := range cases {
		out, resp := postAllocate(t, srv, c.req)
		if c.code == 200 && out == nil {
			t.Errorf("%s: status %d, want 200", c.name, resp.StatusCode)
		}
		if c.code != 200 && resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}
	// Method and body handling.
	resp, err := http.Get(srv.URL + "/v1/allocate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/allocate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/allocate", "application/json", strings.NewReader(`{"surprise": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d", resp.StatusCode)
	}
}

// The service must be deterministic: identical requests, identical bytes.
func TestAllocateDeterministic(t *testing.T) {
	dep := testDeployment(t, 25)
	req := Request{Deployment: dep, Speed: 5, SlotLen: 1, Algorithm: "online_appro"}
	a, err := Allocate(&req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Allocate(&req)
	if err != nil {
		t.Fatal(err)
	}
	if a.DataMb != b.DataMb {
		t.Errorf("non-deterministic: %v vs %v", a.DataMb, b.DataMb)
	}
	for j := range a.SlotOwner {
		if a.SlotOwner[j] != b.SlotOwner[j] {
			t.Fatalf("slot %d differs", j)
		}
	}
}
