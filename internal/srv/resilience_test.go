package srv

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mobisink/internal/jobs"
	"mobisink/internal/metrics"
)

func fakeResponse(req *Request) *Response {
	return &Response{Algorithm: req.Algorithm, Slots: 1, SlotOwner: []int{-1}}
}

// stubReq builds a decodable request (Deployment validates on unmarshal,
// so even stubbed solvers need a real one); eps only differentiates cache
// keys.
func stubReq(t *testing.T, alg string, eps float64) *Request {
	t.Helper()
	return &Request{Deployment: testDeployment(t, 4), Speed: 1, SlotLen: 1, Algorithm: alg, Eps: eps}
}

func waitJob(t *testing.T, url, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp := doJSON(t, http.MethodGet, url+"/v1/jobs/"+id, nil)
		var st jobs.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Status{}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(2, time.Second, metrics.NewRegistry().Counter("opens_total", ""))
	b.now = func() time.Time { return now }
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
	b.Failure()
	if !b.Allow() {
		t.Fatal("one failure under threshold 2 opened the breaker")
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("threshold failures did not open the breaker")
	}
	if !b.Open() {
		t.Fatal("Open() disagrees with Allow()")
	}
	// Before cooldown: still failing fast.
	now = now.Add(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	// After cooldown: exactly one half-open probe.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// Probe fails: re-open for another full cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("failed probe did not re-open")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker never recovered")
	}
	// Neutral outcome returns the probe slot without closing.
	b.Neutral()
	if !b.Allow() {
		t.Fatal("neutral probe outcome lost the probe slot")
	}
	b.Success()
	if !b.Allow() || b.Open() {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestDegradedAlgorithmMapping(t *testing.T) {
	cases := []struct {
		alg    string
		capped bool
		want   string
	}{
		{"", false, "offline_greedy"},
		{"offline_appro", false, "offline_greedy"},
		{"Offline_MaxMatch", false, "offline_greedy"},
		{"online_appro", false, "online_greedy"},
		{"online_greedy", false, ""},
		{"offline_greedy", false, ""},
		{"offline_appro", true, "offline_sequential"},
		{"online_sequential", true, ""},
	}
	for _, c := range cases {
		if got := degradedAlgorithm(c.alg, c.capped); got != c.want {
			t.Errorf("degradedAlgorithm(%q, %v) = %q, want %q", c.alg, c.capped, got, c.want)
		}
	}
}

// TestHandlerPanicRecovered drives a panic through the full middleware
// stack (metrics around recovery) and expects a 500 plus both counters.
func TestHandlerPanicRecovered(t *testing.T) {
	s := New(Config{})
	defer closeServer(t, s)
	h := s.instrument("/boom", s.recoverMW(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp := doJSON(t, http.MethodGet, ts.URL, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Get("srv_panics_recovered_total"); got != 1 {
		t.Errorf("srv_panics_recovered_total = %v, want 1", got)
	}
	if got := snap.Get(`http_requests_total{route="/boom",code="5xx"}`); got != 1 {
		t.Errorf("5xx counter = %v, want 1", got)
	}
}

// TestRetryRecoversTransientFailure: the first invocation fails, the
// retry succeeds, the client never notices.
func TestRetryRecoversTransientFailure(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	s, ts := newTestServer(t, Config{RetryAttempts: 2, RetryBackoff: time.Millisecond},
		func(req *Request) (*Response, error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls == 1 {
				return nil, errors.New("transient solver wobble")
			}
			return fakeResponse(req), nil
		})
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", stubReq(t, "", 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := s.Metrics().Snapshot().Get("srv_solver_retries_total"); got != 1 {
		t.Errorf("srv_solver_retries_total = %v, want 1", got)
	}
}

// TestClientErrorsNeitherRetryNorTrip: a 400 must pass through exactly
// once and leave the breaker closed.
func TestClientErrorsNeitherRetryNorTrip(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	s, ts := newTestServer(t, Config{RetryAttempts: 3, RetryBackoff: time.Millisecond, BreakerThreshold: 1},
		func(req *Request) (*Response, error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			return nil, badRequest("no such deployment")
		})
	for i := 0; i < 3; i++ {
		resp := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate",
			stubReq(t, "", float64(i+1))) // distinct cache keys
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	}
	mu.Lock()
	if calls != 3 {
		t.Errorf("solver called %d times, want 3 (no retries on client errors)", calls)
	}
	mu.Unlock()
	if s.br.Open() {
		t.Error("client errors tripped the breaker")
	}
}

// TestBreakerOpensAndHealthzReports: consecutive server-side failures
// open the circuit; requests fail fast with 503 and healthz flips to 503
// with the reason, then everything recovers after the cooldown.
func TestBreakerOpensAndHealthzReports(t *testing.T) {
	var mu sync.Mutex
	healthy := false
	s, ts := newTestServer(t, Config{
		RetryAttempts: 1, RetryBackoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
	}, func(req *Request) (*Response, error) {
		mu.Lock()
		defer mu.Unlock()
		if !healthy {
			return nil, errors.New("solver backend down")
		}
		return fakeResponse(req), nil
	})
	for i := 0; i < 2; i++ {
		resp := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate",
			stubReq(t, "", float64(i+1)))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d, want 500", i, resp.StatusCode)
		}
	}
	// Circuit open: fail fast with 503, healthz agrees.
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", stubReq(t, "", 9))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker returned %d, want 503", resp.StatusCode)
	}
	hz := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d with open breaker, want 503", hz.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "unavailable" || h.Reason != "circuit breaker open" {
		t.Fatalf("healthz payload %+v", h)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Get("srv_breaker_open_total"); got != 1 {
		t.Errorf("srv_breaker_open_total = %v, want 1", got)
	}
	if got := snap.Get("srv_breaker_state"); got != breakerOpen {
		t.Errorf("srv_breaker_state = %v, want %d", got, breakerOpen)
	}
	// Backend recovers; after the cooldown one probe closes the circuit.
	mu.Lock()
	healthy = true
	mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/allocate", stubReq(t, "", 10))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after cooldown returned %d, want 200", resp.StatusCode)
	}
	if hz := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil); hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after recovery, want 200", hz.StatusCode)
	}
}

// TestLoadSheddingDegradesToGreedy saturates the queue with slow jobs
// and checks a new allocation is transparently downgraded to the greedy
// solver — and that healthz reports saturation once the queue is full.
func TestLoadSheddingDegradesToGreedy(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, ShedFraction: 0.5},
		func(req *Request) (*Response, error) {
			if req.Algorithm == "slow" {
				<-release
			}
			return fakeResponse(req), nil
		})
	// One job occupies the worker, two more fill the queue to capacity.
	var ids []string
	for i := 0; i < 3; i++ {
		resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", &JobRequest{
			Request: *stubReq(t, "slow", float64(i+1)),
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		var acc JobAccepted
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, acc.ID)
	}
	waitFor(t, func() bool { return s.queue.Stats().Queued == 2 })

	// Queued 2 ≥ 0.5 × depth 2: shedding active, queue full.
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate",
		stubReq(t, "offline_appro", 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shed allocate status %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "offline_greedy" {
		t.Fatalf("saturated allocate solved %q, want offline_greedy", out.Algorithm)
	}
	if got := s.Metrics().Snapshot().Get("srv_load_shed_total"); got != 1 {
		t.Errorf("srv_load_shed_total = %v, want 1", got)
	}
	hz := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d with saturated queue, want 503", hz.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Reason != "job queue saturated" {
		t.Fatalf("healthz reason %q", h.Reason)
	}

	close(release) // frees every blocked job
	for _, id := range ids {
		if st := waitJob(t, ts.URL, id); st.State != jobs.StateDone {
			t.Fatalf("slow job %s ended %s: %s", id, st.State, st.Err)
		}
	}
	waitFor(t, func() bool {
		hz := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
		return hz.StatusCode == http.StatusOK
	})
}

// TestChaosServingE2E is the end-to-end chaos check (run under the race
// detector by `make test-fault`): a solver panic must come back as a
// plain 500 — on both the synchronous and async paths — while the shared
// worker pool keeps serving concurrent and subsequent jobs untouched.
func TestChaosServingE2E(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 2, RetryAttempts: 1, RetryBackoff: time.Millisecond,
		BreakerThreshold: 100, // stay closed: this test is about panics, not the breaker
	}, func(req *Request) (*Response, error) {
		if req.Algorithm == "panic" {
			panic("solver hit a poisoned instance")
		}
		return fakeResponse(req), nil
	})

	// Synchronous path: panic → 500, not a dropped connection.
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/allocate",
		stubReq(t, "panic", 0))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking allocate: status %d, want 500", resp.StatusCode)
	}

	// Async path: a panicking job fails cleanly while a mix of good and
	// poisoned jobs runs concurrently through the same pool.
	const good, bad = 8, 3
	var ids [good + bad]string
	for i := range ids {
		alg := "ok"
		if i%4 == 3 {
			alg = "panic"
		}
		resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", &JobRequest{
			Request: *stubReq(t, alg, float64(i+1)),
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		var acc JobAccepted
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		ids[i] = acc.ID
	}
	for i, id := range ids {
		st := waitJob(t, ts.URL, id)
		if i%4 == 3 {
			if st.State != jobs.StateFailed {
				t.Fatalf("poisoned job %d ended %s, want failed", i, st.State)
			}
			continue
		}
		if st.State != jobs.StateDone {
			t.Fatalf("good job %d ended %s: %s", i, st.State, st.Err)
		}
	}

	// The pool survived: a fresh synchronous request still works.
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/allocate",
		stubReq(t, "ok", 99))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos allocate: status %d, want 200", resp.StatusCode)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Get("srv_solver_panics_total"); got < 2 {
		t.Errorf("srv_solver_panics_total = %v, want ≥ 2", got)
	}
	if got := snap.Get("srv_panics_recovered_total"); got != 0 {
		t.Errorf("handler-level panics = %v, want 0 (runSafe must capture first)", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

func closeServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Errorf("close: %v", err)
	}
}
