package matching

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// groupedEdge mirrors the solver's edge for the brute-force reference.
type groupedEdge struct {
	l, r, g int
	w       float64
}

// bruteGrouped enumerates every edge subset and returns the best total
// weight among those satisfying right exclusivity, left capacities, and
// ≤ 1 matched edge per (left, group) pair.
func bruteGrouped(nl, nr int, caps []int, edges []groupedEdge) float64 {
	best := 0.0
	n := len(edges)
	for mask := 0; mask < 1<<n; mask++ {
		rightUsed := make([]bool, nr)
		deg := make([]int, nl)
		groupUsed := map[[2]int]bool{}
		total := 0.0
		ok := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			e := edges[i]
			if rightUsed[e.r] || deg[e.l] >= caps[e.l] {
				ok = false
				break
			}
			if e.g >= 0 {
				key := [2]int{e.l, e.g}
				if groupUsed[key] {
					ok = false
					break
				}
				groupUsed[key] = true
			}
			rightUsed[e.r] = true
			deg[e.l]++
			total += e.w
		}
		if ok && total > best {
			best = total
		}
	}
	return best
}

// TestGroupedAgainstBruteForce: the gadget-node flow must be exact on
// random graphs with conflict groups.
func TestGroupedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(3)
		nr := 1 + rng.Intn(5)
		caps := make([]int, nl)
		g, _ := NewGraph(nl, nr)
		for l := range caps {
			caps[l] = 1 + rng.Intn(3)
			_ = g.SetLeftCap(l, caps[l])
		}
		var edges []groupedEdge
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() >= 0.6 {
					continue
				}
				w := math.Floor(rng.Float64()*100) / 10
				grp := -1
				if rng.Float64() < 0.7 {
					grp = rng.Intn(3) // few groups → frequent collisions
				}
				edges = append(edges, groupedEdge{l, r, grp, w})
				var err error
				if grp >= 0 {
					err = g.AddEdgeInGroup(l, r, w, grp)
				} else {
					err = g.AddEdge(l, r, w)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		if len(edges) > 14 {
			continue // keep the 2^n brute force cheap
		}
		want := bruteGrouped(nl, nr, caps, edges)
		res := g.MaxWeight()
		if math.Abs(res.Weight-want) > 1e-6 {
			t.Fatalf("trial %d: flow weight %v != brute %v (caps=%v edges=%+v)",
				trial, res.Weight, want, caps, edges)
		}
		validateGrouped(t, nl, caps, edges, res)
	}
}

// validateGrouped re-derives degrees, weight, and the group constraint
// from the reported matching.
func validateGrouped(t *testing.T, nl int, caps []int, edges []groupedEdge, res *Result) {
	t.Helper()
	deg := make([]int, nl)
	groupUsed := map[[2]int]bool{}
	total := 0.0
	for r, l := range res.RightMatch {
		if l == -1 {
			continue
		}
		// Attribute the match to the heaviest (l, r) edge — the one the
		// min-cost flow would route.
		bestW, bestG, found := 0.0, -1, false
		for _, e := range edges {
			if e.l == l && e.r == r && (!found || e.w > bestW) {
				bestW, bestG, found = e.w, e.g, true
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) has no edge", l, r)
		}
		if bestG >= 0 {
			key := [2]int{l, bestG}
			if groupUsed[key] {
				t.Fatalf("left %d matched twice in group %d", l, bestG)
			}
			groupUsed[key] = true
		}
		deg[l]++
		total += bestW
	}
	for l := range deg {
		if deg[l] > caps[l] {
			t.Fatalf("left %d over capacity: %d > %d", l, deg[l], caps[l])
		}
		if deg[l] != res.LeftDegree[l] {
			t.Fatalf("left degree mismatch at %d: %d vs %d", l, deg[l], res.LeftDegree[l])
		}
	}
	if math.Abs(total-res.Weight) > 1e-6 {
		t.Fatalf("weight mismatch: reported %v, edges sum to %v", res.Weight, total)
	}
}

// TestSingletonGroupsMatchUngrouped: when every (left, group) pair holds
// one edge, no gadget is built and the result must be identical — right
// matches and weight bits — to the same graph added via AddEdge. This is
// the K=1 parity property the fleet stack relies on.
func TestSingletonGroupsMatchUngrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		nl, nr := 1+rng.Intn(4), 1+rng.Intn(6)
		plain, _ := NewGraph(nl, nr)
		grouped, _ := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			c := 1 + rng.Intn(2)
			_ = plain.SetLeftCap(l, c)
			_ = grouped.SetLeftCap(l, c)
		}
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.5 {
					w := rng.Float64() * 10
					mustAdd(t, plain, l, r, w)
					// Group id = right node: unique per (l, group).
					if err := grouped.AddEdgeInGroup(l, r, w, r); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		p, g := plain.MaxWeight(), grouped.MaxWeight()
		if math.Float64bits(p.Weight) != math.Float64bits(g.Weight) {
			t.Fatalf("trial %d: grouped weight %v != plain %v", trial, g.Weight, p.Weight)
		}
		if !reflect.DeepEqual(p.RightMatch, g.RightMatch) {
			t.Fatalf("trial %d: grouped RightMatch differs from plain", trial)
		}
	}
}

func TestAddEdgeInGroupValidation(t *testing.T) {
	g, err := NewGraph(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeInGroup(0, 0, 1, -1); err == nil {
		t.Fatal("negative group accepted")
	}
	if err := g.AddEdgeInGroup(2, 0, 1, 0); err == nil {
		t.Fatal("out-of-range left node accepted")
	}
	if err := g.AddEdgeInGroup(0, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

// TestGroupForcesSplit: one left node with capacity 2 and two heavy edges
// in the same group must take only one of them plus the light ungrouped
// edge — the textbook gadget scenario.
func TestGroupForcesSplit(t *testing.T) {
	g, _ := NewGraph(1, 3)
	_ = g.SetLeftCap(0, 2)
	if err := g.AddEdgeInGroup(0, 0, 10, 7); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeInGroup(0, 1, 9, 7); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, g, 0, 2, 1)
	res := g.MaxWeight()
	if res.Weight != 11 {
		t.Fatalf("weight = %v, want 11 (10 from the group + 1 ungrouped)", res.Weight)
	}
	if res.RightMatch[0] != 0 || res.RightMatch[1] != -1 || res.RightMatch[2] != 0 {
		t.Fatalf("RightMatch = %v, want [0 -1 0]", res.RightMatch)
	}
}
