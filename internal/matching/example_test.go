package matching_test

import (
	"fmt"

	"mobisink/internal/matching"
)

// Two sensors compete for three time slots; the first may take two slots
// (it has energy for two transmissions — the paper's n'_i copies).
func ExampleGraph_MaxWeight() {
	g, _ := matching.NewGraph(2, 3)
	_ = g.SetLeftCap(0, 2)
	_ = g.AddEdge(0, 0, 250) // sensor 0 near the sink in slots 0-1
	_ = g.AddEdge(0, 1, 250)
	_ = g.AddEdge(0, 2, 19.2)
	_ = g.AddEdge(1, 1, 9.6)
	_ = g.AddEdge(1, 2, 250) // sensor 1 near in slot 2

	res := g.MaxWeight()
	fmt.Printf("weight=%.1f owners=%v\n", res.Weight, res.RightMatch)
	// Output: weight=750.0 owners=[0 0 1]
}
