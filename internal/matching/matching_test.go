package matching

import (
	"math"
	"math/rand"
	"testing"
)

// bruteMaxWeight enumerates degree-constrained matchings on tiny graphs.
func bruteMaxWeight(nl, nr int, leftCap []int, edges [][3]float64) float64 {
	best := 0.0
	// Each right node picks one of its incident edges or none.
	incident := make([][]int, nr)
	for ei, e := range edges {
		incident[int(e[1])] = append(incident[int(e[1])], ei)
	}
	deg := make([]int, nl)
	var dfs func(r int, w float64)
	dfs = func(r int, w float64) {
		if w > best {
			best = w
		}
		if r == nr {
			return
		}
		dfs(r+1, w) // leave r unmatched
		for _, ei := range incident[r] {
			l := int(edges[ei][0])
			if deg[l] < leftCap[l] && edges[ei][2] > 0 {
				deg[l]++
				dfs(r+1, w+edges[ei][2])
				deg[l]--
			}
		}
	}
	dfs(0, 0)
	return best
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(-1, 2); err == nil {
		t.Error("expected error for negative size")
	}
	g, err := NewGraph(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 0, 1); err == nil {
		t.Error("expected range error")
	}
	if err := g.AddEdge(0, -1, 1); err == nil {
		t.Error("expected range error")
	}
	if err := g.SetLeftCap(5, 1); err == nil {
		t.Error("expected range error")
	}
	if err := g.SetLeftCap(0, -1); err == nil {
		t.Error("expected negative-capacity error")
	}
}

func TestMaxWeightSimple(t *testing.T) {
	g, _ := NewGraph(2, 2)
	mustAdd(t, g, 0, 0, 10)
	mustAdd(t, g, 0, 1, 2)
	mustAdd(t, g, 1, 0, 8)
	mustAdd(t, g, 1, 1, 7)
	res := g.MaxWeight()
	if res.Weight != 17 { // 0-0 (10) + 1-1 (7)
		t.Fatalf("weight = %v, want 17", res.Weight)
	}
	if res.RightMatch[0] != 0 || res.RightMatch[1] != 1 {
		t.Errorf("matches = %v", res.RightMatch)
	}
	if res.LeftDegree[0] != 1 || res.LeftDegree[1] != 1 {
		t.Errorf("degrees = %v", res.LeftDegree)
	}
}

func TestMaxWeightSkipsBadEdges(t *testing.T) {
	g, _ := NewGraph(1, 2)
	mustAdd(t, g, 0, 0, -5)
	mustAdd(t, g, 0, 1, 0)
	res := g.MaxWeight()
	if res.Weight != 0 || res.RightMatch[0] != -1 || res.RightMatch[1] != -1 {
		t.Errorf("non-positive edges must not match: %+v", res)
	}
}

func TestMaxWeightCapacities(t *testing.T) {
	// One sensor with capacity 2 sees three slots.
	g, _ := NewGraph(1, 3)
	if err := g.SetLeftCap(0, 2); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, g, 0, 0, 5)
	mustAdd(t, g, 0, 1, 9)
	mustAdd(t, g, 0, 2, 7)
	res := g.MaxWeight()
	if res.Weight != 16 { // slots 1 and 2
		t.Fatalf("weight = %v, want 16", res.Weight)
	}
	if res.LeftDegree[0] != 2 {
		t.Errorf("degree = %d, want 2", res.LeftDegree[0])
	}
	// Zero capacity: nothing matched.
	g2, _ := NewGraph(1, 1)
	_ = g2.SetLeftCap(0, 0)
	mustAdd(t, g2, 0, 0, 5)
	if res := g2.MaxWeight(); res.Weight != 0 {
		t.Errorf("zero-capacity weight = %v", res.Weight)
	}
}

func TestMaxWeightAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		nl := 1 + rng.Intn(4)
		nr := 1 + rng.Intn(5)
		caps := make([]int, nl)
		g, _ := NewGraph(nl, nr)
		for l := range caps {
			caps[l] = 1 + rng.Intn(2)
			_ = g.SetLeftCap(l, caps[l])
		}
		var edges [][3]float64
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.6 {
					w := math.Floor(rng.Float64()*100) / 10
					edges = append(edges, [3]float64{float64(l), float64(r), w})
					mustAdd(t, g, l, r, w)
				}
			}
		}
		want := bruteMaxWeight(nl, nr, caps, edges)
		res := g.MaxWeight()
		if math.Abs(res.Weight-want) > 1e-6 {
			t.Fatalf("trial %d: flow weight %v != brute %v (nl=%d nr=%d edges=%v caps=%v)",
				trial, res.Weight, want, nl, nr, edges, caps)
		}
		validateResult(t, g, res)
	}
}

func validateResult(t *testing.T, g *Graph, res *Result) {
	t.Helper()
	deg := make([]int, g.nL)
	total := 0.0
	for r, l := range res.RightMatch {
		if l == -1 {
			continue
		}
		found := false
		for _, e := range g.edges {
			if e.l == l && e.r == r {
				total += e.w
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) has no edge", l, r)
		}
		deg[l]++
	}
	for l := range deg {
		if deg[l] > g.leftCap[l] {
			t.Fatalf("left %d over capacity: %d > %d", l, deg[l], g.leftCap[l])
		}
		if deg[l] != res.LeftDegree[l] {
			t.Fatalf("left degree mismatch at %d", l)
		}
	}
	if math.Abs(total-res.Weight) > 1e-6 {
		t.Fatalf("weight mismatch: reported %v actual %v", res.Weight, total)
	}
}

func TestHungarianMatchesFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		nl := 1 + rng.Intn(6)
		nr := 1 + rng.Intn(6)
		w := make([][]float64, nl)
		g, _ := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			w[l] = make([]float64, nr)
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.7 {
					w[l][r] = math.Floor(rng.Float64()*100) / 10
					if w[l][r] > 0 {
						mustAdd(t, g, l, r, w[l][r])
					}
				}
			}
		}
		matchL, totalH, err := Hungarian(w)
		if err != nil {
			t.Fatal(err)
		}
		res := g.MaxWeight()
		if math.Abs(totalH-res.Weight) > 1e-6 {
			t.Fatalf("trial %d: hungarian %v != flow %v (w=%v)", trial, totalH, res.Weight, w)
		}
		// Validate the Hungarian matching itself.
		usedR := map[int]bool{}
		sum := 0.0
		for l, r := range matchL {
			if r == -1 {
				continue
			}
			if usedR[r] {
				t.Fatalf("right node %d matched twice", r)
			}
			usedR[r] = true
			sum += w[l][r]
		}
		if math.Abs(sum-totalH) > 1e-6 {
			t.Fatalf("hungarian reported %v but edges sum to %v", totalH, sum)
		}
	}
}

func TestHungarianEdgeCases(t *testing.T) {
	m, total, err := Hungarian(nil)
	if err != nil || len(m) != 0 || total != 0 {
		t.Errorf("empty: %v %v %v", m, total, err)
	}
	if _, _, err := Hungarian([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected ragged-matrix error")
	}
	// All-nonpositive weights: empty matching.
	m, total, err = Hungarian([][]float64{{-1, 0}, {0, -2}})
	if err != nil || total != 0 {
		t.Errorf("nonpositive: total = %v err = %v", total, err)
	}
	for _, r := range m {
		if r != -1 {
			t.Error("nonpositive weights must stay unmatched")
		}
	}
}

func TestHopcroftKarp(t *testing.T) {
	// Perfect matching exists on a 3×3 cycle-ish graph.
	adj := [][]int{{0, 1}, {1, 2}, {0, 2}}
	matchL, size, err := HopcroftKarp(adj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	seen := map[int]bool{}
	for l, r := range matchL {
		if r == -1 || seen[r] {
			t.Fatalf("invalid match %v", matchL)
		}
		ok := false
		for _, cand := range adj[l] {
			if cand == r {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("matched non-edge %d-%d", l, r)
		}
		seen[r] = true
	}
	// Range validation.
	if _, _, err := HopcroftKarp([][]int{{5}}, 2); err == nil {
		t.Error("expected range error")
	}
	// Empty graph.
	if _, size, _ := HopcroftKarp(nil, 0); size != 0 {
		t.Error("empty graph must have empty matching")
	}
}

func TestHopcroftKarpMatchesFlowCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		nl := 1 + rng.Intn(8)
		nr := 1 + rng.Intn(8)
		adj := make([][]int, nl)
		g, _ := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.4 {
					adj[l] = append(adj[l], r)
					mustAdd(t, g, l, r, 1) // unit weights → max weight = max cardinality
				}
			}
		}
		_, size, err := HopcroftKarp(adj, nr)
		if err != nil {
			t.Fatal(err)
		}
		res := g.MaxWeight()
		if math.Abs(res.Weight-float64(size)) > 1e-6 {
			t.Fatalf("trial %d: HK size %d != flow weight %v", trial, size, res.Weight)
		}
	}
}

// Sensor-copy equivalence (paper §VI): capacity c on a left node must equal
// c identical unit-capacity copies.
func TestCapacityEqualsCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		nl := 1 + rng.Intn(3)
		nr := 2 + rng.Intn(5)
		caps := make([]int, nl)
		g, _ := NewGraph(nl, nr)
		var wRows [][]float64
		for l := 0; l < nl; l++ {
			caps[l] = 1 + rng.Intn(3)
			_ = g.SetLeftCap(l, caps[l])
			row := make([]float64, nr)
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.7 {
					row[r] = math.Floor(rng.Float64()*50) / 10
					if row[r] > 0 {
						mustAdd(t, g, l, r, row[r])
					}
				}
			}
			for c := 0; c < caps[l]; c++ {
				wRows = append(wRows, row)
			}
		}
		_, totalCopies, err := Hungarian(wRows)
		if err != nil {
			t.Fatal(err)
		}
		res := g.MaxWeight()
		if math.Abs(totalCopies-res.Weight) > 1e-6 {
			t.Fatalf("trial %d: copies %v != capacities %v", trial, totalCopies, res.Weight)
		}
	}
}

func mustAdd(t *testing.T, g *Graph, l, r int, w float64) {
	t.Helper()
	if err := g.AddEdge(l, r, w); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMaxWeightOfflineScale(b *testing.B) {
	// Offline special case at n=600: ~48k edges, T=2000 slots.
	rng := rand.New(rand.NewSource(1))
	nl, nr := 600, 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, _ := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			_ = g.SetLeftCap(l, 6)
			start := rng.Intn(nr - 80)
			for r := start; r < start+80; r++ {
				_ = g.AddEdge(l, r, rng.Float64()*250)
			}
		}
		b.StartTimer()
		g.MaxWeight()
	}
}

func BenchmarkHungarian100(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	w := make([][]float64, 100)
	for i := range w {
		w[i] = make([]float64, 100)
		for j := range w[i] {
			w[i][j] = rng.Float64() * 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Hungarian(w); err != nil {
			b.Fatal(err)
		}
	}
}
