// Package matching provides maximum-weight bipartite matching, the engine of
// the special-case algorithms Offline_MaxMatch and Online_MaxMatch
// (paper §VI).
//
// The paper forms a bipartite graph G' with n'_i identical copies of each
// sensor node and runs a maximum weight matching. Identical copies are
// equivalent to a degree constraint, so the production solver here is a
// min-cost max-flow (successive shortest augmenting paths with Dijkstra and
// Johnson potentials) over the *uncopied* graph with per-left-node
// capacities — the same optimum, without inflating the node count. A classic
// O(n³) Hungarian algorithm and Hopcroft–Karp maximum-cardinality matching
// are provided for cross-validation and tests.
package matching

import (
	"context"
	"fmt"
	"math"
)

// Graph is a bipartite graph with nL left nodes (sensors), nR right nodes
// (time slots), per-left-node integer capacities, and weighted edges.
type Graph struct {
	nL, nR  int
	leftCap []int
	edges   []edge // as added
}

type edge struct {
	l, r int
	w    float64
	g    int // conflict group id scoped to l; -1 = unconstrained
}

// NewGraph creates a bipartite graph; every left node starts with capacity 1.
func NewGraph(nl, nr int) (*Graph, error) {
	if nl < 0 || nr < 0 {
		return nil, fmt.Errorf("matching: negative side size (%d, %d)", nl, nr)
	}
	caps := make([]int, nl)
	for i := range caps {
		caps[i] = 1
	}
	return &Graph{nL: nl, nR: nr, leftCap: caps}, nil
}

// SetLeftCap sets the degree capacity of left node l (the paper's n'_i
// sensor copies).
func (g *Graph) SetLeftCap(l, c int) error {
	if l < 0 || l >= g.nL {
		return fmt.Errorf("matching: left node %d out of range", l)
	}
	if c < 0 {
		return fmt.Errorf("matching: negative capacity %d", c)
	}
	g.leftCap[l] = c
	return nil
}

// AddEdge adds an edge between left node l and right node r with weight w.
// Non-positive-weight edges are legal but never matched.
func (g *Graph) AddEdge(l, r int, w float64) error {
	return g.addEdge(l, r, w, -1)
}

// AddEdgeInGroup adds an edge carrying a conflict group id: among all of
// left node l's edges sharing a group, at most one may be matched. Groups
// are scoped per left node — different left nodes may reuse the same id
// freely. This is the fleet constraint "a sensor talks to at most one
// sink per absolute time slot": right nodes are (sink, slot) pairs and
// the group id is the absolute slot. Groups with a single edge add no
// gadget node to the flow network, so graphs whose groups are all
// singletons (any K=1 instance) solve on exactly the legacy network.
func (g *Graph) AddEdgeInGroup(l, r int, w float64, group int) error {
	if group < 0 {
		return fmt.Errorf("matching: negative conflict group %d", group)
	}
	return g.addEdge(l, r, w, group)
}

func (g *Graph) addEdge(l, r int, w float64, group int) error {
	if l < 0 || l >= g.nL || r < 0 || r >= g.nR {
		return fmt.Errorf("matching: edge (%d,%d) out of range (%d×%d)", l, r, g.nL, g.nR)
	}
	g.edges = append(g.edges, edge{l, r, w, group})
	return nil
}

// Result is a maximum-weight degree-constrained matching.
type Result struct {
	// RightMatch[r] is the left node matched to right node r, or -1.
	RightMatch []int
	// LeftDegree[l] is the number of right nodes matched to left node l.
	LeftDegree []int
	// Weight is the total weight of matched edges.
	Weight float64
}

// MaxWeight computes a maximum-weight matching respecting left capacities
// via successive shortest augmenting paths. Runtime O(F·(E log V)) where F
// is the matching size.
func (g *Graph) MaxWeight() *Result {
	res, _ := g.MaxWeightCtx(context.Background())
	return res
}

// MaxWeightCtx is MaxWeight with cancellation: the context is polled once
// per augmenting path (each augmentation is one Dijkstra pass, the natural
// checkpoint granularity), returning ctx.Err() when the context is done.
//
// Conflict groups (AddEdgeInGroup) are enforced with a unit-capacity
// gadget node per (left, group) pair spliced between the left node and the
// group's right nodes: flow through the gadget is ≤ 1, so at most one of
// the group's edges can carry flow, and min-cost max-flow stays an exact
// oracle. Gadgets are only materialized for groups with ≥ 2 positive-weight
// edges; graphs without such groups build byte-identical legacy networks.
func (g *Graph) MaxWeightCtx(ctx context.Context) (*Result, error) {
	// Gadget ids in first-encounter order, one per (left, group) with ≥ 2
	// positive-weight edges.
	type lg struct{ l, g int }
	var groupCount map[lg]int
	for _, e := range g.edges {
		if e.g >= 0 && e.w > 0 {
			if groupCount == nil {
				groupCount = make(map[lg]int)
			}
			groupCount[lg{e.l, e.g}]++
		}
	}
	var gadgetID map[lg]int // (l, group) → gadget index in [0, nG)
	var gadgetOwner []int   // gadget index → owning left node
	if groupCount != nil {
		gadgetID = make(map[lg]int)
		for _, e := range g.edges {
			key := lg{e.l, e.g}
			if e.g < 0 || e.w <= 0 || groupCount[key] < 2 {
				continue
			}
			if _, ok := gadgetID[key]; ok {
				continue
			}
			gadgetID[key] = len(gadgetOwner)
			gadgetOwner = append(gadgetOwner, e.l)
		}
	}
	nG := len(gadgetOwner)

	// Flow network node ids: 0 = source, 1..nL = left, nL+1..nL+nG = gadgets,
	// nL+nG+1..nL+nG+nR = right, nL+nG+nR+1 = sink. Gadgets sit between the
	// left and right ranges so positive-capacity arcs still only go forward
	// in node order, preserving the DAG pass of initPotentials.
	n := g.nL + nG + g.nR + 2
	src, snk := 0, n-1
	rightBase := 1 + g.nL + nG
	f := newFlow(n)
	for l, c := range g.leftCap {
		if c > 0 {
			f.addArc(src, 1+l, c, 0)
		}
	}
	gadgetWired := make(map[lg]bool, nG)
	for _, e := range g.edges {
		if e.w <= 0 {
			continue
		}
		key := lg{e.l, e.g}
		gid, grouped := -1, false
		if e.g >= 0 {
			gid, grouped = gadgetID[key]
		}
		if !grouped {
			f.addArc(1+e.l, rightBase+e.r, 1, -e.w)
			continue
		}
		if !gadgetWired[key] {
			gadgetWired[key] = true
			f.addArc(1+e.l, 1+g.nL+gid, 1, 0)
		}
		f.addArc(1+g.nL+gid, rightBase+e.r, 1, -e.w)
	}
	for r := 0; r < g.nR; r++ {
		f.addArc(rightBase+r, snk, 1, 0)
	}
	if err := f.solve(ctx, src, snk); err != nil {
		return nil, err
	}

	res := &Result{
		RightMatch: make([]int, g.nR),
		LeftDegree: make([]int, g.nL),
	}
	for r := range res.RightMatch {
		res.RightMatch[r] = -1
	}
	// Recover matched edges: arcs into the right range with flow, issued
	// either directly from a left node or from one of its gadgets.
	record := func(l int, a *arc) {
		r := a.to - rightBase
		res.RightMatch[r] = l
		res.LeftDegree[l]++
		res.Weight += -a.cost
	}
	for l := 0; l < g.nL; l++ {
		for _, ai := range f.adj[1+l] {
			a := &f.arcs[ai]
			if a.to >= rightBase && a.to < snk && a.flow > 0 {
				record(l, a)
			}
		}
	}
	for gi, owner := range gadgetOwner {
		for _, ai := range f.adj[1+g.nL+gi] {
			a := &f.arcs[ai]
			if a.to >= rightBase && a.to < snk && a.flow > 0 {
				record(owner, a)
			}
		}
	}
	return res, nil
}

// flow is a small min-cost max-flow solver with float64 costs, successive
// shortest paths, and Johnson potentials (first potentials via DAG order —
// the network source→left→right→sink is acyclic).
type flow struct {
	adj  [][]int
	arcs []arc
	pot  []float64
}

type arc struct {
	to        int
	cap, flow int
	cost      float64
}

func newFlow(n int) *flow {
	return &flow{adj: make([][]int, n), pot: make([]float64, n)}
}

func (f *flow) addArc(u, v, capacity int, cost float64) {
	f.adj[u] = append(f.adj[u], len(f.arcs))
	f.arcs = append(f.arcs, arc{to: v, cap: capacity, cost: cost})
	f.adj[v] = append(f.adj[v], len(f.arcs))
	f.arcs = append(f.arcs, arc{to: u, cap: 0, cost: -cost})
}

type pqItem struct {
	node int
	dist float64
}

// pq is a plain binary min-heap over pqItem, avoiding the interface boxing
// of container/heap in the hot augmentation loop.
type pq struct {
	items []pqItem
}

func (q *pq) push(it pqItem) {
	q.items = append(q.items, it)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].dist <= q.items[i].dist {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

func (q *pq) pop() pqItem {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && q.items[l].dist < q.items[small].dist {
			small = l
		}
		if r < last && q.items[r].dist < q.items[small].dist {
			small = r
		}
		if small == i {
			break
		}
		q.items[i], q.items[small] = q.items[small], q.items[i]
		i = small
	}
	return top
}

func (q *pq) empty() bool { return len(q.items) == 0 }

func (q *pq) reset() { q.items = q.items[:0] }

const eps = 1e-9

// initPotentials runs one Bellman-Ford-style relaxation sweep set; the
// network is a DAG (source < left < right < sink in node order and all
// positive-capacity arcs go forward), so a single pass in node order
// suffices.
func (f *flow) initPotentials(src int) {
	for i := range f.pot {
		f.pot[i] = math.Inf(1)
	}
	f.pot[src] = 0
	for u := 0; u < len(f.adj); u++ {
		if math.IsInf(f.pot[u], 1) {
			continue
		}
		for _, ai := range f.adj[u] {
			a := f.arcs[ai]
			if a.cap > a.flow && f.pot[u]+a.cost < f.pot[a.to] {
				f.pot[a.to] = f.pot[u] + a.cost
			}
		}
	}
	for i := range f.pot {
		if math.IsInf(f.pot[i], 1) {
			f.pot[i] = 0
		}
	}
}

// solve augments along minimum-cost paths while the path cost is negative
// (every augmentation increases matched weight). The context is polled
// once per augmentation.
func (f *flow) solve(ctx context.Context, src, snk int) error {
	f.initPotentials(src)
	n := len(f.adj)
	dist := make([]float64, n)
	prevArc := make([]int, n)
	done := make([]bool, n)
	var q pq
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := range dist {
			dist[i] = math.Inf(1)
			prevArc[i] = -1
			done[i] = false
		}
		dist[src] = 0
		q.reset()
		q.push(pqItem{src, 0})
		for !q.empty() {
			it := q.pop()
			if done[it.node] {
				continue
			}
			done[it.node] = true
			if it.node == snk {
				break // shortest path to sink settled; stop early
			}
			for _, ai := range f.adj[it.node] {
				a := f.arcs[ai]
				if a.cap <= a.flow || done[a.to] {
					continue
				}
				rc := a.cost + f.pot[it.node] - f.pot[a.to]
				if rc < 0 {
					rc = 0 // float noise; true reduced costs are ≥ 0
				}
				nd := dist[it.node] + rc
				if nd+eps < dist[a.to] {
					dist[a.to] = nd
					prevArc[a.to] = ai
					q.push(pqItem{a.to, nd})
				}
			}
		}
		if math.IsInf(dist[snk], 1) {
			return nil // no augmenting path at all
		}
		// True path cost = dist + pot difference.
		pathCost := dist[snk] + f.pot[snk] - f.pot[src]
		if pathCost >= -eps {
			return nil // augmenting further would not increase weight
		}
		// Update potentials; unsettled nodes clamp at dist[snk], which
		// keeps all reduced costs non-negative after early termination.
		for i := range f.pot {
			d := dist[i]
			if d > dist[snk] {
				d = dist[snk]
			}
			f.pot[i] += d
		}
		// Augment one unit along the path.
		for v := snk; v != src; {
			ai := prevArc[v]
			f.arcs[ai].flow++
			f.arcs[ai^1].flow--
			v = f.arcs[ai^1].to
		}
	}
}

// Hungarian computes a maximum-weight (not necessarily perfect) matching on
// a dense weight matrix w[l][r] (weights ≤ 0 mean "no useful edge") with
// unit capacities, via the O(n³) potential-based algorithm on the padded
// square matrix. Returns per-left matches (index into right side or -1) and
// the total weight. Intended for validation and small per-interval
// schedules.
func Hungarian(w [][]float64) ([]int, float64, error) {
	nl := len(w)
	nr := 0
	for _, row := range w {
		if len(row) > nr {
			nr = len(row)
		}
	}
	for i, row := range w {
		if len(row) != nr && len(row) != 0 {
			return nil, 0, fmt.Errorf("matching: ragged weight matrix at row %d", i)
		}
	}
	n := nl
	if nr > n {
		n = nr
	}
	if n == 0 {
		return nil, 0, nil
	}
	// Build a square min-cost matrix: cost = -max(w, 0); dummy cells cost 0.
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, n+1)
	}
	for i := 0; i < nl; i++ {
		for j := 0; j < len(w[i]); j++ {
			if w[i][j] > 0 {
				cost[i+1][j+1] = -w[i][j]
			}
		}
	}
	// Classic 1-indexed Hungarian with potentials u, v.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	matchL := make([]int, nl)
	for i := range matchL {
		matchL[i] = -1
	}
	total := 0.0
	for j := 1; j <= n; j++ {
		i := p[j]
		if i == 0 || i > nl || j > nr {
			continue
		}
		if len(w[i-1]) >= j && w[i-1][j-1] > 0 && cost[i][j] < 0 {
			matchL[i-1] = j - 1
			total += w[i-1][j-1]
		}
	}
	return matchL, total, nil
}

// HopcroftKarp computes a maximum-cardinality matching for unit-capacity
// bipartite graphs given as left-side adjacency lists. Returns per-left
// matches (right index or -1) and the matching size. O(E√V).
func HopcroftKarp(adjL [][]int, nr int) ([]int, int, error) {
	nl := len(adjL)
	for l, adj := range adjL {
		for _, r := range adj {
			if r < 0 || r >= nr {
				return nil, 0, fmt.Errorf("matching: left %d lists right %d out of range", l, r)
			}
		}
	}
	const infd = math.MaxInt32
	matchL := make([]int, nl)
	matchR := make([]int, nr)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nl)
	queue := make([]int, 0, nl)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nl; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = infd
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			l := queue[head]
			for _, r := range adjL[l] {
				l2 := matchR[r]
				if l2 == -1 {
					found = true
				} else if dist[l2] == infd {
					dist[l2] = dist[l] + 1
					queue = append(queue, l2)
				}
			}
		}
		return found
	}
	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range adjL[l] {
			l2 := matchR[r]
			if l2 == -1 || (dist[l2] == dist[l]+1 && dfs(l2)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = infd
		return false
	}
	size := 0
	for bfs() {
		for l := 0; l < nl; l++ {
			if matchL[l] == -1 && dfs(l) {
				size++
			}
		}
	}
	return matchL, size, nil
}
