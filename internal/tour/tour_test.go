package tour

import (
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/traffic"
)

func basePlan(t *testing.T, n int) (Plan, []*energy.Account) {
	t.Helper()
	dep, err := network.Generate(network.Params{N: n, PathLength: 2000, MaxOffset: 150, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	accounts, err := UniformAccounts(dep, energy.PaperBatteryCapacityJ, 3.0,
		func(i int) energy.Harvester { return energy.PaperSolar(energy.Sunny) })
	if err != nil {
		t.Fatal(err)
	}
	return Plan{
		Deployment: dep,
		Model:      radio.Paper2013(),
		Speed:      5,
		SlotLen:    1,
		Period:     3600,
		Allocate:   OnlineAllocator(&online.Appro{}),
	}, accounts
}

func TestRunValidation(t *testing.T) {
	plan, accounts := basePlan(t, 20)
	cases := []struct {
		name   string
		mutate func(*Plan, *[]*energy.Account, *int)
	}{
		{"nil deployment", func(p *Plan, _ *[]*energy.Account, _ *int) { p.Deployment = nil }},
		{"nil model", func(p *Plan, _ *[]*energy.Account, _ *int) { p.Model = nil }},
		{"nil allocator", func(p *Plan, _ *[]*energy.Account, _ *int) { p.Allocate = nil }},
		{"zero tours", func(_ *Plan, _ *[]*energy.Account, n *int) { *n = 0 }},
		{"account mismatch", func(_ *Plan, a *[]*energy.Account, _ *int) { *a = (*a)[:5] }},
		{"nil account", func(_ *Plan, a *[]*energy.Account, _ *int) { (*a)[3] = nil }},
		{"zero speed", func(p *Plan, _ *[]*energy.Account, _ *int) { p.Speed = 0 }},
		{"short period", func(p *Plan, _ *[]*energy.Account, _ *int) { p.Period = 10 }},
	}
	for _, c := range cases {
		p := plan
		a := append([]*energy.Account(nil), accounts...)
		tours := 2
		c.mutate(&p, &a, &tours)
		if _, err := Run(p, a, tours); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunCampaign(t *testing.T) {
	plan, accounts := basePlan(t, 30)
	res, err := Run(plan, accounts, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tours) != 6 {
		t.Fatalf("tours = %d", len(res.Tours))
	}
	total := 0.0
	for i, ts := range res.Tours {
		if ts.Tour != i {
			t.Errorf("tour index %d != %d", ts.Tour, i)
		}
		if ts.StartTime != float64(i)*plan.Period {
			t.Errorf("tour %d start %v, want %v", i, ts.StartTime, float64(i)*plan.Period)
		}
		if ts.DataBits < 0 || ts.MeanBudget < 0 {
			t.Errorf("tour %d has negative stats: %+v", i, ts)
		}
		if ts.Active > 30 {
			t.Errorf("tour %d active %d > n", i, ts.Active)
		}
		total += ts.DataBits
	}
	if total != res.TotalBits {
		t.Errorf("total %v != sum %v", res.TotalBits, total)
	}
	if res.TotalBits <= 0 {
		t.Error("campaign collected nothing")
	}
	// Battery levels stay within bounds.
	for i, a := range accounts {
		if a.Budget() < 0 || a.Budget() > energy.PaperBatteryCapacityJ {
			t.Errorf("sensor %d budget %v out of range", i, a.Budget())
		}
		if a.Now() != 6*plan.Period {
			t.Errorf("sensor %d time %v", i, a.Now())
		}
	}
}

func TestOfflineAllocatorCampaign(t *testing.T) {
	plan, accounts := basePlan(t, 25)
	plan.Allocate = OfflineAllocator(core.Options{})
	res, err := Run(plan, accounts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBits <= 0 {
		t.Error("offline campaign collected nothing")
	}
}

// Offline planning must collect at least as much as the online protocol on
// the first tour (same initial budgets).
func TestOfflineBeatsOnlineFirstTour(t *testing.T) {
	planA, accountsA := basePlan(t, 40)
	planA.Allocate = OfflineAllocator(core.Options{})
	offline, err := Run(planA, accountsA, 1)
	if err != nil {
		t.Fatal(err)
	}
	planB, accountsB := basePlan(t, 40)
	onlineRes, err := Run(planB, accountsB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if onlineRes.TotalBits > offline.TotalBits*1.01 {
		t.Errorf("online %v above offline %v", onlineRes.TotalBits, offline.TotalBits)
	}
}

func TestUniformAccountsValidation(t *testing.T) {
	dep, _ := network.Generate(network.Params{N: 5, PathLength: 500, MaxOffset: 50, Seed: 1})
	if _, err := UniformAccounts(nil, 10, 1, func(int) energy.Harvester { return energy.Constant{P: 1} }); err == nil {
		t.Error("expected nil-deployment error")
	}
	if _, err := UniformAccounts(dep, 10, 1, nil); err == nil {
		t.Error("expected nil-factory error")
	}
	if _, err := UniformAccounts(dep, 10, 1, func(int) energy.Harvester { return nil }); err == nil {
		t.Error("expected nil-harvester error")
	}
	if _, err := UniformAccounts(dep, 0, 1, func(int) energy.Harvester { return energy.Constant{P: 1} }); err == nil {
		t.Error("expected battery error")
	}
	accounts, err := UniformAccounts(dep, 10, 4, func(int) energy.Harvester { return energy.Constant{P: 1} })
	if err != nil {
		t.Fatal(err)
	}
	if len(accounts) != 5 || accounts[0].Budget() != 4 {
		t.Errorf("accounts wrong: %d, budget %v", len(accounts), accounts[0].Budget())
	}
}

// A traffic-driven campaign: queues accumulate, cap uploads, and drain.
func TestRunWithTrafficQueues(t *testing.T) {
	plan, accounts := basePlan(t, 25)
	plan.Allocate = OnlineAllocator(&online.Sequential{})
	plan.Traffic = &traffic.Params{
		ArrivalRate: 0.02, MeanSpeed: 25, SpeedStdDev: 3,
		DetectRange: 150, BitsPerDetection: 30e3, Seed: 3,
	}
	res, err := Run(plan, accounts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBits <= 0 {
		t.Fatal("capped campaign collected nothing")
	}
	for _, ts := range res.Tours {
		if ts.BacklogBits < 0 {
			t.Fatalf("tour %d negative backlog", ts.Tour)
		}
		// A tour can never deliver more than was ever generated up to it.
		if ts.DataBits > ts.BacklogBits+1e-6 {
			t.Fatalf("tour %d delivered %v > backlog %v", ts.Tour, ts.DataBits, ts.BacklogBits)
		}
	}
	// A cap-oblivious allocator must be rejected by the online runner.
	plan2, accounts2 := basePlan(t, 25)
	plan2.Allocate = OnlineAllocator(&online.Appro{})
	plan2.Traffic = plan.Traffic
	if _, err := Run(plan2, accounts2, 1); err == nil {
		t.Error("expected cap-awareness rejection")
	}
}
