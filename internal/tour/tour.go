// Package tour runs multi-tour campaigns: the mobile sink patrols the path
// repeatedly while each sensor's battery follows the paper's recurrence
// P_j(v) = min(P_{j-1}(v) + Q_{j-1}(v) − O_{j-1}(v), B(v)) between tour
// starts (§II.B). It turns the single-tour solvers of core/online into a
// long-horizon simulation: budgets are published from the energy accounts
// at each tour start, an allocator plans the tour, and consumption is
// debited while harvest accrues until the next departure.
package tour

import (
	"errors"
	"fmt"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/traffic"
)

// Allocator plans one tour on a freshly built instance.
type Allocator func(*core.Instance) (*core.Allocation, error)

// OnlineAllocator adapts an online scheduler into an Allocator.
func OnlineAllocator(s online.Scheduler) Allocator {
	return func(inst *core.Instance) (*core.Allocation, error) {
		res, err := online.Run(inst, s)
		if err != nil {
			return nil, err
		}
		return res.Alloc, nil
	}
}

// OfflineAllocator adapts core.OfflineAppro into an Allocator.
func OfflineAllocator(opts core.Options) Allocator {
	return func(inst *core.Instance) (*core.Allocation, error) {
		return core.OfflineAppro(inst, opts)
	}
}

// Plan describes a multi-tour campaign.
type Plan struct {
	Deployment *network.Deployment
	Model      radio.Model
	Speed      float64 // r_s, m/s
	SlotLen    float64 // τ, s
	// Period is the time between consecutive tour starts; it must be at
	// least the tour duration (path length / speed).
	Period   float64
	Allocate Allocator
	// Traffic, when non-nil, drives finite per-sensor data queues: new
	// detections accumulate into each sensor's backlog between tour
	// starts, tours may upload at most the backlog
	// (core.Instance.SetDataCaps), and undelivered data carries over. The
	// Allocator must then be data-cap aware (e.g.
	// OnlineAllocator(&online.Sequential{}) or
	// OfflineAllocator via core.OfflineSequential).
	Traffic *traffic.Params
}

// TourStats summarizes one tour.
type TourStats struct {
	Tour       int
	StartTime  float64 // absolute seconds since campaign start
	DataBits   float64
	MeanBudget float64 // mean stored energy at tour start, J
	Active     int     // sensors that transmitted
	EnergyUsed float64 // total energy spent this tour, J
	// BacklogBits is the total queued data at tour start (0 when the
	// campaign runs the paper's unbounded-data model).
	BacklogBits float64
}

// Result aggregates a campaign.
type Result struct {
	Tours     []TourStats
	TotalBits float64
}

// Run executes `tours` consecutive tours. accounts[i] is sensor i's energy
// account; its state is advanced in place.
func Run(plan Plan, accounts []*energy.Account, tours int) (*Result, error) {
	if plan.Deployment == nil {
		return nil, errors.New("tour: nil deployment")
	}
	if plan.Model == nil {
		return nil, errors.New("tour: nil radio model")
	}
	if plan.Allocate == nil {
		return nil, errors.New("tour: nil allocator")
	}
	if tours <= 0 {
		return nil, fmt.Errorf("tour: tour count must be positive, got %d", tours)
	}
	if len(accounts) != len(plan.Deployment.Sensors) {
		return nil, fmt.Errorf("tour: %d accounts for %d sensors", len(accounts), len(plan.Deployment.Sensors))
	}
	for i, a := range accounts {
		if a == nil {
			return nil, fmt.Errorf("tour: nil account for sensor %d", i)
		}
	}
	if plan.Speed <= 0 || plan.SlotLen <= 0 {
		return nil, errors.New("tour: speed and slot length must be positive")
	}
	duration := plan.Deployment.PathLength / plan.Speed
	if plan.Period < duration {
		return nil, fmt.Errorf("tour: period %v shorter than tour duration %v", plan.Period, duration)
	}

	res := &Result{}
	var queues []float64
	if plan.Traffic != nil {
		queues = make([]float64, len(plan.Deployment.Sensors))
	}
	for t := 0; t < tours; t++ {
		stats := TourStats{Tour: t, StartTime: accounts[0].Now()}
		for i := range plan.Deployment.Sensors {
			b := accounts[i].Budget()
			plan.Deployment.Sensors[i].Budget = b
			stats.MeanBudget += b
		}
		stats.MeanBudget /= float64(len(accounts))

		inst, err := core.BuildInstance(plan.Deployment, plan.Model, plan.Speed, plan.SlotLen)
		if err != nil {
			return nil, fmt.Errorf("tour %d: %w", t, err)
		}
		if queues != nil {
			// New detections since the previous tour start join the
			// backlog; the backlog caps this tour's uploads.
			fresh, err := traffic.Load(plan.Deployment, *plan.Traffic,
				stats.StartTime-plan.Period, stats.StartTime)
			if err != nil {
				return nil, fmt.Errorf("tour %d: %w", t, err)
			}
			for i := range queues {
				queues[i] += fresh[i]
				stats.BacklogBits += queues[i]
			}
			if err := inst.SetDataCaps(queues); err != nil {
				return nil, fmt.Errorf("tour %d: %w", t, err)
			}
		}
		alloc, err := plan.Allocate(inst)
		if err != nil {
			return nil, fmt.Errorf("tour %d: %w", t, err)
		}
		if _, err := inst.Validate(alloc); err != nil {
			return nil, fmt.Errorf("tour %d: allocator produced infeasible plan: %w", t, err)
		}
		used := inst.EnergyUsed(alloc)
		for i := range accounts {
			if used[i] > 0 {
				stats.Active++
				stats.EnergyUsed += used[i]
			}
			if err := accounts[i].EndTour(plan.Period, used[i]); err != nil {
				return nil, fmt.Errorf("tour %d sensor %d: %w", t, i, err)
			}
		}
		if queues != nil {
			// Drain the uploaded bits from each sensor's backlog.
			for j, owner := range alloc.SlotOwner {
				if owner >= 0 {
					queues[owner] -= inst.Sensors[owner].RateAt(j) * inst.Tau
				}
			}
			for i := range queues {
				if queues[i] < 0 {
					queues[i] = 0 // float noise
				}
			}
		}
		stats.DataBits = alloc.Data
		res.TotalBits += alloc.Data
		res.Tours = append(res.Tours, stats)
	}
	return res, nil
}

// UniformAccounts builds one energy account per sensor with identical
// batteries and per-sensor harvesters produced by mk (called with the
// sensor index, so callers can vary efficiency or noise seeds).
func UniformAccounts(dep *network.Deployment, capacity, initial float64, mk func(i int) energy.Harvester) ([]*energy.Account, error) {
	if dep == nil {
		return nil, errors.New("tour: nil deployment")
	}
	if mk == nil {
		return nil, errors.New("tour: nil harvester factory")
	}
	accounts := make([]*energy.Account, len(dep.Sensors))
	for i := range accounts {
		b, err := energy.NewBattery(capacity, initial)
		if err != nil {
			return nil, err
		}
		h := mk(i)
		if h == nil {
			return nil, fmt.Errorf("tour: factory returned nil harvester for sensor %d", i)
		}
		accounts[i], err = energy.NewAccount(b, h, 0)
		if err != nil {
			return nil, err
		}
	}
	return accounts, nil
}
