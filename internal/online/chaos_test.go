package online

import (
	"context"
	"testing"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/fault"
	"mobisink/internal/radio"
)

// chaosRates is the acceptance sweep: the drop probability applied to
// every message class at once.
var chaosRates = []float64{0, 0.05, 0.2, 0.5}

func sameAlloc(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Data != b.Data {
		t.Errorf("%s: data %v vs %v", label, a.Data, b.Data)
	}
	for j := range a.Alloc.SlotOwner {
		if a.Alloc.SlotOwner[j] != b.Alloc.SlotOwner[j] {
			t.Fatalf("%s: slot %d owner %d vs %d", label, j, a.Alloc.SlotOwner[j], b.Alloc.SlotOwner[j])
		}
	}
	if a.Messages != b.Messages {
		t.Errorf("%s: messages %+v vs %+v", label, a.Messages, b.Messages)
	}
	for i := range a.Residual {
		if a.Residual[i] != b.Residual[i] {
			t.Fatalf("%s: residual[%d] %v vs %v", label, i, a.Residual[i], b.Residual[i])
		}
	}
}

// TestChaosSweep runs the full fault plan at every acceptance drop rate
// and checks the tour stays invariant-clean: Run's internal Validate
// guarantees ≤1 sensor per slot and no energy/data overdraw, and Lemma 1
// must survive retransmission and repair.
func TestChaosSweep(t *testing.T) {
	inst := paperInstance(t, 80, 21, radio.Paper2013(), 5, 1)
	for _, sched := range []Scheduler{&Appro{}, &Greedy{}} {
		base, err := Run(inst, sched)
		if err != nil {
			t.Fatal(err)
		}
		for _, rate := range chaosRates {
			plan := &fault.Plan{
				Seed:         97,
				DropProbe:    rate,
				DropAck:      rate,
				DropSchedule: rate,
				DropFinish:   rate,
				StallProb:    rate / 2,
				MaxRetries:   2,
			}
			if rate > 0 {
				plan.Crashes = []fault.Crash{
					{Sensor: 3, From: 100, To: 400},
					{Sensor: 17, From: 0, To: inst.T - 1},
					{Sensor: 42, From: 900, To: 1100},
				}
				plan.Shortfalls = []fault.Shortfall{
					{Sensor: 7, Slot: 50, Joules: 0.5},
					{Sensor: 23, Slot: 800, Joules: 1e6},
				}
			}
			res, err := RunOpts(inst, sched, Options{Faults: plan})
			if err != nil {
				t.Fatalf("%s rate %v: %v", sched.Name(), rate, err)
			}
			if err := res.CheckLemma1(); err != nil {
				t.Errorf("%s rate %v: %v", sched.Name(), rate, err)
			}
			if rate == 0 {
				// A zero plan must bypass the fault path entirely.
				if res.Fault != nil {
					t.Fatalf("%s: zero plan took the fault path", sched.Name())
				}
				sameAlloc(t, sched.Name()+" rate 0", base, res)
				continue
			}
			if res.Fault == nil {
				t.Fatalf("%s rate %v: no fault stats", sched.Name(), rate)
			}
			if res.Data > base.Data {
				t.Errorf("%s rate %v: faulty tour collected %v > fault-free %v",
					sched.Name(), rate, res.Data, base.Data)
			}
			for i, r := range res.Residual {
				if r < 0 {
					t.Fatalf("%s rate %v: sensor %d residual %v < 0", sched.Name(), rate, i, r)
				}
			}
		}
	}
}

// TestFaultPathParity drives the fault machinery with nothing to inject
// (a zero plan forced onto the fault path by a generous compute deadline)
// and requires the result byte-identical to the plain protocol — the
// strongest form of the "zero-fault path unchanged" guarantee.
func TestFaultPathParity(t *testing.T) {
	inst := paperInstance(t, 80, 22, radio.Paper2013(), 5, 1)
	for _, opts := range []Options{
		{},
		{AckWindow: 8, Seed: 5},
	} {
		base, err := RunOpts(inst, &Appro{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		forced := opts
		forced.ComputeDeadline = time.Minute
		res, err := RunOpts(inst, &Appro{}, forced)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fault == nil {
			t.Fatal("forced run skipped the fault path")
		}
		if *res.Fault != (fault.Stats{}) {
			t.Fatalf("zero plan injected something: %+v", *res.Fault)
		}
		sameAlloc(t, "parity", base, res)
	}
}

// TestTotalFaults checks the protocol's behaviour at the extremes: a tour
// where nobody hears a Probe, a tour where everybody misses the Schedule,
// and a tour where every budget evaporates all collect nothing — without
// errors or invariant violations.
func TestTotalFaults(t *testing.T) {
	inst := paperInstance(t, 50, 23, radio.Paper2013(), 5, 1)
	allShort := make([]fault.Shortfall, len(inst.Sensors))
	for i := range allShort {
		allShort[i] = fault.Shortfall{Sensor: i, Slot: 0, Joules: 1e9}
	}
	cases := []struct {
		name string
		plan fault.Plan
	}{
		{"deaf-probes", fault.Plan{Seed: 1, DropProbe: 1, MaxRetries: 3}},
		{"deaf-schedules", fault.Plan{Seed: 1, DropSchedule: 1}},
		{"drained", fault.Plan{Seed: 1, Shortfalls: allShort}},
	}
	for _, tc := range cases {
		res, err := RunOpts(inst, &Greedy{}, Options{Faults: &tc.plan})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Data != 0 {
			t.Errorf("%s: collected %v bits, want 0", tc.name, res.Data)
		}
		switch tc.name {
		case "deaf-probes":
			if res.Messages.Acks != 0 {
				t.Errorf("deaf sensors acked %d times", res.Messages.Acks)
			}
			if res.Fault.ProbesDropped == 0 || res.Fault.ProbeRetransmissions == 0 {
				t.Errorf("stats missed the probe storm: %+v", res.Fault)
			}
		case "deaf-schedules":
			if res.Fault.SchedulesMissed == 0 || res.Fault.LostSlots == 0 {
				t.Errorf("stats missed the schedule blackout: %+v", res.Fault)
			}
			if res.Fault.RepairedSlots != 0 {
				t.Errorf("repaired %d slots with every candidate deaf", res.Fault.RepairedSlots)
			}
		case "drained":
			if res.Fault.ShortfallJoules == 0 {
				t.Errorf("stats missed the drain: %+v", res.Fault)
			}
		}
	}
}

// TestRetransmissionRecovers checks that extra registration rounds claw
// back sensors a lossy Ack channel lost: same seed, same drop rate, more
// retries must never collect less.
func TestRetransmissionRecovers(t *testing.T) {
	inst := paperInstance(t, 80, 24, radio.Paper2013(), 5, 1)
	run := func(retries int) *Result {
		t.Helper()
		res, err := RunOpts(inst, &Greedy{}, Options{Faults: &fault.Plan{
			Seed: 11, DropAck: 0.5, MaxRetries: retries,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	none, four := run(0), run(4)
	if four.Data < none.Data {
		t.Errorf("retries lost data: %v with 4 retries vs %v with none", four.Data, none.Data)
	}
	if four.Fault.ProbeRetransmissions == 0 {
		t.Error("no retransmission rounds recorded")
	}
	if four.Messages.Retransmits != four.Fault.ProbeRetransmissions {
		t.Errorf("message stats count %d retransmits, fault stats %d rounds",
			four.Messages.Retransmits, four.Fault.ProbeRetransmissions)
	}
	if four.Messages.Total() <= none.Messages.Total() {
		t.Errorf("retransmissions are not free: %d total messages vs %d",
			four.Messages.Total(), none.Messages.Total())
	}
}

// TestFinishJamClampsBudgets checks the feasibility guard: with every
// Finish jammed, sensors re-register with stale budgets and the sink must
// clamp them (the run's internal Validate proves nothing overdrew).
func TestFinishJamClampsBudgets(t *testing.T) {
	inst := paperInstance(t, 80, 25, radio.Paper2013(), 5, 1)
	res, err := RunOpts(inst, &Appro{}, Options{Faults: &fault.Plan{Seed: 3, DropFinish: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages.Finishes != 0 {
		t.Errorf("%d Finish broadcasts delivered through a full jam", res.Messages.Finishes)
	}
	if res.Fault.FinishesJammed == 0 {
		t.Error("no jams recorded")
	}
	if res.Fault.BudgetClamps == 0 {
		t.Error("no stale registration was clamped — guard untested")
	}
}

// TestCrashRepair crashes a mid-tour sensor and checks the sink repairs
// or writes off its slots (and that repaired slots carry real data).
func TestCrashRepair(t *testing.T) {
	inst := paperInstance(t, 80, 26, radio.Paper2013(), 5, 1)
	// Crash every third sensor for the middle half of the tour.
	var crashes []fault.Crash
	for i := 0; i < len(inst.Sensors); i += 3 {
		crashes = append(crashes, fault.Crash{Sensor: i, From: inst.T / 4, To: 3 * inst.T / 4})
	}
	res, err := RunOpts(inst, &Appro{}, Options{Faults: &fault.Plan{Seed: 7, Crashes: crashes}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.RepairedSlots+res.Fault.LostSlots == 0 {
		t.Fatalf("crashes never disturbed the schedule: %+v", res.Fault)
	}
	// A crashed sensor must not own slots inside its outage window.
	for _, c := range crashes {
		for j := c.From; j <= c.To; j++ {
			if res.Alloc.SlotOwner[j] == c.Sensor {
				t.Fatalf("sensor %d owns slot %d inside its crash window", c.Sensor, j)
			}
		}
	}
}

// hangingScheduler blocks until its context dies — a stand-in for a
// solver that blows every compute deadline.
type hangingScheduler struct{}

func (s *hangingScheduler) Name() string { return "hanging" }
func (s *hangingScheduler) Schedule(ctx context.Context, _ *core.Instance, _ Interval, _ []Registration) (map[int]int, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestDegradedMode forces every interval into degraded mode and checks
// the fallback produces exactly the density-greedy tour.
func TestDegradedMode(t *testing.T) {
	inst := paperInstance(t, 80, 27, radio.Paper2013(), 5, 1)
	greedy, err := Run(inst, &Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	intervals := make([]int, greedy.Intervals)
	for j := range intervals {
		intervals[j] = j
	}
	res, err := RunOpts(inst, &Appro{}, Options{Faults: &fault.Plan{Seed: 9, StallIntervals: intervals}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.DegradedIntervals == 0 {
		t.Fatal("no interval degraded under forced stalls")
	}
	sameAlloc(t, "degraded-vs-greedy", greedy, res)
}

// TestComputeDeadline checks the wall-clock fallback: a scheduler that
// sleeps through its deadline must be replaced by the degraded policy
// mid-tour, not error the run out.
func TestComputeDeadline(t *testing.T) {
	inst := paperInstance(t, 50, 28, radio.Paper2013(), 5, 1)
	greedy, err := Run(inst, &Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOpts(inst, &hangingScheduler{}, Options{ComputeDeadline: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.DegradedIntervals == 0 {
		t.Fatal("deadline never fired")
	}
	sameAlloc(t, "deadline-vs-greedy", greedy, res)
}

// TestComputeDeadlineRespectsCancel checks a canceled tour still aborts:
// cancellation must not be mistaken for a stall and absorbed by fallback.
func TestComputeDeadlineRespectsCancel(t *testing.T) {
	inst := paperInstance(t, 50, 29, radio.Paper2013(), 5, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, inst, &hangingScheduler{}, Options{ComputeDeadline: time.Hour}); err == nil {
		t.Fatal("canceled tour completed")
	}
}

// TestDegradedCapAwareGuard checks a non-cap-aware degraded override is
// rejected on data-capped instances before the tour starts.
func TestDegradedCapAwareGuard(t *testing.T) {
	inst := paperInstance(t, 30, 30, radio.Paper2013(), 5, 1)
	caps := make([]float64, len(inst.Sensors))
	for i := range caps {
		caps[i] = 1e6
	}
	inst.DataCaps = caps
	_, err := RunOpts(inst, &Sequential{}, Options{
		Faults:   &fault.Plan{Seed: 1, StallProb: 0.5},
		Degraded: &Greedy{},
	})
	if err == nil {
		t.Fatal("cap-unaware degraded scheduler accepted on capped instance")
	}
}
