package online

import (
	"context"

	"mobisink/internal/core"
)

// WarmAppro is the warm-started variant of the Appro scheduler
// (Online_Appro_Warm): instead of building and solving a fresh GAP
// instance per interval, it compiles the tour-wide Appro reduction once
// and expresses each interval's registrations as a delta — budgets
// debited, windows clipped to the interval, departed sensors disabled —
// re-solving only the window components the interval touched
// (core.WarmSolver over gap.Compiled.Apply).
//
// Its assignments legitimately differ from Appro's: Appro orders each
// interval's bins by clipped window, WarmAppro inherits the offline
// (Start, End) order of the tour-wide reduction. Both respect budgets
// and clipped windows; the warm path's contract is bit-equality with a
// cold solve of the same patched tour-wide instance (SelfCheck), not
// with Appro.
//
// WarmAppro carries per-tour solver state, so one instance must not be
// shared by concurrent tours.
type WarmAppro struct {
	Opts core.Options
	// SelfCheck makes every interval verify the warm solve bit-for-bit
	// against a cold compile of the patched instance (slow; for tests).
	SelfCheck bool

	ws      core.WarmSolver
	patches []core.SensorPatch
	started bool
}

// Name implements Scheduler.
func (a *WarmAppro) Name() string { return "Online_Appro_Warm" }

// Schedule implements Scheduler.
func (a *WarmAppro) Schedule(ctx context.Context, inst *core.Instance, iv Interval, regs []Registration) (map[int]int, error) {
	if !a.started {
		a.ws.Opts = a.Opts
		a.ws.SelfCheck = a.SelfCheck
		a.started = true
	}
	a.patches = a.patches[:0]
	for _, r := range regs {
		a.patches = append(a.patches, core.SensorPatch{
			Sensor:  r.Sensor,
			Budget:  r.Budget,
			DataCap: r.DataLeft,
			Lo:      r.ClipStart,
			Hi:      r.ClipEnd,
		})
	}
	res, err := a.ws.Apply(ctx, inst, a.patches)
	if err != nil {
		return nil, err
	}
	assign := make(map[int]int)
	for j := iv.Start; j <= iv.End && j < len(res.SlotSensor); j++ {
		if s := res.SlotSensor[j]; s >= 0 {
			assign[j] = int(s)
		}
	}
	return assign, nil
}
