package online_test

import (
	"fmt"

	"mobisink/internal/core"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
)

// Run the distributed protocol for one tour: probes, registrations,
// per-interval scheduling, and message accounting.
func ExampleRun() {
	dep, _ := network.Generate(network.Params{
		N: 30, PathLength: 1000, MaxOffset: 100, Seed: 7,
	})
	_ = dep.SetUniformBudgets(2.0)
	inst, _ := core.BuildInstance(dep, radio.Paper2013(), 5, 1)

	res, _ := online.Run(inst, &online.Appro{})
	fmt.Printf("intervals=%d data=%.2fMb lemma1=%v\n",
		res.Intervals, core.ThroughputMb(res.Data), res.CheckLemma1() == nil)
	fmt.Printf("messages: %d probes, %d acks, ≤2 acks/sensor: %v\n",
		res.Messages.Probes, res.Messages.Acks, res.Messages.Acks <= 2*30)
	// Output:
	// intervals=5 data=7.26Mb lemma1=true
	// messages: 5 probes, 49 acks, ≤2 acks/sensor: true
}
