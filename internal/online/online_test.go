package online

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func paperInstance(t *testing.T, n int, seed int64, model radio.Model, speed, tau float64) *core.Instance {
	t.Helper()
	d, err := network.Generate(network.PaperParams(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	h := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(seed))
	if err := d.AssignSteadyStateBudgets(h, 10000/speed, 0.2, rng); err != nil {
		t.Fatal(err)
	}
	inst, err := core.BuildInstance(d, model, speed, tau)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, &Greedy{}); err == nil {
		t.Error("expected nil-instance error")
	}
	inst := paperInstance(t, 20, 1, radio.Paper2013(), 5, 1)
	if _, err := Run(inst, nil); err == nil {
		t.Error("expected nil-scheduler error")
	}
}

func TestApproTour(t *testing.T) {
	inst := paperInstance(t, 100, 2, radio.Paper2013(), 5, 1)
	res, err := Run(inst, &Appro{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Data <= 0 {
		t.Fatal("no data collected")
	}
	if v, err := inst.Validate(res.Alloc); err != nil || math.Abs(v-res.Data) > 1e-6 {
		t.Fatalf("allocation invalid: %v (v=%v data=%v)", err, v, res.Data)
	}
	if err := res.CheckLemma1(); err != nil {
		t.Error(err)
	}
	if res.Intervals != (inst.T+inst.Gamma-1)/inst.Gamma {
		t.Errorf("intervals = %d", res.Intervals)
	}
	// Residual budgets never negative and never above initial.
	for i, r := range res.Residual {
		if r < 0 || r > inst.Sensors[i].Budget+1e-12 {
			t.Fatalf("sensor %d residual %v outside [0, %v]", i, r, inst.Sensors[i].Budget)
		}
	}
}

// Theorem 3: message complexity is O(n) — per tour each sensor acks at most
// twice, and the sink sends 3 broadcasts per interval.
func TestMessageComplexity(t *testing.T) {
	for _, n := range []int{50, 100, 200} {
		inst := paperInstance(t, n, int64(n), radio.Paper2013(), 5, 1)
		res, err := Run(inst, &Greedy{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages.Acks > 2*n {
			t.Errorf("n=%d: %d acks > 2n", n, res.Messages.Acks)
		}
		maxIv := (inst.T + inst.Gamma - 1) / inst.Gamma
		if res.Messages.Probes != maxIv {
			t.Errorf("n=%d: probes = %d, want %d", n, res.Messages.Probes, maxIv)
		}
		if res.Messages.Schedules > maxIv || res.Messages.Finishes > maxIv {
			t.Errorf("n=%d: too many broadcasts: %+v", n, res.Messages)
		}
		if res.Messages.Total() > 2*n+3*maxIv {
			t.Errorf("n=%d: total messages %d exceed 2n+3K", n, res.Messages.Total())
		}
	}
}

// The online algorithm can never beat the offline one on the same instance.
func TestOnlineBelowOffline(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		inst := paperInstance(t, 120, seed, radio.Paper2013(), 10, 2)
		off, err := core.OfflineAppro(inst, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		on, err := Run(inst, &Appro{})
		if err != nil {
			t.Fatal(err)
		}
		// The paper reports online within ~93% of offline; allow a loose
		// floor here, but online must not exceed the upper bound and
		// should be in the same ballpark.
		if on.Data > inst.UpperBound()+1e-6 {
			t.Fatalf("online exceeds upper bound")
		}
		if on.Data > off.Data*1.10 {
			t.Fatalf("online %v suspiciously above offline %v", on.Data, off.Data)
		}
		if on.Data < off.Data*0.5 {
			t.Fatalf("online %v below half of offline %v — locality loss too large", on.Data, off.Data)
		}
	}
}

func TestMaxMatchRequiresFixedPower(t *testing.T) {
	inst := paperInstance(t, 60, 4, radio.Paper2013(), 5, 1)
	if _, err := Run(inst, &MaxMatch{}); err == nil {
		t.Error("expected fixed-power error")
	}
}

func TestMaxMatchTour(t *testing.T) {
	fp, _ := radio.NewFixedPower(radio.Paper2013(), 0.3)
	inst := paperInstance(t, 120, 5, fp, 5, 1)
	mm, err := Run(inst, &MaxMatch{})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := Run(inst, &Appro{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(mm.Alloc); err != nil {
		t.Fatal(err)
	}
	// Per interval MaxMatch is exact while Appro is a 1/2-approximation;
	// over the tour MaxMatch should not lose.
	if mm.Data < ap.Data*0.99 {
		t.Errorf("online maxmatch %v below online appro %v", mm.Data, ap.Data)
	}
	// And the offline exact solution dominates the online one.
	off, err := core.OfflineMaxMatch(inst)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Data > off.Data+1e-6 {
		t.Errorf("online %v exceeds offline optimum %v", mm.Data, off.Data)
	}
	if err := mm.CheckLemma1(); err != nil {
		t.Error(err)
	}
}

func TestGreedySchedulerTour(t *testing.T) {
	inst := paperInstance(t, 80, 6, radio.Paper2013(), 5, 1)
	res, err := Run(inst, &Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Data <= 0 {
		t.Fatal("greedy collected nothing")
	}
	ap, err := Run(inst, &Appro{})
	if err != nil {
		t.Fatal(err)
	}
	// Appro should usually beat plain greedy; assert it is at least not
	// dramatically worse (sanity, not a theorem).
	if ap.Data < res.Data*0.8 {
		t.Errorf("appro %v much worse than greedy %v", ap.Data, res.Data)
	}
}

func TestSchedulerNames(t *testing.T) {
	if (&Appro{}).Name() != "Online_Appro" {
		t.Error("Appro name")
	}
	if (&MaxMatch{}).Name() != "Online_MaxMatch" {
		t.Error("MaxMatch name")
	}
	if (&Greedy{}).Name() != "Online_Greedy" {
		t.Error("Greedy name")
	}
}

func TestCheckLemma1Failures(t *testing.T) {
	r := &Result{RegisteredIn: [][]int{{0, 1, 2}}}
	if err := r.CheckLemma1(); err == nil {
		t.Error("expected >2 registrations error")
	}
	r = &Result{RegisteredIn: [][]int{{0, 2}}}
	if err := r.CheckLemma1(); err == nil {
		t.Error("expected non-consecutive error")
	}
	r = &Result{RegisteredIn: [][]int{{0, 1}, {3}, nil}}
	if err := r.CheckLemma1(); err != nil {
		t.Errorf("valid registrations rejected: %v", err)
	}
}

// applyAssignment protocol-rule enforcement.
func TestApplyAssignmentRejectsViolations(t *testing.T) {
	inst := paperInstance(t, 50, 7, radio.Paper2013(), 5, 1)
	bad := &misbehavingScheduler{}
	if _, err := Run(inst, bad); err == nil {
		t.Error("expected double-booking rejection")
	}
}

// misbehavingScheduler assigns the same slot twice... actually assigns a
// slot to an unregistered sensor to exercise the guard.
type misbehavingScheduler struct{}

func (m *misbehavingScheduler) Name() string { return "bad" }

func (m *misbehavingScheduler) Schedule(_ context.Context, inst *core.Instance, iv Interval, regs []Registration) (map[int]int, error) {
	// Pick a sensor index guaranteed not registered in this interval.
	reg := make(map[int]bool)
	for _, r := range regs {
		reg[r.Sensor] = true
	}
	for i := range inst.Sensors {
		if !reg[i] {
			return map[int]int{iv.Start: i}, nil
		}
	}
	return map[int]int{}, nil
}

func TestTourDeterminism(t *testing.T) {
	instA := paperInstance(t, 90, 8, radio.Paper2013(), 5, 1)
	instB := paperInstance(t, 90, 8, radio.Paper2013(), 5, 1)
	a, err := Run(instA, &Appro{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(instB, &Appro{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Data != b.Data {
		t.Errorf("same inputs, different data: %v vs %v", a.Data, b.Data)
	}
	for j := range a.Alloc.SlotOwner {
		if a.Alloc.SlotOwner[j] != b.Alloc.SlotOwner[j] {
			t.Fatalf("slot %d differs", j)
		}
	}
}

func TestSequentialSchedulerUncapped(t *testing.T) {
	inst := paperInstance(t, 100, 12, radio.Paper2013(), 5, 1)
	seq, err := Run(inst, &Sequential{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(seq.Alloc); err != nil {
		t.Fatal(err)
	}
	if seq.Data <= 0 {
		t.Fatal("sequential collected nothing")
	}
	// Sequential per-interval packing should be competitive with Appro.
	ap, err := Run(inst, &Appro{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Data < ap.Data*0.8 {
		t.Errorf("sequential %v far below appro %v", seq.Data, ap.Data)
	}
	if (&Sequential{}).Name() != "Online_Sequential" {
		t.Error("name")
	}
}

func TestDataCappedOnlineRun(t *testing.T) {
	inst := paperInstance(t, 80, 13, radio.Paper2013(), 5, 1)
	// Tight caps: each sensor may upload at most 100 kb.
	caps := make([]float64, len(inst.Sensors))
	for i := range caps {
		caps[i] = 100e3
	}
	if err := inst.SetDataCaps(caps); err != nil {
		t.Fatal(err)
	}
	// Cap-oblivious schedulers are rejected up front.
	if _, err := Run(inst, &Appro{}); err == nil {
		t.Error("expected cap-awareness rejection for Appro")
	}
	res, err := Run(inst, &Sequential{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Validate(res.Alloc); err != nil {
		t.Fatalf("capped allocation infeasible: %v", err)
	}
	// Per-sensor upload within cap; residuals consistent.
	per := make([]float64, len(inst.Sensors))
	for j, i := range res.Alloc.SlotOwner {
		if i >= 0 {
			per[i] += inst.Sensors[i].RateAt(j) * inst.Tau
		}
	}
	for i, v := range per {
		if v > caps[i]+1e-6 {
			t.Fatalf("sensor %d uploaded %v > cap", i, v)
		}
		if math.Abs((caps[i]-v)-res.ResidualData[i]) > 1e-6 {
			t.Fatalf("sensor %d residual data %v inconsistent (uploaded %v)", i, res.ResidualData[i], v)
		}
	}
	// The caps must actually bind relative to the uncapped run.
	uncapped := paperInstance(t, 80, 13, radio.Paper2013(), 5, 1)
	free, err := Run(uncapped, &Sequential{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Data >= free.Data {
		t.Errorf("caps did not bind: %v vs %v", res.Data, free.Data)
	}
}

// Registration contention (internal/mac) degrades throughput gracefully:
// more backoff slots recover more of the ideal-registration throughput.
func TestRegistrationContention(t *testing.T) {
	inst := paperInstance(t, 150, 14, radio.Paper2013(), 5, 1)
	ideal, err := Run(inst, &Appro{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, w := range []int{2, 8, 64} {
		res, err := RunOpts(inst, &Appro{}, Options{AckWindow: w, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Validate(res.Alloc); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if res.Data > ideal.Data+1e-6 {
			t.Fatalf("w=%d: contention cannot beat ideal (%v vs %v)", w, res.Data, ideal.Data)
		}
		if res.Data < prev*0.9 {
			t.Fatalf("w=%d: throughput %v fell far below smaller window %v", w, res.Data, prev)
		}
		prev = res.Data
	}
	// A wide window recovers nearly the ideal throughput.
	wide, err := RunOpts(inst, &Appro{}, Options{AckWindow: 256, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Data < ideal.Data*0.95 {
		t.Errorf("wide window recovers only %v of ideal %v", wide.Data, ideal.Data)
	}
	// Determinism per seed.
	again, err := RunOpts(inst, &Appro{}, Options{AckWindow: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res8, err := RunOpts(inst, &Appro{}, Options{AckWindow: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if again.Data != res8.Data {
		t.Error("contention runs must be deterministic per seed")
	}
}

// The paper's literal copies+Hungarian construction and the capacity-aware
// flow backend must collect identical throughput on live tours.
func TestMaxMatchBackendsAgree(t *testing.T) {
	fp, _ := radio.NewFixedPower(radio.Paper2013(), 0.3)
	for seed := int64(30); seed < 33; seed++ {
		inst := paperInstance(t, 100, seed, fp, 5, 1)
		flow, err := Run(inst, &MaxMatch{})
		if err != nil {
			t.Fatal(err)
		}
		hung, err := Run(inst, &MaxMatch{UseHungarian: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(flow.Data-hung.Data) > 1e-6 {
			t.Fatalf("seed %d: flow %v != hungarian %v", seed, flow.Data, hung.Data)
		}
	}
}
