package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mobisink/internal/core"
	"mobisink/internal/fault"
	"mobisink/internal/mac"
	"mobisink/internal/sim"
)

// This file is the self-healing variant of the protocol loop: it runs only
// when Options enables fault injection (or a compute deadline), so the
// fault-free path in online.go stays byte-identical to the paper's
// idealized protocol. Recovery mechanisms, in protocol order:
//
//   1. bounded Probe/Ack retransmission — sensors that missed the Probe or
//      whose Ack was lost get up to Plan.MaxRetries extra registration
//      rounds (each costs one Probe broadcast plus the stragglers' Acks);
//   2. budget feasibility guard — a sensor that missed a Finish broadcast
//      re-registers with a stale (undebited) budget; the sink clamps the
//      claim against its own ledger so a stale registration can never
//      overdraw the physical budget;
//   3. degraded mode — an interval whose scheduler blows its compute
//      deadline (injected via Plan.StallProb/StallIntervals, or measured
//      against Options.ComputeDeadline) falls back to the density-greedy
//      scheduler instead of idling the interval;
//   4. schedule repair — when a scheduled sensor goes silent (crashed or
//      deaf to the Schedule broadcast), the sink loses one slot detecting
//      it, then reassigns the sensor's remaining slots to the next-best
//      registered sensor, re-checking energy and data budgets per slot so
//      repairs never overdraw anyone.

// faultState carries the per-tour recovery bookkeeping.
type faultState struct {
	inj   *fault.Injector
	stats *fault.Stats
	// reported[i] is sensor i's own budget bookkeeping: it debits on
	// Finish receipt (paper protocol), so a jammed Finish leaves it stale
	// above the physical residual until the next delivered Finish.
	reported []float64
	// deficitApplied[i] is the cumulative harvest shortfall already
	// written off sensor i's budgets.
	deficitApplied []float64
	degraded       Scheduler
}

// newFaultState builds the recovery bookkeeping for one tour.
func newFaultState(inj *fault.Injector, inst *core.Instance, opts Options, res *Result) *faultState {
	fs := &faultState{
		inj:            inj,
		stats:          &fault.Stats{},
		reported:       make([]float64, len(inst.Sensors)),
		deficitApplied: make([]float64, len(inst.Sensors)),
		degraded:       opts.Degraded,
	}
	copy(fs.reported, res.Residual)
	if fs.degraded == nil {
		if inst.DataCaps != nil {
			fs.degraded = &Sequential{}
		} else {
			fs.degraded = &Greedy{}
		}
	}
	return fs
}

// finishFilter is the discrete-event hook dropping jammed Finish
// broadcasts; it consults the same pure roll as the budget bookkeeping,
// so both layers agree on which intervals lost their Finish.
func (fs *faultState) finishFilter(name string, _ float64) bool {
	var j int
	if _, err := fmt.Sscanf(name, "finish-%d", &j); err == nil {
		return !fs.inj.FinishJammed(j)
	}
	return true
}

// runIntervalFaulty is runInterval under the fault plan: the same
// probe → ack → schedule → transmit → finish cycle, with drops injected
// and the recovery protocol active.
func runIntervalFaulty(ctx context.Context, eng *sim.Engine, inst *core.Instance, sched Scheduler, iv Interval, res *Result, opts Options, contention *rand.Rand, fs *faultState) error {
	inj, st := fs.inj, fs.stats

	// Harvest shortfalls discovered by this interval's start are written
	// off both the physical residual and the sensor's own bookkeeping
	// (the sensor meters its own harvester; mid-interval shortfalls are
	// quantized to the next interval boundary).
	for i := range inst.Sensors {
		d := inj.Deficit(i, iv.Start) - fs.deficitApplied[i]
		if d <= 0 {
			continue
		}
		fs.deficitApplied[i] += d
		res.Residual[i] = math.Max(0, res.Residual[i]-d)
		fs.reported[i] = math.Max(0, fs.reported[i]-d)
		st.ShortfallJoules += d
	}

	sinkPos := inst.Traj.PosAtSlotStart(iv.Start)
	var inRange []int
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		if s.Start < 0 || sinkPos.Dist(s.Pos) > inst.Range {
			continue
		}
		if !inj.Alive(i, iv.Start) {
			st.CrashSilences++
			continue
		}
		inRange = append(inRange, i)
	}

	// Registration with bounded retransmission: round 0 is the paper's
	// exchange; every extra round re-probes the sensors still missing.
	registered := make(map[int]bool, len(inRange))
	for attempt := 0; attempt <= inj.MaxRetries(); attempt++ {
		var pending []int
		for _, i := range inRange {
			if !registered[i] {
				pending = append(pending, i)
			}
		}
		if len(pending) == 0 {
			if attempt == 0 {
				eng.Count("probe", 1) // the sink probes even an empty cell
			}
			break
		}
		// Retransmit rounds are tallied apart from the paper's per-interval
		// probe so MessageStats separates baseline from recovery traffic.
		if attempt > 0 {
			st.ProbeRetransmissions++
			eng.Count("probe-retransmit", 1)
		} else {
			eng.Count("probe", 1)
		}
		var hearers []int
		for _, i := range pending {
			if !inj.ProbeHeard(iv.Index, i, attempt) {
				st.ProbesDropped++
				continue
			}
			hearers = append(hearers, i)
		}
		// Stats.AcksLost counts injected erasures only; contention
		// collisions are channel physics and stay in the engine's
		// "ack-lost" counter, same as the fault-free path.
		heard := make([]bool, len(hearers))
		if contention != nil && opts.AckWindow > 0 {
			a := attempt
			ok, err := mac.CSMAWindowLossy(len(hearers), opts.AckWindow, contention,
				func(k, try int) bool {
					if inj.AckLost(iv.Index, hearers[k], a<<20|try) {
						st.AcksLost++
						return true
					}
					return false
				})
			if err != nil {
				return err
			}
			heard = ok
		} else {
			for k, i := range hearers {
				lost := inj.AckLost(iv.Index, i, attempt<<20)
				if lost {
					st.AcksLost++
				}
				heard[k] = !lost
			}
		}
		for k, i := range hearers {
			eng.Count("ack", 1)
			if !heard[k] {
				eng.Count("ack-lost", 1)
				continue
			}
			registered[i] = true
		}
	}

	// Canonical registration order (sensor index) regardless of which
	// round an Ack landed in, with the sink-side feasibility guard: the
	// sensor's claimed budget is clamped against the physical residual so
	// a stale (Finish-jammed) registration can never overdraw.
	var regs []Registration
	for _, i := range inRange {
		if !registered[i] {
			continue
		}
		s := &inst.Sensors[i]
		res.RegisteredIn[i] = append(res.RegisteredIn[i], iv.Index)
		cs, ce := s.Start, s.End
		if cs < iv.Start {
			cs = iv.Start
		}
		if ce > iv.End {
			ce = iv.End
		}
		budget := fs.reported[i]
		if budget > res.Residual[i] {
			st.BudgetClamps++
			budget = res.Residual[i]
		}
		regs = append(regs, Registration{
			Sensor: i, Budget: budget, DataLeft: res.ResidualData[i],
			ClipStart: cs, ClipEnd: ce,
		})
	}
	if len(regs) == 0 {
		return nil
	}

	// Scheduler, with degraded-mode fallback on compute-deadline stalls.
	assign, err := fs.schedule(ctx, inst, sched, iv, regs, opts)
	if err != nil {
		return fmt.Errorf("online: interval %d: %w", iv.Index, err)
	}
	eng.Count("schedule", 1)
	if err := commitFaulty(eng, inst, iv, regs, assign, res, fs); err != nil {
		return fmt.Errorf("online: interval %d: %w", iv.Index, err)
	}

	// Finish broadcast: the discrete-event filter drops it when jammed;
	// the sensors that heard it sync their bookkeeping to the physical
	// residual (their debit), the rest stay stale for the guard to catch.
	if inj.FinishJammed(iv.Index) {
		st.FinishesJammed++
	} else {
		for _, r := range regs {
			fs.reported[r.Sensor] = res.Residual[r.Sensor]
		}
	}
	finishAt := (float64(iv.End) + 1) * inst.Tau
	return eng.Schedule(finishAt, fmt.Sprintf("finish-%d", iv.Index), func(float64) {
		eng.Count("finish", 1)
	})
}

// schedule runs the interval's scheduler under the stall model: an
// injected stall skips the primary scheduler outright; a measured
// compute-deadline overrun (Options.ComputeDeadline) aborts it mid-search
// via context. Either way the interval is rescheduled by the degraded
// fallback instead of idling.
func (fs *faultState) schedule(ctx context.Context, inst *core.Instance, sched Scheduler, iv Interval, regs []Registration, opts Options) (map[int]int, error) {
	if fs.inj.Stalled(iv.Index) {
		fs.stats.DegradedIntervals++
		return fs.degraded.Schedule(ctx, inst, iv, regs)
	}
	if opts.ComputeDeadline > 0 {
		cctx, cancel := context.WithTimeout(ctx, opts.ComputeDeadline)
		assign, err := sched.Schedule(cctx, inst, iv, regs)
		cancel()
		if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			fs.stats.DegradedIntervals++
			return fs.degraded.Schedule(ctx, inst, iv, regs)
		}
		return assign, err
	}
	return sched.Schedule(ctx, inst, iv, regs)
}

// commitFaulty validates the scheduler's output against the protocol
// rules, then commits it slot by slot under the failure model: silent
// sensors cost the sink one detection slot, their remaining slots are
// repaired to the next-best registered sensor, and every commitment —
// planned or repaired — re-checks the energy and data budgets so nothing
// overdraws. On a quiet interval (nothing fired) it commits exactly what
// applyAssignment would.
func commitFaulty(eng *sim.Engine, inst *core.Instance, iv Interval, regs []Registration, assign map[int]int, res *Result, fs *faultState) error {
	inj, st := fs.inj, fs.stats
	regOf := make(map[int]*Registration, len(regs))
	for k := range regs {
		regOf[regs[k].Sensor] = &regs[k]
	}
	// Protocol-rule validation of the raw scheduler output, identical to
	// the fault-free path: misbehavior is an error, not a fault to heal.
	slots := make([]int, 0, len(assign))
	for slot, sensor := range assign {
		r, ok := regOf[sensor]
		if !ok {
			return fmt.Errorf("scheduler assigned slot %d to unregistered sensor %d", slot, sensor)
		}
		if slot < r.ClipStart || slot > r.ClipEnd {
			return fmt.Errorf("slot %d outside clipped window [%d,%d] of sensor %d", slot, r.ClipStart, r.ClipEnd, sensor)
		}
		if res.Alloc.SlotOwner[slot] != -1 {
			return fmt.Errorf("slot %d double-booked", slot)
		}
		slots = append(slots, slot)
	}
	sort.Ints(slots)

	// deaf: registered sensors that missed the Schedule broadcast. They
	// neither transmit nor accept repair assignments this interval.
	deaf := make(map[int]bool)
	for _, r := range regs {
		if !inj.ScheduleHeard(iv.Index, r.Sensor) {
			deaf[r.Sensor] = true
		}
	}
	countedDeaf := make(map[int]bool)
	detected := make(map[int]bool) // sensors the sink has caught silent
	spend := make(map[int]float64)
	dataSpend := make(map[int]float64)

	// fits reports whether the sensor can afford one more transmission at
	// the slot on top of what this interval already committed to it.
	fits := func(sensor, slot int) bool {
		r := regOf[sensor]
		e := inst.Sensors[sensor].PowerAt(slot) * inst.Tau
		d := inst.Sensors[sensor].RateAt(slot) * inst.Tau
		if spend[sensor]+e > r.Budget+1e-9 {
			return false
		}
		return dataSpend[sensor]+d <= r.DataLeft+1e-6
	}
	commit := func(sensor, slot int) {
		spend[sensor] += inst.Sensors[sensor].PowerAt(slot) * inst.Tau
		dataSpend[sensor] += inst.Sensors[sensor].RateAt(slot) * inst.Tau
		res.Alloc.SlotOwner[slot] = sensor
	}
	// repair finds the next-best replacement for a slot: the eligible
	// registered sensor with the highest rate there. The repair is a
	// unicast schedule update, itself subject to the Schedule drop rate.
	repair := func(slot, exclude int) {
		best, bestRate := -1, 0.0
		for _, r := range regs {
			i := r.Sensor
			if i == exclude || deaf[i] || detected[i] || !inj.Alive(i, slot) {
				continue
			}
			if slot < r.ClipStart || slot > r.ClipEnd {
				continue
			}
			rate, pw := inst.Sensors[i].RateAt(slot), inst.Sensors[i].PowerAt(slot)
			if rate <= 0 || pw <= 0 || !fits(i, slot) {
				continue
			}
			if rate > bestRate {
				best, bestRate = i, rate
			}
		}
		if best < 0 {
			st.LostSlots++
			return
		}
		eng.Count("repair", 1) // the unicast is sent whether or not it lands
		if inj.RepairLost(iv.Index, best, slot) {
			st.LostSlots++
			return
		}
		st.RepairedSlots++
		commit(best, slot)
	}

	for _, slot := range slots {
		sensor := assign[slot]
		switch {
		case deaf[sensor]:
			if !countedDeaf[sensor] {
				countedDeaf[sensor] = true
				st.SchedulesMissed++
			}
			if !detected[sensor] {
				// The sink spends this slot discovering the silence.
				detected[sensor] = true
				st.LostSlots++
				continue
			}
			repair(slot, sensor)
		case !inj.Alive(sensor, slot):
			if !detected[sensor] {
				detected[sensor] = true
				st.LostSlots++
				continue
			}
			repair(slot, sensor)
		case detected[sensor]:
			// Once caught silent, the sink stops trusting the sensor for
			// the rest of the interval even if it comes back.
			repair(slot, sensor)
		case !fits(sensor, slot):
			// Only possible after a repair consumed this sensor's budget;
			// the sink made that repair, so it reassigns proactively
			// without losing a detection slot.
			repair(slot, sensor)
		default:
			commit(sensor, slot)
		}
	}

	// Debit physical residuals exactly like the fault-free path (one
	// subtraction per sensor, in slot-accumulation order).
	for sensor, e := range spend {
		res.Residual[sensor] = math.Max(0, res.Residual[sensor]-e)
		if !math.IsInf(res.ResidualData[sensor], 1) {
			res.ResidualData[sensor] = math.Max(0, res.ResidualData[sensor]-dataSpend[sensor])
		}
	}
	return nil
}
