package online

import (
	"math"
	"math/rand"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/fault"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

// fuzzInstance builds a small tour (fast enough for the fuzz loop) once.
func fuzzInstance(f *testing.F) *core.Instance {
	f.Helper()
	d, err := network.Generate(network.Params{N: 12, PathLength: 2000, MaxOffset: 120, Seed: 4})
	if err != nil {
		f.Fatal(err)
	}
	h := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(4))
	if err := d.AssignSteadyStateBudgets(h, 2000/10.0, 0.2, rng); err != nil {
		f.Fatal(err)
	}
	inst, err := core.BuildInstance(d, radio.Paper2013(), 10, 1)
	if err != nil {
		f.Fatal(err)
	}
	return inst
}

// FuzzFaultPlan throws malformed fault plans — NaN and out-of-range drop
// rates, crash windows past the tour end or inverted, shortfalls at
// impossible slots, huge retry counts — at the validator and the online
// runner. Validate and NewInjector must reject garbage without panicking;
// the sanitized plan must run to completion with an invariant-clean
// schedule (Run's internal Validate enforces ≤1 sensor per slot and no
// energy or data overdraw; Lemma 1 is checked here).
func FuzzFaultPlan(f *testing.F) {
	inst := fuzzInstance(f)
	f.Add(int64(1), 0.1, 0.1, 0.1, 0.1, 0.05, 2, 3, 10, 40, 5, 12, 0.5, 1)
	f.Add(int64(7), math.NaN(), -1.0, 2.0, 0.3, 1.5, -3, 99, -5, 1<<30, -1, 1<<29, math.Inf(1), -4)
	f.Add(int64(-9), 1.0, 1.0, 1.0, 1.0, 1.0, 100, 0, 500, 100, 2, 0, -3.0, 7)
	f.Fuzz(func(t *testing.T, seed int64,
		dropProbe, dropAck, dropSchedule, dropFinish, stallProb float64,
		retries, crashSensor, crashFrom, crashTo, sfSensor, sfSlot int,
		sfJoules float64, stallIv int) {
		raw := fault.Plan{
			Seed:         seed,
			DropProbe:    dropProbe,
			DropAck:      dropAck,
			DropSchedule: dropSchedule,
			DropFinish:   dropFinish,
			StallProb:    stallProb,
			MaxRetries:   retries,
			Crashes: []fault.Crash{
				{Sensor: crashSensor, From: crashFrom, To: crashTo},
				// Overlapping recovery windows for the same sensor.
				{Sensor: crashSensor, From: crashFrom - 2, To: crashFrom + 2},
			},
			Shortfalls:     []fault.Shortfall{{Sensor: sfSensor, Slot: sfSlot, Joules: sfJoules}},
			StallIntervals: []int{stallIv, stallIv},
		}
		// Garbage in: reject or accept, never panic.
		rawErr := raw.Validate()
		if _, err := fault.NewInjector(raw, len(inst.Sensors), inst.T); err == nil && rawErr != nil {
			t.Fatalf("injector accepted a plan Validate rejected: %v", rawErr)
		}
		// Sanitized plans must be valid and runnable.
		plan := raw.Sanitized(len(inst.Sensors), inst.T)
		if err := plan.Validate(); err != nil {
			t.Fatalf("Sanitized produced an invalid plan: %v", err)
		}
		res, err := RunOpts(inst, &Greedy{}, Options{Faults: &plan})
		if err != nil {
			t.Fatalf("sanitized plan failed the tour: %v", err)
		}
		if err := res.CheckLemma1(); err != nil {
			t.Fatal(err)
		}
		for i, r := range res.Residual {
			if r < 0 || math.IsNaN(r) {
				t.Fatalf("sensor %d residual %v after faults", i, r)
			}
		}
	})
}
