package online

import (
	"context"
	"math"
	"sort"

	"mobisink/internal/core"
	"mobisink/internal/knapsack"
)

// Sequential is the per-interval scheduler for instances with finite data
// queues (core.Instance.DataCaps): registered sensors are processed in
// (clipped start, clipped end) order and each solves an exact knapsack over
// the still-unclaimed interval slots, doubly constrained by its residual
// energy budget and its residual data. On uncapped instances it degrades to
// plain sequential packing (a 1/2-approximation for separable assignment).
type Sequential struct {
	Opts core.Options
}

// Name implements Scheduler.
func (s *Sequential) Name() string { return "Online_Sequential" }

// CapAware marks the scheduler as safe for data-capped instances.
func (s *Sequential) CapAware() bool { return true }

// Schedule implements Scheduler.
func (s *Sequential) Schedule(ctx context.Context, inst *core.Instance, iv Interval, regs []Registration) (map[int]int, error) {
	order := make([]int, len(regs))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(x, y int) bool {
		rx, ry := regs[order[x]], regs[order[y]]
		if rx.ClipStart != ry.ClipStart {
			return rx.ClipStart < ry.ClipStart
		}
		if rx.ClipEnd != ry.ClipEnd {
			return rx.ClipEnd < ry.ClipEnd
		}
		return rx.Sensor < ry.Sensor
	})
	assign := make(map[int]int)
	solve := s.Opts.SolverCtx(inst)
	quantum := inst.RateQuantumBits()
	var items []knapsack.Item
	var slots []int
	for _, k := range order {
		r := regs[k]
		sen := &inst.Sensors[r.Sensor]
		items = items[:0]
		slots = slots[:0]
		for j := r.ClipStart; j <= r.ClipEnd; j++ {
			if _, taken := assign[j]; taken {
				continue
			}
			rate, pw := sen.RateAt(j), sen.PowerAt(j)
			if rate <= 0 || pw <= 0 {
				continue
			}
			items = append(items, knapsack.Item{Profit: rate * inst.Tau, Weight: pw * inst.Tau})
			slots = append(slots, j)
		}
		var sol knapsack.Solution
		var err error
		if math.IsInf(r.DataLeft, 1) {
			sol, err = solve(ctx, items, r.Budget)
		} else {
			sol, err = knapsack.MaxProfitUnderCtx(ctx, items, r.Budget, r.DataLeft, quantum)
		}
		if err != nil {
			return nil, err
		}
		for _, p := range sol.Picked {
			assign[slots[p]] = r.Sensor
		}
	}
	return assign, nil
}
