// Package online implements the paper's distributed data-collection
// framework (Algorithm 2) and its two per-interval time-slot schedulers:
//
//   - Appro  — the GAP-based scheduler of §V.B (Online_Appro),
//   - MaxMatch — the matching-based scheduler of §VI for the fixed
//     transmission power special case (Online_MaxMatch),
//
// plus a density-greedy scheduler as a baseline.
//
// Per tour the sink divides the T slots into intervals of Γ = ⌊R/(r_s·τ)⌋
// slots. At each interval start it broadcasts a Probe; sensors currently in
// range reply with an Ack carrying their profile (position, residual
// budget, window); when the registration timer expires the sink runs the
// scheduler over the interval's slots and the registered sensors only,
// broadcasts the Schedule, collects data, then broadcasts Finish, at which
// point the registered sensors debit their energy budgets. The sink never
// learns about sensors it has not probed — that locality is the only
// difference from the offline algorithms, and Lemma 1 guarantees every
// sensor is probed in at most two consecutive intervals.
package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/fault"
	"mobisink/internal/gap"
	"mobisink/internal/knapsack"
	"mobisink/internal/mac"
	"mobisink/internal/matching"
	"mobisink/internal/sim"
)

// Registration is the sensor profile carried by an Ack message, as visible
// to the sink in one interval.
type Registration struct {
	Sensor int     // sensor index
	Budget float64 // residual energy at registration time, J
	// DataLeft is the residual sensed data still queued at the sensor,
	// bits; +Inf on instances without data caps.
	DataLeft float64
	// ClipStart/ClipEnd is [i'_s, i'_e] = A(v) ∩ interval, inclusive;
	// ClipStart > ClipEnd when the overlap is empty.
	ClipStart, ClipEnd int
}

// Interval describes one probe interval.
type Interval struct {
	Index      int // j
	Start, End int // inclusive slot range [a_j, b_j]
}

// Scheduler allocates one interval's slots among the registered sensors.
// Implementations must respect each registration's residual budget and
// clipped window, and should poll ctx inside long computations so a
// canceled tour aborts mid-interval. The returned map is
// slot → sensor index.
type Scheduler interface {
	Name() string
	Schedule(ctx context.Context, inst *core.Instance, iv Interval, regs []Registration) (map[int]int, error)
}

// MessageStats counts protocol messages per tour.
type MessageStats struct {
	Probes    int // broadcast probes (one per interval, the paper's exchange)
	Acks      int // sensor acknowledgements
	Schedules int // broadcast scheduling results
	Finishes  int // broadcast finish messages
	// Retransmits counts the extra Probe broadcasts of the recovery
	// protocol's registration rounds beyond the paper's single exchange
	// (always 0 on fault-free runs).
	Retransmits int
	// RepairUnicasts counts the unicast schedule-repair messages that
	// reassign a silent sensor's slot to a replacement (always 0 on
	// fault-free runs).
	RepairUnicasts int
}

// Total returns all messages sent per tour, including the recovery
// traffic (retransmitted probes and repair unicasts).
func (m MessageStats) Total() int {
	return m.Probes + m.Acks + m.Schedules + m.Finishes + m.Retransmits + m.RepairUnicasts
}

// Result is the outcome of one simulated tour.
type Result struct {
	Alloc     *core.Allocation
	Data      float64 // bits collected
	Messages  MessageStats
	Intervals int
	// RegisteredIn[i] lists the interval indices in which sensor i
	// registered (for the Lemma 1 check).
	RegisteredIn [][]int
	// Residual[i] is sensor i's remaining budget after the tour.
	Residual []float64
	// ResidualData[i] is sensor i's remaining queued data after the tour,
	// bits (+Inf entries on uncapped instances).
	ResidualData []float64
	// Fault tallies the injected faults and performed recoveries when the
	// run used a fault plan (Options.Faults or ComputeDeadline); nil on
	// fault-free runs.
	Fault *fault.Stats
}

// NewResult builds the empty tour ledger for an instance: a fresh
// allocation, full energy budgets, and full data caps. Both the
// simulated runner and the wire transport's sink start from it, so
// their ledgers agree bit-for-bit before the first interval.
func NewResult(inst *core.Instance) *Result {
	res := &Result{
		Alloc:        inst.NewAllocation(),
		RegisteredIn: make([][]int, len(inst.Sensors)),
		Residual:     make([]float64, len(inst.Sensors)),
		ResidualData: make([]float64, len(inst.Sensors)),
	}
	for i := range inst.Sensors {
		res.Residual[i] = inst.Sensors[i].Budget
		res.ResidualData[i] = inst.DataCapOf(i)
	}
	return res
}

// CheckLemma1 verifies each sensor registered in at most two consecutive
// intervals (paper Lemma 1).
func (r *Result) CheckLemma1() error {
	for i, ivs := range r.RegisteredIn {
		if len(ivs) > 2 {
			return fmt.Errorf("online: sensor %d registered in %d intervals %v", i, len(ivs), ivs)
		}
		if len(ivs) == 2 && ivs[1] != ivs[0]+1 {
			return fmt.Errorf("online: sensor %d registered in non-consecutive intervals %v", i, ivs)
		}
	}
	return nil
}

// Options tunes protocol realism beyond the paper's idealized assumptions.
type Options struct {
	// AckWindow, when positive, simulates CSMA contention during the
	// registration phase with that many backoff slots per interval
	// (internal/mac); sensors whose Ack collides miss the interval. The
	// paper assumes AckWindow = 0, i.e. collision-free registration.
	AckWindow int
	// Seed drives the contention randomness; runs are deterministic per
	// seed.
	Seed int64
	// Rand, when non-nil, supplies the contention randomness directly
	// instead of deriving a stream from Seed — injecting one generator
	// makes a whole experiment (topology, budgets, contention, faults)
	// reproducible from a single source. The run consumes the generator;
	// reusing it across runs changes their draws.
	Rand *rand.Rand
	// Faults, when non-nil and non-zero, injects the fault plan into the
	// tour (message drops, crashes, harvest shortfalls, compute stalls —
	// see internal/fault) and enables the recovery protocol: bounded
	// Probe/Ack retransmission, schedule repair, budget feasibility
	// guards, and degraded-mode fallback. Nil (or a zero plan) keeps the
	// paper's lossless channel and the byte-identical fault-free path.
	Faults *fault.Plan
	// ComputeDeadline, when positive, bounds each interval's scheduler
	// wall-clock time; an interval whose scheduler overruns it falls back
	// to the degraded scheduler (wall-clock dependent, so off by default;
	// deterministic stalls are injected via Faults.StallProb instead).
	ComputeDeadline time.Duration
	// Degraded overrides the fallback scheduler used for stalled
	// intervals. Nil picks the density-greedy scheduler (Sequential on
	// data-capped instances, which Greedy cannot handle).
	Degraded Scheduler
}

// contentionRand returns the RNG driving registration contention and
// fault-path draws: the injected generator when set, else a fresh stream
// from Seed.
func (o Options) contentionRand() *rand.Rand {
	if o.Rand != nil {
		return o.Rand
	}
	return rand.New(rand.NewSource(o.Seed))
}

// Run simulates one tour of the online protocol over the instance using the
// given scheduler, driving all message exchanges through a discrete-event
// engine, under the paper's idealized registration (no Ack contention).
func Run(inst *core.Instance, sched Scheduler) (*Result, error) {
	return RunCtx(context.Background(), inst, sched, Options{})
}

// RunOpts is Run with protocol options.
func RunOpts(inst *core.Instance, sched Scheduler, opts Options) (*Result, error) {
	return RunCtx(context.Background(), inst, sched, opts)
}

// RunCtx is RunOpts with cancellation: the context is polled at every
// interval boundary and threaded into the scheduler, so a canceled job
// stops between (or inside) intervals instead of finishing the tour.
func RunCtx(ctx context.Context, inst *core.Instance, sched Scheduler, opts Options) (*Result, error) {
	if inst == nil {
		return nil, errors.New("online: nil instance")
	}
	if sched == nil {
		return nil, errors.New("online: nil scheduler")
	}
	if inst.NumSinks() > 1 {
		return nil, fmt.Errorf("online: the online protocol drives a single sink, instance has a fleet of %d", inst.NumSinks())
	}
	if inst.DataCaps != nil {
		aware, ok := sched.(interface{ CapAware() bool })
		if !ok || !aware.CapAware() {
			return nil, fmt.Errorf("online: scheduler %s does not handle data-capped instances (use Sequential)", sched.Name())
		}
	}
	eng := sim.NewEngine()
	res := NewResult(inst)

	gamma := inst.Gamma
	intervals := (inst.T + gamma - 1) / gamma
	res.Intervals = intervals

	var contention *rand.Rand
	if opts.AckWindow > 0 {
		contention = opts.contentionRand()
	}
	// The fault path is taken only when something can actually fire, so
	// the common fault-free run never diverges from the paper's protocol.
	var fs *faultState
	if (opts.Faults != nil && !opts.Faults.Zero()) || opts.ComputeDeadline > 0 {
		if inst.DataCaps != nil && opts.Degraded != nil {
			aware, ok := opts.Degraded.(interface{ CapAware() bool })
			if !ok || !aware.CapAware() {
				return nil, fmt.Errorf("online: degraded scheduler %s does not handle data-capped instances", opts.Degraded.Name())
			}
		}
		plan := fault.Plan{}
		if opts.Faults != nil {
			plan = *opts.Faults
		}
		if plan.Seed == 0 {
			plan.Seed = opts.Seed // one seed reproduces the whole run
		}
		inj, err := fault.NewInjector(plan, len(inst.Sensors), inst.T)
		if err != nil {
			return nil, err
		}
		fs = newFaultState(inj, inst, opts, res)
		res.Fault = fs.stats
		eng.SetFilter(fs.finishFilter)
	}
	var schedErr error
	for j := 0; j < intervals; j++ {
		j := j
		start := j * gamma
		end := start + gamma - 1
		if end >= inst.T {
			end = inst.T - 1
		}
		iv := Interval{Index: j, Start: start, End: end}
		probeAt := float64(start) * inst.Tau
		err := eng.Schedule(probeAt, fmt.Sprintf("probe-%d", j), func(now float64) {
			if schedErr != nil {
				return
			}
			if schedErr = ctx.Err(); schedErr != nil {
				return
			}
			if fs != nil {
				schedErr = runIntervalFaulty(ctx, eng, inst, sched, iv, res, opts, contention, fs)
			} else {
				schedErr = runInterval(ctx, eng, inst, sched, iv, res, opts, contention)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	eng.Run()
	if schedErr != nil {
		return nil, schedErr
	}
	res.Messages = MessageStats{
		Probes:         eng.Counter("probe"),
		Acks:           eng.Counter("ack"),
		Schedules:      eng.Counter("schedule"),
		Finishes:       eng.Counter("finish"),
		Retransmits:    eng.Counter("probe-retransmit"),
		RepairUnicasts: eng.Counter("repair"),
	}
	inst.RecomputeData(res.Alloc)
	res.Data = res.Alloc.Data
	if _, err := inst.Validate(res.Alloc); err != nil {
		return nil, fmt.Errorf("online: produced infeasible allocation: %w", err)
	}
	return res, nil
}

// runInterval executes the probe → ack → schedule → transmit → finish cycle
// of one interval.
func runInterval(ctx context.Context, eng *sim.Engine, inst *core.Instance, sched Scheduler, iv Interval, res *Result, opts Options, contention *rand.Rand) error {
	eng.Count("probe", 1)
	sinkPos := inst.Traj.PosAtSlotStart(iv.Start)

	// Sensors in range of the probe ack with their profiles.
	var inRange []int
	for i := range inst.Sensors {
		s := &inst.Sensors[i]
		if s.Start < 0 || sinkPos.Dist(s.Pos) > inst.Range {
			continue
		}
		inRange = append(inRange, i)
	}
	// Registration contention: every in-range sensor transmits an Ack, but
	// only the contention winners are heard by the sink.
	heard := make([]bool, len(inRange))
	for k := range heard {
		heard[k] = true
	}
	if contention != nil {
		ok, err := mac.CSMAWindow(len(inRange), opts.AckWindow, contention)
		if err != nil {
			return err
		}
		heard = ok
	}
	var regs []Registration
	for k, i := range inRange {
		eng.Count("ack", 1) // the Ack is sent regardless of collisions
		if !heard[k] {
			eng.Count("ack-lost", 1)
			continue
		}
		s := &inst.Sensors[i]
		res.RegisteredIn[i] = append(res.RegisteredIn[i], iv.Index)
		cs, ce := s.Start, s.End
		if cs < iv.Start {
			cs = iv.Start
		}
		if ce > iv.End {
			ce = iv.End
		}
		regs = append(regs, Registration{
			Sensor: i, Budget: res.Residual[i], DataLeft: res.ResidualData[i],
			ClipStart: cs, ClipEnd: ce,
		})
	}
	if len(regs) == 0 {
		return nil // nobody answered; the sink idles this interval
	}

	// Registration timer expiry: run the scheduler, broadcast the result.
	assign, err := sched.Schedule(ctx, inst, iv, regs)
	if err != nil {
		return fmt.Errorf("online: interval %d: %w", iv.Index, err)
	}
	eng.Count("schedule", 1)
	if err := applyAssignment(inst, iv, regs, assign, res); err != nil {
		return fmt.Errorf("online: interval %d: %w", iv.Index, err)
	}

	// Finish broadcast at the end of the interval; budgets were already
	// debited in applyAssignment (the sensors' update on Finish receipt).
	finishAt := (float64(iv.End) + 1) * inst.Tau
	return eng.Schedule(finishAt, fmt.Sprintf("finish-%d", iv.Index), func(float64) {
		eng.Count("finish", 1)
	})
}

// ApplyAssignment validates a scheduler's output against the protocol
// rules and commits it to the tour allocation and residual budgets. It is
// the single commit path shared by the in-process runner and the wire
// transport (internal/wire), so a sink server debits budgets — including
// the floating-point accumulation order — exactly as RunCtx does.
func ApplyAssignment(inst *core.Instance, iv Interval, regs []Registration, assign map[int]int, res *Result) error {
	return applyAssignment(inst, iv, regs, assign, res)
}

// applyAssignment validates a scheduler's output against the protocol rules
// and commits it to the tour allocation and residual budgets.
func applyAssignment(inst *core.Instance, iv Interval, regs []Registration, assign map[int]int, res *Result) error {
	regOf := make(map[int]*Registration, len(regs))
	for k := range regs {
		regOf[regs[k].Sensor] = &regs[k]
	}
	slots := make([]int, 0, len(assign))
	for slot, sensor := range assign {
		r, ok := regOf[sensor]
		if !ok {
			return fmt.Errorf("scheduler assigned slot %d to unregistered sensor %d", slot, sensor)
		}
		if slot < r.ClipStart || slot > r.ClipEnd {
			return fmt.Errorf("slot %d outside clipped window [%d,%d] of sensor %d", slot, r.ClipStart, r.ClipEnd, sensor)
		}
		if res.Alloc.SlotOwner[slot] != -1 {
			return fmt.Errorf("slot %d double-booked", slot)
		}
		slots = append(slots, slot)
	}
	// Accumulate spends in ascending slot order: summation order pins the
	// floating-point result, keeping residual budgets — and every decision
	// downstream of them — independent of map iteration order.
	sort.Ints(slots)
	spend := make(map[int]float64)
	dataSpend := make(map[int]float64)
	for _, slot := range slots {
		sensor := assign[slot]
		spend[sensor] += inst.Sensors[sensor].PowerAt(slot) * inst.Tau
		dataSpend[sensor] += inst.Sensors[sensor].RateAt(slot) * inst.Tau
	}
	for sensor, e := range spend {
		if e > res.Residual[sensor]+1e-9 {
			return fmt.Errorf("sensor %d scheduled to spend %v J with only %v J left", sensor, e, res.Residual[sensor])
		}
		if d := dataSpend[sensor]; d > res.ResidualData[sensor]+1e-6 {
			return fmt.Errorf("sensor %d scheduled to upload %v bits with only %v queued", sensor, d, res.ResidualData[sensor])
		}
	}
	for slot, sensor := range assign {
		res.Alloc.SlotOwner[slot] = sensor
	}
	for sensor, e := range spend {
		res.Residual[sensor] = math.Max(0, res.Residual[sensor]-e)
		if !math.IsInf(res.ResidualData[sensor], 1) {
			res.ResidualData[sensor] = math.Max(0, res.ResidualData[sensor]-dataSpend[sensor])
		}
	}
	return nil
}

// Appro is the GAP-based scheduler (Online_Appro): within the interval it
// runs the same local-ratio algorithm as the offline solution, restricted
// to the registered sensors and the interval's Γ slots.
type Appro struct {
	Opts core.Options
}

// Name implements Scheduler.
func (a *Appro) Name() string { return "Online_Appro" }

// Schedule implements Scheduler.
func (a *Appro) Schedule(ctx context.Context, inst *core.Instance, iv Interval, regs []Registration) (map[int]int, error) {
	// Order registered sensors by (clipped start, clipped end) — the same
	// ordering rule as offline.
	order := make([]int, len(regs))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(x, y int) bool {
		rx, ry := regs[order[x]], regs[order[y]]
		if rx.ClipStart != ry.ClipStart {
			return rx.ClipStart < ry.ClipStart
		}
		if rx.ClipEnd != ry.ClipEnd {
			return rx.ClipEnd < ry.ClipEnd
		}
		return rx.Sensor < ry.Sensor
	})
	width := iv.End - iv.Start + 1
	g := &gap.Instance{NumItems: width}
	g.Bins = make([]gap.Bin, len(order))
	for b, k := range order {
		r := regs[k]
		s := &inst.Sensors[r.Sensor]
		bin := gap.Bin{Capacity: r.Budget}
		for j := r.ClipStart; j <= r.ClipEnd; j++ {
			rate, pw := s.RateAt(j), s.PowerAt(j)
			if rate <= 0 || pw <= 0 {
				continue
			}
			bin.Entries = append(bin.Entries, gap.Entry{
				Item: j - iv.Start, Profit: rate * inst.Tau, Weight: pw * inst.Tau,
			})
		}
		g.Bins[b] = bin
	}
	asg, err := gap.LocalRatioCtx(ctx, g, a.solver(inst))
	if err != nil {
		return nil, err
	}
	assign := make(map[int]int)
	for item, b := range asg.ItemBin {
		if b >= 0 {
			assign[item+iv.Start] = regs[order[b]].Sensor
		}
	}
	return assign, nil
}

func (a *Appro) solver(inst *core.Instance) knapsack.SolverCtx {
	return a.Opts.SolverCtx(inst)
}

// MaxMatch is the matching-based scheduler for the fixed-power special case
// (Online_MaxMatch): per interval, a maximum-weight matching between
// registered sensors (with capacity n'_i = min(Γ, |[i'_s, i'_e]|,
// ⌊P(v_i)/(P'·τ)⌋)) and the interval's slots.
type MaxMatch struct {
	// UseHungarian switches to the paper's literal construction — n'_i
	// explicit sensor-node copies solved by the O(n³) Hungarian algorithm —
	// instead of the default capacity-aware min-cost flow. Both produce a
	// maximum-weight matching; the flow backend is faster. Kept for
	// validating the equivalence on live instances.
	UseHungarian bool
}

// Name implements Scheduler.
func (m *MaxMatch) Name() string { return "Online_MaxMatch" }

// Schedule implements Scheduler.
func (m *MaxMatch) Schedule(ctx context.Context, inst *core.Instance, iv Interval, regs []Registration) (map[int]int, error) {
	pFixed, ok := inst.FixedTxPower()
	if !ok {
		return nil, errors.New("MaxMatch scheduler requires a fixed transmission power instance")
	}
	perSlot := pFixed * inst.Tau
	width := iv.End - iv.Start + 1
	if m.UseHungarian {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return m.scheduleHungarian(inst, iv, regs, perSlot, width)
	}
	g, err := matching.NewGraph(len(regs), width)
	if err != nil {
		return nil, err
	}
	for k, r := range regs {
		s := &inst.Sensors[r.Sensor]
		nCopies := int(math.Floor(r.Budget/perSlot + 1e-9))
		if w := r.ClipEnd - r.ClipStart + 1; nCopies > w {
			nCopies = w
		}
		if nCopies > inst.Gamma {
			nCopies = inst.Gamma
		}
		if nCopies < 0 {
			nCopies = 0
		}
		if err := g.SetLeftCap(k, nCopies); err != nil {
			return nil, err
		}
		for j := r.ClipStart; j <= r.ClipEnd; j++ {
			if rate := s.RateAt(j); rate > 0 {
				if err := g.AddEdge(k, j-iv.Start, rate*inst.Tau); err != nil {
					return nil, err
				}
			}
		}
	}
	match, err := g.MaxWeightCtx(ctx)
	if err != nil {
		return nil, err
	}
	assign := make(map[int]int)
	for rSlot, k := range match.RightMatch {
		if k >= 0 {
			assign[rSlot+iv.Start] = regs[k].Sensor
		}
	}
	return assign, nil
}

// scheduleHungarian is the paper's G' construction: n'_i identical copies
// per registered sensor, solved with the Hungarian algorithm.
func (m *MaxMatch) scheduleHungarian(inst *core.Instance, iv Interval, regs []Registration, perSlot float64, width int) (map[int]int, error) {
	var rows [][]float64
	var rowSensor []int
	for _, r := range regs {
		s := &inst.Sensors[r.Sensor]
		nCopies := int(math.Floor(r.Budget/perSlot + 1e-9))
		if w := r.ClipEnd - r.ClipStart + 1; nCopies > w {
			nCopies = w
		}
		if nCopies > inst.Gamma {
			nCopies = inst.Gamma
		}
		if nCopies <= 0 {
			continue
		}
		row := make([]float64, width)
		for j := r.ClipStart; j <= r.ClipEnd; j++ {
			if rate := s.RateAt(j); rate > 0 {
				row[j-iv.Start] = rate * inst.Tau
			}
		}
		for c := 0; c < nCopies; c++ {
			rows = append(rows, row)
			rowSensor = append(rowSensor, r.Sensor)
		}
	}
	matchL, _, err := matching.Hungarian(rows)
	if err != nil {
		return nil, err
	}
	assign := make(map[int]int)
	for l, r := range matchL {
		if r >= 0 {
			assign[r+iv.Start] = rowSensor[l]
		}
	}
	return assign, nil
}

// Greedy is a per-interval density-greedy scheduler baseline.
type Greedy struct{}

// Name implements Scheduler.
func (g *Greedy) Name() string { return "Online_Greedy" }

// Schedule implements Scheduler.
func (g *Greedy) Schedule(ctx context.Context, inst *core.Instance, iv Interval, regs []Registration) (map[int]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	width := iv.End - iv.Start + 1
	gi := &gap.Instance{NumItems: width}
	gi.Bins = make([]gap.Bin, len(regs))
	for k, r := range regs {
		s := &inst.Sensors[r.Sensor]
		bin := gap.Bin{Capacity: r.Budget}
		for j := r.ClipStart; j <= r.ClipEnd; j++ {
			rate, pw := s.RateAt(j), s.PowerAt(j)
			if rate <= 0 || pw <= 0 {
				continue
			}
			bin.Entries = append(bin.Entries, gap.Entry{Item: j - iv.Start, Profit: rate * inst.Tau, Weight: pw * inst.Tau})
		}
		gi.Bins[k] = bin
	}
	asg, err := gap.Greedy(gi)
	if err != nil {
		return nil, err
	}
	assign := make(map[int]int)
	for item, b := range asg.ItemBin {
		if b >= 0 {
			assign[item+iv.Start] = regs[b].Sensor
		}
	}
	return assign, nil
}
