package online

import (
	"math"
	"reflect"
	"testing"

	"mobisink/internal/radio"
)

// TestWarmApproTourMetamorphic is the online-loop metamorphic check:
// with SelfCheck armed, every interval's warm solve is re-derived by
// cold-compiling the debited/clipped instance and compared bit-for-bit
// (profit via Float64bits, exact slot owners) inside the scheduler. Any
// divergence fails the tour.
func TestWarmApproTourMetamorphic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		inst := paperInstance(t, 60, seed, radio.Paper2013(), 5, 1)
		res, err := Run(inst, &WarmAppro{SelfCheck: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Data <= 0 {
			t.Fatalf("seed %d: no data collected", seed)
		}
		if v, err := inst.Validate(res.Alloc); err != nil || math.Abs(v-res.Data) > 1e-6 {
			t.Fatalf("seed %d: allocation invalid: %v (v=%v data=%v)", seed, err, v, res.Data)
		}
		if err := res.CheckLemma1(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		for i, r := range res.Residual {
			if r < 0 || r > inst.Sensors[i].Budget+1e-12 {
				t.Fatalf("seed %d: sensor %d residual %v outside [0, %v]", seed, i, r, inst.Sensors[i].Budget)
			}
		}
	}
}

// TestWarmApproDeterministic: two independent warm tours over the same
// instance produce identical allocations.
func TestWarmApproDeterministic(t *testing.T) {
	inst := paperInstance(t, 80, 42, radio.Paper2013(), 5, 1)
	a, err := Run(inst, &WarmAppro{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(inst, &WarmAppro{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Alloc.SlotOwner, b.Alloc.SlotOwner) {
		t.Fatal("warm tours diverged on identical instances")
	}
	if a.Data != b.Data {
		t.Fatalf("warm tours collected %v vs %v bits", a.Data, b.Data)
	}
}

// TestWarmApproComparableToAppro: the warm scheduler solves the same
// per-interval problems as Appro under a different (offline) bin order;
// its tour yield must land in the same ballpark, not collapse.
func TestWarmApproComparableToAppro(t *testing.T) {
	inst := paperInstance(t, 100, 7, radio.Paper2013(), 5, 1)
	warm, err := Run(inst, &WarmAppro{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(inst, &Appro{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Data < 0.5*cold.Data {
		t.Fatalf("warm tour collected %v bits vs Appro's %v — below the shared approximation floor", warm.Data, cold.Data)
	}
}
