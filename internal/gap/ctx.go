package gap

import (
	"context"
	"errors"
	"sync"

	"mobisink/internal/knapsack"
	"mobisink/internal/parallel"
)

// BinSolverCtx is a context-aware BinSolver; it returns the context's
// error once the context is done, aborting the local-ratio sweep.
type BinSolverCtx func(ctx context.Context, bin int, items []knapsack.Item, capacity float64) (knapsack.Solution, error)

// lrScratch holds the per-sweep arrays of one LocalRatio run (residual
// profit claims plus the per-bin item staging buffers), pooled so the
// serving path does not reallocate O(T) state on every request.
type lrScratch struct {
	claim   []float64
	items   []knapsack.Item
	itemIdx []int
}

const lrScratchMax = 1 << 20

var lrPool = sync.Pool{New: func() any { return new(lrScratch) }}

func getLRScratch(numItems int) *lrScratch {
	s := lrPool.Get().(*lrScratch)
	if cap(s.claim) < numItems {
		s.claim = make([]float64, numItems)
	}
	s.claim = s.claim[:numItems]
	for i := range s.claim {
		s.claim[i] = 0
	}
	s.items = s.items[:0]
	s.itemIdx = s.itemIdx[:0]
	return s
}

func putLRScratch(s *lrScratch) {
	if cap(s.claim) > lrScratchMax {
		s.claim = nil
	}
	if cap(s.items) > lrScratchMax {
		s.items = nil
		s.itemIdx = nil
	}
	lrPool.Put(s)
}

// LocalRatioCtx is LocalRatio with cancellation: the context is polled
// before each bin's knapsack and threaded into the oracle itself, so a
// canceled request aborts mid-sweep (and mid-knapsack) instead of packing
// every remaining bin.
func LocalRatioCtx(ctx context.Context, inst *Instance, solve knapsack.SolverCtx) (*Assignment, error) {
	if solve == nil {
		return nil, errors.New("gap: nil knapsack solver")
	}
	return LocalRatioBinsCtx(ctx, inst, func(ctx context.Context, _ int, items []knapsack.Item, capacity float64) (knapsack.Solution, error) {
		return solve(ctx, items, capacity)
	})
}

// LocalRatioBinsCtx is LocalRatioBins with cancellation (see LocalRatioCtx).
func LocalRatioBinsCtx(ctx context.Context, inst *Instance, solve BinSolverCtx) (*Assignment, error) {
	if solve == nil {
		return nil, errors.New("gap: nil bin solver")
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	lastBin := make([]int, inst.NumItems)
	for i := range lastBin {
		lastBin[i] = -1
	}
	a := &Assignment{ItemBin: lastBin}
	if err := localRatioSweep(ctx, inst, solve, binRange{0, len(inst.Bins)}, a); err != nil {
		return nil, err
	}
	return a, nil
}

// binRange selects the contiguous bin slice [lo, hi) of an instance.
type binRange struct{ lo, hi int }

// localRatioSweep runs the residual-profit sweep over the bins in r,
// writing claims into out.ItemBin and accumulating out.Profit. Bins
// outside r must not share items with bins inside r for the result to be
// meaningful in isolation — that is exactly the component property
// LocalRatioParallelCtx relies on.
func localRatioSweep(ctx context.Context, inst *Instance, solve BinSolverCtx, r binRange, out *Assignment) error {
	// lastClaim[j] is the original profit of (l, j) for the most recent bin
	// l whose knapsack selected item j; the residual profit of (i, j) is
	// orig(i, j) − lastClaim[j]. This implements the paper's decomposition
	// D^{(l+1)} / T^{(l+1)} without materializing the n×T matrices.
	sc := getLRScratch(inst.NumItems)
	defer putLRScratch(sc)
	lastClaim := sc.claim
	for b := r.lo; b < r.hi; b++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		bin := inst.Bins[b]
		sc.items = sc.items[:0]
		sc.itemIdx = sc.itemIdx[:0]
		// Same-group dominance reduction (fleet instances): the oracle only
		// ever sees one candidate per (bin, conflict group), mirroring the
		// compile-time reduction of the flat engine so both paths hand the
		// knapsack identical candidate slices.
		drop, _ := reduceGroups(bin.Entries, bin.Capacity, inst.ItemGroup)
		for k, e := range bin.Entries {
			if drop != nil && drop[k] {
				continue
			}
			residual := e.Profit - lastClaim[e.Item]
			if residual <= 0 {
				continue // the knapsack would never take it
			}
			sc.items = append(sc.items, knapsack.Item{Profit: residual, Weight: e.Weight})
			sc.itemIdx = append(sc.itemIdx, e.Item)
		}
		sol, err := solve(ctx, b, sc.items, bin.Capacity)
		if err != nil {
			return err
		}
		for _, k := range sol.Picked {
			j := sc.itemIdx[k]
			e, _ := findEntry(bin.Entries, j)
			lastClaim[j] = e.Profit
			out.ItemBin[j] = b
		}
	}
	// Final pass (paper Algorithm 1 lines 9-12): S_l = S̄_l \ ∪_{j>l} S̄_j,
	// i.e. each item belongs to the last bin that selected it — which is
	// exactly what ItemBin now records.
	for b := r.lo; b < r.hi; b++ {
		for _, e := range inst.Bins[b].Entries {
			if out.ItemBin[e.Item] == b {
				out.Profit += e.Profit
			}
		}
	}
	return nil
}

// Components partitions the bins into connected components of the
// bin–item incidence graph: two bins are connected when they share an
// eligible item. For the data-collection reduction (bins = sensors,
// items = slots, entries = visibility windows) this is exactly the
// grouping of sensors whose windows A(v) transitively overlap — sensors
// in different components never compete for a slot. Each component is
// returned as an ascending slice of bin indices; components are ordered
// by their smallest bin.
//
// Because bins are sorted by window start in the paper's reduction, each
// component is a contiguous bin range there; Components does not assume
// that and works for arbitrary sparse instances via union–find.
func (inst *Instance) Components() [][]int {
	par := make([]int, len(inst.Bins))
	for i := range par {
		par[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for par[x] != x {
			par[x] = par[par[x]]
			x = par[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			par[rb] = ra // root at the smallest bin for deterministic order
		}
	}
	itemBin := make([]int, inst.NumItems)
	for j := range itemBin {
		itemBin[j] = -1
	}
	for b, bin := range inst.Bins {
		for _, e := range bin.Entries {
			if prev := itemBin[e.Item]; prev >= 0 {
				union(prev, b)
			} else {
				itemBin[e.Item] = b
			}
		}
	}
	groups := make(map[int][]int)
	var roots []int
	for b := range inst.Bins {
		r := find(b)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], b)
	}
	comps := make([][]int, 0, len(roots))
	for _, r := range roots { // roots appear in ascending bin order
		comps = append(comps, groups[r])
	}
	return comps
}

// LocalRatioParallelCtx runs LocalRatio per connected component of the
// bin–item graph, components solved concurrently under a worker bound
// (GOMAXPROCS when workers ≤ 0).
//
// Determinism / equivalence: the residual-profit state of the local-ratio
// sweep (lastClaim, lastBin) is indexed by item, and a bin only ever reads
// or writes the entries of its own eligible items. Bins in different
// components share no items, so the sequential sweep's state updates
// commute across components: solving each component independently (with
// bins kept in their original relative order) and merging the disjoint
// item claims yields exactly the sequential assignment, bit for bit.
// Single-component instances skip the goroutine machinery entirely.
func LocalRatioParallelCtx(ctx context.Context, inst *Instance, solve knapsack.SolverCtx, workers int) (*Assignment, error) {
	if solve == nil {
		return nil, errors.New("gap: nil knapsack solver")
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	comps := inst.Components()
	binSolve := func(ctx context.Context, _ int, items []knapsack.Item, capacity float64) (knapsack.Solution, error) {
		return solve(ctx, items, capacity)
	}
	lastBin := make([]int, inst.NumItems)
	for i := range lastBin {
		lastBin[i] = -1
	}
	merged := &Assignment{ItemBin: lastBin}
	if len(comps) <= 1 {
		if err := localRatioSweep(ctx, inst, binSolve, binRange{0, len(inst.Bins)}, merged); err != nil {
			return nil, err
		}
		return merged, nil
	}
	parts := make([]*Assignment, len(comps))
	err := parallel.ForEach(len(comps), workers, func(c int) error {
		bins := comps[c]
		// Contiguous components (the sorted-window case) sweep the shared
		// instance in place; scattered ones get a compacted sub-instance.
		if bins[len(bins)-1]-bins[0] == len(bins)-1 {
			part := &Assignment{ItemBin: make([]int, inst.NumItems)}
			for i := range part.ItemBin {
				part.ItemBin[i] = -1
			}
			parts[c] = part
			return localRatioSweep(ctx, inst, binSolve, binRange{bins[0], bins[len(bins)-1] + 1}, part)
		}
		sub := &Instance{NumItems: inst.NumItems, Bins: make([]Bin, len(bins))}
		for i, b := range bins {
			sub.Bins[i] = inst.Bins[b]
		}
		part := &Assignment{ItemBin: make([]int, inst.NumItems)}
		for i := range part.ItemBin {
			part.ItemBin[i] = -1
		}
		if err := localRatioSweep(ctx, sub, func(ctx context.Context, sb int, items []knapsack.Item, capacity float64) (knapsack.Solution, error) {
			return binSolve(ctx, bins[sb], items, capacity)
		}, binRange{0, len(bins)}, part); err != nil {
			return err
		}
		// Map sub-instance bin indices back to the original numbering.
		for j, sb := range part.ItemBin {
			if sb >= 0 {
				part.ItemBin[j] = bins[sb]
			}
		}
		parts[c] = part
		return nil
	})
	if err != nil {
		return nil, firstError(err)
	}
	for _, part := range parts {
		for j, b := range part.ItemBin {
			if b >= 0 {
				merged.ItemBin[j] = b
			}
		}
		merged.Profit += part.Profit
	}
	return merged, nil
}

// firstError unwraps a parallel.ForEach joined error to a context error
// when one is present (the common cancellation case), else returns the
// join as-is.
func firstError(err error) error {
	if errors.Is(err, context.Canceled) {
		return context.Canceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return context.DeadlineExceeded
	}
	return err
}
