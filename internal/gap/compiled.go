package gap

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mobisink/internal/knapsack"
	"mobisink/internal/parallel"
)

// Compiled is the structure-of-arrays form of an Instance: entries live in
// contiguous bin-major CSR arrays, weights are pre-quantized for the exact
// DP oracle, and the bin–item connected components are precomputed. It is
// built once (validating the instance exactly once) and reused across
// solver calls; Solve/SolveInto are safe for concurrent use as long as no
// Apply runs concurrently (Apply patches the instance in place — see
// delta.go).
//
// Entries that can never be assigned — non-positive profit, or weight
// exceeding the bin capacity — are dropped at compile time; the local-ratio
// sweep over the compiled form is bit-identical to the sweep over the
// original instance, which filters them per call instead.
type Compiled struct {
	NumItems int

	Off    []int32   // CSR bin offsets, len(Bins)+1
	Item   []int32   // item index per entry
	Profit []float64 // profit per entry
	Weight []float64 // weight per entry
	Cap    []float64 // capacity per bin

	// Exact-DP oracle tables, present when Quantum > 0: WQ is the entry
	// weight in quanta (rounded up, keeping every packing feasible), CapU
	// the bin capacity in quanta (rounded down).
	WQ   []int32
	CapU []int32

	Quantum float64 // weight quantum; > 0 selects the exact DP oracle
	Eps     float64 // FPTAS accuracy, used when Quantum == 0

	// MaxDirtyFraction tunes Apply's incremental/full trade-off: when the
	// compiled entries inside dirty components exceed this fraction of all
	// entries, Apply re-solves everything in one sweep instead of
	// re-solving component by component. 0 selects 0.5; negative disables
	// the fallback (always per-component).
	MaxDirtyFraction float64

	allBins     []int32   // [0, 1, …, len(Cap)-1]
	comps       [][]int32 // connected components, ascending bins, ordered by smallest bin
	compEntries []int32   // compiled entry count per component
	compItems   [][]int32 // items appearing in each component's entries
	binComp     []int32   // bin → component index
	maxBin      int       // max compiled entries in one bin

	cap0      []float64 // compile-time capacities (delta representability)
	shedW     []bool    // bin had positive-profit entries dropped for weight > cap
	itemGroup []int     // copy of the source ItemGroup, carried through Remake
	// shedG marks bins whose entries were thinned by the same-group
	// dominance reduction (fleet conflict groups): a patch on such a bin
	// could change which group member a cold compile keeps, which the CSR
	// cannot express, so Apply refuses with ErrDeltaNotRepresentable.
	shedG []bool
	// groupsExact is false when some group reduction dropped an entry not
	// weakly dominated by its winner (see reduceGroups).
	groupsExact bool

	// Patch state, nil/zero until the first Apply (delta.go). Once patched,
	// every solve — incremental or cold — honors the current caps and the
	// per-entry off flags.
	patched bool
	off     []bool    // per-entry disabled flag
	enCount []int32   // per-bin count of entries with off[k] == false
	dataCap []float64 // per-bin data caps; recorded only, the sweep does not read them
	gen     uint64    // bumped by every successful Apply
	warm    warmState
}

// Typed validation errors of Compile (and, via wrapping, CompileAppro).
var (
	// ErrBadQuantum rejects a negative, NaN, or infinite weight quantum
	// (zero is valid and selects the FPTAS oracle).
	ErrBadQuantum = errors.New("gap: quantum must be zero or a positive finite value")
	// ErrBadEps rejects a NaN eps or eps ≥ 1 (eps ≤ 0 keeps the documented
	// 0.1 default).
	ErrBadEps = errors.New("gap: eps must be below 1 and not NaN")
)

// DefaultMinParallelEntries is the component size (in compiled entries)
// below which SolveOptions.Parallel falls back to the sequential sweep:
// goroutine fan-out on tiny components costs more than it saves (the PR-3
// parallel path lost to sequential for exactly this reason).
const DefaultMinParallelEntries = 1024

// SolveOptions tunes a Compiled solve.
type SolveOptions struct {
	// Parallel solves large connected components concurrently. The result
	// is bit-identical to the sequential sweep (components share no items).
	Parallel bool
	// Workers bounds component parallelism when Parallel is set; ≤ 0 means
	// GOMAXPROCS.
	Workers int
	// MinParallelEntries overrides the component size heuristic: components
	// with fewer compiled entries are solved inline by the caller even when
	// Parallel is set. 0 selects DefaultMinParallelEntries; negative
	// disables the fallback (every component is fanned out).
	MinParallelEntries int
}

// Compile builds the flat form of inst. quantum > 0 selects the exact
// quantized-weight DP oracle; otherwise the (1−eps)-FPTAS oracle is used
// (eps ≤ 0 means 0.1). The instance is validated here, once, instead of on
// every solve.
func Compile(inst *Instance, quantum, eps float64) (*Compiled, error) {
	if inst == nil {
		return nil, errors.New("gap: nil instance")
	}
	if math.IsNaN(quantum) || math.IsInf(quantum, 0) || quantum < 0 {
		return nil, fmt.Errorf("%w (got %v)", ErrBadQuantum, quantum)
	}
	if math.IsNaN(eps) || eps >= 1 {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEps, eps)
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if eps <= 0 {
		eps = 0.1
	}
	b := len(inst.Bins)
	c := &Compiled{
		NumItems:    inst.NumItems,
		Off:         make([]int32, b+1),
		Cap:         make([]float64, b),
		Quantum:     quantum,
		Eps:         eps,
		shedW:       make([]bool, b),
		shedG:       make([]bool, b),
		groupsExact: true,
	}
	// Same-group dominance reduction (fleet conflict groups): within each
	// bin, at most one entry per conflict group survives compilation, so
	// the sweep below structurally honors the "one sink per absolute slot"
	// constraint without any per-candidate group bookkeeping.
	var drops [][]bool
	if inst.ItemGroup != nil {
		c.itemGroup = append([]int(nil), inst.ItemGroup...)
		drops = make([][]bool, b)
		for i, bin := range inst.Bins {
			drop, exact := reduceGroups(bin.Entries, bin.Capacity, inst.ItemGroup)
			drops[i] = drop
			if drop != nil {
				c.shedG[i] = true
			}
			if !exact {
				c.groupsExact = false
			}
		}
	}
	dropped := func(bin, k int) bool {
		return drops != nil && drops[bin] != nil && drops[bin][k]
	}
	total := 0
	for i, bin := range inst.Bins {
		c.Cap[i] = bin.Capacity
		for k, e := range bin.Entries {
			if dropped(i, k) {
				continue
			}
			if keepEntry(e, bin.Capacity) {
				total++
			} else if e.Profit > 0 {
				// Dropped for weight alone: a later cap raise could make it
				// assignable again, which a patch cannot represent.
				c.shedW[i] = true
			}
		}
		c.Off[i+1] = int32(total)
	}
	c.cap0 = append([]float64(nil), c.Cap...)
	c.Item = make([]int32, total)
	c.Profit = make([]float64, total)
	c.Weight = make([]float64, total)
	if quantum > 0 {
		c.WQ = make([]int32, total)
		c.CapU = make([]int32, b)
	}
	k := 0
	for i, bin := range inst.Bins {
		for ke, e := range bin.Entries {
			if dropped(i, ke) {
				continue
			}
			if !keepEntry(e, bin.Capacity) {
				continue
			}
			c.Item[k] = int32(e.Item)
			c.Profit[k] = e.Profit
			c.Weight[k] = e.Weight
			if quantum > 0 {
				c.WQ[k] = quantize(e.Weight, quantum)
			}
			k++
		}
		if quantum > 0 {
			c.CapU[i] = int32(min(math.Floor(bin.Capacity/quantum), math.MaxInt32))
		}
		if n := int(c.Off[i+1] - c.Off[i]); n > c.maxBin {
			c.maxBin = n
		}
	}
	c.allBins = make([]int32, b)
	for i := range c.allBins {
		c.allBins[i] = int32(i)
	}
	c.buildComponents()
	return c, nil
}

func keepEntry(e Entry, capacity float64) bool {
	return e.Profit > 0 && e.Weight <= capacity
}

// quantize rounds a weight up to whole quanta, exactly as the per-call DP
// oracle has always done. Values beyond int32 are clamped — a DP table
// that size could never be allocated anyway.
func quantize(w, quantum float64) int32 {
	return int32(min(math.Ceil(w/quantum-1e-9), math.MaxInt32))
}

// buildComponents unions bins sharing a compiled entry for the same item
// (see Instance.Components; dropped dead entries can only split components
// further, which preserves the disjointness the parallel solve needs).
func (c *Compiled) buildComponents() {
	b := len(c.Cap)
	par := make([]int32, b)
	for i := range par {
		par[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for par[x] != x {
			par[x] = par[par[x]]
			x = par[x]
		}
		return x
	}
	itemBin := make([]int32, c.NumItems)
	for j := range itemBin {
		itemBin[j] = -1
	}
	for bin := 0; bin < b; bin++ {
		for k := c.Off[bin]; k < c.Off[bin+1]; k++ {
			j := c.Item[k]
			if prev := itemBin[j]; prev >= 0 {
				ra, rb := find(prev), find(int32(bin))
				if ra != rb {
					if ra > rb {
						ra, rb = rb, ra
					}
					par[rb] = ra // root at the smallest bin
				}
			} else {
				itemBin[j] = int32(bin)
			}
		}
	}
	sizes := make(map[int32]int32)
	var roots []int32
	for bin := 0; bin < b; bin++ {
		r := find(int32(bin))
		if _, ok := sizes[r]; !ok {
			roots = append(roots, r)
		}
		sizes[r]++
	}
	groups := make(map[int32][]int32, len(roots))
	for _, r := range roots {
		groups[r] = make([]int32, 0, sizes[r])
	}
	for bin := 0; bin < b; bin++ {
		r := find(int32(bin))
		groups[r] = append(groups[r], int32(bin))
	}
	c.comps = make([][]int32, 0, len(roots))
	c.compEntries = make([]int32, 0, len(roots))
	for _, r := range roots { // roots appear in ascending bin order
		bins := groups[r]
		entries := int32(0)
		for _, bin := range bins {
			entries += c.Off[bin+1] - c.Off[bin]
		}
		c.comps = append(c.comps, bins)
		c.compEntries = append(c.compEntries, entries)
	}
	// Reverse maps for the delta machinery: which component a bin belongs
	// to, and which items each component's entries mention (so a dirty
	// component's claims can be reset without scanning the whole instance).
	c.binComp = make([]int32, b)
	for ci, bins := range c.comps {
		for _, bin := range bins {
			c.binComp[bin] = int32(ci)
		}
	}
	c.compItems = make([][]int32, len(c.comps))
	for j, bin := range itemBin {
		if bin >= 0 {
			ci := c.binComp[bin]
			c.compItems[ci] = append(c.compItems[ci], int32(j))
		}
	}
}

// NumComponents reports how many connected components the compiled
// instance decomposes into.
func (c *Compiled) NumComponents() int { return len(c.comps) }

// GroupReductionExact reports whether the compile-time conflict-group
// reduction was dominance-exact: every dropped entry was weakly dominated
// (profit ≤, weight ≥) by its group's surviving entry, so the reduced
// instance has the same optimum as the group-constrained original. This
// holds for monotone link models (the repo's radio tables), where the
// closer sink offers both the higher rate and the lower energy cost; it is
// trivially true on instances without conflict groups.
func (c *Compiled) GroupReductionExact() bool { return c.groupsExact }

// Scratch is the reusable per-solve state of a Compiled sweep: the
// residual-claim array plus one worker's candidate buffers and knapsack
// arena. The zero value is ready to use; buffers grow on demand and are
// retained, so a reused Scratch makes the sequential sweep allocation-free
// in steady state. A Scratch must not be used concurrently.
type Scratch struct {
	claim []float64
	bs    binScratch
}

// binScratch is one worker's candidate staging area.
type binScratch struct {
	prof []float64
	w    []float64
	wq   []int32
	pos  []int32
	ar   knapsack.Arena
}

func (bs *binScratch) prepare(maxBin int, dpMode bool) {
	if cap(bs.prof) < maxBin {
		bs.prof = make([]float64, maxBin)
		bs.pos = make([]int32, maxBin)
	}
	if dpMode {
		if cap(bs.wq) < maxBin {
			bs.wq = make([]int32, maxBin)
		}
	} else if cap(bs.w) < maxBin {
		bs.w = make([]float64, maxBin)
	}
}

var flatPool = sync.Pool{New: func() any { return new(Scratch) }}

var bsPool = sync.Pool{New: func() any { return new(binScratch) }}

func putFlatScratch(s *Scratch) {
	if cap(s.claim) > lrScratchMax {
		s.claim = nil
	}
	s.bs.ar.Trim()
	flatPool.Put(s)
}

// sweep runs the residual-profit local-ratio pass over the given bins,
// claiming items into claim/itemBin. Bins outside the slice must not share
// items with bins inside it (the component property). On a patched
// instance the candidate filter additionally skips disabled entries and
// entries whose weight exceeds the *current* capacity — exactly the
// entries a cold Compile of the patched instance would have dropped, so
// patched sweeps stay bit-identical to cold ones.
func (c *Compiled) sweep(ctx context.Context, bs *binScratch, claim []float64, itemBin []int32, bins []int32) error {
	dpMode := c.Quantum > 0
	patched := c.patched
	bs.prepare(c.maxBin, dpMode)
	for _, b := range bins {
		if patched && c.enCount[b] == 0 {
			continue // every entry disabled: nothing this bin could claim
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		lo, hi := c.Off[b], c.Off[b+1]
		nc := 0
		var picks []int32
		var err error
		if dpMode {
			prof, wq, pos := bs.prof, bs.wq, bs.pos
			for k := lo; k < hi; k++ {
				if patched && (c.off[k] || c.Weight[k] > c.Cap[b]) {
					continue // disabled or no longer fits the patched cap
				}
				j := c.Item[k]
				res := c.Profit[k] - claim[j]
				if res <= 0 {
					continue // the knapsack would never take it
				}
				prof[nc], wq[nc], pos[nc] = res, c.WQ[k], k
				nc++
			}
			picks, _, err = bs.ar.DPFlat(ctx, prof[:nc], wq[:nc], int(c.CapU[b]))
		} else {
			prof, w, pos := bs.prof, bs.w, bs.pos
			for k := lo; k < hi; k++ {
				if patched && (c.off[k] || c.Weight[k] > c.Cap[b]) {
					continue
				}
				j := c.Item[k]
				res := c.Profit[k] - claim[j]
				if res <= 0 {
					continue
				}
				prof[nc], w[nc], pos[nc] = res, c.Weight[k], k
				nc++
			}
			picks, _, err = bs.ar.FPTASFlat(ctx, c.Eps, prof[:nc], w[:nc], c.Cap[b])
		}
		if err != nil {
			return err
		}
		for _, p := range picks {
			k := bs.pos[p]
			j := c.Item[k]
			claim[j] = c.Profit[k]
			itemBin[j] = b
		}
	}
	return nil
}

// finalProfit is the paper's final decomposition pass: each item belongs
// to the last bin that claimed it, and the total is accumulated in
// bin-major entry order — the same float-summation order as the
// per-instance sweep, so sequential and parallel solves agree bitwise.
func (c *Compiled) finalProfit(itemBin []int32) float64 {
	total := 0.0
	for b := range c.Cap {
		for k := c.Off[b]; k < c.Off[b+1]; k++ {
			if itemBin[c.Item[k]] == int32(b) {
				total += c.Profit[k]
			}
		}
	}
	return total
}

// SolveInto runs the local-ratio sweep over the compiled instance, writing
// each item's owning bin into itemBin (-1 for unassigned; len must be
// NumItems) and returning the assignment profit. s may be nil to draw
// scratch from an internal pool; passing a reused Scratch makes the
// sequential path allocation-free in steady state.
func (c *Compiled) SolveInto(ctx context.Context, s *Scratch, itemBin []int32, opts SolveOptions) (float64, error) {
	if len(itemBin) != c.NumItems {
		return 0, fmt.Errorf("gap: itemBin covers %d items, instance has %d", len(itemBin), c.NumItems)
	}
	if s == nil {
		s = flatPool.Get().(*Scratch)
		defer putFlatScratch(s)
	}
	if cap(s.claim) < c.NumItems {
		s.claim = make([]float64, c.NumItems)
	}
	s.claim = s.claim[:c.NumItems]
	for i := range s.claim {
		s.claim[i] = 0
	}
	for i := range itemBin {
		itemBin[i] = -1
	}
	if err := c.runSweeps(ctx, s, itemBin, opts); err != nil {
		return 0, err
	}
	return c.finalProfit(itemBin), nil
}

// runSweeps dispatches the sweep sequentially or across components.
func (c *Compiled) runSweeps(ctx context.Context, s *Scratch, itemBin []int32, opts SolveOptions) error {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !opts.Parallel || workers <= 1 || len(c.comps) <= 1 {
		return c.sweep(ctx, &s.bs, s.claim, itemBin, c.allBins)
	}
	threshold := int32(opts.MinParallelEntries)
	if threshold == 0 {
		threshold = DefaultMinParallelEntries
	}
	// Partition components: small ones are swept inline as a single task
	// (goroutine fan-out on them costs more than it saves), large ones go
	// to the pool. Claims are written race-free because components share
	// no items.
	var small, large []int
	for i, e := range c.compEntries {
		if threshold > 0 && e < threshold {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	if len(large) == 0 || len(large)+minInt(len(small), 1) <= 1 {
		return c.sweep(ctx, &s.bs, s.claim, itemBin, c.allBins)
	}
	tasks := make([][]int32, 0, len(large)+1)
	if len(small) > 0 {
		merged := make([]int32, 0, len(small)*2)
		for _, i := range small {
			merged = append(merged, c.comps[i]...)
		}
		tasks = append(tasks, merged)
	}
	for _, i := range large {
		tasks = append(tasks, c.comps[i])
	}
	_, err := parallel.ForEachStealing(len(tasks), opts.Workers, func(t int) error {
		bs := bsPool.Get().(*binScratch)
		defer func() {
			bs.ar.Trim()
			bsPool.Put(bs)
		}()
		return c.sweep(ctx, bs, s.claim, itemBin, tasks[t])
	})
	if err != nil {
		return firstError(err)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Solve runs SolveInto with pooled scratch and materializes the result as
// an Assignment.
func (c *Compiled) Solve(ctx context.Context, opts SolveOptions) (*Assignment, error) {
	itemBin := make([]int32, c.NumItems)
	profit, err := c.SolveInto(ctx, nil, itemBin, opts)
	if err != nil {
		return nil, err
	}
	a := &Assignment{ItemBin: make([]int, c.NumItems), Profit: profit}
	for j, b := range itemBin {
		a.ItemBin[j] = int(b)
	}
	return a, nil
}
