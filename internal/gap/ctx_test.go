package gap

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mobisink/internal/knapsack"
)

// solverForTests is the exact DP oracle both sweeps share, so any output
// difference is attributable to the decomposition, not the oracle.
func solverForTests() knapsack.SolverCtx {
	return func(ctx context.Context, items []knapsack.Item, c float64) (knapsack.Solution, error) {
		return knapsack.DPCtx(ctx, items, c, 1)
	}
}

func assertParallelEqualsSequential(t *testing.T, inst *Instance) {
	t.Helper()
	seq, err := LocalRatioCtx(context.Background(), inst, solverForTests())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		par, err := LocalRatioParallelCtx(context.Background(), inst, solverForTests(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.ItemBin, par.ItemBin) {
			t.Fatalf("workers=%d: ItemBin differs\nseq: %v\npar: %v", workers, seq.ItemBin, par.ItemBin)
		}
		if seq.Profit != par.Profit {
			t.Fatalf("workers=%d: Profit %v != %v", workers, par.Profit, seq.Profit)
		}
	}
}

// windowBin builds one bin eligible for items [lo, hi] with unit weights
// and the given per-item profits (cycled).
func windowBin(lo, hi int, capacity float64, profits ...float64) Bin {
	b := Bin{Capacity: capacity}
	for j := lo; j <= hi; j++ {
		b.Entries = append(b.Entries, Entry{Item: j, Profit: profits[(j-lo)%len(profits)], Weight: 1})
	}
	return b
}

// TestParallelDisjointWindows: every bin is its own component.
func TestParallelDisjointWindows(t *testing.T) {
	inst := &Instance{NumItems: 12, Bins: []Bin{
		windowBin(0, 2, 2, 5, 3, 4),
		windowBin(3, 5, 1, 2, 9, 1),
		windowBin(6, 8, 3, 7, 7, 2),
		windowBin(9, 11, 2, 1, 6, 8),
	}}
	if got := len(inst.Components()); got != 4 {
		t.Fatalf("expected 4 components, got %d", got)
	}
	assertParallelEqualsSequential(t, inst)
}

// TestParallelChainedWindows: consecutive bins overlap pairwise, chaining
// everything into one component (the adversarial case for decomposition —
// it must fall back to a single sequential sweep).
func TestParallelChainedWindows(t *testing.T) {
	inst := &Instance{NumItems: 10, Bins: []Bin{
		windowBin(0, 3, 2, 4, 2, 6, 1),
		windowBin(2, 5, 2, 3, 8, 2, 5),
		windowBin(4, 7, 2, 9, 1, 3, 7),
		windowBin(6, 9, 2, 2, 5, 4, 6),
	}}
	if got := len(inst.Components()); got != 1 {
		t.Fatalf("expected 1 component, got %d", got)
	}
	assertParallelEqualsSequential(t, inst)
}

// TestParallelFullyOverlappingWindows: all bins compete for all items.
func TestParallelFullyOverlappingWindows(t *testing.T) {
	inst := &Instance{NumItems: 6, Bins: []Bin{
		windowBin(0, 5, 3, 4, 7, 2, 9, 1, 5),
		windowBin(0, 5, 2, 8, 3, 6, 1, 7, 2),
		windowBin(0, 5, 4, 1, 9, 4, 3, 8, 6),
	}}
	if got := len(inst.Components()); got != 1 {
		t.Fatalf("expected 1 component, got %d", got)
	}
	assertParallelEqualsSequential(t, inst)
}

// TestParallelScatteredComponents: components whose bins are not
// contiguous in the bin order exercise the sub-instance compaction and
// the bin-index mapping back to the original numbering.
func TestParallelScatteredComponents(t *testing.T) {
	inst := &Instance{NumItems: 8, Bins: []Bin{
		windowBin(0, 3, 2, 5, 2, 7, 3), // component A
		windowBin(4, 7, 2, 1, 8, 4, 6), // component B
		windowBin(0, 3, 3, 6, 4, 2, 9), // component A again
		windowBin(4, 7, 1, 7, 3, 5, 2), // component B again
	}}
	comps := inst.Components()
	if len(comps) != 2 {
		t.Fatalf("expected 2 components, got %d", len(comps))
	}
	if !reflect.DeepEqual(comps[0], []int{0, 2}) || !reflect.DeepEqual(comps[1], []int{1, 3}) {
		t.Fatalf("unexpected components %v", comps)
	}
	assertParallelEqualsSequential(t, inst)
}

// TestParallelRandomSweep fuzzes the equivalence over seeded random
// window instances with mixed gap sizes (some disjoint stretches, some
// overlapping clusters).
func TestParallelRandomSweep(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		numItems := 40 + rng.Intn(40)
		inst := &Instance{NumItems: numItems}
		pos := 0
		for pos < numItems-4 {
			width := 2 + rng.Intn(6)
			if pos+width > numItems {
				width = numItems - pos
			}
			b := Bin{Capacity: float64(1 + rng.Intn(4))}
			for j := pos; j < pos+width; j++ {
				b.Entries = append(b.Entries, Entry{
					Item:   j,
					Profit: float64(1 + rng.Intn(9)),
					Weight: float64(1 + rng.Intn(3)),
				})
			}
			inst.Bins = append(inst.Bins, b)
			// Sometimes jump past the window (new component), sometimes
			// start the next bin inside it (overlap).
			if rng.Intn(2) == 0 {
				pos += width + 1 + rng.Intn(3)
			} else {
				pos += 1 + rng.Intn(width)
			}
		}
		assertParallelEqualsSequential(t, inst)
	}
}

// TestLocalRatioCtxCanceled: a canceled context aborts the sweep.
func TestLocalRatioCtxCanceled(t *testing.T) {
	inst := &Instance{NumItems: 6, Bins: []Bin{
		windowBin(0, 5, 3, 4, 7, 2, 9, 1, 5),
		windowBin(0, 5, 2, 8, 3, 6, 1, 7, 2),
	}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LocalRatioCtx(ctx, inst, solverForTests()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, err := LocalRatioParallelCtx(ctx, inst, solverForTests(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel: got %v, want context.Canceled", err)
	}
}
