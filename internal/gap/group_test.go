package gap

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"mobisink/internal/knapsack"
)

// groupedInstance builds a random instance whose items carry conflict
// groups (group id = item % nGroups, the fleet "absolute slot" shape).
func groupedInstance(rng *rand.Rand, bins, items, nGroups int) *Instance {
	inst := &Instance{NumItems: items, ItemGroup: make([]int, items)}
	for j := range inst.ItemGroup {
		inst.ItemGroup[j] = j % nGroups
	}
	inst.Bins = make([]Bin, bins)
	for b := range inst.Bins {
		bin := Bin{Capacity: 1 + rng.Float64()*3}
		for j := 0; j < items; j++ {
			if rng.Float64() < 0.5 {
				continue
			}
			bin.Entries = append(bin.Entries, Entry{
				Item:   j,
				Profit: math.Floor(rng.Float64()*90+10) / 10,
				Weight: math.Floor(rng.Float64()*15+5) / 10,
			})
		}
		inst.Bins[b] = bin
	}
	return inst
}

func TestReduceGroupsPicksDominant(t *testing.T) {
	entries := []Entry{
		{Item: 0, Profit: 5, Weight: 1},
		{Item: 3, Profit: 7, Weight: 2}, // winner of group 0 (items 0, 3 with groups below)
		{Item: 1, Profit: 4, Weight: 1},
	}
	itemGroup := []int{0, 1, -1, 0}
	drop, exact := reduceGroups(entries, 10, itemGroup)
	if drop == nil {
		t.Fatal("expected a reduction: group 0 holds two assignable entries")
	}
	if !drop[0] || drop[1] || drop[2] {
		t.Fatalf("drop = %v, want only the item-0 entry dropped", drop)
	}
	if exact {
		t.Fatal("dropped entry is lighter than the winner: reduction must report inexact")
	}

	// Weakly dominated loser → exact.
	entries[0].Weight = 2
	drop, exact = reduceGroups(entries, 10, itemGroup)
	if drop == nil || !drop[0] {
		t.Fatalf("drop = %v, want item-0 entry dropped", drop)
	}
	if !exact {
		t.Fatal("weakly dominated loser must keep the reduction exact")
	}

	// Singleton groups → no reduction at all.
	singles := []Entry{entries[0], entries[2]} // items 0 (group 0) and 1 (group 1)
	if d, _ := reduceGroups(singles, 10, itemGroup); d != nil {
		t.Fatalf("singleton groups reduced: %v", d)
	}
}

func TestCheckRejectsGroupConflicts(t *testing.T) {
	inst := &Instance{
		NumItems:  2,
		ItemGroup: []int{0, 0},
		Bins: []Bin{{Capacity: 10, Entries: []Entry{
			{Item: 0, Profit: 1, Weight: 1},
			{Item: 1, Profit: 1, Weight: 1},
		}}},
	}
	a := &Assignment{ItemBin: []int{0, 0}, Profit: 2}
	if _, err := a.Check(inst); err == nil {
		t.Fatal("Check accepted two same-group items in one bin")
	}
	a = &Assignment{ItemBin: []int{0, -1}, Profit: 1}
	if _, err := a.Check(inst); err != nil {
		t.Fatalf("conflict-free assignment rejected: %v", err)
	}
}

func TestValidateItemGroupLength(t *testing.T) {
	inst := &Instance{NumItems: 3, ItemGroup: []int{0}}
	if err := inst.Validate(); err == nil {
		t.Fatal("short ItemGroup accepted")
	}
}

// TestGroupedSolversHonorGroups: local-ratio (legacy and compiled),
// greedy, and exhaustive all emit assignments that pass the
// group-checking Check on random grouped instances, and the compiled
// sweep stays bit-identical to the legacy one.
func TestGroupedSolversHonorGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		inst := groupedInstance(rng, 2+rng.Intn(4), 4+rng.Intn(8), 2+rng.Intn(3))
		legacy, err := LocalRatioCtx(ctx, inst, knapsack.FPTASCtx(0.1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := legacy.Check(inst); err != nil {
			t.Fatalf("trial %d: legacy local-ratio violates groups: %v", trial, err)
		}
		c, err := Compile(inst, 0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := c.Solve(ctx, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := flat.Check(inst); err != nil {
			t.Fatalf("trial %d: compiled sweep violates groups: %v", trial, err)
		}
		if math.Float64bits(flat.Profit) != math.Float64bits(legacy.Profit) {
			t.Fatalf("trial %d: compiled profit %v != legacy %v", trial, flat.Profit, legacy.Profit)
		}
		for j := range flat.ItemBin {
			if flat.ItemBin[j] != legacy.ItemBin[j] {
				t.Fatalf("trial %d: compiled item %d in bin %d, legacy in %d",
					trial, j, flat.ItemBin[j], legacy.ItemBin[j])
			}
		}
		greedy, err := Greedy(inst)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := greedy.Check(inst); err != nil {
			t.Fatalf("trial %d: greedy violates groups: %v", trial, err)
		}
		ex, err := Exhaustive(inst, 1<<22)
		if err != nil {
			continue // state cap exceeded: skip the optimality probe
		}
		if _, err := ex.Check(inst); err != nil {
			t.Fatalf("trial %d: exhaustive violates groups: %v", trial, err)
		}
		if ex.Profit+1e-9 < legacy.Profit || ex.Profit+1e-9 < greedy.Profit {
			t.Fatalf("trial %d: exhaustive %v below a heuristic (lr %v, greedy %v)",
				trial, ex.Profit, legacy.Profit, greedy.Profit)
		}
	}
}

// TestDeltaRefusesGroupReducedBins: a bin thinned by the compile-time
// group reduction cannot be patched — its CSR no longer holds the
// runner-up entries a cold compile of the patched state might keep.
func TestDeltaRefusesGroupReducedBins(t *testing.T) {
	inst := &Instance{
		NumItems:  3,
		ItemGroup: []int{0, 0, 1},
		Bins: []Bin{
			{Capacity: 10, Entries: []Entry{
				{Item: 0, Profit: 2, Weight: 1}, // loses group 0 to item 1
				{Item: 1, Profit: 3, Weight: 1},
			}},
			{Capacity: 10, Entries: []Entry{
				{Item: 2, Profit: 1, Weight: 1}, // singleton: not reduced
			}},
		},
	}
	c, err := Compile(inst, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, inst.NumItems)
	var d Delta
	d.SetCap(0, 5)
	if _, _, err := c.Apply(context.Background(), &d, out); !errors.Is(err, ErrDeltaNotRepresentable) {
		t.Fatalf("patching a group-reduced bin: got %v, want ErrDeltaNotRepresentable", err)
	}
	d.Reset()
	d.SetCap(1, 5)
	if _, _, err := c.Apply(context.Background(), &d, out); err != nil {
		t.Fatalf("patching an unreduced bin failed: %v", err)
	}
}

// TestGroupReductionExactFlag: equal-weight groups (the fixed-power fleet
// shape) reduce exactly; a lighter losing entry flips the flag.
func TestGroupReductionExactFlag(t *testing.T) {
	mk := func(loserWeight float64) *Instance {
		return &Instance{
			NumItems:  2,
			ItemGroup: []int{0, 0},
			Bins: []Bin{{Capacity: 10, Entries: []Entry{
				{Item: 0, Profit: 1, Weight: loserWeight},
				{Item: 1, Profit: 2, Weight: 1},
			}}},
		}
	}
	c, err := Compile(mk(1), 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !c.GroupReductionExact() {
		t.Fatal("equal-weight reduction reported inexact")
	}
	c, err = Compile(mk(0.5), 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.GroupReductionExact() {
		t.Fatal("lighter loser reported exact")
	}
}
