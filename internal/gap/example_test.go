package gap_test

import (
	"fmt"

	"mobisink/internal/gap"
	"mobisink/internal/knapsack"
)

// Two capacitated bins (sensors) compete for three items (time slots); the
// local-ratio algorithm assigns each item to the last bin that claimed it.
func ExampleLocalRatio() {
	inst := &gap.Instance{
		NumItems: 3,
		Bins: []gap.Bin{
			{Capacity: 2, Entries: []gap.Entry{
				{Item: 0, Profit: 10, Weight: 1},
				{Item: 1, Profit: 9, Weight: 1},
				{Item: 2, Profit: 1, Weight: 1},
			}},
			{Capacity: 1, Entries: []gap.Entry{
				{Item: 0, Profit: 2, Weight: 1},
				{Item: 2, Profit: 8, Weight: 1},
			}},
		},
	}
	asg, _ := gap.LocalRatio(inst, knapsack.BranchAndBound)
	fmt.Printf("profit=%.0f items→bins=%v\n", asg.Profit, asg.ItemBin)
	// Output: profit=27 items→bins=[0 0 1]
}
