package gap

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// deltaModel tracks patch state independently of the code under test: it
// holds the ORIGINAL instance plus per-entry enabled flags and current
// capacities, and materializes the patched instance for cold-reference
// compiles. Toggling entries the compiler dropped (dead profit/weight) is
// deliberately allowed — a cold compile drops them again regardless, which
// is exactly why Compiled.Apply may treat unknown pairs as no-ops.
type deltaModel struct {
	inst *Instance
	cap  []float64
	en   [][]bool
}

func newDeltaModel(inst *Instance) *deltaModel {
	m := &deltaModel{
		inst: inst,
		cap:  make([]float64, len(inst.Bins)),
		en:   make([][]bool, len(inst.Bins)),
	}
	for b, bin := range inst.Bins {
		m.cap[b] = bin.Capacity
		m.en[b] = make([]bool, len(bin.Entries))
		for i := range m.en[b] {
			m.en[b][i] = true
		}
	}
	return m
}

func (m *deltaModel) setCap(b int, v float64) { m.cap[b] = v }

func (m *deltaModel) setEnabled(b, item int, on bool) {
	for i, e := range m.inst.Bins[b].Entries {
		if e.Item == item {
			m.en[b][i] = on
		}
	}
}

func (m *deltaModel) shift(b, lo, hi int) {
	for i, e := range m.inst.Bins[b].Entries {
		m.en[b][i] = e.Item >= lo && e.Item <= hi
	}
}

// patched materializes the instance the tracked patches describe.
func (m *deltaModel) patched() *Instance {
	out := &Instance{NumItems: m.inst.NumItems, Bins: make([]Bin, len(m.inst.Bins))}
	for b, bin := range m.inst.Bins {
		nb := Bin{Capacity: m.cap[b]}
		for i, e := range bin.Entries {
			if m.en[b][i] {
				nb.Entries = append(nb.Entries, e)
			}
		}
		out.Bins[b] = nb
	}
	return out
}

// checkAgainstCold is the bit-exactness oracle: cold-compile the model's
// patched instance, solve it from scratch, and demand Float64bits
// equality on profit and residual budgets plus an exact itemBin match.
func checkAgainstCold(t testing.TB, c *Compiled, m *deltaModel, gotProfit float64, gotItemBin []int32) {
	t.Helper()
	ref, err := Compile(m.patched(), c.Quantum, c.Eps)
	if err != nil {
		t.Fatalf("cold compile of patched instance: %v", err)
	}
	wantItemBin := make([]int32, ref.NumItems)
	wantProfit, err := ref.SolveInto(context.Background(), nil, wantItemBin, SolveOptions{})
	if err != nil {
		t.Fatalf("cold solve of patched instance: %v", err)
	}
	if math.Float64bits(gotProfit) != math.Float64bits(wantProfit) {
		t.Fatalf("warm profit %v (bits %x) != cold %v (bits %x)",
			gotProfit, math.Float64bits(gotProfit), wantProfit, math.Float64bits(wantProfit))
	}
	if !reflect.DeepEqual(gotItemBin, wantItemBin) {
		t.Fatalf("warm itemBin %v != cold %v", gotItemBin, wantItemBin)
	}
	gotRes := make([]float64, len(c.Cap))
	wantRes := make([]float64, len(c.Cap))
	c.ResidualInto(gotItemBin, gotRes)
	ref.ResidualInto(wantItemBin, wantRes)
	for b := range gotRes {
		if math.Float64bits(gotRes[b]) != math.Float64bits(wantRes[b]) {
			t.Fatalf("bin %d: warm residual %v != cold %v", b, gotRes[b], wantRes[b])
		}
		if gotRes[b] < -1e-9 {
			t.Fatalf("bin %d: infeasible residual %v", b, gotRes[b])
		}
	}
}

// randomStep stages one random patch on both the delta and the model.
// Capacities stay below the compile-time value so the chain never trips
// ErrDeltaNotRepresentable (that guard has its own test).
func randomStep(rng *rand.Rand, c *Compiled, m *deltaModel, d *Delta) {
	b := rng.Intn(len(c.Cap))
	switch rng.Intn(5) {
	case 0: // budget debit / partial restore
		v := c.cap0[b] * rng.Float64()
		d.SetCap(b, v)
		m.setCap(b, v)
	case 1: // window shift (occasionally empty)
		lo := rng.Intn(c.NumItems)
		hi := lo + rng.Intn(8) - 1
		d.ShiftWindow(b, lo, hi)
		m.shift(b, lo, hi)
	case 2:
		item := rng.Intn(c.NumItems)
		d.Disable(b, item)
		m.setEnabled(b, item, false)
	case 3:
		item := rng.Intn(c.NumItems)
		d.Enable(b, item)
		m.setEnabled(b, item, true)
	case 4: // data caps never perturb the solve
		d.SetDataCap(b, rng.Float64()*10)
	}
}

// TestApplyDifferential is the headline contract: 240 seeded delta chains
// (6 shapes × 40 seeds, DP and FPTAS oracles), each a dozen Applies of
// mixed debit/shift/disable patches, every one compared bit-for-bit
// against a cold Compile+SolveInto of the patched instance.
func TestApplyDifferential(t *testing.T) {
	configs := []struct {
		bins, items int
		quantum     float64
	}{
		{8, 20, 0.05}, {20, 40, 0.05}, {40, 60, 0.05},
		{8, 20, 0}, {20, 40, 0}, {40, 60, 0},
	}
	ctx := context.Background()
	chains := 0
	for ci, cfg := range configs {
		for seed := int64(0); seed < 40; seed++ {
			inst := windowedInstance(seed+int64(ci)*1000, cfg.bins, cfg.items)
			c, err := Compile(inst, cfg.quantum, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			m := newDeltaModel(inst)
			rng := rand.New(rand.NewSource(seed * 7919))
			out := make([]int32, c.NumItems)
			p, st, err := c.Apply(ctx, nil, out)
			if err != nil {
				t.Fatal(err)
			}
			if !st.ColdStart {
				t.Fatal("first Apply must cold-start")
			}
			checkAgainstCold(t, c, m, p, out)
			var d Delta
			gen := c.Generation()
			for step := 0; step < 12; step++ {
				d.Reset()
				for n := 1 + rng.Intn(3); n > 0; n-- {
					randomStep(rng, c, m, &d)
				}
				p, st, err = c.Apply(ctx, &d, out)
				if err != nil {
					t.Fatalf("config %d seed %d step %d: %v", ci, seed, step, err)
				}
				if st.ColdStart {
					t.Fatalf("config %d seed %d step %d: unexpected cold start", ci, seed, step)
				}
				if g := c.Generation(); g != gen+1 {
					t.Fatalf("generation %d after apply, want %d", g, gen+1)
				}
				gen++
				checkAgainstCold(t, c, m, p, out)
			}
			chains++
		}
	}
	if chains < 200 {
		t.Fatalf("only %d delta chains exercised, acceptance floor is 200", chains)
	}
}

// FuzzCompiledApply feeds byte-program delta sequences to seeded
// instances: no panics, every intermediate state feasible and bit-equal
// to cold-compiling the mutated instance.
func FuzzCompiledApply(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 128, 0, 0, 0})
	f.Add(int64(2), []byte{1, 0, 3, 4, 0, 0, 2, 1, 5, 0, 0, 0})
	f.Add(int64(7), []byte{4, 2, 9, 0, 0, 0, 3, 2, 9, 0, 0, 0, 0, 2, 40, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed int64, prog []byte) {
		const opLen = 6
		if len(prog) > opLen*32 {
			prog = prog[:opLen*32]
		}
		bins := 4 + int(uint64(seed)%9)
		items := 12 + int(uint64(seed)%21)
		inst := windowedInstance(seed, bins, items)
		quantum := 0.0
		if seed&1 == 0 {
			quantum = 0.05
		}
		c, err := Compile(inst, quantum, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		m := newDeltaModel(inst)
		ctx := context.Background()
		out := make([]int32, c.NumItems)
		if _, _, err := c.Apply(ctx, nil, out); err != nil {
			t.Fatal(err)
		}
		var d Delta
		for off := 0; off+opLen <= len(prog); off += opLen {
			d.Reset()
			b := int(prog[off+1]) % bins
			switch prog[off] % 5 {
			case 0: // debit bounded by the compile-time cap: always representable
				v := c.cap0[b] * float64(prog[off+2]) / 255
				d.SetCap(b, v)
				m.setCap(b, v)
			case 1:
				lo := int(prog[off+2]) % items
				hi := lo + int(prog[off+3]%8) - 1
				d.ShiftWindow(b, lo, hi)
				m.shift(b, lo, hi)
			case 2:
				item := int(prog[off+2]) % items
				d.Disable(b, item)
				m.setEnabled(b, item, false)
			case 3:
				item := int(prog[off+2]) % items
				d.Enable(b, item)
				m.setEnabled(b, item, true)
			case 4:
				d.SetDataCap(b, float64(prog[off+2]))
			}
			p, _, err := c.Apply(ctx, &d, out)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstCold(t, c, m, p, out)
		}
	})
}

// TestApplyEmptyDeltaZeroAllocs pins the no-op contract: once warm, an
// empty delta returns the cached result without allocating.
func TestApplyEmptyDeltaZeroAllocs(t *testing.T) {
	inst := windowedInstance(3, 24, 40)
	c, err := Compile(inst, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	out := make([]int32, c.NumItems)
	var d Delta
	base, st, err := c.Apply(ctx, &d, out)
	if err != nil || !st.ColdStart {
		t.Fatalf("prime: profit %v stats %+v err %v", base, st, err)
	}
	var bad error
	var notNoOp bool
	allocs := testing.AllocsPerRun(100, func() {
		p, st, err := c.Apply(ctx, &d, out)
		if err != nil {
			bad = err
		}
		if !st.NoOp || p != base {
			notNoOp = true
		}
	})
	if bad != nil {
		t.Fatal(bad)
	}
	if notNoOp {
		t.Fatal("warm empty-delta Apply did not take the cached no-op path")
	}
	if allocs != 0 {
		t.Fatalf("no-op Apply allocated %v times per run, want 0", allocs)
	}
}

// TestApplyIncrementalZeroAllocs extends the pin to the real incremental
// path: alternating budget debits on one bin re-solve its component with
// zero steady-state allocations.
func TestApplyIncrementalZeroAllocs(t *testing.T) {
	inst := windowedInstance(5, 24, 40)
	c, err := Compile(inst, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.MaxDirtyFraction = -1 // always per-component
	ctx := context.Background()
	out := make([]int32, c.NumItems)
	caps := [2]float64{c.cap0[0] * 0.5, c.cap0[0] * 0.9}
	var d Delta
	for i := 0; i < 2; i++ { // prime both sizes (arena + staging growth)
		d.Reset().SetCap(0, caps[i])
		if _, _, err := c.Apply(ctx, &d, out); err != nil {
			t.Fatal(err)
		}
	}
	var bad error
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		i++
		d.Reset().SetCap(0, caps[i%2])
		if _, _, err := c.Apply(ctx, &d, out); err != nil {
			bad = err
		}
	})
	if bad != nil {
		t.Fatal(bad)
	}
	if allocs != 0 {
		t.Fatalf("incremental Apply allocated %v times per run, want 0", allocs)
	}
}

// twoCompInstance has two item-disjoint components: bins {0,1} over items
// 0–3, bins {2,3} over items 4–7.
func twoCompInstance() *Instance {
	return &Instance{
		NumItems: 8,
		Bins: []Bin{
			{Capacity: 1.0, Entries: []Entry{
				{Item: 0, Profit: 2, Weight: 0.4}, {Item: 1, Profit: 1, Weight: 0.5},
				{Item: 2, Profit: 3, Weight: 0.6},
			}},
			{Capacity: 1.2, Entries: []Entry{
				{Item: 1, Profit: 2.5, Weight: 0.7}, {Item: 3, Profit: 1.5, Weight: 0.8},
			}},
			{Capacity: 0.9, Entries: []Entry{
				{Item: 4, Profit: 2, Weight: 0.3}, {Item: 5, Profit: 1, Weight: 0.4},
			}},
			{Capacity: 1.5, Entries: []Entry{
				{Item: 5, Profit: 3, Weight: 0.9}, {Item: 6, Profit: 2, Weight: 0.5},
				{Item: 7, Profit: 1, Weight: 0.6},
			}},
		},
	}
}

// TestApplyComponentIsolation: a patch on one component re-solves only
// that component and leaves the other's assignment untouched.
func TestApplyComponentIsolation(t *testing.T) {
	inst := twoCompInstance()
	c, err := Compile(inst, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumComponents() != 2 {
		t.Fatalf("NumComponents = %d, want 2", c.NumComponents())
	}
	c.MaxDirtyFraction = -1
	ctx := context.Background()
	m := newDeltaModel(inst)
	out := make([]int32, c.NumItems)
	if _, _, err := c.Apply(ctx, nil, out); err != nil {
		t.Fatal(err)
	}
	before := append([]int32(nil), out...)
	var d Delta
	d.SetCap(0, 0.5)
	m.setCap(0, 0.5)
	p, st, err := c.Apply(ctx, &d, out)
	if err != nil {
		t.Fatal(err)
	}
	if st.ComponentsResolved != 1 || st.ComponentsClean != 1 {
		t.Fatalf("stats %+v, want 1 resolved / 1 clean", st)
	}
	if st.Full || st.ColdStart || st.NoOp {
		t.Fatalf("stats %+v, want the incremental path", st)
	}
	for j := 4; j < 8; j++ { // second component's items must be untouched
		if out[j] != before[j] {
			t.Fatalf("item %d moved from bin %d to %d despite its component being clean", j, before[j], out[j])
		}
	}
	checkAgainstCold(t, c, m, p, out)
}

// TestApplyFullFallback: a dirty fraction above MaxDirtyFraction demotes
// the incremental path to one full sweep — same bits, different route.
func TestApplyFullFallback(t *testing.T) {
	inst := twoCompInstance()
	c, err := Compile(inst, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.MaxDirtyFraction = 1e-9
	ctx := context.Background()
	m := newDeltaModel(inst)
	out := make([]int32, c.NumItems)
	if _, _, err := c.Apply(ctx, nil, out); err != nil {
		t.Fatal(err)
	}
	var d Delta
	d.SetCap(0, 0.5)
	m.setCap(0, 0.5)
	p, st, err := c.Apply(ctx, &d, out)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full || st.ComponentsResolved != 0 {
		t.Fatalf("stats %+v, want the full-fallback path", st)
	}
	checkAgainstCold(t, c, m, p, out)
}

// TestApplyNotRepresentable: raising a shed bin's capacity above its
// compile-time value must refuse, and the instance must recover (next
// Apply cold-starts and still matches the cold reference).
func TestApplyNotRepresentable(t *testing.T) {
	inst := &Instance{
		NumItems: 2,
		Bins: []Bin{{Capacity: 1, Entries: []Entry{
			{Item: 0, Profit: 2, Weight: 0.5},
			{Item: 1, Profit: 3, Weight: 1.5}, // positive profit shed for weight
		}}},
	}
	c, err := Compile(inst, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	out := make([]int32, c.NumItems)
	if _, _, err := c.Apply(ctx, nil, out); err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	var d Delta
	d.SetCap(0, 2) // would re-admit the shed entry
	if _, _, err := c.Apply(ctx, &d, out); !errors.Is(err, ErrDeltaNotRepresentable) {
		t.Fatalf("got %v, want ErrDeltaNotRepresentable", err)
	}
	if c.Generation() != gen {
		t.Fatal("failed Apply bumped the generation")
	}
	// Lowering within the compile-time cap stays representable, and the
	// post-error Apply recovers via a cold start.
	m := newDeltaModel(inst)
	d.Reset().SetCap(0, 0.8)
	m.setCap(0, 0.8)
	p, st, err := c.Apply(ctx, &d, out)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ColdStart {
		t.Fatalf("stats %+v, want cold start after a failed Apply", st)
	}
	checkAgainstCold(t, c, m, p, out)
}

func TestApplyBadDelta(t *testing.T) {
	inst := twoCompInstance()
	ctx := context.Background()
	cases := []struct {
		name  string
		build func(d *Delta)
	}{
		{"bin below range", func(d *Delta) { d.SetCap(-1, 1) }},
		{"bin above range", func(d *Delta) { d.Disable(99, 0) }},
		{"NaN capacity", func(d *Delta) { d.SetCap(0, math.NaN()) }},
		{"negative capacity", func(d *Delta) { d.SetCap(0, -0.5) }},
		{"infinite capacity", func(d *Delta) { d.SetCap(0, math.Inf(1)) }},
		{"NaN data cap", func(d *Delta) { d.SetDataCap(0, math.NaN()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Compile(inst, 0.05, 0)
			if err != nil {
				t.Fatal(err)
			}
			var d Delta
			tc.build(&d)
			if _, _, err := c.Apply(ctx, &d, nil); !errors.Is(err, ErrBadDelta) {
				t.Fatalf("got %v, want ErrBadDelta", err)
			}
		})
	}
	c, err := Compile(inst, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Apply(ctx, nil, make([]int32, 3)); err == nil {
		t.Fatal("expected error for short out slice")
	}
}

// TestCompileValidatesQuantumEps is the satellite fix: Compile used to
// silently accept NaN/negative quantum and NaN/≥1 eps.
func TestCompileValidatesQuantumEps(t *testing.T) {
	inst := windowedInstance(1, 4, 8)
	cases := []struct {
		name         string
		quantum, eps float64
		wantErr      error
	}{
		{"negative quantum", -1, 0.1, ErrBadQuantum},
		{"NaN quantum", math.NaN(), 0.1, ErrBadQuantum},
		{"+Inf quantum", math.Inf(1), 0.1, ErrBadQuantum},
		{"-Inf quantum", math.Inf(-1), 0.1, ErrBadQuantum},
		{"NaN eps", 0.05, math.NaN(), ErrBadEps},
		{"eps of one", 0.05, 1, ErrBadEps},
		{"eps above one", 0, 1.5, ErrBadEps},
		{"+Inf eps", 0, math.Inf(1), ErrBadEps},
		{"zero quantum selects FPTAS", 0, 0.25, nil},
		{"zero eps keeps default", 0.05, 0, nil},
		{"negative eps keeps default", 0, -3, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Compile(inst, tc.quantum, tc.eps)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Compile(%v, %v) = %v, want %v", tc.quantum, tc.eps, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Compile(%v, %v): %v", tc.quantum, tc.eps, err)
			}
			if tc.eps <= 0 && c.Eps != 0.1 {
				t.Fatalf("eps %v did not resolve to the 0.1 default (got %v)", tc.eps, c.Eps)
			}
		})
	}
}

// TestRemakeRoundTrip: Remake of a patched instance recompiles to the
// same solve the warm path reports.
func TestRemakeRoundTrip(t *testing.T) {
	inst := windowedInstance(11, 16, 30)
	c, err := Compile(inst, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	out := make([]int32, c.NumItems)
	var d Delta
	d.SetCap(2, c.cap0[2]*0.6).ShiftWindow(5, 3, 9).Disable(1, 4)
	p, _, err := c.Apply(ctx, &d, out)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Compile(c.Remake(), c.Quantum, c.Eps)
	if err != nil {
		t.Fatal(err)
	}
	refOut := make([]int32, ref.NumItems)
	refP, err := ref.SolveInto(ctx, nil, refOut, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(p) != math.Float64bits(refP) || !reflect.DeepEqual(out, refOut) {
		t.Fatalf("Remake recompile diverged: warm %v vs cold %v", p, refP)
	}
}

// TestDataCapBookkeeping: data caps are recorded, readable, and inert.
func TestDataCapBookkeeping(t *testing.T) {
	inst := twoCompInstance()
	c, err := Compile(inst, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.DataCapOf(0); !math.IsInf(got, 1) {
		t.Fatalf("DataCapOf before any patch = %v, want +Inf", got)
	}
	ctx := context.Background()
	out := make([]int32, c.NumItems)
	base, _, err := c.Apply(ctx, nil, out)
	if err != nil {
		t.Fatal(err)
	}
	var d Delta
	d.SetDataCap(1, 3.5)
	p, st, err := c.Apply(ctx, &d, out)
	if err != nil {
		t.Fatal(err)
	}
	if !st.NoOp {
		t.Fatalf("stats %+v: a pure data-cap delta must be a solve no-op", st)
	}
	if math.Float64bits(p) != math.Float64bits(base) {
		t.Fatalf("data cap changed the profit: %v -> %v", base, p)
	}
	if got := c.DataCapOf(1); got != 3.5 {
		t.Fatalf("DataCapOf(1) = %v, want 3.5", got)
	}
	if got := c.DataCapOf(0); !math.IsInf(got, 1) {
		t.Fatalf("DataCapOf(0) = %v, want +Inf", got)
	}
}
