package gap

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// This file is the incremental re-solve path: a Delta batches in-place
// patches (budget debits via SetCap, data-cap changes, entry
// enable/disable, window shifts) and Compiled.Apply re-solves only the
// window components the patches touch, reusing the cached claims and
// itemBin of every clean component.
//
// Correctness contract: the state Apply returns is bit-identical
// (math.Float64bits on profits and residual budgets, exact itemBin match)
// to cold-compiling the patched instance and solving it from scratch. The
// argument, enforced by the differential suite in delta_test.go:
//
//   - A patch never adds entries: disabling hides a compiled entry and a
//     cap decrease hides entries whose weight no longer fits, which is
//     exactly the set a cold Compile of the patched instance drops via
//     keepEntry. The sweep's patched filter (compiled.go) applies the
//     same predicate per candidate, so both paths hand the knapsack
//     oracle identical candidate slices in identical order.
//   - Cap raises are representable only up to the compile-time capacity
//     on bins that shed positive-profit entries for weight (shedW):
//     beyond that a cold compile would resurrect entries the CSR no
//     longer holds, so Apply refuses with ErrDeltaNotRepresentable and
//     the caller recompiles cold.
//   - The compile-time component partition stays valid under patches:
//     patches only hide existing entries, so the true item-sharing graph
//     of the patched instance is a subgraph — components can split
//     (harmless: a coarser partition is still item-disjoint) but never
//     merge. Sweeping each component's bins in ascending order therefore
//     claims exactly what the global ascending sweep would.
//   - Clean components saw no patch, their claims and itemBin are
//     untouched, and components share no items — so re-sweeping only
//     dirty components reproduces the full sweep's state verbatim.
//   - Instance.Validate rejects per-bin duplicate (bin, item) entries, so
//     the entry that claimed an item is unique; finalProfit and
//     ResidualInto accumulate only claimed entries, in bin-major order in
//     both paths, making the float sums identical operation for
//     operation.

// Delta errors. Both are returned wrapped with position context; match
// with errors.Is.
var (
	// ErrDeltaNotRepresentable marks a patch the compiled form cannot
	// express: raising a bin's capacity above its compile-time value when
	// that bin had positive-profit entries dropped for weight — a cold
	// compile would re-admit entries the CSR no longer stores. Recompile
	// from the instance instead.
	ErrDeltaNotRepresentable = errors.New("gap: delta not representable on compiled form; recompile cold")
	// ErrBadDelta rejects malformed patches: bin index out of range, or a
	// NaN/negative/infinite capacity.
	ErrBadDelta = errors.New("gap: bad delta")
)

const (
	opSetCap uint8 = iota
	opSetDataCap
	opEnable
	opDisable
	opShift
)

type deltaOp struct {
	kind   uint8
	bin    int32
	lo, hi int32
	val    float64
}

// Delta is a reusable batch of in-place patches for Compiled.Apply. The
// zero value is an empty delta; builder methods return the receiver for
// chaining, and Reset re-arms the delta without releasing its backing
// array, so a long-lived Delta adds no steady-state allocations.
type Delta struct {
	ops []deltaOp
}

// SetCap sets bin's capacity (the budget debit primitive: debits are
// expressed as the new absolute residual). Raising a capacity above its
// compile-time value fails with ErrDeltaNotRepresentable if the bin shed
// entries for weight at compile time.
func (d *Delta) SetCap(bin int, capacity float64) *Delta {
	d.ops = append(d.ops, deltaOp{kind: opSetCap, bin: int32(bin), val: capacity})
	return d
}

// SetDataCap records bin's data cap. The GAP sweep does not read data
// caps (neither does cold Compile — callers enforce them downstream, as
// internal/online does), so this never dirties a component; it exists so
// warm callers can keep their cap bookkeeping on the compiled instance.
func (d *Delta) SetDataCap(bin int, capacity float64) *Delta {
	d.ops = append(d.ops, deltaOp{kind: opSetDataCap, bin: int32(bin), val: capacity})
	return d
}

// Enable re-enables the (bin, item) entry. Unknown pairs — never
// compiled, or dropped at compile time — are a documented no-op.
func (d *Delta) Enable(bin, item int) *Delta {
	d.ops = append(d.ops, deltaOp{kind: opEnable, bin: int32(bin), lo: int32(item)})
	return d
}

// Disable hides the (bin, item) entry from the sweep. Unknown pairs are
// a documented no-op.
func (d *Delta) Disable(bin, item int) *Delta {
	d.ops = append(d.ops, deltaOp{kind: opDisable, bin: int32(bin), lo: int32(item)})
	return d
}

// ShiftWindow sets bin's visible item window to [lo, hi]: exactly the
// compiled entries whose item lies inside are enabled, every other entry
// of the bin is disabled. lo > hi disables the whole bin (a departed
// sensor).
func (d *Delta) ShiftWindow(bin, lo, hi int) *Delta {
	d.ops = append(d.ops, deltaOp{kind: opShift, bin: int32(bin), lo: int32(lo), hi: int32(hi)})
	return d
}

// Reset empties the delta, keeping its capacity for reuse.
func (d *Delta) Reset() *Delta {
	d.ops = d.ops[:0]
	return d
}

// Len reports the number of staged patches.
func (d *Delta) Len() int { return len(d.ops) }

// warmState is the cache Apply maintains between calls: the last solve's
// claims, itemBin, and profit, plus the per-component dirty set.
type warmState struct {
	ready        bool // itemBin/claim/profit reflect the current patch state
	itemBin      []int32
	claim        []float64
	profit       float64
	dirty        []bool // per-component dirty flag
	dirtyEntries int32  // compiled entries inside dirty components
	anyDirty     bool
	bs           binScratch
}

// ApplyStats reports which path an Apply took.
type ApplyStats struct {
	// ColdStart: no warm state existed (first Apply, or the previous one
	// failed) — the whole instance was solved from scratch.
	ColdStart bool
	// NoOp: the delta changed nothing the sweep reads; the cached result
	// was returned without solving (zero allocations in steady state).
	NoOp bool
	// Full: the dirty components exceeded MaxDirtyFraction of all
	// compiled entries, so one full sweep replaced per-component solves.
	Full bool
	// ComponentsResolved / ComponentsClean count the incremental path's
	// re-solved and cache-served components (both zero on the other
	// paths).
	ComponentsResolved int
	ComponentsClean    int
}

// Apply patches the compiled instance in place and re-solves it
// incrementally, returning the patched instance's assignment profit. If
// out is non-nil it receives each item's owning bin (-1 unassigned; len
// must be NumItems). The result is bit-identical to a cold
// Compile+SolveInto of the patched instance (see the contract at the top
// of this file).
//
// Apply mutates the receiver and must not run concurrently with any
// other method on it. On error the instance may be partially patched and
// the warm cache is invalidated — the next Apply cold-starts — but
// callers holding the originating Instance should recompile instead
// (ErrDeltaNotRepresentable means the compiled form cannot express the
// patch at all).
func (c *Compiled) Apply(ctx context.Context, d *Delta, out []int32) (float64, ApplyStats, error) {
	var stats ApplyStats
	if out != nil && len(out) != c.NumItems {
		return 0, stats, fmt.Errorf("gap: out covers %d items, instance has %d", len(out), c.NumItems)
	}
	c.ensurePatchState()
	w := &c.warm
	if d != nil {
		for i := range d.ops {
			if err := c.stage(d.ops[i]); err != nil {
				w.ready = false
				return 0, stats, err
			}
		}
	}
	switch {
	case !w.ready:
		stats.ColdStart = true
		if err := c.warmFullSolve(ctx); err != nil {
			return 0, stats, err
		}
	case !w.anyDirty:
		stats.NoOp = true
	case c.wantFullResolve():
		stats.Full = true
		if err := c.warmFullSolve(ctx); err != nil {
			return 0, stats, err
		}
	default:
		for ci := range c.comps {
			if !w.dirty[ci] {
				stats.ComponentsClean++
				continue
			}
			for _, j := range c.compItems[ci] {
				w.claim[j] = 0
				w.itemBin[j] = -1
			}
			if err := c.sweep(ctx, &w.bs, w.claim, w.itemBin, c.comps[ci]); err != nil {
				w.ready = false
				return 0, stats, err
			}
			stats.ComponentsResolved++
		}
		w.profit = c.finalProfit(w.itemBin)
		c.clearDirty()
	}
	c.gen++
	if out != nil {
		copy(out, w.itemBin)
	}
	return w.profit, stats, nil
}

// wantFullResolve applies the MaxDirtyFraction policy to the current
// dirty set.
func (c *Compiled) wantFullResolve() bool {
	thr := c.MaxDirtyFraction
	if thr == 0 {
		thr = 0.5
	}
	total := len(c.Item)
	return thr >= 0 && total > 0 && float64(c.warm.dirtyEntries) > thr*float64(total)
}

// ensurePatchState lazily allocates the patch arrays on the first Apply;
// until then Compiled carries no patch overhead at all.
func (c *Compiled) ensurePatchState() {
	if c.patched {
		return
	}
	c.patched = true
	c.off = make([]bool, len(c.Item))
	b := len(c.Cap)
	c.enCount = make([]int32, b)
	for i := 0; i < b; i++ {
		c.enCount[i] = c.Off[i+1] - c.Off[i]
	}
	c.dataCap = make([]float64, b)
	for i := range c.dataCap {
		c.dataCap[i] = math.Inf(1)
	}
	c.warm.dirty = make([]bool, len(c.comps))
}

// stage applies one patch to the instance arrays, marking the touched
// component dirty only when the patch changes something the sweep reads.
func (c *Compiled) stage(op deltaOp) error {
	b := op.bin
	if b < 0 || int(b) >= len(c.Cap) {
		return fmt.Errorf("%w: bin %d out of range [0,%d)", ErrBadDelta, b, len(c.Cap))
	}
	if op.kind != opSetDataCap && len(c.shedG) > 0 && c.shedG[b] {
		// The conflict-group reduction dropped this bin's runner-up
		// entries at compile time; any sweep-visible patch could change
		// which group member a cold compile keeps, and the CSR no longer
		// holds the alternatives. Recompile cold instead.
		return fmt.Errorf("%w: bin %d was group-reduced at compile time", ErrDeltaNotRepresentable, b)
	}
	switch op.kind {
	case opSetCap:
		v := op.val
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: capacity %v for bin %d", ErrBadDelta, v, b)
		}
		if v > c.cap0[b] && c.shedW[b] {
			return fmt.Errorf("%w: bin %d capacity %v above compile-time %v with shed entries",
				ErrDeltaNotRepresentable, b, v, c.cap0[b])
		}
		if v == c.Cap[b] {
			return nil
		}
		c.Cap[b] = v
		if c.Quantum > 0 {
			c.CapU[b] = int32(min(math.Floor(v/c.Quantum), math.MaxInt32))
		}
		c.markDirty(b)
	case opSetDataCap:
		v := op.val
		if math.IsNaN(v) || v < 0 {
			return fmt.Errorf("%w: data cap %v for bin %d", ErrBadDelta, v, b)
		}
		c.dataCap[b] = v // bookkeeping only — never dirties (see SetDataCap)
	case opEnable, opDisable:
		k := c.findEntry(b, op.lo)
		if k < 0 {
			return nil // unknown (bin, item): documented no-op
		}
		if c.setOff(k, b, op.kind == opDisable) {
			c.markDirty(b)
		}
	case opShift:
		changed := false
		for k := c.Off[b]; k < c.Off[b+1]; k++ {
			on := c.Item[k] >= op.lo && c.Item[k] <= op.hi
			if c.setOff(k, b, !on) {
				changed = true
			}
		}
		if changed {
			c.markDirty(b)
		}
	default:
		return fmt.Errorf("%w: unknown op kind %d", ErrBadDelta, op.kind)
	}
	return nil
}

// setOff flips entry k's disabled flag, maintaining the bin's enabled
// count; reports whether anything changed.
func (c *Compiled) setOff(k, b int32, off bool) bool {
	if c.off[k] == off {
		return false
	}
	c.off[k] = off
	if off {
		c.enCount[b]--
	} else {
		c.enCount[b]++
	}
	return true
}

// markDirty flags bin b's component for re-solve.
func (c *Compiled) markDirty(b int32) {
	w := &c.warm
	ci := c.binComp[b]
	if !w.dirty[ci] {
		w.dirty[ci] = true
		w.dirtyEntries += c.compEntries[ci]
		w.anyDirty = true
	}
}

func (c *Compiled) clearDirty() {
	w := &c.warm
	if !w.anyDirty {
		return
	}
	for i := range w.dirty {
		w.dirty[i] = false
	}
	w.anyDirty = false
	w.dirtyEntries = 0
}

// findEntry locates bin b's compiled entry for item, -1 if none.
func (c *Compiled) findEntry(b, item int32) int32 {
	for k := c.Off[b]; k < c.Off[b+1]; k++ {
		if c.Item[k] == item {
			return k
		}
	}
	return -1
}

// warmFullSolve re-solves everything into the warm cache (sequential
// sweep; the warm path trades component parallelism for claim reuse).
func (c *Compiled) warmFullSolve(ctx context.Context) error {
	w := &c.warm
	if cap(w.itemBin) < c.NumItems {
		w.itemBin = make([]int32, c.NumItems)
		w.claim = make([]float64, c.NumItems)
	}
	w.itemBin = w.itemBin[:c.NumItems]
	w.claim = w.claim[:c.NumItems]
	for j := range w.claim {
		w.claim[j] = 0
	}
	for j := range w.itemBin {
		w.itemBin[j] = -1
	}
	if err := c.sweep(ctx, &w.bs, w.claim, w.itemBin, c.allBins); err != nil {
		w.ready = false
		return err
	}
	w.profit = c.finalProfit(w.itemBin)
	w.ready = true
	c.clearDirty()
	return nil
}

// Generation reports how many Applies have succeeded on this instance —
// the cache key warm wrappers combine with the instance pointer.
func (c *Compiled) Generation() uint64 { return c.gen }

// DataCapOf reports bin's recorded data cap (+Inf when never set).
func (c *Compiled) DataCapOf(bin int) float64 {
	if !c.patched {
		return math.Inf(1)
	}
	return c.dataCap[bin]
}

// Remake reconstructs a plain Instance from the current patched state —
// current capacities, disabled entries omitted — for cold-reference
// verification and for recompiling after ErrDeltaNotRepresentable.
func (c *Compiled) Remake() *Instance {
	inst := &Instance{NumItems: c.NumItems, Bins: make([]Bin, len(c.Cap))}
	if c.itemGroup != nil {
		inst.ItemGroup = append([]int(nil), c.itemGroup...)
	}
	for b := range c.Cap {
		bin := Bin{Capacity: c.Cap[b]}
		for k := c.Off[b]; k < c.Off[b+1]; k++ {
			if c.patched && c.off[k] {
				continue
			}
			bin.Entries = append(bin.Entries, Entry{
				Item:   int(c.Item[k]),
				Profit: c.Profit[k],
				Weight: c.Weight[k],
			})
		}
		inst.Bins[b] = bin
	}
	return inst
}

// ResidualInto writes each bin's residual capacity under itemBin into
// out (len must cover the bins), subtracting claimed entry weights in
// bin-major compiled order — the same float-operation sequence a cold
// compile of the patched instance produces, so residuals compare equal
// under math.Float64bits across the warm and cold paths.
func (c *Compiled) ResidualInto(itemBin []int32, out []float64) {
	for b := range c.Cap {
		r := c.Cap[b]
		for k := c.Off[b]; k < c.Off[b+1]; k++ {
			if itemBin[c.Item[k]] == int32(b) {
				r -= c.Weight[k]
			}
		}
		out[b] = r
	}
}
