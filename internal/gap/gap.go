// Package gap solves the Generalized Assignment Problem (GAP): pack items
// into capacitated bins where each (bin, item) pair has its own profit and
// weight, maximizing total profit. The data collection maximization problem
// reduces to GAP with bins = sensors (capacity = per-tour energy budget) and
// items = time slots (paper Thm 1).
//
// The main solver is LocalRatio, the Cohen-Katzir-Raz algorithm the paper
// adopts (its ref. [3]): bins are processed in a given order; each bin packs
// its eligible items with a knapsack oracle against *residual* profits; the
// profit function is then decomposed so that later bins only see the profit
// in excess of what the current bin claimed; finally each item goes to the
// last bin that selected it. With a β-approximate knapsack oracle the result
// is a 1/(1+β)-approximation.
package gap

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mobisink/internal/knapsack"
)

// Entry is one eligible (bin, item) pair.
type Entry struct {
	Item   int     // item index in [0, NumItems)
	Profit float64 // profit if the bin receives the item
	Weight float64 // capacity consumed in this bin
}

// Bin is one capacitated bin and the items it may receive.
type Bin struct {
	Capacity float64
	Entries  []Entry
}

// Instance is a sparse GAP instance.
type Instance struct {
	NumItems int
	Bins     []Bin
	// ItemGroup, when non-nil (len NumItems), assigns each item a conflict
	// group: within any single bin, at most one item per group may be
	// assigned. Negative group ids mean "unconstrained". The fleet
	// reduction uses groups for the "one sink per absolute time slot"
	// constraint — items are (sink, slot) pairs and the group id is the
	// absolute slot, so a sensor (bin) may talk to at most one sink in any
	// given time slot. Different bins may freely use the same group.
	ItemGroup []int
}

// groupOf returns item j's conflict group, or -1 when unconstrained.
func (inst *Instance) groupOf(j int) int {
	if inst.ItemGroup == nil {
		return -1
	}
	if g := inst.ItemGroup[j]; g >= 0 {
		return g
	}
	return -1
}

// reduceGroups computes the same-group dominance reduction for one bin:
// among the bin's assignable entries (positive profit, weight within
// capacity) whose items share a conflict group, only the dominant entry —
// max profit, then min weight, then lowest item — survives. It returns a
// per-entry drop mask (nil when the bin has no group with two or more
// assignable entries, the common case) and whether the reduction is exact:
// it is whenever every dropped entry is weakly dominated (profit ≤, weight
// ≥) by its group's winner, which holds for monotone link models where the
// closer sink offers both the higher rate and the lower (or equal) energy
// cost. An inexact reduction still yields feasible assignments; only the
// approximation guarantee versus the unreduced optimum may degrade.
func reduceGroups(entries []Entry, capacity float64, itemGroup []int) (drop []bool, exact bool) {
	exact = true
	if itemGroup == nil {
		return nil, exact
	}
	winner := map[int]int{} // group → entry index of current winner
	reduced := false
	for k, e := range entries {
		g := itemGroup[e.Item]
		if g < 0 || e.Profit <= 0 || e.Weight > capacity {
			continue
		}
		w, ok := winner[g]
		if !ok {
			winner[g] = k
			continue
		}
		reduced = true
		win := entries[w]
		if e.Profit > win.Profit ||
			(e.Profit == win.Profit && e.Weight < win.Weight) ||
			(e.Profit == win.Profit && e.Weight == win.Weight && e.Item < win.Item) {
			winner[g] = k
		}
	}
	if !reduced {
		return nil, exact
	}
	drop = make([]bool, len(entries))
	for k, e := range entries {
		g := itemGroup[e.Item]
		if g < 0 || e.Profit <= 0 || e.Weight > capacity {
			continue
		}
		if w := winner[g]; w != k {
			drop[k] = true
			if e.Weight < entries[w].Weight {
				exact = false
			}
		}
	}
	return drop, exact
}

// Validate checks index ranges, signs, and per-bin duplicate entries.
// Duplicates are tracked with a single epoch-marked array instead of a
// per-bin map — Validate runs on every legacy solve, and the map churn
// used to dominate its cost.
func (inst *Instance) Validate() error {
	if inst.NumItems < 0 {
		return fmt.Errorf("gap: negative item count %d", inst.NumItems)
	}
	if inst.ItemGroup != nil && len(inst.ItemGroup) != inst.NumItems {
		return fmt.Errorf("gap: ItemGroup covers %d items, instance has %d", len(inst.ItemGroup), inst.NumItems)
	}
	seen := make([]int, inst.NumItems) // seen[j] == b+1 ⇔ bin b already lists item j
	for b, bin := range inst.Bins {
		if bin.Capacity < 0 {
			return fmt.Errorf("gap: bin %d has negative capacity", b)
		}
		epoch := b + 1
		for _, e := range bin.Entries {
			if e.Item < 0 || e.Item >= inst.NumItems {
				return fmt.Errorf("gap: bin %d references item %d out of range", b, e.Item)
			}
			if e.Weight < 0 {
				return fmt.Errorf("gap: bin %d item %d has negative weight", b, e.Item)
			}
			if seen[e.Item] == epoch {
				return fmt.Errorf("gap: bin %d lists item %d twice", b, e.Item)
			}
			seen[e.Item] = epoch
		}
	}
	return nil
}

// Assignment maps each item to its bin (or -1 for unassigned).
type Assignment struct {
	ItemBin []int
	Profit  float64
}

// NewAssignment returns an all-unassigned assignment for n items.
func NewAssignment(n int) *Assignment {
	ib := make([]int, n)
	for i := range ib {
		ib[i] = -1
	}
	return &Assignment{ItemBin: ib}
}

// Check verifies the assignment is feasible for the instance and that
// Profit is consistent; it returns the recomputed profit.
func (a *Assignment) Check(inst *Instance) (float64, error) {
	if len(a.ItemBin) != inst.NumItems {
		return 0, fmt.Errorf("gap: assignment covers %d items, instance has %d", len(a.ItemBin), inst.NumItems)
	}
	used := make([]float64, len(inst.Bins))
	var groupUsed map[[2]int]bool
	if inst.ItemGroup != nil {
		groupUsed = map[[2]int]bool{}
	}
	total := 0.0
	for item, b := range a.ItemBin {
		if b == -1 {
			continue
		}
		if b < 0 || b >= len(inst.Bins) {
			return 0, fmt.Errorf("gap: item %d assigned to invalid bin %d", item, b)
		}
		e, ok := findEntry(inst.Bins[b].Entries, item)
		if !ok {
			return 0, fmt.Errorf("gap: item %d assigned to bin %d which is not eligible", item, b)
		}
		used[b] += e.Weight
		total += e.Profit
		if g := inst.groupOf(item); g >= 0 {
			key := [2]int{b, g}
			if groupUsed[key] {
				return 0, fmt.Errorf("gap: bin %d assigned two items of conflict group %d", b, g)
			}
			groupUsed[key] = true
		}
	}
	for b, w := range used {
		if w > inst.Bins[b].Capacity+1e-9 {
			return 0, fmt.Errorf("gap: bin %d overfull: %v > %v", b, w, inst.Bins[b].Capacity)
		}
	}
	return total, nil
}

func findEntry(entries []Entry, item int) (Entry, bool) {
	for _, e := range entries {
		if e.Item == item {
			return e, true
		}
	}
	return Entry{}, false
}

// LocalRatio runs the Cohen-Katzir-Raz algorithm with the given knapsack
// oracle, processing bins in index order (callers encode the paper's
// start-slot/end-slot sensor ordering by building Bins accordingly).
func LocalRatio(inst *Instance, solve knapsack.Solver) (*Assignment, error) {
	if solve == nil {
		return nil, errors.New("gap: nil knapsack solver")
	}
	return LocalRatioBins(inst, func(_ int, items []knapsack.Item, capacity float64) knapsack.Solution {
		return solve(items, capacity)
	})
}

// BinSolver packs one bin; the bin index lets callers vary per-bin
// constraints (e.g. a per-sensor data cap on total profit).
type BinSolver func(bin int, items []knapsack.Item, capacity float64) knapsack.Solution

// LocalRatioBins is LocalRatio with a per-bin oracle.
func LocalRatioBins(inst *Instance, solve BinSolver) (*Assignment, error) {
	if solve == nil {
		return nil, errors.New("gap: nil bin solver")
	}
	return LocalRatioBinsCtx(context.Background(), inst,
		func(_ context.Context, bin int, items []knapsack.Item, capacity float64) (knapsack.Solution, error) {
			return solve(bin, items, capacity), nil
		})
}

// Greedy is a simple baseline: consider all (bin, item) entries in
// decreasing profit-per-weight density and assign each still-unassigned item
// to the first bin with enough residual capacity.
func Greedy(inst *Instance) (*Assignment, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	var cands []cand
	for b, bin := range inst.Bins {
		// The same-group dominance reduction keeps at most one entry per
		// (bin, conflict group), so the greedy scan below can never assign
		// a bin two items of one group.
		drop, _ := reduceGroups(bin.Entries, bin.Capacity, inst.ItemGroup)
		for k, e := range bin.Entries {
			if e.Profit <= 0 || e.Weight > bin.Capacity {
				continue
			}
			if drop != nil && drop[k] {
				continue
			}
			d := inf
			if e.Weight > 0 {
				d = e.Profit / e.Weight
			}
			cands = append(cands, cand{b, e, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return candLess(cands[i], cands[j]) })
	a := NewAssignment(inst.NumItems)
	residual := make([]float64, len(inst.Bins))
	for b := range residual {
		residual[b] = inst.Bins[b].Capacity
	}
	for _, c := range cands {
		if a.ItemBin[c.e.Item] != -1 {
			continue
		}
		if c.e.Weight > residual[c.bin] {
			continue
		}
		a.ItemBin[c.e.Item] = c.bin
		residual[c.bin] -= c.e.Weight
		a.Profit += c.e.Profit
	}
	return a, nil
}

const inf = 1e308

type cand struct {
	bin     int
	e       Entry
	density float64
}

func candLess(a, b cand) bool {
	if a.density != b.density {
		return a.density > b.density // descending density
	}
	if a.e.Profit != b.e.Profit {
		return a.e.Profit > b.e.Profit
	}
	if a.bin != b.bin {
		return a.bin < b.bin
	}
	return a.e.Item < b.e.Item
}

// Exhaustive finds the optimal assignment by exhaustive search; it is
// exponential and intended only for tiny instances in tests and
// fraction-of-optimum reports. It returns an error when the search space
// exceeds maxStates.
func Exhaustive(inst *Instance, maxStates uint64) (*Assignment, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	// Search space: each item picks one of its eligible bins or none.
	states := uint64(1)
	perItem := make([][]int, inst.NumItems) // eligible bins per item
	for b, bin := range inst.Bins {
		for _, e := range bin.Entries {
			perItem[e.Item] = append(perItem[e.Item], b)
		}
	}
	for _, bins := range perItem {
		m := uint64(len(bins) + 1)
		if states > maxStates/m {
			return nil, fmt.Errorf("gap: exhaustive search space exceeds %d states", maxStates)
		}
		states *= m
	}

	best := NewAssignment(inst.NumItems)
	cur := NewAssignment(inst.NumItems)
	residual := make([]float64, len(inst.Bins))
	for b := range residual {
		residual[b] = inst.Bins[b].Capacity
	}
	// groupTaken reports whether bin b already holds an item of item's
	// conflict group among the currently assigned lower-indexed items
	// (Exhaustive is the optimum reference, so it enforces the group
	// constraint exactly rather than via the dominance reduction).
	groupTaken := func(b, item int) bool {
		g := inst.groupOf(item)
		if g < 0 {
			return false
		}
		for j := 0; j < item; j++ {
			if cur.ItemBin[j] == b && inst.groupOf(j) == g {
				return true
			}
		}
		return false
	}
	var dfs func(item int, profit float64)
	dfs = func(item int, profit float64) {
		if item == inst.NumItems {
			if profit > best.Profit {
				best.Profit = profit
				copy(best.ItemBin, cur.ItemBin)
			}
			return
		}
		// Skip the item.
		cur.ItemBin[item] = -1
		dfs(item+1, profit)
		for _, b := range perItem[item] {
			e, _ := findEntry(inst.Bins[b].Entries, item)
			if e.Profit <= 0 || e.Weight > residual[b] || groupTaken(b, item) {
				continue
			}
			cur.ItemBin[item] = b
			residual[b] -= e.Weight
			dfs(item+1, profit+e.Profit)
			residual[b] += e.Weight
			cur.ItemBin[item] = -1
		}
	}
	dfs(0, 0)
	return best, nil
}
