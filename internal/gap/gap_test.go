package gap

import (
	"math"
	"math/rand"
	"testing"

	"mobisink/internal/knapsack"
)

func exactKnapsack(items []knapsack.Item, c float64) knapsack.Solution {
	return knapsack.BranchAndBound(items, c)
}

func TestValidate(t *testing.T) {
	good := &Instance{
		NumItems: 2,
		Bins: []Bin{
			{Capacity: 5, Entries: []Entry{{Item: 0, Profit: 1, Weight: 1}, {Item: 1, Profit: 2, Weight: 2}}},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := []*Instance{
		{NumItems: -1},
		{NumItems: 1, Bins: []Bin{{Capacity: -1}}},
		{NumItems: 1, Bins: []Bin{{Capacity: 1, Entries: []Entry{{Item: 2, Profit: 1, Weight: 1}}}}},
		{NumItems: 1, Bins: []Bin{{Capacity: 1, Entries: []Entry{{Item: 0, Profit: 1, Weight: -1}}}}},
		{NumItems: 1, Bins: []Bin{{Capacity: 1, Entries: []Entry{{Item: 0, Profit: 1, Weight: 1}, {Item: 0, Profit: 2, Weight: 1}}}}},
	}
	for i, inst := range bad {
		if err := inst.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestAssignmentCheck(t *testing.T) {
	inst := &Instance{
		NumItems: 2,
		Bins: []Bin{
			{Capacity: 3, Entries: []Entry{{Item: 0, Profit: 5, Weight: 2}, {Item: 1, Profit: 4, Weight: 2}}},
		},
	}
	a := NewAssignment(2)
	a.ItemBin[0] = 0
	p, err := a.Check(inst)
	if err != nil || p != 5 {
		t.Fatalf("Check = %v, %v", p, err)
	}
	// Overfull bin.
	a.ItemBin[1] = 0
	if _, err := a.Check(inst); err == nil {
		t.Error("expected overfull error")
	}
	// Ineligible assignment.
	b := NewAssignment(2)
	b.ItemBin[0] = 1
	if _, err := b.Check(inst); err == nil {
		t.Error("expected invalid-bin error")
	}
	// Wrong length.
	c := NewAssignment(3)
	if _, err := c.Check(inst); err == nil {
		t.Error("expected length error")
	}
}

// The worked GAP instance: two bins, three items, profits favoring a split.
func TestLocalRatioSmall(t *testing.T) {
	inst := &Instance{
		NumItems: 3,
		Bins: []Bin{
			{Capacity: 2, Entries: []Entry{
				{Item: 0, Profit: 10, Weight: 1},
				{Item: 1, Profit: 9, Weight: 1},
				{Item: 2, Profit: 1, Weight: 1},
			}},
			{Capacity: 1, Entries: []Entry{
				{Item: 0, Profit: 2, Weight: 1},
				{Item: 2, Profit: 8, Weight: 1},
			}},
		},
	}
	a, err := LocalRatio(inst, exactKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	p, err := a.Check(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-a.Profit) > 1e-9 {
		t.Errorf("profit mismatch: reported %v recomputed %v", a.Profit, p)
	}
	opt, err := Exhaustive(inst, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Profit != 27 { // bin0 gets items 0,1; bin1 gets item 2
		t.Fatalf("exhaustive optimum = %v, want 27", opt.Profit)
	}
	if a.Profit < opt.Profit/2-1e-9 {
		t.Errorf("local ratio %v below half optimum %v", a.Profit, opt.Profit)
	}
}

func TestLocalRatioNilSolver(t *testing.T) {
	if _, err := LocalRatio(&Instance{}, nil); err == nil {
		t.Error("expected error for nil solver")
	}
}

func TestLocalRatioRejectsInvalid(t *testing.T) {
	inst := &Instance{NumItems: -1}
	if _, err := LocalRatio(inst, exactKnapsack); err == nil {
		t.Error("expected validation error")
	}
	if _, err := Greedy(inst); err == nil {
		t.Error("expected validation error from greedy")
	}
	if _, err := Exhaustive(inst, 100); err == nil {
		t.Error("expected validation error from exhaustive")
	}
}

func randInstance(rng *rand.Rand, bins, items int) *Instance {
	inst := &Instance{NumItems: items}
	for b := 0; b < bins; b++ {
		bin := Bin{Capacity: 1 + rng.Float64()*4}
		for j := 0; j < items; j++ {
			if rng.Float64() < 0.7 {
				bin.Entries = append(bin.Entries, Entry{
					Item:   j,
					Profit: math.Floor(rng.Float64()*100) / 10,
					Weight: math.Floor(rng.Float64()*30)/10 + 0.1,
				})
			}
		}
		inst.Bins = append(inst.Bins, bin)
	}
	return inst
}

// The paper's guarantee: LocalRatio with an exact knapsack (β=1) achieves at
// least OPT/2.
func TestLocalRatioHalfApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		inst := randInstance(rng, 1+rng.Intn(3), 1+rng.Intn(6))
		opt, err := Exhaustive(inst, 1<<24)
		if err != nil {
			t.Fatal(err)
		}
		a, err := LocalRatio(inst, exactKnapsack)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Check(inst); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
		if a.Profit < opt.Profit/2-1e-9 {
			t.Fatalf("trial %d: local ratio %v < OPT/2 = %v", trial, a.Profit, opt.Profit/2)
		}
	}
}

// With an FPTAS oracle the guarantee is 1/(2+eps).
func TestLocalRatioFPTASGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const eps = 0.3
	solve := knapsack.FPTAS(eps)
	for trial := 0; trial < 80; trial++ {
		inst := randInstance(rng, 1+rng.Intn(3), 1+rng.Intn(6))
		opt, err := Exhaustive(inst, 1<<24)
		if err != nil {
			t.Fatal(err)
		}
		a, err := LocalRatio(inst, solve)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Check(inst); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
		if a.Profit < opt.Profit/(2+eps)-1e-9 {
			t.Fatalf("trial %d: local ratio %v < OPT/(2+eps) = %v", trial, a.Profit, opt.Profit/(2+eps))
		}
	}
}

func TestGreedyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		inst := randInstance(rng, 1+rng.Intn(4), 1+rng.Intn(8))
		a, err := Greedy(inst)
		if err != nil {
			t.Fatal(err)
		}
		p, err := a.Check(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(p-a.Profit) > 1e-9 {
			t.Fatalf("trial %d: profit mismatch %v vs %v", trial, a.Profit, p)
		}
	}
}

func TestExhaustiveRefusesHugeInstances(t *testing.T) {
	inst := randInstance(rand.New(rand.NewSource(1)), 10, 30)
	if _, err := Exhaustive(inst, 1<<20); err == nil {
		t.Error("expected search-space error")
	}
}

// When every item fits every bin with identical weights/profits per bin and
// capacities are generous, LocalRatio must recover the optimum.
func TestLocalRatioTrivialOptimal(t *testing.T) {
	inst := &Instance{
		NumItems: 4,
		Bins: []Bin{
			{Capacity: 100, Entries: []Entry{
				{Item: 0, Profit: 4, Weight: 1}, {Item: 1, Profit: 3, Weight: 1},
				{Item: 2, Profit: 2, Weight: 1}, {Item: 3, Profit: 1, Weight: 1},
			}},
		},
	}
	a, err := LocalRatio(inst, exactKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if a.Profit != 10 {
		t.Errorf("profit = %v, want 10 (all items)", a.Profit)
	}
}

// Items claimed by an early bin but re-claimed by a later bin must end in
// the later bin (the "last selector wins" reverse pass).
func TestLocalRatioLastSelectorWins(t *testing.T) {
	inst := &Instance{
		NumItems: 1,
		Bins: []Bin{
			{Capacity: 1, Entries: []Entry{{Item: 0, Profit: 5, Weight: 1}}},
			{Capacity: 1, Entries: []Entry{{Item: 0, Profit: 9, Weight: 1}}},
		},
	}
	a, err := LocalRatio(inst, exactKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if a.ItemBin[0] != 1 || a.Profit != 9 {
		t.Errorf("item should go to bin 1 with profit 9, got bin %d profit %v", a.ItemBin[0], a.Profit)
	}
}
