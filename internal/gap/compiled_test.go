package gap

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"mobisink/internal/knapsack"
)

// windowedInstance builds a random instance whose bins see contiguous item
// windows — the same structure the mobile-sink reduction produces, with a
// controllable chance of multiple connected components.
func windowedInstance(seed int64, bins, items int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := &Instance{NumItems: items}
	for b := 0; b < bins; b++ {
		start := rng.Intn(items)
		width := 1 + rng.Intn(6)
		bin := Bin{Capacity: 0.5 + rng.Float64()*3}
		for j := start; j < start+width && j < items; j++ {
			bin.Entries = append(bin.Entries, Entry{
				Item:   j,
				Profit: rng.Float64()*4 - 0.5, // some non-positive (dead) entries
				Weight: rng.Float64() * 2,     // some above capacity
			})
		}
		inst.Bins = append(inst.Bins, bin)
	}
	return inst
}

func TestCompileDropsDeadEntries(t *testing.T) {
	inst := &Instance{
		NumItems: 4,
		Bins: []Bin{
			{Capacity: 1, Entries: []Entry{
				{Item: 0, Profit: 2, Weight: 0.5},
				{Item: 1, Profit: 0, Weight: 0.1},  // profit ≤ 0: dead
				{Item: 2, Profit: 3, Weight: 1.5},  // weight > cap: dead
				{Item: 3, Profit: -1, Weight: 0.2}, // profit < 0: dead
			}},
			{Capacity: 2, Entries: []Entry{
				{Item: 2, Profit: 1, Weight: 2},
			}},
		},
	}
	c, err := Compile(inst, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Off[len(c.Cap)]; got != 2 {
		t.Fatalf("compiled %d entries, want 2 (dead entries dropped)", got)
	}
	if c.Item[0] != 0 || c.Item[1] != 2 {
		t.Fatalf("compiled items %v, want [0 2]", c.Item[:2])
	}
	if c.NumItems != 4 {
		t.Fatalf("NumItems %d, want 4 (dropping entries must not renumber items)", c.NumItems)
	}
	// Bins 0 and 1 only share the dead item-2 entry in bin 0… which was
	// dropped, so they form two components.
	if c.NumComponents() != 2 {
		t.Fatalf("NumComponents %d, want 2", c.NumComponents())
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	bad := &Instance{NumItems: 1, Bins: []Bin{{Capacity: 1, Entries: []Entry{
		{Item: 0, Profit: 1, Weight: 0.1},
		{Item: 0, Profit: 2, Weight: 0.2},
	}}}}
	if _, err := Compile(bad, 0.1, 0); err == nil {
		t.Fatal("Compile accepted a duplicate entry")
	}
	if _, err := Compile(nil, 0.1, 0); err == nil {
		t.Fatal("Compile accepted a nil instance")
	}
}

// TestCompiledMatchesLocalRatio checks the compiled sweep is bit-identical
// to the legacy pointer-chasing LocalRatioCtx, in both oracle modes.
func TestCompiledMatchesLocalRatio(t *testing.T) {
	const quantum, eps = 0.05, 0.25
	for seed := int64(0); seed < 25; seed++ {
		inst := windowedInstance(seed, 3+int(seed%7), 12+int(seed%9))
		for _, dpMode := range []bool{true, false} {
			var legacySolve knapsack.SolverCtx
			q, e := 0.0, eps
			if dpMode {
				q, e = quantum, 0
				legacySolve = func(ctx context.Context, items []knapsack.Item, capacity float64) (knapsack.Solution, error) {
					return knapsack.DPCtx(ctx, items, capacity, quantum)
				}
			} else {
				legacySolve = knapsack.FPTASCtx(eps)
			}
			want, err := LocalRatioCtx(context.Background(), inst, legacySolve)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(inst, q, e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Solve(context.Background(), SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.ItemBin, want.ItemBin) {
				t.Fatalf("seed %d dp=%v: ItemBin %v != legacy %v", seed, dpMode, got.ItemBin, want.ItemBin)
			}
			if got.Profit != want.Profit {
				t.Fatalf("seed %d dp=%v: Profit %v != legacy %v (must be bit-identical)",
					seed, dpMode, got.Profit, want.Profit)
			}
		}
	}
}

// TestCompiledParallelMatchesSequential forces the component fan-out
// (negative MinParallelEntries disables the small-component fallback,
// Workers > 1 defeats the single-CPU fallback) and requires bitwise
// equality with the sequential sweep.
func TestCompiledParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		inst := windowedInstance(100+seed, 8, 40) // wide: many components likely
		c, err := Compile(inst, 0.05, 0)
		if err != nil {
			t.Fatal(err)
		}
		seqBin := make([]int32, c.NumItems)
		parBin := make([]int32, c.NumItems)
		seqP, err := c.SolveInto(context.Background(), nil, seqBin, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		parP, err := c.SolveInto(context.Background(), nil, parBin, SolveOptions{
			Parallel: true, Workers: 4, MinParallelEntries: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqBin, parBin) {
			t.Fatalf("seed %d: parallel itemBin %v != sequential %v", seed, parBin, seqBin)
		}
		if seqP != parP {
			t.Fatalf("seed %d: parallel profit %v != sequential %v", seed, parP, seqP)
		}
	}
}

func TestSolveIntoSizeMismatch(t *testing.T) {
	c, err := Compile(windowedInstance(1, 3, 10), 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SolveInto(context.Background(), nil, make([]int32, 3), SolveOptions{}); err == nil {
		t.Fatal("SolveInto accepted a short itemBin")
	}
}

// TestSolveIntoNoAllocs is the steady-state gate for the serving path: a
// reused Scratch and itemBin make the sequential compiled solve
// allocation-free, in both oracle modes.
func TestSolveIntoNoAllocs(t *testing.T) {
	inst := windowedInstance(7, 12, 60)
	for _, mode := range []struct {
		name string
		q    float64
	}{{"dp", 0.05}, {"fptas", 0}} {
		t.Run(mode.name, func(t *testing.T) {
			c, err := Compile(inst, mode.q, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			var s Scratch
			itemBin := make([]int32, c.NumItems)
			run := func() {
				if _, err := c.SolveInto(context.Background(), &s, itemBin, SolveOptions{}); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm scratch buffers
			if n := testing.AllocsPerRun(50, run); n != 0 {
				t.Fatalf("SolveInto allocates %v per run with reused scratch", n)
			}
		})
	}
}

func TestCompiledSolveCanceled(t *testing.T) {
	c, err := Compile(windowedInstance(3, 6, 30), 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Solve(ctx, SolveOptions{}); err == nil {
		t.Fatal("Solve ignored canceled context")
	}
	if _, err := c.Solve(ctx, SolveOptions{Parallel: true, Workers: 4, MinParallelEntries: -1}); err == nil {
		t.Fatal("parallel Solve ignored canceled context")
	}
}
