package solve

import (
	"strings"
	"testing"
)

func TestNewSchedulerResolvesAllNames(t *testing.T) {
	for _, name := range SchedulerNames() {
		s, err := NewScheduler(name, Options{})
		if err != nil {
			t.Fatalf("NewScheduler(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("NewScheduler(%q).Name() = %q", name, s.Name())
		}
	}
	if len(SchedulerNames()) != len(schedulerFactories) {
		t.Errorf("SchedulerNames() lists %d of %d factories", len(SchedulerNames()), len(schedulerFactories))
	}
}

func TestNewSchedulerCaseAndPrefix(t *testing.T) {
	for _, alias := range []string{"Online_Appro", "online_appro", "APPRO", "appro"} {
		s, err := NewScheduler(alias, Options{})
		if err != nil {
			t.Fatalf("NewScheduler(%q): %v", alias, err)
		}
		if s.Name() != "Online_Appro" {
			t.Errorf("NewScheduler(%q).Name() = %q, want Online_Appro", alias, s.Name())
		}
	}
}

func TestNewSchedulerUnknown(t *testing.T) {
	_, err := NewScheduler("definitely-not-a-scheduler", Options{})
	if err == nil {
		t.Fatal("expected error for unknown scheduler")
	}
	if !strings.Contains(err.Error(), "Online_Appro") {
		t.Errorf("error should list the known schedulers, got: %v", err)
	}
}
