package solve

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/knapsack"
)

func TestBatchMatchesIndividualSolves(t *testing.T) {
	insts := []*core.Instance{
		paperInstance(t, 20, 1, 5, 1),
		paperInstance(t, 30, 2, 5, 1),
		paperInstance(t, 25, 3, 5, 1),
	}
	items, err := Batch(context.Background(), "Offline_Appro", insts, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(insts) {
		t.Fatalf("got %d items for %d instances", len(items), len(insts))
	}
	for i, inst := range insts {
		if items[i].Err != nil {
			t.Fatalf("instance %d failed: %v", i, items[i].Err)
		}
		s, err := New("Offline_Appro", Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Solve(context.Background(), inst)
		if err != nil {
			t.Fatal(err)
		}
		if items[i].Alloc.Data != want.Data || !reflect.DeepEqual(items[i].Alloc.SlotOwner, want.SlotOwner) {
			t.Fatalf("instance %d: batch Data %v != individual %v", i, items[i].Alloc.Data, want.Data)
		}
		if items[i].Elapsed <= 0 {
			t.Fatalf("instance %d: non-positive Elapsed %v", i, items[i].Elapsed)
		}
	}
}

func TestBatchPerItemErrors(t *testing.T) {
	insts := []*core.Instance{
		paperInstance(t, 20, 1, 5, 1),
		nil,
		paperInstance(t, 20, 2, 5, 1),
	}
	items, err := Batch(context.Background(), "Offline_Appro", insts, Options{}, 2)
	if err != nil {
		t.Fatalf("batch-level error for a per-item failure: %v", err)
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("healthy siblings failed: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil || !strings.Contains(items[1].Err.Error(), "nil instance") {
		t.Fatalf("nil instance error missing, got %v", items[1].Err)
	}
	if items[1].Alloc != nil {
		t.Fatal("failed item carries an allocation")
	}
}

func TestBatchUnknownAlgorithm(t *testing.T) {
	if _, err := Batch(context.Background(), "No_Such_Solver", nil, Options{}, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBatchEmpty(t *testing.T) {
	items, err := Batch(context.Background(), "Offline_Appro", nil, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("got %d items for an empty batch", len(items))
	}
}

// TestBatchCustomOracle exercises the non-compiled fallback: a custom
// knapsack oracle cannot ride the flat path, so Batch must route through
// the solver's generic Solve.
func TestBatchCustomOracle(t *testing.T) {
	opts := Options{Core: core.Options{Knapsack: knapsack.Greedy}}
	insts := []*core.Instance{paperInstance(t, 20, 4, 5, 1)}
	items, err := Batch(context.Background(), "Offline_Appro", insts, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil {
		t.Fatal(items[0].Err)
	}
	if items[0].Alloc == nil || items[0].Alloc.Data <= 0 {
		t.Fatalf("custom-oracle batch produced %+v", items[0].Alloc)
	}
}

func TestBatchOtherAlgorithms(t *testing.T) {
	insts := []*core.Instance{paperInstance(t, 20, 5, 5, 1)}
	for _, alg := range []string{"Offline_Greedy", "Online_Greedy"} {
		items, err := Batch(context.Background(), alg, insts, Options{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if items[0].Err != nil {
			t.Fatalf("%s: %v", alg, items[0].Err)
		}
	}
}

func TestBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	insts := []*core.Instance{paperInstance(t, 40, 6, 5, 1)}
	items, err := Batch(ctx, "Offline_Appro", insts, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err == nil {
		t.Fatal("canceled context did not surface in the item error")
	}
}
