package solve

import (
	"context"
	"errors"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/parallel"
)

// BatchItem is the outcome of one instance in a Batch call.
type BatchItem struct {
	Alloc   *core.Allocation
	Err     error
	Elapsed time.Duration
}

// Batch solves many instances with one named algorithm, amortizing the
// flat-engine setup and scheduling whole instances across a work-stealing
// worker pool (workers ≤ 0 means GOMAXPROCS). Results come back in input
// order; a per-instance failure (including a nil instance) lands in that
// item's Err instead of aborting its siblings. The returned error is
// reserved for batch-level problems (an unknown algorithm).
//
// Whole instances are the scheduling granularity on purpose: they are
// large enough to amortize a task dispatch, and the stealing pool keeps
// workers busy when instance sizes are skewed. Intra-instance component
// parallelism (opts.Core.Parallel) composes with this but is usually
// redundant under a full batch.
func Batch(ctx context.Context, algorithm string, insts []*core.Instance, opts Options, workers int) ([]BatchItem, error) {
	s, err := New(algorithm, opts)
	if err != nil {
		return nil, err
	}
	batchSize.Observe(float64(len(insts)))
	items := make([]BatchItem, len(insts))
	if len(insts) == 0 {
		return items, nil
	}
	for i, inst := range insts {
		if inst == nil {
			items[i].Err = errors.New("solve: nil instance")
		}
	}
	// Precompile outside the pool when the algorithm supports it: compile
	// work is measured (solve_compile_ns) and the per-instance solvers
	// then ride the flat path with zero redundant validation.
	var compiled []*core.Compiled
	if as, ok := s.(*approSolver); ok && as.opts.Knapsack == nil {
		compiled = make([]*core.Compiled, len(insts))
		for i, inst := range insts {
			if items[i].Err != nil {
				continue
			}
			start := time.Now()
			c, err := core.CompileAppro(inst, as.opts)
			if err != nil {
				items[i].Err = err
				continue
			}
			compileNs.Observe(float64(time.Since(start).Nanoseconds()))
			compiled[i] = c
		}
	}
	stats, _ := parallel.ForEachStealing(len(insts), workers, func(i int) error {
		if items[i].Err != nil {
			return nil
		}
		start := time.Now()
		var alloc *core.Allocation
		var err error
		if compiled != nil {
			alloc, err = compiled[i].Solve(ctx, opts.Core)
		} else {
			alloc, err = s.Solve(ctx, insts[i])
		}
		items[i] = BatchItem{Alloc: alloc, Err: err, Elapsed: time.Since(start)}
		return nil
	})
	stealTotal.Add(float64(stats.Steals))
	return items, nil
}
