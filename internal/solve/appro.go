package solve

import (
	"context"
	"sync/atomic"
	"time"

	"mobisink/internal/core"
)

// approSolver is the registry's Offline_Appro: it caches the compiled
// flat form of the most recently solved instance (pointer identity), so
// repeated solves of one instance — benchmark iterations, batch sweeps,
// A/B option comparisons on a shared topology — skip recompilation.
// The cache assumes instances are not mutated between solves (DataCaps
// may change; the Appro reduction does not read them).
type approSolver struct {
	opts  core.Options
	cache atomic.Pointer[approCache]
}

type approCache struct {
	inst *core.Instance
	c    *core.Compiled
}

func (s *approSolver) Name() string { return "Offline_Appro" }

func (s *approSolver) Solve(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
	if s.opts.Knapsack != nil {
		// An opaque oracle cannot be compiled; take the legacy sweep.
		return core.OfflineApproCtx(ctx, inst, s.opts)
	}
	c, err := s.compiled(inst)
	if err != nil {
		return nil, err
	}
	return c.Solve(ctx, s.opts)
}

// compiled returns the flat form of inst, reusing the cached one when the
// same instance pointer was compiled last.
func (s *approSolver) compiled(inst *core.Instance) (*core.Compiled, error) {
	if e := s.cache.Load(); e != nil && e.inst == inst {
		return e.c, nil
	}
	start := time.Now()
	c, err := core.CompileAppro(inst, s.opts)
	if err != nil {
		return nil, err
	}
	compileNs.Observe(float64(time.Since(start).Nanoseconds()))
	s.cache.Store(&approCache{inst: inst, c: c})
	return c, nil
}
