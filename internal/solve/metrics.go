package solve

import "mobisink/internal/metrics"

// Fast-path instrumentation on the process-wide registry: an allocserver
// sharing metrics.Default exposes these on /metrics, so operators can see
// whether the batched flat engine is actually being hit in serving.
var (
	batchSize = metrics.Default().Histogram("solve_batch_size",
		"Instances per Batch call.", metrics.ExpBuckets(1, 2, 12))
	compileNs = metrics.Default().Histogram("solve_compile_ns",
		"Nanoseconds spent compiling an instance into its flat solving form.",
		metrics.ExpBuckets(1e3, 4, 10))
	stealTotal = metrics.Default().Counter("solve_steal_total",
		"Batch tasks a work-stealing worker claimed from another worker's chunk.")
)

// ObserveBatchSize records the size of an externally assembled batch
// (the HTTP batch endpoint fans requests through its job queue rather
// than Batch, but it is the same fast path underneath).
func ObserveBatchSize(n int) { batchSize.Observe(float64(n)) }
