// Package solve is the unified entry point to every allocation algorithm
// in the repository. It defines the Solver interface — solve one
// core.Instance under a context — and a registry keyed by algorithm name,
// replacing the string-switch dispatch that internal/exp and internal/srv
// each used to maintain independently.
//
// Canonical names follow the paper's capitalization (Offline_Appro,
// Online_MaxMatch, ...); lookup is case-insensitive, so the HTTP API's
// lowercase spellings (offline_appro) resolve to the same solvers.
// Every solver threads its context into the underlying search
// (knapsack DP layers, branch-and-bound nodes, flow augmentations,
// local-ratio bins, online intervals), so cancelling the context aborts
// real work mid-solve rather than merely being observed at the end.
package solve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mobisink/internal/core"
	"mobisink/internal/fair"
	"mobisink/internal/online"
)

// Solver solves one instance. Implementations must honour ctx: when it is
// cancelled mid-solve they return ctx's error promptly instead of running
// to completion.
type Solver interface {
	// Name is the canonical (paper-style) algorithm name, e.g.
	// "Offline_Appro". Metric labels and experiment tables use it.
	Name() string
	Solve(ctx context.Context, inst *core.Instance) (*core.Allocation, error)
}

// Options configures solver construction. The zero value selects the
// defaults used throughout the paper reproduction.
type Options struct {
	// Core tunes the inner knapsack solver (Eps, ForceFPTAS, Knapsack
	// override) and the parallel window-component decomposition
	// (Parallel, Workers).
	Core core.Options
	// Online tunes protocol realism for the Online_* solvers (Ack
	// contention window, seed).
	Online online.Options
}

// Factory builds a solver from options.
type Factory func(Options) Solver

type entry struct {
	canonical string
	factory   Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

// Register adds a solver factory under its canonical name. It panics on a
// duplicate (case-insensitive) name — registration happens at init time,
// where a clash is a programming error.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("solve: Register with empty name or nil factory")
	}
	key := strings.ToLower(name)
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := registry[key]; ok {
		panic(fmt.Sprintf("solve: duplicate registration %q (already %q)", name, prev.canonical))
	}
	registry[key] = entry{canonical: name, factory: f}
}

// New builds the named solver. Lookup is case-insensitive; unknown names
// return an error listing the valid ones.
func New(name string, opts Options) (Solver, error) {
	regMu.RLock()
	e, ok := registry[strings.ToLower(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solve: unknown algorithm %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return e.factory(opts), nil
}

// Names returns the canonical names of all registered solvers, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for _, e := range registry {
		names = append(names, e.canonical)
	}
	sort.Strings(names)
	return names
}

// funcSolver adapts a closure to the Solver interface.
type funcSolver struct {
	name string
	fn   func(ctx context.Context, inst *core.Instance) (*core.Allocation, error)
}

func (s *funcSolver) Name() string { return s.name }

func (s *funcSolver) Solve(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
	return s.fn(ctx, inst)
}

// runOnline adapts an online scheduler to the Solver result shape.
func runOnline(ctx context.Context, inst *core.Instance, sched online.Scheduler, opts online.Options) (*core.Allocation, error) {
	res, err := online.RunCtx(ctx, inst, sched, opts)
	if err != nil {
		return nil, err
	}
	return res.Alloc, nil
}

func init() {
	Register("Offline_Appro", func(o Options) Solver {
		return &approSolver{opts: o.Core}
	})
	Register("Offline_MaxMatch", func(o Options) Solver {
		return &funcSolver{"Offline_MaxMatch", func(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
			return core.OfflineMaxMatchCtx(ctx, inst)
		}}
	})
	Register("Offline_Greedy", func(o Options) Solver {
		return &funcSolver{"Offline_Greedy", func(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
			return core.OfflineGreedyCtx(ctx, inst)
		}}
	})
	Register("Offline_Sequential", func(o Options) Solver {
		return &funcSolver{"Offline_Sequential", func(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
			return core.OfflineSequentialCtx(ctx, inst, o.Core)
		}}
	})
	Register("Offline_WaterFill", func(o Options) Solver {
		return &funcSolver{"Offline_WaterFill", func(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
			return fair.WaterFillCtx(ctx, inst)
		}}
	})
	Register("Online_Appro", func(o Options) Solver {
		return &funcSolver{"Online_Appro", func(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
			return runOnline(ctx, inst, &online.Appro{Opts: o.Core}, o.Online)
		}}
	})
	Register("Online_Appro_Warm", func(o Options) Solver {
		return &funcSolver{"Online_Appro_Warm", func(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
			// The warm scheduler carries per-tour state, so each Solve gets
			// its own — Batch shares one Solver across pool goroutines.
			return runOnline(ctx, inst, &online.WarmAppro{Opts: o.Core}, o.Online)
		}}
	})
	Register("Online_MaxMatch", func(o Options) Solver {
		return &funcSolver{"Online_MaxMatch", func(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
			return runOnline(ctx, inst, &online.MaxMatch{}, o.Online)
		}}
	})
	Register("Online_Greedy", func(o Options) Solver {
		return &funcSolver{"Online_Greedy", func(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
			return runOnline(ctx, inst, &online.Greedy{}, o.Online)
		}}
	})
	Register("Online_Sequential", func(o Options) Solver {
		return &funcSolver{"Online_Sequential", func(ctx context.Context, inst *core.Instance) (*core.Allocation, error) {
			return runOnline(ctx, inst, &online.Sequential{Opts: o.Core}, o.Online)
		}}
	})
}
